#include <gtest/gtest.h>

#include "blink/baselines/butterfly.h"
#include "blink/baselines/double_binary_tree.h"
#include "blink/baselines/nccl_like.h"
#include "blink/blink/communicator.h"
#include "blink/sim/executor.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink::baselines {
namespace {

topo::Topology alloc_v100(std::vector<int> gpus) {
  return topo::induced_topology(topo::make_dgx1v(), gpus);
}

TEST(RingPlan, NvlinkRingsOnFullMachine) {
  const auto plan = build_ring_plan(topo::make_dgx1v());
  EXPECT_EQ(plan.link, topo::LinkType::kNVLink);
  EXPECT_GE(plan.rings.size(), 2u);
}

TEST(RingPlan, PcieFallbackWithoutNvlinkRing) {
  const auto plan = build_ring_plan(alloc_v100({0, 1, 4}));
  EXPECT_EQ(plan.link, topo::LinkType::kPCIe);
  EXPECT_EQ(plan.rings.size(), 1u);
}

TEST(RingPlan, NvswitchRings) {
  const auto plan = build_ring_plan(topo::make_dgx2());
  EXPECT_EQ(plan.link, topo::LinkType::kNVLink);
  EXPECT_EQ(plan.rings.size(), 6u);  // one per lane
}

TEST(RingChain, CoversAllGpusFromAnyRoot) {
  const auto topo = topo::make_dgx1p();
  const sim::Fabric fabric(topo, sim::FabricParams{});
  const auto plan = build_ring_plan(topo);
  ASSERT_FALSE(plan.rings.empty());
  for (const int root : {0, 5}) {
    const auto chain = ring_chain_tree(fabric, 0, plan.rings[0], root,
                                       /*forward=*/true, plan.link);
    EXPECT_EQ(chain.root, root);
    EXPECT_EQ(chain.hops.size(), 7u);
    EXPECT_EQ(chain.depth(), 7);  // a ring is a deep chain
  }
}

TEST(Nccl, BroadcastMatchesBlinkOnRingFriendlyConfig) {
  // {2,3,6,7} supports one NVLink ring and Blink packs ~one tree: NCCL and
  // Blink should be in the same ballpark (Figure 15's flat cases).
  const auto topo = alloc_v100({2, 3, 6, 7});
  NcclCommunicator nccl(topo);
  Communicator blink_comm(topo);
  const double bytes = 500e6;
  const double nccl_bw = nccl.broadcast(bytes, 0).algorithm_bw;
  const double blink_bw = blink_comm.broadcast(bytes, 0).algorithm_bw;
  EXPECT_GT(nccl_bw, 0.5 * blink_bw);
  EXPECT_GE(blink_bw, 0.95 * nccl_bw);
}

TEST(Nccl, PcieFallbackIsSlow) {
  // Figure 2b: {0,1,4} forces NCCL onto PCIe (~5 GB/s) while Blink still
  // uses NVLink trees (~2 lanes).
  const auto topo = alloc_v100({0, 1, 4});
  NcclCommunicator nccl(topo);
  Communicator blink_comm(topo);
  const double bytes = 500e6;
  const double nccl_bw = nccl.broadcast(bytes, 0).algorithm_bw;
  const double blink_bw = blink_comm.broadcast(bytes, 0).algorithm_bw;
  EXPECT_LT(nccl_bw, 8e9);
  EXPECT_GT(blink_bw, 3.0 * nccl_bw);
}

TEST(Nccl, AllReduceRuns) {
  NcclCommunicator nccl(topo::make_dgx1v());
  const auto r = nccl.all_reduce(500e6);
  EXPECT_GT(r.algorithm_bw, 10e9);
  EXPECT_LT(r.algorithm_bw, 100e9);
}

TEST(Nccl, Dgx2TreeForSmallRingForLarge) {
  NcclCommunicator nccl(topo::make_dgx2());
  const auto small = nccl.all_reduce(8e3);   // < 16KB -> double binary tree
  const auto large = nccl.all_reduce(1e9);   // rings
  EXPECT_LT(small.seconds, 1e-3);
  EXPECT_GT(large.algorithm_bw, 20e9);
  EXPECT_EQ(small.num_trees, 2);
  EXPECT_EQ(large.num_trees, 12);
}

TEST(Nccl, GatherReduceAllGatherRun) {
  NcclCommunicator nccl(alloc_v100({4, 5, 6, 7}));
  const auto g = nccl.gather(64e6, 0);
  const auto r = nccl.reduce(64e6, 0);
  const auto ag = nccl.all_gather(64e6);
  EXPECT_GT(g.algorithm_bw, 1e9);
  EXPECT_GT(r.algorithm_bw, 1e9);
  EXPECT_GT(ag.seconds, g.seconds);  // AllGather moves strictly more data
}

TEST(Nccl, PersistentKernelModelLowersSmallSizeLatency) {
  NcclOptions heavy;
  heavy.persistent_kernel_model = false;
  NcclOptions light;  // default on
  NcclCommunicator a(topo::make_dgx2(), heavy);
  NcclCommunicator b(topo::make_dgx2(), light);
  EXPECT_GT(a.all_reduce(64e3).seconds, b.all_reduce(64e3).seconds);
}

TEST(DoubleBinary, TreesSpanAndValidate) {
  const sim::Fabric fabric(topo::make_dgx2(), sim::FabricParams{});
  const auto trees = double_binary_routed_trees(fabric, 0);
  ASSERT_EQ(trees.size(), 2u);
  for (const auto& t : trees) {
    EXPECT_EQ(t.hops.size(), 15u);
    EXPECT_LE(t.depth(), 5);
  }
}

TEST(DoubleBinary, AllReduceExecutes) {
  const sim::Fabric fabric(topo::make_dgx2(), sim::FabricParams{});
  ProgramBuilder builder(fabric, CodeGenOptions{});
  append_double_binary_all_reduce(builder, fabric, 0, 64e6);
  const auto run = sim::execute(fabric, builder.take());
  EXPECT_GT(run.makespan, 0.0);
}

TEST(Butterfly, SupportDetection) {
  const sim::Fabric dgx2(topo::make_dgx2(), sim::FabricParams{});
  EXPECT_TRUE(butterfly_supported(dgx2, 0));
  const sim::Fabric chain(topo::make_chain(4), sim::FabricParams{});
  EXPECT_FALSE(butterfly_supported(chain, 0));
  const sim::Fabric clique8(topo::make_clique(8), sim::FabricParams{});
  EXPECT_TRUE(butterfly_supported(clique8, 0));
  // The DGX-1 hybrid cube-mesh contains the 3-cube, so the butterfly
  // exchange pattern fits.
  const sim::Fabric dgx1v(topo::make_dgx1v(), sim::FabricParams{});
  EXPECT_TRUE(butterfly_supported(dgx1v, 0));
  // A 6-GPU allocation breaks the power-of-two requirement.
  const auto six = topo::induced_topology(topo::make_dgx1v(),
                                          std::vector<int>{0, 1, 2, 3, 4, 5});
  const sim::Fabric six_fabric(six, sim::FabricParams{});
  EXPECT_FALSE(butterfly_supported(six_fabric, 0));
}

TEST(Butterfly, AllReduceExecutes) {
  const sim::Fabric fabric(topo::make_dgx2(), sim::FabricParams{});
  ProgramBuilder builder(fabric, CodeGenOptions{});
  append_butterfly_all_reduce(builder, fabric, 0, 64e6);
  const auto run = sim::execute(fabric, builder.take());
  EXPECT_GT(run.makespan, 0.0);
}

TEST(MultiServerRing, BoundByNicAndPcie) {
  const auto machine = topo::make_dgx1v();
  const std::vector<topo::Topology> servers{
      topo::induced_topology(machine, std::vector<int>{0, 1, 2}),
      topo::induced_topology(machine, std::vector<int>{3, 4, 5, 6, 7})};
  NcclOptions opts;
  opts.fabric.nic_bw = 5e9;
  const auto r = multi_server_ring_all_reduce(servers, 100e6, opts);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_LT(r.algorithm_bw, 5e9);
}

TEST(MultiServerRing, FasterNicSaturatesAtPcie) {
  // §5.4: with very fast NICs NCCL's ring is still bound by intra-server
  // PCIe, so 400 Gbps barely helps over 100 Gbps.
  const auto machine = topo::make_dgx1v();
  const std::vector<topo::Topology> servers{
      topo::induced_topology(machine, std::vector<int>{0, 1, 2}),
      topo::induced_topology(machine, std::vector<int>{3, 4, 5, 6, 7})};
  std::vector<double> bw;
  for (const double nic : {5e9, 12.5e9, 50e9}) {
    NcclOptions opts;
    opts.fabric.nic_bw = nic;
    bw.push_back(multi_server_ring_all_reduce(servers, 100e6, opts)
                     .algorithm_bw);
  }
  // The host-staged PCIe path (~5 GB/s) binds from 40 Gbps on: faster NICs
  // bring no material gain, which is the paper's point.
  EXPECT_GE(bw[1], bw[0] * 0.99);
  EXPECT_LT(bw[2], bw[1] * 1.6);
}

}  // namespace
}  // namespace blink::baselines
