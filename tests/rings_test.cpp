#include <gtest/gtest.h>

#include "blink/graph/rings.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink::graph {
namespace {

bool is_hamiltonian(const topo::Topology& t, const Ring& r) {
  if (static_cast<int>(r.order.size()) != t.num_gpus) return false;
  std::vector<bool> seen(static_cast<std::size_t>(t.num_gpus), false);
  for (const int v : r.order) {
    if (v < 0 || v >= t.num_gpus || seen[static_cast<std::size_t>(v)]) {
      return false;
    }
    seen[static_cast<std::size_t>(v)] = true;
  }
  for (std::size_t i = 0; i < r.order.size(); ++i) {
    const int a = r.order[i];
    const int b = r.order[(i + 1) % r.order.size()];
    if (t.lanes_between(a, b) == 0) return false;
  }
  return true;
}

bool rings_are_lane_disjoint(const topo::Topology& t,
                             const std::vector<Ring>& rings) {
  std::vector<std::vector<int>> used(
      static_cast<std::size_t>(t.num_gpus),
      std::vector<int>(static_cast<std::size_t>(t.num_gpus), 0));
  for (const auto& r : rings) {
    for (std::size_t i = 0; i < r.order.size(); ++i) {
      const auto a = static_cast<std::size_t>(r.order[i]);
      const auto b =
          static_cast<std::size_t>(r.order[(i + 1) % r.order.size()]);
      ++used[a][b];
      ++used[b][a];
    }
  }
  for (int a = 0; a < t.num_gpus; ++a) {
    for (int b = 0; b < t.num_gpus; ++b) {
      if (used[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] >
          t.lanes_between(a, b)) {
        return false;
      }
    }
  }
  return true;
}

TEST(Rings, TriangleHasOneRing) {
  const auto t = topo::make_clique(3);
  const auto rings = max_disjoint_rings(t);
  ASSERT_EQ(rings.size(), 1u);
  EXPECT_TRUE(is_hamiltonian(t, rings[0]));
}

TEST(Rings, ChainHasNoRing) {
  const auto t = topo::make_chain(4);
  EXPECT_TRUE(max_disjoint_rings(t).empty());
}

TEST(Rings, TwoGpusUseAllLanes) {
  auto t = topo::make_chain(2);
  t.nvlinks[0].lanes = 3;
  EXPECT_EQ(max_disjoint_rings(t).size(), 3u);
}

// The full DGX-1P decomposes into 2 lane-disjoint Hamiltonian cycles
// (4 lanes per GPU, each ring consumes 2).
TEST(Rings, FullDgx1pHasTwoRings) {
  const auto t = topo::make_dgx1p();
  const auto rings = max_disjoint_rings(t);
  EXPECT_EQ(rings.size(), 2u);
  for (const auto& r : rings) EXPECT_TRUE(is_hamiltonian(t, r));
  EXPECT_TRUE(rings_are_lane_disjoint(t, rings));
}

// The full DGX-1V has 6 lanes per GPU -> 3 lane-disjoint rings.
TEST(Rings, FullDgx1vHasThreeRings) {
  const auto t = topo::make_dgx1v();
  const auto rings = max_disjoint_rings(t);
  EXPECT_EQ(rings.size(), 3u);
  EXPECT_TRUE(rings_are_lane_disjoint(t, rings));
}

// Figure 4: the 6-GPU group {0,1,3,4,5,7} on a DGX-1P supports one
// bi-directional ring (drawn as two directed rings in the paper) and must
// drop the links between GPUs 1&3, 5&7 and 0&4.
TEST(Rings, Figure4SixGpuGroup) {
  const auto machine = topo::make_dgx1p();
  const std::vector<int> alloc{0, 1, 3, 4, 5, 7};
  const auto t = topo::induced_topology(machine, alloc);
  const auto rings = max_disjoint_rings(t);
  ASSERT_EQ(rings.size(), 1u);
  EXPECT_TRUE(is_hamiltonian(t, rings[0]));
  // 9 lanes available, the ring uses 6: exactly 3 links go unused.
  int lanes = 0;
  for (const auto& e : t.nvlinks) lanes += e.lanes;
  EXPECT_EQ(lanes - t.num_gpus, 3);
}

// Figure 2b: GPUs {0,1,4} have no NVLink triangle (1-4 missing).
TEST(Rings, Figure2bHasNoNvlinkRing) {
  const auto machine = topo::make_dgx1p();
  const std::vector<int> alloc{0, 1, 4};
  const auto t = topo::induced_topology(machine, alloc);
  EXPECT_TRUE(max_disjoint_rings(t).empty());
}

TEST(Rings, EnumerationDedupesReflections) {
  const auto t = topo::make_clique(4);
  // K4 has 3 distinct Hamiltonian cycles up to rotation+reflection.
  EXPECT_EQ(enumerate_hamiltonian_cycles(t).size(), 3u);
}

TEST(Rings, AllUniqueDgx1vConfigsRespectLanes) {
  const auto machine = topo::make_dgx1v();
  for (int k = 3; k <= 8; ++k) {
    for (const auto& bin : topo::enumerate_allocations(machine, k)) {
      const auto t = topo::induced_topology(machine, bin);
      const auto rings = max_disjoint_rings(t);
      EXPECT_TRUE(rings_are_lane_disjoint(t, rings));
      for (const auto& r : rings) EXPECT_TRUE(is_hamiltonian(t, r));
    }
    if (k >= 5) break;  // keep runtime bounded; larger sizes covered above
  }
}

}  // namespace
}  // namespace blink::graph
