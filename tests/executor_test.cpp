#include <gtest/gtest.h>

#include "blink/sim/executor.h"
#include "blink/topology/builders.h"

namespace blink::sim {
namespace {

Fabric chain_fabric(int n) {
  FabricParams params;
  params.copy_launch_latency = 0.0;
  params.reduce_launch_latency = 0.0;
  params.event_sync_latency = 0.0;  // exact-timing tests
  return Fabric(topo::make_chain(n, /*lane_bw=*/10.0e9), params);
}

TEST(Executor, SingleCopyTiming) {
  const Fabric f = chain_fabric(2);
  Program p;
  Op op;
  op.kind = OpKind::kCopy;
  op.route = f.nvlink_route(0, 0, 1);
  op.bytes = 10.0e9;  // exactly one second at 10 GB/s
  op.stream = p.new_stream();
  p.add(op);
  const auto result = execute(f, p);
  EXPECT_NEAR(result.makespan, 1.0, 1e-9);
}

TEST(Executor, LatencyAddsToTransferTime) {
  const Fabric f = chain_fabric(2);
  Program p;
  Op op;
  op.kind = OpKind::kCopy;
  op.route = f.nvlink_route(0, 0, 1);
  op.bytes = 10.0e9;
  op.latency = 0.25;
  op.stream = p.new_stream();
  p.add(op);
  EXPECT_NEAR(execute(f, p).makespan, 1.25, 1e-9);
}

TEST(Executor, StreamSerializesOps) {
  const Fabric f = chain_fabric(2);
  Program p;
  const int s = p.new_stream();
  for (int i = 0; i < 3; ++i) {
    Op op;
    op.kind = OpKind::kCopy;
    op.route = f.nvlink_route(0, 0, 1);
    op.bytes = 10.0e9;
    op.stream = s;
    p.add(op);
  }
  EXPECT_NEAR(execute(f, p).makespan, 3.0, 1e-9);
}

TEST(Executor, ParallelStreamsShareChannelFairly) {
  const Fabric f = chain_fabric(2);
  Program p;
  for (int i = 0; i < 2; ++i) {
    Op op;
    op.kind = OpKind::kCopy;
    op.route = f.nvlink_route(0, 0, 1);
    op.bytes = 10.0e9;
    op.stream = p.new_stream();
    p.add(op);
  }
  // Two flows on one 10 GB/s channel: both finish at 2 s.
  EXPECT_NEAR(execute(f, p).makespan, 2.0, 1e-9);
}

TEST(Executor, IndependentChannelsRunConcurrently) {
  const Fabric f = chain_fabric(3);
  Program p;
  for (const auto& route :
       {f.nvlink_route(0, 0, 1), f.nvlink_route(0, 1, 2)}) {
    Op op;
    op.kind = OpKind::kCopy;
    op.route = route;
    op.bytes = 10.0e9;
    op.stream = p.new_stream();
    p.add(op);
  }
  EXPECT_NEAR(execute(f, p).makespan, 1.0, 1e-9);
}

TEST(Executor, DependencyChainsAcrossStreams) {
  const Fabric f = chain_fabric(3);
  Program p;
  Op first;
  first.kind = OpKind::kCopy;
  first.route = f.nvlink_route(0, 0, 1);
  first.bytes = 10.0e9;
  first.stream = p.new_stream();
  const int id = p.add(first);
  Op second;
  second.kind = OpKind::kCopy;
  second.route = f.nvlink_route(0, 1, 2);
  second.bytes = 10.0e9;
  second.stream = p.new_stream();
  second.deps = {id};
  p.add(second);
  EXPECT_NEAR(execute(f, p).makespan, 2.0, 1e-9);
}

TEST(Executor, ChunkedPipelineHalvesChainLatency) {
  // Figure 11: two hops, payload split in chunks, hop 2 of chunk 1 overlaps
  // hop 1 of chunk 2.
  const Fabric f = chain_fabric(3);
  const double total = 10.0e9;
  for (const int chunks : {1, 2, 10}) {
    Program p;
    const int s0 = p.new_stream();
    const int s1 = p.new_stream();
    for (int c = 0; c < chunks; ++c) {
      Op hop1;
      hop1.kind = OpKind::kCopy;
      hop1.route = f.nvlink_route(0, 0, 1);
      hop1.bytes = total / chunks;
      hop1.stream = s0;
      const int id = p.add(hop1);
      Op hop2;
      hop2.kind = OpKind::kCopy;
      hop2.route = f.nvlink_route(0, 1, 2);
      hop2.bytes = total / chunks;
      hop2.stream = s1;
      hop2.deps = {id};
      p.add(hop2);
    }
    const double expected = 1.0 + 1.0 / chunks;  // fill + drain
    EXPECT_NEAR(execute(f, p).makespan, expected, 1e-9) << chunks;
  }
}

TEST(Executor, EventSyncDelaysCrossStreamDependents) {
  FabricParams params;
  params.copy_launch_latency = 0.0;
  params.reduce_launch_latency = 0.0;
  params.event_sync_latency = 0.1;
  const Fabric f(topo::make_chain(3, 10.0e9), params);
  Program p;
  Op first;
  first.kind = OpKind::kCopy;
  first.route = f.nvlink_route(0, 0, 1);
  first.bytes = 10.0e9;
  first.stream = p.new_stream();
  const int id = p.add(first);
  Op second;
  second.kind = OpKind::kCopy;
  second.route = f.nvlink_route(0, 1, 2);
  second.bytes = 10.0e9;
  second.stream = p.new_stream();  // different stream -> pays the sync
  second.deps = {id};
  p.add(second);
  EXPECT_NEAR(execute(f, p).makespan, 2.1, 1e-9);

  // Same-stream successors do not pay it.
  Program q;
  const int s = q.new_stream();
  Op a = first;
  a.stream = s;
  const int ida = q.add(a);
  Op b = second;
  b.stream = s;
  b.deps = {ida};
  q.add(b);
  EXPECT_NEAR(execute(f, q).makespan, 2.0, 1e-9);
}

TEST(Executor, DelayOp) {
  const Fabric f = chain_fabric(2);
  Program p;
  Op op;
  op.kind = OpKind::kDelay;
  op.latency = 0.5;
  op.stream = p.new_stream();
  p.add(op);
  EXPECT_NEAR(execute(f, p).makespan, 0.5, 1e-12);
}

TEST(Executor, ReduceEngineSharing) {
  FabricParams params;
  params.copy_launch_latency = 0.0;
  params.reduce_launch_latency = 0.0;
  params.event_sync_latency = 0.0;
  params.reduce_bw = 10.0e9;
  const Fabric f(topo::make_chain(2, 10.0e9), params);
  Program p;
  for (int i = 0; i < 2; ++i) {
    Op op;
    op.kind = OpKind::kReduce;
    op.route = {f.reduce_channel(0, 0)};
    op.bytes = 10.0e9;
    op.stream = p.new_stream();
    p.add(op);
  }
  EXPECT_NEAR(execute(f, p).makespan, 2.0, 1e-9);
}

TEST(Executor, EmptyProgram) {
  const Fabric f = chain_fabric(2);
  Program p;
  EXPECT_DOUBLE_EQ(execute(f, p).makespan, 0.0);
}

TEST(Executor, ChannelBytesAccounting) {
  const Fabric f = chain_fabric(2);
  Program p;
  Op op;
  op.kind = OpKind::kCopy;
  op.route = f.nvlink_route(0, 0, 1);
  op.bytes = 4.0e9;
  op.stream = p.new_stream();
  p.add(op);
  const auto result = execute(f, p);
  EXPECT_DOUBLE_EQ(
      result.channel_bytes[static_cast<std::size_t>(op.route[0])], 4.0e9);
}

TEST(Executor, ZeroByteOpsCompleteImmediately) {
  const Fabric f = chain_fabric(2);
  Program p;
  Op op;
  op.kind = OpKind::kCopy;
  op.route = f.nvlink_route(0, 0, 1);
  op.bytes = 0.0;
  op.stream = p.new_stream();
  const int id = p.add(op);
  Op dep;
  dep.kind = OpKind::kDelay;
  dep.latency = 0.0;
  dep.stream = p.new_stream();
  dep.deps = {id};
  p.add(dep);
  EXPECT_DOUBLE_EQ(execute(f, p).makespan, 0.0);
}

TEST(Executor, GroupMembersContendForChannels) {
  const Fabric f = chain_fabric(2);
  auto one_copy = [&] {
    Program p;
    Op op;
    op.kind = OpKind::kCopy;
    op.route = f.nvlink_route(0, 0, 1);
    op.bytes = 10.0e9;  // one second alone at 10 GB/s
    op.stream = p.new_stream();
    p.add(op);
    return p;
  };
  const Program a = one_copy();
  const Program b = one_copy();
  const std::vector<const Program*> members{&a, &b};
  const auto group = execute_group(f, members);
  // Fair sharing: both finish together at 2x the solo time.
  ASSERT_EQ(group.makespan.size(), 2u);
  EXPECT_NEAR(group.makespan[0], 2.0, 1e-9);
  EXPECT_NEAR(group.makespan[1], 2.0, 1e-9);
  EXPECT_NEAR(group.run.makespan, 2.0, 1e-9);
  EXPECT_EQ(group.ops[0], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(group.ops[1], (std::pair<int, int>{1, 2}));
}

TEST(Executor, GroupDisjointChannelsRunConcurrently) {
  const Fabric f = chain_fabric(3);
  auto copy_between = [&](int src, int dst, double bytes) {
    Program p;
    Op op;
    op.kind = OpKind::kCopy;
    op.route = f.nvlink_route(0, src, dst);
    op.bytes = bytes;
    op.stream = p.new_stream();
    p.add(op);
    return p;
  };
  const Program a = copy_between(0, 1, 10.0e9);
  const Program b = copy_between(1, 2, 5.0e9);
  const std::vector<const Program*> members{&a, &b};
  const auto group = execute_group(f, members);
  EXPECT_NEAR(group.makespan[0], 1.0, 1e-9);  // unaffected by b
  EXPECT_NEAR(group.makespan[1], 0.5, 1e-9);
  EXPECT_NEAR(group.run.makespan, 1.0, 1e-9);
}

TEST(Executor, GroupWithEmptyMember) {
  const Fabric f = chain_fabric(2);
  Program a;
  Op op;
  op.kind = OpKind::kCopy;
  op.route = f.nvlink_route(0, 0, 1);
  op.bytes = 10.0e9;
  op.stream = a.new_stream();
  a.add(op);
  const Program empty;
  const std::vector<const Program*> members{&a, &empty};
  const auto group = execute_group(f, members);
  EXPECT_NEAR(group.makespan[0], 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(group.makespan[1], 0.0);
}

}  // namespace
}  // namespace blink::sim
