// Cross-cutting invariant checks (property-style) over the whole pipeline:
// data conservation in generated schedules, capacity discipline under
// execution, and bound consistency between planning and simulation.
#include <gtest/gtest.h>

#include "blink/baselines/nccl_like.h"
#include "blink/blink/communicator.h"
#include "blink/sim/executor.h"
#include "blink/topology/binning.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink {
namespace {

// Every GPU must receive the full payload in a broadcast: the sum of copy
// bytes equals (n-1) * payload, regardless of how trees split it.
class BroadcastConservation : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastConservation, CopyVolumeIsReceiversTimesPayload) {
  const auto machine = topo::make_dgx1v();
  const double bytes = 96e6;
  for (const auto& bin :
       topo::unique_configs(machine, GetParam(), /*connected_only=*/true)) {
    const auto topo = topo::induced_topology(machine, bin.representative);
    const sim::Fabric fabric(topo, sim::FabricParams{});
    const auto set = generate_trees(topo, 0);
    ProgramBuilder builder(fabric, CodeGenOptions{});
    builder.broadcast(route_trees(fabric, 0, set), bytes);
    const auto program = builder.take();
    EXPECT_NEAR(program.total_copy_bytes(), (topo.num_gpus - 1) * bytes,
                1e-3 * bytes)
        << ::testing::PrintToString(bin.representative);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BroadcastConservation,
                         ::testing::Values(3, 4, 6, 8));

// AllReduce moves exactly 2 * (n-1)/n-ish volume per tree edge: with our
// tree formulation, reduce carries B up each edge and broadcast B down, so
// total copy volume is 2 * (n-1) * B (per §3.3's message-count argument).
TEST(AllReduceConservation, TwoPassesPerEdge) {
  const auto machine = topo::make_dgx1v();
  const auto topo =
      topo::induced_topology(machine, std::vector<int>{4, 5, 6, 7});
  const sim::Fabric fabric(topo, sim::FabricParams{});
  Communicator comm(topo);
  const double bytes = 64e6;
  ProgramBuilder builder(fabric, CodeGenOptions{});
  builder.all_reduce(route_trees(fabric, 0, comm.bidir_tree_set(0)), bytes);
  const auto program = builder.take();
  EXPECT_NEAR(program.total_copy_bytes(), 2.0 * (topo.num_gpus - 1) * bytes,
              1e-3 * bytes);
}

// No channel may carry more bytes than capacity * makespan: execution never
// oversubscribes the fluid fabric.
TEST(CapacityDiscipline, ChannelBytesBoundedByCapacityTimesMakespan) {
  const auto machine = topo::make_dgx1v();
  for (const auto& alloc :
       {std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}, std::vector<int>{1, 4, 5, 6},
        std::vector<int>{5, 6, 7}}) {
    const auto topo = topo::induced_topology(machine, alloc);
    const sim::Fabric fabric(topo, sim::FabricParams{});
    const auto set = generate_trees(topo, 0);
    if (set.empty()) continue;
    ProgramBuilder builder(fabric, CodeGenOptions{});
    builder.all_reduce(route_trees(fabric, 0, set), 128e6);
    const auto program = builder.take();
    const auto run = sim::execute(fabric, program);
    for (int c = 0; c < fabric.num_channels(); ++c) {
      EXPECT_LE(run.channel_bytes[static_cast<std::size_t>(c)],
                fabric.capacities()[static_cast<std::size_t>(c)] *
                        run.makespan +
                    1.0)
          << fabric.channel_name(c);
    }
  }
}

// Simulated broadcast throughput never exceeds the packed (planned) rate,
// and planned rate never exceeds the Edmonds bound.
class PlanVsExecution : public ::testing::TestWithParam<int> {};

TEST_P(PlanVsExecution, SimulationRespectsPlanningBounds) {
  const auto machine = topo::make_dgx1v();
  for (const auto& bin :
       topo::unique_configs(machine, GetParam(), /*connected_only=*/true)) {
    const auto topo = topo::induced_topology(machine, bin.representative);
    Communicator comm(topo);
    const auto& set = comm.tree_set(0);
    EXPECT_LE(set.rate, set.optimal_rate * (1.0 + 1e-6));
    const auto result = comm.broadcast(400e6, 0);
    EXPECT_LE(result.algorithm_bw, set.rate * (1.0 + 1e-6))
        << ::testing::PrintToString(bin.representative);
    EXPECT_GE(result.algorithm_bw, 0.5 * set.rate)
        << ::testing::PrintToString(bin.representative);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PlanVsExecution, ::testing::Values(3, 5, 7));

// Bidirectional (shared-capacity) packing never exceeds the one-directional
// packing rate, and reaches at least half of it (each direction re-usable).
TEST(BidirectionalPacking, BoundedByDirectedRate) {
  const auto machine = topo::make_dgx1v();
  for (const auto& alloc :
       {std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}, std::vector<int>{5, 6, 7},
        std::vector<int>{2, 3, 6, 7}}) {
    const auto topo = topo::induced_topology(machine, alloc);
    Communicator comm(topo);
    const double directed = comm.tree_set(0).rate;
    const double undirected = comm.bidir_tree_set(0).rate;
    EXPECT_LE(undirected, directed * (1.0 + 1e-6));
    EXPECT_GE(undirected, 0.45 * directed);
  }
}

// Memoized results are invariant to call order (determinism of the whole
// pipeline, including MWU and ILP).
TEST(Determinism, RepeatedCommunicatorsAgree) {
  const auto machine = topo::make_dgx1v();
  const auto topo =
      topo::induced_topology(machine, std::vector<int>{1, 2, 4, 5, 6, 7});
  Communicator a(topo);
  Communicator b(topo);
  const auto ra1 = a.all_reduce(100e6);
  const auto rb1 = b.broadcast(100e6, 2);
  const auto ra2 = a.broadcast(100e6, 2);
  const auto rb2 = b.all_reduce(100e6);
  EXPECT_DOUBLE_EQ(ra1.seconds, rb2.seconds);
  EXPECT_DOUBLE_EQ(ra2.seconds, rb1.seconds);
}

// The NCCL-like baseline also conserves broadcast volume on its rings.
TEST(BaselineConservation, RingBroadcastVolume) {
  const auto topo = topo::make_dgx1p();
  const sim::Fabric fabric(
      topo, baselines::apply_persistent_kernel_model(sim::FabricParams{}));
  const auto plan = baselines::build_ring_plan(topo);
  ProgramBuilder builder(fabric, CodeGenOptions{});
  baselines::append_ring_broadcast(builder, fabric, 0, plan, 80e6, 0);
  const auto program = builder.take();
  EXPECT_NEAR(program.total_copy_bytes(), (topo.num_gpus - 1) * 80e6,
              1e-3 * 80e6);
}

}  // namespace
}  // namespace blink
