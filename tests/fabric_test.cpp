#include <gtest/gtest.h>

#include <stdexcept>

#include "blink/sim/fabric.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink::sim {
namespace {

TEST(Fabric, Dgx1vChannelInventory) {
  const auto topo = topo::make_dgx1v();
  const Fabric f(topo, FabricParams{});
  // 32 NVLink directions + 16 GPU PCIe + 8 PLX + 2 QPI + 2 sysmem staging
  // + 8 reduce engines.
  EXPECT_EQ(f.num_channels(), 32 + 16 + 8 + 2 + 2 + 8);
}

TEST(Fabric, NvlinkRouteIsSingleChannelWithLaneCapacity) {
  const auto topo = topo::make_dgx1v();
  const Fabric f(topo, FabricParams{});
  const auto route = f.nvlink_route(0, 0, 3);  // doubled edge
  ASSERT_EQ(route.size(), 1u);
  EXPECT_DOUBLE_EQ(f.capacities()[static_cast<std::size_t>(route[0])],
                   2 * topo.nvlink_lane_bw);
  // Directions are distinct channels.
  EXPECT_NE(f.nvlink_route(0, 0, 3)[0], f.nvlink_route(0, 3, 0)[0]);
}

TEST(Fabric, PcieRouteLengthDependsOnPlacement) {
  const auto topo = topo::make_dgx1v();
  const Fabric f(topo, FabricParams{});
  EXPECT_EQ(f.pcie_route(0, 0, 1).size(), 2u);  // same PLX: up + down
  EXPECT_EQ(f.pcie_route(0, 0, 2).size(), 5u);  // + 2 PLX hops + sysmem
  EXPECT_EQ(f.pcie_route(0, 0, 7).size(), 6u);  // + QPI
}

TEST(Fabric, NvswitchRoutes) {
  const auto topo = topo::make_dgx2();
  const Fabric f(topo, FabricParams{});
  const auto route = f.nvlink_route(0, 3, 9);
  ASSERT_EQ(route.size(), 2u);  // egress + ingress
  EXPECT_TRUE(f.nvlink_adjacent(0, 0, 15));
  EXPECT_DOUBLE_EQ(f.capacities()[static_cast<std::size_t>(route[0])],
                   topo.nvswitch_gpu_bw);
}

TEST(Fabric, ReduceChannelsPerGpu) {
  const auto topo = topo::make_dgx1p();
  FabricParams params;
  params.reduce_bw = 55e9;
  const Fabric f(topo, params);
  EXPECT_NE(f.reduce_channel(0, 0), f.reduce_channel(0, 1));
  EXPECT_DOUBLE_EQ(
      f.capacities()[static_cast<std::size_t>(f.reduce_channel(0, 5))], 55e9);
}

TEST(Fabric, MultiServerNics) {
  const auto topo = topo::make_dgx1v();
  FabricParams params;
  params.nic_bw = 12.5e9;  // 100 Gbps
  const Fabric f({topo, topo}, params);
  EXPECT_EQ(f.num_servers(), 2);
  const auto route = f.nic_route(0, 1);
  ASSERT_EQ(route.size(), 2u);
  EXPECT_DOUBLE_EQ(f.capacities()[static_cast<std::size_t>(route[0])],
                   12.5e9);
  // Host staging routes exist on both sides (incl. the sysmem buffer).
  EXPECT_EQ(f.pcie_to_host_route(0, 3).size(), 3u);
  EXPECT_EQ(f.pcie_from_host_route(1, 6).size(), 3u);
}

TEST(Fabric, PerServerNicOverrideSetsChannelCapacities) {
  const auto topo = topo::make_dgx1v();
  FabricParams params;
  params.nic_bw = 12.5e9;
  params.nic_bw_per_server = {12.5e9, 1.25e9, 5e9};
  const Fabric f({topo, topo, topo}, params);
  EXPECT_DOUBLE_EQ(f.nic_rate(0), 12.5e9);
  EXPECT_DOUBLE_EQ(f.nic_rate(1), 1.25e9);
  EXPECT_DOUBLE_EQ(f.nic_rate(2), 5e9);
  EXPECT_TRUE(f.heterogeneous_nics());
  // Server 1's egress channel runs at its own NIC's rate, not the default.
  const auto route = f.nic_route(1, 2);
  EXPECT_DOUBLE_EQ(f.capacities()[static_cast<std::size_t>(route.front())],
                   1.25e9);
}

TEST(Fabric, UniformNicOverrideIsNotHeterogeneous) {
  const auto topo = topo::make_dgx1v();
  FabricParams params;
  params.nic_bw = 12.5e9;
  const Fabric plain({topo, topo}, params);
  EXPECT_FALSE(plain.heterogeneous_nics());
  EXPECT_DOUBLE_EQ(plain.nic_rate(1), 12.5e9);
  // An override listing the default rate everywhere changes nothing.
  params.nic_bw_per_server = {12.5e9, 12.5e9};
  const Fabric listed({topo, topo}, params);
  EXPECT_FALSE(listed.heterogeneous_nics());
}

TEST(Fabric, PerServerNicOverrideValidated) {
  const auto topo = topo::make_dgx1v();
  FabricParams params;
  params.nic_bw_per_server = {12.5e9};  // two servers need two entries
  EXPECT_THROW(Fabric({topo, topo}, params), std::invalid_argument);
  params.nic_bw_per_server = {12.5e9, 0.0};  // rates must be positive
  EXPECT_THROW(Fabric({topo, topo}, params), std::invalid_argument);
}

TEST(Fabric, InducedTopologyWithSparseSwitchIds) {
  const auto machine = topo::make_dgx1v();
  const std::vector<int> alloc{6, 7};  // PLX 3 only
  const auto topo = topo::induced_topology(machine, alloc);
  const Fabric f(topo, FabricParams{});
  const auto route = f.pcie_route(0, 0, 1);
  EXPECT_EQ(route.size(), 2u);  // same PLX
}

TEST(Fabric, NvlinkAdjacency) {
  const auto topo = topo::make_dgx1v();
  const Fabric f(topo, FabricParams{});
  EXPECT_TRUE(f.nvlink_adjacent(0, 0, 1));
  EXPECT_FALSE(f.nvlink_adjacent(0, 1, 4));
}

}  // namespace
}  // namespace blink::sim
