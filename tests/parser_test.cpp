#include <gtest/gtest.h>

#include "blink/blink/communicator.h"
#include "blink/topology/builders.h"
#include "blink/topology/parser.h"

namespace blink::topo {
namespace {

TEST(Parser, MinimalMachine) {
  const auto r = parse_topology(R"(
    name tiny
    gpus 3
    nvlink 23
    link 0 1
    link 1 2 2
  )");
  ASSERT_TRUE(r.topology.has_value()) << r.error;
  const auto& t = *r.topology;
  EXPECT_EQ(t.name, "tiny");
  EXPECT_EQ(t.num_gpus, 3);
  EXPECT_DOUBLE_EQ(t.nvlink_lane_bw, 23e9);
  EXPECT_EQ(t.lanes_between(1, 2), 2);
  EXPECT_EQ(t.lanes_between(0, 2), 0);
}

TEST(Parser, CommentsAndBlankLines) {
  const auto r = parse_topology(
      "# a machine\n"
      "gpus 2   # two of them\n"
      "\n"
      "nvlink 20\n"
      "link 0 1\n");
  ASSERT_TRUE(r.topology.has_value()) << r.error;
  EXPECT_EQ(r.topology->num_gpus, 2);
}

TEST(Parser, NvswitchMachine) {
  const auto r = parse_topology("gpus 16\nnvswitch 138\n");
  ASSERT_TRUE(r.topology.has_value()) << r.error;
  EXPECT_TRUE(r.topology->has_nvswitch);
  EXPECT_DOUBLE_EQ(r.topology->nvswitch_gpu_bw, 138e9);
}

TEST(Parser, PcieHierarchy) {
  const auto r = parse_topology(
      "gpus 4\nnvlink 23\nlink 0 1\nlink 1 2\nlink 2 3\n"
      "pcie 11 11 9\nplx 0 0 1 1\ncpu 0 1\n");
  ASSERT_TRUE(r.topology.has_value()) << r.error;
  EXPECT_EQ(r.topology->pcie.num_plx(), 2);
  EXPECT_EQ(r.topology->pcie.num_cpus(), 2);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  const auto r = parse_topology("gpus 2\nnvlink 23\nbogus 1 2\n");
  ASSERT_FALSE(r.topology.has_value());
  EXPECT_NE(r.error.find("line 3"), std::string::npos);
  EXPECT_NE(r.error.find("bogus"), std::string::npos);
}

TEST(Parser, RejectsMissingGpus) {
  const auto r = parse_topology("nvlink 23\n");
  EXPECT_FALSE(r.topology.has_value());
}

TEST(Parser, RejectsLinksWithoutLaneRate) {
  const auto r = parse_topology("gpus 2\nlink 0 1\n");
  ASSERT_FALSE(r.topology.has_value());
  EXPECT_NE(r.error.find("nvlink"), std::string::npos);
}

TEST(Parser, RejectsOutOfRangeLink) {
  const auto r = parse_topology("gpus 2\nnvlink 23\nlink 0 5\n");
  EXPECT_FALSE(r.topology.has_value());
}

TEST(Parser, RoundTripsBuiltinMachines) {
  for (const auto& machine :
       {make_dgx1p(), make_dgx1v(), make_dgx2(), make_chain(5)}) {
    const auto text = format_topology(machine);
    const auto r = parse_topology(text);
    ASSERT_TRUE(r.topology.has_value()) << machine.name << ": " << r.error;
    const auto& t = *r.topology;
    EXPECT_EQ(t.num_gpus, machine.num_gpus);
    EXPECT_EQ(t.has_nvswitch, machine.has_nvswitch);
    for (int a = 0; a < t.num_gpus; ++a) {
      for (int b = a + 1; b < t.num_gpus; ++b) {
        EXPECT_EQ(t.lanes_between(a, b), machine.lanes_between(a, b));
      }
    }
  }
}

TEST(Parser, ParsedMachineDrivesCommunicator) {
  const auto r = parse_topology(
      "name custom\ngpus 4\nnvlink 20\n"
      "link 0 1 2\nlink 1 2\nlink 2 3\nlink 3 0\n");
  ASSERT_TRUE(r.topology.has_value()) << r.error;
  Communicator comm(*r.topology);
  const auto result = comm.broadcast(100e6, 0);
  EXPECT_GT(result.algorithm_bw, 15e9);  // at least one 20 GB/s lane packed
}

TEST(Parser, LoadMissingFileFails) {
  const auto r = load_topology("/nonexistent/path.topo");
  EXPECT_FALSE(r.topology.has_value());
  EXPECT_FALSE(r.error.empty());
}

}  // namespace
}  // namespace blink::topo
