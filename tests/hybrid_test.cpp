#include <gtest/gtest.h>

#include "blink/blink/communicator.h"
#include "blink/blink/hybrid.h"
#include "blink/topology/builders.h"

namespace blink {
namespace {

TEST(HybridSplit, EqualRatesSplitHalfMinusSwitchCost) {
  const auto s = compute_hybrid_split(100.0, 10.0, 10.0, 0.0);
  EXPECT_DOUBLE_EQ(s.pcie_bytes, 50.0);
  EXPECT_DOUBLE_EQ(s.nvlink_bytes, 50.0);
}

TEST(HybridSplit, Equation8Formula) {
  const double total = 1000.0;
  const double bw_n = 20.0;
  const double bw_p = 5.0;
  const double t_dpa = 2.0;
  const auto s = compute_hybrid_split(total, bw_n, bw_p, t_dpa);
  const double expected =
      total * bw_p / (bw_p + bw_n) - t_dpa * bw_p * bw_n / (bw_p + bw_n);
  EXPECT_DOUBLE_EQ(s.pcie_bytes, expected);
  EXPECT_DOUBLE_EQ(s.nvlink_bytes, total - expected);
  // The split equalizes completion times: T_nvl = D_nvl/bw_n equals
  // T_pcie + t_dpa = D_pcie/bw_p + t_dpa.
  EXPECT_NEAR(s.nvlink_bytes / bw_n, s.pcie_bytes / bw_p + t_dpa, 1e-9);
}

TEST(HybridSplit, SmallTransfersGoNvlinkOnly) {
  // Switch cost exceeds any possible PCIe benefit.
  const auto s = compute_hybrid_split(10.0, 20.0, 5.0, 100.0);
  EXPECT_DOUBLE_EQ(s.pcie_bytes, 0.0);
  EXPECT_DOUBLE_EQ(s.nvlink_bytes, 10.0);
}

TEST(HybridSplit, NoNvlinkSendsEverythingOverPcie) {
  const auto s = compute_hybrid_split(100.0, 0.0, 5.0, 1.0);
  EXPECT_DOUBLE_EQ(s.pcie_bytes, 100.0);
}

TEST(HybridSplit, NoPcieSendsEverythingOverNvlink) {
  const auto s = compute_hybrid_split(100.0, 5.0, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(s.nvlink_bytes, 100.0);
  EXPECT_DOUBLE_EQ(s.pcie_bytes, 0.0);
}

// --- clamp paths (Equation 8 falls outside [0, total]) ----------------------

TEST(HybridSplit, ZeroTotalBytesYieldsZeroSplit) {
  const auto s = compute_hybrid_split(0.0, 20.0, 5.0, 2.0);
  EXPECT_DOUBLE_EQ(s.pcie_bytes, 0.0);
  EXPECT_DOUBLE_EQ(s.nvlink_bytes, 0.0);
}

TEST(HybridSplit, ZeroTotalBytesWithoutSwitchCost) {
  const auto s = compute_hybrid_split(0.0, 20.0, 5.0, 0.0);
  EXPECT_DOUBLE_EQ(s.pcie_bytes, 0.0);
  EXPECT_DOUBLE_EQ(s.nvlink_bytes, 0.0);
}

TEST(HybridSplit, TDpaDominatesTinyTransfer) {
  // Unclamped Equation 8 is negative: D * BWp/(BWp+BWn) = 0.2 while the
  // switch-cost term is 800. The clamp keeps the PCIe share at exactly 0 and
  // all bytes on NVLink — never a negative byte count.
  const auto s = compute_hybrid_split(1.0, 1000.0, 0.25, 4.0);
  EXPECT_DOUBLE_EQ(s.pcie_bytes, 0.0);
  EXPECT_DOUBLE_EQ(s.nvlink_bytes, 1.0);
  // The boundary where the two terms cancel: D = t_dpa * BWn.
  const auto edge = compute_hybrid_split(4.0 * 1000.0, 1000.0, 0.25, 4.0);
  EXPECT_DOUBLE_EQ(edge.pcie_bytes, 0.0);
  EXPECT_DOUBLE_EQ(edge.nvlink_bytes, 4000.0);
}

TEST(HybridSplit, ZeroPcieRateWithZeroTotal) {
  // Degenerate rate and degenerate size at once: still all-NVLink, no NaNs.
  const auto s = compute_hybrid_split(0.0, 5.0, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(s.pcie_bytes, 0.0);
  EXPECT_DOUBLE_EQ(s.nvlink_bytes, 0.0);
}

TEST(HybridSplit, BothRatesZeroFallsBackToPcie) {
  // No usable fabric at all; the split defaults to the PCIe side (callers
  // gate on a non-empty NVLink tree set before trusting the split).
  const auto s = compute_hybrid_split(100.0, 0.0, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(s.pcie_bytes, 100.0);
  EXPECT_DOUBLE_EQ(s.nvlink_bytes, 0.0);
}

// Figure 21: hybrid broadcast beats NVLink-only for large payloads.
TEST(HybridBroadcast, BeatsNvlinkOnlyForLargePayloads) {
  CommunicatorOptions nvlink_only;
  CommunicatorOptions hybrid;
  hybrid.hybrid = true;
  Communicator base(topo::make_dgx1v(), nvlink_only);
  Communicator hyb(topo::make_dgx1v(), hybrid);
  // Large enough that the PCIe slice clears the minimum-share guard on the
  // full machine, where the peer-access toggle costs ~10 ms.
  const double bytes = 8e9;
  const auto r_base = base.broadcast(bytes, 0);
  const auto r_hyb = hyb.broadcast(bytes, 0);
  EXPECT_GT(r_hyb.algorithm_bw, r_base.algorithm_bw);
  // The paper reports a 2-5 GB/s gain; allow a generous window.
  EXPECT_LT(r_hyb.algorithm_bw, r_base.algorithm_bw + 12e9);
}

TEST(HybridBroadcast, SmallPayloadNotHurt) {
  CommunicatorOptions hybrid;
  hybrid.hybrid = true;
  Communicator base(topo::make_dgx1v());
  Communicator hyb(topo::make_dgx1v(), hybrid);
  const double bytes = 1e6;  // switch cost dwarfs benefit -> NVLink only
  const auto r_base = base.broadcast(bytes, 0);
  const auto r_hyb = hyb.broadcast(bytes, 0);
  EXPECT_NEAR(r_hyb.seconds, r_base.seconds, 0.2 * r_base.seconds);
}

}  // namespace
}  // namespace blink
