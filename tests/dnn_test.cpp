#include <gtest/gtest.h>

#include <numeric>

#include "blink/dnn/models.h"
#include "blink/dnn/training.h"

namespace blink::dnn {
namespace {

TEST(Models, ZooHasFourModels) {
  const auto zoo = model_zoo();
  ASSERT_EQ(zoo.size(), 4u);
  EXPECT_EQ(zoo[0].name, "AlexNet");
  EXPECT_EQ(zoo[3].name, "VGG16");
}

TEST(Models, ParameterSizesMatchLiterature) {
  EXPECT_NEAR(alexnet().param_bytes, 244e6, 5e6);
  EXPECT_NEAR(resnet18().param_bytes, 46.8e6, 2e6);
  EXPECT_NEAR(resnet50().param_bytes, 102e6, 3e6);
  EXPECT_NEAR(vgg16().param_bytes, 553e6, 5e6);
}

TEST(Models, BucketFractionsSumToOne) {
  for (const auto& m : model_zoo()) {
    const double sum = std::accumulate(m.bucket_fractions.begin(),
                                       m.bucket_fractions.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9) << m.name;
  }
}

TEST(Models, P100SlowerThanV100) {
  for (const auto& m : model_zoo()) {
    EXPECT_GT(m.fwd_seconds(GpuGeneration::kP100),
              m.fwd_seconds(GpuGeneration::kV100));
    EXPECT_GT(m.bwd_seconds(GpuGeneration::kP100),
              m.bwd_seconds(GpuGeneration::kV100));
  }
}

TEST(Training, NoCommMeansNoOverhead) {
  const auto m = resnet50();
  const auto it = simulate_iteration(
      m, GpuGeneration::kV100, [](double) { return 0.0; }, {});
  EXPECT_DOUBLE_EQ(it.exposed_comm_seconds, 0.0);
  EXPECT_DOUBLE_EQ(it.iteration_seconds, it.compute_seconds);
  EXPECT_DOUBLE_EQ(it.comm_fraction, 0.0);
}

TEST(Training, SlowNetworkDominates) {
  const auto m = vgg16();
  // 1 GB/s: VGG's 553 MB gradient costs ~0.55 s vs 0.135 s compute.
  const auto it = simulate_iteration(
      m, GpuGeneration::kV100, [](double b) { return b / 1e9; },
      {});
  EXPECT_GT(it.comm_fraction, 0.4);
  EXPECT_GT(it.iteration_seconds, it.compute_seconds);
}

TEST(Training, OverlapHidesPartOfComm) {
  const auto m = resnet50();
  const AllReduceFn slow = [](double b) { return b / 5e9; };
  TrainingOptions overlap;
  TrainingOptions sequential;
  sequential.wait_free_backprop = false;
  const auto with = simulate_iteration(m, GpuGeneration::kV100, slow, overlap);
  const auto without =
      simulate_iteration(m, GpuGeneration::kV100, slow, sequential);
  EXPECT_LT(with.iteration_seconds, without.iteration_seconds);
  EXPECT_LT(with.exposed_comm_seconds, without.exposed_comm_seconds);
  EXPECT_NEAR(with.comm_seconds, without.comm_seconds,
              0.1 * without.comm_seconds);
}

TEST(Training, FasterCollectiveReducesIterationTime) {
  const auto m = alexnet();
  const auto slow = simulate_iteration(
      m, GpuGeneration::kV100, [](double b) { return b / 5e9; }, {});
  const auto fast = simulate_iteration(
      m, GpuGeneration::kV100, [](double b) { return b / 40e9; }, {});
  EXPECT_LT(fast.iteration_seconds, slow.iteration_seconds);
  EXPECT_LT(fast.comm_fraction, slow.comm_fraction);
}

TEST(Training, ImagesPerSecondScalesWithGpus) {
  const auto m = resnet18();
  TrainingOptions one;
  one.num_gpus = 1;
  TrainingOptions eight;
  eight.num_gpus = 8;
  const AllReduceFn fn = [](double b) { return b / 40e9; };
  const auto i1 = simulate_iteration(m, GpuGeneration::kV100, fn, one);
  const auto i8 = simulate_iteration(m, GpuGeneration::kV100, fn, eight);
  EXPECT_NEAR(i8.images_per_second, 8 * i1.images_per_second, 1e-6);
}

TEST(Training, CommFractionBounded) {
  for (const auto& m : model_zoo()) {
    for (const double bw : {1e9, 5e9, 40e9, 130e9}) {
      const auto it = simulate_iteration(
          m, GpuGeneration::kV100, [bw](double b) { return b / bw; }, {});
      EXPECT_GE(it.comm_fraction, 0.0) << m.name;
      EXPECT_LT(it.comm_fraction, 1.0) << m.name;
    }
  }
}

}  // namespace
}  // namespace blink::dnn
