#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "blink/common/logging.h"
#include "blink/common/rng.h"
#include "blink/common/units.h"

namespace blink {
namespace {

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(gbps(23.0), 23.0e9);
  EXPECT_DOUBLE_EQ(gbitps(40.0), 5.0e9);
  EXPECT_DOUBLE_EQ(usec(8.0), 8.0e-6);
  EXPECT_DOUBLE_EQ(msec(5.0), 5.0e-3);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(1000), "1KB");
  EXPECT_EQ(format_bytes(500'000'000), "500MB");
  EXPECT_EQ(format_bytes(1'000'000'000), "1GB");
}

TEST(Units, FormatThroughput) {
  EXPECT_EQ(format_throughput(23.5e9), "23.50GB/s");
}

TEST(Units, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.1));
  EXPECT_TRUE(approx_equal(1.0e9, 1.04e9, 0.05));
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.next_int(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, WeightedSamplingRespectsWeights) {
  Rng rng(11);
  const std::vector<double> weights{0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.next_weighted(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto reshuffled = v;
  std::sort(reshuffled.begin(), reshuffled.end());
  EXPECT_EQ(reshuffled, sorted);
}

// Restores the global logging state even when a test assertion fails early.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_level_ = log_level(); }
  void TearDown() override {
    set_log_sink({});
    set_log_level(previous_level_);
  }
  LogLevel previous_level_ = LogLevel::kWarning;
};

TEST_F(LoggingTest, SinkReceivesWholeMessages) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&captured](LogLevel level, const std::string& message) {
    captured.emplace_back(level, message);
  });
  set_log_level(LogLevel::kInfo);
  BLINK_LOG(kInfo) << "rate=" << 42 << " gbps";
  BLINK_LOG(kWarning) << "cap exceeded";
  BLINK_LOG(kDebug) << "filtered out";  // below the threshold
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "rate=42 gbps");
  EXPECT_EQ(captured[1].first, LogLevel::kWarning);
  EXPECT_EQ(captured[1].second, "cap exceeded");
  // An empty sink restores the default stderr path; the captured log stays
  // frozen once the custom sink is gone.
  set_log_sink({});
  BLINK_LOG(kInfo) << "to stderr, not the vector";
  EXPECT_EQ(captured.size(), 2u);
}

TEST_F(LoggingTest, ConcurrentLoggingNeverTearsMessages) {
  // The sink is called under the global sink lock, one complete message per
  // call, so a plain vector suffices and every message must arrive intact.
  std::vector<std::string> captured;
  set_log_sink([&captured](LogLevel, const std::string& message) {
    captured.push_back(message);
  });
  set_log_level(LogLevel::kInfo);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        BLINK_LOG(kInfo) << "thread " << t << " message " << i << " end";
      }
    });
  }
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(captured.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  for (const std::string& message : captured) {
    // Interleaved characters would break this shape immediately.
    EXPECT_EQ(message.rfind("thread ", 0), 0u);
    EXPECT_NE(message.find(" message "), std::string::npos);
    EXPECT_EQ(message.compare(message.size() - 4, 4, " end"), 0);
  }
}

}  // namespace
}  // namespace blink
