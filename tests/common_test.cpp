#include <gtest/gtest.h>

#include <set>

#include "blink/common/rng.h"
#include "blink/common/units.h"

namespace blink {
namespace {

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(gbps(23.0), 23.0e9);
  EXPECT_DOUBLE_EQ(gbitps(40.0), 5.0e9);
  EXPECT_DOUBLE_EQ(usec(8.0), 8.0e-6);
  EXPECT_DOUBLE_EQ(msec(5.0), 5.0e-3);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(1000), "1KB");
  EXPECT_EQ(format_bytes(500'000'000), "500MB");
  EXPECT_EQ(format_bytes(1'000'000'000), "1GB");
}

TEST(Units, FormatThroughput) {
  EXPECT_EQ(format_throughput(23.5e9), "23.50GB/s");
}

TEST(Units, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.1));
  EXPECT_TRUE(approx_equal(1.0e9, 1.04e9, 0.05));
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.next_int(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, WeightedSamplingRespectsWeights) {
  Rng rng(11);
  const std::vector<double> weights{0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.next_weighted(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto reshuffled = v;
  std::sort(reshuffled.begin(), reshuffled.end());
  EXPECT_EQ(reshuffled, sorted);
}

}  // namespace
}  // namespace blink
