#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>

#include "blink/blink/nccl_compat.h"

namespace {

TEST(NcclCompat, TypeSizes) {
  EXPECT_EQ(blinkTypeSize(blinkInt8), 1u);
  EXPECT_EQ(blinkTypeSize(blinkUint8), 1u);
  EXPECT_EQ(blinkTypeSize(blinkFloat16), 2u);
  EXPECT_EQ(blinkTypeSize(blinkInt32), 4u);
  EXPECT_EQ(blinkTypeSize(blinkUint32), 4u);
  EXPECT_EQ(blinkTypeSize(blinkFloat32), 4u);
  EXPECT_EQ(blinkTypeSize(blinkInt64), 8u);
  EXPECT_EQ(blinkTypeSize(blinkUint64), 8u);
  EXPECT_EQ(blinkTypeSize(blinkFloat64), 8u);
  EXPECT_EQ(blinkTypeSize(static_cast<blinkDataType_t>(999)), 0u);
}

TEST(NcclCompat, InitAndDestroy) {
  blinkComm_t comm = nullptr;
  const int gpus[] = {0, 1, 2, 3};
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx1v", 4, gpus), blinkSuccess);
  int count = 0;
  EXPECT_EQ(blinkCommCount(comm, &count), blinkSuccess);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(blinkCommDestroy(comm), blinkSuccess);
}

TEST(NcclCompat, RejectsBadArguments) {
  blinkComm_t comm = nullptr;
  const int gpus[] = {0, 99};
  EXPECT_EQ(blinkCommInitAll(&comm, "dgx1v", 2, gpus), blinkInvalidArgument);
  EXPECT_EQ(blinkCommInitAll(&comm, "notamachine", 1, gpus),
            blinkInvalidArgument);
  EXPECT_EQ(blinkCommInitAll(nullptr, "dgx1v", 1, gpus), blinkInvalidArgument);
}

TEST(NcclCompat, BroadcastRecordsResult) {
  blinkComm_t comm = nullptr;
  const int gpus[] = {4, 5, 6, 7};
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx1v", 4, gpus), blinkSuccess);
  ASSERT_EQ(blinkBroadcast(nullptr, nullptr, 25'000'000, blinkFloat32, 0,
                           comm, nullptr),
            blinkSuccess);
  blink::CollectiveResult result;
  ASSERT_EQ(blinkCommLastResult(comm, &result), blinkSuccess);
  EXPECT_DOUBLE_EQ(result.bytes, 1e8);
  EXPECT_GT(result.algorithm_bw, 1e9);
  blinkCommDestroy(comm);
}

TEST(NcclCompat, AllReduceOnDgx2) {
  blinkComm_t comm = nullptr;
  int gpus[16];
  for (int i = 0; i < 16; ++i) gpus[i] = i;
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx2", 16, gpus), blinkSuccess);
  ASSERT_EQ(blinkAllReduce(nullptr, nullptr, 1 << 20, blinkFloat32, blinkSum,
                           comm, nullptr),
            blinkSuccess);
  blink::CollectiveResult result;
  blinkCommLastResult(comm, &result);
  EXPECT_GT(result.seconds, 0.0);
  blinkCommDestroy(comm);
}

TEST(NcclCompat, InvalidRootRejected) {
  blinkComm_t comm = nullptr;
  const int gpus[] = {0, 1, 2};
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx1p", 3, gpus), blinkSuccess);
  EXPECT_EQ(blinkBroadcast(nullptr, nullptr, 1024, blinkFloat32, 7, comm,
                           nullptr),
            blinkInvalidArgument);
  EXPECT_EQ(blinkBroadcast(nullptr, nullptr, 1024, blinkFloat32, -1, comm,
                           nullptr),
            blinkInvalidArgument);
  EXPECT_EQ(blinkReduce(nullptr, nullptr, 1024, blinkFloat32, blinkSum, 3,
                        comm, nullptr),
            blinkInvalidArgument);
  // A dtype outside the enum (e.g. NCCL's bfloat16 = 9) is rejected rather
  // than silently computing a zero-byte transfer.
  EXPECT_EQ(blinkBroadcast(nullptr, nullptr, 1024,
                           static_cast<blinkDataType_t>(9), 0, comm, nullptr),
            blinkInvalidArgument);
  blinkCommDestroy(comm);
}

TEST(NcclCompat, ZeroCountRejected) {
  blinkComm_t comm = nullptr;
  const int gpus[] = {0, 1, 2, 3};
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx1v", 4, gpus), blinkSuccess);
  EXPECT_EQ(blinkBroadcast(nullptr, nullptr, 0, blinkFloat32, 0, comm,
                           nullptr),
            blinkInvalidArgument);
  EXPECT_EQ(blinkAllReduce(nullptr, nullptr, 0, blinkFloat32, blinkSum, comm,
                           nullptr),
            blinkInvalidArgument);
  EXPECT_EQ(blinkAllGather(nullptr, nullptr, 0, blinkFloat32, comm, nullptr),
            blinkInvalidArgument);
  EXPECT_EQ(blinkReduceScatter(nullptr, nullptr, 0, blinkFloat32, blinkSum,
                               comm, nullptr),
            blinkInvalidArgument);
  blinkCommDestroy(comm);
}

TEST(NcclCompat, GroupRoundTrip) {
  blinkComm_t comm = nullptr;
  const int gpus[] = {0, 1, 2, 3};
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx1v", 4, gpus), blinkSuccess);
  // Baseline: the same broadcast run solo.
  ASSERT_EQ(blinkBroadcast(nullptr, nullptr, 1 << 22, blinkFloat32, 0, comm,
                           nullptr),
            blinkSuccess);
  blink::CollectiveResult solo;
  ASSERT_EQ(blinkCommLastResult(comm, &solo), blinkSuccess);

  ASSERT_EQ(blinkGroupStart(), blinkSuccess);
  EXPECT_EQ(blinkBroadcast(nullptr, nullptr, 1 << 22, blinkFloat32, 0, comm,
                           nullptr),
            blinkSuccess);
  EXPECT_EQ(blinkAllReduce(nullptr, nullptr, 1 << 20, blinkFloat32, blinkSum,
                           comm, nullptr),
            blinkSuccess);
  // Queued, not yet launched: the last result is still the solo broadcast.
  blink::CollectiveResult pending;
  ASSERT_EQ(blinkCommLastResult(comm, &pending), blinkSuccess);
  EXPECT_DOUBLE_EQ(pending.seconds, solo.seconds);
  ASSERT_EQ(blinkGroupEnd(), blinkSuccess);

  int count = 0;
  ASSERT_EQ(blinkCommGroupResultCount(comm, &count), blinkSuccess);
  ASSERT_EQ(count, 2);
  blink::CollectiveResult r0, r1, summary;
  ASSERT_EQ(blinkCommGroupResult(comm, 0, &r0), blinkSuccess);
  ASSERT_EQ(blinkCommGroupResult(comm, 1, &r1), blinkSuccess);
  EXPECT_EQ(blinkCommGroupResult(comm, 2, &r1), blinkInvalidArgument);
  EXPECT_DOUBLE_EQ(r0.bytes, static_cast<double>(4 * (1 << 22)));
  EXPECT_GT(r0.seconds, 0.0);
  EXPECT_GT(r1.seconds, 0.0);
  // Under contention the broadcast cannot beat its solo run.
  EXPECT_GE(r0.seconds, 0.999 * solo.seconds);
  ASSERT_EQ(blinkCommLastResult(comm, &summary), blinkSuccess);
  EXPECT_DOUBLE_EQ(summary.seconds, std::max(r0.seconds, r1.seconds));
  EXPECT_DOUBLE_EQ(summary.bytes, r0.bytes + r1.bytes);
  blinkCommDestroy(comm);
}

TEST(NcclCompat, NestedGroupLaunchesOnOutermostEnd) {
  blinkComm_t comm = nullptr;
  const int gpus[] = {4, 5, 6, 7};
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx1v", 4, gpus), blinkSuccess);
  ASSERT_EQ(blinkGroupStart(), blinkSuccess);
  ASSERT_EQ(blinkGroupStart(), blinkSuccess);
  EXPECT_EQ(blinkBroadcast(nullptr, nullptr, 1 << 20, blinkFloat32, 0, comm,
                           nullptr),
            blinkSuccess);
  ASSERT_EQ(blinkGroupEnd(), blinkSuccess);  // inner: nothing launches
  int count = -1;
  ASSERT_EQ(blinkCommGroupResultCount(comm, &count), blinkSuccess);
  EXPECT_EQ(count, 0);
  ASSERT_EQ(blinkGroupEnd(), blinkSuccess);  // outermost: launch
  ASSERT_EQ(blinkCommGroupResultCount(comm, &count), blinkSuccess);
  EXPECT_EQ(count, 1);
  blinkCommDestroy(comm);
}

TEST(NcclCompat, GroupEndWithoutStartFails) {
  EXPECT_EQ(blinkGroupEnd(), blinkInvalidArgument);
}

TEST(NcclCompat, EmptyGroupIsANoOp) {
  ASSERT_EQ(blinkGroupStart(), blinkSuccess);
  EXPECT_EQ(blinkGroupEnd(), blinkSuccess);
}

TEST(NcclCompat, BackendConfigSelectsAlgorithm) {
  int gpus[16];
  for (int i = 0; i < 16; ++i) gpus[i] = i;
  const size_t count = 16'000'000;  // 64 MB of float32
  std::map<blinkBackend_t, double> seconds;
  for (const blinkBackend_t kind :
       {blinkBackendBlink, blinkBackendNccl, blinkBackendRing,
        blinkBackendDoubleBinary, blinkBackendButterfly}) {
    blinkComm_t comm = nullptr;
    const blinkBackendConfig_t config{kind, nullptr, 0};
    ASSERT_EQ(blinkCommInitAllWithConfig(&comm, "dgx2", 16, gpus, &config),
              blinkSuccess);
    blinkBackend_t got;
    ASSERT_EQ(blinkCommBackend(comm, &got), blinkSuccess);
    EXPECT_EQ(got, kind);
    ASSERT_EQ(blinkAllReduce(nullptr, nullptr, count, blinkFloat32, blinkSum,
                             comm, nullptr),
              blinkSuccess);
    blink::CollectiveResult result;
    ASSERT_EQ(blinkCommLastResult(comm, &result), blinkSuccess);
    EXPECT_GT(result.seconds, 0.0);
    seconds[kind] = result.seconds;
    blinkCommDestroy(comm);
  }
  // Different algorithms, different schedules, different timings.
  EXPECT_NE(seconds[blinkBackendRing], seconds[blinkBackendDoubleBinary]);
  EXPECT_NE(seconds[blinkBackendRing], seconds[blinkBackendButterfly]);
}

TEST(NcclCompat, BackendEnvVarSelectsAlgorithm) {
  const int gpus[] = {0, 1, 2, 3};
  setenv("BLINK_BACKEND", "nccl", 1);
  blinkComm_t comm = nullptr;
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx1v", 4, gpus), blinkSuccess);
  blinkBackend_t got;
  ASSERT_EQ(blinkCommBackend(comm, &got), blinkSuccess);
  EXPECT_EQ(got, blinkBackendNccl);
  blinkCommDestroy(comm);
  // An unknown name fails loudly instead of silently running Blink.
  setenv("BLINK_BACKEND", "notabackend", 1);
  EXPECT_EQ(blinkCommInitAll(&comm, "dgx1v", 4, gpus), blinkInvalidArgument);
  // An explicit config wins over the (bad) environment.
  const blinkBackendConfig_t config{blinkBackendRing, nullptr, 0};
  ASSERT_EQ(blinkCommInitAllWithConfig(&comm, "dgx1v", 4, gpus, &config),
            blinkSuccess);
  ASSERT_EQ(blinkCommBackend(comm, &got), blinkSuccess);
  EXPECT_EQ(got, blinkBackendRing);
  blinkCommDestroy(comm);
  unsetenv("BLINK_BACKEND");
}

TEST(NcclCompat, ErrorMappingForUnsupportedCollectives) {
  // The butterfly backend only lowers AllReduce; the facade must surface
  // blinkInvalidArgument (the engine's std::invalid_argument), not an
  // internal error — solo and inside groups.
  const int gpus[] = {0, 1, 2, 3};
  const blinkBackendConfig_t config{blinkBackendButterfly, nullptr, 0};
  blinkComm_t comm = nullptr;
  ASSERT_EQ(blinkCommInitAllWithConfig(&comm, "dgx2", 4, gpus, &config),
            blinkSuccess);
  EXPECT_EQ(blinkBroadcast(nullptr, nullptr, 1024, blinkFloat32, 0, comm,
                           nullptr),
            blinkInvalidArgument);
  EXPECT_EQ(blinkAllReduce(nullptr, nullptr, 1024, blinkFloat32, blinkSum,
                           comm, nullptr),
            blinkSuccess);
  // Grouped: the bad request is only detected at launch.
  ASSERT_EQ(blinkGroupStart(), blinkSuccess);
  EXPECT_EQ(blinkReduce(nullptr, nullptr, 1024, blinkFloat32, blinkSum, 0,
                        comm, nullptr),
            blinkSuccess);  // queued
  EXPECT_EQ(blinkGroupEnd(), blinkInvalidArgument);
  int count = -1;
  ASSERT_EQ(blinkCommGroupResultCount(comm, &count), blinkSuccess);
  EXPECT_EQ(count, 0);  // failed group leaves no stale results
  blinkCommDestroy(comm);
}

TEST(NcclCompat, GroupRoundTripOnBaselineBackend) {
  const int gpus[] = {0, 1, 2, 3};
  const blinkBackendConfig_t config{blinkBackendNccl, nullptr, 0};
  blinkComm_t comm = nullptr;
  ASSERT_EQ(blinkCommInitAllWithConfig(&comm, "dgx1v", 4, gpus, &config),
            blinkSuccess);
  ASSERT_EQ(blinkGroupStart(), blinkSuccess);
  EXPECT_EQ(blinkBroadcast(nullptr, nullptr, 1 << 22, blinkFloat32, 0, comm,
                           nullptr),
            blinkSuccess);
  EXPECT_EQ(blinkAllReduce(nullptr, nullptr, 1 << 20, blinkFloat32, blinkSum,
                           comm, nullptr),
            blinkSuccess);
  ASSERT_EQ(blinkGroupEnd(), blinkSuccess);
  int count = 0;
  ASSERT_EQ(blinkCommGroupResultCount(comm, &count), blinkSuccess);
  ASSERT_EQ(count, 2);
  blink::CollectiveResult r0, r1;
  ASSERT_EQ(blinkCommGroupResult(comm, 0, &r0), blinkSuccess);
  ASSERT_EQ(blinkCommGroupResult(comm, 1, &r1), blinkSuccess);
  EXPECT_GT(r0.seconds, 0.0);
  EXPECT_GT(r1.seconds, 0.0);
  blinkCommDestroy(comm);
}

TEST(NcclCompat, ReduceAndAllGatherAndReduceScatter) {
  blinkComm_t comm = nullptr;
  const int gpus[] = {0, 1, 2, 3};
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx1v", 4, gpus), blinkSuccess);
  EXPECT_EQ(blinkReduce(nullptr, nullptr, 1 << 20, blinkFloat32, blinkSum, 0,
                        comm, nullptr),
            blinkSuccess);
  EXPECT_EQ(blinkAllGather(nullptr, nullptr, 1 << 20, blinkFloat32, comm,
                           nullptr),
            blinkSuccess);
  EXPECT_EQ(blinkReduceScatter(nullptr, nullptr, 1 << 20, blinkFloat32,
                               blinkSum, comm, nullptr),
            blinkSuccess);
  blinkCommDestroy(comm);
}

// blinkBackendAuto (config or BLINK_BACKEND=auto) registers every algorithm
// and picks the fastest per shape through the engine's auto selector.
TEST(NcclCompat, AutoBackendSelection) {
  int gpus[16];
  for (int i = 0; i < 16; ++i) gpus[i] = i;
  blinkComm_t comm = nullptr;
  const blinkBackendConfig_t config{blinkBackendAuto, nullptr, 0};
  ASSERT_EQ(blinkCommInitAllWithConfig(&comm, "dgx2", 16, gpus, &config),
            blinkSuccess);
  blinkBackend_t got;
  ASSERT_EQ(blinkCommBackend(comm, &got), blinkSuccess);
  EXPECT_EQ(got, blinkBackendAuto);
  ASSERT_EQ(blinkAllReduce(nullptr, nullptr, 16'000'000, blinkFloat32,
                           blinkSum, comm, nullptr),
            blinkSuccess);
  blink::CollectiveResult result;
  ASSERT_EQ(blinkCommLastResult(comm, &result), blinkSuccess);
  EXPECT_GT(result.seconds, 0.0);
  blinkCommDestroy(comm);

  setenv("BLINK_BACKEND", "auto", 1);
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx2", 16, gpus), blinkSuccess);
  ASSERT_EQ(blinkCommBackend(comm, &got), blinkSuccess);
  EXPECT_EQ(got, blinkBackendAuto);
  blinkCommDestroy(comm);
  unsetenv("BLINK_BACKEND");
  // The cluster backend is created by blinkClusterCommInitAll, not a config.
  const blinkBackendConfig_t cluster{blinkBackendCluster, nullptr, 0};
  EXPECT_EQ(blinkCommInitAllWithConfig(&comm, "dgx2", 16, gpus, &cluster),
            blinkInvalidArgument);
}

// A communicator over a 3+5 fragmented allocation: every collective runs
// through the three-phase cluster engine with global server-major ranks.
TEST(NcclCompat, ClusterCommInitAll) {
  blinkComm_t comm = nullptr;
  const int ndev[] = {3, 5};
  const int gpus[] = {0, 1, 2, 3, 4, 5, 6, 7};
  ASSERT_EQ(blinkClusterCommInitAll(&comm, "dgx1v", 2, ndev, gpus),
            blinkSuccess);
  int count = 0;
  ASSERT_EQ(blinkCommCount(comm, &count), blinkSuccess);
  EXPECT_EQ(count, 8);
  blinkBackend_t got;
  ASSERT_EQ(blinkCommBackend(comm, &got), blinkSuccess);
  EXPECT_EQ(got, blinkBackendCluster);

  ASSERT_EQ(blinkAllReduce(nullptr, nullptr, 16'000'000, blinkFloat32,
                           blinkSum, comm, nullptr),
            blinkSuccess);
  blink::CollectiveResult result;
  ASSERT_EQ(blinkCommLastResult(comm, &result), blinkSuccess);
  EXPECT_GT(result.seconds, 0.0);
  // Rooted collectives take global ranks — including server 1's GPUs.
  EXPECT_EQ(blinkBroadcast(nullptr, nullptr, 1 << 22, blinkFloat32, 7, comm,
                           nullptr),
            blinkSuccess);
  EXPECT_EQ(blinkReduce(nullptr, nullptr, 1 << 22, blinkFloat32, blinkSum, 4,
                        comm, nullptr),
            blinkSuccess);
  blinkCommDestroy(comm);
}

// Bugfix satellite: the cluster path validates roots and degenerate sizes
// like every engine and maps them to blinkInvalidArgument.
TEST(NcclCompat, ClusterValidationMapsToInvalidArgument) {
  blinkComm_t comm = nullptr;
  const int ndev[] = {3, 5};
  const int gpus[] = {0, 1, 2, 3, 4, 5, 6, 7};
  ASSERT_EQ(blinkClusterCommInitAll(&comm, "dgx1v", 2, ndev, gpus),
            blinkSuccess);
  // Root 8 is past the global (cluster-wide) GPU count.
  EXPECT_EQ(blinkBroadcast(nullptr, nullptr, 1 << 20, blinkFloat32, 8, comm,
                           nullptr),
            blinkInvalidArgument);
  // One byte cannot split across three partitions.
  EXPECT_EQ(blinkAllReduce(nullptr, nullptr, 1, blinkInt8, blinkSum, comm,
                           nullptr),
            blinkInvalidArgument);
  blinkCommDestroy(comm);
  // Malformed cluster shapes fail at init.
  EXPECT_EQ(blinkClusterCommInitAll(&comm, "dgx1v", 1, ndev, gpus),
            blinkInvalidArgument);
  const int bad_ndev[] = {3, 0};
  EXPECT_EQ(blinkClusterCommInitAll(&comm, "dgx1v", 2, bad_ndev, gpus),
            blinkInvalidArgument);
  const int bad_gpus[] = {0, 1, 2, 3, 4, 5, 6, 99};
  EXPECT_EQ(blinkClusterCommInitAll(&comm, "dgx1v", 2, ndev, bad_gpus),
            blinkInvalidArgument);
}

// Serving satellite: the facade exposes the communicator's plan-cache
// counters, so operators can watch warm-path health without the C++ API.
TEST(NcclCompat, CacheStatsCountMissesAndHits) {
  blinkComm_t comm = nullptr;
  const int gpus[] = {0, 1, 2, 3};
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx1v", 4, gpus), blinkSuccess);

  blinkCacheStats_t stats;
  ASSERT_EQ(blinkCommCacheStats(comm, &stats), blinkSuccess);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.size, 0u);
  EXPECT_GT(stats.capacity, 0u);

  // First launch compiles (one miss); the repeat is served from the cache.
  ASSERT_EQ(blinkAllReduce(nullptr, nullptr, 1 << 22, blinkFloat32, blinkSum,
                           comm, nullptr),
            blinkSuccess);
  ASSERT_EQ(blinkCommCacheStats(comm, &stats), blinkSuccess);
  const unsigned long long misses_after_cold = stats.misses;
  EXPECT_GE(misses_after_cold, 1u);
  EXPECT_EQ(stats.size, 1u);

  ASSERT_EQ(blinkAllReduce(nullptr, nullptr, 1 << 22, blinkFloat32, blinkSum,
                           comm, nullptr),
            blinkSuccess);
  ASSERT_EQ(blinkCommCacheStats(comm, &stats), blinkSuccess);
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(stats.misses, misses_after_cold);  // warm repeat: no new miss
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.evictions, 0u);

  EXPECT_EQ(blinkCommCacheStats(nullptr, &stats), blinkInvalidArgument);
  EXPECT_EQ(blinkCommCacheStats(comm, nullptr), blinkInvalidArgument);
  blinkCommDestroy(comm);
}

// Grouped launches on a cluster communicator: queued between GroupStart/End
// and launched as one contention group on the multi-server fabric.
TEST(NcclCompat, ClusterGroupRoundTrip) {
  blinkComm_t comm = nullptr;
  const int ndev[] = {3, 5};
  const int gpus[] = {0, 1, 2, 3, 4, 5, 6, 7};
  ASSERT_EQ(blinkClusterCommInitAll(&comm, "dgx1v", 2, ndev, gpus),
            blinkSuccess);
  ASSERT_EQ(blinkGroupStart(), blinkSuccess);
  EXPECT_EQ(blinkAllReduce(nullptr, nullptr, 8'000'000, blinkFloat32,
                           blinkSum, comm, nullptr),
            blinkSuccess);
  EXPECT_EQ(blinkBroadcast(nullptr, nullptr, 1'000'000, blinkFloat32, 0, comm,
                           nullptr),
            blinkSuccess);
  ASSERT_EQ(blinkGroupEnd(), blinkSuccess);
  int n = 0;
  ASSERT_EQ(blinkCommGroupResultCount(comm, &n), blinkSuccess);
  EXPECT_EQ(n, 2);
  blink::CollectiveResult r;
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(blinkCommGroupResult(comm, i, &r), blinkSuccess);
    EXPECT_GT(r.seconds, 0.0);
  }
  blinkCommDestroy(comm);
}

}  // namespace
