#include <gtest/gtest.h>

#include "blink/blink/nccl_compat.h"

namespace {

TEST(NcclCompat, TypeSizes) {
  EXPECT_EQ(blinkTypeSize(blinkInt8), 1u);
  EXPECT_EQ(blinkTypeSize(blinkFloat16), 2u);
  EXPECT_EQ(blinkTypeSize(blinkFloat32), 4u);
  EXPECT_EQ(blinkTypeSize(blinkFloat64), 8u);
}

TEST(NcclCompat, InitAndDestroy) {
  blinkComm_t comm = nullptr;
  const int gpus[] = {0, 1, 2, 3};
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx1v", 4, gpus), blinkSuccess);
  int count = 0;
  EXPECT_EQ(blinkCommCount(comm, &count), blinkSuccess);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(blinkCommDestroy(comm), blinkSuccess);
}

TEST(NcclCompat, RejectsBadArguments) {
  blinkComm_t comm = nullptr;
  const int gpus[] = {0, 99};
  EXPECT_EQ(blinkCommInitAll(&comm, "dgx1v", 2, gpus), blinkInvalidArgument);
  EXPECT_EQ(blinkCommInitAll(&comm, "notamachine", 1, gpus),
            blinkInvalidArgument);
  EXPECT_EQ(blinkCommInitAll(nullptr, "dgx1v", 1, gpus), blinkInvalidArgument);
}

TEST(NcclCompat, BroadcastRecordsResult) {
  blinkComm_t comm = nullptr;
  const int gpus[] = {4, 5, 6, 7};
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx1v", 4, gpus), blinkSuccess);
  ASSERT_EQ(blinkBroadcast(nullptr, nullptr, 25'000'000, blinkFloat32, 0,
                           comm, nullptr),
            blinkSuccess);
  blink::CollectiveResult result;
  ASSERT_EQ(blinkCommLastResult(comm, &result), blinkSuccess);
  EXPECT_DOUBLE_EQ(result.bytes, 1e8);
  EXPECT_GT(result.algorithm_bw, 1e9);
  blinkCommDestroy(comm);
}

TEST(NcclCompat, AllReduceOnDgx2) {
  blinkComm_t comm = nullptr;
  int gpus[16];
  for (int i = 0; i < 16; ++i) gpus[i] = i;
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx2", 16, gpus), blinkSuccess);
  ASSERT_EQ(blinkAllReduce(nullptr, nullptr, 1 << 20, blinkFloat32, blinkSum,
                           comm, nullptr),
            blinkSuccess);
  blink::CollectiveResult result;
  blinkCommLastResult(comm, &result);
  EXPECT_GT(result.seconds, 0.0);
  blinkCommDestroy(comm);
}

TEST(NcclCompat, InvalidRootRejected) {
  blinkComm_t comm = nullptr;
  const int gpus[] = {0, 1, 2};
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx1p", 3, gpus), blinkSuccess);
  EXPECT_EQ(blinkBroadcast(nullptr, nullptr, 1024, blinkFloat32, 7, comm,
                           nullptr),
            blinkInvalidArgument);
  blinkCommDestroy(comm);
}

TEST(NcclCompat, ReduceAndAllGatherAndReduceScatter) {
  blinkComm_t comm = nullptr;
  const int gpus[] = {0, 1, 2, 3};
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx1v", 4, gpus), blinkSuccess);
  EXPECT_EQ(blinkReduce(nullptr, nullptr, 1 << 20, blinkFloat32, blinkSum, 0,
                        comm, nullptr),
            blinkSuccess);
  EXPECT_EQ(blinkAllGather(nullptr, nullptr, 1 << 20, blinkFloat32, comm,
                           nullptr),
            blinkSuccess);
  EXPECT_EQ(blinkReduceScatter(nullptr, nullptr, 1 << 20, blinkFloat32,
                               blinkSum, comm, nullptr),
            blinkSuccess);
  blinkCommDestroy(comm);
}

}  // namespace
