// Parallel cold-path planning: per-PlanKey single-flight semantics, the
// determinism contract (parallel-compiled plans are bit-identical to serial
// ones — planner width is a pure speed knob, never a fingerprint), and the
// batched compile_batch()/precompile() entry points.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "blink/baselines/backends.h"
#include "blink/blink/communicator.h"
#include "blink/blink/engine.h"
#include "blink/blink/plan_io.h"
#include "blink/common/single_flight.h"
#include "blink/topology/builders.h"

namespace blink {
namespace {

// --- SingleFlight ----------------------------------------------------------

TEST(SingleFlight, LeaderRunsOnceAndWaitersShareTheValue) {
  common::SingleFlight<int, std::shared_ptr<int>> flight;
  std::atomic<int> computes{0};
  std::atomic<int> leaders{0};
  constexpr int kRacers = 8;
  std::vector<std::shared_ptr<int>> results(kRacers);
  std::atomic<bool> go{false};
  std::vector<std::thread> racers;
  for (int t = 0; t < kRacers; ++t) {
    racers.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      bool leader = false;
      results[t] = flight.run(
          /*key=*/7,
          [&] {
            computes.fetch_add(1);
            // Hold the flight open long enough for the others to join it.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            return std::make_shared<int>(42);
          },
          &leader);
      if (leader) leaders.fetch_add(1);
    });
  }
  go.store(true);
  for (auto& r : racers) r.join();
  // Every racer that joined an in-flight computation shares the leader's
  // value (same pointer). Racers that arrived after a flight retired start
  // a fresh one, so computes can exceed 1 — but leaders == computes, and
  // every result is valid.
  EXPECT_EQ(leaders.load(), computes.load());
  EXPECT_GE(computes.load(), 1);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(*r, 42);
  }
}

TEST(SingleFlight, ExceptionPropagatesAndTheKeyRetires) {
  common::SingleFlight<int, int> flight;
  EXPECT_THROW(flight.run(1,
                          []() -> int {
                            throw std::runtime_error("lowering failed");
                          }),
               std::runtime_error);
  // The failed flight retired its key: the next caller retries and wins.
  EXPECT_EQ(flight.run(1, [] { return 5; }), 5);
}

TEST(SingleFlight, DistinctKeysProceedIndependently) {
  common::SingleFlight<int, int> flight;
  for (int k = 0; k < 64; ++k) {
    EXPECT_EQ(flight.run(k, [&] { return k * k; }), k * k);
  }
}

// --- determinism: parallel == serial, bit for bit --------------------------

std::string serialized(const Communicator& comm,
                       const std::shared_ptr<const CollectivePlan>& plan) {
  (void)comm;
  std::string out;
  serialize_program(plan->program(), &out);
  return out;
}

TEST(ParallelPlanning, ParallelCompilesAreBitIdenticalToSerial) {
  const auto machine = topo::make_dgx1v();
  constexpr int kShapes = 8;
  const auto kind_of = [](int i) {
    return i % 2 == 0 ? CollectiveKind::kBroadcast
                      : CollectiveKind::kAllReduce;
  };
  const auto bytes_of = [](int i) { return 4e6 * (i + 1); };

  // Serial reference: planner_threads == 1, one thread.
  CommunicatorOptions serial_opts;
  serial_opts.planner_threads = 1;
  Communicator serial(machine, serial_opts);
  EXPECT_EQ(serial.planner_threads(), 1u);
  std::vector<std::string> want(kShapes);
  for (int i = 0; i < kShapes; ++i) {
    want[i] = serialized(serial, serial.compile(kind_of(i), bytes_of(i), 0));
  }

  // Parallel: default pool width, racing client threads.
  Communicator parallel(machine);
  std::vector<std::string> got(kShapes);
  std::atomic<int> next{0};
  const auto worker = [&] {
    for (int i = next.fetch_add(1); i < kShapes; i = next.fetch_add(1)) {
      got[i] = serialized(parallel,
                          parallel.compile(kind_of(i), bytes_of(i), 0));
    }
  };
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) clients.emplace_back(worker);
  for (auto& c : clients) c.join();

  for (int i = 0; i < kShapes; ++i) {
    ASSERT_FALSE(want[i].empty());
    EXPECT_EQ(want[i], got[i]) << "shape " << i;
  }
}

TEST(ParallelPlanning, SameShapeRaceCompilesExactlyOnce) {
  Communicator comm(topo::make_dgx1v());
  constexpr int kRacers = 6;
  std::vector<std::shared_ptr<const CollectivePlan>> plans(kRacers);
  std::atomic<bool> go{false};
  std::vector<std::thread> racers;
  for (int t = 0; t < kRacers; ++t) {
    racers.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      plans[t] = comm.compile(CollectiveKind::kAllReduce, 64e6);
    });
  }
  go.store(true);
  for (auto& r : racers) r.join();

  // One lowering, shared by everyone: a single cache miss, and every racer
  // holds the same immutable plan.
  EXPECT_EQ(comm.plan_cache().misses(), 1u);
  EXPECT_EQ(comm.plan_cache().hits(),
            static_cast<std::uint64_t>(kRacers - 1));
  for (int t = 1; t < kRacers; ++t) {
    EXPECT_EQ(plans[t].get(), plans[0].get());
  }
}

// --- batched entry points --------------------------------------------------

TEST(ParallelPlanning, CompileBatchMatchesPerRequestCompiles) {
  const auto machine = topo::make_dgx1v();
  Communicator comm(machine);
  const std::vector<CollectiveRequest> reqs{
      {CollectiveKind::kBroadcast, 16e6, 0, 0},
      {CollectiveKind::kAllReduce, 32e6, -1, 0},
      {CollectiveKind::kAllGather, 8e6, -1, 0},
      {CollectiveKind::kBroadcast, 16e6, 0, 0},  // duplicate key: coalesces
  };
  const auto plans = comm.compile_batch(reqs);
  ASSERT_EQ(plans.size(), reqs.size());
  for (const auto& plan : plans) ASSERT_NE(plan, nullptr);
  // Duplicate requests coalesced onto one lowering/plan.
  EXPECT_EQ(plans[0].get(), plans[3].get());
  // The batch is identical to compiling each request individually — the
  // per-request compiles below are all cache hits on the batch's plans.
  const auto misses = comm.plan_cache().misses();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto again =
        comm.compile(reqs[i].kind, reqs[i].bytes, reqs[i].root);
    EXPECT_EQ(again.get(), plans[i].get()) << "request " << i;
  }
  EXPECT_EQ(comm.plan_cache().misses(), misses);
}

TEST(ParallelPlanning, PrecompileWarmsEveryKindOnce) {
  Communicator comm(topo::make_dgx1v());
  const std::size_t cold = comm.precompile(64e6, /*root=*/0);
  EXPECT_GT(cold, 0u);
  // The shape is now fully warm: precompiling again finds nothing cold, and
  // compiling any kind is a pure cache hit.
  EXPECT_EQ(comm.precompile(64e6, /*root=*/0), 0u);
  const auto misses = comm.plan_cache().misses();
  comm.compile(CollectiveKind::kAllReduce, 64e6, 0);
  comm.compile(CollectiveKind::kBroadcast, 64e6, 0);
  EXPECT_EQ(comm.plan_cache().misses(), misses);
  EXPECT_THROW(comm.precompile(-1.0), std::invalid_argument);
}

// --- auto bake-off determinism ---------------------------------------------

std::unique_ptr<Communicator> auto_engine(const topo::Topology& topo,
                                          int planner_threads) {
  CommunicatorOptions opts;
  opts.planner_threads = planner_threads;
  auto comm = std::make_unique<Communicator>(topo, opts);
  for (const char* name : {"nccl", "ring", "double_binary", "butterfly"}) {
    comm->register_backend(baselines::make_baseline_backend(
        name, comm->topology(), comm->fabric(), baselines::NcclOptions{}));
  }
  return comm;
}

TEST(ParallelPlanning, AutoBakeOffPicksTheSameBackendAtAnyWidth) {
  const auto machine = topo::make_dgx1v();
  const auto serial = auto_engine(machine, /*planner_threads=*/1);
  const auto parallel = auto_engine(machine, /*planner_threads=*/0);
  for (const double bytes : {1e6, 64e6, 512e6}) {
    const auto a = serial->compile(CollectiveKind::kAllReduce, bytes, -1,
                                   CollectiveEngine::kAutoBackend);
    const auto b = parallel->compile(CollectiveKind::kAllReduce, bytes, -1,
                                     CollectiveEngine::kAutoBackend);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->backend(), b->backend()) << bytes;
    std::string sa, sb;
    serialize_program(a->program(), &sa);
    serialize_program(b->program(), &sb);
    EXPECT_EQ(sa, sb) << bytes;
  }
}

}  // namespace
}  // namespace blink
