// Plan-store garbage collection: LRU-by-mtime eviction under a total-size
// cap, protection of live files, and report accounting.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "blink/serve/store_gc.h"

namespace blink::serve {
namespace {

namespace fs = std::filesystem;

class StoreGcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs the suite in parallel, and a shared
    // directory would let one test's SetUp wipe another's files mid-run.
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("blink-store-gc-") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  // Writes a store file of |bytes| aged |age_seconds| into the past, so the
  // LRU order is explicit regardless of how fast the test runs.
  fs::path put(const std::string& name, std::size_t bytes,
               int age_seconds) {
    const fs::path path = dir_ / name;
    std::ofstream(path) << std::string(bytes, 'p');
    fs::last_write_time(path, fs::file_time_type::clock::now() -
                                  std::chrono::seconds(age_seconds));
    return path;
  }

  fs::path dir_;
};

TEST_F(StoreGcTest, MissingDirectoryIsEmptyReport) {
  StoreGcOptions options;
  options.max_total_bytes = 1;
  const StoreGcReport report = store_gc((dir_ / "nope").string(), options);
  EXPECT_EQ(report.files_scanned, 0u);
  EXPECT_EQ(report.files_evicted, 0u);
  EXPECT_EQ(report.bytes_remaining, 0u);
}

TEST_F(StoreGcTest, NoCapIsReportOnly) {
  put("plans-0000000000000001.bpc", 1000, 30);
  put("plans-0000000000000002.bpc", 2000, 20);
  const StoreGcReport report = store_gc(dir_.string(), StoreGcOptions{});
  EXPECT_EQ(report.files_scanned, 2u);
  EXPECT_EQ(report.bytes_scanned, 3000u);
  EXPECT_EQ(report.files_evicted, 0u);
  EXPECT_EQ(report.bytes_remaining, 3000u);
  EXPECT_TRUE(fs::exists(dir_ / "plans-0000000000000001.bpc"));
}

TEST_F(StoreGcTest, EvictsOldestFirstUntilUnderCap) {
  put("plans-000000000000000a.bpc", 1000, 40);  // oldest
  put("plans-000000000000000b.bpc", 1000, 30);
  put("plans-000000000000000c.bpc", 1000, 20);
  put("plans-000000000000000d.bpc", 1000, 10);  // newest
  StoreGcOptions options;
  options.max_total_bytes = 2000;
  const StoreGcReport report = store_gc(dir_.string(), options);
  EXPECT_EQ(report.files_scanned, 4u);
  EXPECT_EQ(report.files_evicted, 2u);
  EXPECT_EQ(report.bytes_evicted, 2000u);
  EXPECT_EQ(report.bytes_remaining, 2000u);
  // Eviction is strictly oldest-first: a and b go, c and d stay.
  EXPECT_FALSE(fs::exists(dir_ / "plans-000000000000000a.bpc"));
  EXPECT_FALSE(fs::exists(dir_ / "plans-000000000000000b.bpc"));
  EXPECT_TRUE(fs::exists(dir_ / "plans-000000000000000c.bpc"));
  EXPECT_TRUE(fs::exists(dir_ / "plans-000000000000000d.bpc"));
}

TEST_F(StoreGcTest, AlreadyUnderCapEvictsNothing) {
  put("plans-0000000000000001.bpc", 500, 10);
  StoreGcOptions options;
  options.max_total_bytes = 1000;
  const StoreGcReport report = store_gc(dir_.string(), options);
  EXPECT_EQ(report.files_evicted, 0u);
  EXPECT_EQ(report.bytes_remaining, 500u);
}

TEST_F(StoreGcTest, ProtectedFilesSurviveEvenWhenOldest) {
  const fs::path live = put("plans-00000000000000aa.bpc", 1500, 99);
  put("plans-00000000000000bb.bpc", 1500, 10);
  put("plans-00000000000000cc.bpc", 1500, 5);
  StoreGcOptions options;
  options.max_total_bytes = 2000;
  options.protect.push_back(live.string());
  const StoreGcReport report = store_gc(dir_.string(), options);
  EXPECT_EQ(report.files_protected, 1u);
  EXPECT_TRUE(fs::exists(live));
  // bb (older than cc) is evicted; the protected file still counts toward
  // the total, so cc must go too to reach the cap.
  EXPECT_FALSE(fs::exists(dir_ / "plans-00000000000000bb.bpc"));
  EXPECT_FALSE(fs::exists(dir_ / "plans-00000000000000cc.bpc"));
  EXPECT_EQ(report.files_evicted, 2u);
  EXPECT_EQ(report.bytes_remaining, 1500u);
}

TEST_F(StoreGcTest, ProtectedBytesAloneMayExceedCapWithoutEviction) {
  const fs::path live = put("plans-00000000000000aa.bpc", 4000, 50);
  StoreGcOptions options;
  options.max_total_bytes = 1000;
  options.protect.push_back(live.string());
  const StoreGcReport report = store_gc(dir_.string(), options);
  EXPECT_EQ(report.files_evicted, 0u);
  EXPECT_EQ(report.files_protected, 1u);
  EXPECT_EQ(report.bytes_remaining, 4000u);
  EXPECT_TRUE(fs::exists(live));
}

TEST_F(StoreGcTest, ProtectListToleratesNotYetWrittenPaths) {
  put("plans-0000000000000001.bpc", 1000, 10);
  StoreGcOptions options;
  options.max_total_bytes = 500;
  // A live shard that has not flushed yet: its store path does not exist.
  options.protect.push_back((dir_ / "plans-ffffffffffffffff.bpc").string());
  const StoreGcReport report = store_gc(dir_.string(), options);
  EXPECT_EQ(report.files_evicted, 1u);
  EXPECT_EQ(report.files_protected, 0u);
}

TEST_F(StoreGcTest, IgnoresNonStoreFiles) {
  put("plans-0000000000000001.bpc", 1000, 10);
  std::ofstream(dir_ / "README.txt") << std::string(5000, 'r');
  std::ofstream(dir_ / "plans-0000000000000002.tmp") << std::string(5000, 't');
  std::ofstream(dir_ / "other-0000000000000003.bpc") << std::string(5000, 'o');
  StoreGcOptions options;
  options.max_total_bytes = 100;
  const StoreGcReport report = store_gc(dir_.string(), options);
  EXPECT_EQ(report.files_scanned, 1u);
  EXPECT_EQ(report.bytes_scanned, 1000u);
  EXPECT_EQ(report.files_evicted, 1u);
  // Only the store file is eligible; foreign files are never touched.
  EXPECT_TRUE(fs::exists(dir_ / "README.txt"));
  EXPECT_TRUE(fs::exists(dir_ / "plans-0000000000000002.tmp"));
  EXPECT_TRUE(fs::exists(dir_ / "other-0000000000000003.bpc"));
}

TEST_F(StoreGcTest, MtimeTiesBreakDeterministicallyByPath) {
  const auto stamp = fs::file_time_type::clock::now() -
                     std::chrono::seconds(60);
  for (const char* name :
       {"plans-0000000000000003.bpc", "plans-0000000000000001.bpc",
        "plans-0000000000000002.bpc"}) {
    const fs::path path = dir_ / name;
    std::ofstream(path) << std::string(1000, 'p');
    fs::last_write_time(path, stamp);
  }
  StoreGcOptions options;
  options.max_total_bytes = 2000;
  const StoreGcReport report = store_gc(dir_.string(), options);
  EXPECT_EQ(report.files_evicted, 1u);
  // Equal mtimes fall back to lexicographic path order: ...0001 goes first.
  EXPECT_FALSE(fs::exists(dir_ / "plans-0000000000000001.bpc"));
  EXPECT_TRUE(fs::exists(dir_ / "plans-0000000000000002.bpc"));
  EXPECT_TRUE(fs::exists(dir_ / "plans-0000000000000003.bpc"));
}

}  // namespace
}  // namespace blink::serve
