#include <gtest/gtest.h>

#include <algorithm>

#include "blink/graph/digraph.h"
#include "blink/topology/builders.h"

namespace blink::graph {
namespace {

TEST(DiGraph, AddEdgeBookkeeping) {
  DiGraph g(3);
  const int e0 = g.add_edge(0, 1, 5e9, 1);
  const int e1 = g.add_edge(1, 2, 7e9, 2);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.edge(e0).dst, 1);
  EXPECT_EQ(g.edge(e1).lanes, 2);
  EXPECT_EQ(g.out_edges(0).size(), 1u);
  EXPECT_EQ(g.in_edges(2).size(), 1u);
  EXPECT_TRUE(g.out_edges(2).empty());
}

TEST(DiGraph, Reachability) {
  DiGraph g(3);
  g.add_edge(0, 1, 1e9);
  EXPECT_FALSE(g.reachable_from(0));
  g.add_edge(1, 2, 1e9);
  EXPECT_TRUE(g.reachable_from(0));
  EXPECT_FALSE(g.reachable_from(2));
}

TEST(NvlinkDigraph, Dgx1vEdgesAndCapacities) {
  const auto topo = topo::make_dgx1v();
  const DiGraph g = nvlink_digraph(topo);
  EXPECT_EQ(g.num_vertices(), 8);
  // 16 undirected bundles -> 32 directed edges.
  EXPECT_EQ(g.num_edges(), 32);
  // Every directed edge capacity equals lanes * lane bw.
  for (const auto& e : g.edges()) {
    EXPECT_DOUBLE_EQ(e.capacity, e.lanes * topo.nvlink_lane_bw);
  }
}

TEST(NvlinkDigraph, NvswitchIsFullMesh) {
  const auto topo = topo::make_dgx2();
  const DiGraph g = nvlink_digraph(topo);
  EXPECT_EQ(g.num_edges(), 16 * 15);
  EXPECT_DOUBLE_EQ(g.edge(0).capacity, topo.nvswitch_gpu_bw);
}

TEST(PcieDigraph, CapacityDependsOnHierarchyDistance) {
  const auto topo = topo::make_dgx1v();
  const DiGraph g = pcie_digraph(topo);
  EXPECT_EQ(g.num_edges(), 8 * 7);
  double same_plx = 0.0;
  double cross_cpu = 0.0;
  for (const auto& e : g.edges()) {
    if (e.src == 0 && e.dst == 1) same_plx = e.capacity;      // share PLX0
    if (e.src == 0 && e.dst == 7) cross_cpu = e.capacity;     // across QPI
  }
  EXPECT_DOUBLE_EQ(same_plx, topo.pcie.gpu_bw);
  EXPECT_DOUBLE_EQ(cross_cpu, std::min(topo.pcie.qpi_bw, 5.0e9));
  EXPECT_LT(cross_cpu, same_plx);
}

}  // namespace
}  // namespace blink::graph
