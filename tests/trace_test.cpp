#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "blink/blink/codegen.h"
#include "blink/sim/executor.h"
#include "blink/sim/trace.h"
#include "blink/topology/builders.h"

namespace blink::sim {
namespace {

struct Executed {
  Fabric fabric;
  Program program;
  RunResult result;
};

Executed run_broadcast() {
  const auto topo = topo::make_dgx1v();
  Fabric fabric(topo, FabricParams{});
  const auto set = generate_trees(topo, 0);
  ProgramBuilder builder(fabric, CodeGenOptions{});
  builder.broadcast(route_trees(fabric, 0, set), 32e6);
  Program program = builder.take();
  RunResult result = execute(fabric, program);
  return {std::move(fabric), std::move(program), std::move(result)};
}

TEST(Trace, ContainsSlicesForEveryOp) {
  const auto ex = run_broadcast();
  const std::string json =
      to_chrome_trace(ex.fabric, ex.program, ex.result);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Every copy slice carries its byte count.
  EXPECT_NE(json.find("\"bytes\""), std::string::npos);
  // Rough slice count: one X event per op.
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, ex.program.ops().size());
}

TEST(Trace, ChannelCountersOptional) {
  const auto ex = run_broadcast();
  TraceOptions with;
  TraceOptions without;
  without.include_channel_counters = false;
  const auto a = to_chrome_trace(ex.fabric, ex.program, ex.result, with);
  const auto b = to_chrome_trace(ex.fabric, ex.program, ex.result, without);
  EXPECT_NE(a.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_EQ(b.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_GT(a.size(), b.size());
}

TEST(Trace, SliceTimesAreOrderedAndBounded) {
  const auto ex = run_broadcast();
  for (std::size_t i = 0; i < ex.program.ops().size(); ++i) {
    EXPECT_GE(ex.result.op_start[i], 0.0);
    EXPECT_LE(ex.result.op_start[i], ex.result.op_finish[i]);
    EXPECT_LE(ex.result.op_finish[i], ex.result.makespan + 1e-12);
  }
}

TEST(Trace, WriteToFileRoundTrips) {
  const auto ex = run_broadcast();
  const std::string path = "/tmp/blink_trace_test.json";
  ASSERT_TRUE(
      write_chrome_trace(path, ex.fabric, ex.program, ex.result));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, to_chrome_trace(ex.fabric, ex.program, ex.result));
  std::remove(path.c_str());
}

TEST(Trace, EscapesLabels) {
  const auto topo = topo::make_chain(2);
  Fabric fabric(topo, FabricParams{});
  Program p;
  Op op;
  op.kind = OpKind::kDelay;
  op.latency = 1e-6;
  op.stream = p.new_stream();
  op.label = "quote\"back\\slash";
  p.add(op);
  const auto result = execute(fabric, p);
  const auto json = to_chrome_trace(fabric, p, result);
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

}  // namespace
}  // namespace blink::sim
