// Fabric health layer: degrade/fail/restore events, the epoch counter,
// component-scoped fingerprints, healthy_topology, and the executor's
// refusal to run routes over failed channels.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "blink/sim/executor.h"
#include "blink/sim/fabric.h"
#include "blink/topology/builders.h"

namespace blink::sim {
namespace {

Fabric dgx1v_fabric() {
  return Fabric(topo::make_dgx1v(), FabricParams{});
}

TEST(FabricHealth, FreshFabricIsHealthyAtEpochZero) {
  const Fabric f = dgx1v_fabric();
  EXPECT_EQ(f.epoch(), 0u);
  for (int c = 0; c < f.num_channels(); ++c) {
    EXPECT_DOUBLE_EQ(f.channel_health(c), 1.0);
    EXPECT_DOUBLE_EQ(f.capacities()[static_cast<std::size_t>(c)],
                     f.base_capacity(c));
  }
}

TEST(FabricHealth, DegradeScalesCapacityAndBumpsEpoch) {
  Fabric f = dgx1v_fabric();
  const int c = f.nvlink_route(0, 0, 1)[0];
  const double base = f.base_capacity(c);
  const auto affected = f.degrade_link(c, 0.5);
  EXPECT_EQ(affected, std::vector<int>{c});
  EXPECT_EQ(f.epoch(), 1u);
  EXPECT_DOUBLE_EQ(f.channel_health(c), 0.5);
  EXPECT_DOUBLE_EQ(f.capacities()[static_cast<std::size_t>(c)], 0.5 * base);
  EXPECT_DOUBLE_EQ(f.base_capacity(c), base);  // base never moves
  // factor == 1 restores the channel.
  f.degrade_link(c, 1.0);
  EXPECT_DOUBLE_EQ(f.capacities()[static_cast<std::size_t>(c)], base);
  EXPECT_EQ(f.epoch(), 2u);
}

TEST(FabricHealth, DegradeValidatesArguments) {
  Fabric f = dgx1v_fabric();
  const int c = f.nvlink_route(0, 0, 1)[0];
  EXPECT_THROW(f.degrade_link(-1, 0.5), std::invalid_argument);
  EXPECT_THROW(f.degrade_link(f.num_channels(), 0.5), std::invalid_argument);
  EXPECT_THROW(f.degrade_link(c, 0.0), std::invalid_argument);
  EXPECT_THROW(f.degrade_link(c, 1.5), std::invalid_argument);
  // Degrading a failed channel is a contract error: failures are structural.
  f.fail_link(c);
  EXPECT_THROW(f.degrade_link(c, 0.5), std::invalid_argument);
}

TEST(FabricHealth, FailLinkFailsBothDirections) {
  Fabric f = dgx1v_fabric();
  const int fwd = f.nvlink_route(0, 0, 1)[0];
  const int rev = f.nvlink_route(0, 1, 0)[0];
  const auto affected = f.fail_link(fwd);
  EXPECT_EQ(affected.size(), 2u);
  EXPECT_TRUE(f.channel_failed(fwd));
  EXPECT_TRUE(f.channel_failed(rev));
  EXPECT_DOUBLE_EQ(f.capacities()[static_cast<std::size_t>(fwd)], 0.0);
  // The adjacency is gone in both directions; other links survive.
  EXPECT_FALSE(f.nvlink_adjacent(0, 0, 1));
  EXPECT_FALSE(f.nvlink_adjacent(0, 1, 0));
  EXPECT_TRUE(f.nvlink_adjacent(0, 0, 2));
}

TEST(FabricHealth, FailGpuFailsEveryAttachedChannel) {
  Fabric f = dgx1v_fabric();
  const auto affected = f.fail_gpu(0, 3);
  EXPECT_FALSE(affected.empty());
  EXPECT_TRUE(f.gpu_failed(0, 3));
  EXPECT_FALSE(f.gpu_failed(0, 0));
  EXPECT_TRUE(f.channel_failed(f.reduce_channel(0, 3)));
  // Every NVLink adjacency of GPU 3 is gone.
  for (int g = 0; g < 8; ++g) {
    if (g == 3) continue;
    EXPECT_FALSE(f.nvlink_adjacent(0, 3, g)) << "gpu " << g;
    EXPECT_FALSE(f.nvlink_adjacent(0, g, 3)) << "gpu " << g;
  }
  EXPECT_TRUE(f.nvlink_adjacent(0, 0, 1));
}

TEST(FabricHealth, RestoreRecoversFullHealth) {
  Fabric f = dgx1v_fabric();
  f.degrade_link(f.nvlink_route(0, 0, 1)[0], 0.25);
  f.fail_gpu(0, 5);
  const std::uint64_t epoch_before = f.epoch();
  const auto affected = f.restore();
  EXPECT_FALSE(affected.empty());
  EXPECT_EQ(f.epoch(), epoch_before + 1);
  for (int c = 0; c < f.num_channels(); ++c) {
    EXPECT_DOUBLE_EQ(f.channel_health(c), 1.0);
  }
  EXPECT_FALSE(f.gpu_failed(0, 5));
  EXPECT_TRUE(f.nvlink_adjacent(0, 0, 1));
}

TEST(FabricHealth, ApplyDispatchesByKind) {
  Fabric f = dgx1v_fabric();
  HealthEvent degrade;
  degrade.kind = HealthEventKind::kDegradeLink;
  degrade.channel = f.nvlink_route(0, 0, 1)[0];
  degrade.factor = 0.5;
  f.apply(degrade);
  EXPECT_DOUBLE_EQ(f.channel_health(degrade.channel), 0.5);

  HealthEvent fail;
  fail.kind = HealthEventKind::kFailGpu;
  fail.server = 0;
  fail.gpu = 2;
  f.apply(fail);
  EXPECT_TRUE(f.gpu_failed(0, 2));

  HealthEvent restore;
  restore.kind = HealthEventKind::kRestoreAll;
  f.apply(restore);
  EXPECT_DOUBLE_EQ(f.channel_health(degrade.channel), 1.0);
  EXPECT_FALSE(f.gpu_failed(0, 2));
  EXPECT_EQ(f.epoch(), 3u);
}

TEST(FabricHealth, SingleServerHasOneComponent) {
  const Fabric f = dgx1v_fabric();
  EXPECT_EQ(f.num_components(), 1);
  EXPECT_EQ(f.component_fingerprints().size(), 1u);
}

TEST(FabricHealth, ComponentFingerprintsScopeToTouchedComponent) {
  const auto topo = topo::make_dgx1v();
  FabricParams params;
  params.nic_bw = 12.5e9;
  Fabric f({topo, topo}, params);
  ASSERT_EQ(f.num_components(), 3);  // two servers + the NIC tier
  const auto before = f.component_fingerprints();

  // A server-0 NVLink degrade moves only component 0.
  f.degrade_link(f.nvlink_route(0, 2, 3)[0], 0.5);
  auto after = f.component_fingerprints();
  EXPECT_NE(after[0], before[0]);
  EXPECT_EQ(after[1], before[1]);
  EXPECT_EQ(after[2], before[2]);

  // A NIC failure moves only the NIC-tier component.
  const int nic = f.nic_route(0, 1)[0];
  EXPECT_TRUE(f.is_nic_channel(nic));
  f.fail_link(nic);
  const auto nic_after = f.component_fingerprints();
  EXPECT_EQ(nic_after[0], after[0]);
  EXPECT_EQ(nic_after[1], after[1]);
  EXPECT_NE(nic_after[2], after[2]);

  // Restore returns every component to its as-built fingerprint.
  f.restore();
  EXPECT_EQ(f.component_fingerprints(), before);
}

TEST(FabricHealth, HealthyTopologyErasesFailedHardware) {
  const auto topo = topo::make_dgx1v();
  Fabric f(topo, FabricParams{});
  EXPECT_EQ(f.healthy_topology(0).nvlinks.size(), topo.nvlinks.size());

  // A failed link erases its (bidirectional) edge.
  f.fail_link(f.nvlink_route(0, 0, 1)[0]);
  const auto degraded = f.healthy_topology(0);
  EXPECT_EQ(degraded.nvlinks.size(), topo.nvlinks.size() - 1);
  for (const auto& e : degraded.nvlinks) {
    EXPECT_FALSE((e.a == 0 && e.b == 1) || (e.a == 1 && e.b == 0));
  }

  // A failed GPU erases every incident edge.
  f.fail_gpu(0, 4);
  for (const auto& e : f.healthy_topology(0).nvlinks) {
    EXPECT_NE(e.a, 4);
    EXPECT_NE(e.b, 4);
  }

  // Capacity-only degrades leave the topology alone.
  Fabric g(topo, FabricParams{});
  g.degrade_link(g.nvlink_route(0, 0, 1)[0], 0.1);
  EXPECT_EQ(g.healthy_topology(0).nvlinks.size(), topo.nvlinks.size());
}

TEST(FabricHealth, NicRateAndHeterogeneityTrackHealth) {
  const auto topo = topo::make_dgx1v();
  FabricParams params;
  params.nic_bw = 12.5e9;
  Fabric f({topo, topo}, params);
  EXPECT_FALSE(f.heterogeneous_nics());
  const int egress = f.nic_route(1, 0)[0];
  f.degrade_link(egress, 0.5);
  EXPECT_DOUBLE_EQ(f.nic_rate(1), 0.5 * 12.5e9);
  EXPECT_DOUBLE_EQ(f.nic_rate(0), 12.5e9);
  EXPECT_TRUE(f.heterogeneous_nics());
  f.restore();
  EXPECT_FALSE(f.heterogeneous_nics());
}

TEST(FabricHealth, ExecutorRefusesRoutesOverFailedChannels) {
  FabricParams params;
  params.copy_launch_latency = 0.0;
  params.reduce_launch_latency = 0.0;
  params.event_sync_latency = 0.0;
  Fabric f(topo::make_chain(2, /*lane_bw=*/10.0e9), params);
  Program p;
  Op op;
  op.kind = OpKind::kCopy;
  op.route = f.nvlink_route(0, 0, 1);
  op.bytes = 1.0e9;
  op.stream = p.new_stream();
  p.add(op);
  EXPECT_NO_THROW(execute(f, p));

  // A degraded channel still runs (slower); a failed one refuses.
  f.degrade_link(op.route[0], 0.5);
  EXPECT_NO_THROW(execute(f, p));
  f.fail_link(op.route[0]);
  EXPECT_THROW(execute(f, p), std::runtime_error);
  f.restore();
  EXPECT_NO_THROW(execute(f, p));
}

TEST(FabricHealth, FailGpuValidatesArguments) {
  Fabric f = dgx1v_fabric();
  EXPECT_THROW(f.fail_gpu(-1, 0), std::invalid_argument);
  EXPECT_THROW(f.fail_gpu(1, 0), std::invalid_argument);  // one server
  EXPECT_THROW(f.fail_gpu(0, 8), std::invalid_argument);
  EXPECT_THROW(f.fail_link(-1), std::invalid_argument);
}

}  // namespace
}  // namespace blink::sim
