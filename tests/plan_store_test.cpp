// Plan serialization and the persistent plan store: round-trip equality of
// programs and plans, warm-start (a plan compiled in one "process" —
// engine — executes in a fresh one with zero recompiles), and rejection of
// version-mismatched, fingerprint-mismatched, corrupt, and truncated stores.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "blink/baselines/backends.h"
#include "blink/blink/communicator.h"
#include "blink/blink/multiserver.h"
#include "blink/blink/nccl_compat.h"
#include "blink/blink/plan_io.h"
#include "blink/common/rng.h"
#include "blink/topology/builders.h"

namespace blink {
namespace {

namespace fs = std::filesystem;

// A fresh per-test scratch directory under the system temp dir.
class PlanStore : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("blink-plan-store-" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

// Fixed chunk size keeps compiles fast (no MIAD probe runs) and, more
// importantly for these tests, deterministic across engine instances.
CommunicatorOptions fast_options() {
  CommunicatorOptions options;
  options.codegen.chunk_bytes = 4u << 20;
  return options;
}

bool identical(const CollectiveResult& a, const CollectiveResult& b) {
  return a.seconds == b.seconds && a.bytes == b.bytes &&
         a.algorithm_bw == b.algorithm_bw && a.num_trees == b.num_trees &&
         a.num_chunks == b.num_chunks && a.num_ops == b.num_ops &&
         a.pipeline_depth == b.pipeline_depth &&
         a.phase1_chunks == b.phase1_chunks &&
         a.phase2_chunks == b.phase2_chunks &&
         a.phase3_chunks == b.phase3_chunks;
}

sim::Program sample_program() {
  sim::Program p;
  const int s0 = p.new_stream();
  const int s1 = p.new_stream();
  const int first =
      p.add(sim::Op{sim::OpKind::kCopy, {0, 3}, 4096.0, 2e-6, s0, {}, "c0"});
  p.add(sim::Op{sim::OpKind::kReduce, {5}, 1024.5, 6e-6, s1, {first}, "r"});
  p.add(sim::Op{sim::OpKind::kDelay, {}, 0.0, 1e-3, s0, {first}, ""});
  return p;
}

TEST_F(PlanStore, ProgramRoundTrip) {
  const sim::Program original = sample_program();
  std::string buf;
  serialize_program(original, &buf);
  std::size_t pos = 0;
  const sim::Program restored = deserialize_program(buf, &pos);
  EXPECT_EQ(pos, buf.size());
  ASSERT_EQ(restored.num_streams(), original.num_streams());
  ASSERT_EQ(restored.ops().size(), original.ops().size());
  for (std::size_t i = 0; i < original.ops().size(); ++i) {
    const sim::Op& a = original.ops()[i];
    const sim::Op& b = restored.ops()[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.route, b.route);
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.stream, b.stream);
    EXPECT_EQ(a.deps, b.deps);
    EXPECT_EQ(a.label, b.label);
  }
}

TEST_F(PlanStore, PlanRecordRoundTrip) {
  PlanRecord record;
  record.backend_name = "blink";
  record.kind = static_cast<int>(CollectiveKind::kAllReduce);
  record.root = 3;
  record.bytes = 1024.7;  // fractional sizes must survive exactly
  record.chunk_bytes = 1u << 20;
  record.meta.bytes = 1024.7;
  record.meta.num_trees = 6;
  record.meta.num_chunks = 4;
  record.meta.num_ops = 3;
  record.meta.pipeline_depth = 5;  // v3: chunk-pipelining metadata
  record.meta.phase1_chunks = 12;
  record.meta.phase2_chunks = 7;
  record.meta.phase3_chunks = 9;
  record.program = sample_program();

  std::string buf;
  serialize_plan_record(record, &buf);
  std::size_t pos = 0;
  const PlanRecord restored = deserialize_plan_record(buf, &pos);
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(restored.backend_name, record.backend_name);
  EXPECT_EQ(restored.kind, record.kind);
  EXPECT_EQ(restored.root, record.root);
  EXPECT_EQ(restored.bytes, record.bytes);
  EXPECT_EQ(restored.chunk_bytes, record.chunk_bytes);
  EXPECT_TRUE(identical(restored.meta, record.meta));
  EXPECT_EQ(restored.program.ops().size(), record.program.ops().size());
}

// A flipped exponent bit turns a stored double into NaN/inf without
// tripping any truncation check; the reader must reject it — NaN slips
// past every downstream sign comparison and would surface in results.
TEST_F(PlanStore, NonFiniteValuesRejected) {
  PlanRecord record;
  record.backend_name = "blink";
  record.bytes = std::numeric_limits<double>::quiet_NaN();
  record.meta.bytes = 1.0;
  record.program = sample_program();
  std::string buf;
  serialize_plan_record(record, &buf);
  std::size_t pos = 0;
  EXPECT_THROW(deserialize_plan_record(buf, &pos), std::invalid_argument);

  sim::Program program = sample_program();
  sim::Op op;
  op.kind = sim::OpKind::kDelay;
  op.latency = std::numeric_limits<double>::infinity();
  program.add(op);
  buf.clear();
  serialize_program(program, &buf);
  pos = 0;
  EXPECT_THROW(deserialize_program(buf, &pos), std::invalid_argument);
}

TEST_F(PlanStore, FingerprintSeparatesFabrics) {
  const std::vector<std::string> names{"blink"};
  const sim::FabricParams params;
  const auto v100 = fabric_fingerprint({topo::make_dgx1v()}, params, names);
  const auto p100 = fabric_fingerprint({topo::make_dgx1p()}, params, names);
  EXPECT_NE(v100, p100);

  sim::FabricParams slow_nic = params;
  slow_nic.nic_bw /= 2;
  EXPECT_NE(fabric_fingerprint({topo::make_dgx1v()}, slow_nic, names), v100);

  EXPECT_NE(fabric_fingerprint({topo::make_dgx1v()}, params,
                               {"blink", "ring"}),
            v100);
  EXPECT_NE(fabric_fingerprint(
                {topo::make_dgx1v(), topo::make_dgx1v()}, params, names),
            v100);
  // Deterministic across calls (it names the store file).
  EXPECT_EQ(fabric_fingerprint({topo::make_dgx1v()}, params, names), v100);
}

// Export in one engine, import in a fresh one: every shape is a cache hit
// (zero TreeGen/CodeGen recompiles) and results are bit-identical.
TEST_F(PlanStore, ExportImportWarmStartsAFreshEngine) {
  const std::string store = path("plans.bpc");
  std::vector<CollectiveResult> saved;
  {
    Communicator comm(topo::make_dgx1v(), fast_options());
    saved.push_back(comm.execute(
        *comm.compile(CollectiveKind::kBroadcast, 100e6, 0)));
    saved.push_back(comm.execute(
        *comm.compile(CollectiveKind::kAllReduce, 64e6, -1)));
    saved.push_back(comm.execute(
        *comm.compile(CollectiveKind::kReduce, 1024.7, 2)));
    EXPECT_EQ(comm.export_plans(store), 3u);
  }

  Communicator fresh(topo::make_dgx1v(), fast_options());
  EXPECT_EQ(fresh.import_plans(store), 3u);
  EXPECT_EQ(fresh.plan_cache().size(), 3u);

  std::vector<CollectiveResult> loaded;
  loaded.push_back(fresh.execute(
      *fresh.compile(CollectiveKind::kBroadcast, 100e6, 0)));
  loaded.push_back(fresh.execute(
      *fresh.compile(CollectiveKind::kAllReduce, 64e6, -1)));
  loaded.push_back(fresh.execute(
      *fresh.compile(CollectiveKind::kReduce, 1024.7, 2)));

  // Zero recompiles: every compile() was a hit on a loaded plan.
  EXPECT_EQ(fresh.plan_cache().misses(), 0u);
  EXPECT_EQ(fresh.plan_cache().hits(), 3u);
  for (std::size_t i = 0; i < saved.size(); ++i) {
    EXPECT_TRUE(identical(saved[i], loaded[i])) << "shape " << i;
  }
}

// The EngineOptions::plan_store_dir lifecycle: flush on destruction,
// warm-load before the first compile of the next engine.
TEST_F(PlanStore, StoreDirFlushesOnDestructionAndWarmLoads) {
  CommunicatorOptions options = fast_options();
  options.plan_store_dir = dir_.string();
  CollectiveResult cold;
  std::string store_path;
  {
    Communicator comm(topo::make_dgx1v(), options);
    cold = comm.execute(*comm.compile(CollectiveKind::kAllReduce, 32e6, -1));
    EXPECT_GT(comm.plan_cache().misses(), 0u);
    store_path = comm.plan_store_path();
    EXPECT_FALSE(fs::exists(store_path));  // flushed only at destruction
  }
  ASSERT_TRUE(fs::exists(store_path));

  Communicator warm(topo::make_dgx1v(), options);
  const CollectiveResult hot =
      warm.execute(*warm.compile(CollectiveKind::kAllReduce, 32e6, -1));
  EXPECT_EQ(warm.plan_cache().misses(), 0u);
  EXPECT_EQ(warm.plan_cache().hits(), 1u);
  EXPECT_TRUE(identical(cold, hot));

  // A failed explicit import must not disarm the lazy warm-load: the store
  // in plan_store_dir is still valid.
  Communicator warm2(topo::make_dgx1v(), options);
  EXPECT_THROW(warm2.import_plans(path("missing.bpc")),
               std::invalid_argument);
  warm2.execute(*warm2.compile(CollectiveKind::kAllReduce, 32e6, -1));
  EXPECT_EQ(warm2.plan_cache().misses(), 0u);
}

// A store saved under a different fabric (DGX-1V vs DGX-1P) is rejected
// with std::invalid_argument and nothing is adopted.
TEST_F(PlanStore, FingerprintMismatchRejected) {
  const std::string store = path("plans.bpc");
  {
    Communicator comm(topo::make_dgx1v(), fast_options());
    comm.compile(CollectiveKind::kBroadcast, 10e6, 0);
    comm.export_plans(store);
  }
  Communicator other(topo::make_dgx1p(), fast_options());
  EXPECT_THROW(other.import_plans(store), std::invalid_argument);
  EXPECT_EQ(other.plan_cache().size(), 0u);

  // Same machine but a different backend registry also mismatches: backend
  // ids must mean the same thing in the loading process.
  Communicator extra(topo::make_dgx1v(), fast_options());
  extra.register_backend(baselines::make_baseline_backend(
      "ring", extra.topology(), extra.fabric(), baselines::NcclOptions{}));
  EXPECT_THROW(extra.import_plans(store), std::invalid_argument);

  // Same fabric and backends but a different planning configuration (here
  // the chunk policy) mismatches too: plans lowered under another
  // configuration must not warm-load as if they were this engine's.
  CommunicatorOptions other_chunk = fast_options();
  other_chunk.codegen.chunk_bytes = 8u << 20;
  Communicator tuned(topo::make_dgx1v(), other_chunk);
  EXPECT_THROW(tuned.import_plans(store), std::invalid_argument);
  EXPECT_EQ(tuned.plan_cache().size(), 0u);
}

TEST_F(PlanStore, VersionMismatchRejected) {
  const std::string store = path("plans.bpc");
  Communicator comm(topo::make_dgx1v(), fast_options());
  comm.compile(CollectiveKind::kBroadcast, 10e6, 0);
  comm.export_plans(store);

  // Flip the version field (bytes 4..8 of the header).
  std::fstream f(store, std::ios::in | std::ios::out | std::ios::binary);
  const std::uint32_t bogus = kPlanStoreVersion + 1;
  f.seekp(4);
  f.write(reinterpret_cast<const char*>(&bogus), sizeof bogus);
  f.close();

  Communicator fresh(topo::make_dgx1v(), fast_options());
  EXPECT_THROW(fresh.import_plans(store), std::invalid_argument);
  EXPECT_EQ(fresh.plan_cache().size(), 0u);
}

TEST_F(PlanStore, CorruptAndTruncatedStoresRejected) {
  const std::string store = path("plans.bpc");
  Communicator comm(topo::make_dgx1v(), fast_options());
  comm.compile(CollectiveKind::kBroadcast, 10e6, 0);
  comm.export_plans(store);
  const auto full_size = fs::file_size(store);

  Communicator fresh(topo::make_dgx1v(), fast_options());
  // Truncated at every interesting boundary: mid-header, mid-record.
  for (const std::uintmax_t size :
       {std::uintmax_t{0}, std::uintmax_t{7}, std::uintmax_t{20},
        full_size / 2, full_size - 1}) {
    const std::string cut = path("truncated.bpc");
    fs::copy_file(store, cut, fs::copy_options::overwrite_existing);
    fs::resize_file(cut, size);
    EXPECT_THROW(fresh.import_plans(cut), std::invalid_argument)
        << "size " << size;
  }
  // Not a store file at all.
  const std::string garbage = path("garbage.bpc");
  std::ofstream(garbage, std::ios::binary) << "definitely not a plan store";
  EXPECT_THROW(fresh.import_plans(garbage), std::invalid_argument);
  // Missing entirely.
  EXPECT_THROW(fresh.import_plans(path("missing.bpc")),
               std::invalid_argument);
  EXPECT_EQ(fresh.plan_cache().size(), 0u);

  // A rejected store never poisons the engine: it still compiles and runs.
  const auto r = fresh.all_reduce(16e6);
  EXPECT_GT(r.seconds, 0.0);
}

// A stale store in plan_store_dir must not break warm engines: the lazy
// warm-load logs and ignores it, then compiles cold.
TEST_F(PlanStore, WarmLoadIgnoresStaleStore) {
  CommunicatorOptions options = fast_options();
  options.plan_store_dir = dir_.string();
  std::string store_path;
  {
    Communicator comm(topo::make_dgx1v(), options);
    comm.compile(CollectiveKind::kBroadcast, 10e6, 0);
    store_path = comm.plan_store_path();
  }
  ASSERT_TRUE(fs::exists(store_path));
  fs::resize_file(store_path, fs::file_size(store_path) / 2);

  Communicator comm(topo::make_dgx1v(), options);
  const auto r = comm.broadcast(10e6, 0);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_EQ(comm.plan_cache().misses(), 1u);  // compiled cold, no crash
}

// The multi-server path persists through the same engine surface.
TEST_F(PlanStore, ClusterPlansRoundTrip) {
  const std::string store = path("cluster.bpc");
  ClusterOptions options;
  options.codegen.chunk_bytes = 4u << 20;
  std::vector<topo::Topology> servers{topo::make_dgx1v(), topo::make_dgx1v()};
  CollectiveResult saved;
  {
    ClusterCommunicator comm(servers, options);
    saved = comm.execute(*comm.compile(CollectiveKind::kAllReduce, 64e6, -1));
    EXPECT_EQ(comm.export_plans(store), 1u);
  }
  ClusterCommunicator fresh(servers, options);
  EXPECT_EQ(fresh.import_plans(store), 1u);
  const auto loaded =
      fresh.execute(*fresh.compile(CollectiveKind::kAllReduce, 64e6, -1));
  EXPECT_EQ(fresh.plan_cache().misses(), 0u);
  EXPECT_TRUE(identical(saved, loaded));
}

// The NCCL facade surface: BLINK_PLAN_CACHE_DIR warm-starts a second
// communicator, and blinkCommImportPlans maps mismatch to
// blinkInvalidArgument.
TEST_F(PlanStore, FacadeEnvVarAndExplicitImport) {
  const int gpus[] = {0, 1, 2, 3, 4, 5, 6, 7};
  ASSERT_EQ(setenv("BLINK_PLAN_CACHE_DIR", dir_.string().c_str(), 1), 0);

  blinkComm_t comm = nullptr;
  ASSERT_EQ(blinkCommInitAll(&comm, "dgx1v", 8, gpus), blinkSuccess);
  EXPECT_EQ(blinkAllReduce(nullptr, nullptr, 1 << 20, blinkFloat32, blinkSum,
                           comm, nullptr),
            blinkSuccess);
  CollectiveResult cold;
  EXPECT_EQ(blinkCommLastResult(comm, &cold), blinkSuccess);
  const std::string exported = path("facade.bpc");
  EXPECT_EQ(blinkCommExportPlans(comm, exported.c_str()), blinkSuccess);
  EXPECT_EQ(blinkCommDestroy(comm), blinkSuccess);  // flushes the store

  blinkComm_t warm = nullptr;
  ASSERT_EQ(blinkCommInitAll(&warm, "dgx1v", 8, gpus), blinkSuccess);
  EXPECT_EQ(blinkAllReduce(nullptr, nullptr, 1 << 20, blinkFloat32, blinkSum,
                           warm, nullptr),
            blinkSuccess);
  CollectiveResult hot;
  EXPECT_EQ(blinkCommLastResult(warm, &hot), blinkSuccess);
  EXPECT_TRUE(identical(cold, hot));
  EXPECT_EQ(blinkCommDestroy(warm), blinkSuccess);
  ASSERT_EQ(unsetenv("BLINK_PLAN_CACHE_DIR"), 0);

  // Explicit import into a mismatched communicator (different machine).
  blinkComm_t other = nullptr;
  const int four[] = {0, 1, 2, 3};
  ASSERT_EQ(blinkCommInitAll(&other, "dgx2", 4, four), blinkSuccess);
  EXPECT_EQ(blinkCommImportPlans(other, exported.c_str()),
            blinkInvalidArgument);
  // And bad arguments.
  EXPECT_EQ(blinkCommImportPlans(other, nullptr), blinkInvalidArgument);
  EXPECT_EQ(blinkCommExportPlans(nullptr, exported.c_str()),
            blinkInvalidArgument);
  EXPECT_EQ(blinkCommDestroy(other), blinkSuccess);
}

// --- phase-2 strategy recording and policy fingerprints ---------------------

// Plans record the phase-2 exchange they were compiled with, and the record
// survives the store round-trip.
TEST_F(PlanStore, Phase2StrategySurvivesRoundTrip) {
  const std::string store = path("phase2.bpc");
  ClusterOptions options;
  options.codegen.chunk_bytes = 4u << 20;
  options.phase2 = Phase2Policy::kRing;
  std::vector<topo::Topology> servers{topo::make_dgx1v(), topo::make_dgx1v()};
  {
    ClusterCommunicator comm(servers, options);
    const auto plan = comm.compile(CollectiveKind::kAllReduce, 64e6, -1);
    EXPECT_EQ(plan->phase2_strategy(), Phase2Strategy::kRing);
    EXPECT_EQ(comm.export_plans(store), 1u);
  }
  ClusterCommunicator fresh(servers, options);
  EXPECT_EQ(fresh.import_plans(store), 1u);
  const auto plan = fresh.compile(CollectiveKind::kAllReduce, 64e6, -1);
  EXPECT_EQ(fresh.plan_cache().misses(), 0u);  // warm: no recompile
  EXPECT_EQ(plan->phase2_strategy(), Phase2Strategy::kRing);
}

// A store compiled under one phase-2 policy or partition-sizing policy is
// rejected by an engine configured with another: both are part of the
// cluster backend's planning fingerprint, so a warm-load can never hand an
// engine a schedule its own lowering would not produce.
TEST_F(PlanStore, Phase2AndSizingPoliciesSeparateStores) {
  const std::string store = path("policies.bpc");
  std::vector<topo::Topology> servers{topo::make_dgx1v(), topo::make_dgx1v()};
  ClusterOptions ring;
  ring.codegen.chunk_bytes = 4u << 20;
  ring.phase2 = Phase2Policy::kRing;
  {
    ClusterCommunicator comm(servers, ring);
    comm.compile(CollectiveKind::kAllReduce, 64e6, -1);
    EXPECT_EQ(comm.export_plans(store), 1u);
  }
  ClusterOptions all_to_all = ring;
  all_to_all.phase2 = Phase2Policy::kAllToAll;
  ClusterCommunicator exchange_mismatch(servers, all_to_all);
  EXPECT_THROW(exchange_mismatch.import_plans(store), std::invalid_argument);
  EXPECT_EQ(exchange_mismatch.plan_cache().size(), 0u);  // nothing adopted

  ClusterOptions equal_split = ring;
  equal_split.partition_sizing = PartitionSizing::kEqual;
  ClusterCommunicator sizing_mismatch(servers, equal_split);
  EXPECT_THROW(sizing_mismatch.import_plans(store), std::invalid_argument);
  EXPECT_EQ(sizing_mismatch.plan_cache().size(), 0u);

  ClusterCommunicator match(servers, ring);
  EXPECT_EQ(match.import_plans(store), 1u);
}

// --- the clean-flush bugfix -------------------------------------------------

// The cache knows whether it holds plans the store has not seen: inserts
// dirty it, save()/load() sync it.
TEST_F(PlanStore, PlanCacheDirtyFlagLifecycle) {
  Communicator comm(topo::make_dgx1v(), fast_options());
  const auto plan = comm.compile(CollectiveKind::kBroadcast, 8e6, 0);
  PlanCache cache(8);
  EXPECT_FALSE(cache.dirty());
  cache.insert(plan->key(), plan);
  EXPECT_TRUE(cache.dirty());
  const std::string store = path("dirty.bpc");
  cache.save(store, 42, [](int) { return std::string("blink"); });
  EXPECT_FALSE(cache.dirty());
  // Lookups do not dirty the cache; a fresh insert does.
  cache.find(plan->key());
  EXPECT_FALSE(cache.dirty());
  cache.insert(plan->key(), plan);
  EXPECT_TRUE(cache.dirty());

  PlanCache loaded(8);
  loaded.load(store, 42, &comm, [](std::string_view) { return 0; });
  EXPECT_FALSE(loaded.dirty());  // mirrors the store it just read
}

// A warm-started engine that compiled nothing new must leave its store file
// untouched at shutdown instead of rewriting identical bytes; a new shape
// dirties the cache and the next flush writes again.
TEST_F(PlanStore, CleanFlushSkipsStoreRewrite) {
  CommunicatorOptions options = fast_options();
  options.plan_store_dir = dir_.string();
  std::string store_path;
  {
    Communicator comm(topo::make_dgx1v(), options);
    comm.compile(CollectiveKind::kAllReduce, 16e6, -1);
    store_path = comm.plan_store_path();
  }  // dirty cache: flushed at destruction
  ASSERT_TRUE(fs::exists(store_path));
  const auto stamp = fs::last_write_time(store_path);
  {
    Communicator comm(topo::make_dgx1v(), options);
    comm.all_reduce(16e6);  // warm-loaded: a cache hit, still clean
    EXPECT_EQ(comm.plan_cache().misses(), 0u);
  }  // clean cache: flush skipped
  EXPECT_EQ(fs::last_write_time(store_path), stamp);
  {
    Communicator comm(topo::make_dgx1v(), options);
    comm.all_reduce(32e6);  // a new shape dirties the warm-loaded cache
  }
  EXPECT_NE(fs::last_write_time(store_path), stamp);  // flushed again
  Communicator comm(topo::make_dgx1v(), options);
  comm.all_reduce(16e6);
  comm.all_reduce(32e6);
  EXPECT_EQ(comm.plan_cache().misses(), 0u);  // both shapes persisted
}

// An export to a side path (a backup) is not a sync with the configured
// store: the cache stays dirty and the destructor still flushes.
TEST_F(PlanStore, SideExportKeepsConfiguredStoreFlushArmed) {
  CommunicatorOptions options = fast_options();
  options.plan_store_dir = (dir_ / "store").string();
  std::string store_path;
  {
    Communicator comm(topo::make_dgx1v(), options);
    comm.compile(CollectiveKind::kAllReduce, 16e6, -1);
    EXPECT_EQ(comm.export_plans(path("backup.bpc")), 1u);
    EXPECT_TRUE(comm.plan_cache().dirty());  // backup != the store
    store_path = comm.plan_store_path();
  }
  ASSERT_TRUE(fs::exists(store_path));  // the flush still happened
  Communicator warm(topo::make_dgx1v(), options);
  warm.all_reduce(16e6);
  EXPECT_EQ(warm.plan_cache().misses(), 0u);
}

// Importing a seed from a side path leaves the cache dirty relative to the
// configured store, so the seeded plans reach it at shutdown.
TEST_F(PlanStore, SideImportStillFlushesConfiguredStore) {
  const std::string seed = path("seed.bpc");
  {
    Communicator comm(topo::make_dgx1v(), fast_options());
    comm.compile(CollectiveKind::kBroadcast, 12e6, 0);
    EXPECT_EQ(comm.export_plans(seed), 1u);
  }
  CommunicatorOptions options = fast_options();
  options.plan_store_dir = (dir_ / "store2").string();
  std::string store_path;
  {
    Communicator comm(topo::make_dgx1v(), options);
    EXPECT_EQ(comm.import_plans(seed), 1u);
    EXPECT_TRUE(comm.plan_cache().dirty());  // seed is not in the store yet
    store_path = comm.plan_store_path();
  }
  ASSERT_TRUE(fs::exists(store_path));  // seeded plans flushed
  Communicator warm(topo::make_dgx1v(), options);
  warm.broadcast(12e6, 0);
  EXPECT_EQ(warm.plan_cache().misses(), 0u);
}

// --- format v4: channel footprints and component health fingerprints --------

TEST_F(PlanStore, FootprintSurvivesRecordRoundTrip) {
  PlanRecord record;
  record.backend_name = "blink";
  record.bytes = 4096.0;
  record.meta.bytes = 4096.0;
  record.program = sample_program();
  record.footprint = {0, 3, 5, 17};

  std::string buf;
  serialize_plan_record(record, &buf);
  std::size_t pos = 0;
  const PlanRecord restored = deserialize_plan_record(buf, &pos);
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(restored.footprint, record.footprint);
}

TEST_F(PlanStore, NegativeFootprintChannelRejected) {
  PlanRecord record;
  record.backend_name = "blink";
  record.bytes = 4096.0;
  record.meta.bytes = 4096.0;
  record.program = sample_program();
  record.footprint = {2, -1};
  std::string buf;
  serialize_plan_record(record, &buf);
  std::size_t pos = 0;
  EXPECT_THROW(deserialize_plan_record(buf, &pos), std::invalid_argument);
}

TEST_F(PlanStore, ComponentFingerprintsSurviveFileRoundTrip) {
  const std::string store = path("components.bpc");
  PlanStoreFile file;
  file.fingerprint = 0x1234;
  file.component_fingerprints = {7u, 11u, 13u};
  PlanRecord record;
  record.backend_name = "blink";
  record.bytes = 4096.0;
  record.meta.bytes = 4096.0;
  record.program = sample_program();
  record.footprint = {1, 2};
  file.records.push_back(record);
  write_plan_store(store, file);

  const PlanStoreFile restored = read_plan_store_file(store, 0x1234);
  EXPECT_EQ(restored.component_fingerprints, file.component_fingerprints);
  ASSERT_EQ(restored.records.size(), 1u);
  EXPECT_EQ(restored.records[0].footprint, record.footprint);
}

// The migration-hygiene regression: a store carrying the previous format
// version — what an un-upgraded process would have written — is rejected
// cleanly at warm-load. The engine logs, ignores the file, and compiles
// cold; it never crashes and never adopts a v3 plan.
TEST_F(PlanStore, PreviousVersionStoreRejectedOnWarmLoad) {
  CommunicatorOptions options = fast_options();
  options.plan_store_dir = dir_.string();
  std::string store_path;
  {
    Communicator comm(topo::make_dgx1v(), options);
    comm.compile(CollectiveKind::kBroadcast, 10e6, 0);
    store_path = comm.plan_store_path();
  }
  ASSERT_TRUE(fs::exists(store_path));
  // Rewrite the version field to v3.
  std::fstream f(store_path, std::ios::in | std::ios::out | std::ios::binary);
  const std::uint32_t v3 = kPlanStoreVersion - 1;
  f.seekp(4);
  f.write(reinterpret_cast<const char*>(&v3), sizeof v3);
  f.close();

  Communicator comm(topo::make_dgx1v(), options);
  const auto r = comm.broadcast(10e6, 0);  // warm-load path runs first
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_EQ(comm.plan_cache().misses(), 1u);  // compiled cold, no crash
  // And an explicit import types the rejection instead of crashing.
  Communicator fresh(topo::make_dgx1v(), fast_options());
  EXPECT_THROW(fresh.import_plans(store_path), std::invalid_argument);
}

// A store saved on a degraded fabric only warm-loads the plans whose
// footprints avoid the changed component: loading it into a healthy engine
// skips (not rejects) the degraded-compile plans record by record.
TEST_F(PlanStore, DegradedSavesSkipPerRecordOnHealthyLoad) {
  CommunicatorOptions options = fast_options();
  options.plan_store_dir = dir_.string();
  {
    Communicator comm(topo::make_dgx1v(), options);
    sim::HealthEvent event;
    event.kind = sim::HealthEventKind::kDegradeLink;
    event.channel = comm.fabric().nvlink_route(0, 0, 1)[0];
    event.factor = 0.5;
    comm.repair_plans(event);
    // Compiled against the degraded fabric; its footprint crosses the
    // degraded server component.
    comm.compile(CollectiveKind::kAllReduce, 16e6, -1);
  }
  // A fresh (healthy) engine must not adopt the degraded-fabric plan: its
  // schedule was paced against the halved link.
  Communicator healthy(topo::make_dgx1v(), options);
  healthy.all_reduce(16e6);
  EXPECT_EQ(healthy.plan_cache().misses(), 1u);  // skipped, compiled cold

  // An engine degraded the same way adopts it: component fingerprints match.
  Communicator matching(topo::make_dgx1v(), options);
  sim::HealthEvent event;
  event.kind = sim::HealthEventKind::kDegradeLink;
  event.channel = matching.fabric().nvlink_route(0, 0, 1)[0];
  event.factor = 0.5;
  matching.repair_plans(event);
  matching.all_reduce(16e6);
  EXPECT_EQ(matching.plan_cache().misses(), 0u);  // warm-loaded
}

// --- randomized corruption sweeps (the reader must always fail cleanly) -----

// Every bit flip in a serialized store must leave the reader in one of two
// states: a clean std::invalid_argument (nothing adopted), or — when the
// flip lands in a payload byte the format cannot distinguish from data — a
// normal parse of the altered values. Crashes, other exception types, and
// partial adoption are the bugs this sweep exists to catch.
TEST_F(PlanStore, RandomBitFlipSweepNeverCrashesOrPartiallyAdopts) {
  const std::string store = path("plans.bpc");
  std::uint64_t fingerprint = 0;
  {
    Communicator comm(topo::make_dgx1v(), fast_options());
    comm.compile(CollectiveKind::kBroadcast, 10e6, 0);
    comm.compile(CollectiveKind::kAllReduce, 8e6, -1);
    fingerprint = comm.fabric_fingerprint();
    EXPECT_EQ(comm.export_plans(store), 2u);
  }
  std::string pristine;
  {
    std::ifstream in(store, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    pristine = buf.str();
  }
  ASSERT_GT(pristine.size(), 64u);

  Rng rng(0xb1f11);  // fixed seed: the sweep is part of the regression suite
  std::size_t rejected = 0;
  std::size_t accepted = 0;
  const std::string flipped_path = path("flipped.bpc");
  for (int i = 0; i < 256; ++i) {
    std::string mutated = pristine;
    // Bias half the flips into the first 64 bytes so the header fields
    // (magic, version, fingerprint, counts) get dense coverage.
    const std::size_t byte = i % 2 == 0
                                 ? rng.next_below(std::min<std::size_t>(
                                       mutated.size(), 64))
                                 : rng.next_below(mutated.size());
    mutated[byte] = static_cast<char>(
        static_cast<unsigned char>(mutated[byte]) ^ (1u << rng.next_below(8)));
    std::ofstream(flipped_path, std::ios::binary) << mutated;
    try {
      read_plan_store_file(flipped_path, fingerprint);
      ++accepted;  // flip landed in payload the format treats as data
    } catch (const std::invalid_argument&) {
      ++rejected;  // clean rejection — the only acceptable failure mode
    }
  }
  EXPECT_EQ(rejected + accepted, 256u);
  EXPECT_GT(rejected, 0u);  // header flips must not slip through

  // Partial adoption: an engine whose import throws must keep an empty
  // cache and stay fully functional.
  std::string broken = pristine;
  broken[0] ^= 0x01;  // magic byte: guaranteed rejection
  std::ofstream(flipped_path, std::ios::binary) << broken;
  Communicator fresh(topo::make_dgx1v(), fast_options());
  EXPECT_THROW(fresh.import_plans(flipped_path), std::invalid_argument);
  EXPECT_EQ(fresh.plan_cache().size(), 0u);
  EXPECT_GT(fresh.all_reduce(8e6).seconds, 0.0);
}

// Truncation at any length must reject: the header states what follows, so
// a prefix is never a valid store. Sweeps every boundary of the header and
// a seeded sample of the record region.
TEST_F(PlanStore, TruncationSweepAlwaysRejects) {
  const std::string store = path("plans.bpc");
  std::uint64_t fingerprint = 0;
  {
    Communicator comm(topo::make_dgx1v(), fast_options());
    comm.compile(CollectiveKind::kBroadcast, 10e6, 0);
    fingerprint = comm.fabric_fingerprint();
    comm.export_plans(store);
  }
  const std::uintmax_t full_size = fs::file_size(store);
  ASSERT_GT(full_size, 64u);

  std::vector<std::uintmax_t> sizes;
  for (std::uintmax_t s = 0; s < std::min<std::uintmax_t>(full_size, 96); ++s) {
    sizes.push_back(s);  // exhaustive over the header region
  }
  Rng rng(0x7c);
  for (int i = 0; i < 160; ++i) {
    sizes.push_back(96 + rng.next_below(full_size - 96));
  }
  const std::string cut = path("cut.bpc");
  for (const std::uintmax_t size : sizes) {
    fs::copy_file(store, cut, fs::copy_options::overwrite_existing);
    fs::resize_file(cut, size);
    EXPECT_THROW(read_plan_store_file(cut, fingerprint), std::invalid_argument)
        << "size " << size << " of " << full_size;
  }
}

}  // namespace
}  // namespace blink
