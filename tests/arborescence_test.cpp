#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "blink/common/rng.h"
#include "blink/graph/arborescence.h"

namespace blink::graph {
namespace {

// Brute-force minimum arborescence by trying every combination of one
// in-edge per non-root vertex. Exponential; only for tiny graphs.
double brute_force_min(const DiGraph& g, int root,
                       const std::vector<double>& cost) {
  const int n = g.num_vertices();
  std::vector<std::vector<int>> choices;
  for (int v = 0; v < n; ++v) {
    if (v == root) continue;
    if (g.in_edges(v).empty()) return -1.0;
    choices.push_back(g.in_edges(v));
  }
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> idx(choices.size(), 0);
  while (true) {
    // Check the current combination for acyclicity (walk to root).
    std::vector<int> parent(static_cast<std::size_t>(n), -1);
    double total = 0.0;
    std::size_t k = 0;
    for (int v = 0; v < n; ++v) {
      if (v == root) continue;
      const int e = choices[k][idx[k]];
      parent[static_cast<std::size_t>(v)] = g.edge(e).src;
      total += cost[static_cast<std::size_t>(e)];
      ++k;
    }
    bool valid = true;
    for (int v = 0; v < n && valid; ++v) {
      int u = v;
      int steps = 0;
      while (u != root) {
        u = parent[static_cast<std::size_t>(u)];
        if (u < 0 || ++steps > n) {
          valid = false;
          break;
        }
      }
    }
    if (valid) best = std::min(best, total);
    // Next combination.
    std::size_t i = 0;
    while (i < idx.size() && ++idx[i] == choices[i].size()) {
      idx[i] = 0;
      ++i;
    }
    if (i == idx.size()) break;
  }
  return std::isinf(best) ? -1.0 : best;
}

double tree_cost(const Arborescence& arb, const std::vector<double>& cost) {
  double total = 0.0;
  for (const int e : arb.edge_ids) total += cost[static_cast<std::size_t>(e)];
  return total;
}

TEST(Arborescence, SimpleTriangle) {
  DiGraph g(3);
  g.add_edge(0, 1, 1e9);
  g.add_edge(0, 2, 1e9);
  g.add_edge(1, 2, 1e9);
  const std::vector<double> cost{1.0, 5.0, 1.0};
  const auto arb = min_cost_arborescence(g, 0, cost);
  ASSERT_TRUE(arb.has_value());
  EXPECT_TRUE(arb->spans(g));
  EXPECT_DOUBLE_EQ(tree_cost(*arb, cost), 2.0);  // 0->1, 1->2
}

TEST(Arborescence, UnreachableVertexFails) {
  DiGraph g(3);
  g.add_edge(0, 1, 1e9);
  g.add_edge(2, 1, 1e9);  // nothing reaches 2 from 0
  const std::vector<double> cost{1.0, 1.0};
  EXPECT_FALSE(min_cost_arborescence(g, 0, cost).has_value());
}

TEST(Arborescence, SingleVertex) {
  DiGraph g(1);
  const auto arb = min_cost_arborescence(g, 0, {});
  ASSERT_TRUE(arb.has_value());
  EXPECT_TRUE(arb->edge_ids.empty());
}

TEST(Arborescence, CycleContractionRequired) {
  // Classic case: the greedy in-edge choice creates a 1<->2 cycle that must
  // be contracted.
  DiGraph g(3);
  g.add_edge(0, 1, 1e9);  // cost 10
  g.add_edge(2, 1, 1e9);  // cost 1
  g.add_edge(1, 2, 1e9);  // cost 1
  g.add_edge(0, 2, 1e9);  // cost 10
  const std::vector<double> cost{10.0, 1.0, 1.0, 10.0};
  const auto arb = min_cost_arborescence(g, 0, cost);
  ASSERT_TRUE(arb.has_value());
  EXPECT_TRUE(arb->spans(g));
  EXPECT_DOUBLE_EQ(tree_cost(*arb, cost), 11.0);
}

TEST(Arborescence, DepthAndParents) {
  DiGraph g(4);
  const int e01 = g.add_edge(0, 1, 1e9);
  const int e12 = g.add_edge(1, 2, 1e9);
  const int e23 = g.add_edge(2, 3, 1e9);
  Arborescence arb{0, {e01, e12, e23}};
  EXPECT_TRUE(arb.spans(g));
  EXPECT_EQ(arb.depth(g), 3);
  const auto parents = arb.parents(g);
  EXPECT_EQ(parents[0], -1);
  EXPECT_EQ(parents[3], 2);
}

TEST(Arborescence, MatchesBruteForceOnRandomGraphs) {
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = rng.next_int(2, 5);
    DiGraph g(n);
    std::vector<double> cost;
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (u != v && rng.next_double() < 0.6) {
          g.add_edge(u, v, 1e9);
          cost.push_back(static_cast<double>(rng.next_int(0, 20)));
        }
      }
    }
    if (g.num_edges() == 0) continue;
    const int root = rng.next_int(0, n - 1);
    const double expected = brute_force_min(g, root, cost);
    const auto arb = min_cost_arborescence(g, root, cost);
    if (expected < 0.0) {
      EXPECT_FALSE(arb.has_value()) << "trial " << trial;
    } else {
      ASSERT_TRUE(arb.has_value()) << "trial " << trial;
      EXPECT_TRUE(arb->spans(g));
      EXPECT_NEAR(tree_cost(*arb, cost), expected, 1e-9) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace blink::graph
