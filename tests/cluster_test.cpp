#include <gtest/gtest.h>

#include "blink/cluster/scheduler.h"

namespace blink::cluster {
namespace {

TEST(Scheduler, ProducesMultiGpuJobs) {
  SchedulerConfig config;
  config.num_jobs = 5000;
  Rng rng(1);
  const auto stats = simulate_cluster(config, rng);
  EXPECT_GT(stats.multi_gpu_jobs, 1000);
}

TEST(Scheduler, HistogramCoversOnlyValidSizes) {
  SchedulerConfig config;
  config.num_jobs = 5000;
  Rng rng(2);
  const auto stats = simulate_cluster(config, rng);
  ASSERT_EQ(stats.histogram.size(),
            static_cast<std::size_t>(config.gpus_per_server) + 1);
  EXPECT_EQ(stats.histogram[0], 0);  // no zero-GPU placements recorded
}

// Figure 3's key observation: odd fragment sizes (3, 5, 6, 7) are common
// even though multi-GPU jobs request powers of two.
TEST(Scheduler, FragmentationCreatesOddSizes) {
  SchedulerConfig config;
  config.num_jobs = 40000;
  Rng rng(3);
  const auto stats = simulate_cluster(config, rng);
  const double odd = stats.percent(3) + stats.percent(5) + stats.percent(6) +
                     stats.percent(7);
  EXPECT_GT(odd, 5.0);   // a significant share
  EXPECT_LT(odd, 70.0);  // but powers of two still dominate
  EXPECT_GT(stats.fragmented_jobs, 0);
}

TEST(Scheduler, PowersOfTwoDominate) {
  SchedulerConfig config;
  config.num_jobs = 40000;
  Rng rng(4);
  const auto stats = simulate_cluster(config, rng);
  const double pow2 = stats.percent(2) + stats.percent(4) + stats.percent(8);
  const double odd = stats.percent(3) + stats.percent(5) + stats.percent(6) +
                     stats.percent(7);
  EXPECT_GT(pow2, odd);
}

TEST(Scheduler, PercentagesSumToHundred) {
  SchedulerConfig config;
  config.num_jobs = 10000;
  Rng rng(5);
  const auto stats = simulate_cluster(config, rng);
  double total = 0.0;
  for (int k = 1; k <= config.gpus_per_server; ++k) {
    total += stats.percent(k);
  }
  EXPECT_NEAR(total, 100.0, 1e-6);
}

TEST(Scheduler, DeterministicUnderSeed) {
  SchedulerConfig config;
  config.num_jobs = 2000;
  Rng a(42);
  Rng b(42);
  const auto s1 = simulate_cluster(config, a);
  const auto s2 = simulate_cluster(config, b);
  EXPECT_EQ(s1.histogram, s2.histogram);
}

TEST(Scheduler, MoreLoadMoreFragmentation) {
  SchedulerConfig light;
  light.num_jobs = 20000;
  light.mean_duration = 5.0;
  SchedulerConfig heavy = light;
  heavy.mean_duration = 200.0;
  Rng r1(7);
  Rng r2(7);
  const auto s_light = simulate_cluster(light, r1);
  const auto s_heavy = simulate_cluster(heavy, r2);
  const auto odd_share = [](const AllocationStats& s) {
    return s.percent(3) + s.percent(5) + s.percent(6) + s.percent(7);
  };
  EXPECT_GE(odd_share(s_heavy), odd_share(s_light));
}

}  // namespace
}  // namespace blink::cluster
