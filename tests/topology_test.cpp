#include <gtest/gtest.h>

#include <stdexcept>

#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"
#include "blink/topology/topology.h"

namespace blink::topo {
namespace {

TEST(Builders, Dgx1pShape) {
  const Topology t = make_dgx1p();
  ASSERT_TRUE(t.validate());
  EXPECT_EQ(t.num_gpus, 8);
  EXPECT_EQ(t.nvlinks.size(), 16u);  // two K4 cliques + 4 cross links
  // P100: exactly 4 NVLink lanes per GPU.
  for (int g = 0; g < 8; ++g) {
    EXPECT_EQ(t.nvlink_degree(g), 4) << "gpu " << g;
  }
  EXPECT_TRUE(t.nvlink_connected());
}

TEST(Builders, Dgx1vShape) {
  const Topology t = make_dgx1v();
  ASSERT_TRUE(t.validate());
  // V100: exactly 6 NVLink lanes per GPU (the added gen2 lanes).
  for (int g = 0; g < 8; ++g) {
    EXPECT_EQ(t.nvlink_degree(g), 6) << "gpu " << g;
  }
  // Doubled edges from the AWS p3.16xlarge topology.
  EXPECT_EQ(t.lanes_between(0, 3), 2);
  EXPECT_EQ(t.lanes_between(1, 2), 2);
  EXPECT_EQ(t.lanes_between(0, 4), 2);
  EXPECT_EQ(t.lanes_between(0, 1), 1);
  EXPECT_EQ(t.lanes_between(1, 4), 0);  // not adjacent
}

TEST(Builders, Dgx1GenerationsShareMesh) {
  const Topology p = make_dgx1p();
  const Topology v = make_dgx1v();
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      EXPECT_EQ(p.lanes_between(a, b) > 0, v.lanes_between(a, b) > 0)
          << a << "-" << b;
    }
  }
  EXPECT_LT(p.nvlink_lane_bw, v.nvlink_lane_bw);
}

TEST(Builders, Dgx2Shape) {
  const Topology t = make_dgx2();
  ASSERT_TRUE(t.validate());
  EXPECT_EQ(t.num_gpus, 16);
  EXPECT_TRUE(t.has_nvswitch);
  EXPECT_TRUE(t.nvlinks.empty());
  EXPECT_TRUE(t.nvlink_connected());  // via the switch
}

TEST(Builders, CliqueAndChain) {
  const Topology clique = make_clique(5);
  EXPECT_EQ(clique.nvlinks.size(), 10u);
  EXPECT_TRUE(clique.nvlink_connected());
  const Topology chain = make_chain(4);
  EXPECT_EQ(chain.nvlinks.size(), 3u);
  EXPECT_TRUE(chain.nvlink_connected());
  EXPECT_EQ(chain.lanes_between(0, 2), 0);
}

TEST(Builders, CliqueAndChainRejectBadArguments) {
  EXPECT_THROW(make_clique(0), std::invalid_argument);
  EXPECT_THROW(make_clique(-2), std::invalid_argument);
  EXPECT_THROW(make_clique(4, 0.0), std::invalid_argument);
  EXPECT_THROW(make_clique(4, -1.0e9), std::invalid_argument);
  EXPECT_THROW(make_chain(0), std::invalid_argument);
  EXPECT_THROW(make_chain(-1), std::invalid_argument);
  EXPECT_THROW(make_chain(3, 0.0), std::invalid_argument);
  EXPECT_THROW(make_chain(3, -5.0), std::invalid_argument);
  // The degenerate-but-legal single-GPU shapes still build.
  EXPECT_TRUE(make_clique(1).validate());
  EXPECT_TRUE(make_chain(1).validate());
}

TEST(Builders, PcieHierarchy) {
  const PcieConfig pcie = make_dgx1_pcie(8);
  EXPECT_EQ(pcie.num_plx(), 4);
  EXPECT_EQ(pcie.num_cpus(), 2);
  // Pairs share a PLX.
  EXPECT_EQ(pcie.plx_of_gpu[0], pcie.plx_of_gpu[1]);
  EXPECT_NE(pcie.plx_of_gpu[1], pcie.plx_of_gpu[2]);
  // Quads share a socket.
  EXPECT_EQ(pcie.cpu_of_plx[0], pcie.cpu_of_plx[1]);
  EXPECT_NE(pcie.cpu_of_plx[1], pcie.cpu_of_plx[2]);
}

TEST(Topology, ValidateRejectsBadEdges) {
  Topology t = make_chain(3);
  t.nvlinks.push_back({0, 5, 1});  // out of range
  std::string err;
  EXPECT_FALSE(t.validate(&err));
  EXPECT_FALSE(err.empty());
}

TEST(Topology, ValidateRejectsSelfLoop) {
  Topology t = make_chain(3);
  t.nvlinks.push_back({1, 1, 1});
  EXPECT_FALSE(t.validate());
}

TEST(Topology, CapacityIsLanesTimesLaneBw) {
  const Topology t = make_dgx1v();
  EXPECT_DOUBLE_EQ(t.nvlink_capacity(0, 3), 2 * t.nvlink_lane_bw);
  EXPECT_DOUBLE_EQ(t.nvlink_capacity(0, 1), t.nvlink_lane_bw);
  EXPECT_DOUBLE_EQ(t.nvlink_capacity(1, 4), 0.0);
}

TEST(Discovery, InducedKeepsInternalEdges) {
  const Topology machine = make_dgx1v();
  const std::vector<int> alloc{0, 1, 3};
  const Topology t = induced_topology(machine, alloc);
  ASSERT_TRUE(t.validate());
  EXPECT_EQ(t.num_gpus, 3);
  EXPECT_EQ(t.lanes_between(0, 1), 1);  // 0-1
  EXPECT_EQ(t.lanes_between(0, 2), 2);  // 0-3 doubled
  EXPECT_EQ(t.lanes_between(1, 2), 1);  // 1-3
  EXPECT_EQ(t.global_id(2), 3);
}

TEST(Discovery, InducedDropsExternalEdges) {
  const Topology machine = make_dgx1v();
  const std::vector<int> alloc{1, 4, 5};  // 1-4 not adjacent
  const Topology t = induced_topology(machine, alloc);
  EXPECT_EQ(t.lanes_between(0, 1), 0);   // 1-4
  EXPECT_EQ(t.lanes_between(1, 2), 1);   // 4-5
  EXPECT_EQ(t.lanes_between(0, 2), 2);   // 1-5 doubled
  EXPECT_TRUE(t.nvlink_connected());     // still connected through GPU 5
}

TEST(Discovery, InducedCanDisconnectNvlink) {
  const Topology machine = make_dgx1v();
  // GPU 1 has no NVLink to 4 or 6 (its links go to 0, 2, 3, 5).
  const std::vector<int> alloc{1, 4, 6};
  const Topology t = induced_topology(machine, alloc);
  EXPECT_EQ(t.lanes_between(0, 1), 0);
  EXPECT_EQ(t.lanes_between(0, 2), 0);
  EXPECT_EQ(t.lanes_between(1, 2), 1);  // 4-6
  EXPECT_FALSE(t.nvlink_connected());
}

TEST(Discovery, InducedPreservesPciePlacement) {
  const Topology machine = make_dgx1v();
  const std::vector<int> alloc{2, 6};
  const Topology t = induced_topology(machine, alloc);
  ASSERT_TRUE(t.validate());
  // GPU2 under PLX1/CPU0, GPU6 under PLX3/CPU1: cross-QPI placement kept.
  const int plx_a = t.pcie.plx_of_gpu[0];
  const int plx_b = t.pcie.plx_of_gpu[1];
  EXPECT_NE(plx_a, plx_b);
  EXPECT_NE(t.pcie.cpu_of_plx[static_cast<std::size_t>(plx_a)],
            t.pcie.cpu_of_plx[static_cast<std::size_t>(plx_b)]);
}

TEST(Discovery, EnumerateAllocationsCounts) {
  const Topology machine = make_dgx1v();
  EXPECT_EQ(enumerate_allocations(machine, 3).size(), 56u);   // C(8,3)
  EXPECT_EQ(enumerate_allocations(machine, 8).size(), 1u);
  EXPECT_EQ(enumerate_allocations(machine, 1).size(), 8u);
}

TEST(Discovery, AllocationsAreSortedAndDistinct) {
  const Topology machine = make_dgx1p();
  const auto allocs = enumerate_allocations(machine, 4);
  EXPECT_EQ(allocs.size(), 70u);
  for (const auto& a : allocs) {
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  }
  auto copy = allocs;
  std::sort(copy.begin(), copy.end());
  EXPECT_TRUE(std::adjacent_find(copy.begin(), copy.end()) == copy.end());
}

}  // namespace
}  // namespace blink::topo
