#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "blink/baselines/backends.h"
#include "blink/blink/codegen.h"
#include "blink/blink/multiserver.h"
#include "blink/sim/executor.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink {
namespace {

std::vector<topo::Topology> fragmented_3_5() {
  const auto machine = topo::make_dgx1v();
  return {topo::induced_topology(machine, std::vector<int>{0, 1, 2}),
          topo::induced_topology(machine, std::vector<int>{3, 4, 5, 6, 7})};
}

// --- flat single-tree references --------------------------------------------
// Hand-built unpartitioned schedules over the same fabric: one NIC transfer
// of the whole buffer per server pair and a single heaviest packed tree per
// server, with no partition pipelining. The three-phase protocol splits the
// buffer across every per-server root and all packed trees, so it must never
// be slower than these.

RoutedTree heaviest_tree(const sim::Fabric& fabric,
                         const std::vector<topo::Topology>& servers, int s,
                         const ClusterOptions& opts) {
  TreeGenOptions tg = opts.treegen;
  tg.link = topo::LinkType::kNVLink;
  const TreeSet set =
      generate_trees(servers[static_cast<std::size_t>(s)], 0, tg);
  EXPECT_FALSE(set.empty());
  auto trees = route_trees(fabric, s, set);
  std::sort(trees.begin(), trees.end(),
            [](const RoutedTree& a, const RoutedTree& b) {
              return a.weight > b.weight;
            });
  return trees.front();
}

double flat_broadcast_seconds(const std::vector<topo::Topology>& servers,
                              double bytes, const ClusterOptions& opts) {
  const sim::Fabric fabric(servers, opts.fabric);
  ProgramBuilder builder(fabric, opts.codegen);
  const int chunks = builder.chunks_for(bytes);
  builder.tree_broadcast_chunks(heaviest_tree(fabric, servers, 0, opts),
                                bytes, chunks);
  for (int s = 1; s < fabric.num_servers(); ++s) {
    const auto arrived =
        builder.copy_chunks(fabric.nic_route(0, s), bytes, chunks, s);
    const std::vector<int> gates(static_cast<std::size_t>(chunks),
                                 arrived.back());
    builder.tree_broadcast_chunks(heaviest_tree(fabric, servers, s, opts),
                                  bytes, chunks, gates);
  }
  return sim::execute(fabric, builder.take()).makespan;
}

double flat_all_reduce_seconds(const std::vector<topo::Topology>& servers,
                               double bytes, const ClusterOptions& opts) {
  const sim::Fabric fabric(servers, opts.fabric);
  ProgramBuilder builder(fabric, opts.codegen);
  const int n_srv = fabric.num_servers();
  const int chunks = builder.chunks_for(bytes);
  std::vector<RoutedTree> tree;
  std::vector<int> reduced;  // whole buffer reduced at each server's GPU 0
  for (int s = 0; s < n_srv; ++s) {
    tree.push_back(heaviest_tree(fabric, servers, s, opts));
    const auto done = builder.tree_reduce_chunks(tree.back(), bytes, chunks,
                                                 /*with_kernels=*/true);
    reduced.push_back(done.back());
  }
  for (int s = 0; s < n_srv; ++s) {
    std::vector<int> deps{reduced[static_cast<std::size_t>(s)]};
    for (int src = 0; src < n_srv; ++src) {
      if (src == s) continue;
      const std::vector<int> gates(
          static_cast<std::size_t>(chunks),
          reduced[static_cast<std::size_t>(src)]);
      deps.push_back(builder
                         .copy_chunks(fabric.nic_route(src, s), bytes, chunks,
                                      n_srv * src + s, gates)
                         .back());
    }
    const int kernel = builder.reduce_kernel(s, 0, bytes * n_srv,
                                             std::move(deps));
    const std::vector<int> gates(static_cast<std::size_t>(chunks), kernel);
    builder.tree_broadcast_chunks(tree[static_cast<std::size_t>(s)], bytes,
                                  chunks, gates);
  }
  return sim::execute(fabric, builder.take()).makespan;
}

TEST(Multiserver, RequiresTwoServers) {
  EXPECT_THROW(ClusterCommunicator({topo::make_dgx1v()}, {}),
               std::invalid_argument);
}

TEST(Multiserver, PartitionsFollowSmallestServer) {
  ClusterCommunicator comm(fragmented_3_5(), {});
  EXPECT_EQ(comm.num_partitions(), 3);
  EXPECT_EQ(comm.num_gpus(), 8);
}

TEST(Multiserver, AllReduceBoundByNic) {
  ClusterOptions opts;
  opts.fabric.nic_bw = 5e9;  // 40 Gbps
  ClusterCommunicator comm(fragmented_3_5(), opts);
  const auto r = comm.all_reduce(100e6);
  // Every byte crosses the NIC once per direction per partition exchange:
  // throughput cannot exceed NIC bandwidth and should be within an order.
  EXPECT_LT(r.algorithm_bw, 5e9);
  EXPECT_GT(r.algorithm_bw, 0.2e9);
}

TEST(Multiserver, FasterNicHelpsUntilNvlinkBound) {
  std::vector<double> rates;
  for (const double nic : {5e9, 12.5e9, 50e9}) {  // 40/100/400 Gbps
    ClusterOptions opts;
    opts.fabric.nic_bw = nic;
    ClusterCommunicator comm(fragmented_3_5(), opts);
    rates.push_back(comm.all_reduce(100e6).algorithm_bw);
  }
  EXPECT_GT(rates[1], rates[0] * 1.5);  // 100 Gbps much better than 40
  EXPECT_GT(rates[2], rates[1]);        // 400 still improves
}

TEST(Multiserver, EqualServersUseAllRoots) {
  const auto machine = topo::make_dgx1v();
  const auto half = topo::induced_topology(machine,
                                           std::vector<int>{0, 1, 2, 3});
  ClusterCommunicator comm({half, half}, {});
  EXPECT_EQ(comm.num_partitions(), 4);
  const auto r = comm.all_reduce(64e6);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.num_trees, 0);
}

TEST(Multiserver, SingleGpuServerHandled) {
  const auto machine = topo::make_dgx1v();
  ClusterCommunicator comm(
      {topo::induced_topology(machine, std::vector<int>{0}),
       topo::induced_topology(machine, std::vector<int>{4, 5, 6, 7})},
      {});
  EXPECT_EQ(comm.num_partitions(), 1);
  const auto r = comm.all_reduce(32e6);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(Multiserver, ThreeServers) {
  const auto machine = topo::make_dgx1v();
  const auto quad = topo::induced_topology(machine,
                                           std::vector<int>{4, 5, 6, 7});
  ClusterCommunicator comm({quad, quad, quad}, {});
  const auto r = comm.all_reduce(64e6);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_LT(r.algorithm_bw, 5e9);  // NIC fan-out bound
}

// --- the engine port ---------------------------------------------------------

// Acceptance: ClusterCommunicator is a CollectiveEngine — all six one-shot
// collectives lower through the three-phase cluster backend on a fragmented
// allocation, with hit/miss counters on the shared plan cache.
TEST(Multiserver, AllKindsCompileExecuteWithSharedPlanCache) {
  ClusterCommunicator comm(fragmented_3_5(), {});
  EXPECT_EQ(comm.num_servers(), 2);
  EXPECT_EQ(comm.backend_id("cluster"), 0);
  const double bytes = 48e6;
  std::uint64_t expected_misses = 0;
  for (const CollectiveKind kind :
       {CollectiveKind::kBroadcast, CollectiveKind::kGather,
        CollectiveKind::kReduce, CollectiveKind::kAllReduce,
        CollectiveKind::kAllGather, CollectiveKind::kReduceScatter}) {
    const auto plan = comm.compile(kind, bytes, 0);
    EXPECT_EQ(comm.plan_cache().misses(), ++expected_misses) << to_string(kind);
    const auto r = comm.execute(*plan);
    EXPECT_GT(r.seconds, 0.0) << to_string(kind);
    EXPECT_GT(r.algorithm_bw, 0.0) << to_string(kind);
    EXPECT_DOUBLE_EQ(r.bytes, bytes) << to_string(kind);
    EXPECT_GT(r.num_ops, 0) << to_string(kind);
    // Identical shape: a cache hit returning the same compiled artifact.
    const auto again = comm.compile(kind, bytes, 0);
    EXPECT_EQ(again.get(), plan.get()) << to_string(kind);
    EXPECT_EQ(comm.plan_cache().misses(), expected_misses) << to_string(kind);
  }
  EXPECT_EQ(comm.plan_cache().hits(), 6u);
}

// Every byte of an exchange crosses the NICs at least once, so each kind's
// makespan is bounded below by its cross-server volume at NIC rate.
TEST(Multiserver, NicVolumeLowerBounds) {
  ClusterOptions opts;
  opts.fabric.nic_bw = 5e9;
  ClusterCommunicator comm(fragmented_3_5(), opts);
  const double bytes = 50e6;
  struct Case {
    CollectiveKind kind;
    int root;
    double nic_bytes;  // bottleneck server's NIC volume (one direction)
  };
  // Server 0 has 3 GPUs, server 1 has 5; global root 0 lives on server 0.
  const std::vector<Case> cases{
      {CollectiveKind::kBroadcast, 0, bytes},       // root server egress
      {CollectiveKind::kGather, 0, 5 * bytes},      // root server ingress
      {CollectiveKind::kReduce, 0, bytes},          // root server ingress
      {CollectiveKind::kAllReduce, -1, bytes},      // per-server egress
      {CollectiveKind::kAllGather, -1, 5 * bytes},  // server-0 ingress
      {CollectiveKind::kReduceScatter, -1, bytes},  // per-server egress
  };
  for (const auto& c : cases) {
    const auto r = comm.execute(*comm.compile(c.kind, bytes, c.root));
    EXPECT_GE(r.seconds, 0.999 * c.nic_bytes / opts.fabric.nic_bw)
        << to_string(c.kind);
  }
}

// Correctness versus the flat single-tree reference: partitioning across
// every per-server root and pipelining the phases can only help.
TEST(Multiserver, BroadcastBeatsFlatSingleTreeReference) {
  const auto servers = fragmented_3_5();
  const ClusterOptions opts;
  ClusterCommunicator comm(servers, opts);
  const double bytes = 100e6;
  const auto r = comm.broadcast(bytes, 0);
  EXPECT_LE(r.seconds, flat_broadcast_seconds(servers, bytes, opts) * 1.001);
}

TEST(Multiserver, AllReduceBeatsFlatSingleTreeReference) {
  const auto servers = fragmented_3_5();
  const ClusterOptions opts;
  ClusterCommunicator comm(servers, opts);
  const double bytes = 100e6;
  const auto r = comm.all_reduce(bytes);
  EXPECT_LE(r.seconds, flat_all_reduce_seconds(servers, bytes, opts) * 1.001);
}

// Rooted collectives accept any global (server-major) GPU id; the root's
// server changes which NIC direction saturates.
TEST(Multiserver, GlobalRootsOnEitherServer) {
  ClusterCommunicator comm(fragmented_3_5(), {});
  for (const int root : {0, 2, 3, 7}) {  // server 0: {0,1,2}; server 1: rest
    const auto b = comm.broadcast(32e6, root);
    EXPECT_GT(b.seconds, 0.0) << root;
    const auto g = comm.gather(32e6, root);
    EXPECT_GT(g.seconds, 0.0) << root;
    const auto r = comm.reduce(32e6, root);
    EXPECT_GT(r.seconds, 0.0) << root;
  }
}

// Bugfix: bad roots and degenerate sizes are invalid arguments, where the
// old cluster path ignored roots entirely and accepted any size.
TEST(Multiserver, ValidatesLikeTheEngine) {
  ClusterCommunicator comm(fragmented_3_5(), {});
  EXPECT_THROW(comm.compile(CollectiveKind::kAllReduce, 0.0),
               std::invalid_argument);
  EXPECT_THROW(comm.compile(CollectiveKind::kAllReduce, -4e6),
               std::invalid_argument);
  EXPECT_THROW(comm.broadcast(32e6, 8), std::invalid_argument);   // 8 GPUs
  EXPECT_THROW(comm.broadcast(32e6, -2), std::invalid_argument);
  EXPECT_THROW(comm.reduce(32e6, 99), std::invalid_argument);
  // Sizes below one byte per partition cannot be split three-phase...
  EXPECT_THROW(comm.all_reduce(2.0), std::invalid_argument);  // 3 partitions
  EXPECT_THROW(comm.broadcast(2.0, 0), std::invalid_argument);
  // ...but Gather/AllGather move whole per-GPU buffers and stay valid.
  EXPECT_GT(comm.gather(2.0, 0).seconds, 0.0);
  EXPECT_GT(comm.all_gather(2.0).seconds, 0.0);
  // A foreign engine's plan is rejected.
  ClusterCommunicator other(fragmented_3_5(), {});
  const auto plan = other.compile(CollectiveKind::kAllReduce, 16e6);
  EXPECT_THROW(comm.execute(*plan), std::invalid_argument);
}

// run() group launches work on the cluster engine: per-request makespans
// under shared-fabric contention, all plans landing in the one cache.
TEST(Multiserver, GroupLaunchOnCluster) {
  ClusterCommunicator comm(fragmented_3_5(), {});
  const std::vector<CollectiveRequest> reqs{
      {CollectiveKind::kAllReduce, 32e6, -1},
      {CollectiveKind::kBroadcast, 8e6, 0},
      {CollectiveKind::kGather, 4e6, 5},
  };
  const auto results = comm.run(reqs);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i].bytes, reqs[i].bytes);
    EXPECT_GT(results[i].seconds, 0.0);
  }
  // Contention can only slow the AllReduce relative to running solo.
  const auto solo = comm.all_reduce(32e6);
  EXPECT_GE(results[0].seconds, 0.999 * solo.seconds);
  EXPECT_EQ(comm.plan_cache().size(), 3u);
}

// A group can mix the cluster backend with a baseline registered on the
// same engine (the ring lowers onto server 0's fragment of the shared
// fabric), so cluster-wide and server-local work contend in one launch.
TEST(Multiserver, MixedBackendGroupLaunch) {
  ClusterCommunicator comm(fragmented_3_5(), {});
  const int ring = comm.register_backend(baselines::make_baseline_backend(
      "ring", comm.topology(), comm.fabric(), baselines::NcclOptions{}));
  EXPECT_EQ(ring, 1);
  EXPECT_EQ(comm.backend_id("ring"), ring);
  const std::vector<CollectiveRequest> reqs{
      {CollectiveKind::kAllReduce, 32e6, -1, 0},
      {CollectiveKind::kBroadcast, 8e6, 0, ring},
  };
  const auto results = comm.run(reqs);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_GT(r.seconds, 0.0);
  const auto cluster_plan = comm.compile(CollectiveKind::kAllReduce, 32e6);
  const auto ring_plan = comm.compile(CollectiveKind::kBroadcast, 8e6, 0, ring);
  EXPECT_EQ(cluster_plan->backend(), 0);
  EXPECT_EQ(ring_plan->backend(), ring);
  EXPECT_NE(cluster_plan.get(), ring_plan.get());
  // A globally-valid root beyond the ring's server-0 fragment is rejected
  // (the ring backend only addresses its own 3 ranks).
  EXPECT_THROW(comm.compile(CollectiveKind::kBroadcast, 8e6, 5, ring),
               std::invalid_argument);
}

// --- NIC-aware phase-2 exchanges --------------------------------------------

std::vector<topo::Topology> quad_cluster(int n) {
  const auto machine = topo::make_dgx1v();
  const auto quad = topo::induced_topology(machine,
                                           std::vector<int>{4, 5, 6, 7});
  return std::vector<topo::Topology>(static_cast<std::size_t>(n), quad);
}

double total_nic_bytes(const ClusterCommunicator& comm,
                       const sim::Program& program) {
  double total = 0.0;
  for (int s = 0; s < comm.num_servers(); ++s) {
    total += nic_egress_bytes(comm.fabric(), program, s);
  }
  return total;
}

// Ring and all-to-all phase-2 exchanges are interchangeable for every kind:
// both lower, both execute, both record their strategy on the plan, and the
// ring never moves more NIC bytes than the flat exchange.
TEST(Multiserver, RingAndAllToAllEquivalentForAllKinds) {
  const auto servers = quad_cluster(3);
  ClusterOptions ring_opts, atoa_opts;
  ring_opts.phase2 = Phase2Policy::kRing;
  atoa_opts.phase2 = Phase2Policy::kAllToAll;
  ClusterCommunicator ring(servers, ring_opts);
  ClusterCommunicator atoa(servers, atoa_opts);
  const double bytes = 32e6;
  for (const CollectiveKind kind :
       {CollectiveKind::kBroadcast, CollectiveKind::kGather,
        CollectiveKind::kReduce, CollectiveKind::kAllReduce,
        CollectiveKind::kAllGather, CollectiveKind::kReduceScatter}) {
    const auto ring_plan = ring.compile(kind, bytes, 0);
    const auto atoa_plan = atoa.compile(kind, bytes, 0);
    EXPECT_EQ(ring_plan->phase2_strategy(), Phase2Strategy::kRing)
        << to_string(kind);
    EXPECT_EQ(atoa_plan->phase2_strategy(), Phase2Strategy::kAllToAll)
        << to_string(kind);
    const auto ring_r = ring.execute(*ring_plan);
    const auto atoa_r = atoa.execute(*atoa_plan);
    EXPECT_GT(ring_r.seconds, 0.0) << to_string(kind);
    EXPECT_GT(atoa_r.seconds, 0.0) << to_string(kind);
    EXPECT_DOUBLE_EQ(ring_r.bytes, atoa_r.bytes) << to_string(kind);
    // The ring never moves more NIC bytes than the flat exchange — except
    // Gather, whose chain forwards accumulated blocks through the
    // intermediate servers (the root's ingress still drops to one stream).
    const double slack = kind == CollectiveKind::kGather ? 2.0 : 1.001;
    EXPECT_LE(total_nic_bytes(ring, ring_plan->program()),
              total_nic_bytes(atoa, atoa_plan->program()) * slack)
        << to_string(kind);
  }
}

// The ring exchange's linear NIC volume: every server sends each partition
// at most twice, so per-server egress stays bounded by 2x the payload while
// the flat exchange grows with the server count.
TEST(Multiserver, RingEgressBoundedPerServer) {
  const auto servers = quad_cluster(5);
  ClusterOptions ring_opts, atoa_opts;
  ring_opts.phase2 = Phase2Policy::kRing;
  atoa_opts.phase2 = Phase2Policy::kAllToAll;
  ClusterCommunicator ring(servers, ring_opts);
  ClusterCommunicator atoa(servers, atoa_opts);
  const double bytes = 40e6;
  const auto ring_plan = ring.compile(CollectiveKind::kAllReduce, bytes);
  const auto atoa_plan = atoa.compile(CollectiveKind::kAllReduce, bytes);
  for (int s = 0; s < 5; ++s) {
    EXPECT_LE(nic_egress_bytes(ring.fabric(), ring_plan->program(), s),
              2.0 * bytes * 1.001)
        << s;
    EXPECT_GE(nic_egress_bytes(atoa.fabric(), atoa_plan->program(), s),
              4.0 * bytes * 0.999)
        << s;  // (n-1) partials out of every server
  }
}

// Auto phase-2 selection measures every applicable exchange and keeps the
// fastest — never slower than any forced strategy.
TEST(Multiserver, AutoPhase2PicksFastestCandidate) {
  const auto servers = quad_cluster(4);  // power of two: all three apply
  ClusterOptions auto_opts;
  ClusterCommunicator auto_comm(servers, auto_opts);
  const double bytes = 48e6;
  const auto auto_plan = auto_comm.compile(CollectiveKind::kAllReduce, bytes);
  EXPECT_NE(auto_plan->phase2_strategy(), Phase2Strategy::kNone);
  const double auto_seconds = auto_comm.execute(*auto_plan).seconds;
  for (const Phase2Policy forced :
       {Phase2Policy::kAllToAll, Phase2Policy::kRing,
        Phase2Policy::kHierarchical}) {
    ClusterOptions opts;
    opts.phase2 = forced;
    ClusterCommunicator comm(servers, opts);
    const auto r = comm.all_reduce(bytes);
    EXPECT_LE(auto_seconds, r.seconds * 1.001) << to_string(forced);
  }
}

// Hierarchical reduce exchanges pair servers by XOR and need a power-of-two
// count; the rooted kinds lower through binomial trees at any count.
TEST(Multiserver, HierarchicalPolicyValidatesServerCount) {
  ClusterOptions opts;
  opts.phase2 = Phase2Policy::kHierarchical;
  ClusterCommunicator three(quad_cluster(3), opts);
  EXPECT_THROW(three.all_reduce(32e6), std::invalid_argument);
  EXPECT_THROW(three.reduce_scatter(32e6), std::invalid_argument);
  EXPECT_THROW(three.all_gather(8e6), std::invalid_argument);
  const auto b = three.broadcast(32e6, 0);  // binomial: any server count
  EXPECT_GT(b.seconds, 0.0);
  EXPECT_EQ(three.compile(CollectiveKind::kBroadcast, 32e6, 0)
                ->phase2_strategy(),
            Phase2Strategy::kHierarchical);
  EXPECT_GT(three.reduce(32e6, 0).seconds, 0.0);
  EXPECT_GT(three.gather(8e6, 0).seconds, 0.0);

  ClusterCommunicator four(quad_cluster(4), opts);
  const auto plan = four.compile(CollectiveKind::kAllReduce, 32e6);
  EXPECT_EQ(plan->phase2_strategy(), Phase2Strategy::kHierarchical);
  EXPECT_GT(four.execute(*plan).seconds, 0.0);
}

// --- heterogeneous partition sizing -----------------------------------------

// A balanced cluster's bandwidth-weighted sizing is the equal split,
// bit-for-bit: identical shares and an identical compiled schedule.
TEST(Multiserver, EqualServersReduceToEqualSplitBitForBit) {
  const auto servers = quad_cluster(2);
  ClusterOptions weighted_opts, equal_opts;
  equal_opts.partition_sizing = PartitionSizing::kEqual;
  ClusterCommunicator weighted(servers, weighted_opts);
  ClusterCommunicator equal(servers, equal_opts);
  const auto shares = weighted.partition_shares();
  ASSERT_EQ(shares.size(), 4u);
  for (const double s : shares) EXPECT_EQ(s, 1.0 / 4);  // exact, not approx
  const auto wp = weighted.compile(CollectiveKind::kAllReduce, 64e6);
  const auto ep = equal.compile(CollectiveKind::kAllReduce, 64e6);
  const auto& wo = wp->program().ops();
  const auto& eo = ep->program().ops();
  ASSERT_EQ(wo.size(), eo.size());
  for (std::size_t i = 0; i < wo.size(); ++i) {
    EXPECT_EQ(wo[i].kind, eo[i].kind) << i;
    EXPECT_EQ(wo[i].route, eo[i].route) << i;
    EXPECT_EQ(wo[i].bytes, eo[i].bytes) << i;  // bitwise-identical split
    EXPECT_EQ(wo[i].stream, eo[i].stream) << i;
    EXPECT_EQ(wo[i].deps, eo[i].deps) << i;
  }
}

// Unequal link rates: the stagger from the measured probes beats the equal
// split on modeled AllReduce time.
TEST(Multiserver, HeterogeneousSizingBeatsEqualSplit) {
  const auto machine = topo::make_dgx1v();
  auto old_gen =
      topo::induced_topology(machine, std::vector<int>{3, 4, 5, 6, 7});
  old_gen.nvlink_lane_bw *= 0.25;
  const std::vector<topo::Topology> servers{
      topo::induced_topology(machine, std::vector<int>{0, 1, 2}), old_gen};
  ClusterOptions weighted_opts, equal_opts;
  // The stagger's win is overlapping the slow server's local phases with
  // the NIC exchange; chunk pipelining achieves the same overlap at chunk
  // granularity, leaving sizing a wash there. Compare on the whole-partition
  // lowering, where the stagger is the only pipelining available.
  weighted_opts.pipeline = false;
  equal_opts.pipeline = false;
  equal_opts.partition_sizing = PartitionSizing::kEqual;
  ClusterCommunicator weighted(servers, weighted_opts);
  ClusterCommunicator equal(servers, equal_opts);
  const auto shares = weighted.partition_shares();
  EXPECT_GT(shares.front(), shares.back());  // staggered, front-loaded
  double sum = 0.0;
  for (const double s : shares) sum += s;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_LT(weighted.all_reduce(100e6).seconds,
            equal.all_reduce(100e6).seconds);
}

// A server with near-zero bandwidth steepens the stagger to its cap, but
// the floor keeps every partition alive: shares clamp to a minimum, never
// zero.
TEST(Multiserver, NearZeroBandwidthServerClampsSharesToFloor) {
  auto dead = topo::make_dgx1v();
  dead.nvlink_lane_bw *= 1e-7;  // effectively no spare bandwidth
  ClusterOptions opts;
  ClusterCommunicator comm({topo::make_dgx1v(), dead}, opts);
  const auto shares = comm.partition_shares();
  ASSERT_EQ(shares.size(), 8u);
  const double floor = opts.min_partition_share / 8;
  double sum = 0.0;
  for (const double s : shares) {
    EXPECT_GT(s, 0.0);
    EXPECT_GE(s, floor);
    sum += s;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // The steepest stagger still hands the tail partition essentially the
  // floor, not more than twice it.
  EXPECT_LT(shares.back(), 2.5 * floor);
}

// --- cross-phase chunk pipelining -------------------------------------------

// Every kind lowers identically in payload terms with pipelining on or off
// — same bytes, both execute — and the chunk-gated schedule is never slower
// than the whole-partition joins, for every phase-2 strategy.
TEST(Multiserver, PipelinedNeverSlowerThanWholePartitionPerStrategy) {
  const auto servers = quad_cluster(4);  // power of two: all three apply
  for (const Phase2Policy policy :
       {Phase2Policy::kAllToAll, Phase2Policy::kRing,
        Phase2Policy::kHierarchical}) {
    ClusterOptions on_opts, off_opts;
    on_opts.phase2 = off_opts.phase2 = policy;
    off_opts.pipeline = false;
    ClusterCommunicator on(servers, on_opts);
    ClusterCommunicator off(servers, off_opts);
    for (const CollectiveKind kind :
         {CollectiveKind::kBroadcast, CollectiveKind::kGather,
          CollectiveKind::kReduce, CollectiveKind::kAllReduce,
          CollectiveKind::kAllGather, CollectiveKind::kReduceScatter}) {
      const double bytes = kind == CollectiveKind::kGather ||
                                   kind == CollectiveKind::kAllGather
                               ? 8e6
                               : 64e6;
      const auto on_plan = on.compile(kind, bytes, 0);
      const auto off_plan = off.compile(kind, bytes, 0);
      const auto on_r = on.execute(*on_plan);
      const auto off_r = off.execute(*off_plan);
      EXPECT_DOUBLE_EQ(on_r.bytes, off_r.bytes)
          << to_string(kind) << "/" << to_string(policy);
      EXPECT_LE(on_r.seconds, off_r.seconds * 1.001)
          << to_string(kind) << "/" << to_string(policy);
      // Both modes move the same NIC volume: pipelining regates, never
      // re-routes.
      EXPECT_NEAR(total_nic_bytes(on, on_plan->program()),
                  total_nic_bytes(off, off_plan->program()),
                  1.0)
          << to_string(kind) << "/" << to_string(policy);
    }
  }
}

// The tentpole claim at executor level: with chunk gates the first NIC
// transfer is admitted as soon as the first phase-1 chunk reduces, not after
// the whole partition joins — and the overlap shortens the ring makespan.
TEST(Multiserver, ChunkGatesAdmitNicTransfersBeforePhase1Completes) {
  const auto servers = quad_cluster(4);
  ClusterOptions on_opts, off_opts;
  on_opts.phase2 = off_opts.phase2 = Phase2Policy::kRing;
  off_opts.pipeline = false;
  ClusterCommunicator on(servers, on_opts);
  ClusterCommunicator off(servers, off_opts);
  const double bytes = 64e6;
  const auto first_nic_start = [](const ClusterCommunicator& comm,
                                  const sim::Program& program) {
    std::vector<int> egress;
    for (int s = 0; s < comm.num_servers(); ++s) {
      egress.push_back(
          comm.fabric().nic_route(s, (s + 1) % comm.num_servers()).front());
    }
    const auto run = sim::execute(comm.fabric(), program);
    double first = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < program.ops().size(); ++i) {
      const auto& op = program.ops()[i];
      if (op.kind != sim::OpKind::kCopy) continue;
      for (const int ch : op.route) {
        if (std::find(egress.begin(), egress.end(), ch) != egress.end()) {
          first = std::min(first, run.op_start[i]);
          break;
        }
      }
    }
    return first;
  };
  const auto on_plan = on.compile(CollectiveKind::kAllReduce, bytes);
  const auto off_plan = off.compile(CollectiveKind::kAllReduce, bytes);
  ASSERT_GT(on_plan->meta().pipeline_depth, 0);
  // Whole-partition mode gates the first transfer on a full partition's
  // local reduce; chunk gates admit it after one chunk — far earlier.
  EXPECT_LT(first_nic_start(on, on_plan->program()),
            0.5 * first_nic_start(off, off_plan->program()));
  // And the overlap pays: the chunk-pipelined ring strictly beats the
  // store-and-forward-whole-partitions ring.
  EXPECT_LT(on.execute(*on_plan).seconds, off.execute(*off_plan).seconds);
}

// Pipelined plans report their shape: gated chunk counts per phase and the
// pipeline depth; whole-partition plans leave the fields zero.
TEST(Multiserver, PipelineMetaReportsDepthAndChunkCounts) {
  ClusterOptions on_opts, off_opts;
  off_opts.pipeline = false;
  ClusterCommunicator on(fragmented_3_5(), on_opts);
  ClusterCommunicator off(fragmented_3_5(), off_opts);
  const auto on_plan = on.compile(CollectiveKind::kAllReduce, 64e6);
  const auto& m = on_plan->meta();
  EXPECT_GT(m.pipeline_depth, 1);  // reduce -> exchange -> broadcast
  EXPECT_GT(m.phase1_chunks, 0);
  EXPECT_GT(m.phase2_chunks, 0);
  EXPECT_GT(m.phase3_chunks, 0);
  const auto off_plan = off.compile(CollectiveKind::kAllReduce, 64e6);
  EXPECT_EQ(off_plan->meta().pipeline_depth, 0);
  EXPECT_EQ(off_plan->meta().phase1_chunks, 0);
  EXPECT_EQ(off_plan->meta().phase2_chunks, 0);
  EXPECT_EQ(off_plan->meta().phase3_chunks, 0);
  // The result carries the same counters through execute().
  const auto r = on.execute(*on_plan);
  EXPECT_EQ(r.pipeline_depth, m.pipeline_depth);
  EXPECT_EQ(r.phase1_chunks, m.phase1_chunks);
}

// The pipelining knob is part of the planning fingerprint: the two modes
// emit different gate graphs and must never share a plan store.
TEST(Multiserver, PipelineKnobSeparatesPlanningFingerprints) {
  const auto servers = quad_cluster(2);
  ClusterOptions on_opts, off_opts;
  off_opts.pipeline = false;
  const sim::Fabric fabric(servers, on_opts.fabric);
  ClusterBackend on(servers, fabric, on_opts);
  ClusterBackend off(servers, fabric, off_opts);
  EXPECT_NE(on.planning_fingerprint(), off.planning_fingerprint());
}

// Degenerate shapes — payloads near the partition count, single-byte
// gathers — never emit zero-byte ops, whose instant completion would
// silently defeat the chunk gates.
TEST(Multiserver, DegenerateSizesNeverEmitZeroByteOps) {
  ClusterCommunicator comm(fragmented_3_5(), {});
  const auto no_zero_copies = [](const sim::Program& program) {
    for (const auto& op : program.ops()) {
      if (op.kind == sim::OpKind::kDelay) continue;  // pure join points
      EXPECT_GT(op.bytes, 0.0) << op.label;
    }
  };
  no_zero_copies(comm.compile(CollectiveKind::kAllReduce, 3.0)->program());
  no_zero_copies(comm.compile(CollectiveKind::kBroadcast, 3.0, 0)->program());
  no_zero_copies(comm.compile(CollectiveKind::kReduce, 5.0, 2)->program());
  no_zero_copies(comm.compile(CollectiveKind::kGather, 1.0, 0)->program());
  no_zero_copies(comm.compile(CollectiveKind::kAllGather, 1.0)->program());
  no_zero_copies(
      comm.compile(CollectiveKind::kReduceScatter, 8.0)->program());
}

// --- per-server NIC rates ---------------------------------------------------

// A uniform per-server override is the same fabric: plans come out
// bit-for-bit identical to the unlisted default.
TEST(Multiserver, UniformNicOverrideKeepsPlansBitIdentical) {
  const auto servers = quad_cluster(3);
  ClusterOptions plain_opts, listed_opts;
  listed_opts.fabric.nic_bw_per_server = {
      listed_opts.fabric.nic_bw, listed_opts.fabric.nic_bw,
      listed_opts.fabric.nic_bw};
  ClusterCommunicator plain(servers, plain_opts);
  ClusterCommunicator listed(servers, listed_opts);
  for (const CollectiveKind kind :
       {CollectiveKind::kAllReduce, CollectiveKind::kBroadcast}) {
    const auto pp = plain.compile(kind, 32e6, 0);
    const auto lp = listed.compile(kind, 32e6, 0);
    const auto& po = pp->program().ops();
    const auto& lo = lp->program().ops();
    ASSERT_EQ(po.size(), lo.size()) << to_string(kind);
    for (std::size_t i = 0; i < po.size(); ++i) {
      EXPECT_EQ(po[i].kind, lo[i].kind) << i;
      EXPECT_EQ(po[i].route, lo[i].route) << i;
      EXPECT_EQ(po[i].bytes, lo[i].bytes) << i;
      EXPECT_EQ(po[i].stream, lo[i].stream) << i;
      EXPECT_EQ(po[i].deps, lo[i].deps) << i;
    }
  }
}

// With one slow NIC, ring chains start just past it: the slow server lands
// at the send-once ring offset, so its egress carries each partition once
// (the payload) while the double-sending offsets carry it twice.
TEST(Multiserver, RingPlacementParksSlowNicAtSendOnceOffset) {
  const auto servers = quad_cluster(4);
  ClusterOptions opts;
  opts.phase2 = Phase2Policy::kRing;
  opts.fabric.nic_bw_per_server = {5e9, 5e9, 1.25e9, 5e9};
  ClusterCommunicator comm(servers, opts);
  const double bytes = 64e6;
  const auto plan = comm.compile(CollectiveKind::kAllReduce, bytes);
  EXPECT_LE(nic_egress_bytes(comm.fabric(), plan->program(), 2),
            bytes * 1.001);
  double doubled = 0;
  for (const int s : {0, 1, 3}) {
    if (nic_egress_bytes(comm.fabric(), plan->program(), s) >
        1.9 * bytes) {
      ++doubled;
    }
  }
  EXPECT_GE(doubled, 2);  // the ring's double-sending offsets exist
  // The weighted partition shares fold the NIC imbalance in even though
  // every server's local fabric is identical.
  const auto shares = comm.partition_shares();
  EXPECT_GT(shares.front(), shares.back());
}

// Plans record their provenance: the per-(server, root) packed tree sets.
TEST(Multiserver, PlansShareTreeSetProvenance) {
  ClusterCommunicator comm(fragmented_3_5(), {});
  const auto plan = comm.compile(CollectiveKind::kAllGather, 24e6);
  EXPECT_FALSE(plan->tree_sets().empty());
  // A second kind reuses the same cached per-server sets: AllReduce's trees
  // (every partition root on every server) are the very shared_ptrs the
  // AllGather plan references.
  const auto other = comm.compile(CollectiveKind::kAllReduce, 24e6);
  for (const auto& set : other->tree_sets()) {
    EXPECT_NE(std::find(plan->tree_sets().begin(), plan->tree_sets().end(),
                        set),
              plan->tree_sets().end());
  }
}

}  // namespace
}  // namespace blink
