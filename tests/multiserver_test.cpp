#include <gtest/gtest.h>

#include "blink/blink/multiserver.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink {
namespace {

std::vector<topo::Topology> fragmented_3_5() {
  const auto machine = topo::make_dgx1v();
  return {topo::induced_topology(machine, std::vector<int>{0, 1, 2}),
          topo::induced_topology(machine, std::vector<int>{3, 4, 5, 6, 7})};
}

TEST(Multiserver, RequiresTwoServers) {
  EXPECT_THROW(ClusterCommunicator({topo::make_dgx1v()}, {}),
               std::invalid_argument);
}

TEST(Multiserver, PartitionsFollowSmallestServer) {
  ClusterCommunicator comm(fragmented_3_5(), {});
  EXPECT_EQ(comm.num_partitions(), 3);
  EXPECT_EQ(comm.num_gpus(), 8);
}

TEST(Multiserver, AllReduceBoundByNic) {
  ClusterOptions opts;
  opts.fabric.nic_bw = 5e9;  // 40 Gbps
  ClusterCommunicator comm(fragmented_3_5(), opts);
  const auto r = comm.all_reduce(100e6);
  // Every byte crosses the NIC once per direction per partition exchange:
  // throughput cannot exceed NIC bandwidth and should be within an order.
  EXPECT_LT(r.algorithm_bw, 5e9);
  EXPECT_GT(r.algorithm_bw, 0.2e9);
}

TEST(Multiserver, FasterNicHelpsUntilNvlinkBound) {
  std::vector<double> rates;
  for (const double nic : {5e9, 12.5e9, 50e9}) {  // 40/100/400 Gbps
    ClusterOptions opts;
    opts.fabric.nic_bw = nic;
    ClusterCommunicator comm(fragmented_3_5(), opts);
    rates.push_back(comm.all_reduce(100e6).algorithm_bw);
  }
  EXPECT_GT(rates[1], rates[0] * 1.5);  // 100 Gbps much better than 40
  EXPECT_GT(rates[2], rates[1]);        // 400 still improves
}

TEST(Multiserver, EqualServersUseAllRoots) {
  const auto machine = topo::make_dgx1v();
  const auto half = topo::induced_topology(machine,
                                           std::vector<int>{0, 1, 2, 3});
  ClusterCommunicator comm({half, half}, {});
  EXPECT_EQ(comm.num_partitions(), 4);
  const auto r = comm.all_reduce(64e6);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.num_trees, 0);
}

TEST(Multiserver, SingleGpuServerHandled) {
  const auto machine = topo::make_dgx1v();
  ClusterCommunicator comm(
      {topo::induced_topology(machine, std::vector<int>{0}),
       topo::induced_topology(machine, std::vector<int>{4, 5, 6, 7})},
      {});
  EXPECT_EQ(comm.num_partitions(), 1);
  const auto r = comm.all_reduce(32e6);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(Multiserver, ThreeServers) {
  const auto machine = topo::make_dgx1v();
  const auto quad = topo::induced_topology(machine,
                                           std::vector<int>{4, 5, 6, 7});
  ClusterCommunicator comm({quad, quad, quad}, {});
  const auto r = comm.all_reduce(64e6);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_LT(r.algorithm_bw, 5e9);  // NIC fan-out bound
}

}  // namespace
}  // namespace blink
