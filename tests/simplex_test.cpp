#include <gtest/gtest.h>

#include "blink/common/rng.h"
#include "blink/solver/simplex.h"

namespace blink::solver {
namespace {

TEST(Simplex, SimpleTwoVariable) {
  // max 3x + 2y s.t. x + y <= 4, x <= 2  ->  x=2, y=2, obj=10.
  LpProblem lp;
  lp.c = {3.0, 2.0};
  lp.a = {{1.0, 1.0}, {1.0, 0.0}};
  lp.b = {4.0, 2.0};
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 10.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 2.0, 1e-9);
}

TEST(Simplex, UnboundedDetected) {
  LpProblem lp;  // max x with no binding constraint
  lp.c = {1.0, 0.0};
  lp.a = {{0.0, 1.0}};
  lp.b = {1.0};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, ZeroObjective) {
  LpProblem lp;
  lp.c = {0.0};
  lp.a = {{1.0}};
  lp.b = {5.0};
  const auto sol = solve_lp(lp);
  EXPECT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-12);
}

TEST(Simplex, DegenerateDoesNotCycle) {
  // Classic Beale cycling example (resolved by Bland's rule).
  LpProblem lp;
  lp.c = {0.75, -150.0, 0.02, -6.0};
  lp.a = {{0.25, -60.0, -0.04, 9.0},
          {0.5, -90.0, -0.02, 3.0},
          {0.0, 0.0, 1.0, 0.0}};
  lp.b = {0.0, 0.0, 1.0};
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.05, 1e-9);
}

TEST(Simplex, SolutionIsFeasible) {
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.next_int(1, 6));
    const std::size_t m = static_cast<std::size_t>(rng.next_int(1, 6));
    LpProblem lp;
    lp.c.resize(n);
    for (auto& c : lp.c) c = rng.next_double() * 10.0;
    lp.a.assign(m, std::vector<double>(n, 0.0));
    lp.b.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        lp.a[i][j] = rng.next_double();  // non-negative => bounded
      }
      lp.b[i] = rng.next_double() * 5.0 + 0.5;
    }
    const auto sol = solve_lp(lp);
    ASSERT_EQ(sol.status, LpStatus::kOptimal) << trial;
    for (std::size_t i = 0; i < m; ++i) {
      double lhs = 0.0;
      for (std::size_t j = 0; j < n; ++j) lhs += lp.a[i][j] * sol.x[j];
      EXPECT_LE(lhs, lp.b[i] + 1e-6) << trial;
    }
    for (const double x : sol.x) EXPECT_GE(x, -1e-9);
  }
}

TEST(Simplex, PackingShapedProblem) {
  // Three "trees" over two unit-capacity "edges"; trees 0 and 1 share edge 0.
  LpProblem lp;
  lp.c = {1.0, 1.0, 1.0};
  lp.a = {{1.0, 1.0, 0.0}, {0.0, 1.0, 1.0}};
  lp.b = {1.0, 1.0};
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);  // x0 = x2 = 1
}

TEST(Simplex, WellFormedRejectsNegativeRhs) {
  LpProblem lp;
  lp.c = {1.0};
  lp.a = {{1.0}};
  lp.b = {-1.0};
  EXPECT_FALSE(lp.well_formed());
}

}  // namespace
}  // namespace blink::solver
