#include <gtest/gtest.h>

#include <cmath>

#include "blink/graph/binary_trees.h"

namespace blink::graph {
namespace {

class BinaryTreeSizes : public ::testing::TestWithParam<int> {};

TEST_P(BinaryTreeSizes, BalancedTreeIsValidAndShallow) {
  const int n = GetParam();
  const BinaryTree t = balanced_binary_tree(n);
  EXPECT_TRUE(t.valid());
  EXPECT_LE(t.depth(), static_cast<int>(std::ceil(std::log2(n + 1))));
}

TEST_P(BinaryTreeSizes, DoubleTreesAreBothValid) {
  const int n = GetParam();
  const auto [t1, t2] = double_binary_trees(n);
  EXPECT_TRUE(t1.valid());
  EXPECT_TRUE(t2.valid());
  EXPECT_EQ(t1.depth(), t2.depth());
}

TEST_P(BinaryTreeSizes, InteriorOfOneIsLeafOfOther) {
  // For even rank counts, NCCL's construction makes (almost) every interior
  // node of tree 1 a leaf of tree 2, balancing send load. With the rotation
  // construction the overlap of interior sets is small.
  const int n = GetParam();
  if (n % 2 != 0 || n < 4) return;
  const auto [t1, t2] = double_binary_trees(n);
  const auto c1 = t1.children();
  const auto c2 = t2.children();
  int both_interior = 0;
  for (int v = 0; v < n; ++v) {
    const bool i1 = !c1[static_cast<std::size_t>(v)].empty();
    const bool i2 = !c2[static_cast<std::size_t>(v)].empty();
    if (i1 && i2) ++both_interior;
  }
  EXPECT_LE(both_interior, n / 4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BinaryTreeSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 15, 16,
                                           31, 32, 64));

TEST(BinaryTree, SixteenRankDepthIsFour) {
  // DGX-2: 16 ranks -> depth 4 (vs Blink's one-hop depth 1), which is the
  // latency gap Figure 20 shows.
  EXPECT_EQ(balanced_binary_tree(16).depth(), 4);
}

TEST(BinaryTree, TwoNodes) {
  const auto [t1, t2] = double_binary_trees(2);
  EXPECT_TRUE(t1.valid());
  EXPECT_TRUE(t2.valid());
  EXPECT_NE(t1.root, t2.root);
}

}  // namespace
}  // namespace blink::graph
