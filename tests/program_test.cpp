#include <gtest/gtest.h>

#include "blink/sim/program.h"

namespace blink::sim {
namespace {

Op copy_op(int stream, double bytes = 1.0) {
  Op op;
  op.kind = OpKind::kCopy;
  op.route = {0};
  op.bytes = bytes;
  op.stream = stream;
  return op;
}

TEST(Program, AddAssignsSequentialIds) {
  Program p;
  const int s = p.new_stream();
  EXPECT_EQ(p.add(copy_op(s)), 0);
  EXPECT_EQ(p.add(copy_op(s)), 1);
  EXPECT_EQ(p.num_streams(), 1);
  EXPECT_EQ(p.ops().size(), 2u);
}

TEST(Program, ValidateAcceptsWellFormed) {
  Program p;
  const int s0 = p.new_stream();
  const int s1 = p.new_stream();
  const int a = p.add(copy_op(s0));
  Op b = copy_op(s1);
  b.deps = {a};
  p.add(b);
  std::string err;
  EXPECT_TRUE(p.validate(&err)) << err;
}

TEST(Program, ValidateRejectsForwardDependency) {
  Program p;
  const int s = p.new_stream();
  Op op = copy_op(s);
  op.deps = {5};  // references an op that does not exist yet
  // Construct via the raw vector path: add() asserts in debug, so build a
  // program that slips past add() and check validate() in release semantics.
  Program q;
  const int sq = q.new_stream();
  q.add(copy_op(sq));
  // Manually malformed program is not constructible through the API; check
  // the other validate branches instead.
  Op delay;
  delay.kind = OpKind::kDelay;
  delay.route = {1};  // delay ops must not use channels
  delay.stream = sq;
  Program r;
  const int sr = r.new_stream();
  delay.stream = sr;
  r.add(delay);
  std::string err;
  EXPECT_FALSE(r.validate(&err));
  EXPECT_FALSE(err.empty());
}

TEST(Program, ValidateRejectsTransferWithoutRoute) {
  Program p;
  const int s = p.new_stream();
  Op op;
  op.kind = OpKind::kCopy;
  op.bytes = 10.0;
  op.stream = s;
  p.add(op);
  EXPECT_FALSE(p.validate());
}

TEST(Program, ValidateRejectsNegativeBytes) {
  Program p;
  const int s = p.new_stream();
  Op op = copy_op(s);
  op.bytes = -1.0;
  p.add(op);
  EXPECT_FALSE(p.validate());
}

TEST(Program, TotalCopyBytesIgnoresKernelsAndDelays) {
  Program p;
  const int s = p.new_stream();
  p.add(copy_op(s, 100.0));
  Op k;
  k.kind = OpKind::kReduce;
  k.route = {0};
  k.bytes = 999.0;
  k.stream = s;
  p.add(k);
  Op d;
  d.kind = OpKind::kDelay;
  d.latency = 1.0;
  d.stream = s;
  p.add(d);
  EXPECT_DOUBLE_EQ(p.total_copy_bytes(), 100.0);
}

TEST(Program, EmptyProgramIsValid) {
  Program p;
  EXPECT_TRUE(p.empty());
  EXPECT_TRUE(p.validate());
}

TEST(Program, AppendRemapsStreamsAndDeps) {
  Program a;
  const int sa = a.new_stream();
  const int a0 = a.add(copy_op(sa));
  Op a1 = copy_op(sa);
  a1.deps = {a0};
  a.add(a1);

  Program b;
  const int sb = b.new_stream();
  const int b0 = b.add(copy_op(sb, 7.0));
  Op b1 = copy_op(b.new_stream(), 8.0);
  b1.deps = {b0};
  b.add(b1);

  const int base = a.append(b);
  EXPECT_EQ(base, 2);
  EXPECT_EQ(a.ops().size(), 4u);
  EXPECT_EQ(a.num_streams(), 3);  // 1 from |a| + 2 remapped from |b|
  // b's ops moved past a's: streams and deps offset, payload untouched.
  EXPECT_EQ(a.op(2).stream, 1);
  EXPECT_EQ(a.op(3).stream, 2);
  ASSERT_EQ(a.op(3).deps.size(), 1u);
  EXPECT_EQ(a.op(3).deps[0], base);
  EXPECT_DOUBLE_EQ(a.op(3).bytes, 8.0);
  EXPECT_TRUE(a.validate());
}

TEST(Program, AppendEmptyIsNoOp) {
  Program a;
  a.add(copy_op(a.new_stream()));
  const Program empty;
  EXPECT_EQ(a.append(empty), 1);
  EXPECT_EQ(a.ops().size(), 1u);
  EXPECT_TRUE(a.validate());
}

}  // namespace
}  // namespace blink::sim
