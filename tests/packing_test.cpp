#include <gtest/gtest.h>

#include "blink/packing/packing.h"
#include "blink/topology/builders.h"
#include "blink/topology/binning.h"
#include "blink/topology/discovery.h"

namespace blink::packing {
namespace {

graph::DiGraph dgx1v_graph() {
  return graph::nvlink_digraph(topo::make_dgx1v());
}

TEST(Mwu, AchievesNearOptimalRateOnDgx1v) {
  const auto g = dgx1v_graph();
  const double optimal = optimal_rate(g, 0);
  const auto result = mwu_pack(g, 0);
  EXPECT_TRUE(respects_capacities(g, result.trees));
  EXPECT_GE(result.total_rate, 0.90 * optimal);
  EXPECT_LE(result.total_rate, optimal * (1.0 + 1e-6));
}

TEST(Mwu, ReturnsManyTreesBeforeMinimization) {
  // §3.2: the raw MWU packing on the 8-GPU DGX-1V returns on the order of a
  // hundred distinct trees (the paper reports 181), motivating the ILP.
  const auto g = dgx1v_graph();
  const auto result = mwu_pack(g, 0);
  EXPECT_GE(result.trees.size(), 20u);
  EXPECT_GE(result.iterations, static_cast<int>(result.trees.size()));
}

TEST(Mwu, ChainHasSingleTree) {
  const auto g = graph::nvlink_digraph(topo::make_chain(4));
  const auto result = mwu_pack(g, 0);
  ASSERT_EQ(result.trees.size(), 1u);
  EXPECT_NEAR(result.total_rate, optimal_rate(g, 0), 1e3);
}

TEST(Mwu, EmptyOnDisconnectedGraph) {
  const auto machine = topo::make_dgx1v();
  const std::vector<int> alloc{1, 4, 6};
  const auto g =
      graph::nvlink_digraph(topo::induced_topology(machine, alloc));
  const auto result = mwu_pack(g, 0);
  EXPECT_TRUE(result.trees.empty());
  EXPECT_DOUBLE_EQ(result.total_rate, 0.0);
}

TEST(Mwu, EveryTreeSpansAndRootsCorrectly) {
  const auto g = dgx1v_graph();
  for (const int root : {0, 3, 7}) {
    const auto result = mwu_pack(g, root);
    for (const auto& wt : result.trees) {
      EXPECT_EQ(wt.tree.root, root);
      EXPECT_TRUE(wt.tree.spans(g));
      EXPECT_GT(wt.weight, 0.0);
    }
  }
}

TEST(Mwu, EpsilonTradesTreeCountForAccuracy) {
  const auto g = dgx1v_graph();
  MwuOptions coarse;
  coarse.epsilon = 0.3;
  MwuOptions fine;
  fine.epsilon = 0.03;
  const auto coarse_result = mwu_pack(g, 0, coarse);
  const auto fine_result = mwu_pack(g, 0, fine);
  EXPECT_LT(coarse_result.iterations, fine_result.iterations);
}

TEST(Minimize, Dgx1vReducesToSixUnitTrees) {
  // §3.2.1: "reduces the number of trees from 181 to 6 for the 8-GPU case in
  // DGX-1V topology with each tree having a rate of 1.0".
  const auto g = dgx1v_graph();
  const auto candidates = mwu_pack(g, 0);
  const auto result = minimize_trees(g, 0, candidates.trees);
  EXPECT_EQ(result.trees.size(), 6u);
  EXPECT_EQ(result.stage, MinimizeStage::kIlp);
  const double lane = topo::kNvlinkGen2Bw;
  for (const auto& wt : result.trees) {
    EXPECT_NEAR(wt.weight, lane, 1e3);  // rate 1.0 in lane units
  }
  EXPECT_GE(result.total_rate, 0.95 * result.optimal);
  EXPECT_TRUE(respects_capacities(g, result.trees));
}

TEST(Minimize, NeverWorseThanThresholdWhenIlpSucceeds) {
  const auto machine = topo::make_dgx1v();
  for (const auto& alloc : {std::vector<int>{5, 6, 7},
                            std::vector<int>{4, 5, 6, 7},
                            std::vector<int>{1, 2, 4, 5, 6, 7}}) {
    const auto g =
        graph::nvlink_digraph(topo::induced_topology(machine, alloc));
    const auto candidates = mwu_pack(g, 0);
    const auto result = minimize_trees(g, 0, candidates.trees);
    EXPECT_TRUE(respects_capacities(g, result.trees));
    EXPECT_GE(result.total_rate, (1.0 - 0.05) * candidates.total_rate - 1e3)
        << "alloc size " << alloc.size();
    EXPECT_LE(result.trees.size(), candidates.trees.size());
  }
}

TEST(Minimize, EmptyCandidates) {
  const auto g = dgx1v_graph();
  const auto result = minimize_trees(g, 0, {});
  EXPECT_TRUE(result.trees.empty());
}

TEST(TightenFactor, ScalesToCapacityBoundary) {
  graph::DiGraph g(2);
  const int e = g.add_edge(0, 1, 10.0);
  graph::Arborescence arb{0, {e}};
  std::vector<WeightedTree> trees{{arb, 2.5}};
  EXPECT_DOUBLE_EQ(tighten_factor(g, trees), 4.0);
}

TEST(RespectsCapacities, DetectsViolation) {
  graph::DiGraph g(2);
  const int e = g.add_edge(0, 1, 10.0);
  graph::Arborescence arb{0, {e}};
  std::vector<WeightedTree> ok{{arb, 10.0}};
  std::vector<WeightedTree> bad{{arb, 10.1}};
  EXPECT_TRUE(respects_capacities(g, ok));
  EXPECT_FALSE(respects_capacities(g, bad, 1e-6));
}

// Property sweep: for every unique connected DGX-1V allocation, the final
// packing respects capacities and lands within 10% of Edmonds' optimum.
class PackingSweep : public ::testing::TestWithParam<int> {};

TEST_P(PackingSweep, NearOptimalOnAllUniqueConfigs) {
  const auto machine = topo::make_dgx1v();
  const auto bins =
      topo::unique_configs(machine, GetParam(), /*connected_only=*/true);
  for (const auto& bin : bins) {
    const auto t = topo::induced_topology(machine, bin.representative);
    const auto g = graph::nvlink_digraph(t);
    const double optimal = optimal_rate(g, 0);
    const auto candidates = mwu_pack(g, 0);
    const auto result = minimize_trees(g, 0, candidates.trees);
    EXPECT_TRUE(respects_capacities(g, result.trees));
    EXPECT_GE(result.total_rate, 0.90 * optimal)
        << "config " << ::testing::PrintToString(bin.representative);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PackingSweep, ::testing::Values(3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace blink::packing
