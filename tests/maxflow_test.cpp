#include <gtest/gtest.h>

#include "blink/graph/maxflow.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink::graph {
namespace {

TEST(MaxFlow, SingleEdge) {
  DiGraph g(2);
  g.add_edge(0, 1, 5e9);
  EXPECT_DOUBLE_EQ(max_flow(g, 0, 1), 5e9);
  EXPECT_DOUBLE_EQ(max_flow(g, 1, 0), 0.0);
}

TEST(MaxFlow, ParallelPaths) {
  DiGraph g(3);
  g.add_edge(0, 1, 3e9);
  g.add_edge(1, 2, 3e9);
  g.add_edge(0, 2, 4e9);
  EXPECT_DOUBLE_EQ(max_flow(g, 0, 2), 7e9);
}

TEST(MaxFlow, BottleneckInMiddle) {
  DiGraph g(4);
  g.add_edge(0, 1, 10e9);
  g.add_edge(1, 2, 2e9);
  g.add_edge(2, 3, 10e9);
  EXPECT_DOUBLE_EQ(max_flow(g, 0, 3), 2e9);
}

TEST(MaxFlow, ClassicDiamondWithCross) {
  DiGraph g(4);
  g.add_edge(0, 1, 10.0);
  g.add_edge(0, 2, 10.0);
  g.add_edge(1, 3, 10.0);
  g.add_edge(2, 3, 10.0);
  g.add_edge(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(max_flow(g, 0, 3), 20.0);
}

TEST(BroadcastRate, ChainLimitedBySingleLink) {
  const auto topo = topo::make_chain(4);
  const DiGraph g = nvlink_digraph(topo);
  EXPECT_DOUBLE_EQ(broadcast_rate_upper_bound(g, 0), topo.nvlink_lane_bw);
}

// Edmonds: on the full DGX-1V each GPU has 6 incoming lanes, so the optimal
// broadcast rate from any root is exactly 6 lanes worth.
TEST(BroadcastRate, FullDgx1vIsSixLanes) {
  const auto topo = topo::make_dgx1v();
  const DiGraph g = nvlink_digraph(topo);
  for (int root = 0; root < 8; ++root) {
    EXPECT_NEAR(broadcast_rate_upper_bound(g, root),
                6 * topo.nvlink_lane_bw, 1.0)
        << "root " << root;
  }
}

TEST(BroadcastRate, FullDgx1pIsFourLanes) {
  const auto topo = topo::make_dgx1p();
  const DiGraph g = nvlink_digraph(topo);
  EXPECT_NEAR(broadcast_rate_upper_bound(g, 0), 4 * topo.nvlink_lane_bw, 1.0);
}

// Figure 2a: GPUs {0,1,3} on a DGX-1P -> rate = 2 lanes from root 0.
TEST(BroadcastRate, Figure2aTriangle) {
  const auto machine = topo::make_dgx1p();
  const std::vector<int> alloc{0, 1, 3};
  const auto topo = topo::induced_topology(machine, alloc);
  const DiGraph g = nvlink_digraph(topo);
  EXPECT_NEAR(broadcast_rate_upper_bound(g, 0), 2 * topo.nvlink_lane_bw, 1.0);
}

TEST(BroadcastRate, DisconnectedIsZero) {
  const auto machine = topo::make_dgx1v();
  const std::vector<int> alloc{1, 4, 6};
  const auto topo = topo::induced_topology(machine, alloc);
  const DiGraph g = nvlink_digraph(topo);
  EXPECT_DOUBLE_EQ(broadcast_rate_upper_bound(g, 0), 0.0);
}

}  // namespace
}  // namespace blink::graph
