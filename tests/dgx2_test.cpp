#include <gtest/gtest.h>

#include "blink/blink/communicator.h"
#include "blink/blink/dgx2.h"
#include "blink/topology/builders.h"

namespace blink {
namespace {

TEST(Dgx2Trees, OneHopTreesShape) {
  const sim::Fabric fabric(topo::make_dgx2(), sim::FabricParams{});
  const auto trees = dgx2_one_hop_trees(fabric, 0);
  ASSERT_EQ(trees.size(), 16u);
  for (int r = 0; r < 16; ++r) {
    const auto& t = trees[static_cast<std::size_t>(r)];
    EXPECT_EQ(t.root, r);
    EXPECT_EQ(t.hops.size(), 15u);
    EXPECT_EQ(t.depth(), 1);  // §3.5: one-hop trees
  }
}

TEST(Dgx2Trees, BroadcastRelayTreesShape) {
  const sim::Fabric fabric(topo::make_dgx2(), sim::FabricParams{});
  const auto trees = dgx2_broadcast_trees(fabric, 0, 5);
  ASSERT_EQ(trees.size(), 15u);
  for (const auto& t : trees) {
    EXPECT_EQ(t.root, 5);
    EXPECT_EQ(t.depth(), 2);
    EXPECT_EQ(t.hops.size(), 15u);
  }
}

TEST(Dgx2, AllReduceThroughputReasonable) {
  Communicator comm(topo::make_dgx2());
  const auto r = comm.all_reduce(1e9);
  // Ingress-bound upper limit is 138 GB/s * 16/15; reductions and overheads
  // keep the realized value below but in the tens of GB/s.
  EXPECT_GT(r.algorithm_bw, 30e9);
  EXPECT_LT(r.algorithm_bw, 150e9);
  EXPECT_EQ(r.num_trees, 16);
}

TEST(Dgx2, SmallAllReduceLatencyIsMicroseconds) {
  Communicator comm(topo::make_dgx2());
  const auto r = comm.all_reduce(1e3);
  // Two hops plus one kernel: tens of microseconds, not milliseconds
  // (Figure 20's left edge).
  EXPECT_LT(r.seconds, 200e-6);
  EXPECT_GT(r.seconds, 1e-6);
}

TEST(Dgx2, BroadcastSaturatesRootEgress) {
  Communicator comm(topo::make_dgx2());
  const auto r = comm.broadcast(1e9, 3);
  EXPECT_GT(r.algorithm_bw, 0.6 * topo::kNvswitchGpuBw);
  EXPECT_LT(r.algorithm_bw, 1.01 * topo::kNvswitchGpuBw);
}

TEST(Dgx2, ThroughputMonotonicInSize) {
  Communicator comm(topo::make_dgx2());
  double prev = 0.0;
  for (const double bytes : {1e4, 1e6, 1e8, 1e9}) {
    const double bw = comm.all_reduce(bytes).algorithm_bw;
    EXPECT_GT(bw, prev * 0.9) << bytes;
    prev = bw;
  }
}

}  // namespace
}  // namespace blink
