#include <gtest/gtest.h>

#include "blink/blink/treegen.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink {
namespace {

TEST(TreeGen, FullDgx1v) {
  const auto set = generate_trees(topo::make_dgx1v(), 0);
  EXPECT_EQ(set.trees.size(), 6u);
  EXPECT_GT(set.mwu_tree_count, 6);
  EXPECT_NEAR(set.rate, 6 * topo::kNvlinkGen2Bw, 1e6);
  EXPECT_NEAR(set.optimal_rate, set.rate, 1e6);
  EXPECT_EQ(set.link, topo::LinkType::kNVLink);
}

TEST(TreeGen, FullDgx1p) {
  const auto set = generate_trees(topo::make_dgx1p(), 3);
  EXPECT_FALSE(set.empty());
  EXPECT_NEAR(set.rate, 4 * topo::kNvlinkGen1Bw, 0.05 * set.optimal_rate);
}

TEST(TreeGen, MinimizeOffKeepsMwuTrees) {
  TreeGenOptions opts;
  opts.minimize = false;
  const auto set = generate_trees(topo::make_dgx1v(), 0, opts);
  EXPECT_EQ(static_cast<int>(set.trees.size()), set.mwu_tree_count);
  EXPECT_GT(set.trees.size(), 6u);
}

TEST(TreeGen, DisconnectedNvlinkGivesEmptySet) {
  const auto machine = topo::make_dgx1v();
  const std::vector<int> alloc{1, 4, 6};
  const auto t = topo::induced_topology(machine, alloc);
  const auto set = generate_trees(t, 0);
  EXPECT_TRUE(set.empty());
}

TEST(TreeGen, PcieTreesExistWhenNvlinkDoesNot) {
  const auto machine = topo::make_dgx1v();
  const std::vector<int> alloc{1, 4, 6};
  const auto t = topo::induced_topology(machine, alloc);
  TreeGenOptions opts;
  opts.link = topo::LinkType::kPCIe;
  const auto set = generate_trees(t, 0, opts);
  EXPECT_FALSE(set.empty());
  EXPECT_EQ(set.link, topo::LinkType::kPCIe);
  EXPECT_GT(set.rate, 0.0);
  // Cross-PLX logical edges are staged-capped; the packed rate stays within
  // a small multiple of one PCIe pipe.
  EXPECT_LE(set.rate, 2.0 * machine.pcie.gpu_bw);
}

TEST(TreeGen, SingleGpu) {
  const auto set = generate_trees(topo::make_chain(2), 0, {});
  EXPECT_FALSE(set.empty());
  EXPECT_EQ(set.trees.size(), 1u);
}

TEST(TreeGen, TreesRootedAtRequestedRoot) {
  const auto machine = topo::make_dgx1v();
  const std::vector<int> alloc{2, 3, 6, 7};
  const auto t = topo::induced_topology(machine, alloc);
  for (int root = 0; root < t.num_gpus; ++root) {
    const auto set = generate_trees(t, root);
    ASSERT_FALSE(set.empty());
    for (const auto& wt : set.trees) {
      EXPECT_EQ(wt.tree.root, root);
      EXPECT_TRUE(wt.tree.spans(set.graph));
    }
  }
}

}  // namespace
}  // namespace blink
