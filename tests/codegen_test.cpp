#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <vector>

#include "blink/blink/codegen.h"
#include "blink/sim/executor.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink {
namespace {

struct Rig {
  topo::Topology topo;
  sim::Fabric fabric;
  TreeSet set;

  explicit Rig(topo::Topology t, int root = 0)
      : topo(std::move(t)), fabric(topo, sim::FabricParams{}),
        set(generate_trees(topo, root)) {}
};

TEST(RouteTree, HopsAreBfsOrderedWithRoutes) {
  Rig s(topo::make_dgx1v());
  const auto routed = route_trees(s.fabric, 0, s.set);
  ASSERT_EQ(routed.size(), s.set.trees.size());
  for (const auto& tree : routed) {
    EXPECT_EQ(tree.root, 0);
    EXPECT_EQ(tree.num_gpus(), 8);
    int last_depth = 0;
    std::vector<bool> placed(8, false);
    placed[static_cast<std::size_t>(tree.root)] = true;
    for (const auto& hop : tree.hops) {
      EXPECT_GE(hop.depth, last_depth);  // BFS order
      last_depth = hop.depth;
      EXPECT_TRUE(placed[static_cast<std::size_t>(hop.parent)])
          << "parent must be placed before child";
      placed[static_cast<std::size_t>(hop.child)] = true;
      EXPECT_FALSE(hop.down_route.empty());
      EXPECT_FALSE(hop.up_route.empty());
    }
  }
}

TEST(ProgramBuilder, BroadcastProgramValidates) {
  Rig s(topo::make_dgx1v());
  ProgramBuilder builder(s.fabric, CodeGenOptions{});
  builder.broadcast(route_trees(s.fabric, 0, s.set), 100e6);
  const auto program = builder.take();
  EXPECT_TRUE(program.validate());
  EXPECT_GT(program.ops().size(), 0u);
  EXPECT_NEAR(program.total_copy_bytes(), 7 * 100e6, 1e6);  // 7 receivers
}

TEST(ProgramBuilder, BroadcastThroughputNearPackedRate) {
  Rig s(topo::make_dgx1v());
  ProgramBuilder builder(s.fabric, CodeGenOptions{});
  builder.broadcast(route_trees(s.fabric, 0, s.set), 500e6);
  const auto result = sim::execute(s.fabric, builder.take());
  const double throughput = result.throughput(500e6);
  // Within 25% of the packed rate (chunking + launch overheads).
  EXPECT_GT(throughput, 0.75 * s.set.rate);
  EXPECT_LT(throughput, 1.01 * s.set.rate);
}

TEST(ProgramBuilder, AllReduceRoughlyHalfBroadcastThroughput) {
  // §5.2.2: AllReduce needs both directions, so ~half the throughput.
  Rig s(topo::make_dgx1v());
  const auto trees = route_trees(s.fabric, 0, s.set);
  ProgramBuilder b1(s.fabric, CodeGenOptions{});
  b1.broadcast(trees, 500e6);
  const double t_bcast = sim::execute(s.fabric, b1.take()).makespan;
  ProgramBuilder b2(s.fabric, CodeGenOptions{});
  b2.all_reduce(trees, 500e6);
  const double t_ar = sim::execute(s.fabric, b2.take()).makespan;
  EXPECT_GT(t_ar, 1.5 * t_bcast);
  EXPECT_LT(t_ar, 3.0 * t_bcast);
}

TEST(ProgramBuilder, ReduceUsesKernels) {
  Rig s(topo::make_dgx1v());
  ProgramBuilder builder(s.fabric, CodeGenOptions{});
  builder.reduce(route_trees(s.fabric, 0, s.set), 64e6);
  const auto program = builder.take();
  int kernels = 0;
  for (const auto& op : program.ops()) {
    if (op.kind == sim::OpKind::kReduce) ++kernels;
  }
  EXPECT_GT(kernels, 0);
  EXPECT_NO_THROW(sim::execute(s.fabric, program));
}

TEST(ProgramBuilder, GatherAndAllGatherRun) {
  const auto machine = topo::make_dgx1v();
  Rig s(topo::induced_topology(machine, std::vector<int>{4, 5, 6, 7}));
  const auto trees = route_trees(s.fabric, 0, s.set);
  ProgramBuilder b1(s.fabric, CodeGenOptions{});
  b1.gather(trees, 64e6);
  const auto gather_run = sim::execute(s.fabric, b1.take());
  EXPECT_GT(gather_run.makespan, 0.0);
  ProgramBuilder b2(s.fabric, CodeGenOptions{});
  b2.all_gather(trees, 64e6);
  const auto ag_run = sim::execute(s.fabric, b2.take());
  // AllGather moves strictly more data than Gather.
  EXPECT_GT(ag_run.makespan, gather_run.makespan);
}

TEST(ProgramBuilder, MoreChunksImproveDeepTreeLatency) {
  Rig s(topo::make_chain(6));
  for (const std::uint64_t coarse : {256ull << 20}) {
    CodeGenOptions one_chunk;
    one_chunk.chunk_bytes = coarse;
    ProgramBuilder b1(s.fabric, one_chunk);
    b1.broadcast(route_trees(s.fabric, 0, s.set), 256e6);
    const double t1 = sim::execute(s.fabric, b1.take()).makespan;

    CodeGenOptions chunked;
    chunked.chunk_bytes = 8 << 20;
    ProgramBuilder b2(s.fabric, chunked);
    b2.broadcast(route_trees(s.fabric, 0, s.set), 256e6);
    const double t2 = sim::execute(s.fabric, b2.take()).makespan;
    EXPECT_LT(t2, 0.5 * t1);  // Figure 11: pipelining hides hops
  }
}

TEST(ProgramBuilder, StreamReuseSharesStreamsAcrossTrees) {
  Rig s(topo::make_dgx1v());
  const auto trees = route_trees(s.fabric, 0, s.set);
  CodeGenOptions with_reuse;
  with_reuse.stream_reuse = true;
  ProgramBuilder b1(s.fabric, with_reuse);
  b1.broadcast(trees, 100e6);
  const int streams_reuse = b1.take().num_streams();

  CodeGenOptions no_reuse;
  no_reuse.stream_reuse = false;
  ProgramBuilder b2(s.fabric, no_reuse);
  b2.broadcast(trees, 100e6);
  const int streams_private = b2.take().num_streams();
  EXPECT_LE(streams_reuse, streams_private);
}

TEST(ProgramBuilder, ChunkCountClamped) {
  Rig s(topo::make_chain(3));
  CodeGenOptions opts;
  opts.chunk_bytes = 1024;
  opts.max_chunks_per_tree = 64;
  ProgramBuilder builder(s.fabric, opts);
  EXPECT_EQ(builder.chunks_for(1e9), 64);
  EXPECT_EQ(builder.chunks_for(512.0), 1);
  EXPECT_EQ(builder.chunks_for(4096.0), 4);
}

TEST(ProgramBuilder, CopyChunksHonorsGates) {
  Rig s(topo::make_chain(3));
  ProgramBuilder builder(s.fabric, CodeGenOptions{});
  const int gate = builder.delay(0.5, "gate");
  const auto route = s.fabric.nvlink_route(0, 0, 1);
  const std::vector<int> gates{gate};
  builder.copy_chunks(route, 23e9, 1, 0, gates);  // 1 s at 23 GB/s
  const auto run = sim::execute(s.fabric, builder.take());
  EXPECT_GT(run.makespan, 1.49);
}

TEST(ProgramBuilder, CopyChunksRejectsDegeneratePayloads) {
  Rig s(topo::make_chain(3));
  ProgramBuilder builder(s.fabric, CodeGenOptions{});
  const auto route = s.fabric.nvlink_route(0, 0, 1);
  // A zero-byte op completes instantly in the executor and silently defeats
  // every gate built on it; both overloads refuse to emit one.
  EXPECT_THROW(builder.copy_chunks(route, 0.0, 1, 0), std::invalid_argument);
  EXPECT_THROW(builder.copy_chunks(route, -8.0, 1, 0), std::invalid_argument);
  const std::vector<std::vector<int>> deps(1);
  EXPECT_THROW(builder.copy_chunks(route, 0.0, 1, 0,
                                   std::span<const std::vector<int>>(deps)),
               std::invalid_argument);
  // Sub-chunk payloads collapse to one chunk, never to zero-byte ops.
  const auto ops = builder.copy_chunks(route, 0.5, builder.chunks_for(0.5), 0);
  ASSERT_EQ(ops.size(), 1u);
  const auto program = builder.take();
  for (const auto& op : program.ops()) EXPECT_GT(op.bytes, 0.0);
}

TEST(ProgramBuilder, CopyChunksHonorsPerChunkDependencyLists) {
  Rig s(topo::make_chain(3));
  ProgramBuilder builder(s.fabric, CodeGenOptions{});
  const auto route = s.fabric.nvlink_route(0, 0, 1);
  const int early = builder.delay(0.25, "early");
  const int late = builder.delay(1.0, "late");
  // Chunk 0 may start immediately; chunk 1 waits on both gates. The copies
  // share one in-order stream, so chunk 1's deps cover chunk 0 as well.
  const std::vector<std::vector<int>> deps{{}, {early, late}};
  const auto ops = builder.copy_chunks(
      route, 46e9, 2, 0, std::span<const std::vector<int>>(deps));
  ASSERT_EQ(ops.size(), 2u);
  const auto run = sim::execute(s.fabric, builder.take());
  // 23 GB/s channel: each 23 GB chunk takes ~1 s. Chunk 0 finishes around
  // t=1 without waiting; chunk 1 starts at t=1 (its gate at t=1 is already
  // met by then) and finishes around t=2 — not t=2.25, which a gate on the
  // wrong chunk would produce.
  EXPECT_GT(run.makespan, 1.99);
  EXPECT_LT(run.makespan, 2.2);
}

TEST(PseudoCuda, EmissionMentionsTreesAndMemcpy) {
  Rig s(topo::make_dgx1v());
  const std::string src = emit_pseudo_cuda(s.set, CodeGenOptions{});
  EXPECT_NE(src.find("blinkBroadcast"), std::string::npos);
  EXPECT_NE(src.find("cudaMemcpyPeerAsync"), std::string::npos);
  EXPECT_NE(src.find("tree 5"), std::string::npos);  // 6 trees emitted
}

}  // namespace
}  // namespace blink
