// The topology zoo: builder shapes, argument validation, and the determinism
// of the seeded random-fabric generator the invariant fuzzer stands on.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "blink/blink/communicator.h"
#include "blink/blink/multiserver.h"
#include "blink/common/rng.h"
#include "blink/topology/builders.h"
#include "blink/topology/zoo.h"

namespace blink::topo::zoo {
namespace {

TEST(Zoo, NvswitchBoxShape) {
  for (const int n : {2, 5, 16}) {
    const Topology t = make_nvswitch_box(n);
    ASSERT_TRUE(t.validate()) << "n=" << n;
    EXPECT_EQ(t.num_gpus, n);
    EXPECT_TRUE(t.has_nvswitch);
    EXPECT_TRUE(t.nvlinks.empty());  // the crossbar carries everything
    EXPECT_GT(t.nvswitch_gpu_bw, 0.0);
  }
  EXPECT_DOUBLE_EQ(make_nvswitch_box(4, 42.0e9).nvswitch_gpu_bw, 42.0e9);
}

TEST(Zoo, PcieOnlyHostShape) {
  const Topology t = make_pcie_only_host(6);
  ASSERT_TRUE(t.validate());
  EXPECT_EQ(t.num_gpus, 6);
  EXPECT_FALSE(t.has_nvswitch);
  EXPECT_TRUE(t.nvlinks.empty());
  EXPECT_FALSE(t.nvlink_connected());
  // Collectives must still lower through the PCIe fallback.
  Communicator comm(t);
  EXPECT_GT(comm.broadcast(8.0e6, 0).seconds, 0.0);
}

TEST(Zoo, RandomTopologySpanningTreeIsConnected) {
  // Density 0 leaves exactly the spanning tree: n-1 edges, still connected.
  RandomTopologyParams params;
  params.num_gpus = 7;
  params.link_density = 0.0;
  params.max_lanes = 1;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const Topology t = make_random_topology(params, rng);
    ASSERT_TRUE(t.validate()) << "seed=" << seed;
    EXPECT_EQ(t.nvlinks.size(), 6u) << "seed=" << seed;
    EXPECT_TRUE(t.nvlink_connected()) << "seed=" << seed;
  }
}

TEST(Zoo, RandomTopologyFullDensityIsClique) {
  RandomTopologyParams params;
  params.num_gpus = 5;
  params.link_density = 1.0;
  Rng rng(7);
  const Topology t = make_random_topology(params, rng);
  ASSERT_TRUE(t.validate());
  EXPECT_EQ(t.nvlinks.size(), 10u);  // C(5,2)
}

TEST(Zoo, RandomTopologyLaneSpread) {
  RandomTopologyParams params;
  params.num_gpus = 6;
  params.link_density = 1.0;
  params.max_lanes = 3;
  Rng rng(11);
  const Topology t = make_random_topology(params, rng);
  std::set<int> lanes;
  for (const auto& e : t.nvlinks) {
    EXPECT_GE(e.lanes, 1);
    EXPECT_LE(e.lanes, 3);
    lanes.insert(e.lanes);
  }
  EXPECT_GT(lanes.size(), 1u);  // bandwidth spread actually materializes
}

TEST(Zoo, FatTreeClusterShape) {
  const ZooCluster c = make_fat_tree_cluster(2, 3, 4, 8.0e9, 2.0);
  EXPECT_EQ(c.servers.size(), 6u);
  ASSERT_EQ(c.fabric.nic_bw_per_server.size(), 6u);
  for (const auto& s : c.servers) {
    ASSERT_TRUE(s.validate());
    EXPECT_EQ(s.num_gpus, 4);
    EXPECT_TRUE(s.has_nvswitch);
  }
  // Two racks: every NIC runs at nic_bw / oversubscription.
  for (const double r : c.fabric.nic_bw_per_server) EXPECT_DOUBLE_EQ(r, 4.0e9);
  // One rack keeps the full rate.
  const ZooCluster one = make_fat_tree_cluster(1, 2, 4, 8.0e9, 2.0);
  for (const double r : one.fabric.nic_bw_per_server) {
    EXPECT_DOUBLE_EQ(r, 8.0e9);
  }
}

TEST(Zoo, FatTreeClusterLowersAllKinds) {
  const ZooCluster c = make_fat_tree_cluster(2, 1, 4, 5.0e9, 2.0);
  ClusterCommunicator comm(c.servers, [&] {
    ClusterOptions opts;
    opts.fabric = c.fabric;
    opts.engine.planner_threads = 1;
    return opts;
  }());
  EXPECT_GT(comm.all_reduce(4.0e6).seconds, 0.0);
  EXPECT_GT(comm.broadcast(4.0e6, 0).seconds, 0.0);
}

TEST(Zoo, MixedFleetGenerationsAndNicScaling) {
  const ZooCluster c = make_mixed_fleet(
      {ServerKind::kDGX1P, ServerKind::kDGX1V, ServerKind::kDGX2}, 10.0e9);
  ASSERT_EQ(c.servers.size(), 3u);
  EXPECT_EQ(c.servers[0].num_gpus, 8);
  EXPECT_EQ(c.servers[1].num_gpus, 8);
  EXPECT_EQ(c.servers[2].num_gpus, 16);
  ASSERT_EQ(c.fabric.nic_bw_per_server.size(), 3u);
  EXPECT_DOUBLE_EQ(c.fabric.nic_bw_per_server[0], 5.0e9);   // P100: / 2
  EXPECT_DOUBLE_EQ(c.fabric.nic_bw_per_server[1], 10.0e9);  // V100: x 1
  EXPECT_DOUBLE_EQ(c.fabric.nic_bw_per_server[2], 20.0e9);  // DGX-2: x 2
}

TEST(Zoo, MixedFleetSubAllocation) {
  const ZooCluster c =
      make_mixed_fleet({ServerKind::kDGX1V, ServerKind::kDGX2}, 10.0e9, 4);
  for (const auto& s : c.servers) {
    ASSERT_TRUE(s.validate());
    EXPECT_EQ(s.num_gpus, 4);
  }
}

TEST(Zoo, RandomFabricIsDeterministic) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 0xdeadbeefULL}) {
    const RandomFabric a = make_random_fabric(seed);
    const RandomFabric b = make_random_fabric(seed);
    ASSERT_EQ(a.servers.size(), b.servers.size()) << "seed=" << seed;
    EXPECT_EQ(a.describe(), b.describe()) << "seed=" << seed;
    for (std::size_t s = 0; s < a.servers.size(); ++s) {
      EXPECT_EQ(a.servers[s].num_gpus, b.servers[s].num_gpus);
      EXPECT_EQ(a.servers[s].nvlinks.size(), b.servers[s].nvlinks.size());
    }
    EXPECT_EQ(a.fabric.nic_bw_per_server, b.fabric.nic_bw_per_server);
  }
  // Different seeds disagree somewhere (overwhelmingly likely).
  EXPECT_NE(make_random_fabric(1).describe(), make_random_fabric(2).describe());
}

TEST(Zoo, RandomFabricRespectsRanges) {
  RandomFabricParams params;
  params.min_servers = 2;
  params.max_servers = 4;
  params.min_gpus = 3;
  params.max_gpus = 5;
  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    const RandomFabric rf = make_random_fabric(seed, params);
    ASSERT_GE(rf.servers.size(), 2u);
    ASSERT_LE(rf.servers.size(), 4u);
    ASSERT_EQ(rf.fabric.nic_bw_per_server.size(), rf.servers.size());
    for (std::size_t s = 0; s < rf.servers.size(); ++s) {
      ASSERT_TRUE(rf.servers[s].validate());
      EXPECT_GE(rf.servers[s].num_gpus, 3);
      EXPECT_LE(rf.servers[s].num_gpus, 5);
      EXPECT_GE(rf.fabric.nic_bw_per_server[s], params.min_nic_bw);
      EXPECT_LE(rf.fabric.nic_bw_per_server[s], params.max_nic_bw);
    }
  }
}

// --- argument validation (satellite: all builders reject bad inputs) ---------

TEST(ZooValidation, BuildersThrowOnBadArguments) {
  EXPECT_THROW(make_nvswitch_box(0), std::invalid_argument);
  EXPECT_THROW(make_nvswitch_box(4, 0.0), std::invalid_argument);
  EXPECT_THROW(make_nvswitch_box(4, -1.0), std::invalid_argument);
  EXPECT_THROW(make_pcie_only_host(0), std::invalid_argument);
  EXPECT_THROW(make_pcie_only_host(-3), std::invalid_argument);

  Rng rng(1);
  RandomTopologyParams bad;
  bad.num_gpus = 0;
  EXPECT_THROW(make_random_topology(bad, rng), std::invalid_argument);
  bad = {};
  bad.link_density = 1.5;
  EXPECT_THROW(make_random_topology(bad, rng), std::invalid_argument);
  bad = {};
  bad.max_lanes = 0;
  EXPECT_THROW(make_random_topology(bad, rng), std::invalid_argument);
  bad = {};
  bad.nvswitch_probability = 0.7;
  bad.pcie_only_probability = 0.7;  // sums past 1
  EXPECT_THROW(make_random_topology(bad, rng), std::invalid_argument);

  EXPECT_THROW(make_fat_tree_cluster(0, 1, 4), std::invalid_argument);
  EXPECT_THROW(make_fat_tree_cluster(1, 0, 4), std::invalid_argument);
  EXPECT_THROW(make_fat_tree_cluster(1, 1, 0), std::invalid_argument);
  EXPECT_THROW(make_fat_tree_cluster(1, 1, 4, -5.0e9), std::invalid_argument);
  EXPECT_THROW(make_fat_tree_cluster(2, 1, 4, 5.0e9, 0.5),
               std::invalid_argument);

  EXPECT_THROW(make_mixed_fleet({}), std::invalid_argument);
  EXPECT_THROW(make_mixed_fleet({ServerKind::kCustom}), std::invalid_argument);
  EXPECT_THROW(make_mixed_fleet({ServerKind::kDGX1V}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(make_mixed_fleet({ServerKind::kDGX1V}, 5.0e9, 9),
               std::invalid_argument);  // DGX-1V has 8 GPUs

  RandomFabricParams inverted;
  inverted.min_servers = 3;
  inverted.max_servers = 2;
  EXPECT_THROW(make_random_fabric(1, inverted), std::invalid_argument);
  inverted = {};
  inverted.min_gpus = 0;
  EXPECT_THROW(make_random_fabric(1, inverted), std::invalid_argument);
  inverted = {};
  inverted.min_lane_bw = 10.0e9;
  inverted.max_lane_bw = 5.0e9;
  EXPECT_THROW(make_random_fabric(1, inverted), std::invalid_argument);
  inverted = {};
  inverted.min_nic_bw = -1.0;
  EXPECT_THROW(make_random_fabric(1, inverted), std::invalid_argument);
}

}  // namespace
}  // namespace blink::topo::zoo
