// Unit tests for the shared planner thread pool (common/thread_pool.h):
// task execution, work-helping parallel_for (coverage, exceptions, nesting),
// pause/resume, drain-on-destruction, and the env-driven default sizing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "blink/common/thread_pool.h"

namespace blink::common {
namespace {

TEST(ThreadPool, RunsPostedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) pool.post([&] { ran.fetch_add(1); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ran.load() < 16 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, SubmitReturnsValueAndPropagatesException) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(ok.get(), 42);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("planner exploded"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> seen(kN);
  pool.parallel_for(kN, [&](std::size_t i) { seen[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(seen[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForUsesMultipleThreads) {
  ThreadPool pool(3);
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.parallel_for(64, [&](std::size_t) {
    // Slow each iteration down so the helpers get a chance to claim some.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  // The calling thread always participates; on a multi-core host helpers
  // join it, but even a single-core box must have run every iteration.
  EXPECT_GE(ids.size(), 1u);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 17) {
                                     throw std::runtime_error("iteration 17");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // One worker: the outer loop's helper occupies it, so the inner loops can
  // only finish because waiting callers execute queued tasks inline.
  ThreadPool pool(1);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ThreadPool, ParallelForRespectsMaxWorkersOne) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::mutex mu;
  std::set<std::thread::id> ids;
  pool.parallel_for(
      32,
      [&](std::size_t) {
        const std::lock_guard<std::mutex> lock(mu);
        ids.insert(std::this_thread::get_id());
      },
      /*max_workers=*/1);
  EXPECT_EQ(ids.size(), 1u);
  EXPECT_EQ(*ids.begin(), caller);
}

TEST(ThreadPool, FreeParallelForSerialWhenUnparallel) {
  // max_workers <= 1 (including 0) and n <= 1 both run serially on the
  // calling thread, never touching the shared pool.
  const auto caller = std::this_thread::get_id();
  for (const std::size_t max_workers : {std::size_t{0}, std::size_t{1}}) {
    std::vector<int> order;
    parallel_for(4, max_workers, [&](std::size_t i) {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  }
}

TEST(ThreadPool, PauseHoldsQueueUntilResume) {
  ThreadPool pool(2);
  pool.pause();
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) pool.post([&] { ran.fetch_add(1); });
  // Workers are held: nothing runs and the queue reports the backlog.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(pool.queue_depth(), 8u);
  pool.resume();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (ran.load() < 8 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    pool.pause();  // guarantee the tasks are still queued at destruction
    for (int i = 0; i < 8; ++i) pool.post([&] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, DefaultThreadsHonorsEnvVariable) {
  ASSERT_EQ(setenv("BLINK_PLANNER_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  // Garbage and non-positive values fall back to hardware concurrency.
  ASSERT_EQ(setenv("BLINK_PLANNER_THREADS", "0", 1), 0);
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  ASSERT_EQ(setenv("BLINK_PLANNER_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  ASSERT_EQ(unsetenv("BLINK_PLANNER_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

TEST(ThreadPool, SharedPoolIsASingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

}  // namespace
}  // namespace blink::common
