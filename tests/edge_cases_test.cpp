// Edge cases and less-travelled paths across the public API.
#include <gtest/gtest.h>

#include "blink/baselines/nccl_like.h"
#include "blink/blink/communicator.h"
#include "blink/blink/multiserver.h"
#include "blink/topology/binning.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink {
namespace {

TEST(EdgeCases, Dgx2FullCollectiveSurface) {
  Communicator comm(topo::make_dgx2());
  const double bytes = 16e6;
  EXPECT_GT(comm.gather(bytes, 3).algorithm_bw, 1e9);
  EXPECT_GT(comm.reduce(bytes, 3).algorithm_bw, 1e9);
  EXPECT_GT(comm.all_gather(bytes).seconds, 0.0);
  EXPECT_GT(comm.reduce_scatter(bytes).seconds, 0.0);
}

TEST(EdgeCases, TinyPayloads) {
  Communicator comm(topo::make_dgx1v());
  for (const double bytes : {1.0, 100.0, 4096.0}) {
    const auto b = comm.broadcast(bytes, 0);
    EXPECT_GT(b.seconds, 0.0) << bytes;
    const auto ar = comm.all_reduce(bytes);
    EXPECT_GT(ar.seconds, b.seconds * 0.5) << bytes;
  }
}

TEST(EdgeCases, HugePayloadRespectsChunkCap) {
  CommunicatorOptions opts;
  opts.codegen.max_chunks_per_tree = 32;
  Communicator comm(topo::make_dgx1v(), opts);
  const auto r = comm.broadcast(8e9, 0);
  EXPECT_GT(r.algorithm_bw, 80e9);  // cap forces bigger chunks, still fast
}

TEST(EdgeCases, EveryRootOnEveryUniqueFourGpuConfig) {
  const auto machine = topo::make_dgx1v();
  for (const auto& bin :
       topo::unique_configs(machine, 4, /*connected_only=*/true)) {
    const auto topo = topo::induced_topology(machine, bin.representative);
    Communicator comm(topo);
    for (int root = 0; root < topo.num_gpus; ++root) {
      EXPECT_GT(comm.broadcast(32e6, root).algorithm_bw, 5e9)
          << ::testing::PrintToString(bin.representative) << " root " << root;
    }
  }
}

TEST(EdgeCases, TwoGpuSingleLane) {
  const auto machine = topo::make_dgx1v();
  Communicator comm(topo::induced_topology(machine, std::vector<int>{0, 1}));
  const auto r = comm.broadcast(64e6, 1);  // non-zero root
  EXPECT_GT(r.algorithm_bw, 0.7 * topo::kNvlinkGen2Bw);
  EXPECT_LT(r.algorithm_bw, 1.3 * topo::kNvlinkGen2Bw);
}

TEST(EdgeCases, NcclTwoGpus) {
  const auto machine = topo::make_dgx1v();
  baselines::NcclCommunicator nccl(
      topo::induced_topology(machine, std::vector<int>{0, 3}));  // 2 lanes
  const auto r = nccl.broadcast(64e6, 0);
  EXPECT_GT(r.algorithm_bw, 1.2 * topo::kNvlinkGen2Bw);
}

TEST(EdgeCases, ClusterWithDgx2Member) {
  // Mixed cluster: a DGX-2 and a DGX-1V fragment.
  const auto machine = topo::make_dgx1v();
  ClusterCommunicator comm(
      {topo::make_dgx2(),
       topo::induced_topology(machine, std::vector<int>{4, 5, 6, 7})},
      {});
  EXPECT_EQ(comm.num_partitions(), 4);
  const auto r = comm.all_reduce(32e6);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(EdgeCases, MemoizationOffStillDeterministic) {
  CommunicatorOptions opts;
  opts.memoize = false;
  const auto machine = topo::make_dgx1v();
  Communicator comm(topo::induced_topology(machine,
                                           std::vector<int>{5, 6, 7}),
                    opts);
  const auto a = comm.all_reduce(48e6);
  const auto b = comm.all_reduce(48e6);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(EdgeCases, GatherVolumeScalesWithSources) {
  // Gather from n-1 sources moves (n-1) * per-GPU bytes.
  const auto machine = topo::make_dgx1v();
  const auto t3 = topo::induced_topology(machine, std::vector<int>{5, 6, 7});
  const auto t4 =
      topo::induced_topology(machine, std::vector<int>{4, 5, 6, 7});
  Communicator c3(t3);
  Communicator c4(t4);
  // More sources means more total data: time grows with GPU count at equal
  // per-GPU bytes on comparable fabrics.
  EXPECT_GT(c4.gather(64e6, 0).seconds, 0.6 * c3.gather(64e6, 0).seconds);
}

TEST(EdgeCases, TreeSetCachesReturnSameObject) {
  Communicator comm(topo::make_dgx1v());
  const TreeSet* a = &comm.tree_set(2);
  const TreeSet* b = &comm.tree_set(2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, &comm.tree_set(3));
  EXPECT_NE(a, &comm.bidir_tree_set(2));
}

}  // namespace
}  // namespace blink
