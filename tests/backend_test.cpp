// The CollectiveBackend unification: every baseline algorithm runs through
// the shared plan/execute engine — compile()/execute() with the common
// PlanCache, argument validation, and grouped launches mixing backends.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "blink/baselines/backends.h"
#include "blink/baselines/nccl_like.h"
#include "blink/blink/communicator.h"
#include "blink/blink/engine.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink {
namespace {

using baselines::NcclOptions;
using baselines::make_baseline_backend;

// An engine running one named baseline backend on a DGX-2 with the
// persistent-kernel fabric model, as the facade builds them.
std::unique_ptr<CollectiveEngine> baseline_engine(const char* name,
                                                  topo::Topology topo) {
  const NcclOptions options;
  auto engine = std::make_unique<CollectiveEngine>(
      std::move(topo),
      baselines::apply_persistent_kernel_model(options.fabric),
      EngineOptions{});
  auto backend = make_baseline_backend(name, engine->topology(),
                                       engine->fabric(), options);
  EXPECT_NE(backend, nullptr) << name;
  engine->register_backend(std::move(backend));
  return engine;
}

// Acceptance: all four baseline algorithms run through compile()/execute()
// with the shared PlanCache — the second identical collective on each
// backend is a cache hit (zero recompiles).
TEST(Backend, AllBaselinesCompileExecuteWithSharedPlanCache) {
  for (const char* name : {"nccl", "ring", "double_binary", "butterfly"}) {
    auto engine = baseline_engine(name, topo::make_dgx2());
    const auto first = engine->compile(CollectiveKind::kAllReduce, 64e6);
    const CollectiveResult r1 = engine->execute(*first);
    EXPECT_GT(r1.seconds, 0.0) << name;
    EXPECT_GT(r1.algorithm_bw, 0.0) << name;
    EXPECT_EQ(engine->plan_cache().misses(), 1u) << name;
    const auto second = engine->compile(CollectiveKind::kAllReduce, 64e6);
    EXPECT_EQ(second.get(), first.get()) << name;  // same compiled artifact
    EXPECT_EQ(engine->plan_cache().hits(), 1u) << name;
    EXPECT_EQ(engine->plan_cache().misses(), 1u) << name;  // zero recompiles
    const CollectiveResult r2 = engine->execute(*second);
    EXPECT_DOUBLE_EQ(r1.seconds, r2.seconds) << name;
  }
}

// Backends keep their algorithmic identity through the unified interface:
// the same AllReduce lowers to visibly different schedules per backend.
TEST(Backend, AlgorithmsStayDistinct) {
  auto ring = baseline_engine("ring", topo::make_dgx2());
  auto dbt = baseline_engine("double_binary", topo::make_dgx2());
  auto fly = baseline_engine("butterfly", topo::make_dgx2());
  const double bytes = 64e6;
  const auto ring_r = ring->all_reduce(bytes);
  const auto dbt_r = dbt->all_reduce(bytes);
  const auto fly_r = fly->all_reduce(bytes);
  EXPECT_EQ(ring_r.num_trees, 12);  // 6 lanes, both directions
  EXPECT_EQ(dbt_r.num_trees, 2);
  EXPECT_EQ(fly_r.num_trees, 8);    // 2 * log2(16) exchange rounds
  EXPECT_NE(ring_r.num_ops, dbt_r.num_ops);
  EXPECT_NE(ring_r.seconds, dbt_r.seconds);
  EXPECT_NE(ring_r.seconds, fly_r.seconds);
}

// The NCCL backend is the ring backend plus the small-payload double-binary
// switch; below the threshold they must diverge, above they must agree.
TEST(Backend, NcclSwitchesToTreesOnlyBelowThreshold) {
  auto nccl = baseline_engine("nccl", topo::make_dgx2());
  auto ring = baseline_engine("ring", topo::make_dgx2());
  const auto small_nccl = nccl->all_reduce(8e3);
  const auto small_ring = ring->all_reduce(8e3);
  EXPECT_EQ(small_nccl.num_trees, 2);
  EXPECT_EQ(small_ring.num_trees, 12);  // 6 lanes, both directions
  const auto big_nccl = nccl->all_reduce(1e9);
  const auto big_ring = ring->all_reduce(1e9);
  EXPECT_DOUBLE_EQ(big_nccl.seconds, big_ring.seconds);
}

// Acceptance: a group launch mixing two backends' requests on one engine
// returns per-request makespans.
TEST(Backend, GroupLaunchMixesBackends) {
  Communicator comm(topo::make_dgx2());
  const int butterfly = comm.register_backend(make_baseline_backend(
      "butterfly", comm.topology(), comm.fabric(), NcclOptions{}));
  EXPECT_EQ(butterfly, 1);
  EXPECT_EQ(comm.backend_id("butterfly"), butterfly);
  EXPECT_EQ(comm.backend_id("blink"), 0);

  const double bytes = 32e6;
  const std::vector<CollectiveRequest> reqs{
      {CollectiveKind::kAllReduce, bytes, -1, 0},
      {CollectiveKind::kAllReduce, bytes, -1, butterfly},
  };
  const auto results = comm.run(reqs);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_DOUBLE_EQ(r.bytes, bytes);
    EXPECT_GT(r.seconds, 0.0);
  }
  // Contending with the butterfly can only slow Blink's own request down.
  const CollectiveResult solo = comm.all_reduce(bytes);
  EXPECT_GE(results[0].seconds, 0.999 * solo.seconds);
  // Both backends' plans landed in the one shared cache under distinct keys.
  EXPECT_GE(comm.plan_cache().size(), 2u);
  const auto blink_plan = comm.compile(CollectiveKind::kAllReduce, bytes);
  const auto fly_plan =
      comm.compile(CollectiveKind::kAllReduce, bytes, -1, butterfly);
  EXPECT_NE(blink_plan.get(), fly_plan.get());
  EXPECT_EQ(blink_plan->backend(), 0);
  EXPECT_EQ(fly_plan->backend(), butterfly);
}

// An engine with every algorithm registered; backend == kAutoBackend
// measures each supporting backend once per shape and compiles on the
// fastest, NCCL-tuner style.
std::unique_ptr<Communicator> auto_engine(topo::Topology topo) {
  auto comm = std::make_unique<Communicator>(std::move(topo));
  for (const char* name : {"nccl", "ring", "double_binary", "butterfly"}) {
    comm->register_backend(make_baseline_backend(name, comm->topology(),
                                                 comm->fabric(),
                                                 NcclOptions{}));
  }
  return comm;
}

TEST(Backend, AutoSelectionPicksTheFastestPerShape) {
  auto comm = auto_engine(topo::make_dgx2());
  const double bytes = 64e6;
  const auto plan =
      comm->compile(CollectiveKind::kAllReduce, bytes, -1,
                    CollectiveEngine::kAutoBackend);
  ASSERT_GE(plan->backend(), 0);
  ASSERT_LT(plan->backend(), comm->num_backends());
  // The winner really is the fastest candidate: every backend supports
  // AllReduce on a DGX-2, so compare against each measured solo.
  const double winner = comm->execute(*plan).seconds;
  for (int id = 0; id < comm->num_backends(); ++id) {
    const auto r =
        comm->execute(*comm->compile(CollectiveKind::kAllReduce, bytes, -1,
                                     id));
    EXPECT_GE(r.seconds, winner) << comm->backend(id).name();
  }
}

TEST(Backend, AutoSelectionCachesChoiceAndPlans) {
  auto comm = auto_engine(topo::make_dgx2());
  const double bytes = 32e6;
  const auto first = comm->compile(CollectiveKind::kAllReduce, bytes, -1,
                                   CollectiveEngine::kAutoBackend);
  // The measurement compiled one candidate per backend (all five support
  // AllReduce on a DGX-2) and each landed in the shared cache.
  EXPECT_EQ(comm->plan_cache().misses(), 5u);
  const auto again = comm->compile(CollectiveKind::kAllReduce, bytes, -1,
                                   CollectiveEngine::kAutoBackend);
  EXPECT_EQ(again.get(), first.get());  // cached choice, cached plan
  EXPECT_EQ(comm->plan_cache().misses(), 5u);  // no re-measurement
  EXPECT_GE(comm->plan_cache().hits(), 1u);
  // A different shape measures afresh and may pick differently.
  const auto small = comm->compile(CollectiveKind::kAllReduce, 8e3, -1,
                                   CollectiveEngine::kAutoBackend);
  EXPECT_EQ(comm->plan_cache().misses(), 10u);
  EXPECT_GE(small->backend(), 0);
}

TEST(Backend, AutoSelectionSkipsUnsupportedKinds) {
  // Only Blink lowers ReduceScatter here, so auto must land on it.
  auto comm = auto_engine(topo::make_dgx2());
  const auto plan = comm->compile(CollectiveKind::kReduceScatter, 16e6, -1,
                                  CollectiveEngine::kAutoBackend);
  EXPECT_EQ(plan->backend(), 0);
  // No backend at all: invalid, same as naming an unsupported kind.
  auto butterfly = baseline_engine("butterfly", topo::make_dgx2());
  EXPECT_THROW(butterfly->compile(CollectiveKind::kBroadcast, 16e6, 0,
                                  CollectiveEngine::kAutoBackend),
               std::invalid_argument);
}

// A backend whose speed is an exact, root-dependent delay, so auto-selection
// behavior can be pinned down: completion time = base + per_root * root.
class StubBackend : public CollectiveBackend {
 public:
  StubBackend(const char* name, double base, double per_root, int root)
      : name_(name), base_(base), per_root_(per_root), root_(root) {}
  const char* name() const override { return name_; }
  bool supports(CollectiveKind kind) const override {
    (void)kind;
    return true;
  }
  int default_root(CollectiveKind kind) override {
    (void)kind;
    return root_;
  }
  LoweredCollective lower(CollectiveKind kind, double bytes,
                          int root) override {
    (void)kind;
    LoweredCollective out;
    const int stream = out.program.new_stream();
    out.program.add(sim::Op{sim::OpKind::kDelay,
                            {},
                            0.0,
                            base_ + per_root_ * root,
                            stream,
                            {},
                            "stub"});
    out.meta.bytes = bytes;
    out.meta.num_ops = 1;
    return out;
  }

 private:
  const char* name_;
  double base_;
  double per_root_;
  int root_;
};

// Satellite regression: select_backend_locked used to pass the unresolved
// root == -1 to each candidate, timing backends at their *own* default
// roots (apples to oranges) and caching the choice under root == -1. Now
// the root is resolved once — to the first supporting backend's default —
// every candidate is measured at that same root, and the choice is keyed
// on it.
TEST(Backend, AutoSelectionResolvesRootConsistently) {
  CollectiveEngine engine(topo::make_dgx2(), sim::FabricParams{});
  // slow_a: 2ms at every root, default root 0 (it goes first, so root == -1
  // resolves to 0). fast_at_0: 1ms at root 0 but 5ms at its own default
  // root 1 — the old per-candidate resolution would have measured it at
  // 5ms and wrongly picked slow_a.
  engine.register_backend(
      std::make_unique<StubBackend>("slow_a", 2e-3, 0.0, 0));
  const int fast_at_0 = engine.register_backend(
      std::make_unique<StubBackend>("fast_at_0", 1e-3, 4e-3, 1));

  const auto plan = engine.compile(CollectiveKind::kBroadcast, 1e6, -1,
                                   CollectiveEngine::kAutoBackend);
  EXPECT_EQ(plan->backend(), fast_at_0);
  EXPECT_EQ(plan->root(), 0);  // the consistently resolved root, not 1
  // The choice is cached under the resolved root: asking for root 0
  // explicitly reuses it without re-measuring.
  const auto misses = engine.plan_cache().misses();
  const auto again = engine.compile(CollectiveKind::kBroadcast, 1e6, 0,
                                    CollectiveEngine::kAutoBackend);
  EXPECT_EQ(again.get(), plan.get());
  EXPECT_EQ(engine.plan_cache().misses(), misses);
}

// Satellite regression: register_backend() now invalidates cached auto
// choices, so a backend registered after a winner was picked still gets
// measured for already-seen shapes.
TEST(Backend, RegisteringBackendInvalidatesAutoChoices) {
  CollectiveEngine engine(topo::make_dgx2(), sim::FabricParams{});
  const int slow = engine.register_backend(
      std::make_unique<StubBackend>("slow", 5e-3, 0.0, 0));
  const auto first = engine.compile(CollectiveKind::kAllReduce, 1e6, -1,
                                    CollectiveEngine::kAutoBackend);
  EXPECT_EQ(first->backend(), slow);  // only candidate

  const int fast = engine.register_backend(
      std::make_unique<StubBackend>("fast", 1e-4, 0.0, 0));
  const auto second = engine.compile(CollectiveKind::kAllReduce, 1e6, -1,
                                     CollectiveEngine::kAutoBackend);
  EXPECT_EQ(second->backend(), fast);  // re-measured, new winner
}

TEST(Backend, AutoSelectionInGroupRequests) {
  auto comm = auto_engine(topo::make_dgx2());
  const std::vector<CollectiveRequest> reqs{
      {CollectiveKind::kAllReduce, 16e6, -1, CollectiveEngine::kAutoBackend},
      {CollectiveKind::kBroadcast, 8e6, 0, CollectiveEngine::kAutoBackend},
  };
  const auto results = comm->run(reqs);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_GT(r.seconds, 0.0);
}

// Satellite: baselines validate arguments exactly like Communicator —
// std::invalid_argument on zero/negative bytes and out-of-range roots,
// where they previously built garbage schedules silently.
TEST(Backend, BaselinesRejectBadArguments) {
  for (const char* name : {"nccl", "ring", "double_binary", "butterfly"}) {
    auto engine = baseline_engine(name, topo::make_dgx2());
    EXPECT_THROW(engine->compile(CollectiveKind::kAllReduce, 0.0),
                 std::invalid_argument)
        << name;
    EXPECT_THROW(engine->compile(CollectiveKind::kAllReduce, -5.0),
                 std::invalid_argument)
        << name;
    EXPECT_THROW(engine->compile(CollectiveKind::kAllReduce, 1e6, 99),
                 std::invalid_argument)
        << name;
    // Only -1 means "pick the default root"; other negatives are errors.
    EXPECT_THROW(engine->compile(CollectiveKind::kAllReduce, 1e6, -2),
                 std::invalid_argument)
        << name;
  }
  baselines::NcclCommunicator nccl(topo::make_dgx1v());
  EXPECT_THROW(nccl.broadcast(0.0, 0), std::invalid_argument);
  EXPECT_THROW(nccl.broadcast(-1.0, 0), std::invalid_argument);
  EXPECT_THROW(nccl.broadcast(1e6, 99), std::invalid_argument);
  EXPECT_THROW(nccl.reduce(1e6, -2), std::invalid_argument);
}

// Kinds a backend cannot lower are invalid arguments, not empty programs.
TEST(Backend, UnsupportedKindsRejected) {
  auto butterfly = baseline_engine("butterfly", topo::make_dgx2());
  EXPECT_THROW(butterfly->compile(CollectiveKind::kBroadcast, 1e6, 0),
               std::invalid_argument);
  auto nccl = baseline_engine("nccl", topo::make_dgx2());
  EXPECT_THROW(nccl->reduce_scatter(1e6), std::invalid_argument);
  // The butterfly needs a power-of-two clique; a 6-GPU allocation is out.
  auto engine = baseline_engine(
      "butterfly", topo::induced_topology(topo::make_dgx1v(),
                                          std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_FALSE(engine->backend().supports(CollectiveKind::kAllReduce));
  EXPECT_THROW(engine->compile(CollectiveKind::kAllReduce, 1e6),
               std::invalid_argument);
}

// Executing another engine's plan is rejected across engine types.
TEST(Backend, ExecuteRejectsForeignPlan) {
  Communicator blink_comm(topo::make_dgx2());
  baselines::NcclCommunicator nccl(topo::make_dgx2());
  const auto plan = blink_comm.compile(CollectiveKind::kAllReduce, 1e6);
  EXPECT_THROW(nccl.execute(*plan), std::invalid_argument);
}

// The unified one-shot wrappers match compile+execute for baselines too
// (the engine memoizes deterministic results).
TEST(Backend, OneShotMatchesCompileExecute) {
  baselines::NcclCommunicator nccl(topo::make_dgx1v());
  const auto plan = nccl.compile(CollectiveKind::kBroadcast, 200e6, 0);
  const CollectiveResult split = nccl.execute(*plan);
  baselines::NcclCommunicator fresh(topo::make_dgx1v());
  const CollectiveResult one_shot = fresh.broadcast(200e6, 0);
  EXPECT_DOUBLE_EQ(split.seconds, one_shot.seconds);
  EXPECT_DOUBLE_EQ(split.algorithm_bw, one_shot.algorithm_bw);
  EXPECT_EQ(split.num_trees, one_shot.num_trees);
  EXPECT_EQ(split.num_ops, one_shot.num_ops);
}

// Group launches work for a pure baseline engine (previously Blink-only).
TEST(Backend, BaselineGroupLaunch) {
  baselines::NcclCommunicator nccl(topo::make_dgx1v());
  const std::vector<CollectiveRequest> reqs{
      {CollectiveKind::kBroadcast, 32e6, 0},
      {CollectiveKind::kAllReduce, 16e6, -1},
  };
  const auto results = nccl.run(reqs);
  ASSERT_EQ(results.size(), 2u);
  const CollectiveResult solo = nccl.broadcast(32e6, 0);
  EXPECT_GE(results[0].seconds, 0.999 * solo.seconds);
  EXPECT_GT(results[1].seconds, 0.0);
}

// An engine with no registered backend fails loudly, and unknown backend
// ids / names are rejected.
TEST(Backend, RegistryErrors) {
  CollectiveEngine engine(topo::make_dgx2(), sim::FabricParams{},
                          EngineOptions{});
  EXPECT_THROW(engine.compile(CollectiveKind::kAllReduce, 1e6),
               std::logic_error);
  EXPECT_EQ(engine.backend_id("blink"), -1);
  EXPECT_THROW(engine.backend(0), std::invalid_argument);
  EXPECT_EQ(make_baseline_backend("notabackend", engine.topology(),
                                  engine.fabric()),
            nullptr);
  engine.register_backend(make_baseline_backend("ring", engine.topology(),
                                                engine.fabric()));
  EXPECT_THROW(engine.compile(CollectiveKind::kAllReduce, 1e6, -1, 7),
               std::invalid_argument);
}

}  // namespace
}  // namespace blink
