#include <gtest/gtest.h>

#include <set>

#include "blink/topology/binning.h"
#include "blink/topology/builders.h"

namespace blink::topo {
namespace {

TEST(Binning, SignatureInvariantUnderRelabeling) {
  const Topology machine = make_dgx1v();
  // [0,1,2,3] and [4,5,6,7] are the two quads; the paper calls them the same
  // configuration.
  const std::vector<int> quad0{0, 1, 2, 3};
  const std::vector<int> quad1{4, 5, 6, 7};
  EXPECT_EQ(canonical_signature(machine, quad0),
            canonical_signature(machine, quad1));
}

TEST(Binning, DistinguishesDifferentTopologies) {
  const Topology machine = make_dgx1v();
  // {0,1,3} has lanes (1,2,1); {0,1,2} has lanes (1,1,2) - isomorphic!
  // {1,4,5} (0,1,2 lanes) differs from both.
  const std::vector<int> a{0, 1, 3};
  const std::vector<int> b{1, 4, 5};
  EXPECT_NE(canonical_signature(machine, a), canonical_signature(machine, b));
}

TEST(Binning, BinMembersShareSignature) {
  const Topology machine = make_dgx1p();
  for (const auto& bin : unique_configs(machine, 4)) {
    for (const auto& member : bin.members) {
      EXPECT_EQ(canonical_signature(machine, member), bin.signature);
    }
  }
}

TEST(Binning, BinsPartitionAllAllocations) {
  const Topology machine = make_dgx1v();
  const auto bins = unique_configs(machine, 5);
  std::size_t total = 0;
  std::set<std::vector<int>> seen;
  for (const auto& bin : bins) {
    total += bin.members.size();
    for (const auto& m : bin.members) {
      EXPECT_TRUE(seen.insert(m).second) << "duplicate member";
    }
  }
  EXPECT_EQ(total, 56u);  // C(8,5)
}

// The paper evaluates "46 different topology settings for DGX-1V, and 14
// different topology settings for the DGX-1P machine" over 3..8 GPUs (§5.2).
TEST(Binning, ReproducesPaperUniqueConfigCounts) {
  const Topology v100 = make_dgx1v();
  const Topology p100 = make_dgx1p();
  const auto v_bins =
      unique_configs_range(v100, 3, 8, /*connected_only=*/true);
  const auto p_bins =
      unique_configs_range(p100, 3, 8, /*connected_only=*/true);
  EXPECT_EQ(v_bins.size(), 46u);
  EXPECT_EQ(p_bins.size(), 14u);
}

TEST(Binning, PerSizeCountsMatchFigure15Axis) {
  // Figure 15 lists 5 three-GPU, 14 four-GPU, 14 five-GPU, 10 six-GPU,
  // 2 seven-GPU and 1 eight-GPU configurations for the DGX-1V.
  const Topology v100 = make_dgx1v();
  const bool connected = true;
  EXPECT_EQ(unique_configs(v100, 3, connected).size(), 5u);
  EXPECT_EQ(unique_configs(v100, 4, connected).size(), 14u);
  EXPECT_EQ(unique_configs(v100, 5, connected).size(), 14u);
  EXPECT_EQ(unique_configs(v100, 6, connected).size(), 10u);
  EXPECT_EQ(unique_configs(v100, 7, connected).size(), 2u);
  EXPECT_EQ(unique_configs(v100, 8, connected).size(), 1u);
}

TEST(Binning, RepresentativeIsLexicographicallyFirst) {
  const Topology machine = make_dgx1p();
  for (const auto& bin : unique_configs(machine, 3)) {
    for (const auto& m : bin.members) {
      EXPECT_LE(bin.representative, m);
    }
  }
}

}  // namespace
}  // namespace blink::topo
