#include <gtest/gtest.h>

#include "blink/blink/communicator.h"
#include "blink/topology/binning.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink {
namespace {

topo::Topology alloc_v100(std::vector<int> gpus) {
  return topo::induced_topology(topo::make_dgx1v(), gpus);
}

TEST(Communicator, BroadcastFullDgx1v) {
  Communicator comm(topo::make_dgx1v());
  const auto r = comm.broadcast(500e6, 0);
  EXPECT_GT(r.algorithm_bw, 100e9);  // ~6 lanes * 23 GB/s minus overheads
  EXPECT_LT(r.algorithm_bw, 6 * topo::kNvlinkGen2Bw);
  EXPECT_EQ(r.num_trees, 6);
}

TEST(Communicator, AllReduceSlowerThanBroadcast) {
  Communicator comm(topo::make_dgx1v());
  const auto b = comm.broadcast(500e6, 0);
  const auto ar = comm.all_reduce(500e6);
  EXPECT_LT(ar.algorithm_bw, 0.7 * b.algorithm_bw);
  EXPECT_GT(ar.algorithm_bw, 0.3 * b.algorithm_bw);
}

TEST(Communicator, NvlinkDisconnectedFallsBackToPcie) {
  Communicator comm(alloc_v100({1, 4, 6}));
  const auto r = comm.broadcast(100e6, 0);
  EXPECT_GT(r.algorithm_bw, 1e9);
  EXPECT_LT(r.algorithm_bw, 12e9);  // PCIe-bound
  EXPECT_EQ(comm.tree_set(0).link, topo::LinkType::kPCIe);
}

TEST(Communicator, GatherReduceRun) {
  Communicator comm(alloc_v100({4, 5, 6, 7}));
  EXPECT_GT(comm.gather(100e6, 0).algorithm_bw, 1e9);
  EXPECT_GT(comm.reduce(100e6, 0).algorithm_bw, 1e9);
}

TEST(Communicator, AllGatherAndReduceScatterRun) {
  Communicator comm(alloc_v100({0, 1, 2, 3}));
  const auto ag = comm.all_gather(50e6);
  const auto rs = comm.reduce_scatter(50e6);
  EXPECT_GT(ag.seconds, 0.0);
  EXPECT_GT(rs.seconds, 0.0);
}

TEST(Communicator, MemoizationReturnsIdenticalResults) {
  Communicator comm(topo::make_dgx1v());
  const auto a = comm.broadcast(200e6, 1);
  const auto b = comm.broadcast(200e6, 1);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(Communicator, BestRootPicksMaxRate) {
  Communicator comm(alloc_v100({0, 1, 3, 7}));
  const int best = comm.best_root();
  for (int r = 0; r < comm.num_gpus(); ++r) {
    EXPECT_GE(comm.tree_set(best).rate, comm.tree_set(r).rate - 1.0);
  }
}

TEST(Communicator, SmallTransfersDominatedByLatency) {
  Communicator comm(topo::make_dgx1v());
  const auto small = comm.all_reduce(1e3);
  const auto large = comm.all_reduce(500e6);
  EXPECT_LT(small.algorithm_bw, 0.05 * large.algorithm_bw);
}

TEST(Communicator, ThroughputGrowsWithDataSize) {
  Communicator comm(topo::make_dgx1v());
  double prev = 0.0;
  for (const double bytes : {1e5, 1e6, 1e7, 1e8}) {
    const double bw = comm.broadcast(bytes, 0).algorithm_bw;
    EXPECT_GT(bw, prev * 0.99) << bytes;
    prev = bw;
  }
}

TEST(Communicator, MiadTuningProducesTrace) {
  Communicator comm(alloc_v100({4, 5, 6, 7}));
  const auto trace =
      comm.tune_chunk_size(CollectiveKind::kBroadcast, 200e6, 0);
  EXPECT_GE(trace.trace.size(), 3u);
  EXPECT_GT(trace.selected_chunk, 0u);
  EXPECT_GT(trace.selected_throughput, 0.0);
}

TEST(Communicator, AutoChunkModeRuns) {
  CommunicatorOptions opts;
  opts.codegen.chunk_bytes = 0;  // MIAD
  Communicator comm(alloc_v100({5, 6, 7}), opts);
  const auto r = comm.broadcast(200e6, 0);
  EXPECT_GT(r.algorithm_bw, 10e9);
}

TEST(Communicator, InvalidTopologyThrows) {
  topo::Topology bad = topo::make_chain(3);
  bad.nvlinks.push_back({0, 9, 1});
  EXPECT_THROW(Communicator{bad}, std::invalid_argument);
}

TEST(Communicator, TwoGpuCollectives) {
  Communicator comm(alloc_v100({0, 3}));  // doubled link
  const auto r = comm.broadcast(100e6, 0);
  EXPECT_GT(r.algorithm_bw, 1.5 * topo::kNvlinkGen2Bw);
  EXPECT_GT(comm.all_reduce(100e6).algorithm_bw, 0.5 * topo::kNvlinkGen2Bw);
}

// Broadcast throughput must never fall below the NCCL-visible lower bound of
// a single lane on connected configs (Blink >= 1 tree).
class CommSweep : public ::testing::TestWithParam<int> {};

TEST_P(CommSweep, ConnectedConfigsBeatSingleLane) {
  const auto machine = topo::make_dgx1v();
  for (const auto& bin :
       topo::unique_configs(machine, GetParam(), /*connected_only=*/true)) {
    Communicator comm(topo::induced_topology(machine, bin.representative));
    const auto r = comm.broadcast(500e6, 0);
    EXPECT_GE(r.algorithm_bw, 0.8 * topo::kNvlinkGen2Bw)
        << ::testing::PrintToString(bin.representative);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CommSweep, ::testing::Values(3, 5, 8));

}  // namespace
}  // namespace blink
