#include <gtest/gtest.h>

#include <cmath>

#include "blink/sim/engine.h"

namespace blink::sim {
namespace {

std::vector<double> rates(const std::vector<double>& caps,
                          const std::vector<std::vector<int>>& routes) {
  std::vector<FlowSpec> specs;
  specs.reserve(routes.size());
  for (const auto& r : routes) specs.push_back({r});
  return max_min_rates(caps, specs);
}

TEST(MaxMin, SingleFlowGetsFullCapacity) {
  const auto r = rates({10.0}, {{0}});
  EXPECT_DOUBLE_EQ(r[0], 10.0);
}

TEST(MaxMin, TwoFlowsShareEqually) {
  const auto r = rates({10.0}, {{0}, {0}});
  EXPECT_DOUBLE_EQ(r[0], 5.0);
  EXPECT_DOUBLE_EQ(r[1], 5.0);
}

TEST(MaxMin, EmptyRouteIsUnconstrained) {
  const auto r = rates({10.0}, {{}});
  EXPECT_TRUE(std::isinf(r[0]));
}

TEST(MaxMin, MultiChannelFlowLimitedByNarrowest) {
  const auto r = rates({10.0, 2.0}, {{0, 1}});
  EXPECT_DOUBLE_EQ(r[0], 2.0);
}

TEST(MaxMin, ClassicThreeFlowExample) {
  // Flow A on channels {0,1}, flow B on {0}, flow C on {1}. Caps 10 each.
  // Max-min: A=5, B=5, C=5.
  const auto r = rates({10.0, 10.0}, {{0, 1}, {0}, {1}});
  EXPECT_DOUBLE_EQ(r[0], 5.0);
  EXPECT_DOUBLE_EQ(r[1], 5.0);
  EXPECT_DOUBLE_EQ(r[2], 5.0);
}

TEST(MaxMin, UnevenBottleneck) {
  // Channel 0 cap 2 shared by flows A,B; channel 1 cap 10 used by B,C.
  // A=1, B=1 (bottlenecked on channel 0), C=9.
  const auto r = rates({2.0, 10.0}, {{0}, {0, 1}, {1}});
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 9.0);
}

TEST(MaxMin, NoFlows) {
  EXPECT_TRUE(rates({5.0}, {}).empty());
}

TEST(MaxMin, AllocationIsFeasibleAndSaturating) {
  // Random-ish configuration: verify feasibility (no channel oversubscribed)
  // and maximality (every flow has a saturated channel).
  const std::vector<double> caps{3.0, 7.0, 2.0, 11.0};
  const std::vector<std::vector<int>> routes{{0, 1}, {1, 2}, {2, 3},
                                             {0, 3}, {1},    {3}};
  const auto r = rates(caps, routes);
  std::vector<double> load(caps.size(), 0.0);
  for (std::size_t f = 0; f < routes.size(); ++f) {
    for (const int c : routes[f]) load[static_cast<std::size_t>(c)] += r[f];
  }
  for (std::size_t c = 0; c < caps.size(); ++c) {
    EXPECT_LE(load[c], caps[c] + 1e-9) << "channel " << c;
  }
  for (std::size_t f = 0; f < routes.size(); ++f) {
    bool saturated = false;
    for (const int c : routes[f]) {
      if (load[static_cast<std::size_t>(c)] >=
          caps[static_cast<std::size_t>(c)] - 1e-6) {
        saturated = true;
      }
    }
    EXPECT_TRUE(saturated) << "flow " << f << " could be increased";
  }
}

TEST(MaxMin, ManyFlowsOneChannel) {
  std::vector<std::vector<int>> routes(100, std::vector<int>{0});
  const auto r = rates({50.0}, routes);
  for (const double v : r) EXPECT_NEAR(v, 0.5, 1e-9);
}

}  // namespace
}  // namespace blink::sim
