#include <gtest/gtest.h>

#include "blink/common/rng.h"
#include "blink/solver/ilp.h"

namespace blink::solver {
namespace {

TEST(Ilp, SimpleKnapsackLike) {
  // max x0 + x1 + x2 s.t. x0 + x1 <= 1, x1 + x2 <= 1 -> pick x0, x2.
  LpProblem lp;
  lp.c = {1.0, 1.0, 1.0};
  lp.a = {{1.0, 1.0, 0.0}, {0.0, 1.0, 1.0}};
  lp.b = {1.0, 1.0};
  const auto sol = solve_01(lp);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 0.0, 1e-9);
  EXPECT_NEAR(sol.x[2], 1.0, 1e-9);
}

TEST(Ilp, FractionalLpRoundsDown) {
  // LP optimum is x = (0.5, 0.5, 0.5) with objective 1.5 on the odd cycle;
  // the integer optimum is 1.
  LpProblem lp;
  lp.c = {1.0, 1.0, 1.0};
  lp.a = {{1.0, 1.0, 0.0}, {0.0, 1.0, 1.0}, {1.0, 0.0, 1.0}};
  lp.b = {1.0, 1.0, 1.0};
  const auto sol = solve_01(lp);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);
}

TEST(Ilp, ZeroIsAlwaysFeasible) {
  LpProblem lp;
  lp.c = {5.0};
  lp.a = {{10.0}};
  lp.b = {1.0};  // x0 = 1 infeasible (10 > 1)
  const auto sol = solve_01(lp);
  ASSERT_TRUE(sol.feasible);
  EXPECT_NEAR(sol.objective, 0.0, 1e-12);
}

TEST(Ilp, WeightedObjective) {
  // Prefer one heavy variable over two light ones sharing its capacity.
  LpProblem lp;
  lp.c = {3.0, 1.0, 1.0};
  lp.a = {{1.0, 1.0, 0.0}, {1.0, 0.0, 1.0}};
  lp.b = {1.0, 1.0};
  const auto sol = solve_01(lp);
  EXPECT_NEAR(sol.objective, 3.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-9);
}

// Exhaustive check against brute force on random packing instances.
TEST(Ilp, MatchesBruteForceOnRandomInstances) {
  Rng rng(2024);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.next_int(1, 10));
    const std::size_t m = static_cast<std::size_t>(rng.next_int(1, 5));
    LpProblem lp;
    lp.c.resize(n);
    for (auto& c : lp.c) c = static_cast<double>(rng.next_int(0, 5));
    lp.a.assign(m, std::vector<double>(n, 0.0));
    lp.b.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        lp.a[i][j] = static_cast<double>(rng.next_int(0, 3));
      }
      lp.b[i] = static_cast<double>(rng.next_int(0, 6));
    }
    double best = 0.0;
    for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
      double obj = 0.0;
      bool ok = true;
      for (std::size_t i = 0; i < m && ok; ++i) {
        double lhs = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          if (mask & (1ull << j)) lhs += lp.a[i][j];
        }
        ok = lhs <= lp.b[i] + 1e-9;
      }
      if (ok) {
        for (std::size_t j = 0; j < n; ++j) {
          if (mask & (1ull << j)) obj += lp.c[j];
        }
        best = std::max(best, obj);
      }
    }
    const auto sol = solve_01(lp);
    ASSERT_TRUE(sol.feasible) << trial;
    EXPECT_NEAR(sol.objective, best, 1e-6) << trial;
    // Solution itself must be feasible and 0/1.
    for (std::size_t i = 0; i < m; ++i) {
      double lhs = 0.0;
      for (std::size_t j = 0; j < n; ++j) lhs += lp.a[i][j] * sol.x[j];
      EXPECT_LE(lhs, lp.b[i] + 1e-6);
    }
    for (const double x : sol.x) {
      EXPECT_TRUE(x == 0.0 || x == 1.0) << x;
    }
  }
}

}  // namespace
}  // namespace blink::solver
