// Cross-module integration tests: Blink vs the NCCL-like baseline across the
// paper's unique configurations, asserting the paper's *qualitative* claims
// end to end (who wins, by roughly what factor).
#include <gtest/gtest.h>

#include <cmath>

#include "blink/baselines/nccl_like.h"
#include "blink/blink/communicator.h"
#include "blink/dnn/training.h"
#include "blink/topology/binning.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink {
namespace {

// Blink's broadcast never loses to NCCL on any unique connected DGX-1V
// configuration (Figure 15's headline).
class BroadcastSweep : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastSweep, BlinkAtLeastMatchesNcclEverywhere) {
  const auto machine = topo::make_dgx1v();
  const double bytes = 500e6;
  for (const auto& bin :
       topo::unique_configs(machine, GetParam(), /*connected_only=*/true)) {
    const auto topo = topo::induced_topology(machine, bin.representative);
    Communicator blink_comm(topo);
    baselines::NcclCommunicator nccl(topo);
    const double blink_bw = blink_comm.broadcast(bytes, 0).algorithm_bw;
    const double nccl_bw = nccl.broadcast(bytes, 0).algorithm_bw;
    // Equal packed rates can differ a few percent in execution: the
    // NCCL-like baseline runs fused persistent kernels (lower per-chunk
    // command cost) while Blink's CodeGen issues discrete copies + events,
    // so on ring-friendly configs the two land within a small band of each
    // other ("NCCL matches Blink", §5.2.1).
    EXPECT_GE(blink_bw, 0.92 * nccl_bw)
        << ::testing::PrintToString(bin.representative);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BroadcastSweep,
                         ::testing::Values(3, 4, 5, 6, 7, 8));

TEST(Integration, BlinkWinsBigWhereNcclFallsToPcie) {
  // Figure 2b / §5.2.1: partially connected configs give Blink multi-x wins.
  const auto machine = topo::make_dgx1v();
  const auto topo =
      topo::induced_topology(machine, std::vector<int>{1, 4, 5, 6});
  Communicator blink_comm(topo);
  baselines::NcclCommunicator nccl(topo);
  const double bytes = 500e6;
  const double speedup = blink_comm.broadcast(bytes, 0).algorithm_bw /
                         nccl.broadcast(bytes, 0).algorithm_bw;
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 20.0);
}

TEST(Integration, AllReduceGeoMeanSpeedupAtLeastOne) {
  const auto machine = topo::make_dgx1v();
  double log_sum = 0.0;
  int count = 0;
  for (const int k : {3, 5, 7}) {
    for (const auto& bin :
         topo::unique_configs(machine, k, /*connected_only=*/true)) {
      const auto topo = topo::induced_topology(machine, bin.representative);
      Communicator blink_comm(topo);
      baselines::NcclCommunicator nccl(topo);
      const double ratio = blink_comm.all_reduce(100e6).algorithm_bw /
                           nccl.all_reduce(100e6).algorithm_bw;
      log_sum += std::log(ratio);
      ++count;
    }
  }
  const double geo_mean = std::exp(log_sum / count);
  // The paper reports ~2x geometric mean across all 46 configs.
  EXPECT_GT(geo_mean, 1.2);
}

TEST(Integration, Dgx2SmallSizeLatencyAdvantage) {
  // Figures 19/20: one-hop trees beat double binary trees / rings at small
  // sizes by ~3x in latency.
  const auto topo = topo::make_dgx2();
  Communicator blink_comm(topo);
  baselines::NcclCommunicator nccl(topo);
  const double small = 64e3;
  const double blink_lat = blink_comm.all_reduce(small).seconds;
  const double nccl_lat = nccl.all_reduce(small).seconds;
  EXPECT_GT(nccl_lat / blink_lat, 2.0);
}

TEST(Integration, Dgx2LargeSizeNoRegression) {
  const auto topo = topo::make_dgx2();
  Communicator blink_comm(topo);
  baselines::NcclCommunicator nccl(topo);
  const double blink_bw = blink_comm.all_reduce(1e9).algorithm_bw;
  const double nccl_bw = nccl.all_reduce(1e9).algorithm_bw;
  EXPECT_GE(blink_bw, nccl_bw * 0.95);
}

TEST(Integration, EndToEndTrainingImproves) {
  // Figure 18's mechanism: on a fragmented allocation Blink's faster
  // AllReduce shortens the training iteration.
  const auto machine = topo::make_dgx1v();
  const auto topo =
      topo::induced_topology(machine, std::vector<int>{1, 4, 5, 7});
  Communicator blink_comm(topo);
  baselines::NcclCommunicator nccl(topo);
  const auto model = dnn::vgg16();
  dnn::TrainingOptions opts;
  opts.num_gpus = topo.num_gpus;
  const auto blink_it = dnn::simulate_iteration(
      model, dnn::GpuGeneration::kV100,
      [&](double b) { return blink_comm.all_reduce(b).seconds; }, opts);
  const auto nccl_it = dnn::simulate_iteration(
      model, dnn::GpuGeneration::kV100,
      [&](double b) { return nccl.all_reduce(b).seconds; }, opts);
  EXPECT_LT(blink_it.iteration_seconds, nccl_it.iteration_seconds);
  EXPECT_LT(blink_it.exposed_comm_seconds, nccl_it.exposed_comm_seconds);
}

TEST(Integration, TheoreticalSpeedupMatchesMeasuredDirection) {
  // Figure 14 vs Figures 15-17: wherever the packed rate exceeds what rings
  // deliver, the measured throughput ratio should agree in direction.
  const auto machine = topo::make_dgx1v();
  const auto topo =
      topo::induced_topology(machine, std::vector<int>{0, 1, 2, 3});
  Communicator blink_comm(topo);
  baselines::NcclCommunicator nccl(topo);
  const double packed_rate = blink_comm.tree_set(0).rate;
  const double ring_rate =
      nccl.ring_plan().num_directed() * topo.nvlink_lane_bw;
  const double measured_ratio = blink_comm.broadcast(500e6, 0).algorithm_bw /
                                nccl.broadcast(500e6, 0).algorithm_bw;
  if (packed_rate > 1.1 * ring_rate) {
    EXPECT_GT(measured_ratio, 1.05);
  }
}

}  // namespace
}  // namespace blink
