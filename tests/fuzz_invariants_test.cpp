// The invariant fuzzer's CI smoke gate: a fixed-seed corpus over random zoo
// fabrics must come back clean, case seeds must stay stable (repro lines
// outlive code motion), injected violations must be caught AND reproduce
// from the printed seed alone, and induced sub-allocations of zoo shapes
// must stay valid and compilable. Long runs ride tools/blink_fuzz
// (--iters N --seed S); this suite keeps the per-commit cost small.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "blink/blink/communicator.h"
#include "blink/common/rng.h"
#include "blink/fuzz/fuzz.h"
#include "blink/topology/discovery.h"
#include "blink/topology/zoo.h"

namespace blink::fuzz {
namespace {

// The CI corpus seed; tools/blink_fuzz defaults to the same one so a ctest
// failure here replays directly with `blink_fuzz --case 0x<seed>`.
constexpr std::uint64_t kCorpusSeed = 20260808;

TEST(FuzzInvariants, FixedSeedCorpusIsClean) {
  FuzzOptions options;
  options.workers = 1;  // deterministic cost; results never depend on this
  const FuzzReport report = run(kCorpusSeed, 32, options);
  for (const auto& f : report.failures) {
    ADD_FAILURE() << f.invariant << " case=" << std::hex << f.case_seed
                  << " fabric='" << f.fabric << "' detail='" << f.detail
                  << "' repro='" << f.repro << "'";
  }
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cases, 32u);
  // The corpus must exercise both regimes, or the gate is weaker than it
  // claims (the generator's server-count draw covers [1, 3] by default).
  EXPECT_GT(report.single_server_cases, 0u);
  EXPECT_GT(report.multi_server_cases, 0u);
  EXPECT_EQ(report.single_server_cases + report.multi_server_cases,
            report.cases);
  EXPECT_GT(report.plans, report.cases);  // several shapes per case
  EXPECT_GT(report.executions, report.plans);
}

TEST(FuzzInvariants, CaseSeedsAreStable) {
  // Golden values: a repro line printed by an old build must replay the same
  // case forever. Changing the seed derivation silently invalidates every
  // recorded failure, so it fails loudly here instead.
  EXPECT_EQ(case_seed(kCorpusSeed, 0), 0x0b886a4f38500b21ULL);
  EXPECT_EQ(case_seed(kCorpusSeed, 1), 0xd6927cc28841f924ULL);
  EXPECT_EQ(case_seed(kCorpusSeed, 2), 0xe3f4b2a10be8e643ULL);
  EXPECT_EQ(case_seed(kCorpusSeed, 3), 0x0005ba03136f63c4ULL);
  // Neighbouring indices decorrelate.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 64; ++i) seeds.insert(case_seed(kCorpusSeed, i));
  EXPECT_EQ(seeds.size(), 64u);
}

TEST(FuzzInvariants, WorkerCountDoesNotChangeTheReport) {
  FuzzOptions serial;
  serial.workers = 1;
  FuzzOptions fanned;
  fanned.workers = 4;
  const FuzzReport a = run(kCorpusSeed, 8, serial);
  const FuzzReport b = run(kCorpusSeed, 8, fanned);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.single_server_cases, b.single_server_cases);
  EXPECT_EQ(a.multi_server_cases, b.multi_server_cases);
  EXPECT_EQ(a.plans, b.plans);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

// An injected violation must (a) be caught, (b) carry a repro line naming
// its case seed, (c) reproduce from that seed alone, and (d) vanish when
// the same case replays without the injection — proving failures are a
// property of the (seed, options) pair and nothing else.
TEST(FuzzInvariants, InjectedViolationReproducesFromSeedLine) {
  for (const std::string& invariant : {std::string("tree-capacity"),
                                       std::string("nic-bound")}) {
    FuzzOptions inject;
    inject.workers = 1;
    inject.inject = invariant;
    FuzzReport seeded;
    std::uint64_t failing_case = 0;
    for (std::uint64_t i = 0; i < 64 && failing_case == 0; ++i) {
      FuzzReport r;
      run_case(case_seed(kCorpusSeed, i), inject, &r);
      for (const auto& f : r.failures) {
        if (f.invariant == invariant) {
          failing_case = f.case_seed;
          seeded = r;
          break;
        }
      }
    }
    ASSERT_NE(failing_case, 0u) << invariant << " never fired in 64 cases";

    // (b) the repro line names the seed in replayable form.
    bool repro_named = false;
    for (const auto& f : seeded.failures) {
      repro_named = repro_named ||
                    f.repro.find("blink_fuzz --case 0x") != std::string::npos;
    }
    EXPECT_TRUE(repro_named);

    // (c) replaying just that case with the same options fires again.
    FuzzReport replay;
    run_case(failing_case, inject, &replay);
    bool reproduced = false;
    for (const auto& f : replay.failures) {
      reproduced = reproduced || f.invariant == invariant;
    }
    EXPECT_TRUE(reproduced) << invariant << " did not reproduce from seed";

    // (d) without the injection the very same case is clean: the harness
    // detected the planted violation, not a real engine bug.
    FuzzOptions clean;
    clean.workers = 1;
    FuzzReport clean_replay;
    run_case(failing_case, clean, &clean_replay);
    EXPECT_TRUE(clean_replay.ok())
        << invariant << " case fails even without injection";
  }
}

TEST(FuzzInvariants, EveryInjectableInvariantIsAccepted) {
  // The advertised list is exactly what FuzzOptions::inject understands;
  // each one fires within a bounded corpus (keep this cheap: stop at first).
  ASSERT_FALSE(injectable_invariants().empty());
  for (const auto& name : injectable_invariants()) {
    FuzzOptions options;
    options.workers = 1;
    options.inject = name;
    bool fired = false;
    for (std::uint64_t i = 0; i < 96 && !fired; ++i) {
      FuzzReport r;
      run_case(case_seed(kCorpusSeed, i), options, &r);
      for (const auto& f : r.failures) fired = fired || f.invariant == name;
    }
    EXPECT_TRUE(fired) << "--inject " << name << " never fired in 96 cases";
  }
}

// --- induced sub-allocations of zoo shapes (satellite) -----------------------

TEST(FuzzInvariants, InducedZooSubsetsStayValidAndCompile) {
  using topo::induced_topology;
  Rng rng(3);

  // A sparse random mesh: inducing a subset can disconnect the NVLink
  // fabric; the result must still validate and lower via the PCIe fallback.
  topo::zoo::RandomTopologyParams params;
  params.num_gpus = 8;
  params.link_density = 0.0;  // bare spanning tree — subsets often disconnect
  const topo::Topology sparse = topo::zoo::make_random_topology(params, rng);
  const std::vector<int> scattered = {0, 3, 6};
  const topo::Topology induced_sparse = induced_topology(sparse, scattered);
  ASSERT_TRUE(induced_sparse.validate());
  EXPECT_EQ(induced_sparse.num_gpus, 3);
  {
    CommunicatorOptions copts;
    copts.planner_threads = 1;
    Communicator comm(induced_sparse, copts);
    EXPECT_GT(comm.broadcast(4.0e6, 0).seconds, 0.0);
    EXPECT_GT(comm.all_reduce(4.0e6).seconds, 0.0);
  }

  // An NVSwitch box keeps the crossbar for any subset.
  const topo::Topology box = topo::zoo::make_nvswitch_box(8);
  const topo::Topology induced_box = induced_topology(box, scattered);
  ASSERT_TRUE(induced_box.validate());
  EXPECT_TRUE(induced_box.has_nvswitch);
  {
    CommunicatorOptions copts;
    copts.planner_threads = 1;
    Communicator comm(induced_box, copts);
    EXPECT_GT(comm.all_reduce(4.0e6).seconds, 0.0);
  }

  // A PCIe-only host stays PCIe-only and still lowers.
  const topo::Topology pcie = topo::zoo::make_pcie_only_host(6);
  const std::vector<int> pair = {1, 4};  // different PLX, different socket
  const topo::Topology induced_pcie = induced_topology(pcie, pair);
  ASSERT_TRUE(induced_pcie.validate());
  EXPECT_FALSE(induced_pcie.nvlink_connected());
  {
    CommunicatorOptions copts;
    copts.planner_threads = 1;
    Communicator comm(induced_pcie, copts);
    EXPECT_GT(comm.broadcast(4.0e6, 0).seconds, 0.0);
  }

  // Dense random meshes: every 2-GPU induced pair of a clique keeps its lane.
  params.link_density = 1.0;
  const topo::Topology dense = topo::zoo::make_random_topology(params, rng);
  const topo::Topology induced_dense = induced_topology(dense, pair);
  ASSERT_TRUE(induced_dense.validate());
  EXPECT_TRUE(induced_dense.nvlink_connected());
}

}  // namespace
}  // namespace blink::fuzz
