// Concurrency stress for the serving path: many threads compile and execute
// the same and different plan keys on one engine, and the shared PlanCache's
// hit/miss counters must stay exactly consistent.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "blink/baselines/nccl_like.h"
#include "blink/blink/communicator.h"
#include "blink/blink/multiserver.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink {
namespace {

topo::Topology alloc_v100(std::vector<int> gpus) {
  return topo::induced_topology(topo::make_dgx1v(), gpus);
}

struct StressOutcome {
  std::uint64_t compiles = 0;
  // seconds per key, to check every thread saw identical results.
  std::map<std::uint64_t, double> seconds_by_key;
};

// Hammers |engine| from |num_threads| threads, each compiling+executing
// every (bytes) shape |iterations| times. Returns the aggregate.
StressOutcome stress(CollectiveEngine& engine,
                     const std::vector<double>& shapes, int num_threads,
                     int iterations) {
  StressOutcome outcome;
  std::mutex mu;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      // Stagger starting shapes so threads collide on different keys.
      for (int i = 0; i < iterations && !failed.load(); ++i) {
        const double bytes =
            shapes[static_cast<std::size_t>(t + i) % shapes.size()];
        try {
          const auto plan =
              engine.compile(CollectiveKind::kAllReduce, bytes);
          const CollectiveResult r = engine.execute(*plan);
          const std::lock_guard<std::mutex> lock(mu);
          ++outcome.compiles;
          const auto key = static_cast<std::uint64_t>(bytes);
          const auto it = outcome.seconds_by_key.find(key);
          if (it == outcome.seconds_by_key.end()) {
            outcome.seconds_by_key[key] = r.seconds;
          } else if (it->second != r.seconds) {
            failed.store(true);  // nondeterminism across threads
          }
        } catch (...) {
          failed.store(true);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  return outcome;
}

// compile() fully serializes under the engine mutex, so the counters are
// exact: every compile is one cache lookup, and only the first lookup of
// each distinct key may miss.
void check_counters(const CollectiveEngine& engine,
                    const StressOutcome& outcome, std::size_t num_keys) {
  const PlanCache& cache = engine.plan_cache();
  EXPECT_EQ(cache.hits() + cache.misses(), outcome.compiles);
  EXPECT_EQ(cache.misses(), num_keys);  // zero duplicate recompiles
  EXPECT_EQ(cache.size(), num_keys);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(outcome.seconds_by_key.size(), num_keys);
}

TEST(PlanCacheStress, ConcurrentSameAndDifferentKeysBlink) {
  CommunicatorOptions options;
  // A fixed chunk size keeps each miss cheap (no MIAD probing) so the test
  // stresses contention, not the tuner.
  options.codegen.chunk_bytes = 1ull << 20;
  Communicator comm(alloc_v100({4, 5, 6, 7}), options);
  const std::vector<double> shapes{4e6, 8e6, 16e6, 32e6};
  const auto outcome = stress(comm, shapes, /*num_threads=*/8,
                              /*iterations=*/25);
  EXPECT_EQ(outcome.compiles, 8u * 25u);
  check_counters(comm, outcome, shapes.size());
}

// The cluster engine serves concurrently like any other: three-phase
// compiles serialize under the engine mutex (exact counters, zero duplicate
// recompiles) while executes run in parallel with identical results.
TEST(PlanCacheStress, ConcurrentClusterEngine) {
  const auto machine = topo::make_dgx1v();
  ClusterCommunicator cluster(
      {topo::induced_topology(machine, std::vector<int>{0, 1, 2}),
       topo::induced_topology(machine, std::vector<int>{4, 5, 6, 7})});
  const std::vector<double> shapes{8e6, 16e6, 24e6};
  const auto outcome = stress(cluster, shapes, /*num_threads=*/6,
                              /*iterations=*/15);
  EXPECT_EQ(outcome.compiles, 6u * 15u);
  check_counters(cluster, outcome, shapes.size());
}

TEST(PlanCacheStress, ConcurrentBaselineBackend) {
  baselines::NcclCommunicator nccl(alloc_v100({0, 1, 2, 3}));
  const std::vector<double> shapes{2e6, 6e6, 18e6};
  const auto outcome = stress(nccl, shapes, /*num_threads=*/6,
                              /*iterations=*/20);
  EXPECT_EQ(outcome.compiles, 6u * 20u);
  check_counters(nccl, outcome, shapes.size());
}

// Concurrent execute() of one shared plan: memoization under the plan's own
// lock must return bit-identical results everywhere.
TEST(PlanCacheStress, ConcurrentExecuteSharedPlan) {
  CommunicatorOptions options;
  options.codegen.chunk_bytes = 1ull << 20;
  options.memoize = false;  // force every execute through the simulator
  Communicator comm(alloc_v100({1, 4, 5, 7}), options);
  const auto plan = comm.compile(CollectiveKind::kBroadcast, 24e6, 0);
  const CollectiveResult reference = comm.execute(*plan);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        const CollectiveResult r = comm.execute(*plan);
        if (r.seconds != reference.seconds ||
            r.algorithm_bw != reference.algorithm_bw) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace blink
