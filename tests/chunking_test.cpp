#include <gtest/gtest.h>

#include <cmath>

#include "blink/blink/chunking.h"

namespace blink {
namespace {

// Synthetic throughput curve with a knee: overhead-dominated below, pipeline
// -stall-dominated above (the Figure 12 shape).
double knee_curve(std::uint64_t chunk, double knee) {
  const double x = static_cast<double>(chunk);
  const double overhead = 1.0 / (1.0 + knee / x);       // rises with chunk
  const double stall = 1.0 / (1.0 + x / (8.0 * knee));  // falls with chunk
  return 100e9 * overhead * stall;
}

TEST(Miad, FindsKneeOfSyntheticCurve) {
  const double knee = 4.0 * (1 << 20);
  const auto result =
      tune_chunk_size([&](std::uint64_t c) { return knee_curve(c, knee); });
  // The optimum of the curve is at sqrt(8)*knee ~ 11.3 MiB; MIAD should land
  // within a small factor.
  const double selected = static_cast<double>(result.selected_chunk);
  EXPECT_GT(selected, 2.0 * (1 << 20));
  EXPECT_LT(selected, 64.0 * (1 << 20));
  EXPECT_GT(result.selected_throughput, 0.0);
}

TEST(Miad, MultiplicativePhaseDoubles) {
  std::vector<std::uint64_t> probed;
  tune_chunk_size([&](std::uint64_t c) {
    probed.push_back(c);
    return static_cast<double>(c);  // monotonically improving
  });
  ASSERT_GE(probed.size(), 3u);
  EXPECT_EQ(probed[1], probed[0] * 2);
  EXPECT_EQ(probed[2], probed[1] * 2);
}

TEST(Miad, StopsAtMaxChunk) {
  MiadOptions opts;
  opts.max_chunk = 8ull << 20;
  const auto result = tune_chunk_size(
      [](std::uint64_t c) { return static_cast<double>(c); }, opts);
  EXPECT_LE(result.selected_chunk, opts.max_chunk);
  EXPECT_EQ(result.selected_chunk, opts.max_chunk);
}

TEST(Miad, AdditiveDecreaseAfterOvershoot) {
  // Curve peaks at 4 MiB then falls: the tuner must probe below the
  // overshoot point after the multiplicative phase.
  const double peak = 4.0 * (1 << 20);
  std::vector<std::uint64_t> probed;
  const auto result = tune_chunk_size([&](std::uint64_t c) {
    probed.push_back(c);
    const double x = static_cast<double>(c);
    return 1e9 / (1.0 + std::fabs(x - peak) / peak);
  });
  bool decreased = false;
  for (std::size_t i = 1; i < probed.size(); ++i) {
    if (probed[i] < probed[i - 1]) decreased = true;
  }
  EXPECT_TRUE(decreased);
  EXPECT_NEAR(static_cast<double>(result.selected_chunk), peak, peak);
}

TEST(Miad, RespectsIterationBudget) {
  MiadOptions opts;
  opts.max_iterations = 5;
  const auto result = tune_chunk_size(
      [](std::uint64_t c) { return static_cast<double>(c % 977); }, opts);
  EXPECT_LE(result.trace.size(), 6u);  // initial + budget slack
}

TEST(Miad, TraceRecordsEveryProbe) {
  int calls = 0;
  const auto result = tune_chunk_size([&](std::uint64_t c) {
    ++calls;
    return static_cast<double>(c);
  });
  EXPECT_EQ(static_cast<int>(result.trace.size()), calls);
  EXPECT_EQ(result.trace.front().chunk_bytes, MiadOptions{}.initial_chunk);
}

TEST(Miad, SelectedMatchesBestProbe) {
  const auto result = tune_chunk_size([](std::uint64_t c) {
    return knee_curve(c, 2.0 * (1 << 20));
  });
  double best = 0.0;
  std::uint64_t best_chunk = 0;
  for (const auto& it : result.trace) {
    if (it.throughput > best) {
      best = it.throughput;
      best_chunk = it.chunk_bytes;
    }
  }
  EXPECT_EQ(result.selected_chunk, best_chunk);
  EXPECT_DOUBLE_EQ(result.selected_throughput, best);
}

}  // namespace
}  // namespace blink
