#include <gtest/gtest.h>

#include <vector>

#include "blink/blink/communicator.h"
#include "blink/blink/multiserver.h"
#include "blink/packing/packing.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink {
namespace {

topo::Topology alloc_v100(std::vector<int> gpus) {
  return topo::induced_topology(topo::make_dgx1v(), gpus);
}

const CollectiveKind kAllKinds[] = {
    CollectiveKind::kBroadcast,    CollectiveKind::kGather,
    CollectiveKind::kReduce,       CollectiveKind::kAllReduce,
    CollectiveKind::kAllGather,    CollectiveKind::kReduceScatter,
};

bool identical(const CollectiveResult& a, const CollectiveResult& b) {
  return a.seconds == b.seconds && a.bytes == b.bytes &&
         a.algorithm_bw == b.algorithm_bw && a.num_trees == b.num_trees &&
         a.num_chunks == b.num_chunks && a.num_ops == b.num_ops;
}

// Acceptance: compile + execute round-trips match the legacy one-shot
// methods for all six collective kinds.
TEST(Plan, CompileExecuteMatchesOneShot) {
  Communicator comm(topo::make_dgx1v());
  Communicator fresh(topo::make_dgx1v());
  const double bytes = 200e6;
  for (const CollectiveKind kind : kAllKinds) {
    const auto plan = comm.compile(kind, bytes);
    const CollectiveResult split = comm.execute(*plan);
    CollectiveResult one_shot;
    switch (kind) {
      case CollectiveKind::kBroadcast:
        one_shot = fresh.broadcast(bytes, 0);
        break;
      case CollectiveKind::kGather:
        one_shot = fresh.gather(bytes, 0);
        break;
      case CollectiveKind::kReduce:
        one_shot = fresh.reduce(bytes, 0);
        break;
      case CollectiveKind::kAllReduce:
        one_shot = fresh.all_reduce(bytes);
        break;
      case CollectiveKind::kAllGather:
        one_shot = fresh.all_gather(bytes);
        break;
      case CollectiveKind::kReduceScatter:
        one_shot = fresh.reduce_scatter(bytes);
        break;
    }
    EXPECT_TRUE(identical(split, one_shot)) << to_string(kind);
  }
}

// A cached plan re-executed N times returns bit-identical results — with
// memoization off, so every execute() really re-runs the simulation.
TEST(Plan, ReExecutionBitIdentical) {
  CommunicatorOptions opts;
  opts.memoize = false;
  Communicator comm(alloc_v100({1, 4, 5, 7}), opts);
  for (const CollectiveKind kind :
       {CollectiveKind::kBroadcast, CollectiveKind::kAllReduce}) {
    const auto plan = comm.compile(kind, 100e6);
    const CollectiveResult first = comm.execute(*plan);
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE(identical(first, comm.execute(*plan))) << to_string(kind);
    }
  }
}

// Every tree set referenced by a cached plan respects link capacities.
TEST(Plan, CachedTreeSetsRespectCapacities) {
  Communicator comm(topo::make_dgx1v());
  for (const CollectiveKind kind : kAllKinds) {
    const auto plan = comm.compile(kind, 100e6);
    EXPECT_FALSE(plan->tree_sets().empty()) << to_string(kind);
    for (const auto& set : plan->tree_sets()) {
      EXPECT_TRUE(packing::respects_capacities(set->graph, set->trees))
          << to_string(kind);
    }
  }
}

// Cache eviction never invalidates an outstanding shared plan.
TEST(Plan, EvictionKeepsOutstandingPlanValid) {
  CommunicatorOptions opts;
  opts.plan_cache_capacity = 2;
  Communicator comm(alloc_v100({4, 5, 6, 7}), opts);
  const auto held = comm.compile(CollectiveKind::kBroadcast, 64e6, 0);
  const CollectiveResult before = comm.execute(*held);
  // Overflow the two-entry cache so |held|'s slot is evicted.
  for (const double bytes : {1e6, 2e6, 3e6, 4e6, 5e6}) {
    comm.compile(CollectiveKind::kBroadcast, bytes, 0);
  }
  EXPECT_LE(comm.plan_cache().size(), 2u);
  EXPECT_GT(comm.plan_cache().evictions(), 0u);
  // The evicted-but-held plan still executes, bit-identically.
  EXPECT_TRUE(identical(before, comm.execute(*held)));
  // Recompiling the evicted shape is a miss that produces an equivalent plan.
  const auto recompiled = comm.compile(CollectiveKind::kBroadcast, 64e6, 0);
  EXPECT_NE(recompiled.get(), held.get());
  EXPECT_TRUE(identical(before, comm.execute(*recompiled)));
}

TEST(Plan, CacheHitsSkipRecompilation) {
  Communicator comm(alloc_v100({0, 1, 2, 3}));
  const auto first = comm.compile(CollectiveKind::kAllReduce, 50e6);
  EXPECT_EQ(comm.plan_cache().hits(), 0u);
  const auto second = comm.compile(CollectiveKind::kAllReduce, 50e6);
  EXPECT_EQ(second.get(), first.get());  // the same compiled artifact
  EXPECT_EQ(comm.plan_cache().hits(), 1u);
  // A different shape misses.
  comm.compile(CollectiveKind::kAllReduce, 51e6);
  EXPECT_EQ(comm.plan_cache().hits(), 1u);
  EXPECT_GE(comm.plan_cache().misses(), 2u);
}

// Regression: PlanKey used to truncate the (double) byte size to uint64, so
// two fractional sizes like 1024.2 and 1024.7 collided and the second
// caller silently got a plan compiled for different bytes. The key is the
// exact double bit pattern now.
TEST(Plan, FractionalByteSizesDoNotCollide) {
  Communicator comm(alloc_v100({0, 1, 2, 3}));
  const auto a = comm.compile(CollectiveKind::kBroadcast, 1024.2, 0);
  const auto b = comm.compile(CollectiveKind::kBroadcast, 1024.7, 0);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(a->bytes(), 1024.2);
  EXPECT_EQ(b->bytes(), 1024.7);
  // Each size still hits its own plan.
  EXPECT_EQ(comm.compile(CollectiveKind::kBroadcast, 1024.2, 0).get(),
            a.get());
  EXPECT_EQ(comm.compile(CollectiveKind::kBroadcast, 1024.7, 0).get(),
            b.get());
  EXPECT_EQ(comm.plan_cache().misses(), 2u);
  EXPECT_EQ(comm.plan_cache().hits(), 2u);
}

// Solo execute() and grouped run() route algorithm_bw through one shared
// helper, so a plan run alone and the same plan run as a single-member
// group report the same bandwidth.
TEST(Plan, SoloAndGroupedBandwidthAgree) {
  Communicator comm(alloc_v100({0, 1, 2, 3}));
  const auto solo = comm.execute(*comm.compile(CollectiveKind::kAllReduce,
                                               50e6));
  const std::vector<CollectiveRequest> reqs{
      {CollectiveKind::kAllReduce, 50e6, -1, 0}};
  const auto grouped = comm.run(reqs);
  ASSERT_EQ(grouped.size(), 1u);
  EXPECT_DOUBLE_EQ(grouped[0].seconds, solo.seconds);
  EXPECT_DOUBLE_EQ(grouped[0].algorithm_bw, solo.algorithm_bw);
  EXPECT_DOUBLE_EQ(solo.algorithm_bw, solo.bytes / solo.seconds);
}

TEST(Plan, LruKeepsRecentlyUsedPlans) {
  CommunicatorOptions opts;
  opts.plan_cache_capacity = 2;
  Communicator comm(alloc_v100({5, 6, 7}), opts);
  const auto a = comm.compile(CollectiveKind::kBroadcast, 1e6, 0);
  comm.compile(CollectiveKind::kBroadcast, 2e6, 0);   // B
  comm.compile(CollectiveKind::kBroadcast, 1e6, 0);   // touch A -> B is LRU
  comm.compile(CollectiveKind::kBroadcast, 3e6, 0);   // C evicts B
  const auto hits = comm.plan_cache().hits();
  EXPECT_EQ(comm.compile(CollectiveKind::kBroadcast, 1e6, 0).get(), a.get());
  EXPECT_EQ(comm.plan_cache().hits(), hits + 1);      // A survived
  comm.compile(CollectiveKind::kBroadcast, 2e6, 0);   // B was evicted
  EXPECT_EQ(comm.plan_cache().hits(), hits + 1);
}

// A fixed codegen.chunk_bytes wins over MIAD: tuning may report the trace,
// but the primed plan (and every later compile) keeps the configured chunk.
TEST(Plan, TuningRespectsFixedChunkSize) {
  CommunicatorOptions opts;
  opts.codegen.chunk_bytes = 4ull << 20;
  Communicator comm(alloc_v100({0, 1, 2, 3}), opts);
  comm.tune_chunk_size(CollectiveKind::kBroadcast, 200e6, 0);
  const auto plan = comm.compile(CollectiveKind::kBroadcast, 200e6, 0);
  EXPECT_GT(comm.plan_cache().hits(), 0u);  // tuning primed the cache...
  EXPECT_EQ(plan->chunk_bytes(), 4ull << 20);  // ...with the fixed chunk
}

TEST(Plan, ExecuteRejectsForeignPlan) {
  Communicator a(alloc_v100({0, 1, 2, 3}));
  Communicator b(alloc_v100({0, 1, 2, 3}));
  const auto plan = a.compile(CollectiveKind::kBroadcast, 1e6, 0);
  EXPECT_THROW(b.execute(*plan), std::invalid_argument);
}

TEST(Plan, CompileRejectsBadArguments) {
  Communicator comm(alloc_v100({0, 1, 2, 3}));
  EXPECT_THROW(comm.compile(CollectiveKind::kBroadcast, 0.0, 0),
               std::invalid_argument);
  EXPECT_THROW(comm.compile(CollectiveKind::kBroadcast, -1.0, 0),
               std::invalid_argument);
  EXPECT_THROW(comm.compile(CollectiveKind::kBroadcast, 1e6, 99),
               std::invalid_argument);
  // Only -1 means "pick the default root"; other negatives are errors.
  EXPECT_THROW(comm.compile(CollectiveKind::kBroadcast, 1e6, -2),
               std::invalid_argument);
}

// Batched run(): per-request completion under fabric contention.
TEST(Plan, GroupRunSharesFabric) {
  Communicator comm(topo::make_dgx1v());
  const double bytes = 100e6;
  const CollectiveResult solo = comm.broadcast(bytes, 0);
  const std::vector<CollectiveRequest> reqs{
      {CollectiveKind::kBroadcast, bytes, 0},
      {CollectiveKind::kBroadcast, bytes, 0},
  };
  const auto results = comm.run(reqs);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_DOUBLE_EQ(r.bytes, bytes);
    // Contending with a twin can only slow a request down...
    EXPECT_GE(r.seconds, solo.seconds * 0.999);
    // ...but fair sharing keeps it within ~2x of running alone.
    EXPECT_LE(r.seconds, solo.seconds * 2.2);
  }
}

TEST(Plan, GroupRunMixedKindsAndEmpty) {
  Communicator comm(alloc_v100({4, 5, 6, 7}));
  EXPECT_TRUE(comm.run({}).empty());
  const std::vector<CollectiveRequest> reqs{
      {CollectiveKind::kBroadcast, 32e6, 0},
      {CollectiveKind::kAllReduce, 16e6, -1},
      {CollectiveKind::kReduce, 8e6, 1},
  };
  const auto results = comm.run(reqs);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i].bytes, reqs[i].bytes);
    EXPECT_GT(results[i].seconds, 0.0);
  }
  // Group members hit the plan cache for later solo calls.
  const auto hits = comm.plan_cache().hits();
  comm.broadcast(32e6, 0);
  EXPECT_GT(comm.plan_cache().hits(), hits);
}

// The cluster communicator exposes the same plan/execute split.
TEST(Plan, ClusterCompileExecute) {
  const auto machine = topo::make_dgx1v();
  ClusterCommunicator cluster(
      {topo::induced_topology(machine, std::vector<int>{0, 1, 2}),
       topo::induced_topology(machine, std::vector<int>{4, 5, 6, 7})});
  const auto plan = cluster.compile(CollectiveKind::kAllReduce, 64e6);
  const auto a = cluster.execute(*plan);
  const auto b = cluster.all_reduce(64e6);  // cache hit on the same plan
  EXPECT_TRUE(identical(a, b));
  EXPECT_GT(cluster.plan_cache().hits(), 0u);
  for (const auto& set : plan->tree_sets()) {
    EXPECT_TRUE(packing::respects_capacities(set->graph, set->trees));
  }
}

}  // namespace
}  // namespace blink
