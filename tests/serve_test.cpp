// The plan-serving subsystem: sharding, admission control (quota /
// in-flight / queue bounds, all typed), warm-vs-cold accounting, plan-store
// lifecycle (flush, warm restart, GC protection of live shards), and
// concurrent multi-tenant stress.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "blink/blink/communicator.h"
#include "blink/serve/admission.h"
#include "blink/serve/service.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink::serve {
namespace {

namespace fs = std::filesystem;

// A controllable timeline: admission decisions become a pure function of
// the requests and the times we advance to.
struct FakeClock {
  std::shared_ptr<std::atomic<double>> now =
      std::make_shared<std::atomic<double>>(0.0);
  std::function<double()> fn() const {
    return [now = now] { return now->load(); };
  }
  void advance(double seconds) {
    now->store(now->load() + seconds);
  }
};

FabricSpec spec_v100(std::vector<int> gpus, std::string backend = "blink") {
  return FabricSpec{"dgx1v", std::move(gpus), std::move(backend)};
}

ServeRequest request_for(const std::string& tenant, const FabricSpec& fabric,
                         double bytes,
                         RequestType type = RequestType::kExecute,
                         CollectiveKind kind = CollectiveKind::kAllReduce) {
  ServeRequest request;
  request.tenant = tenant;
  request.type = type;
  request.fabric = fabric;
  request.kind = kind;
  request.bytes = bytes;
  return request;
}

// Service options tuned for tests: single worker (deterministic dispatch
// order), no persistence unless a test opts in.
ServiceOptions test_options(const FakeClock& clock) {
  ServiceOptions options;
  options.num_workers = 1;
  options.clock = clock.fn();
  return options;
}

class TempDir {
 public:
  explicit TempDir(const std::string& name)
      : path_(fs::temp_directory_path() / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

TEST(TokenBucket, DeterministicRefill) {
  TokenBucket bucket(/*rate=*/2.0, /*burst=*/3.0, /*now=*/0.0);
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_TRUE(bucket.try_acquire(0.0));
  EXPECT_FALSE(bucket.try_acquire(0.0));  // burst spent
  EXPECT_FALSE(bucket.try_acquire(0.4));  // 0.8 tokens: not enough
  EXPECT_TRUE(bucket.try_acquire(0.5));   // 1.0 token refilled
  // Refill caps at burst even after a long idle stretch.
  EXPECT_DOUBLE_EQ(bucket.available(100.0), 3.0);
}

TEST(Serve, ExecuteMatchesDirectEngineBitForBit) {
  FakeClock clock;
  PlanService service(test_options(clock));
  const std::vector<int> gpus{4, 5, 6, 7};
  const double bytes = 16e6;
  const ServeResponse response =
      service.handle(request_for("t", spec_v100(gpus), bytes));
  ASSERT_EQ(response.status, ServeStatus::kOk);
  EXPECT_FALSE(response.warm_hit);

  Communicator reference(
      topo::induced_topology(topo::make_dgx1v(), gpus));
  const CollectiveResult direct =
      reference.all_reduce(bytes);
  EXPECT_EQ(response.result.seconds, direct.seconds);
  EXPECT_EQ(response.result.algorithm_bw, direct.algorithm_bw);
  EXPECT_EQ(response.result.num_ops, direct.num_ops);
  EXPECT_EQ(response.shard_fingerprint, reference.fabric_fingerprint());
}

TEST(Serve, DistinctFabricsGetDistinctShards) {
  FakeClock clock;
  PlanService service(test_options(clock));
  EXPECT_EQ(service.handle(request_for("t", spec_v100({0, 1, 2, 3}), 4e6))
                .status,
            ServeStatus::kOk);
  EXPECT_EQ(service.handle(request_for("t", spec_v100({4, 5, 6, 7}), 4e6))
                .status,
            ServeStatus::kOk);
  EXPECT_EQ(service.num_shards(), 2u);
  // Same spec again: no third shard, and the plan is warm.
  const ServeResponse warm =
      service.handle(request_for("t", spec_v100({0, 1, 2, 3}), 4e6));
  EXPECT_EQ(service.num_shards(), 2u);
  EXPECT_TRUE(warm.warm_hit);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.num_shards, 2u);
  EXPECT_EQ(stats.cache_misses, 2u);
  EXPECT_EQ(stats.totals.compiles, 2u);
  EXPECT_EQ(stats.totals.warm_hits, 1u);
}

TEST(Serve, QuotaExhaustionIsTypedAndRefills) {
  FakeClock clock;
  ServiceOptions options = test_options(clock);
  options.default_quota = TenantQuota{/*rate=*/1.0, /*burst=*/2.0,
                                      /*in_flight=*/64};
  PlanService service(options);
  const FabricSpec fabric = spec_v100({0, 1, 2, 3});
  // Two cold compiles fit the burst; the third is a typed reject.
  EXPECT_EQ(service.handle(request_for("t", fabric, 1e6)).status,
            ServeStatus::kOk);
  EXPECT_EQ(service.handle(request_for("t", fabric, 2e6)).status,
            ServeStatus::kOk);
  const ServeResponse rejected = service.handle(request_for("t", fabric, 3e6));
  EXPECT_EQ(rejected.status, ServeStatus::kRejectedQuota);
  EXPECT_FALSE(rejected.message.empty());
  // Warm traffic is quota-free even with an empty bucket.
  const ServeResponse warm = service.handle(request_for("t", fabric, 1e6));
  EXPECT_EQ(warm.status, ServeStatus::kOk);
  EXPECT_TRUE(warm.warm_hit);
  // The bucket refills with time; the rejected shape then compiles.
  clock.advance(1.0);
  EXPECT_EQ(service.handle(request_for("t", fabric, 3e6)).status,
            ServeStatus::kOk);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.tenants.at("t").rejected_quota, 1u);
  EXPECT_EQ(stats.totals.rejected_quota, 1u);
  // Another tenant has its own bucket: not throttled by t's spending.
  EXPECT_EQ(service.handle(request_for("u", fabric, 5e6)).status,
            ServeStatus::kOk);
}

TEST(Serve, InFlightBoundIsTyped) {
  FakeClock clock;
  ServiceOptions options = test_options(clock);
  options.default_quota.max_in_flight = 2;
  options.queue_capacity = 16;
  PlanService service(options);
  service.pause_workers();
  const FabricSpec fabric = spec_v100({0, 1});
  auto a = service.submit(request_for("t", fabric, 1e6));
  auto b = service.submit(request_for("t", fabric, 2e6));
  auto c = service.submit(request_for("t", fabric, 3e6));
  ASSERT_EQ(c.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(c.get().status, ServeStatus::kRejectedInFlight);
  // Another tenant is not affected by t's in-flight work.
  auto d = service.submit(request_for("u", fabric, 1e6));
  EXPECT_NE(d.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  service.resume_workers();
  EXPECT_EQ(a.get().status, ServeStatus::kOk);
  EXPECT_EQ(b.get().status, ServeStatus::kOk);
  EXPECT_EQ(d.get().status, ServeStatus::kOk);
  EXPECT_EQ(service.stats().tenants.at("t").rejected_in_flight, 1u);
}

TEST(Serve, QueueOverflowIsTyped) {
  FakeClock clock;
  ServiceOptions options = test_options(clock);
  options.queue_capacity = 2;
  PlanService service(options);
  service.pause_workers();
  const FabricSpec fabric = spec_v100({0, 1});
  // Distinct tenants, so the per-tenant in-flight bound never fires first.
  auto a = service.submit(request_for("a", fabric, 1e6));
  auto b = service.submit(request_for("b", fabric, 2e6));
  auto c = service.submit(request_for("c", fabric, 3e6));
  ASSERT_EQ(c.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(c.get().status, ServeStatus::kRejectedQueueFull);
  const ServiceStats paused = service.stats();
  EXPECT_EQ(paused.queue_depth, 2u);
  EXPECT_EQ(paused.queue_high_water, 2u);
  EXPECT_EQ(paused.tenants.at("c").rejected_queue_full, 1u);
  service.resume_workers();
  EXPECT_EQ(a.get().status, ServeStatus::kOk);
  EXPECT_EQ(b.get().status, ServeStatus::kOk);
  // A queue-full reject must not have drained c's token bucket.
  EXPECT_EQ(service.handle(request_for("c", fabric, 3e6)).status,
            ServeStatus::kOk);
}

TEST(Serve, InvalidRequestsAreTypedNotThrown) {
  FakeClock clock;
  PlanService service(test_options(clock));
  // Unknown machine kind.
  ServeRequest bad_machine = request_for("t", spec_v100({0, 1}), 1e6);
  bad_machine.fabric.machine = "dgx9000";
  EXPECT_EQ(service.handle(bad_machine).status, ServeStatus::kInvalidRequest);
  // Unknown backend.
  EXPECT_EQ(service.handle(request_for("t", spec_v100({0, 1}, "mpi"), 1e6))
                .status,
            ServeStatus::kInvalidRequest);
  // GPU id out of range for the machine.
  EXPECT_EQ(service.handle(request_for("t", spec_v100({0, 99}), 1e6)).status,
            ServeStatus::kInvalidRequest);
  // Non-positive size, empty allocation, anonymous tenant.
  EXPECT_EQ(service.handle(request_for("t", spec_v100({0, 1}), 0.0)).status,
            ServeStatus::kInvalidRequest);
  EXPECT_EQ(service.handle(request_for("t", spec_v100({}), 1e6)).status,
            ServeStatus::kInvalidRequest);
  EXPECT_EQ(service.handle(request_for("", spec_v100({0, 1}), 1e6)).status,
            ServeStatus::kInvalidRequest);
  // Root out of range reaches the engine and comes back typed.
  ServeRequest bad_root = request_for("t", spec_v100({0, 1}), 1e6,
                                      RequestType::kExecute,
                                      CollectiveKind::kBroadcast);
  bad_root.root = 7;
  EXPECT_EQ(service.handle(bad_root).status, ServeStatus::kInvalidRequest);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.totals.invalid, 7u);
  EXPECT_EQ(stats.totals.errors, 0u);
}

TEST(Serve, InvalidateDropsPlansAndNextCompileIsCold) {
  FakeClock clock;
  PlanService service(test_options(clock));
  const FabricSpec fabric = spec_v100({0, 1, 2, 3});
  EXPECT_EQ(service.handle(request_for("t", fabric, 4e6)).status,
            ServeStatus::kOk);
  EXPECT_TRUE(service.handle(request_for("t", fabric, 4e6)).warm_hit);
  const ServeResponse invalidated = service.handle(
      request_for("t", fabric, 0.0, RequestType::kInvalidate));
  EXPECT_EQ(invalidated.status, ServeStatus::kOk);
  EXPECT_EQ(invalidated.plans_touched, 1u);
  const ServeResponse after = service.handle(request_for("t", fabric, 4e6));
  EXPECT_EQ(after.status, ServeStatus::kOk);
  EXPECT_FALSE(after.warm_hit);
}

TEST(Serve, PrecompileWarmsAllKindsAndChargesQuota) {
  FakeClock clock;
  ServiceOptions options = test_options(clock);
  options.default_quota.compile_rate = 0.0;  // no refill: burst is the budget
  options.default_quota.compile_burst = 2.0;
  PlanService service(options);
  const FabricSpec fabric = spec_v100({0, 1, 2, 3});

  // One precompile batch-compiles every kind the backend supports at this
  // shape; plans_touched reports the cold count.
  ServeRequest warmup =
      request_for("t", fabric, 16e6, RequestType::kPrecompile);
  warmup.root = 0;
  const ServeResponse first = service.handle(warmup);
  EXPECT_EQ(first.status, ServeStatus::kOk);
  EXPECT_GT(first.plans_touched, 0u);

  // The shape is now fully warm: compile/execute of any kind hits.
  const ServeResponse compile = service.handle(request_for(
      "t", fabric, 16e6, RequestType::kCompile, CollectiveKind::kAllReduce));
  EXPECT_EQ(compile.status, ServeStatus::kOk);
  EXPECT_TRUE(compile.warm_hit);

  // Precompile always charges the compile quota — warm-up is cold work by
  // definition, so it never takes the warm-hit admission bypass (the warm
  // kCompile above did, spending no token). The second precompile spends
  // the last token and finds nothing cold; the third is a typed quota
  // rejection even though it too would find everything warm.
  const ServeResponse second = service.handle(warmup);
  EXPECT_EQ(second.status, ServeStatus::kOk);
  EXPECT_EQ(second.plans_touched, 0u);
  EXPECT_EQ(service.handle(warmup).status, ServeStatus::kRejectedQuota);

  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.totals.compiles, 1u);
  EXPECT_EQ(stats.totals.rejected_quota, 1u);
}

TEST(Serve, FlushWarmRestartAndWarmLoad) {
  TempDir store("blink-serve-warm-restart");
  const FabricSpec fabric = spec_v100({1, 3, 5, 7});
  double cold_seconds = 0.0;
  {
    FakeClock clock;
    ServiceOptions options = test_options(clock);
    options.store_dir = store.path().string();
    PlanService service(options);
    const ServeResponse cold = service.handle(request_for("t", fabric, 8e6));
    ASSERT_EQ(cold.status, ServeStatus::kOk);
    cold_seconds = cold.result.seconds;
    EXPECT_GT(service.flush(), 0u);
    // flush() is idempotent while nothing new was compiled.
    EXPECT_EQ(service.flush(), 0u);
  }
  {
    FakeClock clock;
    ServiceOptions options = test_options(clock);
    options.store_dir = store.path().string();
    PlanService service(options);
    const ServeResponse loaded = service.handle(
        request_for("t", fabric, 0.0, RequestType::kWarmLoad));
    EXPECT_EQ(loaded.status, ServeStatus::kOk);
    EXPECT_EQ(loaded.plans_touched, 1u);
    const ServeResponse warm = service.handle(request_for("t", fabric, 8e6));
    EXPECT_EQ(warm.status, ServeStatus::kOk);
    EXPECT_TRUE(warm.warm_hit);
    EXPECT_EQ(warm.result.seconds, cold_seconds);  // bit-identical schedule
    EXPECT_EQ(service.stats().totals.compiles, 0u);
  }
}

TEST(Serve, WarmLoadWithoutStoreDirIsInvalid) {
  FakeClock clock;
  PlanService service(test_options(clock));
  const ServeResponse response = service.handle(request_for(
      "t", spec_v100({0, 1}), 0.0, RequestType::kWarmLoad));
  EXPECT_EQ(response.status, ServeStatus::kInvalidRequest);
}

TEST(Serve, GcNeverEvictsALiveShardsFreshStoreFile) {
  TempDir store("blink-serve-gc-live");
  FakeClock clock;
  ServiceOptions options = test_options(clock);
  options.store_dir = store.path().string();
  options.gc.max_total_bytes = 4 * 1024;  // far below the decoys' total
  PlanService service(options);
  ASSERT_EQ(service.handle(request_for("t", spec_v100({0, 1, 2, 3}), 8e6))
                .status,
            ServeStatus::kOk);
  ASSERT_GT(service.flush(), 0u);
  std::vector<fs::path> live_files;
  for (const auto& entry : fs::directory_iterator(store.path())) {
    live_files.push_back(entry.path());
  }
  ASSERT_EQ(live_files.size(), 1u);
  // Decoys newer than the live file: naive LRU would evict the live file
  // first, so only the protect list keeps it alive.
  const auto live_mtime = fs::last_write_time(live_files[0]);
  for (int i = 0; i < 4; ++i) {
    const fs::path decoy =
        store.path() / ("plans-deadbeef0000000" + std::to_string(i) + ".bpc");
    std::ofstream(decoy) << std::string(8 * 1024, 'd');
    fs::last_write_time(decoy, live_mtime + std::chrono::seconds(i + 1));
  }
  const StoreGcReport report = service.run_gc();
  EXPECT_EQ(report.files_protected, 1u);
  EXPECT_EQ(report.files_evicted, 4u);
  EXPECT_TRUE(fs::exists(live_files[0]));
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.gc_runs, 1u);  // startup sweep + this one
  EXPECT_EQ(stats.last_gc.files_evicted, 4u);
}

TEST(Serve, AutoBackendShardServes) {
  FakeClock clock;
  PlanService service(test_options(clock));
  const FabricSpec fabric = spec_v100({0, 1, 2, 3}, "auto");
  const ServeResponse cold = service.handle(request_for("t", fabric, 4e6));
  ASSERT_EQ(cold.status, ServeStatus::kOk);
  EXPECT_FALSE(cold.warm_hit);
  const ServeResponse warm = service.handle(request_for("t", fabric, 4e6));
  ASSERT_EQ(warm.status, ServeStatus::kOk);
  EXPECT_TRUE(warm.warm_hit);
  EXPECT_EQ(warm.result.seconds, cold.result.seconds);
}

TEST(Serve, ConcurrentMultiTenantStress) {
  FakeClock clock;
  ServiceOptions options = test_options(clock);
  options.num_workers = 4;
  options.queue_capacity = 512;
  options.default_quota = TenantQuota{/*rate=*/0.0, /*burst=*/1e9,
                                      /*in_flight=*/512};
  // One tenant is starved to force quota rejections amid live traffic.
  options.tenant_quotas["rogue"] = TenantQuota{0.0, 1.0, 512};
  PlanService service(options);
  const std::vector<FabricSpec> fabrics{spec_v100({0, 1, 2, 3}),
                                        spec_v100({4, 5, 6, 7})};
  const std::vector<double> shapes{2e6, 4e6, 8e6};
  std::atomic<std::uint64_t> ok{0}, rejected{0}, unexpected{0};
  std::mutex mu;
  std::map<std::string, double> seconds_by_key;
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([&, t] {
      const std::string tenant =
          t == 0 ? "rogue" : "tenant" + std::to_string(t % 3);
      for (int i = 0; i < 30; ++i) {
        const FabricSpec& fabric =
            fabrics[static_cast<std::size_t>(i + t) % fabrics.size()];
        // The rogue tenant asks for shapes nobody else compiles, so its
        // requests stay cold and its single-token bucket must reject them
        // deterministically (one combo gets compiled, the other five never
        // earn a token with the fake clock frozen).
        const double bytes =
            shapes[static_cast<std::size_t>(i + t) % shapes.size()] +
            (tenant == "rogue" ? 1.0 : 0.0);
        const ServeResponse r =
            service.handle(request_for(tenant, fabric, bytes));
        if (r.status == ServeStatus::kOk) {
          ok.fetch_add(1);
          const std::string key = fabric.gpu_ids[0] == 0
                                      ? "a" + std::to_string(bytes)
                                      : "b" + std::to_string(bytes);
          const std::lock_guard<std::mutex> lock(mu);
          const auto it = seconds_by_key.find(key);
          if (it == seconds_by_key.end()) {
            seconds_by_key[key] = r.result.seconds;
          } else if (it->second != r.result.seconds) {
            unexpected.fetch_add(1);  // nondeterminism across tenants
          }
        } else if (r.status == ServeStatus::kRejectedQuota) {
          rejected.fetch_add(1);
        } else {
          unexpected.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(unexpected.load(), 0u);
  // The rogue tenant's one burst token admits exactly one cold combo; its
  // other five (fabric, shape) combos are rejected on every visit.
  EXPECT_EQ(rejected.load(), 25u);
  EXPECT_EQ(ok.load() + rejected.load(), 8u * 30u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.totals.submitted, 8u * 30u);
  EXPECT_EQ(stats.totals.completed + stats.totals.rejected_quota,
            stats.totals.submitted);
  EXPECT_EQ(stats.totals.errors, 0u);
  EXPECT_EQ(stats.num_shards, 2u);
  // Every served request either hit or compiled; the sums must agree.
  EXPECT_EQ(stats.totals.warm_hits + stats.totals.compiles,
            stats.totals.completed);
  // Exactly one cold compile per distinct plan key: the engines serialize
  // compilation, so the six shared (shard, shape) keys plus the rogue's one
  // admitted combo miss once each. Racing requests that peek cold at
  // admission but find the plan compiled by serve time count as compiles in
  // the tenant view, so compiles >= misses.
  EXPECT_EQ(stats.cache_misses, 7u);
  EXPECT_GE(stats.totals.compiles, stats.cache_misses);
}

TEST(Serve, StatsSnapshotLatencyHistogramsFill) {
  // Real clock so latencies are positive; just checks the histograms count.
  ServiceOptions options;
  options.num_workers = 2;
  PlanService service(options);
  const FabricSpec fabric = spec_v100({0, 1});
  ASSERT_EQ(service
                .handle(request_for("t", fabric, 1e6, RequestType::kCompile))
                .status,
            ServeStatus::kOk);
  ASSERT_EQ(service.handle(request_for("t", fabric, 1e6)).status,
            ServeStatus::kOk);
  const ServiceStats stats = service.stats();
  std::uint64_t compile_total = 0, execute_total = 0;
  for (const std::uint64_t c : stats.compile_latency_us) compile_total += c;
  for (const std::uint64_t c : stats.execute_latency_us) execute_total += c;
  EXPECT_EQ(compile_total, 1u);
  EXPECT_EQ(execute_total, 1u);
}

// A kRepair request: the health event rides in the request's event /
// channel / gpu / factor fields; bytes stay zero (repair is not a
// collective and skips payload validation).
ServeRequest repair_for(const std::string& tenant, const FabricSpec& fabric,
                        const std::string& event,
                        const std::string& channel = "",
                        double factor = 1.0) {
  ServeRequest request = request_for(tenant, fabric, 0.0, RequestType::kRepair);
  request.event = event;
  request.channel = channel;
  request.factor = factor;
  return request;
}

TEST(Serve, RepairRecompilesOnlyFootprintIntersectingPlans) {
  FakeClock clock;
  PlanService service(test_options(clock));
  // A baseline shard: ring lowering reduces on the reduce engines during
  // all-reduce but broadcast is copy-only, so a reduce-channel degrade
  // splits the cache into dropped vs retained.
  const FabricSpec fabric = spec_v100({0, 1, 2, 3}, "ring");
  EXPECT_EQ(service
                .handle(request_for("t", fabric, 4e6, RequestType::kExecute,
                                    CollectiveKind::kAllReduce))
                .status,
            ServeStatus::kOk);
  ServeRequest bcast = request_for("t", fabric, 4e6, RequestType::kExecute,
                                   CollectiveKind::kBroadcast);
  bcast.root = 0;
  EXPECT_EQ(service.handle(bcast).status, ServeStatus::kOk);

  const ServeResponse repaired = service.handle(
      repair_for("t", fabric, "degrade_link", "s0.reduce1", 0.5));
  ASSERT_EQ(repaired.status, ServeStatus::kOk) << repaired.message;
  EXPECT_EQ(repaired.plans_touched, 1u);   // all-reduce dropped + recompiled
  EXPECT_EQ(repaired.plans_retained, 1u);  // broadcast kept warm

  // Repair recompiled the dropped plan in place: both shapes are warm now.
  EXPECT_TRUE(service
                  .handle(request_for("t", fabric, 4e6, RequestType::kExecute,
                                      CollectiveKind::kAllReduce))
                  .warm_hit);
  EXPECT_TRUE(service.handle(bcast).warm_hit);

  const ServiceStats stats = service.stats();
  const std::string key = "dgx1v|ring|0,1,2,3,";
  ASSERT_TRUE(stats.shard_health.count(key));
  const ShardHealthCounters& health = stats.shard_health.at(key);
  EXPECT_EQ(health.repairs, 1u);
  EXPECT_EQ(health.invalidations, 0u);
  EXPECT_EQ(health.plans_dropped, 1u);
  EXPECT_EQ(health.plans_retained, 1u);
}

TEST(Serve, RepairOnBlinkShardDropsEverythingAndRestoreRecovers) {
  FakeClock clock;
  PlanService service(test_options(clock));
  const FabricSpec fabric = spec_v100({0, 1, 2, 3});
  EXPECT_EQ(service.handle(request_for("t", fabric, 4e6)).status,
            ServeStatus::kOk);

  // BlinkBackend replans from the healthy topology on every event, so the
  // whole shard cache turns over: nothing retained.
  const ServeResponse failed =
      service.handle(repair_for("t", fabric, "fail_link", "s0.nvl.0>1"));
  ASSERT_EQ(failed.status, ServeStatus::kOk) << failed.message;
  EXPECT_EQ(failed.plans_touched, 1u);
  EXPECT_EQ(failed.plans_retained, 0u);
  EXPECT_TRUE(service.handle(request_for("t", fabric, 4e6)).warm_hit);

  const ServeResponse restored =
      service.handle(repair_for("t", fabric, "restore"));
  ASSERT_EQ(restored.status, ServeStatus::kOk) << restored.message;
  EXPECT_EQ(restored.plans_touched, 1u);
  EXPECT_TRUE(service.handle(request_for("t", fabric, 4e6)).warm_hit);

  const ServiceStats stats = service.stats();
  const ShardHealthCounters& health =
      stats.shard_health.at("dgx1v|blink|0,1,2,3,");
  EXPECT_EQ(health.repairs, 2u);
  EXPECT_EQ(health.plans_dropped, 2u);
  EXPECT_EQ(health.plans_retained, 0u);
}

TEST(Serve, RepairRejectsUnknownEventsChannelsAndFactors) {
  FakeClock clock;
  PlanService service(test_options(clock));
  const FabricSpec fabric = spec_v100({0, 1, 2, 3});
  EXPECT_EQ(service.handle(request_for("t", fabric, 4e6)).status,
            ServeStatus::kOk);

  const ServeResponse unknown_event =
      service.handle(repair_for("t", fabric, "melt", "s0.nvl.0>1"));
  EXPECT_EQ(unknown_event.status, ServeStatus::kInvalidRequest);
  EXPECT_FALSE(unknown_event.message.empty());
  EXPECT_EQ(service
                .handle(repair_for("t", fabric, "degrade_link",
                                   "no.such.channel", 0.5))
                .status,
            ServeStatus::kInvalidRequest);
  EXPECT_EQ(service
                .handle(repair_for("t", fabric, "degrade_link", "s0.nvl.0>1",
                                   /*factor=*/1.5))
                .status,
            ServeStatus::kInvalidRequest);

  // Nothing changed: the plan is still warm and no repair was booked.
  EXPECT_TRUE(service.handle(request_for("t", fabric, 4e6)).warm_hit);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.totals.invalid, 3u);
  EXPECT_EQ(stats.shard_health.at("dgx1v|blink|0,1,2,3,").repairs, 0u);
}

TEST(Serve, RepairIsQuotaFreeLikeInvalidate) {
  FakeClock clock;
  ServiceOptions options = test_options(clock);
  options.default_quota.compile_rate = 0.0;  // no refill: burst is the budget
  options.default_quota.compile_burst = 1.0;
  PlanService service(options);
  const FabricSpec fabric = spec_v100({0, 1, 2, 3});
  EXPECT_EQ(service.handle(request_for("t", fabric, 4e6)).status,
            ServeStatus::kOk);
  // The budget is spent: another cold shape is a typed reject...
  EXPECT_EQ(service.handle(request_for("t", fabric, 8e6)).status,
            ServeStatus::kRejectedQuota);
  // ...but repair is the operator's path, never charged against the
  // tenant's compile bucket even though it recompiles the dropped plan.
  const ServeResponse repaired = service.handle(
      repair_for("t", fabric, "degrade_link", "s0.nvl.0>1", 0.5));
  EXPECT_EQ(repaired.status, ServeStatus::kOk) << repaired.message;
  EXPECT_EQ(repaired.plans_touched, 1u);
  EXPECT_TRUE(service.handle(request_for("t", fabric, 4e6)).warm_hit);
}

TEST(Serve, InvalidateReportsRetainedAndBooksShardHealth) {
  FakeClock clock;
  PlanService service(test_options(clock));
  const FabricSpec fabric = spec_v100({0, 1, 2, 3});
  EXPECT_EQ(service.handle(request_for("t", fabric, 4e6)).status,
            ServeStatus::kOk);
  EXPECT_EQ(service.handle(request_for("t", fabric, 8e6)).status,
            ServeStatus::kOk);
  const ServeResponse invalidated = service.handle(
      request_for("t", fabric, 0.0, RequestType::kInvalidate));
  EXPECT_EQ(invalidated.status, ServeStatus::kOk);
  // Invalidate is the blunt tool: everything dropped, nothing retained.
  EXPECT_EQ(invalidated.plans_touched, 2u);
  EXPECT_EQ(invalidated.plans_retained, 0u);
  const ServiceStats stats = service.stats();
  const ShardHealthCounters& health =
      stats.shard_health.at("dgx1v|blink|0,1,2,3,");
  EXPECT_EQ(health.invalidations, 1u);
  EXPECT_EQ(health.plans_dropped, 2u);
  EXPECT_EQ(health.plans_retained, 0u);
}

}  // namespace
}  // namespace blink::serve
