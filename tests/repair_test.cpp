// Incremental plan repair: CollectiveEngine::repair_plans correctness.
// The core contract under test: repaired plans are bit-identical to a
// from-scratch compile on the degraded fabric, plans whose footprints miss
// the event stay warm, and repair performs strictly less planning work
// (TreeGen runs) than a cold restart.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "blink/blink/communicator.h"
#include "blink/blink/multiserver.h"
#include "blink/blink/plan_io.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

namespace blink {
namespace {

constexpr CollectiveKind kAllKinds[] = {
    CollectiveKind::kBroadcast,     CollectiveKind::kGather,
    CollectiveKind::kReduce,        CollectiveKind::kAllReduce,
    CollectiveKind::kAllGather,     CollectiveKind::kReduceScatter,
};

// Four two-GPU servers: small enough that TreeGen is instant, cluster-shaped
// enough that every three-phase feature (partitions, NIC exchange, per-server
// trees) is exercised.
std::vector<topo::Topology> four_servers() {
  const auto machine = topo::make_dgx1v();
  const auto frag = topo::induced_topology(machine, std::vector<int>{0, 1});
  return {frag, frag, frag, frag};
}

ClusterOptions surgical_options() {
  ClusterOptions options;
  // Equal partitions: bandwidth-weighted shares probe tree rates, which
  // would make the share derivation sensitive to capacity events and turn
  // every degrade into a full flush on heterogeneous clusters.
  options.partition_sizing = PartitionSizing::kEqual;
  return options;
}

std::string plan_bytes(const CollectivePlan& plan) {
  std::string buf;
  serialize_program(plan.program(), &buf);
  return buf;
}

const ClusterBackend& cluster_backend(const CollectiveEngine& engine) {
  return dynamic_cast<const ClusterBackend&>(engine.backend(0));
}

TEST(Repair, DegradeDropsOnlyFootprintIntersectingPlans) {
  ClusterCommunicator comm(four_servers(), surgical_options());
  const auto broadcast =
      comm.compile(CollectiveKind::kBroadcast, 8.0e6, /*root=*/0);
  const auto allreduce = comm.compile(CollectiveKind::kAllReduce, 8.0e6);

  // A channel the all-reduce traverses but the broadcast does not (reduce
  // engines are the canonical case: broadcasts never reduce).
  const auto& bc = broadcast->channel_footprint();
  int only_allreduce = -1;
  for (const int c : allreduce->channel_footprint()) {
    if (!std::binary_search(bc.begin(), bc.end(), c)) {
      only_allreduce = c;
      break;
    }
  }
  ASSERT_GE(only_allreduce, 0)
      << "expected the all-reduce footprint to exceed the broadcast's";

  const std::uint64_t builds_before = cluster_backend(comm).tree_builds();
  sim::HealthEvent event;
  event.kind = sim::HealthEventKind::kDegradeLink;
  event.channel = only_allreduce;
  event.factor = 0.5;
  const RepairReport report = comm.repair_plans(event);
  EXPECT_FALSE(report.full);
  EXPECT_EQ(report.dropped, 1u);
  EXPECT_EQ(report.retained, 1u);
  EXPECT_EQ(report.recompiled, 1u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.affected_channels, std::vector<int>{only_allreduce});
  // Capacity-only events never rebuild spanning trees.
  EXPECT_EQ(cluster_backend(comm).tree_builds(), builds_before);
}

TEST(Repair, EventOutsideEveryFootprintRetainsEverything) {
  ClusterCommunicator comm(four_servers(), surgical_options());
  const auto broadcast =
      comm.compile(CollectiveKind::kBroadcast, 8.0e6, /*root=*/0);
  const auto gather = comm.compile(CollectiveKind::kGather, 8.0e6, 0);

  // A channel neither plan touches.
  std::vector<int> used = broadcast->channel_footprint();
  used.insert(used.end(), gather->channel_footprint().begin(),
              gather->channel_footprint().end());
  std::sort(used.begin(), used.end());
  int unused = -1;
  for (int c = 0; c < comm.fabric().num_channels(); ++c) {
    if (!std::binary_search(used.begin(), used.end(), c)) {
      unused = c;
      break;
    }
  }
  ASSERT_GE(unused, 0);

  sim::HealthEvent event;
  event.kind = sim::HealthEventKind::kDegradeLink;
  event.channel = unused;
  event.factor = 0.25;
  const RepairReport report = comm.repair_plans(event);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.retained, 2u);
  EXPECT_EQ(report.recompiled, 0u);
  EXPECT_EQ(report.epoch, 1u);
}

// The acceptance matrix: after a structural NVLink failure on one server,
// repaired plans for all six kinds — pipeline on and off — are bit-identical
// to what a fresh engine compiles on the identically degraded fabric, and
// the repair ran strictly fewer TreeGen builds than the cold restart.
TEST(Repair, RepairedPlansBitIdenticalToFromScratchAfterFailLink) {
  for (const bool pipeline : {true, false}) {
    SCOPED_TRACE(pipeline ? "pipeline on" : "pipeline off");
    ClusterOptions options = surgical_options();
    options.pipeline = pipeline;

    ClusterCommunicator repaired(four_servers(), options);
    for (const CollectiveKind kind : kAllKinds) {
      repaired.compile(kind, 8.0e6);
    }

    // Fail server 2's (only) NVLink: its trees must re-route over PCIe.
    sim::HealthEvent event;
    event.kind = sim::HealthEventKind::kFailLink;
    event.channel = repaired.fabric().nvlink_route(2, 0, 1)[0];

    const std::uint64_t builds_before =
        cluster_backend(repaired).tree_builds();
    const RepairReport report = repaired.repair_plans(event);
    const std::uint64_t repair_builds =
        cluster_backend(repaired).tree_builds() - builds_before;
    EXPECT_EQ(report.failed, 0u);
    EXPECT_EQ(report.dropped, report.recompiled);

    // From-scratch reference: an empty engine with the same event applied.
    ClusterCommunicator fresh(four_servers(), options);
    const RepairReport fresh_report = fresh.repair_plans(event);
    EXPECT_EQ(fresh_report.dropped, 0u);
    for (const CollectiveKind kind : kAllKinds) {
      SCOPED_TRACE(to_string(kind));
      const auto a = repaired.compile(kind, 8.0e6);
      const auto b = fresh.compile(kind, 8.0e6);
      EXPECT_EQ(plan_bytes(*a), plan_bytes(*b));
    }

    // Strictly less planning work than the cold restart: the repair rebuilt
    // only the failed server's tree sets, the fresh engine built them all.
    EXPECT_LT(repair_builds, cluster_backend(fresh).tree_builds());
    EXPECT_GT(cluster_backend(fresh).tree_builds(), 0u);
  }
}

TEST(Repair, DegradedRepairsBitIdenticalToFromScratch) {
  ClusterCommunicator repaired(four_servers(), surgical_options());
  for (const CollectiveKind kind : kAllKinds) {
    repaired.compile(kind, 8.0e6);
  }
  sim::HealthEvent event;
  event.kind = sim::HealthEventKind::kDegradeLink;
  event.channel = repaired.fabric().nvlink_route(1, 0, 1)[0];
  event.factor = 0.5;
  repaired.repair_plans(event);

  ClusterCommunicator fresh(four_servers(), surgical_options());
  fresh.repair_plans(event);
  for (const CollectiveKind kind : kAllKinds) {
    SCOPED_TRACE(to_string(kind));
    EXPECT_EQ(plan_bytes(*repaired.compile(kind, 8.0e6)),
              plan_bytes(*fresh.compile(kind, 8.0e6)));
  }
}

TEST(Repair, RestoreRecoversOriginalPlansViaFullRecompile) {
  ClusterCommunicator comm(four_servers(), surgical_options());
  const std::string original =
      plan_bytes(*comm.compile(CollectiveKind::kAllReduce, 8.0e6));

  sim::HealthEvent fail;
  fail.kind = sim::HealthEventKind::kFailLink;
  fail.channel = comm.fabric().nvlink_route(0, 0, 1)[0];
  comm.repair_plans(fail);
  const std::string detoured =
      plan_bytes(*comm.compile(CollectiveKind::kAllReduce, 8.0e6));
  EXPECT_NE(detoured, original);  // the failure forced a re-route

  sim::HealthEvent restore;
  restore.kind = sim::HealthEventKind::kRestoreAll;
  const RepairReport report = comm.repair_plans(restore);
  // Restores are never surgical: a detoured plan carries no provenance
  // tying it to the restored links.
  EXPECT_TRUE(report.full);
  EXPECT_EQ(plan_bytes(*comm.compile(CollectiveKind::kAllReduce, 8.0e6)),
            original);
}

TEST(Repair, FailGpuDegradesToTypedFailuresNotThrows) {
  const auto machine = topo::make_dgx1v();
  const auto frag = topo::induced_topology(machine, std::vector<int>{0, 1});
  ClusterCommunicator comm({frag, frag}, surgical_options());
  const auto plan = comm.compile(CollectiveKind::kAllReduce, 8.0e6);

  sim::HealthEvent event;
  event.kind = sim::HealthEventKind::kFailGpu;
  event.server = 1;
  event.gpu = 1;
  RepairReport report;
  ASSERT_NO_THROW(report = comm.repair_plans(event));
  EXPECT_EQ(report.dropped, report.recompiled + report.failed);
  // The pre-event plan object survives, but executing it refuses: its
  // routes cross the dead GPU's channels.
  EXPECT_THROW(comm.execute(*plan), std::runtime_error);
}

TEST(Repair, SingleServerBlinkRepairIsFullButBitIdentical) {
  const auto topo =
      topo::induced_topology(topo::make_dgx1v(), std::vector<int>{0, 1, 2, 3});
  Communicator repaired(topo);
  repaired.compile(CollectiveKind::kAllReduce, 8.0e6);
  repaired.compile(CollectiveKind::kBroadcast, 8.0e6, 0);

  sim::HealthEvent event;
  event.kind = sim::HealthEventKind::kDegradeLink;
  event.channel = repaired.fabric().nvlink_route(0, 0, 1)[0];
  event.factor = 0.5;
  const RepairReport report = repaired.repair_plans(event);
  // One server is one failure domain: Blink's planning state is whole-fabric.
  EXPECT_TRUE(report.full);
  EXPECT_EQ(report.dropped, 2u);
  EXPECT_EQ(report.retained, 0u);

  Communicator fresh(topo);
  fresh.repair_plans(event);
  EXPECT_EQ(plan_bytes(*repaired.compile(CollectiveKind::kAllReduce, 8.0e6)),
            plan_bytes(*fresh.compile(CollectiveKind::kAllReduce, 8.0e6)));
  EXPECT_EQ(
      plan_bytes(*repaired.compile(CollectiveKind::kBroadcast, 8.0e6, 0)),
      plan_bytes(*fresh.compile(CollectiveKind::kBroadcast, 8.0e6, 0)));
}

TEST(Repair, InvalidateReportsDroppedAndRetained) {
  ClusterCommunicator comm(four_servers(), surgical_options());
  comm.compile(CollectiveKind::kAllReduce, 8.0e6);
  comm.compile(CollectiveKind::kBroadcast, 8.0e6, 0);
  const InvalidateReport report = comm.invalidate_plans();
  EXPECT_EQ(report.dropped, 2u);
  EXPECT_EQ(report.retained, 0u);
  EXPECT_EQ(comm.invalidate_plans().dropped, 0u);
}

TEST(Repair, InvalidEventsThrowWithoutChangingState) {
  ClusterCommunicator comm(four_servers(), surgical_options());
  comm.compile(CollectiveKind::kAllReduce, 8.0e6);
  sim::HealthEvent event;
  event.kind = sim::HealthEventKind::kDegradeLink;
  event.channel = -1;
  EXPECT_THROW(comm.repair_plans(event), std::invalid_argument);
  EXPECT_EQ(comm.fabric().epoch(), 0u);
  EXPECT_EQ(comm.plan_cache().size(), 1u);
}

// TSan coverage: repair quiesces in-flight compiles and executes through the
// engine's shared/exclusive lock, so hammering both sides concurrently must
// be race-free. Executes racing a failure may observe the stale program and
// throw; that is the documented contract, not an error.
TEST(Repair, RepairRacesCompileAndExecute) {
  const auto machine = topo::make_dgx1v();
  const auto frag = topo::induced_topology(machine, std::vector<int>{0, 1});
  ClusterCommunicator comm({frag, frag}, surgical_options());

  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&comm, t] {
      for (int i = 0; i < 16; ++i) {
        const double bytes = 1.0e6 * (1 + ((t + i) % 5));
        try {
          comm.all_reduce(bytes);
        } catch (const std::runtime_error&) {
          // A plan went stale mid-race; the next compile repairs it.
        }
      }
    });
  }
  const int channel = comm.fabric().nvlink_route(0, 0, 1)[0];
  for (int i = 0; i < 6; ++i) {
    sim::HealthEvent event;
    if (i % 2 == 0) {
      event.kind = sim::HealthEventKind::kDegradeLink;
      event.channel = channel;
      event.factor = 0.5;
    } else {
      event.kind = sim::HealthEventKind::kRestoreAll;
    }
    comm.repair_plans(event);
  }
  for (auto& w : workers) w.join();
  // The fabric ends restored; a final collective must succeed.
  EXPECT_GT(comm.all_reduce(4.0e6).seconds, 0.0);
}

}  // namespace
}  // namespace blink
