// blink_fuzz: the randomized-fabric invariant fuzzer CLI.
//
//   blink_fuzz --iters 2000 --seed 20260808     # the CI smoke corpus
//   blink_fuzz --iters 200000 --seed $RANDOM    # nightly-style long run
//   blink_fuzz --case 0xDEADBEEF                # replay one failing case
//   blink_fuzz --iters 64 --inject nic-bound    # prove the harness detects
//
// Every failure prints one line with the seed, fabric parameters, invariant
// and a repro command that replays the case deterministically on any
// machine. Exits nonzero when any invariant is violated.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "blink/fuzz/fuzz.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--iters N] [--seed S] [--case HEX] [--inject NAME]\n"
               "          [--workers N] [--max-servers N] [--max-gpus N]\n"
               "          [--min-bytes B] [--max-bytes B]\n"
               "  --iters N        cases to run (default 2000)\n"
               "  --seed S         run seed; case i replays as case_seed(S, i)\n"
               "  --case HEX       replay exactly one case seed (as printed\n"
               "                   in a failure's repro line) and exit\n"
               "  --inject NAME    deliberately break one invariant check to\n"
               "                   exercise failure capture; one of:",
               argv0);
  for (const auto& name : blink::fuzz::injectable_invariants()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr,
               "\n"
               "  --workers N      concurrent cases (0 = hardware default)\n"
               "  --max-servers N  fabric size ceiling (default %d)\n"
               "  --max-gpus N     per-server GPU ceiling (default %d)\n"
               "  --min-bytes B    payload floor in bytes (default %.0f)\n"
               "  --max-bytes B    payload ceiling in bytes (default %.0f)\n",
               blink::topo::zoo::RandomFabricParams{}.max_servers,
               blink::topo::zoo::RandomFabricParams{}.max_gpus,
               blink::fuzz::FuzzOptions{}.min_bytes,
               blink::fuzz::FuzzOptions{}.max_bytes);
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(s, &end, 0);  // base 0: accepts 0x... and decimal
  return end != s && *end == '\0';
}

void print_failures(const blink::fuzz::FuzzReport& report) {
  for (const auto& f : report.failures) {
    std::printf("FAIL invariant=%s case=0x%" PRIx64 " repro='%s' fabric='%s' "
                "detail='%s'\n",
                f.invariant.c_str(), f.case_seed, f.repro.c_str(),
                f.fabric.c_str(), f.detail.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 20260808;
  std::uint64_t iters = 2000;
  std::uint64_t single_case = 0;
  bool replay_single = false;
  blink::fuzz::FuzzOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    auto need = [&](const char* flag) {
      if (value == nullptr) {
        std::fprintf(stderr, "%s: %s requires a value\n", argv[0], flag);
        std::exit(2);
      }
      ++i;
      return value;
    };
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--iters") {
      if (!parse_u64(need("--iters"), &iters)) break;
    } else if (arg == "--seed") {
      if (!parse_u64(need("--seed"), &seed)) break;
    } else if (arg == "--case") {
      if (!parse_u64(need("--case"), &single_case)) break;
      replay_single = true;
    } else if (arg == "--inject") {
      options.inject = need("--inject");
      bool known = false;
      for (const auto& name : blink::fuzz::injectable_invariants()) {
        known = known || name == options.inject;
      }
      if (!known) {
        std::fprintf(stderr, "%s: unknown invariant '%s' for --inject\n",
                     argv[0], options.inject.c_str());
        return 2;
      }
    } else if (arg == "--workers") {
      options.workers = std::atoi(need("--workers"));
    } else if (arg == "--max-servers") {
      options.fabric.max_servers = std::atoi(need("--max-servers"));
    } else if (arg == "--max-gpus") {
      options.fabric.max_gpus = std::atoi(need("--max-gpus"));
    } else if (arg == "--min-bytes") {
      options.min_bytes = std::atof(need("--min-bytes"));
    } else if (arg == "--max-bytes") {
      options.max_bytes = std::atof(need("--max-bytes"));
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  if (replay_single) {
    blink::fuzz::FuzzReport report;
    blink::fuzz::run_case(single_case, options, &report);
    print_failures(report);
    std::printf("case 0x%" PRIx64 ": %zu plans, %zu executions, %zu "
                "failure(s)\n",
                single_case, report.plans, report.executions,
                report.failures.size());
    return report.ok() ? 0 : 1;
  }

  const blink::fuzz::FuzzReport report =
      blink::fuzz::run(seed, static_cast<std::size_t>(iters), options);
  print_failures(report);
  std::printf("fuzz seed=%" PRIu64 " cases=%zu (single-server=%zu, "
              "multi-server=%zu) plans=%zu executions=%zu failures=%zu\n",
              seed, report.cases, report.single_server_cases,
              report.multi_server_cases, report.plans, report.executions,
              report.failures.size());
  if (!report.ok()) {
    std::printf("replay any line above with its repro command, e.g. "
                "%s --case 0x%" PRIx64 "\n",
                argv[0], report.failures.front().case_seed);
  }
  return report.ok() ? 0 : 1;
}
