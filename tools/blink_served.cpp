// blink_served: the planning-as-a-service daemon. Wires a serve::PlanService
// over a line-oriented request loop on stdin — the transport a real
// deployment would replace with RPC, kept trivial here so the serving layer
// (sharding, admission control, quotas, GC) is the whole story.
//
// Protocol (one request per line, one response line per request):
//
//   <tenant> compile|execute <machine> <g0,g1,...> <kind> <bytes> [root] [backend]
//   <tenant> precompile <machine> <g0,g1,...> <bytes> [root] [backend]
//   <tenant> warm|invalidate <machine> <g0,g1,...> [backend]
//   <tenant> repair <machine> <g0,g1,...> <event> [<channel>|<gpu>] [factor] [backend]
//   stats | flush | gc | help | quit
//
// repair events: degrade_link <channel> <factor>, fail_link <channel>,
// fail_gpu <gpu>, restore. Channels go by fabric name (e.g. "nvlink:0->1");
// only plans whose footprint the event touches recompile.
//
// kinds: broadcast gather reduce allreduce allgather reducescatter
// machines: dgx1p dgx1v dgx2    backends: blink nccl ring double_binary
// butterfly auto (default blink)
//
// Example session:
//   tenantA execute dgx1v 0,1,2,3 allreduce 16e6
//   tenantA execute dgx1v 0,1,2,3 allreduce 16e6
//   stats
//
// Flags: --workers N --queue N --store-dir DIR --gc-cap BYTES
//        --rate COMPILES_PER_SEC --burst N --in-flight N --verbose
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "blink/common/logging.h"
#include "blink/common/units.h"
#include "blink/serve/service.h"

namespace {

using blink::serve::PlanService;
using blink::serve::ServeRequest;
using blink::serve::ServeResponse;
using blink::serve::ServeStatus;
using blink::serve::ServiceStats;

bool parse_kind(const std::string& name, blink::CollectiveKind* kind) {
  using blink::CollectiveKind;
  if (name == "broadcast") *kind = CollectiveKind::kBroadcast;
  else if (name == "gather") *kind = CollectiveKind::kGather;
  else if (name == "reduce") *kind = CollectiveKind::kReduce;
  else if (name == "allreduce") *kind = CollectiveKind::kAllReduce;
  else if (name == "allgather") *kind = CollectiveKind::kAllGather;
  else if (name == "reducescatter") *kind = CollectiveKind::kReduceScatter;
  else return false;
  return true;
}

std::vector<int> parse_gpu_list(const std::string& csv) {
  std::vector<int> ids;
  std::stringstream ss(csv);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (!part.empty()) ids.push_back(std::atoi(part.c_str()));
  }
  return ids;
}

void print_response(const ServeRequest& request, const ServeResponse& r) {
  std::cout << to_string(r.status);
  if (r.status == ServeStatus::kOk) {
    switch (request.type) {
      case blink::serve::RequestType::kCompile:
        std::cout << " compiled " << (r.warm_hit ? "(warm) " : "(cold) ")
                  << r.result.num_ops << " ops, " << r.result.num_trees
                  << " trees";
        break;
      case blink::serve::RequestType::kExecute:
        std::cout << " " << (r.warm_hit ? "warm " : "cold ") << r.result.seconds
                  << " s, "
                  << blink::format_throughput(r.result.algorithm_bw);
        break;
      case blink::serve::RequestType::kWarmLoad:
        std::cout << " warm-loaded " << r.plans_touched << " plans";
        break;
      case blink::serve::RequestType::kInvalidate:
        std::cout << " invalidated " << r.plans_touched << " plans, retained "
                  << r.plans_retained;
        break;
      case blink::serve::RequestType::kPrecompile:
        std::cout << " precompiled " << r.plans_touched << " cold plans";
        break;
      case blink::serve::RequestType::kRepair:
        std::cout << " repaired: dropped " << r.plans_touched << ", retained "
                  << r.plans_retained << " plans";
        break;
    }
  } else {
    std::cout << " " << r.message;
  }
  std::cout << std::endl;
}

void print_stats(const ServiceStats& stats) {
  std::cout << "shards=" << stats.num_shards
            << " queue=" << stats.queue_depth << "/" << stats.queue_high_water
            << " cache(h/m/e)=" << stats.cache_hits << "/" << stats.cache_misses
            << "/" << stats.cache_evictions
            << " warm_hit_rate=" << stats.warm_hit_rate()
            << " gc_runs=" << stats.gc_runs << std::endl;
  for (const auto& [tenant, c] : stats.tenants) {
    std::cout << "  tenant " << tenant << ": submitted=" << c.submitted
              << " completed=" << c.completed << " warm=" << c.warm_hits
              << " compiles=" << c.compiles
              << " rejects(quota/inflight/queue)=" << c.rejected_quota << "/"
              << c.rejected_in_flight << "/" << c.rejected_queue_full
              << " invalid=" << c.invalid << " errors=" << c.errors
              << std::endl;
  }
  for (const auto& [shard, h] : stats.shard_health) {
    if (h.repairs == 0 && h.invalidations == 0) continue;
    std::cout << "  shard " << shard << ": repairs=" << h.repairs
              << " invalidations=" << h.invalidations
              << " dropped=" << h.plans_dropped
              << " retained=" << h.plans_retained << std::endl;
  }
}

int usage() {
  std::cerr
      << "usage: blink_served [--workers N] [--queue N] [--store-dir DIR]\n"
         "                    [--gc-cap BYTES] [--rate R] [--burst N]\n"
         "                    [--in-flight N] [--verbose]\n"
         "then speak the line protocol on stdin (type 'help').\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  blink::serve::ServiceOptions options;
  options.gc_interval_requests = 1000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--workers" && has_value) {
      options.num_workers = std::atoi(argv[++i]);
    } else if (arg == "--queue" && has_value) {
      options.queue_capacity = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--store-dir" && has_value) {
      options.store_dir = argv[++i];
    } else if (arg == "--gc-cap" && has_value) {
      options.gc.max_total_bytes =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--rate" && has_value) {
      options.default_quota.compile_rate = std::atof(argv[++i]);
    } else if (arg == "--burst" && has_value) {
      options.default_quota.compile_burst = std::atof(argv[++i]);
    } else if (arg == "--in-flight" && has_value) {
      options.default_quota.max_in_flight =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--verbose") {
      blink::set_log_level(blink::LogLevel::kInfo);
    } else {
      return usage();
    }
  }

  PlanService service(options);
  std::cout << "blink_served ready (" << options.num_workers
            << " workers, queue " << options.queue_capacity
            << (options.store_dir.empty() ? ", no store"
                                          : ", store " + options.store_dir)
            << ")" << std::endl;

  std::string line;
  while (std::getline(std::cin, line)) {
    std::stringstream ss(line);
    std::string first;
    if (!(ss >> first) || first.empty() || first[0] == '#') continue;
    if (first == "quit" || first == "exit") break;
    if (first == "stats") {
      print_stats(service.stats());
      continue;
    }
    if (first == "flush") {
      std::cout << "flushed " << service.flush() << " plans" << std::endl;
      continue;
    }
    if (first == "gc") {
      const auto report = service.run_gc();
      std::cout << "gc: scanned " << report.files_scanned << " files ("
                << report.bytes_scanned << " B), evicted "
                << report.files_evicted << " (" << report.bytes_evicted
                << " B), " << report.bytes_remaining << " B remain"
                << std::endl;
      continue;
    }
    if (first == "help") {
      std::cout
          << "<tenant> compile|execute <machine> <g0,g1,...> <kind> <bytes> "
             "[root] [backend]\n"
             "<tenant> precompile <machine> <g0,g1,...> <bytes> [root] "
             "[backend]\n"
             "<tenant> warm|invalidate <machine> <g0,g1,...> [backend]\n"
             "<tenant> repair <machine> <g0,g1,...> degrade_link <channel> "
             "[factor] [backend]\n"
             "<tenant> repair <machine> <g0,g1,...> fail_link <channel> "
             "[backend]\n"
             "<tenant> repair <machine> <g0,g1,...> fail_gpu <gpu> [backend]\n"
             "<tenant> repair <machine> <g0,g1,...> restore [backend]\n"
             "stats | flush | gc | quit"
          << std::endl;
      continue;
    }

    ServeRequest request;
    request.tenant = first;
    std::string verb, machine, gpus;
    if (!(ss >> verb >> machine >> gpus)) {
      std::cout << "invalid_request malformed line (try 'help')" << std::endl;
      continue;
    }
    request.fabric.machine = machine;
    request.fabric.gpu_ids = parse_gpu_list(gpus);
    if (verb == "compile" || verb == "execute") {
      request.type = verb == "compile" ? blink::serve::RequestType::kCompile
                                       : blink::serve::RequestType::kExecute;
      std::string kind_name;
      double bytes = 0.0;
      if (!(ss >> kind_name >> bytes) ||
          !parse_kind(kind_name, &request.kind)) {
        std::cout << "invalid_request malformed collective (try 'help')"
                  << std::endl;
        continue;
      }
      request.bytes = bytes;
      // Optional trailing tokens: a numeric root, then a backend name.
      std::string token;
      while (ss >> token) {
        char* end = nullptr;
        const long root = std::strtol(token.c_str(), &end, 10);
        if (end != nullptr && *end == '\0') {
          request.root = static_cast<int>(root);
        } else {
          request.fabric.backend = token;
        }
      }
    } else if (verb == "precompile") {
      // Batch-warm every collective kind at one size in a single request.
      request.type = blink::serve::RequestType::kPrecompile;
      double bytes = 0.0;
      if (!(ss >> bytes)) {
        std::cout << "invalid_request malformed precompile (try 'help')"
                  << std::endl;
        continue;
      }
      request.bytes = bytes;
      // Optional trailing tokens: a numeric root, then a backend name.
      std::string token;
      while (ss >> token) {
        char* end = nullptr;
        const long root = std::strtol(token.c_str(), &end, 10);
        if (end != nullptr && *end == '\0') {
          request.root = static_cast<int>(root);
        } else {
          request.fabric.backend = token;
        }
      }
    } else if (verb == "warm" || verb == "invalidate") {
      request.type = verb == "warm" ? blink::serve::RequestType::kWarmLoad
                                    : blink::serve::RequestType::kInvalidate;
      std::string backend;
      if (ss >> backend) request.fabric.backend = backend;
    } else if (verb == "repair") {
      request.type = blink::serve::RequestType::kRepair;
      if (!(ss >> request.event)) {
        std::cout << "invalid_request malformed repair (try 'help')"
                  << std::endl;
        continue;
      }
      if (request.event == "degrade_link" || request.event == "fail_link") {
        if (!(ss >> request.channel)) {
          std::cout << "invalid_request repair needs a channel name "
                       "(try 'help')"
                    << std::endl;
          continue;
        }
        // Optional trailing tokens: a numeric factor, then a backend name.
        std::string token;
        while (ss >> token) {
          char* end = nullptr;
          const double factor = std::strtod(token.c_str(), &end);
          if (end != nullptr && *end == '\0') {
            request.factor = factor;
          } else {
            request.fabric.backend = token;
          }
        }
      } else if (request.event == "fail_gpu") {
        if (!(ss >> request.gpu)) {
          std::cout << "invalid_request repair fail_gpu needs a gpu rank "
                       "(try 'help')"
                    << std::endl;
          continue;
        }
        std::string backend;
        if (ss >> backend) request.fabric.backend = backend;
      } else {
        // "restore", or an unknown event the service will type-reject.
        std::string backend;
        if (ss >> backend) request.fabric.backend = backend;
      }
    } else {
      std::cout << "invalid_request unknown verb '" << verb << "' (try 'help')"
                << std::endl;
      continue;
    }
    print_response(request, service.handle(std::move(request)));
  }

  std::cout << "flushed " << service.flush() << " plans; bye" << std::endl;
  return 0;
}
