/// \file
/// Admission-control primitives for the plan-serving layer (serve/service.h):
/// per-tenant quotas and the deterministic token bucket that enforces them.
///
/// Time is injected as a plain seconds value rather than read from a clock,
/// so admission decisions are a pure function of (quota, request times) —
/// tests drive a fake clock and assert exactly which request is the first
/// rejected one.
#pragma once

#include <algorithm>
#include <cstddef>

namespace blink::serve {

/// Per-tenant serving limits. A tenant's compiles — the expensive planning
/// work (TreeGen/MWU/CodeGen) — drain a token bucket; warm cache hits are
/// free, so a tenant replaying cached shapes is never throttled. In-flight
/// work (queued + executing requests) is bounded separately so one tenant
/// cannot occupy the whole worker pool with slow requests.
struct TenantQuota {
  /// Token-bucket refill rate: compiles per second the tenant may sustain.
  double compile_rate = 100.0;
  /// Token-bucket capacity: the cold-compile burst allowed after idleness.
  double compile_burst = 20.0;
  /// Maximum requests a tenant may have queued or executing at once.
  std::size_t max_in_flight = 64;
};

/// A standard token bucket over an injected timeline: |burst| tokens
/// capacity, refilled at |rate| tokens/second, deterministic given the
/// sequence of |now| values (which must be non-decreasing; a backwards step
/// refills nothing). Not thread-safe — callers (the service's admission
/// path) hold their own lock.
class TokenBucket {
 public:
  /// A bucket created full, so a tenant's first |burst| compiles are
  /// admitted immediately.
  TokenBucket(double rate, double burst, double now)
      : rate_(std::max(rate, 0.0)),
        burst_(std::max(burst, 0.0)),
        tokens_(burst_),
        last_(now) {}

  /// Takes |tokens| if available after refilling up to |now|; returns
  /// whether the caller may proceed. A failed acquire takes nothing.
  bool try_acquire(double now, double tokens = 1.0) {
    refill(now);
    if (tokens_ + 1e-9 < tokens) return false;
    tokens_ -= tokens;
    return true;
  }

  /// Tokens available at |now| (refills as a side effect).
  double available(double now) {
    refill(now);
    return tokens_;
  }

 private:
  void refill(double now) {
    if (now > last_) {
      tokens_ = std::min(burst_, tokens_ + (now - last_) * rate_);
      last_ = now;
    }
  }

  double rate_;
  double burst_;
  double tokens_;
  double last_;
};

}  // namespace blink::serve
