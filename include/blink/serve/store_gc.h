/// \file
/// Plan-store lifecycle GC. Persistent stores grow one
/// plans-\<fingerprint\>.bpc file per distinct fabric forever (every new
/// allocation shape, backend mix, or planning-knob change mints a new
/// fingerprint), so any long-lived deployment needs a sweeper. store_gc()
/// walks a store directory and evicts least-recently-used files — by mtime,
/// which both the engine flush and a warm-load-then-flush refresh — until
/// the directory fits under a total-size cap.
///
/// Usable standalone (a cron-style sweep over a shared store directory) and
/// invoked by serve::PlanService on startup and periodically; the service
/// passes the store files of its live engine shards as |protect| so a file a
/// shard just wrote is never deleted out from under it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace blink::serve {

/// What store_gc() may evict and when.
struct StoreGcOptions {
  /// Total-size cap in bytes for the directory's store files; eviction
  /// stops once the surviving files fit. 0 means no cap: the sweep only
  /// reports sizes and evicts nothing.
  std::uint64_t max_total_bytes = 0;
  /// Store files that must never be evicted (live engines' canonical store
  /// paths, from CollectiveEngine::plan_store_path()). Protected files
  /// still count toward the total, so a cap smaller than the live working
  /// set leaves the directory over cap — reported, not forced.
  std::vector<std::string> protect;
};

/// What one sweep saw and did.
struct StoreGcReport {
  /// Store files examined (only plans-*.bpc files are considered).
  std::size_t files_scanned = 0;
  /// Their total size before eviction.
  std::uint64_t bytes_scanned = 0;
  /// Files deleted, oldest mtime first.
  std::size_t files_evicted = 0;
  /// Bytes reclaimed by those deletions.
  std::uint64_t bytes_evicted = 0;
  /// Files skipped because StoreGcOptions::protect named them.
  std::size_t files_protected = 0;
  /// Total size of the surviving store files. Exceeds the cap only when
  /// protected files alone exceed it.
  std::uint64_t bytes_remaining = 0;
};

/// Sweeps the plan-store files directly under |dir| (non-recursive; only
/// names shaped plans-*.bpc are touched — nothing else in the directory is
/// ever deleted), evicting least-recently-used files by mtime until the
/// survivors fit StoreGcOptions::max_total_bytes. A missing directory is an
/// empty sweep, not an error; files that vanish mid-sweep are skipped.
StoreGcReport store_gc(const std::string& dir, const StoreGcOptions& options);

}  // namespace blink::serve
