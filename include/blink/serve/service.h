/// \file
/// Planning-as-a-service: a multi-tenant plan-serving front end over the
/// plan/execute engine stack. One PlanService hosts many engine *shards* —
/// one CollectiveEngine per distinct fabric spec, each with its own
/// thread-safe PlanCache and persistent store file — so tenants on distinct
/// fabrics never contend on one cache mutex, and a worker pool serves
/// compile / execute / warm-load / invalidate requests from thousands of
/// concurrent communicator clients.
///
/// Admission control keeps one misbehaving tenant from starving the rest:
/// cold compiles drain a per-tenant token bucket (serve/admission.h), each
/// tenant's in-flight work is bounded, and the shared admission queue is
/// bounded too — every limit rejects with a typed ServeStatus, never an
/// exception or a crash. Warm cache hits bypass the compile quota entirely,
/// so steady-state serving traffic is admission-free.
///
/// Observability is first-class: stats() snapshots per-tenant and global
/// counters (admits, rejects by cause, warm hits, compiles), summed
/// plan-cache hit/miss/eviction counters across shards, queue depth and
/// high-water mark, and log-scale latency histograms — benches and tests
/// assert SLOs (warm hit rate, zero untyped failures) directly on the
/// snapshot. Plan-store lifecycle management (serve/store_gc.h) runs on
/// startup and every gc_interval_requests completions, protecting the store
/// files of live shards.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "blink/blink/plan.h"
#include "blink/serve/admission.h"
#include "blink/serve/store_gc.h"

namespace blink::serve {

/// The fabric a request plans against, and the shard key: requests with
/// identical specs share one engine (and its plan cache); distinct specs
/// get distinct shards. Mirrors the facade's communicator-init surface.
struct FabricSpec {
  /// Machine kind: "dgx1p", "dgx1v" or "dgx2".
  std::string machine = "dgx1v";
  /// The GPUs of the allocation, as physical ids on that machine.
  std::vector<int> gpu_ids;
  /// Planning algorithm: "blink" (default), "nccl", "ring",
  /// "double_binary", "butterfly", or "auto" (register them all and let the
  /// engine's per-shape bake-off pick).
  std::string backend = "blink";
};

/// What a ServeRequest asks the service to do.
enum class RequestType {
  kCompile = 0,   ///< Compile (or fetch cached) the plan; no execution.
  kExecute = 1,   ///< Compile if needed, then execute; returns the timing.
  kWarmLoad = 2,  ///< Import the shard's store file into its plan cache now.
  kInvalidate = 3,  ///< Drop the shard's cached plans and auto choices.
  /// Batch-compile every collective kind at the request's (bytes, root) in
  /// one pass (CollectiveEngine::precompile); plans_touched reports how
  /// many were cold. Always charges the compile quota — a warm-up is by
  /// definition cold work.
  kPrecompile = 4,
  /// Apply a fabric health event to the shard and repair its plan cache
  /// incrementally (CollectiveEngine::repair_plans): only plans whose
  /// channel footprint the event touches recompile; the rest stay warm.
  /// Uses the ServeRequest health-event fields; never charges the compile
  /// quota (repair is the operator's path, like kInvalidate).
  kRepair = 5,
};

/// A conversion to a stable lowercase name ("compile", ...).
const char* to_string(RequestType type);

/// One client request. kWarmLoad/kInvalidate ignore the collective fields;
/// kPrecompile ignores kind (it compiles every kind).
struct ServeRequest {
  /// The requesting tenant; quotas and per-tenant stats key on this.
  std::string tenant;
  /// What to do.
  RequestType type = RequestType::kExecute;
  /// The fabric (and so the shard) the request targets.
  FabricSpec fabric;
  /// Collective to plan (kCompile/kExecute).
  CollectiveKind kind = CollectiveKind::kAllReduce;
  /// Per-GPU payload bytes (kCompile/kExecute); must be positive.
  double bytes = 0.0;
  /// Root GPU rank, or -1 for the backend default.
  int root = -1;
  /// kRepair only — the health event to apply: "degrade_link", "fail_link",
  /// "fail_gpu" or "restore". Other request types ignore these fields.
  std::string event;
  /// kRepair degrade_link/fail_link: the fabric channel to hit, by channel
  /// name (sim::Fabric::channel_name, e.g. "s0.nvl.0>1").
  std::string channel;
  /// kRepair fail_gpu: the failing GPU's rank within the shard fabric.
  int gpu = -1;
  /// kRepair degrade_link: remaining capacity fraction in (0, 1).
  double factor = 1.0;
};

/// Typed outcome of a request. Everything except kOk is an orderly
/// rejection or failure the client can retry or fix — admission limits and
/// bad requests never surface as exceptions or crashes.
enum class ServeStatus {
  kOk = 0,                 ///< Served; the response fields are valid.
  kRejectedQuota = 1,      ///< Tenant's compile token bucket is empty.
  kRejectedInFlight = 2,   ///< Tenant hit TenantQuota::max_in_flight.
  kRejectedQueueFull = 3,  ///< The shared admission queue is at capacity.
  kInvalidRequest = 4,     ///< Bad tenant/fabric/arguments (typed, no throw).
  kInternalError = 5,      ///< Unexpected failure; message has details.
};

/// A conversion to a stable name ("ok", "rejected_quota", ...).
const char* to_string(ServeStatus status);

/// What the service returns for one request.
struct ServeResponse {
  /// Outcome; fields below are meaningful only on kOk.
  ServeStatus status = ServeStatus::kOk;
  /// kExecute: the simulated timing. kCompile: the plan's metadata with
  /// timing unfilled, as from CollectiveEngine::compile().
  CollectiveResult result;
  /// Whether the plan was already cached in the shard when the request was
  /// served (kCompile/kExecute) — the per-request view of the hit rate.
  bool warm_hit = false;
  /// The serving shard's fabric fingerprint (0 for rejected requests).
  std::uint64_t shard_fingerprint = 0;
  /// kWarmLoad: plans imported; kInvalidate/kRepair: plans dropped;
  /// kPrecompile: plans that were cold and got compiled; else 0.
  std::size_t plans_touched = 0;
  /// kInvalidate/kRepair: plans that survived the drop (for repair, the
  /// warm plans whose footprints the event missed); else 0.
  std::size_t plans_retained = 0;
  /// Failure or rejection detail; empty on success.
  std::string message;
};

/// Counters kept per tenant and (as ServiceStats::totals) globally.
struct TenantCounters {
  /// Requests handed to submit() for this tenant.
  std::uint64_t submitted = 0;
  /// Requests that passed admission and were queued.
  std::uint64_t admitted = 0;
  /// Admitted requests fully served (any final status).
  std::uint64_t completed = 0;
  /// Served compile/execute requests that found their plan cached.
  std::uint64_t warm_hits = 0;
  /// Served compile/execute requests that had to compile (cold).
  std::uint64_t compiles = 0;
  /// Rejections: compile token bucket empty.
  std::uint64_t rejected_quota = 0;
  /// Rejections: per-tenant in-flight cap reached.
  std::uint64_t rejected_in_flight = 0;
  /// Rejections: shared admission queue full.
  std::uint64_t rejected_queue_full = 0;
  /// Requests answered kInvalidRequest (at admission or dispatch).
  std::uint64_t invalid = 0;
  /// Requests answered kInternalError.
  std::uint64_t errors = 0;
};

/// Latency histogram shape: bucket i counts requests whose service latency
/// (admission to response, by the service clock) fell in [2^i, 2^(i+1))
/// microseconds; bucket 0 also absorbs sub-microsecond requests, the last
/// bucket everything slower.
inline constexpr std::size_t kLatencyBuckets = 24;

/// Per-shard plan-invalidation bookkeeping: what kInvalidate and kRepair
/// requests did to one shard's cache, cumulatively. Surfaced in
/// ServiceStats::shard_health so operators can see repair cost (drops force
/// recompiles) against repair savings (retained plans stay warm) per fabric.
struct ShardHealthCounters {
  /// kRepair requests served against this shard.
  std::uint64_t repairs = 0;
  /// kInvalidate requests served against this shard.
  std::uint64_t invalidations = 0;
  /// Plans dropped by repairs and invalidations together.
  std::uint64_t plans_dropped = 0;
  /// Plans retained across repairs and invalidations together.
  std::uint64_t plans_retained = 0;
};

/// A consistent point-in-time snapshot of the service's counters.
struct ServiceStats {
  /// Global counters: the sum over every tenant.
  TenantCounters totals;
  /// Per-tenant counters, keyed by tenant name.
  std::map<std::string, TenantCounters> tenants;
  /// Requests waiting in the admission queue right now.
  std::size_t queue_depth = 0;
  /// Deepest the admission queue has ever been.
  std::size_t queue_high_water = 0;
  /// Engine shards created so far.
  std::size_t num_shards = 0;
  /// PlanCache hits summed across every shard.
  std::uint64_t cache_hits = 0;
  /// PlanCache misses summed across every shard.
  std::uint64_t cache_misses = 0;
  /// PlanCache evictions summed across every shard.
  std::uint64_t cache_evictions = 0;
  /// Per-shard repair/invalidate counters, keyed by the shard's fabric spec
  /// ("machine|gpu,gpu,...|backend"). Shards no request ever repaired or
  /// invalidated still appear, with zeroed counters.
  std::map<std::string, ShardHealthCounters> shard_health;
  /// Latency histogram of served kCompile requests (see kLatencyBuckets).
  std::array<std::uint64_t, kLatencyBuckets> compile_latency_us{};
  /// Latency histogram of served kExecute requests.
  std::array<std::uint64_t, kLatencyBuckets> execute_latency_us{};
  /// Plan-store GC sweeps run (startup + periodic + explicit).
  std::uint64_t gc_runs = 0;
  /// The most recent GC sweep's report.
  StoreGcReport last_gc;

  /// Warm hits over served compile/execute requests, in [0, 1]; 1.0 when
  /// none were served yet. The serving SLO benches gate on this.
  double warm_hit_rate() const {
    const std::uint64_t served = totals.warm_hits + totals.compiles;
    return served == 0 ? 1.0
                       : static_cast<double>(totals.warm_hits) /
                             static_cast<double>(served);
  }
};

/// Service-wide configuration.
struct ServiceOptions {
  /// Worker threads serving the admission queue (the service's own
  /// common::ThreadPool — distinct from the shared planner pool, so request
  /// workers and planner fan-out never starve each other).
  int num_workers = 4;
  /// Cold-path planning parallelism inside each shard engine (see
  /// EngineOptions::planner_threads): 0 = BLINK_PLANNER_THREADS / hardware
  /// default, 1 = serial. Never changes plans or fingerprints.
  int planner_threads = 0;
  /// Admission queue capacity; submissions beyond it are rejected with
  /// kRejectedQueueFull.
  std::size_t queue_capacity = 256;
  /// Quota applied to tenants without an explicit entry below.
  TenantQuota default_quota;
  /// Per-tenant quota overrides, keyed by tenant name.
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Each shard engine's LRU plan-cache capacity.
  std::size_t plan_cache_capacity = 256;
  /// Persistent plan-store directory shared by every shard (each shard uses
  /// its own plans-\<fingerprint\>.bpc file inside it); empty disables
  /// persistence, warm-load, flush() and GC.
  std::string store_dir;
  /// GC policy for store_dir (StoreGcOptions::protect is ignored — the
  /// service always protects its live shards' store files).
  StoreGcOptions gc;
  /// Run a GC sweep in the constructor, before any shard loads.
  bool gc_on_start = true;
  /// Run a GC sweep every this many completed requests (0 = only on start
  /// and explicit run_gc()).
  std::size_t gc_interval_requests = 0;
  /// Monotonic clock in seconds, used for token-bucket refill and latency
  /// histograms. Defaults to std::chrono::steady_clock; tests inject a fake
  /// clock to make admission decisions deterministic.
  std::function<double()> clock;
};

/// The multi-tenant plan-serving front end. Thread-safe throughout: any
/// number of client threads may submit() concurrently while workers serve.
class PlanService {
 public:
  /// Starts the worker pool (and the startup GC sweep when configured).
  explicit PlanService(ServiceOptions options = {});
  /// Drains every admitted request, joins the workers, and flushes each
  /// shard's plan cache to its store file (when persistence is enabled).
  ~PlanService();

  /// Not copyable: workers, queue and shards are identity.
  PlanService(const PlanService&) = delete;
  /// Not copyable: workers, queue and shards are identity.
  PlanService& operator=(const PlanService&) = delete;

  /// Admission-checks |request| and either queues it (future resolves when
  /// a worker serves it) or resolves the future immediately with a typed
  /// rejection. Never throws on bad input — invalid requests resolve to
  /// kInvalidRequest.
  std::future<ServeResponse> submit(ServeRequest request);

  /// Convenience: submit() and wait for the response.
  ServeResponse handle(ServeRequest request);

  /// A consistent snapshot of every counter (see ServiceStats).
  ServiceStats stats() const;

  /// Writes each shard's plan cache to its store file now (the flush the
  /// destructor performs), so a long-lived daemon persists plans without
  /// restarting. Returns the number of plans written; 0 when persistence is
  /// disabled.
  std::size_t flush();

  /// Runs one GC sweep over ServiceOptions::store_dir with the configured
  /// cap, protecting every live shard's store file, and records it in the
  /// stats. Returns the sweep's report (empty when persistence is off).
  StoreGcReport run_gc();

  /// Engine shards created so far (one per distinct FabricSpec served).
  std::size_t num_shards() const;

  /// Holds the workers after their current request: queued work stays
  /// queued and admission keeps accepting until the queue fills. A
  /// maintenance/test hook — tests use it to fill the admission queue
  /// deterministically.
  void pause_workers();

  /// Releases pause_workers().
  void resume_workers();

 private:
  struct Shard;
  struct TenantState;
  struct Job;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace blink::serve
