// Max-min fair bandwidth sharing: the rate-allocation core of the fluid
// fabric simulator.
//
// Concurrent transfers on shared links (multiple spanning trees crossing one
// NVLink, PCIe flows funnelling through a PLX switch or QPI, NVSwitch pipes)
// split bandwidth the way pipelined DMA engines do in steady state: no flow
// can raise its rate without lowering that of an equally- or worse-off flow.
// That is exactly the max-min allocation computed by progressive filling.
#pragma once

#include <span>
#include <vector>

namespace blink::sim {

// A flow occupies every channel on its route simultaneously (a copy through
// the PCIe hierarchy holds GPU->PLX, PLX->CPU, ... at once); its rate is the
// minimum share granted on any of them.
struct FlowSpec {
  std::span<const int> route;  // channel indices; may be empty (infinite rate)
};

// Computes max-min fair rates for |flows| over channels with the given
// capacities (bytes/s). Returns one rate per flow; flows with empty routes
// get an infinite rate. O(channels * flows) per fill step.
std::vector<double> max_min_rates(std::span<const double> channel_capacity,
                                  std::span<const FlowSpec> flows);

}  // namespace blink::sim
