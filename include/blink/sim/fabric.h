/// \file
/// The simulated hardware fabric: every physical bandwidth domain of a server
/// (or multi-server cluster) as a channel, plus route lookup for the transfer
/// kinds the collectives issue.
///
/// Channel inventory per server:
///   * one channel per NVLink bundle per direction (capacity = lanes * lane bw)
///   * PCIe: GPU<->PLX up/down, PLX<->CPU up/down, CPU<->CPU (QPI) per
///     direction — copies between GPUs over PCIe hold every segment on the
///     path, which is how ring protocols collapse when they fall back to PCIe
///   * NVSwitch: per-GPU ingress and egress pipes (non-blocking crossbar)
///   * a per-GPU reduction engine (CUDA kernels reduce at a finite rate and
///     concurrent reductions on one GPU share it — the ~15% MIMO penalty of
///     §2.2)
///   * per-server NIC ingress/egress for cross-machine phases
///
/// On top of the static inventory sits a mutable *health* layer: every
/// channel carries a health factor in [0, 1] that scales its base capacity,
/// and degradation/failure/restore events bump a monotonically increasing
/// fabric *epoch*. The health layer is what makes long-running jobs
/// survivable — a flapped NVLink becomes a capacity event the planner can
/// repair around instead of a reason to recompile the world (ROADMAP item 1).
/// Per-component fingerprints (one per server's local fabric plus one for the
/// NIC tier) fold the health vector in, so plan stores and caches can tell
/// exactly which slice of the fabric a change touched.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blink/topology/topology.h"

namespace blink::sim {

/// Calibration constants for behaviours the paper measures but the topology
/// does not encode (see DESIGN.md §6).
struct FabricParams {
  /// Fixed setup latency charged per chunk copy: the paper notes each chunk
  /// costs at least three CUDA commands (§4.2.1).
  double copy_launch_latency = 2e-6;
  /// Kernel launch latency for a reduction kernel.
  double reduce_launch_latency = 6e-6;
  /// Cross-stream synchronization cost: a dependent op in another stream
  /// observes an op's completion only after the cudaEventRecord/StreamWait
  /// handshake. Within one stream ops run back to back.
  double event_sync_latency = 6e-6;
  /// Aggregate reduction rate of one GPU (bytes/s), shared by concurrent
  /// reduction kernels. Kernels are charged for reading every input operand
  /// (received chunks plus the local contribution); the rate reflects V100
  /// HBM2-bound elementwise sums, comfortably above the 138 GB/s a root can
  /// receive, so reductions track line rate as §2.2 measures.
  double reduce_bw = 300.0e9;
  /// NIC bandwidth per server per direction (bytes/s); 40 Gbps commodity
  /// cloud fabric by default (§5.4).
  double nic_bw = 5.0e9;
  /// Optional per-server NIC rate override (bytes/s). Empty means every
  /// server runs at |nic_bw|; otherwise the vector must have one positive
  /// entry per server. Cloud tenants rarely get uniform NICs (§5.4), and
  /// partition sizing / ring placement should see the real per-link rates.
  std::vector<double> nic_bw_per_server;
  /// Host-memory staging bandwidth per CPU socket. PCIe P2P across PLX
  /// switches (and NIC transfers) bounce through a host buffer, which is why
  /// NCCL's PCIe fallback lands near 5 GB/s in Figure 2b rather than at raw
  /// PCIe rate.
  double sysmem_bw = 5.0e9;
};

/// Kinds of fabric health events. Degrades are *capacity-only*: the channel
/// keeps existing, routes through it stay legal, only its rate changes.
/// Failures are *structural*: the channel's capacity drops to zero, routes
/// over it become illegal (sim::execute refuses them), and planners must
/// re-route — healthy_topology() reflects the loss.
enum class HealthEventKind {
  kDegradeLink = 0,  ///< scale one channel's capacity by a factor in (0, 1]
  kFailLink = 1,     ///< fail a channel and its reverse-direction partner
  kFailGpu = 2,      ///< fail every channel attached to one GPU
  kRestoreAll = 3,   ///< restore every channel to full health
};

/// Human-readable name of a health-event kind ("degrade_link", ...).
const char* to_string(HealthEventKind kind);

/// One fabric health event. Which fields matter depends on |kind|:
/// kDegradeLink reads |channel| and |factor|, kFailLink reads |channel|,
/// kFailGpu reads |server| and |gpu|, kRestoreAll reads nothing.
struct HealthEvent {
  HealthEventKind kind = HealthEventKind::kRestoreAll;
  int channel = -1;     ///< target channel id (degrade / fail link)
  int server = -1;      ///< target server (fail GPU)
  int gpu = -1;         ///< target GPU, local to |server| (fail GPU)
  double factor = 1.0;  ///< capacity multiplier in (0, 1] (degrade)
};

class Fabric {
 public:
  /// Single-server fabric.
  Fabric(const topo::Topology& topo, const FabricParams& params);
  /// Multi-server fabric: identical channel inventory per server plus NICs.
  Fabric(const std::vector<topo::Topology>& servers,
         const FabricParams& params);

  const FabricParams& params() const { return params_; }
  int num_servers() const { return static_cast<int>(servers_.size()); }
  const topo::Topology& server(int s) const {
    return servers_[static_cast<std::size_t>(s)];
  }

  int num_channels() const { return static_cast<int>(capacity_.size()); }
  /// Effective per-channel capacities (base capacity x health factor). This
  /// is what the executor's max-min rate computation reads, so health events
  /// take effect on the next rate recompute.
  const std::vector<double>& capacities() const { return capacity_; }
  const std::string& channel_name(int c) const {
    return name_[static_cast<std::size_t>(c)];
  }

  // --- health layer -------------------------------------------------------

  /// Monotonic event counter: 0 on a freshly built (healthy) fabric, +1 per
  /// applied health event. Plans compiled at different epochs may disagree
  /// about channel rates; the engine's repair path keys off this.
  std::uint64_t epoch() const { return epoch_; }

  /// Health factor of a channel: 1 = full rate, 0 = failed.
  double channel_health(int c) const {
    return health_[static_cast<std::size_t>(c)];
  }
  /// True when the channel has been failed (health exactly 0).
  bool channel_failed(int c) const { return channel_health(c) == 0.0; }
  /// The channel's as-built capacity, before any health scaling.
  double base_capacity(int c) const {
    return base_capacity_[static_cast<std::size_t>(c)];
  }
  /// The server a channel belongs to (NIC channels belong to their server
  /// too; see is_nic_channel() for the component split).
  int channel_server(int c) const {
    return channel_server_[static_cast<std::size_t>(c)];
  }
  /// True for per-server NIC ingress/egress channels — the NIC tier forms
  /// its own fingerprint component, separate from the servers' local fabrics.
  bool is_nic_channel(int c) const {
    return nic_channel_[static_cast<std::size_t>(c)];
  }
  /// True when fail_gpu() has taken this GPU out (its channels are failed).
  bool gpu_failed(int server, int gpu) const;

  /// Scales |channel|'s capacity by |factor| in (0, 1]. factor == 1 restores
  /// a previously degraded channel to full rate. Throws std::invalid_argument
  /// on a failed channel (failures are structural; use restore()) or an
  /// out-of-range channel/factor. Returns the affected channel ids ({channel})
  /// and bumps the epoch.
  std::vector<int> degrade_link(int channel, double factor);

  /// Fails |channel| and its reverse-direction partner (the other direction
  /// of an NVLink bundle, the paired PCIe/QPI/NVSwitch/NIC lane). Returns the
  /// newly failed channel ids and bumps the epoch.
  std::vector<int> fail_link(int channel);

  /// Fails every channel attached to GPU |gpu| of |server|: NVLink
  /// directions, NVSwitch pipes, PCIe up/down, and the reduce engine (whose
  /// zero health doubles as the GPU-failed marker). Returns the newly failed
  /// channel ids and bumps the epoch.
  std::vector<int> fail_gpu(int server, int gpu);

  /// Restores every channel to full health. Returns the channel ids whose
  /// health changed and bumps the epoch.
  std::vector<int> restore();

  /// Applies |event| by dispatching to the methods above. Returns the
  /// affected channel ids.
  std::vector<int> apply(const HealthEvent& event);

  /// Number of fingerprint components: one per server's local fabric, plus
  /// one for the NIC tier on multi-server fabrics.
  int num_components() const {
    return num_servers() + (num_servers() > 1 ? 1 : 0);
  }
  /// Fingerprint of one component, folding each member channel's base
  /// capacity and current health factor. Component s < num_servers() covers
  /// server s's non-NIC channels; the last component (multi-server only)
  /// covers every NIC channel. Health events change only the fingerprints of
  /// the components they touch.
  std::uint64_t component_fingerprint(int component) const;
  /// All component fingerprints, indexed as component_fingerprint().
  std::vector<std::uint64_t> component_fingerprints() const;

  /// |server|'s topology with failed hardware removed: NVLink edges with a
  /// failed direction, and every NVLink edge incident to a failed GPU, are
  /// erased. This is the topology planners should generate trees from after
  /// a structural event. Capacity-only degrades leave it unchanged.
  topo::Topology healthy_topology(int server) const;

  // --- route lookup; GPU ids are local to |server| ------------------------

  /// Direct NVLink (or NVSwitch) path src -> dst. Requires adjacency (or an
  /// NVSwitch fabric).
  std::vector<int> nvlink_route(int server, int src, int dst) const;

  /// PCIe path src -> dst through the switch hierarchy.
  std::vector<int> pcie_route(int server, int src, int dst) const;

  /// The reduction engine channel of a GPU.
  int reduce_channel(int server, int gpu) const;

  /// Cross-machine path (NIC egress of src server + ingress of dst server).
  std::vector<int> nic_route(int src_server, int dst_server) const;

  /// Effective NIC egress rate of |server| (bytes/s): the per-server
  /// override when present (else the uniform params_.nic_bw), scaled by the
  /// egress channel's health factor.
  double nic_rate(int server) const;

  /// True when any per-server NIC override differs from the uniform rate, or
  /// when any NIC channel's health is off nominal — either way the NICs no
  /// longer run at one common rate and planners should look at nic_rate().
  bool heterogeneous_nics() const;

  /// PCIe path from a GPU up to its CPU socket (NIC staging) and back down;
  /// used by baselines whose cross-machine hops traverse PCIe + NIC + PCIe.
  std::vector<int> pcie_to_host_route(int server, int gpu) const;
  std::vector<int> pcie_from_host_route(int server, int gpu) const;

  /// True when src -> dst has a *healthy* direct NVLink (or NVSwitch) path:
  /// a failed link or GPU removes the adjacency, so lowerings that consult
  /// it fall back to PCIe automatically.
  bool nvlink_adjacent(int server, int src, int dst) const;

 private:
  void build_server(int s);

  int add_channel(std::string name, double capacity);
  // Fails |c| (health 0) if not already failed, recording it in |affected|.
  void fail_channel(int c, std::vector<int>* affected);

  FabricParams params_;
  std::vector<topo::Topology> servers_;
  std::vector<double> capacity_;       // effective: base x health
  std::vector<std::string> name_;

  // --- health state (parallel to capacity_) ---
  std::vector<double> base_capacity_;  // as built
  std::vector<double> health_;         // [0, 1]; 0 = failed
  std::vector<int> channel_server_;    // owning server per channel
  std::vector<char> nic_channel_;      // NIC-tier membership per channel
  std::vector<int> reverse_of_;        // reverse-direction partner or -1
  std::uint64_t epoch_ = 0;

  // Set by build_server so add_channel can record ownership.
  int building_server_ = -1;
  bool building_nic_ = false;

  struct ServerChannels {
    // nvlink_dir[src][dst] = channel id or -1.
    std::vector<std::vector<int>> nvlink_dir;
    // NVSwitch pipes.
    std::vector<int> nvswitch_in, nvswitch_out;
    // PCIe segments.
    std::vector<int> gpu_up, gpu_down;   // per GPU
    std::vector<int> plx_up, plx_down;   // per PLX
    std::vector<std::vector<int>> qpi;   // qpi[src_cpu][dst_cpu] or -1
    std::vector<int> sysmem;             // staging buffer per CPU socket
    std::vector<int> reduce;             // per GPU
    int nic_in = -1, nic_out = -1;
  };
  std::vector<ServerChannels> ch_;
};

}  // namespace blink::sim
