// The simulated hardware fabric: every physical bandwidth domain of a server
// (or multi-server cluster) as a channel, plus route lookup for the transfer
// kinds the collectives issue.
//
// Channel inventory per server:
//   * one channel per NVLink bundle per direction (capacity = lanes * lane bw)
//   * PCIe: GPU<->PLX up/down, PLX<->CPU up/down, CPU<->CPU (QPI) per
//     direction — copies between GPUs over PCIe hold every segment on the
//     path, which is how ring protocols collapse when they fall back to PCIe
//   * NVSwitch: per-GPU ingress and egress pipes (non-blocking crossbar)
//   * a per-GPU reduction engine (CUDA kernels reduce at a finite rate and
//     concurrent reductions on one GPU share it — the ~15% MIMO penalty of
//     §2.2)
//   * per-server NIC ingress/egress for cross-machine phases
#pragma once

#include <string>
#include <vector>

#include "blink/topology/topology.h"

namespace blink::sim {

// Calibration constants for behaviours the paper measures but the topology
// does not encode (see DESIGN.md §6).
struct FabricParams {
  // Fixed setup latency charged per chunk copy: the paper notes each chunk
  // costs at least three CUDA commands (§4.2.1).
  double copy_launch_latency = 2e-6;
  // Kernel launch latency for a reduction kernel.
  double reduce_launch_latency = 6e-6;
  // Cross-stream synchronization cost: a dependent op in another stream
  // observes an op's completion only after the cudaEventRecord/StreamWait
  // handshake. Within one stream ops run back to back.
  double event_sync_latency = 6e-6;
  // Aggregate reduction rate of one GPU (bytes/s), shared by concurrent
  // reduction kernels. Kernels are charged for reading every input operand
  // (received chunks plus the local contribution); the rate reflects V100
  // HBM2-bound elementwise sums, comfortably above the 138 GB/s a root can
  // receive, so reductions track line rate as §2.2 measures.
  double reduce_bw = 300.0e9;
  // NIC bandwidth per server per direction (bytes/s); 40 Gbps commodity
  // cloud fabric by default (§5.4).
  double nic_bw = 5.0e9;
  // Optional per-server NIC rate override (bytes/s). Empty means every
  // server runs at |nic_bw|; otherwise the vector must have one positive
  // entry per server. Cloud tenants rarely get uniform NICs (§5.4), and
  // partition sizing / ring placement should see the real per-link rates.
  std::vector<double> nic_bw_per_server;
  // Host-memory staging bandwidth per CPU socket. PCIe P2P across PLX
  // switches (and NIC transfers) bounce through a host buffer, which is why
  // NCCL's PCIe fallback lands near 5 GB/s in Figure 2b rather than at raw
  // PCIe rate.
  double sysmem_bw = 5.0e9;
};

class Fabric {
 public:
  // Single-server fabric.
  Fabric(const topo::Topology& topo, const FabricParams& params);
  // Multi-server fabric: identical channel inventory per server plus NICs.
  Fabric(const std::vector<topo::Topology>& servers,
         const FabricParams& params);

  const FabricParams& params() const { return params_; }
  int num_servers() const { return static_cast<int>(servers_.size()); }
  const topo::Topology& server(int s) const {
    return servers_[static_cast<std::size_t>(s)];
  }

  int num_channels() const { return static_cast<int>(capacity_.size()); }
  const std::vector<double>& capacities() const { return capacity_; }
  const std::string& channel_name(int c) const {
    return name_[static_cast<std::size_t>(c)];
  }

  // --- route lookup; GPU ids are local to |server| ------------------------

  // Direct NVLink (or NVSwitch) path src -> dst. Requires adjacency (or an
  // NVSwitch fabric).
  std::vector<int> nvlink_route(int server, int src, int dst) const;

  // PCIe path src -> dst through the switch hierarchy.
  std::vector<int> pcie_route(int server, int src, int dst) const;

  // The reduction engine channel of a GPU.
  int reduce_channel(int server, int gpu) const;

  // Cross-machine path (NIC egress of src server + ingress of dst server).
  std::vector<int> nic_route(int src_server, int dst_server) const;

  // Effective NIC rate of |server| (bytes/s): the per-server override when
  // present, the uniform params_.nic_bw otherwise.
  double nic_rate(int server) const;

  // True when any per-server NIC override differs from the uniform rate.
  bool heterogeneous_nics() const;

  // PCIe path from a GPU up to its CPU socket (NIC staging) and back down;
  // used by baselines whose cross-machine hops traverse PCIe + NIC + PCIe.
  std::vector<int> pcie_to_host_route(int server, int gpu) const;
  std::vector<int> pcie_from_host_route(int server, int gpu) const;

  bool nvlink_adjacent(int server, int src, int dst) const;

 private:
  void build_server(int s);

  int add_channel(std::string name, double capacity);

  FabricParams params_;
  std::vector<topo::Topology> servers_;
  std::vector<double> capacity_;
  std::vector<std::string> name_;

  struct ServerChannels {
    // nvlink_dir[src][dst] = channel id or -1.
    std::vector<std::vector<int>> nvlink_dir;
    // NVSwitch pipes.
    std::vector<int> nvswitch_in, nvswitch_out;
    // PCIe segments.
    std::vector<int> gpu_up, gpu_down;   // per GPU
    std::vector<int> plx_up, plx_down;   // per PLX
    std::vector<std::vector<int>> qpi;   // qpi[src_cpu][dst_cpu] or -1
    std::vector<int> sysmem;             // staging buffer per CPU socket
    std::vector<int> reduce;             // per GPU
    int nic_in = -1, nic_out = -1;
  };
  std::vector<ServerChannels> ch_;
};

}  // namespace blink::sim
