// Execution trace export: turns a (Program, RunResult) pair into the Chrome
// tracing JSON format (chrome://tracing, Perfetto) so schedules can be
// inspected visually — one lane per stream, one slice per op, with channel
// utilization counters.
#pragma once

#include <string>

#include "blink/sim/executor.h"

namespace blink::sim {

struct TraceOptions {
  // Streams with more ops than this are still exported; slices below this
  // duration (seconds) are dropped to keep files small.
  double min_slice_seconds = 0.0;
  // Emit per-channel byte counters as a summary process.
  bool include_channel_counters = true;
};

// Chrome trace JSON for one executed program. Op start times are
// reconstructed as finish - transfer estimate where exact starts are not
// recorded; slices are keyed by op label and stream.
std::string to_chrome_trace(const Fabric& fabric, const Program& program,
                            const RunResult& result,
                            const TraceOptions& options = {});

// Writes the trace to |path|; returns false on I/O failure.
bool write_chrome_trace(const std::string& path, const Fabric& fabric,
                        const Program& program, const RunResult& result,
                        const TraceOptions& options = {});

}  // namespace blink::sim
