// Execution trace export: turns a (Program, RunResult) pair into the Chrome
// tracing JSON format (chrome://tracing, Perfetto) so schedules can be
// inspected visually — one lane per stream, one slice per op, with channel
// utilization counters.
#pragma once

#include <string>
#include <vector>

#include "blink/sim/executor.h"

namespace blink::sim {

struct TraceOptions {
  // Streams with more ops than this are still exported; slices below this
  // duration (seconds) are dropped to keep files small.
  double min_slice_seconds = 0.0;
  // Emit per-channel byte counters as a summary process.
  bool include_channel_counters = true;
};

// Chrome trace JSON for one executed program. Op start times are
// reconstructed as finish - transfer estimate where exact starts are not
// recorded; slices are keyed by op label and stream.
std::string to_chrome_trace(const Fabric& fabric, const Program& program,
                            const RunResult& result,
                            const TraceOptions& options = {});

// Writes the trace to |path|; returns false on I/O failure.
bool write_chrome_trace(const std::string& path, const Fabric& fabric,
                        const Program& program, const RunResult& result,
                        const TraceOptions& options = {});

// Per-op channel routes of |program|: entry i is op i's route (channel ids,
// empty for delay/kernel-free ops). The supported way for tests and the plan
// repair path to map ops -> links without reading Program internals.
std::vector<std::vector<int>> op_channel_routes(const Program& program);

// Sorted, de-duplicated set of every channel |program|'s ops traverse — the
// program's channel footprint. Plans whose footprints miss a degraded or
// failed channel are unaffected by the event (their simulated rates only
// depend on channels they use).
std::vector<int> program_channels(const Program& program);

// One channel that carried more bytes than its effective capacity could have
// moved within the run's makespan. The fluid max-min executor cannot
// oversubscribe a link, so any violation is an accounting or scheduling bug.
struct CapacityViolation {
  int channel = -1;
  double bytes = 0.0;  // bytes the run pushed through the channel
  double bound = 0.0;  // capacity * makespan + slack
};

// Channels of |result| whose carried bytes exceed capacity * makespan plus
// |slack_bytes| of accumulated floating-point error. Empty on a well-formed
// run; the invariant fuzzer checks this for every compiled plan.
std::vector<CapacityViolation> capacity_violations(const Fabric& fabric,
                                                   const RunResult& result,
                                                   double slack_bytes = 1.0);

}  // namespace blink::sim
