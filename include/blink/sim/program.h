// A Program is the simulator-level analogue of the CUDA code Blink's CodeGen
// emits: a DAG of chunk-granularity operations organized into streams.
//
// Semantics (matching CUDA):
//   * ops in one stream execute in issue order;
//   * an op additionally waits on its |deps| (CUDA events);
//   * a ready op first pays its fixed |latency| (command launch overhead),
//     then moves |bytes| across its route at the max-min fair rate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace blink::sim {

enum class OpKind {
  kCopy,    // data movement across a channel route
  kReduce,  // reduction kernel on a GPU's reduce engine
  kDelay,   // pure latency (e.g. cudaDeviceDisablePeerAccess)
};

struct Op {
  OpKind kind = OpKind::kCopy;
  std::vector<int> route;   // channel ids (empty for kDelay)
  double bytes = 0.0;
  double latency = 0.0;     // fixed setup time before the transfer starts
  int stream = 0;
  std::vector<int> deps;    // op indices that must finish first
  std::string label;        // for traces and tests
};

class Program {
 public:
  // Appends an op and returns its index.
  int add(Op op);

  // Allocates a fresh stream id.
  int new_stream() { return num_streams_++; }

  int num_streams() const { return num_streams_; }
  const std::vector<Op>& ops() const { return ops_; }
  const Op& op(int i) const { return ops_[static_cast<std::size_t>(i)]; }
  bool empty() const { return ops_.empty(); }

  // Total bytes moved by kCopy ops (for utilization accounting).
  double total_copy_bytes() const;

  // Appends all of |other|'s ops, remapping its stream ids and dependency
  // indices past this program's. The two schedules share no streams or
  // events, so they run concurrently — the primitive behind grouped
  // (ncclGroupStart/End-style) launches. Returns the index of |other|'s
  // first op in this program.
  int append(const Program& other);

  // Validates stream ids and dependency indices (deps must point to earlier
  // ops, guaranteeing acyclicity).
  bool validate(std::string* error = nullptr) const;

 private:
  std::vector<Op> ops_;
  int num_streams_ = 0;
};

}  // namespace blink::sim
