// Discrete-event execution of a Program on a Fabric under fluid max-min
// bandwidth sharing.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "blink/sim/fabric.h"
#include "blink/sim/program.h"

namespace blink::sim {

struct RunResult {
  double makespan = 0.0;             // seconds until the last op finished
  std::vector<double> op_start;      // time each op was issued
  std::vector<double> op_finish;     // completion time per op
  std::vector<double> channel_bytes; // bytes carried per channel

  // Collective throughput as the paper reports it: payload bytes / time.
  double throughput(double payload_bytes) const {
    return makespan > 0.0 ? payload_bytes / makespan : 0.0;
  }
};

// Runs |program| to completion and returns timing. Throws std::logic_error
// on deadlock (a dependency cycle through streams), which indicates a
// schedule-generation bug.
RunResult execute(const Fabric& fabric, const Program& program);

// A grouped launch: all member programs start at t=0 on independent streams
// and contend for the fabric, like collectives batched between
// ncclGroupStart/ncclGroupEnd.
struct GroupRunResult {
  RunResult run;                          // timing over the merged schedule
  std::vector<double> makespan;           // completion time per member
  std::vector<std::pair<int, int>> ops;   // member's [begin, end) op range
};

// Merges |programs| into one schedule and runs it. Empty members get a zero
// makespan and an empty range.
GroupRunResult execute_group(const Fabric& fabric,
                             std::span<const Program* const> programs);

}  // namespace blink::sim
