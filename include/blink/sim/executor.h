// Discrete-event execution of a Program on a Fabric under fluid max-min
// bandwidth sharing.
#pragma once

#include <vector>

#include "blink/sim/fabric.h"
#include "blink/sim/program.h"

namespace blink::sim {

struct RunResult {
  double makespan = 0.0;             // seconds until the last op finished
  std::vector<double> op_start;      // time each op was issued
  std::vector<double> op_finish;     // completion time per op
  std::vector<double> channel_bytes; // bytes carried per channel

  // Collective throughput as the paper reports it: payload bytes / time.
  double throughput(double payload_bytes) const {
    return makespan > 0.0 ? payload_bytes / makespan : 0.0;
  }
};

// Runs |program| to completion and returns timing. Throws std::logic_error
// on deadlock (a dependency cycle through streams), which indicates a
// schedule-generation bug.
RunResult execute(const Fabric& fabric, const Program& program);

}  // namespace blink::sim
