// Spanning-arborescence packing (§3.1-§3.2): the TreeGen math.
//
// Pipeline:
//   1. `optimal_rate`      — exact packing optimum via Edmonds' theorem
//                            (min over destinations of root->v max-flow).
//   2. `mwu_pack`          — multiplicative-weight-update fractional packing
//                            (Garg-Konemann style), near-optimal but with an
//                            unbounded number of trees (181 on the 8-GPU
//                            DGX-1V at default epsilon).
//   3. `minimize_trees`    — the §3.2.1 ILP that selects few unit-weight
//                            trees, iteratively relaxed to fractional weights
//                            until within a threshold of the optimum
//                            (6 trees of weight 1.0 on the 8-GPU DGX-1V).
#pragma once

#include <vector>

#include "blink/graph/arborescence.h"
#include "blink/graph/digraph.h"

namespace blink::packing {

struct WeightedTree {
  graph::Arborescence tree;
  double weight = 0.0;  // bytes/s of bandwidth assigned to this tree
};

// Exact optimal broadcast packing rate from |root| (bytes/s). The per-
// destination max-flows are independent; |max_workers| > 1 computes them
// across the shared planner pool (the min over destinations is exact, so
// the result is bit-identical to the serial scan).
double optimal_rate(const graph::DiGraph& g, int root, int max_workers = 1);

// True when the trees' summed weights respect every edge capacity within a
// relative tolerance. Used as the safety check after each packing stage.
bool respects_capacities(const graph::DiGraph& g,
                         const std::vector<WeightedTree>& trees,
                         double tolerance = 1e-6);

// Largest factor by which all weights can be scaled while still respecting
// capacities (the "tighten" step after MWU's conservative scaling).
double tighten_factor(const graph::DiGraph& g,
                      const std::vector<WeightedTree>& trees);

struct MwuOptions {
  double epsilon = 0.05;
  int max_iterations = 100000;
  bool tighten = true;        // rescale to exact feasibility boundary
  bool deduplicate = true;    // merge repeated trees, summing weights
};

struct MwuResult {
  std::vector<WeightedTree> trees;
  double total_rate = 0.0;  // sum of weights, bytes/s
  int iterations = 0;
};

// Fractional packing via MWU. Requires every vertex reachable from |root|;
// returns an empty result otherwise.
MwuResult mwu_pack(const graph::DiGraph& g, int root,
                   const MwuOptions& options = {});

struct MinimizeOptions {
  // Accept a packing whose rate is at least (1 - threshold) * optimal (§3.2.1
  // uses 5%).
  double threshold = 0.05;
  // Unit for integer weights; <= 0 selects the minimum edge capacity.
  double unit = 0.0;
  int ilp_max_nodes = 200000;
  // Tie-break the ILP toward shallow trees: deep trees cost more pipeline
  // fill and per-hop latency at execution time (§4.2.1). Each tree's
  // objective is discounted by penalty * depth / n.
  double depth_penalty = 0.02;
  // Planning fan-out: > 1 evaluates the relaxation's prune candidates (and
  // the optimal-rate max-flows) across the shared planner pool. Purely a
  // speed knob — the accepted prune sequence, and therefore the result, is
  // bit-identical to the serial search at any width.
  int max_workers = 1;
};

enum class MinimizeStage {
  kIlp,        // integer unit weights sufficed
  kRelaxed,    // fractional LP weights were required
};

struct MinimizeResult {
  std::vector<WeightedTree> trees;
  double total_rate = 0.0;
  MinimizeStage stage = MinimizeStage::kIlp;
  double optimal = 0.0;  // the c* the result is measured against
};

// Reduces |candidates| (typically MWU output) to few trees within the
// threshold of the optimal rate.
MinimizeResult minimize_trees(const graph::DiGraph& g, int root,
                              const std::vector<WeightedTree>& candidates,
                              const MinimizeOptions& options = {});

}  // namespace blink::packing
