// The randomized-fabric invariant fuzzer (ROADMAP item 5): compiles all six
// collective kinds across backends on seeded random fabrics from the
// topology zoo and checks the cross-cutting guarantees the hand-built test
// shapes cannot cover — per-tree link-capacity discipline, channel
// byte-accounting against makespan, cluster NIC volume lower bounds,
// plan-record round-trip bit-identity, compile determinism and plan-store
// export/import warm hits, pipelined-never-slower, repair-equals-recompile
// after random health events, and never-slower-than-flat single-tree
// references.
//
// Every case is reproducible from one 64-bit case seed: a failure's repro
// line ("blink_fuzz --case 0x...") replays the fabric, payload, roots and
// rotation checks exactly. tools/blink_fuzz.cpp is the CLI harness;
// tests/fuzz_invariants_test.cpp runs a fixed-seed corpus as the CI smoke
// gate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blink/topology/zoo.h"

namespace blink::fuzz {

struct FuzzOptions {
  /// Fabric generation ranges (server count, GPU count, density, bandwidth
  /// spread); see topo::zoo::RandomFabricParams.
  topo::zoo::RandomFabricParams fabric;
  /// Per-GPU payload range the cases draw from (bytes).
  double min_bytes = 1.0e6;
  double max_bytes = 48.0e6;
  /// Deliberately breaks the named invariant's check (one of
  /// injectable_invariants()) so the harness plumbing — failure capture,
  /// repro line, seeded replay — is itself testable end to end. The engine
  /// under test is untouched: replaying a case without the injection must
  /// come back clean. Empty disables injection.
  std::string inject;
  /// Concurrent cases across the shared thread pool; 0 = hardware default,
  /// 1 = serial. Pure speed knob: per-case results depend only on the case
  /// seed.
  int workers = 0;
};

/// One invariant violation, reproducible from case_seed alone.
struct FuzzFailure {
  std::uint64_t case_seed = 0;
  std::string invariant;  ///< which check fired (see invariant list)
  std::string detail;     ///< kind/backend/values of the violation
  std::string fabric;     ///< RandomFabric::describe() of the failing fabric
  std::string repro;      ///< "blink_fuzz --case 0x<seed>" replay line
};

/// Counters and failures of a fuzz run.
struct FuzzReport {
  std::size_t cases = 0;
  std::size_t single_server_cases = 0;
  std::size_t multi_server_cases = 0;
  std::size_t plans = 0;       ///< plans compiled and checked
  std::size_t executions = 0;  ///< simulated runs
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
};

/// The per-case seed of iteration |index| under run seed |seed| (a
/// splitmix64 finalizer, so neighbouring indices decorrelate fully).
/// run_case(case_seed(s, i), ...) replays iteration i of run(s, ...).
std::uint64_t case_seed(std::uint64_t seed, std::uint64_t index);

/// Runs exactly one fuzz case, appending its counters and any failures to
/// |report|. Not internally synchronized; run() gives each worker its own
/// report and merges.
void run_case(std::uint64_t case_seed, const FuzzOptions& options,
              FuzzReport* report);

/// Runs |iters| cases seeded from |seed|, fanning out across the shared
/// thread pool per options.workers. The merged report is independent of the
/// worker count; failures are sorted by case seed.
FuzzReport run(std::uint64_t seed, std::size_t iters,
               const FuzzOptions& options = {});

/// Invariant names FuzzOptions::inject accepts. Injection perturbs only the
/// *check* (a halved capacity bound, an inflated NIC bound, a corrupted
/// serialization byte, ...), so an injected failure proves the harness
/// detects and reproduces violations without planting a bug in the engine.
const std::vector<std::string>& injectable_invariants();

}  // namespace blink::fuzz
