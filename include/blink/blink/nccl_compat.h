// NCCL-compatible C API facade (§2.3): Blink exposes the same call
// signatures as NCCL so that frameworks can be redirected to libblink.so via
// LD_PRELOAD without source changes.
//
// In this reproduction the "device work" is the fabric simulation, so the
// buffer pointers are opaque and the interesting output is the simulated
// timing, retrievable with blinkCommLastResult(). Signatures, element types
// and reduction ops mirror nccl.h.
#pragma once

#include <cstddef>

#include "blink/blink/communicator.h"

extern "C" {

typedef struct blinkComm* blinkComm_t;

typedef enum {
  blinkSuccess = 0,
  blinkInvalidArgument = 1,
  blinkInternalError = 2,
} blinkResult_t;

typedef enum {
  blinkInt8 = 0,
  blinkUint8 = 1,
  blinkInt32 = 2,
  blinkUint32 = 3,
  blinkInt64 = 4,
  blinkUint64 = 5,
  blinkFloat16 = 6,
  blinkFloat32 = 7,
  blinkFloat64 = 8,
} blinkDataType_t;

typedef enum {
  blinkSum = 0,
  blinkProd = 1,
  blinkMax = 2,
  blinkMin = 3,
  blinkAvg = 4,
} blinkRedOp_t;

// --- backend selection -------------------------------------------------------
// Every algorithm is a CollectiveBackend over the same plan/execute engine,
// so one NCCL-compat communicator can run any of them: Blink's packed
// spanning trees (default), the NCCL 2.4 model (rings + double binary
// trees), pure rings, double binary trees at every size, or the butterfly.
// blinkBackendAuto registers them all and, per collective shape, measures
// each supporting algorithm once and keeps the fastest (NCCL-tuner style).
// blinkBackendCluster is the multi-server three-phase protocol; it is not
// selectable here — blinkClusterCommInitAll creates those communicators.
typedef enum {
  blinkBackendBlink = 0,
  blinkBackendNccl = 1,
  blinkBackendRing = 2,
  blinkBackendDoubleBinary = 3,
  blinkBackendButterfly = 4,
  blinkBackendAuto = 5,
  blinkBackendCluster = 6,
} blinkBackend_t;

typedef struct {
  blinkBackend_t backend;
  // Directory for the persistent plan store, or null/empty to fall back to
  // the BLINK_PLAN_CACHE_DIR environment variable (unset = disabled). When
  // set, the communicator warm-loads previously saved plans before its
  // first collective and flushes its plan cache on destroy, so compiled
  // schedules survive process restarts (§3.2's one-time planning cost is
  // paid once per fabric, not once per process). A store whose format
  // version or fabric fingerprint does not match is ignored — stale plans
  // are never executed.
  const char* plan_cache_dir;
  // Cold-path planning parallelism: worker count for the engine's planner
  // fan-out (single-flight compiles, bake-offs, batched precompiles).
  // 0 uses the BLINK_PLANNER_THREADS environment variable when set, else
  // the hardware concurrency; 1 plans serially. A pure speed knob — plans
  // are bit-identical at any width and plan stores stay compatible.
  int planner_threads;
} blinkBackendConfig_t;

// Creates a communicator over the GPUs |gpu_ids[0..ndev)| of a machine kind
// ("dgx1p", "dgx1v", "dgx2"). NCCL's ncclCommInitAll analogue for the
// simulated machine. The backend defaults to Blink; the BLINK_BACKEND
// environment variable ("blink", "nccl", "ring", "double_binary",
// "butterfly", "auto") overrides it without source changes, matching the
// LD_PRELOAD deployment story. An unknown BLINK_BACKEND value fails with
// blinkInvalidArgument rather than silently running the wrong algorithm.
blinkResult_t blinkCommInitAll(blinkComm_t* comm, const char* machine,
                               int ndev, const int* gpu_ids);

// Creates a communicator over a GPU allocation fragmented across
// |num_servers| machines of kind |machine| (§3.5): server s owns the
// |ndev_per_server[s]| GPUs listed next in |gpu_ids| (flattened,
// server-major). GPU ranks in collective calls are global and server-major.
// Every collective lowers through the three-phase cluster backend
// (per-server reduce -> cross-server exchange over the NICs -> per-server
// broadcast), and grouped launches work as on single-server communicators.
blinkResult_t blinkClusterCommInitAll(blinkComm_t* comm, const char* machine,
                                      int num_servers,
                                      const int* ndev_per_server,
                                      const int* gpu_ids);

// As blinkCommInitAll, but with an explicit backend choice; |config| takes
// precedence over BLINK_BACKEND. A null |config| behaves like
// blinkCommInitAll.
blinkResult_t blinkCommInitAllWithConfig(blinkComm_t* comm,
                                         const char* machine, int ndev,
                                         const int* gpu_ids,
                                         const blinkBackendConfig_t* config);

// The backend a communicator was created with.
blinkResult_t blinkCommBackend(blinkComm_t comm, blinkBackend_t* backend);

// Snapshot of a communicator's plan-cache counters: hits are collectives
// that skipped planning entirely (warm starts included — plans warm-loaded
// from a store count as hits on their first use), misses are cold compiles.
typedef struct {
  unsigned long long hits;
  unsigned long long misses;
  unsigned long long evictions;
  unsigned long long size;      // plans currently cached
  unsigned long long capacity;  // LRU capacity
} blinkCacheStats_t;

// Fills |stats| with the communicator's current plan-cache counters, so
// LD_PRELOAD clients can observe warm-start behavior (e.g. assert zero
// misses after a plan-store warm load) without any C++ surface.
blinkResult_t blinkCommCacheStats(blinkComm_t comm, blinkCacheStats_t* stats);

// --- persistent plans -------------------------------------------------------
// Serializes the communicator's cached plans to |path| under a header
// carrying the plan-store format version and the fabric fingerprint
// (server shapes, link parameters, backend names and planning options).
blinkResult_t blinkCommExportPlans(blinkComm_t comm, const char* path);
// Loads plans saved by blinkCommExportPlans into the communicator's plan
// cache, so each loaded shape's next collective skips TreeGen/CodeGen
// entirely. Returns blinkInvalidArgument — loading nothing — when the file
// is corrupt or truncated, its format version mismatches, or it was saved
// against a different fabric fingerprint: a stale plan is rejected, never
// executed.
blinkResult_t blinkCommImportPlans(blinkComm_t comm, const char* path);
// Batch-compiles every collective kind the communicator's backend supports
// for one payload shape (|count| elements of |dtype|, rooted at |root| or
// -1 for the default) in a single pass across the planner pool, sharing
// the per-root tree generation between kinds. |compiled| (optional)
// receives how many plans were cold — 0 means the shape was already fully
// warm. Call at startup to pay §3.2's one-time planning cost before the
// first training step needs the plans.
blinkResult_t blinkCommPrecompile(blinkComm_t comm, size_t count,
                                  blinkDataType_t dtype, int root,
                                  int* compiled);
// --- fabric health / incremental plan repair --------------------------------
// Applies a fabric health event to the communicator's fabric and repairs its
// plan cache incrementally (CollectiveEngine::repair_plans): only cached
// plans whose channel footprint the event touches are recompiled; the rest
// stay warm under the fabric's new epoch. |event| is "degrade_link",
// "fail_link", "fail_gpu" or "restore". degrade_link/fail_link name the
// target |channel| by its fabric channel name (e.g. "s0.nvl.0>1"; null
// otherwise); fail_gpu targets GPU |gpu| on |server| (0 on single-server
// communicators). |factor| is degrade_link's remaining-capacity fraction in
// (0, 1). On success |dropped|/|retained| (each optional) receive how many
// cached plans were invalidated and recompiled vs kept warm. Unknown events,
// unknown channels, and invalid factors fail with blinkInvalidArgument and
// change nothing.
blinkResult_t blinkCommRepair(blinkComm_t comm, const char* event,
                              const char* channel, int server, int gpu,
                              double factor, int* dropped, int* retained);

// Destroying a communicator that another thread holds queued inside an open
// blinkGroupStart/End is undefined behavior, as in NCCL: group state is
// per-thread, so only the destroying thread's queue is cleaned up.
blinkResult_t blinkCommDestroy(blinkComm_t comm);
blinkResult_t blinkCommCount(blinkComm_t comm, int* count);

size_t blinkTypeSize(blinkDataType_t dtype);

blinkResult_t blinkBroadcast(const void* sendbuff, void* recvbuff,
                             size_t count, blinkDataType_t dtype, int root,
                             blinkComm_t comm, void* stream);
blinkResult_t blinkAllReduce(const void* sendbuff, void* recvbuff,
                             size_t count, blinkDataType_t dtype,
                             blinkRedOp_t op, blinkComm_t comm, void* stream);
blinkResult_t blinkReduce(const void* sendbuff, void* recvbuff, size_t count,
                          blinkDataType_t dtype, blinkRedOp_t op, int root,
                          blinkComm_t comm, void* stream);
blinkResult_t blinkAllGather(const void* sendbuff, void* recvbuff,
                             size_t sendcount, blinkDataType_t dtype,
                             blinkComm_t comm, void* stream);
blinkResult_t blinkReduceScatter(const void* sendbuff, void* recvbuff,
                                 size_t recvcount, blinkDataType_t dtype,
                                 blinkRedOp_t op, blinkComm_t comm,
                                 void* stream);

// --- grouped launches (ncclGroupStart/End semantics) ------------------------
// Collectives issued between blinkGroupStart and the matching blinkGroupEnd
// are queued instead of run; blinkGroupEnd compiles (or fetches cached)
// plans for the batch and launches it as one group contending for the
// fabric. Calls nest; only the outermost blinkGroupEnd launches. Group state
// is per-thread, like NCCL's.
blinkResult_t blinkGroupStart(void);
blinkResult_t blinkGroupEnd(void);

// Per-request results of the last group launched on |comm|.
blinkResult_t blinkCommGroupResultCount(blinkComm_t comm, int* count);
blinkResult_t blinkCommGroupResult(blinkComm_t comm, int index,
                                   blink::CollectiveResult* result);

// Simulated timing of the most recent collective on |comm|. After a grouped
// launch this is the group summary: seconds is the group makespan, bytes the
// total payload.
blinkResult_t blinkCommLastResult(blinkComm_t comm,
                                  blink::CollectiveResult* result);

}  // extern "C"
