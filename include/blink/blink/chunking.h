// Automatic chunk-size selection (§4.2.1): multiplicative-increase,
// additive-decrease (MIAD) across training iterations. Chunks too small pay
// CUDA command overhead; chunks too large stall the forwarding pipeline
// (Figure 11); the tuner probes the first iterations to find the knee
// (Figure 12).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace blink {

struct MiadOptions {
  std::uint64_t initial_chunk = 1ull << 20;  // 1 MiB, as in Figure 12
  double multiplier = 2.0;
  std::uint64_t decrement = 1ull << 20;      // additive decrease step
  std::uint64_t min_chunk = 64ull << 10;
  std::uint64_t max_chunk = 64ull << 20;
  int max_iterations = 16;
  double improvement_tolerance = 0.005;  // relative
};

struct MiadIteration {
  std::uint64_t chunk_bytes = 0;
  double throughput = 0.0;  // bytes/s
};

struct MiadResult {
  std::vector<MiadIteration> trace;  // one entry per probed iteration
  std::uint64_t selected_chunk = 0;
  double selected_throughput = 0.0;
};

// |measure| runs one iteration of the collective with the given chunk size
// and returns the achieved throughput (bytes/s).
MiadResult tune_chunk_size(
    const std::function<double(std::uint64_t)>& measure,
    const MiadOptions& options = {});

}  // namespace blink
