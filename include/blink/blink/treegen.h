// TreeGen (§2.3, §3): from a discovered topology to a small set of weighted
// spanning trees achieving (near-)optimal broadcast rate from a root.
#pragma once

#include "blink/packing/packing.h"
#include "blink/topology/topology.h"

namespace blink {

struct TreeGenOptions {
  double mwu_epsilon = 0.05;
  double minimize_threshold = 0.05;  // §3.2.1: within 5% of optimal
  bool minimize = true;              // ablation hook: raw MWU when false
  topo::LinkType link = topo::LinkType::kNVLink;  // planning fabric
  // Pack against undirected (shared per-link) capacities: required for
  // many-to-many collectives, whose reduce phase reuses the broadcast trees
  // in the reverse direction (§3.3). One-to-many collectives leave this off
  // and get the full per-direction budget.
  bool bidirectional = false;
  // Planning fan-out inside one TreeGen run (the optimal-rate max-flows and
  // the minimizer's prune search); <= 1 is serial. A pure speed knob: the
  // generated trees are bit-identical at any width, so it is deliberately
  // NOT part of the planning fingerprint. Backends set it from the engine's
  // resolved planner_threads.
  int max_workers = 1;
};

struct TreeSet {
  int root = 0;
  topo::LinkType link = topo::LinkType::kNVLink;
  bool bidirectional = false;  // packed against undirected capacities (§3.3)
  graph::DiGraph graph{1};  // the planning graph the edge ids refer to
  std::vector<packing::WeightedTree> trees;
  double rate = 0.0;          // sum of tree weights, bytes/s
  double optimal_rate = 0.0;  // Edmonds bound for this graph and root
  int mwu_tree_count = 0;     // trees before ILP minimization (§3.2 reports
                              // 181 -> 6 on the 8-GPU DGX-1V)
  packing::MinimizeStage stage = packing::MinimizeStage::kIlp;

  bool empty() const { return trees.empty(); }
};

// Packs spanning trees rooted at |root| over the chosen fabric of |topo|.
// Returns an empty TreeSet when the fabric does not connect the allocation
// (e.g. NVLink-disconnected subsets, which is where NCCL falls back to PCIe
// and Blink's hybrid path takes over entirely).
TreeSet generate_trees(const topo::Topology& topo, int root,
                       const TreeGenOptions& options = {});

}  // namespace blink
