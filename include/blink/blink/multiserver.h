/// \file
/// Multi-server collectives (§3.5, Figure 10): the three-phase protocol for
/// GPU allocations fragmented across machines, as a CollectiveBackend over
/// the shared plan/execute engine.
///
/// Every kind follows the same shape — a per-server phase over the server's
/// packed spanning trees (or direct local routes when data just moves), a
/// cross-server exchange over the NICs, and a per-server completion phase —
/// with the buffer split into one partition per server-local root so the
/// local trees and the NICs pipeline against each other:
///
///     kind          phase 1 (local)    phase 2 (NICs)             phase 3 (local)
///     AllReduce     tree reduce        exchange + reduce          tree broadcast
///     ReduceScatter tree reduce        exchange + reduce          shard copies
///     Reduce        tree reduce        converge on root + reduce  copy to root
///     Broadcast     (root resident)    root server fans out       tree broadcast
///     AllGather     copies to roots    block exchange             tree broadcast
///     Gather        copies to roots    converge on root           copy to root
///
/// The phase-2 exchange itself is pluggable (Phase2Strategy): the flat
/// all-to-all, a ring schedule whose total NIC volume grows linearly with
/// the server count instead of quadratically, or a hierarchical (recursive
/// doubling / binomial) exchange with logarithmic step count. Under the
/// default auto policy the backend compiles each applicable candidate and
/// keeps the fastest on the simulated fabric — the same measure-and-cache
/// approach as the engine's backend auto-tuner, amortized by the plan cache
/// to one bake-off per (kind, bytes, root) shape.
///
/// Partitions are sized heterogeneously by default: the measured per-server
/// packed-tree rates (the link-rate probes TreeGen already runs) set a
/// geometric stagger across partitions, floored so no partition starves, so
/// clusters mixing fast and slow servers pipeline the slow box's local
/// phases against the NIC exchange instead of marching in lockstep behind
/// the slowest server.
///
/// ClusterCommunicator is CollectiveEngine with ClusterBackend registered,
/// so the full one-shot surface, run() group launches, thread-safe plan
/// caching, and memoized concurrent execution all work on fragmented
/// allocations.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "blink/blink/backend.h"
#include "blink/blink/codegen.h"
#include "blink/blink/engine.h"
#include "blink/blink/plan.h"
#include "blink/blink/treegen.h"
#include "blink/common/single_flight.h"
#include "blink/sim/fabric.h"

namespace blink {

/// How ClusterBackend picks the phase-2 exchange schedule. kAuto compiles
/// every applicable Phase2Strategy candidate for the shape and keeps the one
/// with the shortest simulated makespan; forcing a strategy skips the
/// bake-off (and throws std::invalid_argument when the strategy cannot
/// lower the kind on this cluster, e.g. a hierarchical reduce exchange on a
/// non-power-of-two server count).
enum class Phase2Policy {
  kAuto = 0,          ///< measure applicable strategies, keep the fastest
  kAllToAll = 1,      ///< always the flat pairwise exchange
  kRing = 2,          ///< always the ring schedule
  kHierarchical = 3,  ///< always recursive doubling / binomial trees
};

/// Human-readable name of a phase-2 policy ("auto", "ring", ...).
const char* to_string(Phase2Policy policy);

/// How ClusterBackend sizes the per-root data partitions.
enum class PartitionSizing {
  /// Partition shares staggered by the measured intra-server bandwidth
  /// imbalance: per-server rates come from the packed-tree probes
  /// (TreeSet::rate, the link-rate measurement TreeGen runs while packing)
  /// and shares follow a geometric ramp with ratio
  /// q = 1 + (r_max - r_min) / (r_max + r_min), floored at
  /// ClusterOptions::min_partition_share of an equal share. On unequal
  /// servers the stagger pipelines the slow box's local phases against the
  /// NIC exchange; on a balanced cluster q = 1 and the result is the equal
  /// split, bit-for-bit.
  kBandwidthWeighted = 0,
  /// The historical equal split: bytes / num_partitions each.
  kEqual = 1,
};

/// Human-readable name of a sizing policy ("bandwidth-weighted", "equal").
const char* to_string(PartitionSizing sizing);

/// Configuration of a ClusterCommunicator (and of the ClusterBackend it
/// registers).
struct ClusterOptions {
  /// Fabric calibration; fabric.nic_bw sets the cross-machine rate.
  sim::FabricParams fabric;
  /// Spanning-tree generation knobs for the per-server packed trees.
  TreeGenOptions treegen;
  /// Schedule emission knobs (chunk size, stream reuse).
  CodeGenOptions codegen;
  /// Phase-2 exchange selection (see Phase2Policy).
  Phase2Policy phase2 = Phase2Policy::kAuto;
  /// Cross-phase chunk pipelining (on by default): phase-1 tree reduces
  /// expose per-chunk completion, phase-2 transfers gate chunk-by-chunk on
  /// the matching phase-1 chunks (ring hops store-and-forward per chunk),
  /// and phase 3 starts per-chunk as reduced chunks arrive. Off reproduces
  /// the whole-partition joins between phases, bit-for-bit the historical
  /// schedules; the knob is part of planning_fingerprint(), so the two
  /// modes never share a plan store.
  bool pipeline = true;
  /// Under kAuto, the flat all-to-all stays a candidate only while the
  /// cluster has at most this many servers: its total NIC volume grows
  /// quadratically, so past the threshold only the linear-volume exchanges
  /// (ring, hierarchical) are considered.
  int all_to_all_max_servers = 4;
  /// Partition sizing policy (see PartitionSizing).
  PartitionSizing partition_sizing = PartitionSizing::kBandwidthWeighted;
  /// Bandwidth-weighted sizing never hands a partition less than this
  /// fraction of an equal share — a near-dead server must slow its
  /// partition, not starve it out of the schedule.
  double min_partition_share = 0.05;
  /// Result memoization, plan-cache capacity, and the persistent plan store
  /// live on the shared engine (these used to be duplicated cluster-private
  /// knobs).
  EngineOptions engine;
};

/// The three-phase lowering. Owns the lazily-built per-(server, root)
/// spanning-tree sets; internally synchronized (single-flight tree-set
/// builds, once-guarded partition sizing), so the engine's concurrent
/// compiles may lower through it from many threads. Under
/// Phase2Policy::kAuto the candidate exchanges of one bake-off are
/// themselves lowered and measured concurrently across the planner pool.
/// Roots are global server-major GPU ids.
class ClusterBackend : public CollectiveBackend {
 public:
  /// Shared immutable spanning-tree set (also referenced by plans).
  using TreeSetPtr = std::shared_ptr<const TreeSet>;

  /// Builds the backend over \p servers and \p fabric, which must outlive
  /// it (both are the owning engine's). Of \p options, the backend uses the
  /// planning fields (treegen, codegen, phase2, all_to_all_max_servers,
  /// partition_sizing, min_partition_share).
  ClusterBackend(const std::vector<topo::Topology>& servers,
                 const sim::Fabric& fabric, const ClusterOptions& options);

  /// Stable name: "cluster".
  const char* name() const override { return "cluster"; }
  /// Every kind has a three-phase lowering.
  bool supports(CollectiveKind kind) const override;
  /// Hashes TreeGen/CodeGen knobs plus the phase-2, chunk-pipelining, and
  /// partition-sizing policies, so differently configured engines never
  /// share a plan store.
  std::uint64_t planning_fingerprint() const override;
  /// Emits the three-phase schedule; under Phase2Policy::kAuto, compiles
  /// every applicable exchange and keeps the fastest on the simulated
  /// fabric. The returned LoweredCollective::footprint unions every bake-off
  /// candidate's program channels — the winner's identity depends on the
  /// losers' timings, so a health event touching any candidate's channels
  /// must re-run the bake-off.
  LoweredCollective lower(CollectiveKind kind, double bytes,
                          int root) override;

  /// Incremental replanning (called by CollectiveEngine::repair_plans under
  /// its quiesce). Capacity-only degradations leave the spanning trees and
  /// (except through the NIC rates) the partition shares untouched, so
  /// nothing here goes stale and invalidation stays footprint-surgical.
  /// Structural events (kFailLink, kFailGpu) refresh the affected servers'
  /// planning topologies from sim::Fabric::healthy_topology and rebuild
  /// exactly those servers' cached tree sets, reporting as stale the sets
  /// whose trees actually changed — plans on untouched servers keep their
  /// warmed sets. A restore reports all_stale: a plan that detoured around a
  /// failure carries no provenance tying it to the restored links, so only a
  /// full recompile recovers the undegraded schedules. Whenever the
  /// partition shares were already measured they are re-derived; if they
  /// moved (heterogeneous NIC health), every plan's split changed and
  /// all_stale is reported.
  HealthNotice on_health_event(const sim::HealthEvent& event,
                               std::span<const int> affected_channels)
      override;

  /// Number of TreeGen runs this backend has performed (initial builds plus
  /// health-event rebuilds) — observability for repair tests asserting that
  /// a capacity-only event rebuilt nothing.
  std::uint64_t tree_builds() const { return tree_builds_.load(); }

  /// Number of data partitions (= per-server roots) the protocol uses: the
  /// smallest server's GPU count, so every server hosts every partition
  /// root.
  int num_partitions() const { return num_partitions_; }

  /// Byte share of each partition (num_partitions() entries summing to 1).
  /// Lazily measured from the packed-tree rates, exactly once however many
  /// threads race the first call; safe to call concurrently with lower().
  const std::vector<double>& partition_shares();

  /// The phase-2 strategies lower() considers for \p kind on this cluster
  /// under the configured policy, in evaluation order. A forced policy
  /// whose strategy cannot lower \p kind here yields an empty list (lower()
  /// throws).
  std::vector<Phase2Strategy> candidate_strategies(CollectiveKind kind) const;

 private:
  struct Emit;  // one lowering's builder + bookkeeping (multiserver.cpp)

  LoweredCollective lower_with(Phase2Strategy strategy, CollectiveKind kind,
                               double bytes, int root);

  // Fills shares_; callers hold shares_mu_.
  void compute_shares();

  // Refreshes |server|'s planning topology from the fabric's current health
  // and rebuilds its cached tree sets, appending the sets whose trees
  // changed to |stale|. Runs under the engine's repair quiesce (no
  // concurrent lower()).
  void refresh_server(int server, std::vector<TreeSetPtr>* stale);

  const TreeSetPtr& tree_set(int server, int root);

  const std::vector<topo::Topology>& servers_;
  const sim::Fabric& fabric_;
  TreeGenOptions treegen_;
  CodeGenOptions codegen_;
  Phase2Policy phase2_;
  bool pipeline_;
  int all_to_all_max_servers_;
  PartitionSizing partition_sizing_;
  double min_partition_share_;
  int num_partitions_ = 0;
  // Resolved ClusterOptions::engine.planner_threads (>= 1): bake-off and
  // partition-probe fan-out width.
  std::size_t planner_threads_ = 1;
  // Partition shares: lazily measured under shares_mu_ (a once_flag before
  // health events existed; repair re-derives them, so the guard must reset).
  std::mutex shares_mu_;
  bool shares_valid_ = false;
  std::vector<double> shares_;  // filled by partition_shares()
  // TreeGen runs performed (initial + health rebuilds); see tree_builds().
  std::atomic<std::uint64_t> tree_builds_{0};
  // Tree-set cache: lookups under sets_mu_, builds single-flighted so
  // distinct (server, root) pairs generate concurrently and racers on one
  // pair share the single TreeGen run. Builds plan against planning_topos_
  // (the servers' topologies minus failed links/GPUs), not servers_, so
  // post-event trees avoid dead hardware; guarded by sets_mu_ and refreshed
  // by on_health_event.
  mutable std::mutex sets_mu_;
  std::vector<topo::Topology> planning_topos_;
  struct PairHash {
    std::size_t operator()(const std::pair<int, int>& p) const {
      return static_cast<std::size_t>(p.first) * 0x9e3779b97f4a7c15ULL ^
             static_cast<std::size_t>(p.second);
    }
  };
  common::SingleFlight<std::pair<int, int>, TreeSetPtr, PairHash>
      sets_flight_;
  std::map<std::pair<int, int>, TreeSetPtr> sets_;
};

/// The multi-server communicator: a CollectiveEngine over a fabric spanning
/// every server plus the NICs, with ClusterBackend as the default backend.
/// compile()/execute()/run() and the one-shot collectives come from the
/// engine, as do the thread-safe PlanCache (hit/miss counters via
/// plan_cache()) and argument validation against the global GPU count.
class ClusterCommunicator : public CollectiveEngine {
 public:
  /// Builds an engine over \p servers (at least two) with ClusterBackend
  /// registered as the default backend.
  explicit ClusterCommunicator(std::vector<topo::Topology> servers,
                               ClusterOptions options = {});

  /// The options this communicator was created with.
  const ClusterOptions& options() const { return options_; }
  /// Number of data partitions the three-phase protocol uses.
  int num_partitions() const { return cluster_->num_partitions(); }

  /// The partition byte shares the cluster backend plans with (sums to 1);
  /// equal under PartitionSizing::kEqual, bandwidth-weighted otherwise.
  std::vector<double> partition_shares();

 private:
  ClusterOptions options_;
  ClusterBackend* cluster_;  // owned by the engine's backend registry
};

/// Bytes that \p program moves out of \p server's NIC egress channel — in a
/// three-phase schedule, exactly the server's phase-2 egress volume (every
/// cross-server copy is phase 2). For benchmarking exchange strategies.
double nic_egress_bytes(const sim::Fabric& fabric, const sim::Program& program,
                        int server);

}  // namespace blink
