// Multi-server collectives (§3.5, Figure 10): the three-phase protocol for
// GPU allocations fragmented across machines, as a CollectiveBackend over
// the shared plan/execute engine.
//
// Every kind follows the same shape — a per-server phase over the server's
// packed spanning trees (or direct local routes when data just moves), a
// cross-server exchange over the NICs, and a per-server completion phase —
// with the buffer split into one partition per server-local root so the
// local trees and the NICs pipeline against each other:
//
//   kind          phase 1 (local)     phase 2 (NICs)            phase 3 (local)
//   AllReduce     tree reduce         all-to-all + reduce       tree broadcast
//   ReduceScatter tree reduce         all-to-all + reduce       shard copies
//   Reduce        tree reduce         to root server + reduce   copy to root
//   Broadcast     (root resident)     root server fans out      tree broadcast
//   AllGather     copies to roots     all-to-all                tree broadcast
//   Gather        copies to roots     to root server            copy to root
//
// ClusterCommunicator is CollectiveEngine with ClusterBackend registered, so
// the full one-shot surface, run() group launches, thread-safe plan caching,
// and memoized concurrent execution all work on fragmented allocations.
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "blink/blink/backend.h"
#include "blink/blink/codegen.h"
#include "blink/blink/engine.h"
#include "blink/blink/plan.h"
#include "blink/blink/treegen.h"
#include "blink/sim/fabric.h"

namespace blink {

struct ClusterOptions {
  sim::FabricParams fabric;  // fabric.nic_bw sets the cross-machine rate
  TreeGenOptions treegen;
  CodeGenOptions codegen;
  // Result memoization and plan-cache capacity live on the shared engine
  // (these used to be duplicated cluster-private knobs).
  EngineOptions engine;
};

// The three-phase lowering. Owns the lazily-built per-(server, root)
// spanning-tree sets; state mutation happens under the owning engine's
// compile mutex. Roots are global server-major GPU ids.
class ClusterBackend : public CollectiveBackend {
 public:
  using TreeSetPtr = std::shared_ptr<const TreeSet>;

  // |servers| and |fabric| must outlive the backend (the owning engine's).
  ClusterBackend(const std::vector<topo::Topology>& servers,
                 const sim::Fabric& fabric, TreeGenOptions treegen,
                 CodeGenOptions codegen);

  const char* name() const override { return "cluster"; }
  bool supports(CollectiveKind kind) const override;
  std::uint64_t planning_fingerprint() const override;
  LoweredCollective lower(CollectiveKind kind, double bytes,
                          int root) override;

  // Number of data partitions (= per-server roots) the protocol uses: the
  // smallest server's GPU count, so every server hosts every partition root.
  int num_partitions() const { return num_partitions_; }

 private:
  struct Emit;  // one lowering's builder + bookkeeping (multiserver.cpp)

  const TreeSetPtr& tree_set(int server, int root);

  const std::vector<topo::Topology>& servers_;
  const sim::Fabric& fabric_;
  TreeGenOptions treegen_;
  CodeGenOptions codegen_;
  int num_partitions_ = 0;
  std::map<std::pair<int, int>, TreeSetPtr> sets_;
};

// The multi-server communicator: a CollectiveEngine over a fabric spanning
// every server plus the NICs, with ClusterBackend as the default backend.
// compile()/execute()/run() and the one-shot collectives come from the
// engine, as do the thread-safe PlanCache (hit/miss counters via
// plan_cache()) and argument validation against the global GPU count.
class ClusterCommunicator : public CollectiveEngine {
 public:
  explicit ClusterCommunicator(std::vector<topo::Topology> servers,
                               ClusterOptions options = {});

  const ClusterOptions& options() const { return options_; }
  int num_partitions() const { return cluster_->num_partitions(); }

 private:
  ClusterOptions options_;
  ClusterBackend* cluster_;  // owned by the engine's backend registry
};

}  // namespace blink
