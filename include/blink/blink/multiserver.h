// Multi-server collectives (§3.5, Figure 10): the three-phase AllReduce for
// GPU allocations fragmented across machines.
//
// Phase 1: per-server reduce over the server's packed spanning trees, one
//          data partition per server-local root.
// Phase 2: cross-server one-hop reduce-broadcast among the per-partition
//          roots over the NICs (every root sends its partial to the other
//          servers' roots and reduces what it receives).
// Phase 3: per-server broadcast of the fully-reduced partition.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "blink/blink/communicator.h"
#include "blink/blink/plan.h"
#include "blink/blink/plan_cache.h"
#include "blink/blink/treegen.h"
#include "blink/sim/fabric.h"

namespace blink {

struct ClusterOptions {
  sim::FabricParams fabric;  // fabric.nic_bw sets the cross-machine rate
  TreeGenOptions treegen;
  CodeGenOptions codegen;
  // Memoize each plan's execution result (the simulation is deterministic).
  bool memoize = true;
  std::size_t plan_cache_capacity = 64;
};

class ClusterCommunicator {
 public:
  ClusterCommunicator(std::vector<topo::Topology> servers,
                      ClusterOptions options = {});

  int num_servers() const { return fabric_.num_servers(); }
  int num_gpus() const;  // across all servers
  const sim::Fabric& fabric() const { return fabric_; }

  // Number of data partitions (= per-server roots) the protocol uses.
  int num_partitions() const { return num_partitions_; }

  // Compiles (or fetches from the plan cache) the three-phase AllReduce
  // schedule for a |bytes| buffer per GPU.
  std::shared_ptr<const CollectivePlan> compile_all_reduce(double bytes);

  // Runs a compiled plan; same semantics as Communicator::execute.
  CollectiveResult execute(const CollectivePlan& plan);

  const PlanCache& plan_cache() const { return plans_; }

  // Three-phase AllReduce of a |bytes| buffer per GPU (one-shot wrapper
  // over compile_all_reduce + execute).
  CollectiveResult all_reduce(double bytes);

 private:
  const TreeSet& tree_set(int server, int root);

  std::vector<topo::Topology> servers_;
  ClusterOptions options_;
  sim::Fabric fabric_;
  int num_partitions_ = 0;
  std::map<std::pair<int, int>, std::shared_ptr<const TreeSet>> sets_;
  PlanCache plans_;
};

}  // namespace blink
