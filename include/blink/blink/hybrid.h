// Hybrid PCIe + NVLink transfers (§3.4, Equation 8).
//
// The NVIDIA driver exposes either NVLink P2P or PCIe for a device pair, so
// Blink builds two separate tree sets and splits the payload to equalize
// completion times, accounting for the latency of
// cudaDeviceDisablePeerAccess (T_dpa):
//
//   D_pcie = D * BWp / (BWp + BWn)  -  T_dpa * BWp * BWn / (BWp + BWn)
//   D_nvl  = D - D_pcie
#pragma once

namespace blink {

struct HybridSplit {
  double nvlink_bytes = 0.0;
  double pcie_bytes = 0.0;
};

// Equation 8. Rates are the packed tree-set rates in bytes/s; t_dpa is the
// peer-access switch latency in seconds. The PCIe share is clamped to
// [0, total_bytes]: for small transfers the switch cost exceeds the benefit
// and everything goes over NVLink.
HybridSplit compute_hybrid_split(double total_bytes, double nvlink_rate,
                                 double pcie_rate, double t_dpa);

}  // namespace blink
