/// \file
/// The CollectiveBackend interface: the single seam between collective
/// algorithms and the plan/execute engine.
///
/// A backend's sole job is *lowering* — turning a validated
/// (CollectiveKind, bytes, root) into a sim::Program plus a chunking
/// decision. Everything else (argument validation, the LRU PlanCache, result
/// memoization, solo and grouped execution on the fabric) lives in
/// CollectiveEngine and is shared by every algorithm: Blink's packed spanning
/// trees, NCCL-like rings with the double-binary-tree switch, pure rings,
/// double binary trees, and the butterfly all lower through this interface,
/// so each gets plan caching and group launches for free.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "blink/blink/plan.h"
#include "blink/blink/treegen.h"
#include "blink/sim/fabric.h"
#include "blink/sim/program.h"

/// Blink: a reproduction of "Blink: Fast and Generic Collectives for
/// Distributed ML" (MLSys 2020) grown into a plan/execute collective engine
/// over a simulated multi-server GPU fabric.
namespace blink {

/// What lowering produces: the routed schedule, the chunk size it was emitted
/// at, result metadata (bytes / num_trees / num_chunks filled; timing left
/// for execute()), and the spanning-tree sets the schedule was compiled from
/// (provenance for inspection; empty for backends that do not plan via
/// TreeGen).
struct LoweredCollective {
  /// The routed, chunked transfer schedule ready for the simulator.
  sim::Program program;
  /// Chunk size the schedule was emitted at (fixed or tuner-chosen).
  std::uint64_t chunk_bytes = 0;
  /// Result metadata with timing unfilled; execute() completes it.
  CollectiveResult meta;
  /// Spanning-tree provenance, shared with the backend's per-root caches.
  std::vector<std::shared_ptr<const TreeSet>> tree_sets;
  /// The cross-server exchange schedule the lowering chose; kNone for
  /// backends without a NIC phase. Recorded on the plan and persisted.
  Phase2Strategy phase2 = Phase2Strategy::kNone;
  /// Channels the lowering *decision* depended on beyond the emitted
  /// program's own routes — e.g. the candidate schedules a bake-off measured
  /// and rejected. The engine unions these with the program's channels into
  /// the plan's recorded footprint, so a capacity change that would have
  /// flipped the bake-off invalidates the winner too. Backends whose
  /// lowering is a pure function of (kind, bytes, root) leave it empty.
  std::vector<int> footprint;
};

/// What a backend reports from on_health_event(): how much of its internal
/// planning state the event invalidated, so the engine can scope plan
/// invalidation to match.
struct HealthNotice {
  /// Every plan this backend lowered is stale (its planning decisions
  /// depend on fabric state the event changed in ways the channel footprint
  /// cannot bound — e.g. probe-driven root/split selection).
  bool all_stale = false;
  /// Spanning-tree sets the event rebuilt: plans referencing any of these
  /// (by pointer, via CollectivePlan::tree_sets()) are stale even when their
  /// channel footprint misses the affected links, because a from-scratch
  /// compile on the changed fabric would pack different trees.
  std::vector<std::shared_ptr<const TreeSet>> stale_tree_sets;
};

/// A collective algorithm as seen by CollectiveEngine: a named lowering
/// policy from (kind, bytes, root) to a LoweredCollective. The engine
/// single-flights compilation per plan key — duplicate requests for one
/// shape share a single lower() call — but *distinct* shapes lower
/// concurrently from the planner pool, so implementations that keep lazy
/// planning caches (tree sets, probe rates) must synchronize them
/// internally (BlinkBackend uses per-slot std::once_flag, ClusterBackend
/// single-flights its tree-set builds). Stateless lowerings need nothing.
class CollectiveBackend {
 public:
  /// Backends are owned and destroyed by the engine's registry.
  virtual ~CollectiveBackend() = default;

  /// Short stable identifier ("blink", "nccl", "ring", "double_binary",
  /// "butterfly", "cluster"); used by engine lookups, the facade's backend
  /// selector, and the plan store (plans travel by backend name).
  virtual const char* name() const = 0;

  /// Whether this backend can lower \p kind on its fabric. The engine
  /// rejects unsupported kinds with std::invalid_argument before calling
  /// lower().
  virtual bool supports(CollectiveKind kind) const = 0;

  /// Number of GPU ranks this backend can address as roots, or -1 to accept
  /// any rank of the engine. Backends lowering onto a subset of the engine's
  /// fabric (a single server of a cluster engine) report that subset's size;
  /// the engine rejects roots beyond it before calling lower().
  virtual int num_ranks() const { return -1; }

  /// The root used when a request passes root == -1. Non-const because
  /// policies may probe lazily (Blink picks the root with the best packed
  /// rate).
  virtual int default_root(CollectiveKind kind) {
    (void)kind;
    return 0;
  }

  /// Fingerprint of the options that change what lower() emits for a given
  /// (kind, bytes, root) — chunk policy, tree-generation knobs, protocol
  /// thresholds, exchange and partition-sizing policies. Folded into the
  /// engine's fabric fingerprint so a persistent plan store compiled under
  /// one configuration is never warm-loaded into an engine configured
  /// differently. Backends whose lowering has no tunables keep the default.
  virtual std::uint64_t planning_fingerprint() const { return 0; }

  /// Lowers a collective to a program + chunking decision. The engine has
  /// already validated bytes > 0, the root range, and supports(kind), and
  /// guarantees at most one in-flight lower() *per plan key* (single-flight
  /// compilation) — but calls for distinct keys may run concurrently, so
  /// any internal caches an implementation mutates must be synchronized.
  /// Lowering must be deterministic in (kind, bytes, root): concurrent and
  /// serial compiles of one shape must produce bit-identical plans.
  virtual LoweredCollective lower(CollectiveKind kind, double bytes,
                                  int root) = 0;

  /// Called by CollectiveEngine::repair_plans() after \p event has been
  /// applied to the fabric, with the ids of the \p affected_channels, while
  /// compilation and execution are quiesced (no lower() in flight). The
  /// backend refreshes any planning state the event invalidated (tree sets,
  /// probe caches, lazily chosen roots) and reports what that makes stale.
  /// The default keeps no fabric-derived state and reports nothing stale, so
  /// such backends fall back to pure channel-footprint invalidation.
  virtual HealthNotice on_health_event(const sim::HealthEvent& event,
                                       std::span<const int> affected_channels) {
    (void)event;
    (void)affected_channels;
    return {};
  }
};

}  // namespace blink
