// NVSwitch (DGX-2) tree constructions (§3.5).
//
// On a non-blocking crossbar Blink's generated trees are "deceptively
// simple": for AllReduce, with m GPUs each GPU roots 1/m of the data and is
// directly connected to the other m-1 GPUs — m one-hop trees. These have a
// large latency advantage over NCCL's double binary trees and rings for
// small data (Figures 19/20).
#pragma once

#include <vector>

#include "blink/blink/codegen.h"

namespace blink {

// m one-hop trees, one rooted at every GPU (for AllReduce/AllGather).
std::vector<RoutedTree> dgx2_one_hop_trees(const sim::Fabric& fabric,
                                           int server);

// Broadcast relay trees from |root|: m-1 two-hop trees; relay v receives a
// distinct slice and re-broadcasts it, saturating the root's egress pipe.
std::vector<RoutedTree> dgx2_broadcast_trees(const sim::Fabric& fabric,
                                             int server, int root);

}  // namespace blink
