// The Blink communicator: the library's main entry point, mirroring NCCL's
// communicator abstraction (§2.3 workflow: discover topology -> TreeGen ->
// CodeGen -> execute).
//
// A Communicator owns the allocation's induced topology, the simulated
// fabric, and per-root tree caches. The API is an explicit plan/execute
// split: compile() turns (collective, bytes, root) into an immutable
// CollectivePlan — running TreeGen, chunk tuning, and CodeGen once — and
// execute() runs a plan on the fabric, returning the timing a real run would
// produce. Compiled plans live in an LRU PlanCache, so repeated collectives
// (every training iteration after the first) skip planning entirely. The
// classic one-shot methods (broadcast, all_reduce, ...) remain as thin
// wrappers over compile+execute, and run() launches a batch of requests as
// one group on the fabric (NCCL group semantics).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "blink/blink/chunking.h"
#include "blink/blink/codegen.h"
#include "blink/blink/plan.h"
#include "blink/blink/plan_cache.h"
#include "blink/blink/treegen.h"
#include "blink/sim/executor.h"
#include "blink/sim/fabric.h"
#include "blink/topology/topology.h"

namespace blink {

struct CommunicatorOptions {
  sim::FabricParams fabric;
  TreeGenOptions treegen;
  CodeGenOptions codegen;  // codegen.chunk_bytes == 0 enables MIAD auto-tune
  // Hybrid PCIe+NVLink transfers (§3.4); applies to Broadcast.
  bool hybrid = false;
  // Latency model for cudaDeviceDisablePeerAccess: base + per_gpu * n (§5.3
  // reports the switch cost growing with the number of GPUs).
  double dpa_base_latency = 2.0e-3;
  double dpa_per_gpu_latency = 1.0e-3;
  // Memoize each plan's execution result (the simulation is deterministic).
  bool memoize = true;
  // Compiled plans kept in the LRU cache.
  std::size_t plan_cache_capacity = 256;
};

class Communicator {
 public:
  explicit Communicator(topo::Topology topo,
                        CommunicatorOptions options = {});

  int num_gpus() const { return topo_.num_gpus; }
  const topo::Topology& topology() const { return topo_; }
  const CommunicatorOptions& options() const { return options_; }
  const sim::Fabric& fabric() const { return fabric_; }

  // The tree set used for one-to-many collectives rooted at |root| (NVLink
  // fabric, or the PCIe fallback when NVLink does not connect the
  // allocation).
  const TreeSet& tree_set(int root);
  // The undirected-capacity tree set used by many-to-many collectives
  // (AllReduce/AllGather), whose two phases share each link (§3.3).
  const TreeSet& bidir_tree_set(int root);
  // The PCIe tree set (hybrid transfers and fallback).
  const TreeSet& pcie_tree_set(int root);

  // Root with the highest packed rate; AllReduce and friends use it.
  int best_root();

  // --- plan/execute --------------------------------------------------------
  // |bytes| is each GPU's buffer size (NCCL semantics) throughout.

  // Compiles (or fetches from the plan cache) the schedule for a collective.
  // root == -1 picks the default root, the same policy the one-shot methods
  // use. Throws std::invalid_argument on a bad root or non-positive size.
  std::shared_ptr<const CollectivePlan> compile(CollectiveKind kind,
                                                double bytes, int root = -1);

  // Runs a compiled plan on the fabric. Deterministic: re-executing a plan
  // returns bit-identical results. Throws std::invalid_argument if the plan
  // was compiled by a different communicator.
  CollectiveResult execute(const CollectivePlan& plan);

  // Compiles/fetches a plan per request and launches them all as one group
  // sharing the fabric (ncclGroupStart/End semantics). Each result carries
  // that request's own completion time under contention.
  std::vector<CollectiveResult> run(std::span<const CollectiveRequest> reqs);

  // Plan-cache statistics: hits count collectives that skipped TreeGen and
  // CodeGen entirely.
  const PlanCache& plan_cache() const { return plans_; }

  // --- one-shot collectives (wrappers over compile + execute) --------------
  CollectiveResult broadcast(double bytes, int root);
  CollectiveResult gather(double bytes, int root);
  CollectiveResult reduce(double bytes, int root);
  CollectiveResult all_reduce(double bytes);
  CollectiveResult all_gather(double bytes);
  CollectiveResult reduce_scatter(double bytes);

  // MIAD auto-tuning trace for a collective (Figure 12); compile() runs the
  // same tuner when codegen.chunk_bytes == 0.
  MiadResult tune_chunk_size(CollectiveKind kind, double bytes, int root = -1,
                             const MiadOptions& miad = {});

 private:
  // Tree-set slot shared with plans so cache eviction or future slot churn
  // never invalidates an outstanding plan's references.
  using TreeSetPtr = std::shared_ptr<const TreeSet>;

  const TreeSetPtr& shared_tree_set(int root);
  const TreeSetPtr& shared_bidir_tree_set(int root);
  const TreeSetPtr& shared_pcie_tree_set(int root);

  int default_root(CollectiveKind kind);
  std::shared_ptr<const CollectivePlan> compile_fresh(CollectiveKind kind,
                                                      double bytes, int root,
                                                      std::uint64_t chunk);
  // One probe run at an explicit chunk size (the MIAD tuner's measure fn).
  CollectiveResult probe(CollectiveKind kind, double bytes, int root,
                         std::uint64_t chunk_bytes);
  // Achieved broadcast rate of a tree set, measured by a probe run (the
  // hybrid split needs effective rates: PCIe trees share host-staging
  // segments, so their packed rate overstates what they deliver together).
  double measured_rate(const TreeSet& set, double probe_bytes);
  sim::Program build_program(CollectiveKind kind, double bytes, int root,
                             std::uint64_t chunk_bytes, CollectiveResult* meta,
                             std::vector<TreeSetPtr>* used_sets);
  double dpa_latency() const;

  topo::Topology topo_;
  CommunicatorOptions options_;
  sim::Fabric fabric_;

  std::vector<TreeSetPtr> nvlink_sets_;
  std::vector<TreeSetPtr> bidir_sets_;
  std::vector<TreeSetPtr> pcie_sets_;
  std::optional<int> best_root_;
  // Probe-rate cache keyed by (link, bidirectional, root, probe_bytes) —
  // value identity, not the address of a TreeSet.
  std::map<std::tuple<int, bool, int, std::uint64_t>, double> measured_rates_;
  PlanCache plans_;
};

}  // namespace blink
