// The Blink communicator: the library's main entry point, mirroring NCCL's
// communicator abstraction (§2.3 workflow: discover topology -> TreeGen ->
// CodeGen -> execute).
//
// Since the backend refactor, planning and execution live in different
// classes. BlinkBackend implements the CollectiveBackend interface with the
// paper's pipeline — per-root packed spanning trees (TreeGen), MIAD chunk
// tuning, hybrid PCIe+NVLink splits, and CodeGen — and Communicator is a
// thin CollectiveEngine over it: compile() turns (collective, bytes, root)
// into an immutable CollectivePlan via the backend, execute() runs plans on
// the fabric, run() launches batched groups, and the shared thread-safe
// PlanCache amortizes planning across iterations. The classic one-shot
// methods (broadcast, all_reduce, ...) are engine wrappers over
// compile+execute.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "blink/blink/backend.h"
#include "blink/blink/chunking.h"
#include "blink/blink/codegen.h"
#include "blink/blink/engine.h"
#include "blink/blink/treegen.h"
#include "blink/sim/fabric.h"
#include "blink/topology/topology.h"

namespace blink {

struct CommunicatorOptions {
  sim::FabricParams fabric;
  TreeGenOptions treegen;
  CodeGenOptions codegen;  // codegen.chunk_bytes == 0 enables MIAD auto-tune
  // Hybrid PCIe+NVLink transfers (§3.4); applies to Broadcast.
  bool hybrid = false;
  // Latency model for cudaDeviceDisablePeerAccess: base + per_gpu * n (§5.3
  // reports the switch cost growing with the number of GPUs).
  double dpa_base_latency = 2.0e-3;
  double dpa_per_gpu_latency = 1.0e-3;
  // Memoize each plan's execution result (the simulation is deterministic).
  bool memoize = true;
  // Compiled plans kept in the LRU cache.
  std::size_t plan_cache_capacity = 256;
  // Persistent plan store directory (see EngineOptions::plan_store_dir);
  // empty disables persistence.
  std::string plan_store_dir;
  // Cold-path planning parallelism (see EngineOptions::planner_threads):
  // 0 = BLINK_PLANNER_THREADS / hardware default, 1 = serial. Not part of
  // the planning fingerprint — parallel and serial plans are bit-identical.
  int planner_threads = 0;
};

// Blink's planning pipeline as a CollectiveBackend: lowers a collective to a
// schedule over the allocation's packed spanning trees. Owns the per-root
// tree-set slots, the measured-rate probe cache, and the chunk-size policy
// (fixed by options, or MIAD-tuned per shape when codegen.chunk_bytes == 0).
// Internally synchronized: concurrent lower() calls build each tree-set
// slot exactly once (per-slot std::once_flag) and the probe-rate cache
// takes its own short lock, so the engine's single-flight compiles may run
// this backend from many threads at once.
class BlinkBackend : public CollectiveBackend {
 public:
  using TreeSetPtr = std::shared_ptr<const TreeSet>;

  // |topo| and |fabric| must outlive the backend (the owning engine's).
  BlinkBackend(const topo::Topology& topo, const sim::Fabric& fabric,
               CommunicatorOptions options);

  const char* name() const override { return "blink"; }
  bool supports(CollectiveKind kind) const override;
  int num_ranks() const override { return topo_.num_gpus; }
  // AllReduce/AllGather default to the best packed root (0 on NVSwitch
  // fabrics), one-to-many collectives to 0.
  int default_root(CollectiveKind kind) override;
  std::uint64_t planning_fingerprint() const override;
  LoweredCollective lower(CollectiveKind kind, double bytes,
                          int root) override;

  // Health events (CollectiveEngine::repair_plans, under its quiesce).
  // Blink's planning state is whole-fabric — every plan shares the per-root
  // tree sets, the measured-rate probes, and the best-root choice — so any
  // event over this backend's fabric reports all_stale: the lazy slots are
  // reset, the planning topology refreshed (failed links/GPUs erased), and
  // every plan recompiles. Surgical retention is the cluster backend's game;
  // a single server is one failure domain.
  HealthNotice on_health_event(const sim::HealthEvent& event,
                               std::span<const int> affected_channels)
      override;

  // Lowering at an explicit chunk size (chunk tuners bypass the policy).
  LoweredCollective lower_at_chunk(CollectiveKind kind, double bytes, int root,
                                   std::uint64_t chunk_bytes);

  // One probe run at an explicit chunk size (the MIAD tuner's measure fn).
  CollectiveResult probe(CollectiveKind kind, double bytes, int root,
                         std::uint64_t chunk_bytes);

  // Tree-set slots shared with plans so cache eviction or future slot churn
  // never invalidates an outstanding plan's references.
  const TreeSetPtr& shared_tree_set(int root);
  const TreeSetPtr& shared_bidir_tree_set(int root);
  const TreeSetPtr& shared_pcie_tree_set(int root);

  // Root with the highest packed rate; AllReduce and friends use it.
  int best_root();

  const CommunicatorOptions& options() const { return options_; }

 private:
  sim::Program build_program(CollectiveKind kind, double bytes, int root,
                             std::uint64_t chunk_bytes, CollectiveResult* meta,
                             std::vector<TreeSetPtr>* used_sets);
  // Achieved broadcast rate of a tree set, measured by a probe run (the
  // hybrid split needs effective rates: PCIe trees share host-staging
  // segments, so their packed rate overstates what they deliver together).
  double measured_rate(const TreeSet& set, double probe_bytes);
  double dpa_latency() const;

  const topo::Topology& topo_;
  const sim::Fabric& fabric_;
  CommunicatorOptions options_;
  // What tree generation plans against: topo_ minus failed links/GPUs.
  // Refreshed by on_health_event under the engine's repair quiesce, which
  // also resets every lazy slot below, so no build reads a stale copy.
  topo::Topology planning_topo_;
  // Resolved CommunicatorOptions::planner_threads (>= 1): how wide
  // best_root()'s all-roots tree generation fans out.
  std::size_t planner_threads_ = 1;

  // Each slot is built exactly once under its flag; concurrent callers for
  // one root wait on the one TreeGen run, distinct roots build in parallel.
  // The flags live behind unique_ptr so on_health_event can re-arm them
  // (std::once_flag itself cannot be reset).
  std::vector<TreeSetPtr> nvlink_sets_;
  std::vector<TreeSetPtr> bidir_sets_;
  std::vector<TreeSetPtr> pcie_sets_;
  std::unique_ptr<std::once_flag[]> nvlink_once_;
  std::unique_ptr<std::once_flag[]> bidir_once_;
  std::unique_ptr<std::once_flag[]> pcie_once_;
  std::unique_ptr<std::once_flag> best_root_once_;
  std::optional<int> best_root_;
  // Guards measured_rates_ only; probes run outside it (duplicates compute
  // the same deterministic value, first insert wins).
  std::mutex rates_mu_;
  // Probe-rate cache keyed by (link, bidirectional, root, probe_bytes) —
  // value identity, not the address of a TreeSet.
  std::map<std::tuple<int, bool, int, std::uint64_t>, double> measured_rates_;
};

class Communicator : public CollectiveEngine {
 public:
  explicit Communicator(topo::Topology topo,
                        CommunicatorOptions options = {});

  const CommunicatorOptions& options() const { return options_; }

  // The tree set used for one-to-many collectives rooted at |root| (NVLink
  // fabric, or the PCIe fallback when NVLink does not connect the
  // allocation).
  const TreeSet& tree_set(int root);
  // The undirected-capacity tree set used by many-to-many collectives
  // (AllReduce/AllGather), whose two phases share each link (§3.3).
  const TreeSet& bidir_tree_set(int root);
  // The PCIe tree set (hybrid transfers and fallback).
  const TreeSet& pcie_tree_set(int root);

  // Root with the highest packed rate; AllReduce and friends use it.
  int best_root();

  // MIAD auto-tuning trace for a collective (Figure 12); compile() runs the
  // same tuner when codegen.chunk_bytes == 0. Primes the plan cache with the
  // schedule compile() would produce, so the next collective here is a hit.
  MiadResult tune_chunk_size(CollectiveKind kind, double bytes, int root = -1,
                             const MiadOptions& miad = {});

 private:
  CommunicatorOptions options_;
  BlinkBackend* blink_;  // owned by the engine's backend registry
};

}  // namespace blink
