// The Blink communicator: the library's main entry point, mirroring NCCL's
// communicator abstraction (§2.3 workflow: discover topology -> TreeGen ->
// CodeGen -> execute).
//
// A Communicator owns the allocation's induced topology, the simulated
// fabric, and per-root tree caches. Collective calls compile a schedule and
// execute it on the fabric, returning the timing a real run would produce.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "blink/blink/chunking.h"
#include "blink/blink/codegen.h"
#include "blink/blink/treegen.h"
#include "blink/sim/executor.h"
#include "blink/sim/fabric.h"
#include "blink/topology/topology.h"

namespace blink {

struct CommunicatorOptions {
  sim::FabricParams fabric;
  TreeGenOptions treegen;
  CodeGenOptions codegen;  // codegen.chunk_bytes == 0 enables MIAD auto-tune
  // Hybrid PCIe+NVLink transfers (§3.4); applies to Broadcast.
  bool hybrid = false;
  // Latency model for cudaDeviceDisablePeerAccess: base + per_gpu * n (§5.3
  // reports the switch cost growing with the number of GPUs).
  double dpa_base_latency = 2.0e-3;
  double dpa_per_gpu_latency = 1.0e-3;
  // Memoize collective results (the simulation is deterministic).
  bool memoize = true;
};

enum class CollectiveKind {
  kBroadcast,
  kGather,
  kReduce,
  kAllReduce,
  kAllGather,
  kReduceScatter,
};

const char* to_string(CollectiveKind kind);

struct CollectiveResult {
  double seconds = 0.0;
  double bytes = 0.0;           // per-GPU buffer size (NCCL semantics)
  double algorithm_bw = 0.0;    // bytes / seconds, the paper's "throughput"
  int num_trees = 0;
  int num_chunks = 0;           // chunks of the heaviest tree
  int num_ops = 0;              // schedule size
};

class Communicator {
 public:
  explicit Communicator(topo::Topology topo,
                        CommunicatorOptions options = {});

  int num_gpus() const { return topo_.num_gpus; }
  const topo::Topology& topology() const { return topo_; }
  const CommunicatorOptions& options() const { return options_; }
  const sim::Fabric& fabric() const { return fabric_; }

  // The tree set used for one-to-many collectives rooted at |root| (NVLink
  // fabric, or the PCIe fallback when NVLink does not connect the
  // allocation).
  const TreeSet& tree_set(int root);
  // The undirected-capacity tree set used by many-to-many collectives
  // (AllReduce/AllGather), whose two phases share each link (§3.3).
  const TreeSet& bidir_tree_set(int root);
  // The PCIe tree set (hybrid transfers and fallback).
  const TreeSet& pcie_tree_set(int root);

  // Root with the highest packed rate; AllReduce and friends use it.
  int best_root();

  // --- collectives; |bytes| is each GPU's buffer size ----------------------
  CollectiveResult broadcast(double bytes, int root);
  CollectiveResult gather(double bytes, int root);
  CollectiveResult reduce(double bytes, int root);
  CollectiveResult all_reduce(double bytes);
  CollectiveResult all_gather(double bytes);
  CollectiveResult reduce_scatter(double bytes);

  // MIAD auto-tuning trace for a collective (Figure 12); also primes the
  // chunk-size cache used when codegen.chunk_bytes == 0.
  MiadResult tune_chunk_size(CollectiveKind kind, double bytes, int root = -1,
                             const MiadOptions& miad = {});

 private:
  CollectiveResult run_collective(CollectiveKind kind, double bytes, int root);
  // Achieved broadcast rate of a tree set, measured by a probe run (the
  // hybrid split needs effective rates: PCIe trees share host-staging
  // segments, so their packed rate overstates what they deliver together).
  double measured_rate(const TreeSet& set, double probe_bytes);
  CollectiveResult execute(CollectiveKind kind, double bytes, int root,
                           std::uint64_t chunk_bytes);
  sim::Program build_program(CollectiveKind kind, double bytes, int root,
                             std::uint64_t chunk_bytes, CollectiveResult* meta);
  std::uint64_t effective_chunk(CollectiveKind kind, double bytes, int root);
  double dpa_latency() const;

  topo::Topology topo_;
  CommunicatorOptions options_;
  sim::Fabric fabric_;

  std::vector<std::optional<TreeSet>> nvlink_sets_;
  std::vector<std::optional<TreeSet>> bidir_sets_;
  std::vector<std::optional<TreeSet>> pcie_sets_;
  std::optional<int> best_root_;
  std::map<std::tuple<int, int, std::uint64_t>, std::uint64_t> tuned_chunks_;
  std::map<std::pair<const TreeSet*, std::uint64_t>, double> measured_rates_;
  std::map<std::tuple<int, int, std::uint64_t>, CollectiveResult> memo_;
};

}  // namespace blink
