// The plan half of the plan/execute split (§3.2, §5): tree generation and
// schedule compilation are one-time costs amortized over the many iterations
// of a training job, so the compiled artifact is a first-class object.
//
// A CollectivePlan is an immutable compiled collective: the routed schedule
// (a sim::Program), the chunking decision, references to the spanning-tree
// sets it was compiled from, and result metadata. Plans are produced by
// Communicator::compile(), shared via shared_ptr (cache eviction never
// invalidates a plan a caller still holds), and run with
// Communicator::execute() — once or many times, each run skipping TreeGen
// and CodeGen entirely.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "blink/blink/treegen.h"
#include "blink/sim/program.h"

namespace blink {

enum class CollectiveKind {
  kBroadcast,
  kGather,
  kReduce,
  kAllReduce,
  kAllGather,
  kReduceScatter,
};

const char* to_string(CollectiveKind kind);

// The cross-server (phase 2) exchange schedule a multi-server plan was
// compiled with (§3.5). Recorded on every plan — kNone for single-server
// backends, whose schedules have no NIC phase — and persisted by the plan
// store, so a warm-loaded schedule's exchange topology is inspectable.
// Strategy selection lives in ClusterBackend (multiserver.h); the enum lives
// here because plans and plan records carry it.
enum class Phase2Strategy {
  kNone = 0,        // single-server plan: no cross-server phase
  kAllToAll = 1,    // flat pairwise exchange: O(n^2) total NIC volume
  kRing = 2,        // ring schedule: O(n) total NIC volume, O(n) steps
  kHierarchical = 3,  // recursive doubling / binomial: O(n log n), log steps
};

const char* to_string(Phase2Strategy strategy);

struct CollectiveResult {
  double seconds = 0.0;
  double bytes = 0.0;           // per-GPU buffer size (NCCL semantics)
  double algorithm_bw = 0.0;    // bytes / seconds, the paper's "throughput"
  int num_trees = 0;
  int num_chunks = 0;           // chunks of the heaviest tree
  int num_ops = 0;              // schedule size
  // Cross-phase chunk-pipelining metadata (multi-server plans; zero for
  // single-server plans and for cluster plans lowered with pipelining off,
  // whose phases gate on whole-partition joins instead of chunk edges).
  int pipeline_depth = 0;       // longest chain of chunk-gated stages
  int phase1_chunks = 0;        // local reduce/gather chunk ops emitted
  int phase2_chunks = 0;        // cross-server NIC transfer chunks emitted
  int phase3_chunks = 0;        // local broadcast/scatter chunk ops emitted
};

// One collective in a batched CollectiveEngine::run() group. root == -1 lets
// the backend pick (Blink: best packed root for many-to-many, 0 otherwise),
// the same policy the one-shot methods use. |backend| selects one of the
// engine's registered backends (0 = default), so a single group launch can
// mix algorithms on the shared fabric.
struct CollectiveRequest {
  CollectiveKind kind = CollectiveKind::kBroadcast;
  double bytes = 0.0;
  int root = -1;
  int backend = 0;
};

// Cache key of a compiled plan. Chunk size is not part of the key: it is a
// derived decision (fixed by options or MIAD-tuned) recorded in the plan.
// |backend| keeps plans lowered by different backends of one engine apart.
struct PlanKey {
  int kind = 0;
  int root = 0;
  // The exact bit pattern of the requested size, not a truncation: sizes are
  // doubles, and keying on static_cast<uint64_t>(bytes) made fractional
  // sizes (1024.2 vs 1024.7) collide — the second caller silently got a
  // plan compiled for different bytes.
  std::uint64_t bytes_bits = 0;
  int backend = 0;

  static PlanKey make(CollectiveKind kind, double bytes, int root,
                      int backend) {
    return PlanKey{static_cast<int>(kind), root,
                   std::bit_cast<std::uint64_t>(bytes), backend};
  }

  friend bool operator<(const PlanKey& a, const PlanKey& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.root != b.root) return a.root < b.root;
    if (a.bytes_bits != b.bytes_bits) return a.bytes_bits < b.bytes_bits;
    return a.backend < b.backend;
  }
  friend bool operator==(const PlanKey& a, const PlanKey& b) {
    return a.kind == b.kind && a.root == b.root &&
           a.bytes_bits == b.bytes_bits && a.backend == b.backend;
  }
};

class CollectivePlan {
 public:
  CollectivePlan(const void* owner, CollectiveKind kind, double bytes,
                 int root, int backend, std::uint64_t chunk_bytes,
                 sim::Program program, CollectiveResult meta,
                 std::vector<std::shared_ptr<const TreeSet>> tree_sets,
                 Phase2Strategy phase2 = Phase2Strategy::kNone,
                 std::vector<int> channel_footprint = {});

  CollectivePlan(const CollectivePlan&) = delete;
  CollectivePlan& operator=(const CollectivePlan&) = delete;

  CollectiveKind kind() const { return kind_; }
  double bytes() const { return bytes_; }
  int root() const { return root_; }
  int backend() const { return backend_; }
  std::uint64_t chunk_bytes() const { return chunk_bytes_; }
  const sim::Program& program() const { return program_; }
  int num_trees() const { return meta_.num_trees; }
  int num_chunks() const { return meta_.num_chunks; }
  int num_ops() const { return meta_.num_ops; }

  // The cross-server exchange schedule this plan was compiled with; kNone
  // for plans whose backend has no NIC phase (every single-server backend).
  Phase2Strategy phase2_strategy() const { return phase2_; }

  // Result metadata with timing unfilled; execute() completes it.
  const CollectiveResult& meta() const { return meta_; }

  // The spanning-tree sets the schedule was compiled from, shared with the
  // owning communicator's per-root caches (for inspection and invariant
  // checks; the schedule itself no longer depends on them).
  const std::vector<std::shared_ptr<const TreeSet>>& tree_sets() const {
    return tree_sets_;
  }

  // Sorted, de-duplicated ids of every fabric channel this plan depends on:
  // the channels its program's ops traverse, unioned with any channels the
  // lowering decision consulted (bake-off candidates). A health event whose
  // affected channels miss this set leaves the plan's schedule and simulated
  // timing unchanged — the basis of incremental plan repair. Filled by the
  // engine at adoption (and persisted in the plan store); empty only for
  // plans constructed outside the engine.
  const std::vector<int>& channel_footprint() const {
    return channel_footprint_;
  }

  // Identity token of the communicator that compiled this plan; executing a
  // plan on a different communicator is an error (routes reference its
  // fabric's channel ids).
  const void* owner() const { return owner_; }

  PlanKey key() const { return PlanKey::make(kind_, bytes_, root_, backend_); }

  // Memoized execution result, returned by value under an internal lock so
  // concurrent execute() calls on one shared plan are safe. The simulation
  // is deterministic, so the first run's timing is every run's timing;
  // logically const.
  std::optional<CollectiveResult> cached_result() const {
    const std::lock_guard<std::mutex> lock(result_mu_);
    return result_;
  }
  void memoize_result(const CollectiveResult& r) const {
    const std::lock_guard<std::mutex> lock(result_mu_);
    result_ = r;
  }

 private:
  const void* owner_;
  CollectiveKind kind_;
  double bytes_;
  int root_;
  int backend_;
  std::uint64_t chunk_bytes_;
  Phase2Strategy phase2_;
  sim::Program program_;
  CollectiveResult meta_;
  std::vector<std::shared_ptr<const TreeSet>> tree_sets_;
  std::vector<int> channel_footprint_;
  mutable std::mutex result_mu_;
  mutable std::optional<CollectiveResult> result_;
};

}  // namespace blink
