// LRU cache of compiled CollectivePlans, replacing the communicators' former
// per-backend ad-hoc memo maps (result memos, tuned-chunk memos, and a
// fragile pointer-keyed rate cache). Plans are held by shared_ptr: eviction
// drops the cache's reference only, so outstanding plans held by callers
// stay valid.
//
// Thread-safe: every operation (including the statistics accessors) takes an
// internal mutex, so concurrent compile()/execute() on one engine — the
// serving path — needs no external locking around the cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>

#include "blink/blink/plan.h"

namespace blink {

class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 256);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Returns the cached plan and bumps it to most-recently-used, or nullptr.
  // Counts a hit or a miss.
  std::shared_ptr<const CollectivePlan> find(const PlanKey& key);

  // Inserts (or replaces) the plan for |key|, evicting the least recently
  // used entry when over capacity.
  void insert(const PlanKey& key, std::shared_ptr<const CollectivePlan> plan);

  void clear();

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
  }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  std::uint64_t misses() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  std::uint64_t evictions() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }

 private:
  using Entry = std::pair<PlanKey, std::shared_ptr<const CollectivePlan>>;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<PlanKey, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace blink
