// LRU cache of compiled CollectivePlans, replacing the communicator's former
// trio of ad-hoc memo maps (result memo, tuned-chunk memo, and a fragile
// pointer-keyed rate cache). Plans are held by shared_ptr: eviction drops the
// cache's reference only, so outstanding plans held by callers stay valid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>

#include "blink/blink/plan.h"

namespace blink {

class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 256);

  // Returns the cached plan and bumps it to most-recently-used, or nullptr.
  // Counts a hit or a miss.
  std::shared_ptr<const CollectivePlan> find(const PlanKey& key);

  // Inserts (or replaces) the plan for |key|, evicting the least recently
  // used entry when over capacity.
  void insert(const PlanKey& key, std::shared_ptr<const CollectivePlan> plan);

  void clear();

  std::size_t size() const { return index_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  using Entry = std::pair<PlanKey, std::shared_ptr<const CollectivePlan>>;

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<PlanKey, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace blink
