// LRU cache of compiled CollectivePlans, replacing the communicators' former
// per-backend ad-hoc memo maps (result memos, tuned-chunk memos, and a
// fragile pointer-keyed rate cache). Plans are held by shared_ptr: eviction
// drops the cache's reference only, so outstanding plans held by callers
// stay valid.
//
// Thread-safe: every operation (including the statistics accessors) takes an
// internal mutex, so concurrent compile()/execute() on one engine — the
// serving path — needs no external locking around the cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "blink/blink/plan.h"
#include "blink/blink/plan_io.h"

namespace blink {

class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 256);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Returns the cached plan and bumps it to most-recently-used, or nullptr.
  // Counts a hit or a miss.
  std::shared_ptr<const CollectivePlan> find(const PlanKey& key);

  // Whether |key| is cached, without bumping recency or counting a hit or a
  // miss — the serving layer's admission peek (a warm request must not be
  // charged against a tenant's compile quota, and probing must not skew the
  // hit-rate counters the SLO is asserted on).
  bool contains(const PlanKey& key) const {
    const std::lock_guard<std::mutex> lock(mu_);
    return index_.find(key) != index_.end();
  }

  // Inserts (or replaces) the plan for |key|, evicting the least recently
  // used entry when over capacity.
  void insert(const PlanKey& key, std::shared_ptr<const CollectivePlan> plan);

  void clear();

  // Removes every cached plan |pred| returns true for (the plan repair
  // path's selective invalidation), recording the removed keys in |removed|
  // when given. Marks the cache dirty when anything was removed. Returns the
  // number of plans removed.
  std::size_t erase_if(const std::function<bool(const CollectivePlan&)>& pred,
                       std::vector<PlanKey>* removed = nullptr);

  // --- persistence (plan_io.h formats) -------------------------------------

  // Writes every cached plan to |path| under a header carrying the format
  // version and |fabric_fingerprint|. |backend_name| maps a plan's backend
  // id to its stable name (ids are process-local; names travel). Entries are
  // written least-recently-used first so a load replays them in recency
  // order. |mark_clean| says |path| is the cache's canonical store: on
  // success the dirty flag clears (unless an insert raced the write) —
  // exports to side paths pass false so the canonical store still gets its
  // flush. |component_fingerprints| — when non-empty — records the fabric's
  // per-component health fingerprints in the v4 header so a later load can
  // skip records invalidated by health events. Returns the number of plans
  // written; throws std::invalid_argument when the file cannot be written.
  std::size_t save(const std::string& path, std::uint64_t fabric_fingerprint,
                   const std::function<std::string(int)>& backend_name,
                   bool mark_clean = true,
                   const std::vector<std::uint64_t>& component_fingerprints =
                       {}) const;

  // Loads a store written by save() into the cache, re-keying each plan on
  // the id |backend_id| resolves its backend name to (throws on -1: a plan
  // for an unregistered backend must not execute). |validate| — when set —
  // inspects every record before it is adopted and throws to reject it (the
  // engine checks roots and route channel ids against its fabric). Plans are
  // created owned by |owner|. |mark_clean| says |path| is the cache's
  // canonical store: when the cache held nothing unsaved and no insert
  // raced the load, the dirty flag clears (the cache now mirrors the file)
  // — imports from side paths pass false, since their plans are not in the
  // canonical store yet. Throws std::invalid_argument on a missing or
  // corrupt file, a format version mismatch, or a fingerprint mismatch;
  // nothing is inserted on failure. Returns the number of plans loaded.
  // Loaded entries count as neither hits nor misses.
  //
  // |adopt| — when set — decides per record whether it is adopted at all:
  // it receives the record and the component fingerprints saved in the store
  // header, and returning false skips the record (counted into |skipped|)
  // without failing the load. The engine uses this to drop exactly the plans
  // whose footprints cross a component whose health changed since the save.
  // When any record is skipped the dirty flag stays set, so the next flush
  // rewrites the store without the stale plans.
  std::size_t load(
      const std::string& path, std::uint64_t fabric_fingerprint,
      const void* owner,
      const std::function<int(std::string_view)>& backend_id,
      const std::function<void(const PlanRecord&)>& validate = {},
      bool mark_clean = true,
      const std::function<bool(const PlanRecord&,
                               const std::vector<std::uint64_t>&)>& adopt = {},
      std::size_t* skipped = nullptr);

  // Whether the cache holds plans its canonical store has not seen: set by
  // insert(), cleared by save()/load() when they sync that store
  // (mark_clean). The engine's destructor-flush consults this to skip
  // rewriting the store file when every cached plan came from (or already
  // reached) it — a warm-started process that compiled nothing new must
  // not churn the store.
  bool dirty() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return dirty_;
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
  }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  std::uint64_t misses() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  std::uint64_t evictions() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
  }

 private:
  using Entry = std::pair<PlanKey, std::shared_ptr<const CollectivePlan>>;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::map<PlanKey, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  // Plans inserted since the last save()/load(); mutable because save() is
  // logically const (persisting does not change what is cached). The
  // generation counter lets save() detect inserts that raced the file write
  // and keep the cache dirty for them.
  mutable bool dirty_ = false;
  std::uint64_t generation_ = 0;
};

}  // namespace blink
