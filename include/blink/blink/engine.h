// The collective engine: the execute half of the plan/execute split, shared
// by every algorithm (§2.3 workflow with the algorithm factored out).
//
// A CollectiveEngine owns an allocation's topology, its simulated fabric, a
// registry of CollectiveBackends that lower collectives onto that fabric,
// and the thread-safe LRU PlanCache amortizing their planning work. The
// engine validates arguments, caches compiled plans, memoizes deterministic
// execution results, and launches batched groups — identically for Blink's
// packed trees and for every baseline, so backends only implement lowering.
//
// Concurrency: compile() serializes under an internal mutex (backends may
// mutate lazy caches while lowering); execute() runs concurrently — the
// simulation is a pure function of (fabric, program) and per-plan
// memoization takes the plan's own lock. This is the serving path: many
// threads execute cached plans while misses compile one at a time.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "blink/blink/backend.h"
#include "blink/blink/plan.h"
#include "blink/blink/plan_cache.h"
#include "blink/sim/fabric.h"
#include "blink/topology/topology.h"

namespace blink {

struct EngineOptions {
  // Memoize each plan's execution result (the simulation is deterministic).
  bool memoize = true;
  // Compiled plans kept in the LRU cache.
  std::size_t plan_cache_capacity = 256;
};

class CollectiveEngine {
 public:
  // Validates |topo| and builds the fabric; backends are registered
  // afterwards with register_backend().
  CollectiveEngine(topo::Topology topo, const sim::FabricParams& fabric_params,
                   EngineOptions options = {});
  virtual ~CollectiveEngine();

  CollectiveEngine(const CollectiveEngine&) = delete;
  CollectiveEngine& operator=(const CollectiveEngine&) = delete;

  int num_gpus() const { return topo_.num_gpus; }
  const topo::Topology& topology() const { return topo_; }
  const sim::Fabric& fabric() const { return fabric_; }
  const EngineOptions& engine_options() const { return engine_options_; }

  // --- backend registry ----------------------------------------------------
  // The first registered backend is the default for one-shot methods and for
  // requests that leave CollectiveRequest::backend at 0. Returns the new
  // backend's id.
  int register_backend(std::unique_ptr<CollectiveBackend> backend);
  int num_backends() const {
    const std::lock_guard<std::mutex> lock(compile_mu_);
    return static_cast<int>(backends_.size());
  }
  const CollectiveBackend& backend(int id = 0) const;
  // Id of the backend named |name|, or -1.
  int backend_id(std::string_view name) const;

  // --- plan/execute --------------------------------------------------------
  // |bytes| is each GPU's buffer size (NCCL semantics) throughout.

  // Compiles (or fetches from the plan cache) the schedule for a collective
  // on backend |backend|. root == -1 lets the backend pick its default root,
  // the same policy the one-shot methods use. Throws std::invalid_argument
  // on a bad root, non-positive size, unknown backend id, or a kind the
  // backend does not support.
  std::shared_ptr<const CollectivePlan> compile(CollectiveKind kind,
                                                double bytes, int root = -1,
                                                int backend = 0);

  // Runs a compiled plan on the fabric. Deterministic: re-executing a plan
  // returns bit-identical results. Throws std::invalid_argument if the plan
  // was compiled by a different engine.
  CollectiveResult execute(const CollectivePlan& plan);

  // Compiles/fetches a plan per request and launches them all as one group
  // sharing the fabric (ncclGroupStart/End semantics). Requests may name
  // different backends; each result carries that request's own completion
  // time under contention.
  std::vector<CollectiveResult> run(std::span<const CollectiveRequest> reqs);

  // Plan-cache statistics: hits count collectives that skipped lowering
  // (TreeGen/CodeGen for Blink, ring/tree emission for the baselines).
  const PlanCache& plan_cache() const { return plans_; }

  // --- one-shot collectives (wrappers over compile + execute) --------------
  CollectiveResult broadcast(double bytes, int root);
  CollectiveResult gather(double bytes, int root);
  CollectiveResult reduce(double bytes, int root);
  CollectiveResult all_reduce(double bytes);
  CollectiveResult all_gather(double bytes);
  CollectiveResult reduce_scatter(double bytes);

 protected:
  // Serializes compile() and backend-state mutation; subclasses lock it
  // around accessors that touch backend lazy caches (e.g. tree sets).
  std::mutex& compile_mutex() { return compile_mu_; }

  // Wraps an already-lowered collective into a plan and caches it (chunk
  // tuners use this to prime the cache with the schedule compile() would
  // produce).
  std::shared_ptr<const CollectivePlan> adopt_plan(CollectiveKind kind,
                                                   double bytes, int root,
                                                   int backend,
                                                   LoweredCollective lowered);

 private:
  topo::Topology topo_;
  EngineOptions engine_options_;
  sim::Fabric fabric_;
  std::vector<std::unique_ptr<CollectiveBackend>> backends_;
  PlanCache plans_;
  // Guards compile()/lowering and the backend registry (readers included:
  // register_backend may reallocate the vector mid-session).
  mutable std::mutex compile_mu_;
};

}  // namespace blink
