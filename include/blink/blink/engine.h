/// \file
/// The collective engine: the execute half of the plan/execute split, shared
/// by every algorithm (§2.3 workflow with the algorithm factored out).
///
/// A CollectiveEngine owns an allocation's topology — one server, or a
/// multi-server fragment list whose fabric spans the machines plus their
/// NICs (§3.5) — a registry of CollectiveBackends that lower collectives
/// onto that fabric, and the thread-safe LRU PlanCache amortizing their
/// planning work. The engine validates arguments, caches compiled plans,
/// memoizes deterministic execution results, and launches batched groups —
/// identically for Blink's packed trees, every baseline, and the three-phase
/// cluster backend, so backends only implement lowering.
///
/// Concurrency: compile() is per-PlanKey single-flight — distinct shapes
/// lower fully in parallel (backends synchronize their own lazy caches;
/// see CollectiveBackend), duplicate requests for one shape wait on the one
/// in-flight lowering, and cache/store bookkeeping sits under a short
/// critical-section mutex that is never held across planning work.
/// execute() runs concurrently too — the simulation is a pure function of
/// (fabric, program) and per-plan memoization takes the plan's own lock.
/// This is the serving path: many threads execute cached plans while cold
/// misses compile as wide as EngineOptions::planner_threads allows.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "blink/blink/backend.h"
#include "blink/blink/plan.h"
#include "blink/blink/plan_cache.h"
#include "blink/common/single_flight.h"
#include "blink/sim/fabric.h"
#include "blink/topology/topology.h"

namespace blink {

/// Engine-level knobs shared by every communicator flavour.
struct EngineOptions {
  /// Memoize each plan's execution result (the simulation is deterministic).
  bool memoize = true;
  /// Compiled plans kept in the LRU cache.
  std::size_t plan_cache_capacity = 256;
  /// Directory for the persistent plan store (empty = disabled). The engine
  /// warm-loads its store file — plans-\<fabric fingerprint\>.bpc — before
  /// the first compile (after construction, so every backend the owner
  /// registers is part of the fingerprint) and flushes the plan cache back
  /// to it on destruction when the cache holds plans the store has not seen
  /// (a clean warm-started cache skips the rewrite), so schedules survive
  /// process restarts. A file whose format version or fabric fingerprint
  /// does not match is ignored with a warning; nothing stale is ever
  /// executed.
  std::string plan_store_dir;
  /// Width of the planner's cold-path parallelism: how many threads of the
  /// process-wide planner pool (common::ThreadPool::shared()) one compile
  /// may fan out across — bake-off candidates, batched kinds, per-root tree
  /// generation. 0 resolves to the pool's default sizing (the
  /// BLINK_PLANNER_THREADS environment variable, else hardware
  /// concurrency); 1 plans serially on the calling thread. Parallelism
  /// never changes what gets compiled: plans are bit-identical to serial
  /// ones and the planning fingerprint is unaffected.
  int planner_threads = 0;
};

/// What CollectiveEngine::invalidate_plans() dropped and kept: the full
/// invalidate clears everything (retained is always 0 there), but the serve
/// layer books both counters per shard so its statistics line up with the
/// selective repair path's.
struct InvalidateReport {
  /// Plans removed from the cache.
  std::size_t dropped = 0;
  /// Plans still cached afterwards (0 for the full invalidate).
  std::size_t retained = 0;
};

/// What one CollectiveEngine::repair_plans() call did: which channels the
/// health event touched, how far the invalidation had to reach, and how the
/// recompiles went.
struct RepairReport {
  /// Fabric health epoch after the event was applied.
  std::uint64_t epoch = 0;
  /// Channels whose effective capacity the event changed (sorted).
  std::vector<int> affected_channels;
  /// Plans whose footprint (or tree-set provenance) the event hit — dropped
  /// from the cache and recompiled.
  std::size_t dropped = 0;
  /// Plans untouched by the event: still cached, schedules and memoized
  /// timings still valid.
  std::size_t retained = 0;
  /// Dropped plans successfully recompiled against the new fabric state.
  std::size_t recompiled = 0;
  /// Dropped plans that could not be repaired: the backend cannot lower the
  /// shape on the degraded fabric (e.g. a failed GPU leaves it unspannable),
  /// or the recompiled schedule still routes over a failed channel. Their
  /// shapes compile-miss (and rethrow) on the next request.
  std::size_t failed = 0;
  /// True when a backend declared all its plans stale (structural events,
  /// restores, single-server Blink state) and the repair degenerated to a
  /// full invalidate + recompile.
  bool full = false;
};

/// The plan/execute engine: backend registry, argument validation, plan
/// cache, persistent plan store, result memoization, and solo or grouped
/// execution over one simulated fabric.
class CollectiveEngine {
 public:
  /// Sentinel accepted wherever a backend id is: compile candidate plans on
  /// every registered backend that supports the collective, keep the
  /// fastest (NCCL-tuner style), and cache the choice per (kind, bytes,
  /// root) so the measurement runs once per shape.
  static constexpr int kAutoBackend = -1;

  /// Single-server engine: validates \p topo and builds the fabric;
  /// backends are registered afterwards with register_backend().
  CollectiveEngine(topo::Topology topo, const sim::FabricParams& fabric_params,
                   EngineOptions options = {});
  /// Multi-server engine: one fabric spanning every server plus its NICs.
  /// GPU ids (roots, num_gpus) are global and server-major: server 0's GPUs
  /// come first, then server 1's, and so on.
  CollectiveEngine(std::vector<topo::Topology> servers,
                   const sim::FabricParams& fabric_params,
                   EngineOptions options = {});
  /// Flushes the plan cache to the persistent store (when configured and
  /// dirty); never throws.
  virtual ~CollectiveEngine();

  /// Not copyable: the fabric and plan cache are identity.
  CollectiveEngine(const CollectiveEngine&) = delete;
  /// Not copyable: the fabric and plan cache are identity.
  CollectiveEngine& operator=(const CollectiveEngine&) = delete;

  /// Total GPU count across all servers.
  int num_gpus() const { return num_gpus_; }
  /// Number of servers the fabric spans.
  int num_servers() const { return static_cast<int>(servers_.size()); }
  /// The first (single-server engines: only) server's topology.
  const topo::Topology& topology() const { return servers_.front(); }
  /// Every server's topology, server-major.
  const std::vector<topo::Topology>& servers() const { return servers_; }
  /// The simulated fabric schedules execute on.
  const sim::Fabric& fabric() const { return fabric_; }
  /// The engine options this engine was created with.
  const EngineOptions& engine_options() const { return engine_options_; }

  // --- backend registry ----------------------------------------------------

  /// Registers a backend. The first registered backend is the default for
  /// one-shot methods and for requests that leave CollectiveRequest::backend
  /// at 0. Returns the new backend's id.
  int register_backend(std::unique_ptr<CollectiveBackend> backend);
  /// Number of registered backends.
  int num_backends() const {
    const std::lock_guard<std::mutex> lock(compile_mu_);
    return static_cast<int>(backends_.size());
  }
  /// The backend with id \p id; throws std::invalid_argument when out of
  /// range.
  const CollectiveBackend& backend(int id = 0) const;
  /// Id of the backend named \p name, or -1.
  int backend_id(std::string_view name) const;

  // --- plan/execute --------------------------------------------------------
  // |bytes| is each GPU's buffer size (NCCL semantics) throughout.

  /// Compiles (or fetches from the plan cache) the schedule for a collective
  /// on backend \p backend. root == -1 lets the backend pick its default
  /// root, the same policy the one-shot methods use. backend ==
  /// kAutoBackend measures every supporting backend once for this shape and
  /// compiles on the fastest. Throws std::invalid_argument on a bad root,
  /// non-positive size, unknown backend id, or a kind the backend does not
  /// support.
  std::shared_ptr<const CollectivePlan> compile(CollectiveKind kind,
                                                double bytes, int root = -1,
                                                int backend = 0);

  /// Runs a compiled plan on the fabric. Deterministic: re-executing a plan
  /// returns bit-identical results. Throws std::invalid_argument if the
  /// plan was compiled by a different engine.
  CollectiveResult execute(const CollectivePlan& plan);

  /// Compiles/fetches a plan per request and launches them all as one group
  /// sharing the fabric (ncclGroupStart/End semantics). Requests may name
  /// different backends; each result carries that request's own completion
  /// time under contention. Cold plans in the group compile concurrently
  /// (see compile_batch()).
  std::vector<CollectiveResult> run(std::span<const CollectiveRequest> reqs);

  /// Compiles (or fetches) every request's plan concurrently across the
  /// planner pool, up to EngineOptions::planner_threads wide; requests
  /// sharing a PlanKey coalesce onto one lowering via the single-flight
  /// path. Results are positionally aligned with \p reqs and identical to
  /// calling compile() per request in a loop — parallelism never changes a
  /// plan. Throws what compile() would throw if any request is invalid.
  std::vector<std::shared_ptr<const CollectivePlan>> compile_batch(
      std::span<const CollectiveRequest> reqs);

  /// Warms the cache for one shape in a single pass: compiles all six
  /// collective kinds at (\p bytes, \p root, \p backend) concurrently, so
  /// the kinds share the backend's lazily-built TreeGen state (tree sets,
  /// link-rate probes) instead of each first-compile paying for it alone.
  /// Kinds the backend cannot lower at this shape (unsupported kind, size
  /// below a cluster's partition count) are skipped, not errors. Returns
  /// the number of plans that were cold (actually compiled); a fully warm
  /// shape returns 0. Throws std::invalid_argument on a non-positive size
  /// or out-of-range root, like compile().
  std::size_t precompile(double bytes, int root = -1, int backend = 0);

  /// The resolved cold-path parallelism width (EngineOptions::
  /// planner_threads after defaulting); 1 means serial planning.
  std::size_t planner_threads() const { return planner_threads_; }

  /// Plan-cache statistics: hits count collectives that skipped lowering
  /// (TreeGen/CodeGen for Blink, ring/tree emission for the baselines).
  const PlanCache& plan_cache() const { return plans_; }

  /// Whether compile() with these arguments would be a cache hit right now,
  /// without compiling anything or touching the hit/miss counters. Resolves
  /// root == -1 and kAutoBackend the way compile() would (an unmeasured auto
  /// shape reports false: compiling it would run the bake-off). Invalid
  /// arguments report false instead of throwing — this is the serving
  /// layer's admission peek, which must never fail a request itself.
  bool has_cached_plan(CollectiveKind kind, double bytes, int root = -1,
                       int backend = 0);

  /// Writes the plan cache to the configured store file now (the same flush
  /// the destructor performs), so a long-lived serving process persists
  /// plans without restarting. No-op — returning 0 — when persistence is
  /// disabled, the cache is empty, or nothing changed since the last sync.
  /// Returns the number of plans written.
  std::size_t flush_plans();

  /// Drops every cached plan and auto-selection decision, so the next
  /// compile of each shape re-lowers against current state (the serving
  /// layer's invalidate request). Outstanding shared_ptr plans stay valid.
  /// Returns how many plans were dropped (retained is always 0 here).
  InvalidateReport invalidate_plans();

  // --- fault tolerance (incremental plan repair) ---------------------------

  /// Applies a fabric health event — a link degradation or failure, a GPU
  /// failure, or a restore — and repairs the plan cache incrementally:
  ///
  ///  1. Quiesces the engine (no lowering or execution in flight), applies
  ///     the event to the fabric (bumping its health epoch), and notifies
  ///     every backend (CollectiveBackend::on_health_event) so planning
  ///     caches refresh against the new health state.
  ///  2. Drops exactly the cached plans the event can have changed: plans
  ///     whose channel_footprint() intersects the affected channels, plans
  ///     holding a tree set a backend declared stale, or — when a backend
  ///     reports all_stale (structural rebuilds, restores) — everything.
  ///     A plan whose footprint misses the affected channels keeps a valid
  ///     schedule *and* a valid memoized timing: the simulated makespan
  ///     depends only on the channels the program traverses.
  ///  3. Recompiles the dropped shapes against the degraded fabric — in
  ///     parallel, up to planner_threads() wide, with execution already
  ///     resumed — and counts shapes the backend can no longer lower (or
  ///     that still route over a failed channel) as failed, not thrown.
  ///
  /// Auto-selection decisions are always cleared: bake-off timings were
  /// measured under the old capacities. Outstanding shared_ptr plans stay
  /// valid as objects, but executing one that routes over a failed channel
  /// throws (see sim::execute). Thread-safe against concurrent
  /// compile()/execute(); those calls observe the fabric either entirely
  /// before or entirely after the event, never mid-application.
  RepairReport repair_plans(const sim::HealthEvent& event);

  // --- persistent plans (plan_io.h format) ---------------------------------

  /// Fingerprint of this engine's fabric, backend registry, and every
  /// backend's planning configuration
  /// (CollectiveBackend::planning_fingerprint()); a plan store only loads
  /// into an engine whose fingerprint matches the one it was saved under.
  /// Changes when backends are registered.
  std::uint64_t fabric_fingerprint() const;

  /// The store file EngineOptions::plan_store_dir resolves to right now, or
  /// "" when persistence is disabled.
  std::string plan_store_path() const;

  /// Serializes every cached plan to \p path (version + fingerprint
  /// header). Returns the number of plans written.
  std::size_t export_plans(const std::string& path) const;

  /// Loads plans saved by export_plans() (or a plan-store flush) into the
  /// plan cache, so the next compile() of each shape is a cache hit — zero
  /// TreeGen/CodeGen recompiles. Throws std::invalid_argument — and adopts
  /// nothing — when the file is corrupt, its format version or fabric
  /// fingerprint mismatches, a plan names an unregistered backend, or a
  /// schedule fails validation against this fabric. Returns the number of
  /// plans loaded.
  std::size_t import_plans(const std::string& path);

  // --- one-shot collectives (wrappers over compile + execute) --------------

  /// One-shot broadcast from \p root.
  CollectiveResult broadcast(double bytes, int root);
  /// One-shot gather to \p root.
  CollectiveResult gather(double bytes, int root);
  /// One-shot reduce to \p root.
  CollectiveResult reduce(double bytes, int root);
  /// One-shot all-reduce.
  CollectiveResult all_reduce(double bytes);
  /// One-shot all-gather.
  CollectiveResult all_gather(double bytes);
  /// One-shot reduce-scatter.
  CollectiveResult reduce_scatter(double bytes);

 protected:
  /// Wraps an already-lowered collective into a plan and caches it (chunk
  /// tuners use this to prime the cache with the schedule compile() would
  /// produce). Thread-safe: the plan cache takes its own lock.
  std::shared_ptr<const CollectivePlan> adopt_plan(CollectiveKind kind,
                                                   double bytes, int root,
                                                   int backend,
                                                   LoweredCollective lowered);

 private:
  // compile() with auto already resolved: validates the concrete backend id
  // and runs the per-PlanKey single-flight lowering.
  std::shared_ptr<const CollectivePlan> compile_concrete(CollectiveKind kind,
                                                         double bytes,
                                                         int root,
                                                         int backend);
  // Resolves kAutoBackend for one shape: compiles and executes a candidate
  // plan per supporting backend — concurrently, up to planner_threads_ wide
  // (each candidate lands in the plan cache) — and caches the winner's id
  // so later compiles skip the measurement. Single-flight per shape:
  // concurrent requests run one bake-off. |root| is concrete (never -1):
  // every candidate is timed at the same root.
  int select_backend(CollectiveKind kind, double bytes, int root);
  // The root a root == -1 request resolves to before auto-selection: the
  // first supporting backend's default.
  int default_root(CollectiveKind kind);
  // Whether |path| is the configured plan store's file: only syncs with it
  // clear the plan cache's dirty flag (exports/imports to side paths must
  // leave the destructor flush armed).
  bool is_canonical_store_locked(const std::string& path) const;
  std::uint64_t fingerprint_locked() const;
  int backend_id_locked(std::string_view name) const;
  std::size_t import_plans_locked(const std::string& path);
  // Whether a stored plan record's footprint only crosses fabric components
  // whose health fingerprint still matches the one saved in the store header
  // (an empty saved list means "saved healthy"). The warm-load adopt filter:
  // false skips the record instead of rejecting the file.
  bool record_components_clean_locked(
      const PlanRecord& record,
      const std::vector<std::uint64_t>& saved_components) const;
  // One-time lazy warm-load from plan_store_dir; runs before the first
  // compile so the owner's constructor has registered every backend. A
  // missing file is a cold start; a mismatched or corrupt one is logged and
  // ignored.
  void maybe_warm_load_locked();

  std::vector<topo::Topology> servers_;
  int num_gpus_ = 0;
  EngineOptions engine_options_;
  sim::Fabric fabric_;
  std::vector<std::unique_ptr<CollectiveBackend>> backends_;
  PlanCache plans_;
  // kAutoBackend decisions per (kind, bytes, resolved root); guarded by
  // compile_mu_ like all compile-path state, and cleared whenever a backend
  // is registered so new backends get measured.
  std::map<PlanKey, int> auto_choices_;
  // Whether the plan_store_dir warm-load has been attempted.
  bool plan_store_checked_ = false;
  // Short-critical-section lock: the backend registry (readers included —
  // register_backend may reallocate the vector mid-session; the pointed-to
  // backends are stable), auto_choices_, and plan-store bookkeeping. Never
  // held across lowering or candidate measurement.
  mutable std::mutex compile_mu_;
  // Repair quiesce lock. Shared: every lowering (including its cache insert)
  // and every simulation — they read fabric capacities and backend planning
  // state. Unique: repair_plans() while it mutates fabric health, notifies
  // backends, and performs cache surgery, so in-flight work always sees a
  // consistent pre- or post-event fabric. Lock order: exec_mu_ before
  // compile_mu_; compile_mu_ is never held while acquiring exec_mu_.
  mutable std::shared_mutex exec_mu_;

  // Shard selector for the single-flight maps below.
  struct PlanKeyHash {
    std::size_t operator()(const PlanKey& k) const {
      std::size_t h = static_cast<std::size_t>(k.bytes_bits);
      h ^= static_cast<std::size_t>(k.kind) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<std::size_t>(k.root + 1) * 0xc2b2ae3d27d4eb4fULL;
      h ^= static_cast<std::size_t>(k.backend + 2) * 0x165667b19e3779f9ULL;
      return h;
    }
  };
  // In-flight lowerings: distinct keys compile concurrently, duplicates
  // wait for the leader's plan.
  common::SingleFlight<PlanKey, std::shared_ptr<const CollectivePlan>,
                       PlanKeyHash>
      compile_flight_;
  // In-flight auto bake-offs, keyed like auto_choices_.
  common::SingleFlight<PlanKey, int, PlanKeyHash> auto_flight_;
  // Resolved EngineOptions::planner_threads (>= 1).
  std::size_t planner_threads_ = 1;
};

}  // namespace blink
