// CodeGen (§4): compiles weighted spanning trees into a chunked, pipelined
// transfer schedule. The paper emits CUDA (cudaMemcpyAsync + reduction
// kernels over per-link streams with events); here the target is the
// simulator's Program, which has the same semantics (in-order streams,
// cross-stream events, per-op launch latency). `emit_pseudo_cuda` renders
// the equivalent CUDA-like source listing for inspection.
//
// Scheduling rules implemented from the paper:
//   * data split across trees proportional to tree weights (§4.1);
//   * per-tree chunking so a node forwards chunk c while receiving c+1
//     (Figure 11);
//   * one stream per link per tree, with stream *reuse* when the same link
//     appears at the same tree position, for fair link sharing (§4.2.2);
//   * chunk emission is interleaved across trees so shared links alternate
//     fairly between trees (Figure 13);
//   * reductions run as kernels on the receiving GPU's reduce engine and
//     overlap with the next chunk's copy (§2.2 micro-benchmarks).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "blink/blink/treegen.h"
#include "blink/sim/fabric.h"
#include "blink/sim/program.h"

namespace blink {

struct CodeGenOptions {
  // Default chunk size; 1 MiB keeps deep-tree pipelines full while per-chunk
  // command overhead stays small (tunable at runtime via MIAD, §4.2.1).
  std::uint64_t chunk_bytes = 1ull * 1024 * 1024;
  // Stream reuse (§4.2.2) exists to force fair link sharing on real CUDA
  // hardware. The fluid simulator shares bandwidth fairly by construction,
  // so reuse only adds serialization overhead here; it stays available for
  // the ablation benchmark.
  bool stream_reuse = false;
  int max_chunks_per_tree = 512;  // keeps schedules bounded for huge buffers
};

// A spanning tree with per-hop fabric routes resolved.
struct RoutedTree {
  int server = 0;
  int root = 0;
  double weight = 0.0;
  struct Hop {
    int child = 0;
    int parent = 0;
    int depth = 1;                // child's distance from the root
    std::vector<int> down_route;  // parent -> child channels
    std::vector<int> up_route;    // child -> parent channels
  };
  std::vector<Hop> hops;          // BFS order: parents appear before children
  int depth() const;
  int num_gpus() const { return static_cast<int>(hops.size()) + 1; }
};

// Resolves the hops of |tree| (an arborescence in |set|.graph) against the
// fabric, using NVLink or PCIe routes per the tree set's link type.
RoutedTree route_tree(const sim::Fabric& fabric, int server,
                      const TreeSet& set, const packing::WeightedTree& tree);

// All trees of a set, routed.
std::vector<RoutedTree> route_trees(const sim::Fabric& fabric, int server,
                                    const TreeSet& set);

class ProgramBuilder {
 public:
  ProgramBuilder(const sim::Fabric& fabric, const CodeGenOptions& options);

  // Finalizes and returns the program (builder is left empty).
  sim::Program take();

  // --- whole-collective emitters over one set of routed trees --------------
  // |bytes| follows NCCL buffer semantics: the size of each GPU's buffer.

  void broadcast(std::span<const RoutedTree> trees, double bytes);
  void gather(std::span<const RoutedTree> trees, double bytes_per_gpu);
  void reduce(std::span<const RoutedTree> trees, double bytes);
  void all_reduce(std::span<const RoutedTree> trees, double bytes);
  void all_gather(std::span<const RoutedTree> trees, double bytes_per_gpu);

  // --- composition primitives (used by DGX-2 / hybrid / multi-server) ------

  // Chunked reduce toward the root of one tree. Returns the op id of the
  // root's reduction (or last arrival when !with_kernels) per chunk.
  // |extra_deps| (optional, per chunk) gates the leaves' first sends.
  std::vector<int> tree_reduce_chunks(const RoutedTree& tree, double bytes,
                                      int num_chunks, bool with_kernels,
                                      std::span<const int> chunk_ready = {});

  // Chunked broadcast down one tree; chunk c's first hop additionally waits
  // on chunk_ready[c] when provided. Returns the final delivery op per chunk.
  std::vector<int> tree_broadcast_chunks(const RoutedTree& tree, double bytes,
                                         int num_chunks,
                                         std::span<const int> chunk_ready = {});

  // A chunked point-to-point copy over an explicit route (NIC hops in the
  // three-phase protocol). Returns per-chunk completion ops. |bytes| must be
  // positive: a degenerate sub-chunk payload collapses to one chunk via
  // chunks_for(), never to zero-byte ops.
  std::vector<int> copy_chunks(const std::vector<int>& route, double bytes,
                               int num_chunks, int stream_tag,
                               std::span<const int> chunk_ready = {});

  // The multi-dependency variant for cross-phase chunk pipelining: chunk c
  // additionally waits on every op in chunk_deps[c]. The copies share one
  // in-order stream, so chunk c's dependencies transitively cover every
  // earlier chunk's — callers list only the ops newly required per chunk.
  std::vector<int> copy_chunks(const std::vector<int>& route, double bytes,
                               int num_chunks, int stream_tag,
                               std::span<const std::vector<int>> chunk_deps);

  // A reduction kernel on |server|/|gpu| covering |bytes| of input; waits on
  // |deps|. Returns the op id.
  int reduce_kernel(int server, int gpu, double bytes, std::vector<int> deps);

  // A fixed delay on a fresh stream (e.g. cudaDeviceDisablePeerAccess), or
  // with zero duration a pure join point over |deps|; returns the op id so
  // later ops can depend on it.
  int delay(double seconds, const std::string& label,
            std::vector<int> deps = {});

  int chunks_for(double bytes) const;
  const CodeGenOptions& options() const { return options_; }

 private:
  friend struct ProgramBuilderTestPeer;

  int stream_for(const std::vector<int>& route, int position_key);
  int private_stream();

  // Per-chunk interleaved emission state for one tree's broadcast.
  struct BroadcastState {
    std::vector<int> arrival;  // arrival op at each gpu for current chunk
    std::vector<int> streams;  // stream per hop (stable across chunks)
  };
  struct ReduceState {
    std::vector<int> ready;    // reduce/arrival op at each gpu, current chunk
    std::vector<int> streams;  // uplink stream per hop
    std::map<int, int> kernel_streams;  // per-GPU join stream (kernel-free)
  };

  void emit_broadcast_chunk(const RoutedTree& tree, double chunk_bytes,
                            int chunk_ready_op, BroadcastState& state);
  int emit_reduce_chunk(const RoutedTree& tree, double chunk_bytes,
                        bool with_kernels, int chunk_ready_op,
                        ReduceState& state);

  const sim::Fabric& fabric_;
  CodeGenOptions options_;
  sim::Program program_;

  // Stream reuse table keyed by (route, position).
  std::vector<std::pair<std::pair<std::vector<int>, int>, int>> stream_table_;
};

// Renders a CUDA-like source listing equivalent to what the paper's CodeGen
// produces for a tree set (for documentation and golden tests).
std::string emit_pseudo_cuda(const TreeSet& set, const CodeGenOptions& options);

}  // namespace blink
