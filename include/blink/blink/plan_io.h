/// \file
/// Plan serialization: compiled CollectivePlans as durable artifacts (§3.2,
/// §5 — TreeGen/CodeGen are one-time costs amortized over millions of
/// iterations, so the compiled schedule must survive process restarts
/// instead of being repaid at every startup).
///
/// The format is a compact little-endian binary stream. A store file opens
/// with a header carrying a magic tag, the format version, and a fabric
/// fingerprint — a hash of the server shapes, link parameters, and the
/// registered backend names — so a stale or mismatched plan is rejected at
/// load time, never executed. Each record then carries the plan's identity
/// (kind, bytes, root, backend *name* — ids are re-resolved at import), its
/// chunking decision, the phase-2 exchange strategy, result metadata, and
/// the full sim::Program.
///
/// Tree-set provenance is deliberately not persisted: the schedule no longer
/// depends on the TreeSets it was compiled from, so a loaded plan simply has
/// an empty tree_sets() list.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "blink/blink/codegen.h"
#include "blink/blink/plan.h"
#include "blink/blink/treegen.h"
#include "blink/sim/fabric.h"
#include "blink/sim/program.h"
#include "blink/topology/topology.h"

namespace blink {

/// Store-file magic tag: "BLKP", little-endian.
inline constexpr std::uint32_t kPlanStoreMagic = 0x504b4c42u;
/// Store format version; bumped on any layout change, and read_plan_store
/// rejects other versions. v2: records carry the phase-2 exchange strategy
/// (Phase2Strategy). v3: result metadata grows the chunk-pipelining fields
/// (pipeline depth, per-phase chunk counts) and the fabric fingerprint
/// covers per-server NIC rate overrides. v4: the header carries the fabric's
/// per-component health fingerprints (one per server plus the NIC tier, with
/// per-link health folded in) and records carry their channel footprint, so
/// a warm load can skip exactly the plans a health event invalidated instead
/// of rejecting the whole file.
inline constexpr std::uint32_t kPlanStoreVersion = 4;

/// Incremental FNV-1a (64-bit), the hasher behind fabric_fingerprint() and
/// CollectiveBackend::planning_fingerprint(). Multi-byte values hash their
/// little-endian in-memory representation.
class FingerprintHasher {
 public:
  /// Hashes \p n raw bytes starting at \p data.
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  /// Hashes a 64-bit value.
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  /// Hashes a 32-bit value.
  void i32(std::int32_t v) { bytes(&v, sizeof v); }
  /// Hashes a double's bit pattern.
  void f64(double v) { bytes(&v, sizeof v); }
  /// Hashes a string, length-prefixed so "ab"+"c" and "a"+"bc" differ.
  void str(std::string_view s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  /// The current hash value.
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;
};

/// Fingerprint of everything structural a plan's routed schedule depends on:
/// every server's topology (GPU count, NVLink edges and lane bandwidth,
/// NVSwitch, the PCIe hierarchy), the fabric calibration parameters, and the
/// backend names in registration order (channel ids and backend ids must
/// mean the same thing in the loading process as in the saving one).
/// CollectiveEngine::fabric_fingerprint() additionally folds in each
/// backend's planning_fingerprint(), so configuration knobs that change what
/// lowering emits (chunk policy, tree-generation options, phase-2 exchange
/// and partition-sizing policies) separate stores too.
std::uint64_t fabric_fingerprint(const std::vector<topo::Topology>& servers,
                                 const sim::FabricParams& params,
                                 const std::vector<std::string>& backend_names);

/// Hashes every planning knob of TreeGenOptions into \p fp, for backends'
/// planning_fingerprint() implementations. One definition, so a knob added
/// to the struct separates every backend's stores at once instead of only
/// the backends whose hand-rolled hash was updated.
void hash_options(const TreeGenOptions& treegen, FingerprintHasher* fp);
/// Hashes every planning knob of CodeGenOptions into \p fp (see the
/// TreeGenOptions overload).
void hash_options(const CodeGenOptions& codegen, FingerprintHasher* fp);

/// The store file an engine with \p fingerprint reads and writes under
/// \p dir; the fingerprint is part of the name so engines with different
/// fabrics can share one directory.
std::string plan_store_file(const std::string& dir, std::uint64_t fingerprint);

/// One serialized plan, independent of any live engine: the backend travels
/// by name and is re-resolved to an id at import.
struct PlanRecord {
  /// Stable backend name (CollectiveBackend::name()) re-resolved at import.
  std::string backend_name;
  /// CollectiveKind as an integer, range-checked on read.
  int kind = 0;
  /// Root GPU rank the plan was compiled for.
  int root = 0;
  /// Per-GPU buffer size the plan was compiled for.
  double bytes = 0.0;
  /// Chunk size the schedule was emitted at.
  std::uint64_t chunk_bytes = 0;
  /// Phase2Strategy as an integer, range-checked on read.
  int phase2 = 0;
  /// Result metadata; timing unfilled, as in a freshly compiled plan.
  CollectiveResult meta;
  /// The full routed schedule.
  sim::Program program;
  /// Sorted channel ids the plan depends on (program routes plus bake-off
  /// decision channels); see CollectivePlan::channel_footprint(). Empty for
  /// records written by pre-v4 tooling — treated as "depends on everything
  /// healthy", i.e. always adopted.
  std::vector<int> footprint;
};

/// A whole store file: the structural fabric fingerprint, the per-component
/// health fingerprints at save time (empty for stores written by simple
/// tooling, meaning "saved healthy"), and the plan records.
struct PlanStoreFile {
  std::uint64_t fingerprint = 0;
  std::vector<std::uint64_t> component_fingerprints;
  std::vector<PlanRecord> records;
};

// --- stream-level primitives (exposed for tests) ----------------------------

/// Appends \p program's serialized form to \p out.
void serialize_program(const sim::Program& program, std::string* out);
/// Parses a program starting at \p *pos (advanced past it). Throws
/// std::invalid_argument on truncated or internally inconsistent input (the
/// parsed program must pass sim::Program::validate()).
sim::Program deserialize_program(std::string_view buf, std::size_t* pos);

/// Appends \p record's serialized form to \p out.
void serialize_plan_record(const PlanRecord& record, std::string* out);
/// Parses a plan record starting at \p *pos (advanced past it); throws
/// std::invalid_argument on corrupt input.
PlanRecord deserialize_plan_record(std::string_view buf, std::size_t* pos);

// --- whole-file store -------------------------------------------------------

/// Writes header + records atomically (temp file + rename), so a concurrent
/// reader never sees a half-written store.
void write_plan_store(const std::string& path, const PlanStoreFile& file);

/// Convenience overload writing a store with no component health
/// fingerprints (interpreted as "saved healthy" at load).
void write_plan_store(const std::string& path, std::uint64_t fingerprint,
                      const std::vector<PlanRecord>& records);

/// Reads a store written by write_plan_store. Throws std::invalid_argument
/// when the file is missing or unreadable, the magic or format version does
/// not match, \p expected_fingerprint differs from the header's (a plan
/// saved against a different fabric must never execute), or the content is
/// corrupt or truncated. Component-fingerprint mismatches are *not* checked
/// here — they are per-record concerns the caller (PlanCache::load) filters.
PlanStoreFile read_plan_store_file(const std::string& path,
                                   std::uint64_t expected_fingerprint);

/// Record-only convenience wrapper over read_plan_store_file.
std::vector<PlanRecord> read_plan_store(const std::string& path,
                                        std::uint64_t expected_fingerprint);

}  // namespace blink
