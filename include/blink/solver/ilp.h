// Branch-and-bound 0/1 integer programming over packing problems:
//
//     max c.x   s.t.   A x <= b,   x_i in {0,1},   with A >= 0, b >= 0, c >= 0.
//
// Non-negativity of A lets branches fix variables by substitution: fixing
// x_i = 1 subtracts column i from b, and a negative entry proves the branch
// infeasible. This is exactly the structure of the tree-count minimization
// ILP of §3.2.1 (kappa coefficients are 0/1 tree-edge indicators).
#pragma once

#include "blink/solver/simplex.h"

namespace blink::solver {

struct IlpSolution {
  bool feasible = false;
  double objective = 0.0;
  std::vector<double> x;  // each entry 0.0 or 1.0
};

struct IlpOptions {
  int max_nodes = 100000;  // branch-and-bound node budget
};

// Solves the 0/1 program. All coefficients must be non-negative. x = 0 is
// always feasible (b >= 0), so the result is always `feasible` unless the
// problem is malformed.
IlpSolution solve_01(const LpProblem& lp, const IlpOptions& options = {});

}  // namespace blink::solver
