// A small dense simplex solver for packing-shaped linear programs:
//
//     max c.x   subject to   A x <= b,  x >= 0,   with b >= 0.
//
// b >= 0 makes the all-slack basis feasible, so no phase-1 is needed. This
// covers every LP in the library (fractional tree packing and its
// restrictions). Bland's rule is used throughout to rule out cycling.
#pragma once

#include <vector>

namespace blink::solver {

struct LpProblem {
  std::vector<double> c;               // objective, size n
  std::vector<std::vector<double>> a;  // m rows of size n
  std::vector<double> b;               // m right-hand sides, all >= 0

  std::size_t num_vars() const { return c.size(); }
  std::size_t num_rows() const { return b.size(); }
  bool well_formed() const;
};

enum class LpStatus { kOptimal, kUnbounded };

struct LpSolution {
  LpStatus status = LpStatus::kOptimal;
  double objective = 0.0;
  std::vector<double> x;
};

LpSolution solve_lp(const LpProblem& lp);

}  // namespace blink::solver
