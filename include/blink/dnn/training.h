// Data-parallel training-iteration model with wait-free backpropagation
// (§2, [44]): gradient buckets become ready progressively during backward
// and their AllReduce overlaps remaining computation; only the tail is
// exposed. Reproduces Figures 5, 18 and 22a when combined with a collective
// backend (Blink, NCCL-like, or a cluster communicator).
#pragma once

#include <functional>

#include "blink/dnn/models.h"

namespace blink::dnn {

// Time to AllReduce |bytes| per GPU on the backend under test.
using AllReduceFn = std::function<double(double bytes)>;

struct IterationBreakdown {
  double compute_seconds = 0.0;       // forward + backward
  double comm_seconds = 0.0;          // total AllReduce busy time
  double exposed_comm_seconds = 0.0;  // communication not hidden by compute
  double iteration_seconds = 0.0;
  // Exposed communication as a fraction of the iteration (the "communication
  // percentage" of Figure 5).
  double comm_fraction = 0.0;
  double images_per_second = 0.0;  // per_gpu_batch * num_gpus / iteration
};

struct TrainingOptions {
  bool wait_free_backprop = true;  // overlap bucket AllReduce with backward
  int num_gpus = 1;                // scales images/second
};

// Simulates one training iteration. Bucket i's gradients are ready at
// fwd + bwd * (cumulative fraction of buckets 0..i); bucket AllReduces are
// enqueued in that order and serialize on the communication backend.
IterationBreakdown simulate_iteration(const ModelSpec& model,
                                      GpuGeneration gen,
                                      const AllReduceFn& all_reduce,
                                      const TrainingOptions& options);

}  // namespace blink::dnn
