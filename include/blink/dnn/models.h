// The four CNNs of §5 (AlexNet, ResNet18, ResNet50, VGG16) as data-parallel
// training workloads: gradient bytes, bucketing for wait-free
// backpropagation, and per-iteration compute times.
//
// Parameter counts are the standard ImageNet-1K model sizes (fp32 gradients);
// compute times are calibrated so that NCCL's communication overhead lands
// in the ranges Figure 5 reports (see DESIGN.md §2 on substitutions).
#pragma once

#include <string>
#include <vector>

namespace blink::dnn {

enum class GpuGeneration { kP100, kV100 };

struct ModelSpec {
  std::string name;
  double param_bytes = 0.0;   // fp32 parameters == gradient volume
  int per_gpu_batch = 0;      // the paper's "largest that fits" minibatch
  // Forward/backward time for one iteration at per_gpu_batch.
  double fwd_seconds_v100 = 0.0;
  double bwd_seconds_v100 = 0.0;
  double fwd_seconds_p100 = 0.0;
  double bwd_seconds_p100 = 0.0;
  // Gradient buckets in backward-completion order (fractions of param_bytes;
  // frameworks fuse gradients into a few buckets for wait-free backprop).
  std::vector<double> bucket_fractions;

  double fwd_seconds(GpuGeneration gen) const;
  double bwd_seconds(GpuGeneration gen) const;
};

ModelSpec alexnet();
ModelSpec resnet18();
ModelSpec resnet50();
ModelSpec vgg16();

// All four, in the order the figures list them.
std::vector<ModelSpec> model_zoo();

}  // namespace blink::dnn
