// The NCCL-like baseline communicator: ring collectives with NVLink-first
// ring construction, PCIe fallback, and NCCL 2.4's double binary trees for
// small AllReduce payloads on switch fabrics. Mirrors the Communicator API
// so benchmarks can swap backends.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "blink/baselines/ring.h"
#include "blink/blink/communicator.h"

namespace blink::baselines {

struct NcclOptions {
  sim::FabricParams fabric;
  CodeGenOptions codegen;
  // NCCL 2.4 switches from double binary trees to rings as payload grows;
  // the paper cites <16KB on the DGX-2 (§3.5).
  double tree_threshold_bytes = 16.0e3;
  // NCCL executes collectives inside fused persistent kernels with
  // flag-based step synchronization, so its per-step command costs are far
  // below Blink's discrete cudaMemcpyAsync+event CodeGen. When set, the
  // baseline's launch/sync latencies are reduced accordingly.
  bool persistent_kernel_model = true;
  bool memoize = true;
};

// The per-step costs used when persistent_kernel_model is on.
sim::FabricParams apply_persistent_kernel_model(sim::FabricParams params);

class NcclCommunicator {
 public:
  explicit NcclCommunicator(topo::Topology topo, NcclOptions options = {});

  int num_gpus() const { return topo_.num_gpus; }
  const topo::Topology& topology() const { return topo_; }
  const RingPlan& ring_plan() const { return plan_; }
  const sim::Fabric& fabric() const { return fabric_; }

  CollectiveResult broadcast(double bytes, int root);
  CollectiveResult all_reduce(double bytes);
  CollectiveResult gather(double bytes, int root);
  CollectiveResult reduce(double bytes, int root);
  CollectiveResult all_gather(double bytes);

 private:
  CollectiveResult run(int kind, double bytes, int root);

  topo::Topology topo_;
  NcclOptions options_;
  sim::Fabric fabric_;
  RingPlan plan_;
  std::map<std::tuple<int, int, std::uint64_t>, CollectiveResult> memo_;
};

// NCCL-like multi-server AllReduce: one global ring visiting every GPU,
// NVLink inside servers where adjacent, PCIe otherwise, and PCIe + NIC +
// PCIe across server boundaries. This is the configuration §5.4 describes
// as "bound by intra-server PCIe throughput".
CollectiveResult multi_server_ring_all_reduce(
    const std::vector<topo::Topology>& servers, double bytes,
    const NcclOptions& options = {});

}  // namespace blink::baselines
