// The NCCL-like baseline communicator: ring collectives with NVLink-first
// ring construction, PCIe fallback, and NCCL 2.4's double binary trees for
// small AllReduce payloads on switch fabrics.
//
// Since the backend refactor this is a thin CollectiveEngine over
// NcclRingBackend (see baselines/backends.h), so it shares the Blink
// Communicator's whole plan/execute surface — compile()/execute(), grouped
// run(), the thread-safe LRU PlanCache with hit/miss counters, and argument
// validation — instead of a private memo map.
#pragma once

#include <cstdint>
#include <memory>

#include "blink/baselines/ring.h"
#include "blink/blink/engine.h"

namespace blink::baselines {

class NcclRingBackend;

struct NcclOptions {
  sim::FabricParams fabric;
  CodeGenOptions codegen;
  // NCCL 2.4 switches from double binary trees to rings as payload grows;
  // the paper cites <16KB on the DGX-2 (§3.5).
  double tree_threshold_bytes = 16.0e3;
  // NCCL executes collectives inside fused persistent kernels with
  // flag-based step synchronization, so its per-step command costs are far
  // below Blink's discrete cudaMemcpyAsync+event CodeGen. When set, the
  // baseline's launch/sync latencies are reduced accordingly.
  bool persistent_kernel_model = true;
  bool memoize = true;
  // Compiled plans kept in the shared LRU cache.
  std::size_t plan_cache_capacity = 256;
  // Persistent plan store directory (see EngineOptions::plan_store_dir);
  // empty disables persistence.
  std::string plan_store_dir;
  // Cold-path planning parallelism (see EngineOptions::planner_threads):
  // 0 = BLINK_PLANNER_THREADS / hardware default, 1 = serial. Not part of
  // the planning fingerprint.
  int planner_threads = 0;
};

// The per-step costs used when persistent_kernel_model is on.
sim::FabricParams apply_persistent_kernel_model(sim::FabricParams params);

class NcclCommunicator : public CollectiveEngine {
 public:
  explicit NcclCommunicator(topo::Topology topo, NcclOptions options = {});

  const RingPlan& ring_plan() const;

 private:
  NcclRingBackend* backend_;  // owned by the engine's backend registry
};

// NCCL-like multi-server AllReduce: one global ring visiting every GPU,
// NVLink inside servers where adjacent, PCIe otherwise, and PCIe + NIC +
// PCIe across server boundaries. This is the configuration §5.4 describes
// as "bound by intra-server PCIe throughput".
CollectiveResult multi_server_ring_all_reduce(
    const std::vector<topo::Topology>& servers, double bytes,
    const NcclOptions& options = {});

}  // namespace blink::baselines
