// Recursive halving/doubling ("butterfly") AllReduce [33, 41, 45]: the
// latency-optimal scheme the related-work section discusses. Included as a
// reference point for ablation benchmarks; requires a power-of-two GPU count
// and all-to-all reachability (NVSwitch fabric or clique).
#pragma once

#include "blink/blink/codegen.h"

namespace blink::baselines {

// True when the fabric/server supports the butterfly exchange pattern.
bool butterfly_supported(const sim::Fabric& fabric, int server);

// Reduce-scatter by recursive halving, then all-gather by recursive
// doubling: 2*log2(n) rounds, each GPU exchanging bytes/2^k with its partner.
void append_butterfly_all_reduce(ProgramBuilder& builder,
                                 const sim::Fabric& fabric, int server,
                                 double bytes);

}  // namespace blink::baselines
