// Every baseline collective algorithm as a CollectiveBackend, so each runs
// through the shared plan/execute engine — argument validation, the
// thread-safe LRU PlanCache, result memoization, and grouped launches come
// from CollectiveEngine instead of per-baseline memo maps.
//
//   * NcclRingBackend ("nccl"): the full NCCL 2.4 model — lane-disjoint
//     bi-directional rings with PCIe fallback, switching to double binary
//     trees for small AllReduce payloads on switch fabrics.
//   * RingBackend ("ring"): rings only, no small-payload tree switch.
//   * DoubleBinaryBackend ("double_binary"): NCCL 2.4's double binary tree
//     AllReduce [24] at every payload size.
//   * ButterflyBackend ("butterfly"): recursive halving/doubling AllReduce
//     [33, 41, 45]; needs a power-of-two GPU count and all-to-all
//     reachability.
//
// Backends reference the owning engine's topology and fabric; construct them
// via make_baseline_backend() or register them on a CollectiveEngine
// directly.
#pragma once

#include <memory>
#include <string_view>

#include "blink/baselines/nccl_like.h"
#include "blink/baselines/ring.h"
#include "blink/blink/backend.h"

namespace blink::baselines {

// NCCL's ring collectives (+ the double-binary-tree AllReduce switch below
// tree_threshold_bytes on NVSwitch fabrics with >= 4 GPUs). Supports every
// collective kind except ReduceScatter.
class NcclRingBackend : public CollectiveBackend {
 public:
  // |topo| and |fabric| must outlive the backend (the owning engine's).
  NcclRingBackend(const topo::Topology& topo, const sim::Fabric& fabric,
                  NcclOptions options);

  const char* name() const override { return "nccl"; }
  bool supports(CollectiveKind kind) const override;
  int num_ranks() const override { return topo_.num_gpus; }
  std::uint64_t planning_fingerprint() const override;
  LoweredCollective lower(CollectiveKind kind, double bytes,
                          int root) override;

  const RingPlan& ring_plan() const { return plan_; }
  const NcclOptions& options() const { return options_; }

 protected:
  // Whether AllReduce at |bytes| takes the double-binary-tree path;
  // RingBackend pins this to false.
  virtual bool use_double_binary(double bytes) const;

  const topo::Topology& topo_;
  const sim::Fabric& fabric_;
  NcclOptions options_;
  RingPlan plan_;
};

// Rings at every size: the pure bandwidth-optimal ring protocol, without the
// small-payload double-binary-tree switch.
class RingBackend : public NcclRingBackend {
 public:
  using NcclRingBackend::NcclRingBackend;
  const char* name() const override { return "ring"; }

 protected:
  bool use_double_binary(double bytes) const override;
};

// Double-binary-tree AllReduce at every payload size. Requires every
// parent-child pair of the two trees to be NVLink-reachable (an NVSwitch
// fabric or a clique).
class DoubleBinaryBackend : public CollectiveBackend {
 public:
  DoubleBinaryBackend(const topo::Topology& topo, const sim::Fabric& fabric,
                      NcclOptions options);

  const char* name() const override { return "double_binary"; }
  bool supports(CollectiveKind kind) const override;
  int num_ranks() const override { return topo_.num_gpus; }
  std::uint64_t planning_fingerprint() const override;
  LoweredCollective lower(CollectiveKind kind, double bytes,
                          int root) override;

 private:
  const topo::Topology& topo_;
  const sim::Fabric& fabric_;
  NcclOptions options_;
  bool routable_ = false;
};

// Recursive halving/doubling AllReduce; supported only on power-of-two
// allocations with all-to-all NVLink reachability.
class ButterflyBackend : public CollectiveBackend {
 public:
  ButterflyBackend(const topo::Topology& topo, const sim::Fabric& fabric,
                   NcclOptions options);

  const char* name() const override { return "butterfly"; }
  bool supports(CollectiveKind kind) const override;
  int num_ranks() const override { return topo_.num_gpus; }
  std::uint64_t planning_fingerprint() const override;
  LoweredCollective lower(CollectiveKind kind, double bytes,
                          int root) override;

 private:
  const topo::Topology& topo_;
  const sim::Fabric& fabric_;
  NcclOptions options_;
  bool supported_ = false;
};

// Factory over the registry above: "nccl", "ring", "double_binary" or
// "butterfly". Returns nullptr for an unknown name. |topo| and |fabric| must
// be the owning engine's (they must outlive the backend).
std::unique_ptr<CollectiveBackend> make_baseline_backend(
    std::string_view name, const topo::Topology& topo,
    const sim::Fabric& fabric, const NcclOptions& options = {});

}  // namespace blink::baselines
