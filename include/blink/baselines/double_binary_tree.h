// NCCL 2.4's double-binary-tree AllReduce [24], the baseline Figures 19/20
// compare against on the DGX-2 for small payloads.
#pragma once

#include "blink/blink/codegen.h"
#include "blink/graph/binary_trees.h"

namespace blink::baselines {

// The two complementary binary trees as RoutedTrees over the fabric (ranks
// are GPU ids; requires an NVSwitch fabric or a clique so every parent-child
// pair has a route).
std::vector<RoutedTree> double_binary_routed_trees(const sim::Fabric& fabric,
                                                   int server);

// AllReduce with half the payload reduced-and-broadcast on each tree.
void append_double_binary_all_reduce(ProgramBuilder& builder,
                                     const sim::Fabric& fabric, int server,
                                     double bytes);

}  // namespace blink::baselines
