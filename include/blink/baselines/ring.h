// Ring schedule construction for the NCCL-like baseline.
//
// NCCL builds collectives from bi-directional rings. A directed ring is a
// chain from the root's perspective, so ring schedules reuse the tree
// emitters: each directed ring becomes a chain RoutedTree. Ring AllReduce
// uses the bandwidth-optimal reduce-scatter + all-gather pipeline
// (2(n-1)/n traffic per link) rather than a reduce+broadcast chain.
#pragma once

#include <vector>

#include "blink/blink/codegen.h"
#include "blink/graph/rings.h"

namespace blink::baselines {

struct RingPlan {
  std::vector<graph::Ring> rings;  // undirected lane-disjoint rings
  topo::LinkType link = topo::LinkType::kNVLink;

  // NCCL uses each ring in both directions; total directed rings.
  int num_directed() const { return 2 * static_cast<int>(rings.size()); }
};

// NCCL-like ring selection for an allocation: NVLink-only rings if any
// Hamiltonian cycle exists (dropping links that do not fit a ring,
// Figure 4b); otherwise a single PCIe ring in id order (Figure 2b).
RingPlan build_ring_plan(const topo::Topology& topo);

// A directed ring rooted at |root|, as a chain RoutedTree over the fabric
// (|forward| walks the ring order; otherwise the reverse direction).
RoutedTree ring_chain_tree(const sim::Fabric& fabric, int server,
                           const graph::Ring& ring, int root, bool forward,
                           topo::LinkType link);

// Ring broadcast: payload split over all directed rings, each a pipelined
// chain from the root.
void append_ring_broadcast(ProgramBuilder& builder, const sim::Fabric& fabric,
                           int server, const RingPlan& plan, double bytes,
                           int root);

// Ring AllReduce: per directed ring, reduce-scatter then all-gather with
// n blocks circulating (2(n-1) steps per block).
void append_ring_all_reduce(ProgramBuilder& builder, const sim::Fabric& fabric,
                            int server, const RingPlan& plan, double bytes);

}  // namespace blink::baselines
