// A small text format for custom machine descriptions, so users can run
// Blink against fabrics other than the built-in DGX generations (the paper's
// point is precisely that topologies vary).
//
// Format (one directive per line, '#' comments):
//
//   name     my-server
//   gpus     8
//   nvlink   <lane GB/s per direction>
//   link     <a> <b> [lanes]          # undirected NVLink bundle
//   nvswitch <per-GPU GB/s>           # crossbar instead of links
//   pcie     <gpu GB/s> <plx GB/s> <qpi GB/s>
//   plx      <plx id of gpu0> <gpu1> ...
//   cpu      <cpu id of plx0> <plx1> ...
//
// Example:
//   name tiny
//   gpus 3
//   nvlink 23
//   link 0 1
//   link 1 2 2
#pragma once

#include <optional>
#include <string>

#include "blink/topology/topology.h"

namespace blink::topo {

struct ParseResult {
  std::optional<Topology> topology;  // empty on error
  std::string error;                 // "line N: message" on failure
};

ParseResult parse_topology(const std::string& text);

// Reads and parses a .topo file.
ParseResult load_topology(const std::string& path);

// Inverse of parse_topology for the supported feature set (useful for
// round-trip tests and for dumping discovered allocations).
std::string format_topology(const Topology& topo);

}  // namespace blink::topo
