// Binning of GPU allocations by topology uniqueness (§5, Figure 15/16).
//
// The paper bins n-GPU configurations so that allocations whose induced
// NVLink multigraphs are isomorphic fall into one bin (e.g. [0,1,2,3] and
// [4,5,6,7] on a DGX-1). We compute a canonical form of the induced lane
// matrix by minimizing over all vertex permutations — exact for the <= 8
// vertex graphs involved — and report one representative per bin.
//
// This procedure reproduces the paper's counts: 46 unique configurations on
// DGX-1V and 14 on DGX-1P over 3..8 GPUs (asserted in tests).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "blink/topology/topology.h"

namespace blink::topo {

// Canonical signature of the NVLink multigraph induced by |gpus| on
// |machine|. Equal signatures <=> isomorphic induced multigraphs.
std::string canonical_signature(const Topology& machine,
                                std::span<const int> gpus);

struct ConfigBin {
  std::vector<int> representative;          // lexicographically first member
  std::vector<std::vector<int>> members;    // all allocations in the bin
  std::string signature;
};

// All topology-unique bins of size-|k| allocations, ordered by
// representative. Representatives match the x-axis labels of Figures 15-17.
// With |connected_only| set, allocations whose induced NVLink graph is
// disconnected are skipped — the filter the paper applies to its 46 DGX-1V /
// 14 DGX-1P evaluation configurations.
std::vector<ConfigBin> unique_configs(const Topology& machine, int k,
                                      bool connected_only = false);

// Convenience: bins for every size in [k_min, k_max], concatenated in
// ascending size order (the full x-axis of Figure 15).
std::vector<ConfigBin> unique_configs_range(const Topology& machine, int k_min,
                                            int k_max,
                                            bool connected_only = false);

}  // namespace blink::topo
