// The topology zoo: parameterized fabric builders beyond the three hand-built
// paper machines (ROADMAP item 5). Every plan-level guarantee used to be
// checked only on DGX-1P/V, DGX-2, clique and chain; the zoo generates
// NVSwitch boxes of any width, PCIe-only hosts, fat-tree/multi-rack NIC
// hierarchies, mixed-generation fleets, and — for the invariant fuzzer —
// seeded random fabrics with controllable GPU count, link density and
// bandwidth spread. All builders validate their arguments and throw
// std::invalid_argument instead of constructing a malformed Topology.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blink/common/rng.h"
#include "blink/sim/fabric.h"
#include "blink/topology/builders.h"
#include "blink/topology/topology.h"

namespace blink::topo::zoo {

// --- parameterized single-server builders -----------------------------------

// An NVSwitch box of |num_gpus| GPUs: every GPU has one aggregated
// full-duplex pipe of |gpu_bw| bytes/s into a non-blocking crossbar (a DGX-2
// of any width). Throws std::invalid_argument on num_gpus < 1 or gpu_bw <= 0.
Topology make_nvswitch_box(int num_gpus, double gpu_bw = kNvswitchGpuBw);

// A host with no NVLink fabric at all: collectives ride the PCIe hierarchy
// (pairs share a PLX, two PLX per socket), which is where NCCL's Figure 2b
// fallback lives. Throws std::invalid_argument on num_gpus < 1.
Topology make_pcie_only_host(int num_gpus);

// --- seeded random single-server topologies ----------------------------------

struct RandomTopologyParams {
  int num_gpus = 4;
  // Fraction of the candidate edges beyond a random spanning tree that are
  // added: 0 = bare tree (always NVLink-connected), 1 = full clique.
  double link_density = 0.5;
  // Lanes per edge are drawn uniformly from [1, max_lanes]. A Topology
  // carries one per-lane rate, so per-edge bandwidth spread rides on lane
  // counts.
  int max_lanes = 2;
  double lane_bw = kNvlinkGen2Bw;  // bytes/s per lane per direction
  // Probability that the server comes out as an NVSwitch box or a PCIe-only
  // host instead of a random NVLink mesh.
  double nvswitch_probability = 0.0;
  double pcie_only_probability = 0.0;
};

// A random server drawn from |rng|: a spanning-tree-connected NVLink mesh
// densified per link_density with random lane counts (or, per the
// probabilities, an NVSwitch box / PCIe-only host). Always carries the
// standard PCIe hierarchy so fallback paths exist. Throws
// std::invalid_argument on non-positive counts/bandwidths or out-of-range
// probabilities/density.
Topology make_random_topology(const RandomTopologyParams& params, Rng& rng);

// --- multi-server builders ----------------------------------------------------

// Servers plus the calibrated NIC tier they hang off — what a
// ClusterCommunicator (or multi-server CollectiveEngine) consumes.
struct ZooCluster {
  std::string name;
  std::vector<Topology> servers;
  sim::FabricParams fabric;  // per-server NIC rates filled in
};

// A multi-rack fat-tree: |racks| * |servers_per_rack| identical NVSwitch
// boxes of |gpus_per_server| GPUs. The fabric models one NIC tier, so the
// rack uplink oversubscription (>= 1) folds into the per-server NIC rate:
// with more than one rack every server runs at nic_bw / oversubscription
// (cross-rack flows share the ToR uplink); a single rack keeps full rate.
// Throws std::invalid_argument on non-positive counts/bandwidths or
// oversubscription < 1.
ZooCluster make_fat_tree_cluster(int racks, int servers_per_rack,
                                 int gpus_per_server, double nic_bw = 5.0e9,
                                 double oversubscription = 1.0);

// A mixed-generation fleet: one server per entry of |generations| (kDGX1P,
// kDGX1V or kDGX2 — kCustom throws). gpus_per_server > 0 induces the first
// k GPUs of each box (sub-allocation fleets); 0 keeps whole machines.
// Per-server NIC rates reflect the host generation: P100-era hosts get
// nic_bw / 2, V100 hosts nic_bw, DGX-2 hosts 2 * nic_bw. Throws
// std::invalid_argument on an empty list, bad bandwidth, or a
// gpus_per_server exceeding a listed machine.
ZooCluster make_mixed_fleet(const std::vector<ServerKind>& generations,
                            double nic_bw = 5.0e9, int gpus_per_server = 0);

// --- the seeded random-fabric generator (fuzzer substrate) -------------------

struct RandomFabricParams {
  int min_servers = 1;
  int max_servers = 3;
  int min_gpus = 2;  // per server
  int max_gpus = 6;
  int max_lanes = 3;
  double min_lane_bw = 5.0e9;
  double max_lane_bw = 30.0e9;
  double min_nic_bw = 1.25e9;  // 10 Gbps
  double max_nic_bw = 25.0e9;  // 200 Gbps
  double nvswitch_probability = 0.15;
  double pcie_only_probability = 0.15;
};

// One generated fabric, reproducible from its seed alone.
struct RandomFabric {
  std::uint64_t seed = 0;
  std::vector<Topology> servers;
  sim::FabricParams fabric;  // per-server NIC rates when multi-server

  int total_gpus() const;
  // One-line builder-parameter summary for fuzzer repro lines, e.g.
  // "servers=2 [mesh4(d=0.31,lanes<=3,lane=12.4e9), pcie3] nic=[2.1e9,8.8e9]".
  std::string describe() const;
};

// Deterministically generates a fabric from |seed|: server count, per-server
// shape (random mesh / NVSwitch box / PCIe-only host), GPU counts, link
// density, lane counts, lane bandwidth, and per-server NIC rates are all
// drawn from the seeded stream, within |params|' ranges. The same seed and
// params always produce an identical fabric on every platform. Throws
// std::invalid_argument on inverted or non-positive ranges.
RandomFabric make_random_fabric(std::uint64_t seed,
                                const RandomFabricParams& params = {});

}  // namespace blink::topo::zoo
