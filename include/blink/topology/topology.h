// Hardware topology model: GPUs, NVLink lanes, the PCIe switch hierarchy,
// NVSwitch fabrics, and NICs.
//
// A Topology describes one server. Multi-server settings are a Cluster
// (see multiserver.h). GPU ids inside a Topology are dense [0, num_gpus);
// an *allocation* of a subset of GPUs is turned into an induced sub-topology
// by discovery (discovery.h), which re-indexes GPUs but remembers the global
// ids so PCIe placement stays faithful.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace blink::topo {

enum class LinkType { kNVLink, kPCIe, kQPI, kNVSwitch, kNIC };

const char* to_string(LinkType type);

enum class ServerKind { kDGX1P, kDGX1V, kDGX2, kCustom };

const char* to_string(ServerKind kind);

// An undirected bundle of NVLink lanes between two GPUs. Capacity per
// direction is lanes * nvlink_lane_bw of the owning Topology.
struct NvlinkEdge {
  int a = 0;
  int b = 0;
  int lanes = 1;
};

// The PCIe hierarchy of a DGX-1-class server:
//   GPU --x16--> PLX switch --x16--> CPU socket --QPI--> other socket.
// Each level is a shared full-duplex channel in the simulator.
struct PcieConfig {
  std::vector<int> plx_of_gpu;  // PLX switch index for each GPU
  std::vector<int> cpu_of_plx;  // CPU socket index for each PLX
  double gpu_bw = 0.0;          // GPU <-> PLX, bytes/s per direction
  double plx_bw = 0.0;          // PLX <-> CPU, bytes/s per direction
  double qpi_bw = 0.0;          // CPU <-> CPU, bytes/s per direction

  int num_plx() const;
  int num_cpus() const;
  bool valid_for(int num_gpus) const;
};

struct Topology {
  ServerKind kind = ServerKind::kCustom;
  std::string name;
  int num_gpus = 0;

  // NVLink point-to-point fabric (empty on DGX-2).
  double nvlink_lane_bw = 0.0;  // bytes/s per lane per direction
  std::vector<NvlinkEdge> nvlinks;

  // NVSwitch fabric (DGX-2): every GPU has one aggregated full-duplex pipe
  // into a non-blocking crossbar.
  bool has_nvswitch = false;
  double nvswitch_gpu_bw = 0.0;  // bytes/s per GPU per direction

  PcieConfig pcie;

  // Identity for a full machine; set by discovery for allocations.
  std::vector<int> global_ids;

  // --- queries -------------------------------------------------------------

  // Number of NVLink lanes between GPUs a and b (0 if not adjacent).
  int lanes_between(int a, int b) const;

  // Sum of lanes incident to |gpu|.
  int nvlink_degree(int gpu) const;

  // Total directed NVLink capacity from a to b in bytes/s.
  double nvlink_capacity(int a, int b) const;

  // True if every GPU can reach every other over NVLink edges alone.
  bool nvlink_connected() const;

  // The global id of local GPU |gpu| (identity when global_ids is empty).
  int global_id(int gpu) const;

  // Human-readable multigraph summary, for logging and golden tests.
  std::string describe() const;

  // Internal-consistency check; used by tests and builders.
  bool validate(std::string* error = nullptr) const;
};

}  // namespace blink::topo
