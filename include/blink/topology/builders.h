// Builders for the server generations evaluated in the paper, calibrated to
// the link rates quoted in §1/§2.2/§3.5 (see DESIGN.md §6).
#pragma once

#include "blink/topology/topology.h"

namespace blink::topo {

// Calibration constants (bytes/s per direction).
inline constexpr double kNvlinkGen1Bw = 19.0e9;  // DGX-1P: 18-20 GB/s
inline constexpr double kNvlinkGen2Bw = 23.0e9;  // DGX-1V: 22-25 GB/s
inline constexpr double kPcieGpuBw = 11.0e9;     // PCIe Gen3 x16: 8-12 GB/s
inline constexpr double kPciePlxBw = 11.0e9;
inline constexpr double kQpiBw = 9.0e9;
inline constexpr double kNvswitchGpuBw = 138.0e9;  // 6 lanes, 150 GB/s bidir

// DGX-1 with P100 GPUs: hybrid cube-mesh (Figure 1, solid lines).
// Each quad {0..3} and {4..7} is a clique; 0-4, 1-5, 2-6, 3-7 connect them.
// Every edge is a single NVLink gen1 lane (4 lanes per GPU).
Topology make_dgx1p();

// DGX-1 with V100 GPUs: same mesh with six lanes per GPU; the additional
// lanes double the edges marked NV2 on AWS p3.16xlarge (`nvidia-smi topo -m`):
//   0-3, 1-2, 2-3 doubled in quad 0; 4-7, 5-6, 6-7 doubled in quad 1;
//   0-4 and 1-5 doubled across quads.
Topology make_dgx1v();

// DGX-2: 16 V100s on a non-blocking NVSwitch crossbar, 6 NVLink lanes per
// GPU into the switch (150 GB/s bidirectional per §3.5).
Topology make_dgx2();

// A fully connected |num_gpus| clique of single NVLink lanes, for unit tests.
// Throws std::invalid_argument on a non-positive GPU count or bandwidth.
Topology make_clique(int num_gpus, double lane_bw = kNvlinkGen2Bw);

// A chain 0-1-2-...-n-1 of single lanes, for the §2.2 depth benchmarks.
// Throws std::invalid_argument on a non-positive GPU count or bandwidth.
Topology make_chain(int num_gpus, double lane_bw = kNvlinkGen2Bw);

// Standard DGX-1 PCIe hierarchy for |num_gpus| (pairs share a PLX, two PLX
// per CPU socket). Used by the builders above; exposed for custom topologies.
PcieConfig make_dgx1_pcie(int num_gpus);

}  // namespace blink::topo
