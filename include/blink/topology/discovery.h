// Topology discovery: turning a scheduler allocation (subset of GPU ids on a
// server) into the induced sub-topology Blink plans over.
//
// In the paper this is a runtime probe of the NVML/PCIe device tree for the
// GPUs visible to the job; here the "machine" is a Topology value and probing
// is an induced-subgraph computation that keeps PCIe placement faithful via
// global ids.
#pragma once

#include <span>

#include "blink/topology/topology.h"

namespace blink::topo {

// The induced sub-topology over |gpus| (global ids into |machine|). Local
// GPU i of the result corresponds to machine GPU gpus[i]. NVLink edges with
// both endpoints allocated are kept; PCIe placement (PLX/CPU assignment) is
// preserved. Requires distinct, in-range ids.
Topology induced_topology(const Topology& machine, std::span<const int> gpus);

// All size-|k| allocations of |machine| as sorted id vectors (n choose k).
std::vector<std::vector<int>> enumerate_allocations(const Topology& machine,
                                                    int k);

}  // namespace blink::topo
