// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (cluster workload generation,
// property-test sweeps) take an explicit Rng so that every experiment is
// reproducible from a seed printed in its output.
#pragma once

#include <cstdint>
#include <vector>

namespace blink {

// SplitMix64-seeded xoshiro256** generator. Header-light, no <random> state
// size surprises, identical streams on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  // Uniform in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  // Uniform in [0, 1).
  double next_double();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int next_int(int lo, int hi);

  // Samples an index according to non-negative weights. Requires at least one
  // positive weight.
  std::size_t next_weighted(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace blink
