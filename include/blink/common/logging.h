// Minimal leveled logging. Off by default so benchmarks stay quiet; tests and
// examples can raise the level to trace schedule execution.
#pragma once

#include <sstream>
#include <string>

namespace blink {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace internal {
void emit_log(LogLevel level, const std::string& message);
}  // namespace internal

// Stream-style logger: BLINK_LOG(kInfo) << "rate=" << r;
#define BLINK_LOG(level)                                            \
  for (bool blink_log_once =                                        \
           (::blink::LogLevel::level >= ::blink::log_level());      \
       blink_log_once; blink_log_once = false)                      \
  ::blink::internal::LogMessage(::blink::LogLevel::level).stream()

namespace internal {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { emit_log(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace blink
