// Minimal leveled logging. Off by default so benchmarks stay quiet; tests and
// examples can raise the level to trace schedule execution.
//
// Thread-safe: each message is formatted into one string and handed to the
// sink as a single write under a global lock, so concurrent daemon/worker
// threads never interleave characters within a line.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace blink {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

// Where complete log lines go. Called with the sink lock held — one call per
// message, messages never tear — so the sink itself needs no synchronization.
using LogSink = std::function<void(LogLevel, const std::string&)>;

// Replaces the sink (default: one locked fwrite of "[blink LEVEL] msg\n" to
// stderr). Pass an empty function to restore the default. Tests use this to
// capture output; the serving daemon to redirect worker logs.
void set_log_sink(LogSink sink);

namespace internal {
void emit_log(LogLevel level, const std::string& message);
}  // namespace internal

// Stream-style logger: BLINK_LOG(kInfo) << "rate=" << r;
#define BLINK_LOG(level)                                            \
  for (bool blink_log_once =                                        \
           (::blink::LogLevel::level >= ::blink::log_level());      \
       blink_log_once; blink_log_once = false)                      \
  ::blink::internal::LogMessage(::blink::LogLevel::level).stream()

namespace internal {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { emit_log(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace blink
