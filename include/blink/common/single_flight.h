/// \file
/// Per-key single-flight execution: N concurrent callers asking for the same
/// key run the computation exactly once — one leader computes while the rest
/// wait on the in-flight slot — and callers with distinct keys proceed fully
/// in parallel. The in-flight map is sharded so the bookkeeping lock never
/// serializes unrelated keys.
///
/// This is the engine's compile-path concurrency primitive: the global
/// compile lock became per-PlanKey single-flight, so a fleet of tenants cold-
/// compiling distinct shapes scales with the core count while duplicate
/// requests for one shape still cost one lowering.
#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace blink::common {

/// Single-flight over keys of type \p Key producing values of type \p Value.
/// \p Hash picks the shard (defaults to std::hash); \p Key also needs
/// operator< for the per-shard map. \p Value must be copyable (the waiters
/// each get a copy; use a shared_ptr for heavy results).
template <class Key, class Value, class Hash = std::hash<Key>,
          std::size_t kShards = 8>
class SingleFlight {
 public:
  /// Returns fn()'s value for \p key. The first caller for an idle key is
  /// the leader and runs \p fn (outside every internal lock); concurrent
  /// callers for the same key block until the leader finishes and share its
  /// value. An exception from \p fn propagates to the leader and every
  /// waiter, and the key is retired so the next caller retries. \p leader
  /// (when non-null) reports whether this caller ran the computation.
  template <class Fn>
  Value run(const Key& key, Fn&& fn, bool* leader = nullptr) {
    Shard& shard = shards_[Hash{}(key) % kShards];
    std::shared_ptr<Slot> slot;
    bool is_leader = false;
    {
      const std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.inflight.find(key);
      if (it == shard.inflight.end()) {
        slot = std::make_shared<Slot>();
        shard.inflight.emplace(key, slot);
        is_leader = true;
      } else {
        slot = it->second;
      }
    }
    if (leader != nullptr) *leader = is_leader;

    if (is_leader) {
      Value value{};
      try {
        value = fn();
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(slot->mu);
          slot->error = std::current_exception();
          slot->done = true;
        }
        slot->cv.notify_all();
        retire(shard, key, slot);
        throw;
      }
      {
        const std::lock_guard<std::mutex> lock(slot->mu);
        slot->value = value;
        slot->done = true;
      }
      slot->cv.notify_all();
      retire(shard, key, slot);
      return value;
    }

    std::unique_lock<std::mutex> lock(slot->mu);
    slot->cv.wait(lock, [&] { return slot->done; });
    if (slot->error) std::rethrow_exception(slot->error);
    return slot->value;
  }

 private:
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Value value{};
    std::exception_ptr error;
  };
  struct Shard {
    std::mutex mu;
    std::map<Key, std::shared_ptr<Slot>> inflight;
  };

  // Removes the finished flight so the next caller starts a fresh one; the
  // identity check keeps a stale erase from removing a successor's slot.
  void retire(Shard& shard, const Key& key,
              const std::shared_ptr<Slot>& slot) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.inflight.find(key);
    if (it != shard.inflight.end() && it->second == slot) {
      shard.inflight.erase(it);
    }
  }

  std::array<Shard, kShards> shards_;
};

}  // namespace blink::common
