// Units and small numeric helpers used across the library.
//
// Conventions:
//   * time       — double seconds
//   * data size  — std::uint64_t bytes (fluid amounts inside the simulator
//                  use double bytes)
//   * bandwidth  — double bytes/second
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace blink {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

// The paper (and NCCL) quote link rates in decimal GB/s.
inline constexpr double kGB = 1e9;
inline constexpr double kMB = 1e6;
inline constexpr double kKB = 1e3;

// Converts a bandwidth given in decimal GB/s into bytes/second.
constexpr double gbps(double gigabytes_per_second) {
  return gigabytes_per_second * kGB;
}

// Converts a NIC rate given in Gbit/s into bytes/second.
constexpr double gbitps(double gigabits_per_second) {
  return gigabits_per_second * 1e9 / 8.0;
}

constexpr double usec(double microseconds) { return microseconds * 1e-6; }
constexpr double msec(double milliseconds) { return milliseconds * 1e-3; }

// Pretty-prints a byte count, e.g. "512KB", "1GB".
std::string format_bytes(std::uint64_t bytes);

// Pretty-prints a throughput in GB/s with two decimals.
std::string format_throughput(double bytes_per_second);

// True when |a| and |b| agree within |rel| relative tolerance.
inline bool approx_equal(double a, double b, double rel = 1e-9) {
  return std::fabs(a - b) <= rel * std::fmax(std::fabs(a), std::fabs(b));
}

}  // namespace blink
