/// \file
/// The repo's one thread pool: a fixed set of workers over a bounded-locking
/// task queue, with a work-helping parallel_for for the planner's cold path
/// and pause/resume + drain-on-destruction semantics for the serving layer.
///
/// Sizing: ThreadPool::shared() is the process-wide planner pool, sized by
/// the BLINK_PLANNER_THREADS environment variable when set (a positive
/// integer) and std::thread::hardware_concurrency() otherwise — see
/// default_threads(). Engines cap how much of the shared pool they use via
/// EngineOptions::planner_threads; the serving layer instantiates its own
/// pool so planner fan-out and request workers never starve each other.
///
/// parallel_for never deadlocks under nesting: the calling thread claims
/// iterations itself and, while waiting for its helper tasks, executes other
/// queued tasks inline — so a parallel_for issued from inside a pool task
/// (a bake-off inside a batched compile, say) always makes progress even
/// when every worker is busy.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace blink::common {

/// A fixed-size worker pool over a FIFO task queue. Thread-safe throughout:
/// any thread may post(), submit(), or run parallel_for() concurrently.
class ThreadPool {
 public:
  /// Starts \p threads workers (0 means default_threads()).
  explicit ThreadPool(std::size_t threads = 0);
  /// Drains every queued task (resuming a paused pool), then joins.
  ~ThreadPool();

  /// Not copyable: the workers and queue are identity.
  ThreadPool(const ThreadPool&) = delete;
  /// Not copyable: the workers and queue are identity.
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The default worker count: BLINK_PLANNER_THREADS when set to a positive
  /// integer, otherwise std::thread::hardware_concurrency() (at least 1).
  static std::size_t default_threads();

  /// The process-wide planner pool, created on first use with
  /// default_threads() workers. Engines share it for cold-path fan-out.
  static ThreadPool& shared();

  /// Number of worker threads.
  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues \p task for a worker (fire-and-forget). Tasks posted to a
  /// stopped pool run inline on the calling thread.
  void post(std::function<void()> task);

  /// Enqueues \p fn and returns a future for its result; exceptions thrown
  /// by \p fn surface at future.get().
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    post([task] { (*task)(); });
    return future;
  }

  /// Runs body(0) .. body(n-1), the calling thread participating alongside
  /// up to min(num_threads(), max_workers - 1) helper tasks (max_workers ==
  /// 0 means no cap beyond the pool size). Blocks until every iteration
  /// finished; while waiting, the caller executes other queued tasks inline,
  /// so nested calls cannot deadlock. The first exception any iteration
  /// throws is rethrown here after remaining claims are cancelled; which
  /// iterations ran to completion in that case is unspecified.
  template <class F>
  void parallel_for(std::size_t n, F&& body, std::size_t max_workers = 0);

  /// Holds the workers after their current task: queued tasks stay queued
  /// (parallel_for callers still execute them inline while they wait).
  void pause();
  /// Releases pause().
  void resume();

  /// Tasks waiting in the queue right now.
  std::size_t queue_depth() const;

 private:
  struct ForState {
    std::atomic<std::size_t> next{0};
    std::size_t n = 0;
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending = 0;  // helper tasks not yet finished
    std::exception_ptr error;
  };

  // Pops and runs one queued task on the calling thread; false when the
  // queue is empty. Ignores pause(): helping callers must keep draining.
  bool try_run_one();
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  bool paused_ = false;
  std::vector<std::thread> workers_;
};

template <class F>
void ThreadPool::parallel_for(std::size_t n, F&& body,
                              std::size_t max_workers) {
  if (n == 0) return;
  std::size_t width = num_threads() + 1;
  if (max_workers != 0) width = std::min(width, max_workers);
  width = std::min(width, n);

  auto state = std::make_shared<ForState>();
  state->n = n;
  F& fn = body;  // the caller outlives every claim loop below
  auto claim_loop = [state, &fn] {
    for (;;) {
      const std::size_t i =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) break;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
        // Cancel the remaining iterations; in-flight ones finish.
        state->next.store(state->n, std::memory_order_relaxed);
      }
    }
  };

  const std::size_t helpers = width - 1;
  {
    const std::lock_guard<std::mutex> lock(state->mu);
    state->pending = helpers;
  }
  for (std::size_t h = 0; h < helpers; ++h) {
    post([state, claim_loop] {
      claim_loop();
      const std::lock_guard<std::mutex> lock(state->mu);
      if (--state->pending == 0) state->cv.notify_all();
    });
  }

  claim_loop();

  // Wait for the helpers — executing other queued tasks meanwhile, since on
  // a saturated pool this call's own helpers (or a nested call's) may be
  // queued behind the very task that issued it.
  std::unique_lock<std::mutex> lock(state->mu);
  while (state->pending > 0) {
    lock.unlock();
    const bool ran = try_run_one();
    lock.lock();
    if (!ran && state->pending > 0) {
      state->cv.wait_for(lock, std::chrono::microseconds(200),
                         [&] { return state->pending == 0; });
    }
  }
  if (state->error) std::rethrow_exception(state->error);
}

/// Convenience: body(0) .. body(n-1) across the shared() pool, capped at
/// \p max_workers total participants; max_workers <= 1 (or n <= 1) runs
/// serially on the calling thread without touching the pool.
template <class F>
void parallel_for(std::size_t n, std::size_t max_workers, F&& body) {
  if (n <= 1 || max_workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool::shared().parallel_for(n, std::forward<F>(body), max_workers);
}

}  // namespace blink::common
