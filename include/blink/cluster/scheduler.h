// Synthetic multi-tenant GPU cluster (Figure 3): jobs overwhelmingly request
// GPUs in powers of two, but bin-packing against a fragmented cluster leaves
// many jobs with 3/5/6/7 GPUs on individual 8-GPU servers. This module
// regenerates that per-server allocation-size distribution.
#pragma once

#include <array>
#include <vector>

#include "blink/common/rng.h"

namespace blink::cluster {

struct SchedulerConfig {
  int num_servers = 64;
  int gpus_per_server = 8;
  int num_jobs = 40000;  // the paper analyzes 40k multi-GPU jobs
  // Request-size distribution over {1,2,4,8,16} GPUs (multi-GPU jobs request
  // powers of two; single-GPU jobs create the fragmentation).
  double p_request_1 = 0.30;
  double p_request_2 = 0.25;
  double p_request_4 = 0.20;
  double p_request_8 = 0.17;
  double p_request_16 = 0.08;
  // Mean job duration in arbitrary ticks (exponential); arrivals Poisson.
  // The defaults keep the cluster near saturation, where placement must
  // work with fragmented leftovers (the regime Figure 3 documents).
  double mean_duration = 150.0;
  double mean_interarrival = 1.0;
};

struct AllocationStats {
  // histogram[k] = number of (job, server) pairs where a multi-GPU job holds
  // k GPUs on that server, k in [0, gpus_per_server].
  std::vector<long> histogram;
  long multi_gpu_jobs = 0;
  long fragmented_jobs = 0;  // multi-GPU jobs split across servers

  // Percentage of multi-GPU jobs holding k GPUs on a server (Figure 3 bars).
  double percent(int k) const;
};

// Runs the arrival/departure simulation with first-fit placement that
// splits a job across servers when no single server can host it.
AllocationStats simulate_cluster(const SchedulerConfig& config, Rng& rng);

}  // namespace blink::cluster
