// A small capacitated directed multigraph, the planning representation used
// by TreeGen and the baselines. Vertices are the *allocated* GPUs of an
// induced topology, re-indexed [0, n).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "blink/topology/topology.h"

namespace blink::graph {

struct Edge {
  int src = 0;
  int dst = 0;
  double capacity = 0.0;  // bytes/s of the edge's capacity *group*
  int lanes = 1;          // physical NVLink lanes aggregated into this edge
  int group = 0;          // capacity-group id; edges in one group share
                          // capacity (both directions of a bi-directional
                          // link when packing for AllReduce, §3.3)
};

class DiGraph {
 public:
  explicit DiGraph(int num_vertices);

  // Adds a directed edge and returns its id. |group| < 0 puts the edge in
  // its own fresh capacity group.
  int add_edge(int src, int dst, double capacity, int lanes = 1,
               int group = -1);

  int num_vertices() const { return n_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const Edge& edge(int id) const { return edges_[static_cast<std::size_t>(id)]; }
  const std::vector<Edge>& edges() const { return edges_; }

  // Ids of edges leaving |v|.
  const std::vector<int>& out_edges(int v) const {
    return out_[static_cast<std::size_t>(v)];
  }
  // Ids of edges entering |v|.
  const std::vector<int>& in_edges(int v) const {
    return in_[static_cast<std::size_t>(v)];
  }

  int num_groups() const { return num_groups_; }
  // Capacity of each group (the shared budget of its member edges).
  std::vector<double> group_capacities() const;
  // True when some group contains more than one edge.
  bool has_shared_groups() const;

  // True if every vertex is reachable from |root| along directed edges.
  bool reachable_from(int root) const;

  std::string describe() const;

 private:
  int n_;
  int num_groups_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
};

// The directed NVLink planning graph of a topology: one edge per direction
// per NVLink bundle, capacity = lanes * lane bandwidth. On NVSwitch machines
// returns the logical full mesh with per-pair capacity equal to the per-GPU
// pipe (the crossbar is non-blocking; per-GPU limits are enforced by the
// simulator's fabric model).
//
// With |undirected_capacity| set, the two directions of each bundle share
// one capacity group: the §3.3 AllReduce model, where packed trees consume
// an undirected edge because the reduce phase runs on the reverse direction
// of the broadcast trees. Without it each direction has its own budget (the
// pure Broadcast/one-to-many model).
DiGraph nvlink_digraph(const topo::Topology& topo,
                       bool undirected_capacity = false);

// The logical PCIe planning graph: GPU pairs connected through the PCIe
// hierarchy, with capacity of the narrowest traversed segment (same-PLX,
// same-socket, or cross-QPI paths). Cross-PLX pairs bounce through a host
// staging buffer, so their capacity is additionally capped by |staging_bw|
// (keep in sync with sim::FabricParams::sysmem_bw).
DiGraph pcie_digraph(const topo::Topology& topo, double staging_bw = 5.0e9);

}  // namespace blink::graph
