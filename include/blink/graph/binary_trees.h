// Double binary trees, the algorithm NCCL 2.4 uses for AllReduce on large
// machines and which Figure 19/20 compares against on the DGX-2 [24].
//
// Two balanced binary trees over the ranks, with data split half/half; the
// second tree is the first with ranks rotated by one so that (for even rank
// counts) interior nodes of one tree are leaves of the other, balancing the
// send/receive load.
#pragma once

#include <utility>
#include <vector>

namespace blink::graph {

struct BinaryTree {
  int root = 0;
  std::vector<int> parent;  // parent[rank]; -1 at the root

  std::vector<std::vector<int>> children() const;
  int depth() const;
  bool valid() const;
};

// Balanced (in-order) binary tree over ranks [0, n).
BinaryTree balanced_binary_tree(int n);

// The NCCL-style pair of complementary trees.
std::pair<BinaryTree, BinaryTree> double_binary_trees(int n);

}  // namespace blink::graph
