// Max-flow (Dinic) on the planning graph. Used for the exact optimal
// broadcast rate: by Edmonds' theorem the maximal packing of arborescences
// rooted at r equals min over v != r of maxflow(r -> v).
#pragma once

#include "blink/graph/digraph.h"

namespace blink::graph {

// Maximum s->t flow value respecting edge capacities.
double max_flow(const DiGraph& g, int s, int t);

// Optimal broadcast rate from |root|: min over all other vertices of the
// root->v max-flow (bytes/s). Returns 0 if some vertex is unreachable.
double broadcast_rate_upper_bound(const DiGraph& g, int root);

}  // namespace blink::graph
