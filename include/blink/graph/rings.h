// Ring construction for the NCCL-like baseline: NCCL builds collectives from
// bi-directional rings over NVLink and drops to PCIe when no NVLink-only
// ring covers the allocation (§1, Figure 2/4).
#pragma once

#include <vector>

#include "blink/topology/topology.h"

namespace blink::graph {

// A ring visits every GPU once: order[i] sends to order[(i+1) % n]. A ring
// over an undirected lane-cycle is used in both directions (two directed
// rings), mirroring NCCL channel pairs.
struct Ring {
  std::vector<int> order;
};

// Maximum multiset of lane-disjoint Hamiltonian cycles on the NVLink
// multigraph of |topo| (each selected cycle consumes one lane per edge it
// traverses; an edge with two lanes can carry two rings). Exact via
// enumeration + branch-and-bound for the <= 8 vertex graphs involved;
// returns empty when no NVLink Hamiltonian cycle exists.
std::vector<Ring> max_disjoint_rings(const topo::Topology& topo);

// All Hamiltonian cycles of the NVLink graph up to rotation and reflection.
std::vector<Ring> enumerate_hamiltonian_cycles(const topo::Topology& topo);

}  // namespace blink::graph
