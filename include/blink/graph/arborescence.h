// Minimum-cost spanning arborescence (Chu-Liu/Edmonds), the inner step of
// the MWU packing loop (§3.2): given per-edge lengths, find the cheapest
// directed spanning tree rooted at r.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "blink/graph/digraph.h"

namespace blink::graph {

// A spanning arborescence as the list of edge ids into the owning DiGraph.
// Every vertex except the root has exactly one incoming edge in the list.
struct Arborescence {
  int root = 0;
  std::vector<int> edge_ids;  // n-1 edges

  // parent[v] = source vertex of v's incoming edge (-1 for the root).
  std::vector<int> parents(const DiGraph& g) const;
  // Depth of the deepest vertex (root = 0).
  int depth(const DiGraph& g) const;
  bool spans(const DiGraph& g) const;
};

// Minimum-total-cost arborescence rooted at |root| with |cost[id]| per edge.
// Returns std::nullopt when no spanning arborescence exists (some vertex is
// unreachable from the root). Costs must be non-negative.
std::optional<Arborescence> min_cost_arborescence(const DiGraph& g, int root,
                                                  std::span<const double> cost);

}  // namespace blink::graph
