// Minimum-cost spanning arborescence (Chu-Liu/Edmonds), the inner step of
// the MWU packing loop (§3.2): given per-edge lengths, find the cheapest
// directed spanning tree rooted at r.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "blink/graph/digraph.h"

namespace blink::graph {

class ArborescenceWorkspace;

// A spanning arborescence as the list of edge ids into the owning DiGraph.
// Every vertex except the root has exactly one incoming edge in the list.
struct Arborescence {
  int root = 0;
  std::vector<int> edge_ids;  // n-1 edges

  // parent[v] = source vertex of v's incoming edge (-1 for the root).
  std::vector<int> parents(const DiGraph& g) const;
  // Depth of the deepest vertex (root = 0).
  int depth(const DiGraph& g) const;
  bool spans(const DiGraph& g) const;
};

// Minimum-total-cost arborescence rooted at |root| with |cost[id]| per edge.
// Returns std::nullopt when no spanning arborescence exists (some vertex is
// unreachable from the root). Costs must be non-negative.
std::optional<Arborescence> min_cost_arborescence(const DiGraph& g, int root,
                                                  std::span<const double> cost);

// Reusable scratch for min_cost_arborescence: the solver's per-contraction-
// level buffers (best-in-edge, component, cycle, and contracted-edge arrays)
// live here and are recycled across calls instead of reallocated. One
// workspace per calling thread — it is not synchronized — and results are
// bit-identical with or without one. The MWU packing loop, which solves one
// arborescence per iteration over the same graph, hoists a workspace across
// its iterations.
class ArborescenceWorkspace {
 public:
  ArborescenceWorkspace();
  ~ArborescenceWorkspace();
  ArborescenceWorkspace(ArborescenceWorkspace&&) noexcept;
  ArborescenceWorkspace& operator=(ArborescenceWorkspace&&) noexcept;

 private:
  friend std::optional<Arborescence> min_cost_arborescence(
      const DiGraph& g, int root, std::span<const double> cost,
      ArborescenceWorkspace* workspace);
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// As above, reusing |workspace|'s buffers (nullptr solves with a throwaway
// workspace, identical to the three-argument overload).
std::optional<Arborescence> min_cost_arborescence(
    const DiGraph& g, int root, std::span<const double> cost,
    ArborescenceWorkspace* workspace);

}  // namespace blink::graph
