// DGX-2 latency study (§3.5, Figures 19/20): Blink's one-hop trees vs
// NCCL's double binary trees and rings across payload sizes.
//
//   ./example_dgx2_latency
#include <cstdio>

#include "blink/baselines/nccl_like.h"
#include "blink/blink/communicator.h"
#include "blink/common/units.h"
#include "blink/topology/builders.h"

int main() {
  using namespace blink;
  const topo::Topology dgx2 = topo::make_dgx2();
  Communicator blink_comm(dgx2);
  baselines::NcclCommunicator nccl(dgx2);

  std::printf("16-GPU DGX-2 AllReduce, Blink one-hop trees vs NCCL-like\n\n");
  std::printf("%-8s %14s %14s %14s %14s %8s\n", "size", "NCCL lat",
              "Blink lat", "NCCL bw", "Blink bw", "speedup");

  for (std::uint64_t bytes = 1000; bytes <= 1'000'000'000; bytes *= 10) {
    const auto n = nccl.all_reduce(static_cast<double>(bytes));
    const auto b = blink_comm.execute(*blink_comm.compile(
        CollectiveKind::kAllReduce, static_cast<double>(bytes)));
    std::printf("%-8s %11.1f us %11.1f us %14s %14s %7.2fx\n",
                format_bytes(bytes).c_str(), n.seconds * 1e6,
                b.seconds * 1e6, format_throughput(n.algorithm_bw).c_str(),
                format_throughput(b.algorithm_bw).c_str(),
                n.seconds / b.seconds);
  }

  std::printf("\nSmall payloads: one-hop trees avoid the %d tree hops /"
              " %d ring steps NCCL needs.\n",
              2 * 4 /* double binary depth */, 2 * (16 - 1));
  return 0;
}
