// Topology explorer: load a custom machine description (or use a built-in
// one), pick an allocation, and inspect what Blink would do with it — the
// packed trees, the generated pseudo-CUDA, and a Chrome-trace of the
// simulated broadcast schedule.
//
//   ./example_topology_explorer                      # DGX-1V, GPUs 1,4,5,6
//   ./example_topology_explorer my.topo 0,1,2        # custom machine
//   (open /tmp/blink_schedule.json in chrome://tracing or Perfetto)
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "blink/blink/communicator.h"
#include "blink/common/units.h"
#include "blink/sim/trace.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"
#include "blink/topology/parser.h"

namespace {

std::vector<int> parse_ids(const std::string& csv) {
  std::vector<int> ids;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) ids.push_back(std::stoi(token));
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blink;

  topo::Topology machine = topo::make_dgx1v();
  if (argc > 1) {
    const auto parsed = topo::load_topology(argv[1]);
    if (!parsed.topology.has_value()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   parsed.error.c_str());
      return 1;
    }
    machine = *parsed.topology;
  }
  const std::vector<int> alloc =
      argc > 2 ? parse_ids(argv[2]) : std::vector<int>{1, 4, 5, 6};

  const auto topo = topo::induced_topology(machine, alloc);
  std::printf("machine:\n%s\n", topo::format_topology(machine).c_str());
  std::printf("allocation: %s\n\n", topo.describe().c_str());

  Communicator comm(topo);
  const TreeSet& trees = comm.tree_set(0);
  std::printf("packed %zu trees, rate %s (optimal %s), via %s\n",
              trees.trees.size(), format_throughput(trees.rate).c_str(),
              format_throughput(trees.optimal_rate).c_str(),
              trees.stage == packing::MinimizeStage::kIlp ? "ILP"
                                                          : "relaxed LP");
  for (std::size_t i = 0; i < trees.trees.size(); ++i) {
    const auto& wt = trees.trees[i];
    std::printf("  tree %zu: weight %s, depth %d, edges:", i,
                format_throughput(wt.weight).c_str(),
                wt.tree.depth(trees.graph));
    for (const int e : wt.tree.edge_ids) {
      std::printf(" %d>%d", trees.graph.edge(e).src, trees.graph.edge(e).dst);
    }
    std::printf("\n");
  }

  // Simulate a broadcast and export the schedule.
  const double bytes = 256e6;
  ProgramBuilder builder(comm.fabric(), comm.options().codegen);
  builder.broadcast(route_trees(comm.fabric(), 0, trees), bytes);
  const sim::Program program = builder.take();
  const auto run = sim::execute(comm.fabric(), program);
  std::printf("\nbroadcast of %s: %.2f ms (%s)\n",
              format_bytes(static_cast<std::uint64_t>(bytes)).c_str(),
              run.makespan * 1e3,
              format_throughput(run.throughput(bytes)).c_str());

  const char* trace_path = "/tmp/blink_schedule.json";
  if (sim::write_chrome_trace(trace_path, comm.fabric(), program, run)) {
    std::printf("schedule trace written to %s (chrome://tracing)\n",
                trace_path);
  }

  std::printf("\n--- generated code (excerpt) ---\n%.500s...\n",
              emit_pseudo_cuda(trees, comm.options().codegen).c_str());
  return 0;
}
