// Fragmented-allocation walkthrough: the motivating scenario of §1/Figure 3.
// A multi-tenant scheduler leaves a training job with odd GPU subsets; this
// example compares Blink against the NCCL-like ring baseline on every unique
// allocation of a chosen size and reports the speedup distribution.
//
//   ./example_fragmented_job [num_gpus=4]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "blink/baselines/nccl_like.h"
#include "blink/blink/communicator.h"
#include "blink/common/units.h"
#include "blink/topology/binning.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

int main(int argc, char** argv) {
  using namespace blink;
  const int k = argc > 1 ? std::atoi(argv[1]) : 4;
  if (k < 2 || k > 8) {
    std::fprintf(stderr, "num_gpus must be in [2, 8]\n");
    return 1;
  }

  const topo::Topology machine = topo::make_dgx1v();
  const double bytes = 500e6;
  std::printf("Broadcast of %s on every unique %d-GPU DGX-1V allocation\n\n",
              format_bytes(static_cast<std::uint64_t>(bytes)).c_str(), k);
  std::printf("%-18s %12s %12s %9s\n", "GPUs", "NCCL-like", "Blink",
              "speedup");

  std::vector<double> speedups;
  for (const auto& bin :
       topo::unique_configs(machine, k, /*connected_only=*/true)) {
    const auto topo = topo::induced_topology(machine, bin.representative);
    Communicator blink_comm(topo);
    baselines::NcclCommunicator nccl(topo);
    // Both communicators are CollectiveEngines: compile once, execute the
    // immutable plan (later executions would be cache hits).
    const auto plan = blink_comm.compile(CollectiveKind::kBroadcast, bytes, 0);
    const double blink_bw = blink_comm.execute(*plan).algorithm_bw;
    const auto nccl_plan = nccl.compile(CollectiveKind::kBroadcast, bytes, 0);
    const double nccl_bw = nccl.execute(*nccl_plan).algorithm_bw;
    speedups.push_back(blink_bw / nccl_bw);

    std::string ids;
    for (const int g : bin.representative) {
      ids += (ids.empty() ? "" : ",") + std::to_string(g);
    }
    std::printf("%-18s %12s %12s %8.2fx\n", ids.c_str(),
                format_throughput(nccl_bw).c_str(),
                format_throughput(blink_bw).c_str(), speedups.back());
  }

  std::sort(speedups.begin(), speedups.end());
  double log_sum = 0.0;
  for (const double s : speedups) log_sum += std::log(s);
  std::printf("\nmin %.2fx  median %.2fx  geomean %.2fx  max %.2fx\n",
              speedups.front(), speedups[speedups.size() / 2],
              std::exp(log_sum / speedups.size()), speedups.back());

  // A grouped training step on one fragmented allocation: gradient AllReduce
  // batched with the next step's parameter Broadcast via run(), so both
  // contend for the allocation's links as they would inside
  // ncclGroupStart/End.
  Communicator comm(topo::induced_topology(machine,
                                           std::vector<int>{1, 4, 5, 7}));
  const std::vector<CollectiveRequest> step{
      {CollectiveKind::kAllReduce, 200e6, -1},
      {CollectiveKind::kBroadcast, 50e6, 0},
  };
  const auto group = comm.run(step);
  std::printf("\ngrouped step on GPUs 1,4,5,7: AllReduce %.1f ms, "
              "Broadcast %.1f ms\n",
              group[0].seconds * 1e3, group[1].seconds * 1e3);
  return 0;
}
