// Quickstart: discover a topology, generate spanning trees, run collectives,
// and inspect the generated schedule — the full §2.3 workflow in ~60 lines.
//
//   ./example_quickstart
#include <cstdio>

#include "blink/blink/codegen.h"
#include "blink/blink/communicator.h"
#include "blink/common/units.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

int main() {
  using namespace blink;

  // 1. The machine: an 8-GPU DGX-1V. A cluster scheduler hands our job GPUs
  //    {1, 4, 5, 6} — a partially connected allocation NCCL struggles with.
  const topo::Topology machine = topo::make_dgx1v();
  const std::vector<int> allocation{1, 4, 5, 6};
  const topo::Topology topo = topo::induced_topology(machine, allocation);
  std::printf("allocation: %s\n", topo.describe().c_str());

  // 2. TreeGen: pack spanning trees from GPU 0 (local id) over NVLink.
  Communicator comm(topo);
  const TreeSet& trees = comm.tree_set(0);
  std::printf("TreeGen: %d MWU trees -> %zu trees after ILP, rate %s "
              "(optimal %s)\n",
              trees.mwu_tree_count, trees.trees.size(),
              format_throughput(trees.rate).c_str(),
              format_throughput(trees.optimal_rate).c_str());

  // 3. Run collectives and report the paper's throughput metric.
  for (const double bytes : {10e6, 100e6, 500e6}) {
    const CollectiveResult bcast = comm.broadcast(bytes, 0);
    const CollectiveResult ar = comm.all_reduce(bytes);
    std::printf("%8s  broadcast %8s  allreduce %8s\n",
                format_bytes(static_cast<std::uint64_t>(bytes)).c_str(),
                format_throughput(bcast.algorithm_bw).c_str(),
                format_throughput(ar.algorithm_bw).c_str());
  }

  // 4. CodeGen: show the CUDA-like source Blink would emit for this job.
  std::printf("\n--- generated code (excerpt) ---\n%.600s...\n",
              emit_pseudo_cuda(trees, CodeGenOptions{}).c_str());
  return 0;
}
