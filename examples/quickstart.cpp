// Quickstart: discover a topology, generate spanning trees, compile
// collective plans, execute them, and inspect the generated schedule — the
// full §2.3 workflow (topology -> TreeGen -> CodeGen -> plan cache ->
// execute) in ~80 lines.
//
//   ./example_quickstart
#include <cstdio>

#include "blink/blink/codegen.h"
#include "blink/blink/communicator.h"
#include "blink/common/units.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

int main() {
  using namespace blink;

  // 1. The machine: an 8-GPU DGX-1V. A cluster scheduler hands our job GPUs
  //    {1, 4, 5, 6} — a partially connected allocation NCCL struggles with.
  const topo::Topology machine = topo::make_dgx1v();
  const std::vector<int> allocation{1, 4, 5, 6};
  const topo::Topology topo = topo::induced_topology(machine, allocation);
  std::printf("allocation: %s\n", topo.describe().c_str());

  // 2. TreeGen: pack spanning trees from GPU 0 (local id) over NVLink.
  Communicator comm(topo);
  const TreeSet& trees = comm.tree_set(0);
  std::printf("TreeGen: %d MWU trees -> %zu trees after ILP, rate %s "
              "(optimal %s)\n",
              trees.mwu_tree_count, trees.trees.size(),
              format_throughput(trees.rate).c_str(),
              format_throughput(trees.optimal_rate).c_str());

  // 3. CodeGen: compile each collective into a CollectivePlan once, then
  //    execute it for every "training iteration". Planning (TreeGen, chunk
  //    tuning, schedule emission) is a one-time cost; execution reuses the
  //    compiled schedule.
  for (const double bytes : {10e6, 100e6, 500e6}) {
    const auto bcast_plan = comm.compile(CollectiveKind::kBroadcast, bytes, 0);
    const auto ar_plan = comm.compile(CollectiveKind::kAllReduce, bytes);
    CollectiveResult bcast, ar;
    for (int iteration = 0; iteration < 3; ++iteration) {
      bcast = comm.execute(*bcast_plan);
      ar = comm.execute(*ar_plan);
    }
    std::printf("%8s  broadcast %8s  allreduce %8s  (%d+%d sched ops)\n",
                format_bytes(static_cast<std::uint64_t>(bytes)).c_str(),
                format_throughput(bcast.algorithm_bw).c_str(),
                format_throughput(ar.algorithm_bw).c_str(),
                bcast_plan->num_ops(), ar_plan->num_ops());
  }
  // The one-shot methods (comm.broadcast(...) etc.) still work: they are
  // wrappers over compile+execute, hitting the same plan cache.
  std::printf("plan cache: %zu plans, %llu hits, %llu misses\n",
              comm.plan_cache().size(),
              static_cast<unsigned long long>(comm.plan_cache().hits()),
              static_cast<unsigned long long>(comm.plan_cache().misses()));

  // 4. Grouped launch (NCCL group semantics): batch requests and run them as
  //    one schedule contending for the fabric.
  const std::vector<CollectiveRequest> batch{
      {CollectiveKind::kBroadcast, 100e6, 0},
      {CollectiveKind::kAllReduce, 100e6, -1},
  };
  const auto grouped = comm.run(batch);
  std::printf("grouped: broadcast %.2f ms + allreduce %.2f ms sharing the "
              "fabric\n",
              grouped[0].seconds * 1e3, grouped[1].seconds * 1e3);

  // 5. Show the CUDA-like source Blink would emit for this job.
  std::printf("\n--- generated code (excerpt) ---\n%.600s...\n",
              emit_pseudo_cuda(trees, CodeGenOptions{}).c_str());
  return 0;
}
