// Multi-server data-parallel training (§3.5, §5.4, Figure 22): an 8-GPU job
// fragmented 3+5 across two DGX-1Vs, trained with the three-phase AllReduce
// vs an NCCL-like global ring, across NIC speeds — all through the engine's
// compile/execute/run API, including a grouped multi-collective step.
//
//   ./example_multi_server_training
#include <cstdio>
#include <vector>

#include "blink/baselines/nccl_like.h"
#include "blink/blink/multiserver.h"
#include "blink/common/units.h"
#include "blink/dnn/training.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

int main() {
  using namespace blink;
  const auto machine = topo::make_dgx1v();
  const std::vector<topo::Topology> servers{
      topo::induced_topology(machine, std::vector<int>{0, 1, 2}),
      topo::induced_topology(machine, std::vector<int>{3, 4, 5, 6, 7})};

  std::printf("8-GPU job fragmented 3+5 across two DGX-1Vs\n\n");
  std::printf("%-10s %16s %16s\n", "NIC", "NCCL ring bw", "Blink 3-phase bw");
  for (const double nic_gbps : {40.0, 100.0, 400.0}) {
    ClusterOptions opts;
    opts.fabric.nic_bw = gbitps(nic_gbps);
    ClusterCommunicator blink_cluster(servers, opts);
    baselines::NcclOptions nccl_opts;
    nccl_opts.fabric.nic_bw = gbitps(nic_gbps);
    const auto blink_r = blink_cluster.all_reduce(100e6);
    const auto nccl_r =
        baselines::multi_server_ring_all_reduce(servers, 100e6, nccl_opts);
    std::printf("%6.0fGbps %16s %16s\n", nic_gbps,
                format_throughput(nccl_r.algorithm_bw).c_str(),
                format_throughput(blink_r.algorithm_bw).c_str());
  }

  // End-to-end images/sec for the four CNNs at 40 Gbps (Figure 22a).
  ClusterOptions opts;
  opts.fabric.nic_bw = gbitps(40.0);
  ClusterCommunicator blink_cluster(servers, opts);
  baselines::NcclOptions nccl_opts;
  nccl_opts.fabric.nic_bw = gbitps(40.0);

  std::printf("\n%-10s %14s %14s %10s\n", "model", "NCCL img/s",
              "Blink img/s", "gain");
  dnn::TrainingOptions train;
  train.num_gpus = 8;
  for (const auto& model : dnn::model_zoo()) {
    const auto nccl_it = dnn::simulate_iteration(
        model, dnn::GpuGeneration::kV100,
        [&](double b) {
          return baselines::multi_server_ring_all_reduce(servers, b,
                                                         nccl_opts)
              .seconds;
        },
        train);
    // Plan/execute split: each gradient-bucket size compiles its three-phase
    // schedule once; every later iteration is a plan-cache hit.
    const auto blink_it = dnn::simulate_iteration(
        model, dnn::GpuGeneration::kV100,
        [&](double b) {
          return blink_cluster
              .execute(*blink_cluster.compile(CollectiveKind::kAllReduce, b))
              .seconds;
        },
        train);
    std::printf("%-10s %14.0f %14.0f %9.1f%%\n", model.name.c_str(),
                nccl_it.images_per_second, blink_it.images_per_second,
                100.0 * (blink_it.images_per_second /
                             nccl_it.images_per_second -
                         1.0));
  }
  std::printf("\nplan cache: %zu three-phase schedules compiled, %llu reused\n",
              blink_cluster.plan_cache().size(),
              static_cast<unsigned long long>(
                  blink_cluster.plan_cache().hits()));

  // A grouped training step on the fragmented allocation: three gradient
  // buckets AllReduce while the next epoch's shuffled indices broadcast and
  // per-worker metrics gather — one run() launch contending for the shared
  // fabric, ncclGroupStart/End style.
  const std::vector<CollectiveRequest> step{
      {CollectiveKind::kAllReduce, 50e6, -1},
      {CollectiveKind::kAllReduce, 25e6, -1},
      {CollectiveKind::kAllReduce, 25e6, -1},
      {CollectiveKind::kBroadcast, 4e6, 0},
      {CollectiveKind::kGather, 1e6, 0},
  };
  const auto results = blink_cluster.run(step);
  double makespan = 0.0;
  std::printf("\ngrouped step (3x AllReduce + Broadcast + Gather):\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    makespan = results[i].seconds > makespan ? results[i].seconds : makespan;
    std::printf("  req %zu: %7.2f MB in %6.2f ms (%s)\n", i,
                results[i].bytes / 1e6, results[i].seconds * 1e3,
                format_throughput(results[i].algorithm_bw).c_str());
  }
  std::printf("group makespan: %.2f ms\n", makespan * 1e3);
  return 0;
}
