#include "blink/common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace blink {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

// Serializes sink calls so messages from concurrent threads never interleave
// within a line; also guards the sink pointer itself.
std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

LogSink& sink_slot() {
  static LogSink sink;
  return sink;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_sink(LogSink sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex());
  sink_slot() = std::move(sink);
}

namespace internal {
void emit_log(LogLevel level, const std::string& message) {
  // Format the full line first, then emit it as a single write under the
  // lock: concurrent workers' lines may be reordered, never torn.
  std::string line = "[blink ";
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  const std::lock_guard<std::mutex> lock(sink_mutex());
  if (const LogSink& sink = sink_slot()) {
    sink(level, message);
    return;
  }
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}
}  // namespace internal

}  // namespace blink
