#include "blink/common/rng.h"

#include <cassert>
#include <numeric>

namespace blink {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ull - (~0ull % n);
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return r % n;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

int Rng::next_int(int lo, int hi) {
  assert(lo <= hi);
  return lo + static_cast<int>(next_below(
                  static_cast<std::uint64_t>(hi - lo) + 1));
}

std::size_t Rng::next_weighted(const std::vector<double>& weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(total > 0.0);
  double x = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace blink
