#include "blink/common/units.h"

#include <array>
#include <cstdio>

namespace blink {

std::string format_bytes(std::uint64_t bytes) {
  struct Scale {
    std::uint64_t unit;
    const char* suffix;
  };
  static constexpr std::array<Scale, 3> kScales{{
      {1'000'000'000ull, "GB"},
      {1'000'000ull, "MB"},
      {1'000ull, "KB"},
  }};
  char buf[32];
  for (const auto& s : kScales) {
    if (bytes >= s.unit) {
      const double v = static_cast<double>(bytes) / static_cast<double>(s.unit);
      if (v == static_cast<std::uint64_t>(v)) {
        std::snprintf(buf, sizeof(buf), "%llu%s",
                      static_cast<unsigned long long>(v), s.suffix);
      } else {
        std::snprintf(buf, sizeof(buf), "%.2f%s", v, s.suffix);
      }
      return buf;
    }
  }
  std::snprintf(buf, sizeof(buf), "%lluB", static_cast<unsigned long long>(bytes));
  return buf;
}

std::string format_throughput(double bytes_per_second) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fGB/s", bytes_per_second / kGB);
  return buf;
}

}  // namespace blink
