#include "blink/common/thread_pool.h"

#include <cstdlib>
#include <string>

namespace blink::common {

std::size_t ThreadPool::default_threads() {
  if (const char* env = std::getenv("BLINK_PLANNER_THREADS")) {
    try {
      const long v = std::stol(env);
      if (v >= 1) return static_cast<std::size_t>(std::min(v, 256L));
    } catch (const std::exception&) {
      // Fall through to the hardware default on a malformed value.
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_threads());
  return pool;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    paused_ = false;  // a paused pool still drains on shutdown
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!stop_) {
      queue_.push_back(std::move(task));
      task = nullptr;
    }
  }
  if (task) {
    task();  // stopped pool: run inline rather than drop the work
    return;
  }
  cv_.notify_one();
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || (!queue_.empty() && !paused_); });
      if (queue_.empty()) {
        if (stop_) return;  // drained
        continue;
      }
      if (paused_ && !stop_) continue;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::pause() {
  const std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void ThreadPool::resume() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

std::size_t ThreadPool::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace blink::common
