#include "blink/graph/arborescence.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace blink::graph {

std::vector<int> Arborescence::parents(const DiGraph& g) const {
  std::vector<int> parent(static_cast<std::size_t>(g.num_vertices()), -1);
  for (const int id : edge_ids) {
    parent[static_cast<std::size_t>(g.edge(id).dst)] = g.edge(id).src;
  }
  return parent;
}

int Arborescence::depth(const DiGraph& g) const {
  const auto parent = parents(g);
  int max_depth = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    int d = 0;
    for (int u = v; parent[static_cast<std::size_t>(u)] != -1;
         u = parent[static_cast<std::size_t>(u)]) {
      ++d;
    }
    max_depth = std::max(max_depth, d);
  }
  return max_depth;
}

bool Arborescence::spans(const DiGraph& g) const {
  const int n = g.num_vertices();
  if (static_cast<int>(edge_ids.size()) != n - 1) return false;
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (const int id : edge_ids) {
    ++indeg[static_cast<std::size_t>(g.edge(id).dst)];
  }
  if (indeg[static_cast<std::size_t>(root)] != 0) return false;
  for (int v = 0; v < n; ++v) {
    if (v != root && indeg[static_cast<std::size_t>(v)] != 1) return false;
  }
  // Acyclicity + in-degree as above implies every vertex reaches the root.
  const auto parent = parents(g);
  for (int v = 0; v < n; ++v) {
    int u = v;
    int steps = 0;
    while (u != root) {
      u = parent[static_cast<std::size_t>(u)];
      if (u < 0 || ++steps > n) return false;
    }
  }
  return true;
}

namespace {

struct WorkEdge {
  int u;
  int v;
  double w;
  int parent_index;  // index into the previous contraction level's edge list
};

}  // namespace

// The solver's per-contraction-level scratch. One Level per recursion depth;
// a deque keeps references stable while deeper levels are appended
// mid-recursion. assign()/clear() below overwrite every slot they read, so
// stale contents from a previous solve never leak into a result.
struct ArborescenceWorkspace::Impl {
  struct Level {
    std::vector<int> best;               // per-vertex cheapest in-edge index
    std::vector<int> comp;               // per-vertex contraction component
    std::vector<int> mark;               // cycle-walk visit marks
    std::vector<std::vector<int>> cycles;
    std::vector<WorkEdge> contracted;    // edge list fed to the next level
    std::vector<int> result;             // picked indices into this level's edges
    std::vector<int> entered;            // per-cycle entry vertex
  };

  std::vector<WorkEdge> es;  // top-level edge list
  std::deque<Level> levels;

  Level& level(std::size_t depth) {
    while (levels.size() <= depth) levels.emplace_back();
    return levels[depth];
  }

  // One level of Chu-Liu/Edmonds: fills the level's result with indices
  // into |es| forming a minimum arborescence of the current (possibly
  // contracted) graph, returning a pointer to it, or nullptr when some
  // vertex is unreachable.
  const std::vector<int>* solve(std::size_t depth, int n, int root,
                                const std::vector<WorkEdge>& es);
};

const std::vector<int>* ArborescenceWorkspace::Impl::solve(
    std::size_t depth, int n, int root, const std::vector<WorkEdge>& es) {
  auto& lv = level(depth);
  auto& best = lv.best;
  best.assign(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < static_cast<int>(es.size()); ++i) {
    const auto& e = es[static_cast<std::size_t>(i)];
    if (e.v == root || e.u == e.v) continue;
    const auto vi = static_cast<std::size_t>(e.v);
    if (best[vi] == -1 || e.w < es[static_cast<std::size_t>(best[vi])].w) {
      best[vi] = i;
    }
  }
  for (int v = 0; v < n; ++v) {
    if (v != root && best[static_cast<std::size_t>(v)] == -1) {
      return nullptr;  // v unreachable
    }
  }

  // Detect cycles in the functional graph v -> best-in-edge source.
  auto& comp = lv.comp;
  auto& mark = lv.mark;
  auto& cycles = lv.cycles;
  comp.assign(static_cast<std::size_t>(n), -1);
  mark.assign(static_cast<std::size_t>(n), -1);
  cycles.clear();
  for (int v = 0; v < n; ++v) {
    if (v == root) continue;
    int u = v;
    while (u != root && mark[static_cast<std::size_t>(u)] == -1 &&
           comp[static_cast<std::size_t>(u)] == -1) {
      mark[static_cast<std::size_t>(u)] = v;
      u = es[static_cast<std::size_t>(best[static_cast<std::size_t>(u)])].u;
    }
    if (u != root && comp[static_cast<std::size_t>(u)] == -1 &&
        mark[static_cast<std::size_t>(u)] == v) {
      // New cycle through u.
      std::vector<int> cyc;
      int x = u;
      do {
        cyc.push_back(x);
        comp[static_cast<std::size_t>(x)] = static_cast<int>(cycles.size());
        x = es[static_cast<std::size_t>(best[static_cast<std::size_t>(x)])].u;
      } while (x != u);
      cycles.push_back(std::move(cyc));
    }
  }

  auto& result = lv.result;
  if (cycles.empty()) {
    result.clear();
    result.reserve(static_cast<std::size_t>(n - 1));
    for (int v = 0; v < n; ++v) {
      if (v != root) result.push_back(best[static_cast<std::size_t>(v)]);
    }
    return &result;
  }

  // Contract every cycle into a supervertex.
  int next_id = static_cast<int>(cycles.size());
  for (int v = 0; v < n; ++v) {
    if (comp[static_cast<std::size_t>(v)] == -1) {
      comp[static_cast<std::size_t>(v)] = next_id++;
    }
  }
  auto& contracted = lv.contracted;
  contracted.clear();
  contracted.reserve(es.size());
  for (int i = 0; i < static_cast<int>(es.size()); ++i) {
    const auto& e = es[static_cast<std::size_t>(i)];
    const int cu = comp[static_cast<std::size_t>(e.u)];
    const int cv = comp[static_cast<std::size_t>(e.v)];
    if (cu == cv) continue;
    double w = e.w;
    if (cv < static_cast<int>(cycles.size())) {
      // Entering a cycle: swapping out the cycle's chosen in-edge of e.v.
      w -= es[static_cast<std::size_t>(best[static_cast<std::size_t>(e.v)])].w;
    }
    contracted.push_back({cu, cv, w, i});
  }

  const auto* sub = solve(depth + 1, next_id,
                          comp[static_cast<std::size_t>(root)], contracted);
  if (sub == nullptr) return nullptr;

  // Expand: selected contracted edges map to their original edges; each
  // cycle keeps all of its chosen in-edges except at the vertex where the
  // selected entering edge lands.
  result.clear();
  auto& entered = lv.entered;  // vertex where each cycle is entered
  entered.assign(cycles.size(), -1);
  for (const int ci : *sub) {
    const int orig = contracted[static_cast<std::size_t>(ci)].parent_index;
    result.push_back(orig);
    const int v = es[static_cast<std::size_t>(orig)].v;
    const int c = comp[static_cast<std::size_t>(v)];
    if (c < static_cast<int>(cycles.size())) entered[static_cast<std::size_t>(c)] = v;
  }
  for (std::size_t c = 0; c < cycles.size(); ++c) {
    assert(entered[c] != -1 && "contracted solution must enter every cycle");
    for (const int x : cycles[c]) {
      if (x != entered[c]) {
        result.push_back(best[static_cast<std::size_t>(x)]);
      }
    }
  }
  return &result;
}

ArborescenceWorkspace::ArborescenceWorkspace() : impl_(new Impl) {}
ArborescenceWorkspace::~ArborescenceWorkspace() = default;
ArborescenceWorkspace::ArborescenceWorkspace(ArborescenceWorkspace&&) noexcept =
    default;
ArborescenceWorkspace& ArborescenceWorkspace::operator=(
    ArborescenceWorkspace&&) noexcept = default;

std::optional<Arborescence> min_cost_arborescence(
    const DiGraph& g, int root, std::span<const double> cost,
    ArborescenceWorkspace* workspace) {
  assert(static_cast<int>(cost.size()) == g.num_edges());
  assert(root >= 0 && root < g.num_vertices());
  if (g.num_vertices() == 1) return Arborescence{root, {}};

  std::optional<ArborescenceWorkspace> local;
  if (workspace == nullptr || workspace->impl_ == nullptr) {
    workspace = &local.emplace();
  }
  ArborescenceWorkspace::Impl& ws = *workspace->impl_;

  ws.es.clear();
  ws.es.reserve(static_cast<std::size_t>(g.num_edges()));
  for (int id = 0; id < g.num_edges(); ++id) {
    const auto& e = g.edge(id);
    assert(cost[static_cast<std::size_t>(id)] >= 0.0);
    ws.es.push_back({e.src, e.dst, cost[static_cast<std::size_t>(id)], id});
  }
  const auto* picked = ws.solve(0, g.num_vertices(), root, ws.es);
  if (picked == nullptr) return std::nullopt;

  Arborescence arb;
  arb.root = root;
  arb.edge_ids.reserve(picked->size());
  for (const int i : *picked) {
    arb.edge_ids.push_back(ws.es[static_cast<std::size_t>(i)].parent_index);
  }
  std::sort(arb.edge_ids.begin(), arb.edge_ids.end());
  assert(arb.spans(g));
  return arb;
}

std::optional<Arborescence> min_cost_arborescence(
    const DiGraph& g, int root, std::span<const double> cost) {
  return min_cost_arborescence(g, root, cost, nullptr);
}

}  // namespace blink::graph
