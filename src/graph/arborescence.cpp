#include "blink/graph/arborescence.h"

#include <algorithm>
#include <cassert>

namespace blink::graph {

std::vector<int> Arborescence::parents(const DiGraph& g) const {
  std::vector<int> parent(static_cast<std::size_t>(g.num_vertices()), -1);
  for (const int id : edge_ids) {
    parent[static_cast<std::size_t>(g.edge(id).dst)] = g.edge(id).src;
  }
  return parent;
}

int Arborescence::depth(const DiGraph& g) const {
  const auto parent = parents(g);
  int max_depth = 0;
  for (int v = 0; v < g.num_vertices(); ++v) {
    int d = 0;
    for (int u = v; parent[static_cast<std::size_t>(u)] != -1;
         u = parent[static_cast<std::size_t>(u)]) {
      ++d;
    }
    max_depth = std::max(max_depth, d);
  }
  return max_depth;
}

bool Arborescence::spans(const DiGraph& g) const {
  const int n = g.num_vertices();
  if (static_cast<int>(edge_ids.size()) != n - 1) return false;
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (const int id : edge_ids) {
    ++indeg[static_cast<std::size_t>(g.edge(id).dst)];
  }
  if (indeg[static_cast<std::size_t>(root)] != 0) return false;
  for (int v = 0; v < n; ++v) {
    if (v != root && indeg[static_cast<std::size_t>(v)] != 1) return false;
  }
  // Acyclicity + in-degree as above implies every vertex reaches the root.
  const auto parent = parents(g);
  for (int v = 0; v < n; ++v) {
    int u = v;
    int steps = 0;
    while (u != root) {
      u = parent[static_cast<std::size_t>(u)];
      if (u < 0 || ++steps > n) return false;
    }
  }
  return true;
}

namespace {

struct WorkEdge {
  int u;
  int v;
  double w;
  int parent_index;  // index into the previous contraction level's edge list
};

// One level of Chu-Liu/Edmonds: returns indices into |es| forming a minimum
// arborescence of the current (possibly contracted) graph.
std::optional<std::vector<int>> solve(int n, int root,
                                      const std::vector<WorkEdge>& es) {
  std::vector<int> best(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < static_cast<int>(es.size()); ++i) {
    const auto& e = es[static_cast<std::size_t>(i)];
    if (e.v == root || e.u == e.v) continue;
    const auto vi = static_cast<std::size_t>(e.v);
    if (best[vi] == -1 || e.w < es[static_cast<std::size_t>(best[vi])].w) {
      best[vi] = i;
    }
  }
  for (int v = 0; v < n; ++v) {
    if (v != root && best[static_cast<std::size_t>(v)] == -1) {
      return std::nullopt;  // v unreachable
    }
  }

  // Detect cycles in the functional graph v -> best-in-edge source.
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  std::vector<int> mark(static_cast<std::size_t>(n), -1);
  std::vector<std::vector<int>> cycles;
  for (int v = 0; v < n; ++v) {
    if (v == root) continue;
    int u = v;
    while (u != root && mark[static_cast<std::size_t>(u)] == -1 &&
           comp[static_cast<std::size_t>(u)] == -1) {
      mark[static_cast<std::size_t>(u)] = v;
      u = es[static_cast<std::size_t>(best[static_cast<std::size_t>(u)])].u;
    }
    if (u != root && comp[static_cast<std::size_t>(u)] == -1 &&
        mark[static_cast<std::size_t>(u)] == v) {
      // New cycle through u.
      std::vector<int> cyc;
      int x = u;
      do {
        cyc.push_back(x);
        comp[static_cast<std::size_t>(x)] = static_cast<int>(cycles.size());
        x = es[static_cast<std::size_t>(best[static_cast<std::size_t>(x)])].u;
      } while (x != u);
      cycles.push_back(std::move(cyc));
    }
  }

  if (cycles.empty()) {
    std::vector<int> result;
    result.reserve(static_cast<std::size_t>(n - 1));
    for (int v = 0; v < n; ++v) {
      if (v != root) result.push_back(best[static_cast<std::size_t>(v)]);
    }
    return result;
  }

  // Contract every cycle into a supervertex.
  int next_id = static_cast<int>(cycles.size());
  for (int v = 0; v < n; ++v) {
    if (comp[static_cast<std::size_t>(v)] == -1) {
      comp[static_cast<std::size_t>(v)] = next_id++;
    }
  }
  std::vector<WorkEdge> contracted;
  contracted.reserve(es.size());
  for (int i = 0; i < static_cast<int>(es.size()); ++i) {
    const auto& e = es[static_cast<std::size_t>(i)];
    const int cu = comp[static_cast<std::size_t>(e.u)];
    const int cv = comp[static_cast<std::size_t>(e.v)];
    if (cu == cv) continue;
    double w = e.w;
    if (cv < static_cast<int>(cycles.size())) {
      // Entering a cycle: swapping out the cycle's chosen in-edge of e.v.
      w -= es[static_cast<std::size_t>(best[static_cast<std::size_t>(e.v)])].w;
    }
    contracted.push_back({cu, cv, w, i});
  }

  auto sub = solve(next_id, comp[static_cast<std::size_t>(root)], contracted);
  if (!sub.has_value()) return std::nullopt;

  // Expand: selected contracted edges map to their original edges; each
  // cycle keeps all of its chosen in-edges except at the vertex where the
  // selected entering edge lands.
  std::vector<int> result;
  std::vector<int> entered(cycles.size(), -1);  // vertex where cycle is entered
  for (const int ci : *sub) {
    const int orig = contracted[static_cast<std::size_t>(ci)].parent_index;
    result.push_back(orig);
    const int v = es[static_cast<std::size_t>(orig)].v;
    const int c = comp[static_cast<std::size_t>(v)];
    if (c < static_cast<int>(cycles.size())) entered[static_cast<std::size_t>(c)] = v;
  }
  for (std::size_t c = 0; c < cycles.size(); ++c) {
    assert(entered[c] != -1 && "contracted solution must enter every cycle");
    for (const int x : cycles[c]) {
      if (x != entered[c]) {
        result.push_back(best[static_cast<std::size_t>(x)]);
      }
    }
  }
  return result;
}

}  // namespace

std::optional<Arborescence> min_cost_arborescence(
    const DiGraph& g, int root, std::span<const double> cost) {
  assert(static_cast<int>(cost.size()) == g.num_edges());
  assert(root >= 0 && root < g.num_vertices());
  if (g.num_vertices() == 1) return Arborescence{root, {}};

  std::vector<WorkEdge> es;
  es.reserve(static_cast<std::size_t>(g.num_edges()));
  for (int id = 0; id < g.num_edges(); ++id) {
    const auto& e = g.edge(id);
    assert(cost[static_cast<std::size_t>(id)] >= 0.0);
    es.push_back({e.src, e.dst, cost[static_cast<std::size_t>(id)], id});
  }
  auto picked = solve(g.num_vertices(), root, es);
  if (!picked.has_value()) return std::nullopt;

  Arborescence arb;
  arb.root = root;
  arb.edge_ids.reserve(picked->size());
  for (const int i : *picked) {
    arb.edge_ids.push_back(es[static_cast<std::size_t>(i)].parent_index);
  }
  std::sort(arb.edge_ids.begin(), arb.edge_ids.end());
  assert(arb.spans(g));
  return arb;
}

}  // namespace blink::graph
