#include "blink/graph/maxflow.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace blink::graph {
namespace {

// Residual-graph Dinic with double capacities. Graph sizes here are tiny
// (<= 16 vertices), so we rebuild the residual structure per call.
class Dinic {
 public:
  explicit Dinic(int n) : n_(n), head_(static_cast<std::size_t>(n)) {}

  void add_edge(int u, int v, double cap) {
    head_[static_cast<std::size_t>(u)].push_back(
        static_cast<int>(arcs_.size()));
    arcs_.push_back({v, cap});
    head_[static_cast<std::size_t>(v)].push_back(
        static_cast<int>(arcs_.size()));
    arcs_.push_back({u, 0.0});
  }

  double run(int s, int t) {
    double flow = 0.0;
    while (bfs(s, t)) {
      iter_.assign(static_cast<std::size_t>(n_), 0);
      while (true) {
        const double f = dfs(s, t, std::numeric_limits<double>::infinity());
        if (f <= kEps) break;
        flow += f;
      }
    }
    return flow;
  }

 private:
  static constexpr double kEps = 1e-6;  // bytes/s; capacities are ~1e9-1e11

  struct Arc {
    int to;
    double cap;
  };

  bool bfs(int s, int t) {
    level_.assign(static_cast<std::size_t>(n_), -1);
    std::queue<int> q;
    q.push(s);
    level_[static_cast<std::size_t>(s)] = 0;
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (const int a : head_[static_cast<std::size_t>(u)]) {
        const auto& arc = arcs_[static_cast<std::size_t>(a)];
        if (arc.cap > kEps && level_[static_cast<std::size_t>(arc.to)] < 0) {
          level_[static_cast<std::size_t>(arc.to)] =
              level_[static_cast<std::size_t>(u)] + 1;
          q.push(arc.to);
        }
      }
    }
    return level_[static_cast<std::size_t>(t)] >= 0;
  }

  double dfs(int u, int t, double limit) {
    if (u == t) return limit;
    auto& it = iter_[static_cast<std::size_t>(u)];
    for (; it < static_cast<int>(head_[static_cast<std::size_t>(u)].size());
         ++it) {
      const int a = head_[static_cast<std::size_t>(u)][static_cast<std::size_t>(it)];
      auto& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.cap <= kEps ||
          level_[static_cast<std::size_t>(arc.to)] !=
              level_[static_cast<std::size_t>(u)] + 1) {
        continue;
      }
      const double f = dfs(arc.to, t, std::min(limit, arc.cap));
      if (f > kEps) {
        arc.cap -= f;
        arcs_[static_cast<std::size_t>(a ^ 1)].cap += f;
        return f;
      }
    }
    return 0.0;
  }

  int n_;
  std::vector<std::vector<int>> head_;
  std::vector<Arc> arcs_;
  std::vector<int> level_;
  std::vector<int> iter_;
};

}  // namespace

double max_flow(const DiGraph& g, int s, int t) {
  assert(s != t);
  Dinic dinic(g.num_vertices());
  for (const auto& e : g.edges()) {
    dinic.add_edge(e.src, e.dst, e.capacity);
  }
  return dinic.run(s, t);
}

double broadcast_rate_upper_bound(const DiGraph& g, int root) {
  double rate = std::numeric_limits<double>::infinity();
  for (int v = 0; v < g.num_vertices(); ++v) {
    if (v == root) continue;
    rate = std::min(rate, max_flow(g, root, v));
  }
  return g.num_vertices() == 1 ? 0.0 : rate;
}

}  // namespace blink::graph
