#include "blink/graph/rings.h"

#include <algorithm>
#include <cassert>

namespace blink::graph {
namespace {

using LaneMatrix = std::vector<std::vector<int>>;

LaneMatrix lane_matrix(const topo::Topology& topo) {
  const auto n = static_cast<std::size_t>(topo.num_gpus);
  LaneMatrix m(n, std::vector<int>(n, 0));
  for (const auto& e : topo.nvlinks) {
    m[static_cast<std::size_t>(e.a)][static_cast<std::size_t>(e.b)] += e.lanes;
    m[static_cast<std::size_t>(e.b)][static_cast<std::size_t>(e.a)] += e.lanes;
  }
  return m;
}

void enumerate_rec(const LaneMatrix& m, std::vector<int>& path,
                   std::vector<bool>& used, std::vector<Ring>& out) {
  const int n = static_cast<int>(m.size());
  if (static_cast<int>(path.size()) == n) {
    if (m[static_cast<std::size_t>(path.back())][0] > 0) {
      out.push_back({path});
    }
    return;
  }
  const int last = path.back();
  for (int v = 1; v < n; ++v) {
    if (used[static_cast<std::size_t>(v)] ||
        m[static_cast<std::size_t>(last)][static_cast<std::size_t>(v)] == 0) {
      continue;
    }
    path.push_back(v);
    used[static_cast<std::size_t>(v)] = true;
    enumerate_rec(m, path, used, out);
    used[static_cast<std::size_t>(v)] = false;
    path.pop_back();
  }
}

// Per-edge lane usage of a cycle.
void apply_cycle(LaneMatrix& m, const Ring& r, int delta) {
  const int n = static_cast<int>(r.order.size());
  for (int i = 0; i < n; ++i) {
    const auto a = static_cast<std::size_t>(r.order[static_cast<std::size_t>(i)]);
    const auto b = static_cast<std::size_t>(
        r.order[static_cast<std::size_t>((i + 1) % n)]);
    m[a][b] += delta;
    m[b][a] += delta;
  }
}

bool cycle_fits(const LaneMatrix& m, const Ring& r) {
  const int n = static_cast<int>(r.order.size());
  for (int i = 0; i < n; ++i) {
    const auto a = static_cast<std::size_t>(r.order[static_cast<std::size_t>(i)]);
    const auto b = static_cast<std::size_t>(
        r.order[static_cast<std::size_t>((i + 1) % n)]);
    if (m[a][b] <= 0) return false;
  }
  return true;
}

// Upper bound on additional rings: every ring consumes two lanes at each
// vertex, so no more than min_v floor(remaining_degree(v) / 2) can fit.
int degree_bound(const LaneMatrix& m) {
  int bound = static_cast<int>(m.size());
  for (const auto& row : m) {
    int deg = 0;
    for (const int lanes : row) deg += lanes;
    bound = std::min(bound, deg / 2);
  }
  return bound;
}

// Branch-and-bound set packing with a step budget: the bound is usually
// tight enough to finish instantly on DGX topologies; the budget caps dense
// synthetic cliques where the cycle space is large.
void pack_rec(LaneMatrix& m, const std::vector<Ring>& cycles,
              std::size_t first, std::vector<std::size_t>& chosen,
              std::vector<std::size_t>& best, long& budget) {
  if (chosen.size() > best.size()) best = chosen;
  if (--budget <= 0) return;
  if (chosen.size() + static_cast<std::size_t>(degree_bound(m)) <=
      best.size()) {
    return;
  }
  for (std::size_t c = first; c < cycles.size(); ++c) {
    if (!cycle_fits(m, cycles[c])) continue;
    apply_cycle(m, cycles[c], -1);
    chosen.push_back(c);
    pack_rec(m, cycles, c, chosen, best, budget);  // cycles may repeat on lanes
    chosen.pop_back();
    apply_cycle(m, cycles[c], +1);
    if (budget <= 0) return;
  }
}

}  // namespace

std::vector<Ring> enumerate_hamiltonian_cycles(const topo::Topology& topo) {
  std::vector<Ring> out;
  if (topo.num_gpus < 3 || topo.nvlinks.empty()) return out;
  const auto m = lane_matrix(topo);
  std::vector<int> path{0};
  std::vector<bool> used(static_cast<std::size_t>(topo.num_gpus), false);
  used[0] = true;
  enumerate_rec(m, path, used, out);
  // Remove reflected duplicates (cycle equals its own reverse traversal).
  std::vector<Ring> dedup;
  for (auto& r : out) {
    const std::size_t n = r.order.size();
    if (r.order[1] <= r.order[n - 1]) dedup.push_back(std::move(r));
  }
  return dedup;
}

std::vector<Ring> max_disjoint_rings(const topo::Topology& topo) {
  if (topo.num_gpus == 2) {
    // Degenerate 2-GPU "ring" = the pair itself, one per lane.
    const int lanes = topo.lanes_between(0, 1);
    return std::vector<Ring>(static_cast<std::size_t>(lanes),
                             Ring{{0, 1}});
  }
  const auto cycles = enumerate_hamiltonian_cycles(topo);
  if (cycles.empty()) return {};
  auto m = lane_matrix(topo);
  std::vector<std::size_t> chosen;
  std::vector<std::size_t> best;
  long budget = 500'000;
  pack_rec(m, cycles, 0, chosen, best, budget);
  std::vector<Ring> result;
  result.reserve(best.size());
  for (const std::size_t c : best) result.push_back(cycles[c]);
  return result;
}

}  // namespace blink::graph
