#include "blink/graph/digraph.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace blink::graph {

DiGraph::DiGraph(int num_vertices)
    : n_(num_vertices),
      out_(static_cast<std::size_t>(num_vertices)),
      in_(static_cast<std::size_t>(num_vertices)) {
  assert(num_vertices > 0);
}

int DiGraph::add_edge(int src, int dst, double capacity, int lanes,
                      int group) {
  assert(src >= 0 && src < n_ && dst >= 0 && dst < n_ && src != dst);
  assert(capacity > 0.0 && lanes > 0);
  assert(group < num_groups_);
  const int id = static_cast<int>(edges_.size());
  if (group < 0) group = num_groups_++;
  edges_.push_back({src, dst, capacity, lanes, group});
  out_[static_cast<std::size_t>(src)].push_back(id);
  in_[static_cast<std::size_t>(dst)].push_back(id);
  return id;
}

std::vector<double> DiGraph::group_capacities() const {
  std::vector<double> caps(static_cast<std::size_t>(num_groups_), 0.0);
  for (const auto& e : edges_) {
    caps[static_cast<std::size_t>(e.group)] = e.capacity;
  }
  return caps;
}

bool DiGraph::has_shared_groups() const {
  return num_groups_ < static_cast<int>(edges_.size());
}

bool DiGraph::reachable_from(int root) const {
  std::vector<bool> seen(static_cast<std::size_t>(n_), false);
  std::vector<int> stack{root};
  seen[static_cast<std::size_t>(root)] = true;
  int count = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (const int id : out_edges(u)) {
      const int v = edge(id).dst;
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        ++count;
        stack.push_back(v);
      }
    }
  }
  return count == n_;
}

std::string DiGraph::describe() const {
  std::ostringstream os;
  os << "digraph n=" << n_ << " m=" << edges_.size();
  for (const auto& e : edges_) {
    os << " " << e.src << "->" << e.dst << "(" << e.capacity / 1e9 << "GB/s)";
  }
  return os.str();
}

DiGraph nvlink_digraph(const topo::Topology& topo, bool undirected_capacity) {
  DiGraph g(topo.num_gpus);
  if (topo.has_nvswitch) {
    // Logical full mesh; the crossbar is non-blocking, so pairwise capacity
    // is bounded only by the per-GPU pipe.
    for (int a = 0; a < topo.num_gpus; ++a) {
      for (int b = 0; b < topo.num_gpus; ++b) {
        if (a != b) g.add_edge(a, b, topo.nvswitch_gpu_bw, 6);
      }
    }
    return g;
  }
  for (const auto& e : topo.nvlinks) {
    const double cap = e.lanes * topo.nvlink_lane_bw;
    const int forward = g.add_edge(e.a, e.b, cap, e.lanes);
    g.add_edge(e.b, e.a, cap, e.lanes,
               undirected_capacity ? g.edge(forward).group : -1);
  }
  return g;
}

DiGraph pcie_digraph(const topo::Topology& topo, double staging_bw) {
  DiGraph g(topo.num_gpus);
  const auto& pcie = topo.pcie;
  if (pcie.plx_of_gpu.empty()) return g;
  for (int a = 0; a < topo.num_gpus; ++a) {
    for (int b = 0; b < topo.num_gpus; ++b) {
      if (a == b) continue;
      const int plx_a = pcie.plx_of_gpu[static_cast<std::size_t>(a)];
      const int plx_b = pcie.plx_of_gpu[static_cast<std::size_t>(b)];
      double cap = pcie.gpu_bw;
      if (plx_a != plx_b) {
        // Host-staged: PLX segments, possibly QPI, and the staging buffer.
        cap = std::min({cap, pcie.plx_bw, staging_bw});
        const int cpu_a = pcie.cpu_of_plx[static_cast<std::size_t>(plx_a)];
        const int cpu_b = pcie.cpu_of_plx[static_cast<std::size_t>(plx_b)];
        if (cpu_a != cpu_b) cap = std::min(cap, pcie.qpi_bw);
      }
      g.add_edge(a, b, cap, 1);
    }
  }
  return g;
}

}  // namespace blink::graph
