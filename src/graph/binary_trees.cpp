#include "blink/graph/binary_trees.h"

#include <algorithm>
#include <cassert>

namespace blink::graph {

std::vector<std::vector<int>> BinaryTree::children() const {
  std::vector<std::vector<int>> ch(parent.size());
  for (std::size_t v = 0; v < parent.size(); ++v) {
    if (parent[v] >= 0) {
      ch[static_cast<std::size_t>(parent[v])].push_back(static_cast<int>(v));
    }
  }
  return ch;
}

int BinaryTree::depth() const {
  int max_depth = 0;
  for (std::size_t v = 0; v < parent.size(); ++v) {
    int d = 0;
    for (int u = static_cast<int>(v); parent[static_cast<std::size_t>(u)] >= 0;
         u = parent[static_cast<std::size_t>(u)]) {
      ++d;
    }
    max_depth = std::max(max_depth, d);
  }
  return max_depth;
}

bool BinaryTree::valid() const {
  const int n = static_cast<int>(parent.size());
  if (root < 0 || root >= n) return false;
  if (parent[static_cast<std::size_t>(root)] != -1) return false;
  int roots = 0;
  for (int v = 0; v < n; ++v) {
    if (parent[static_cast<std::size_t>(v)] == -1) {
      ++roots;
    } else if (parent[static_cast<std::size_t>(v)] < 0 ||
               parent[static_cast<std::size_t>(v)] >= n) {
      return false;
    }
  }
  if (roots != 1) return false;
  for (const auto& ch : children()) {
    if (ch.size() > 2) return false;
  }
  // Each non-root must reach the root (no cycles).
  for (int v = 0; v < n; ++v) {
    int u = v;
    int steps = 0;
    while (parent[static_cast<std::size_t>(u)] != -1) {
      u = parent[static_cast<std::size_t>(u)];
      if (++steps > n) return false;
    }
  }
  return true;
}

namespace {

void build_range(int lo, int hi, int parent_rank, std::vector<int>& parent) {
  if (lo >= hi) return;
  const int mid = lo + (hi - lo) / 2;
  parent[static_cast<std::size_t>(mid)] = parent_rank;
  build_range(lo, mid, mid, parent);
  build_range(mid + 1, hi, mid, parent);
}

}  // namespace

BinaryTree balanced_binary_tree(int n) {
  assert(n >= 1);
  BinaryTree t;
  t.parent.assign(static_cast<std::size_t>(n), -1);
  build_range(0, n, -1, t.parent);
  t.root = n / 2;
  assert(t.valid());
  return t;
}

std::pair<BinaryTree, BinaryTree> double_binary_trees(int n) {
  const BinaryTree t1 = balanced_binary_tree(n);
  // Rotate ranks by one: rank r in t2 plays the role of (r+1) mod n in t1.
  BinaryTree t2;
  t2.parent.assign(static_cast<std::size_t>(n), -1);
  auto rotate = [n](int r) { return (r + n - 1) % n; };
  for (int v = 0; v < n; ++v) {
    const int p = t1.parent[static_cast<std::size_t>((v + 1) % n)];
    t2.parent[static_cast<std::size_t>(v)] = p == -1 ? -1 : rotate(p);
  }
  t2.root = rotate(t1.root);
  assert(t2.valid());
  return {t1, t2};
}

}  // namespace blink::graph
