#include "blink/topology/builders.h"

#include <stdexcept>
#include <string>

namespace blink::topo {
namespace {

void check_builder_args(const char* builder, int num_gpus, double lane_bw) {
  if (num_gpus < 1) {
    throw std::invalid_argument(std::string(builder) +
                                ": num_gpus must be positive, got " +
                                std::to_string(num_gpus));
  }
  if (lane_bw <= 0.0) {
    throw std::invalid_argument(std::string(builder) +
                                ": lane_bw must be positive, got " +
                                std::to_string(lane_bw));
  }
}

// The hybrid cube-mesh edges common to both DGX-1 generations.
const std::vector<std::pair<int, int>>& cube_mesh_edges() {
  static const std::vector<std::pair<int, int>> kEdges = {
      // quad 0 clique
      {0, 1},
      {0, 2},
      {0, 3},
      {1, 2},
      {1, 3},
      {2, 3},
      // quad 1 clique
      {4, 5},
      {4, 6},
      {4, 7},
      {5, 6},
      {5, 7},
      {6, 7},
      // cross-quad links
      {0, 4},
      {1, 5},
      {2, 6},
      {3, 7},
  };
  return kEdges;
}

bool doubled_on_v100(int a, int b) {
  static const std::vector<std::pair<int, int>> kDoubled = {
      {0, 3}, {1, 2}, {2, 3}, {4, 7}, {5, 6}, {6, 7}, {0, 4}, {1, 5},
  };
  for (const auto& [x, y] : kDoubled) {
    if ((x == a && y == b) || (x == b && y == a)) return true;
  }
  return false;
}

}  // namespace

PcieConfig make_dgx1_pcie(int num_gpus) {
  PcieConfig pcie;
  pcie.gpu_bw = kPcieGpuBw;
  pcie.plx_bw = kPciePlxBw;
  pcie.qpi_bw = kQpiBw;
  pcie.plx_of_gpu.resize(static_cast<std::size_t>(num_gpus));
  for (int g = 0; g < num_gpus; ++g) {
    pcie.plx_of_gpu[static_cast<std::size_t>(g)] = g / 2;  // pairs share a PLX
  }
  const int num_plx = (num_gpus + 1) / 2;
  pcie.cpu_of_plx.resize(static_cast<std::size_t>(num_plx));
  for (int p = 0; p < num_plx; ++p) {
    pcie.cpu_of_plx[static_cast<std::size_t>(p)] = p / 2;  // two PLX per socket
  }
  return pcie;
}

Topology make_dgx1p() {
  Topology t;
  t.kind = ServerKind::kDGX1P;
  t.name = "DGX-1P";
  t.num_gpus = 8;
  t.nvlink_lane_bw = kNvlinkGen1Bw;
  for (const auto& [a, b] : cube_mesh_edges()) {
    t.nvlinks.push_back({a, b, 1});
  }
  t.pcie = make_dgx1_pcie(8);
  return t;
}

Topology make_dgx1v() {
  Topology t;
  t.kind = ServerKind::kDGX1V;
  t.name = "DGX-1V";
  t.num_gpus = 8;
  t.nvlink_lane_bw = kNvlinkGen2Bw;
  for (const auto& [a, b] : cube_mesh_edges()) {
    t.nvlinks.push_back({a, b, doubled_on_v100(a, b) ? 2 : 1});
  }
  t.pcie = make_dgx1_pcie(8);
  return t;
}

Topology make_dgx2() {
  Topology t;
  t.kind = ServerKind::kDGX2;
  t.name = "DGX-2";
  t.num_gpus = 16;
  t.has_nvswitch = true;
  t.nvswitch_gpu_bw = kNvswitchGpuBw;
  t.pcie = make_dgx1_pcie(16);
  return t;
}

Topology make_clique(int num_gpus, double lane_bw) {
  check_builder_args("make_clique", num_gpus, lane_bw);
  Topology t;
  t.kind = ServerKind::kCustom;
  t.name = "clique" + std::to_string(num_gpus);
  t.num_gpus = num_gpus;
  t.nvlink_lane_bw = lane_bw;
  for (int a = 0; a < num_gpus; ++a) {
    for (int b = a + 1; b < num_gpus; ++b) {
      t.nvlinks.push_back({a, b, 1});
    }
  }
  t.pcie = make_dgx1_pcie(num_gpus);
  return t;
}

Topology make_chain(int num_gpus, double lane_bw) {
  check_builder_args("make_chain", num_gpus, lane_bw);
  Topology t;
  t.kind = ServerKind::kCustom;
  t.name = "chain" + std::to_string(num_gpus);
  t.num_gpus = num_gpus;
  t.nvlink_lane_bw = lane_bw;
  for (int a = 0; a + 1 < num_gpus; ++a) {
    t.nvlinks.push_back({a, a + 1, 1});
  }
  t.pcie = make_dgx1_pcie(num_gpus);
  return t;
}

}  // namespace blink::topo
