#include "blink/topology/binning.h"

#include "blink/topology/discovery.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>

namespace blink::topo {
namespace {

// Lane-count adjacency matrix of the induced sub-multigraph.
std::vector<std::vector<int>> lane_matrix(const Topology& machine,
                                          std::span<const int> gpus) {
  const std::size_t k = gpus.size();
  std::vector<std::vector<int>> m(k, std::vector<int>(k, 0));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const int lanes = machine.lanes_between(gpus[i], gpus[j]);
      m[i][j] = lanes;
      m[j][i] = lanes;
    }
  }
  return m;
}

std::string serialize_permuted(const std::vector<std::vector<int>>& m,
                               const std::vector<int>& perm) {
  const std::size_t k = perm.size();
  std::string s;
  s.reserve(k * k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      s.push_back(static_cast<char>(
          'a' + m[static_cast<std::size_t>(perm[i])]
                 [static_cast<std::size_t>(perm[j])]));
    }
  }
  return s;
}

}  // namespace

std::string canonical_signature(const Topology& machine,
                                std::span<const int> gpus) {
  const auto m = lane_matrix(machine, gpus);
  std::vector<int> perm(gpus.size());
  std::iota(perm.begin(), perm.end(), 0);
  // Exact canonicalization: minimum serialization over all k! permutations.
  // k <= 8 on DGX-1 and the binning runs once per experiment, so brute force
  // (40320 permutations max) is the simplest correct choice.
  std::string best = serialize_permuted(m, perm);
  while (std::next_permutation(perm.begin(), perm.end())) {
    std::string s = serialize_permuted(m, perm);
    if (s < best) best = std::move(s);
  }
  return best;
}

std::vector<ConfigBin> unique_configs(const Topology& machine, int k,
                                      bool connected_only) {
  std::map<std::string, ConfigBin> bins;
  for (auto& alloc : enumerate_allocations(machine, k)) {
    if (connected_only &&
        !induced_topology(machine, alloc).nvlink_connected()) {
      continue;
    }
    std::string sig = canonical_signature(machine, alloc);
    auto [it, inserted] = bins.try_emplace(sig);
    if (inserted) {
      it->second.signature = sig;
      it->second.representative = alloc;
    }
    it->second.members.push_back(std::move(alloc));
  }
  std::vector<ConfigBin> result;
  result.reserve(bins.size());
  for (auto& [sig, bin] : bins) result.push_back(std::move(bin));
  std::sort(result.begin(), result.end(),
            [](const ConfigBin& a, const ConfigBin& b) {
              return a.representative < b.representative;
            });
  return result;
}

std::vector<ConfigBin> unique_configs_range(const Topology& machine, int k_min,
                                            int k_max, bool connected_only) {
  assert(k_min >= 1 && k_max <= machine.num_gpus && k_min <= k_max);
  std::vector<ConfigBin> all;
  for (int k = k_min; k <= k_max; ++k) {
    auto bins = unique_configs(machine, k, connected_only);
    all.insert(all.end(), std::make_move_iterator(bins.begin()),
               std::make_move_iterator(bins.end()));
  }
  return all;
}

}  // namespace blink::topo
