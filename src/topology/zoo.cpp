#include "blink/topology/zoo.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "blink/topology/discovery.h"

namespace blink::topo::zoo {
namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument("topo::zoo: " + what);
}

std::string fmt(const char* format, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

void check_probability(double p, const char* name) {
  require(p >= 0.0 && p <= 1.0,
          std::string(name) + " must be in [0, 1], got " + fmt("%g", p));
}

// A random NVLink mesh: a uniformly attached spanning tree over a shuffled
// GPU permutation (guaranteed NVLink-connected), densified with a
// link_density fraction of the remaining pairs, random lanes per edge.
Topology make_random_mesh(const RandomTopologyParams& params, Rng& rng) {
  const int n = params.num_gpus;
  Topology t;
  t.kind = ServerKind::kCustom;
  t.name = "mesh" + std::to_string(n) + "(d=" + fmt("%.2f", params.link_density) +
           ",lanes<=" + std::to_string(params.max_lanes) + ")";
  t.num_gpus = n;
  t.nvlink_lane_bw = params.lane_bw;

  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int g = 0; g < n; ++g) perm[static_cast<std::size_t>(g)] = g;
  rng.shuffle(perm);

  std::vector<std::vector<bool>> used(
      static_cast<std::size_t>(n), std::vector<bool>(static_cast<std::size_t>(n)));
  const auto add_edge = [&](int a, int b) {
    if (a > b) std::swap(a, b);
    used[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = true;
    t.nvlinks.push_back({a, b, rng.next_int(1, params.max_lanes)});
  };
  for (int i = 1; i < n; ++i) {
    add_edge(perm[static_cast<std::size_t>(rng.next_int(0, i - 1))],
             perm[static_cast<std::size_t>(i)]);
  }
  std::vector<std::pair<int, int>> extra;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (!used[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]) {
        extra.push_back({a, b});
      }
    }
  }
  rng.shuffle(extra);
  const auto keep = static_cast<std::size_t>(
      params.link_density * static_cast<double>(extra.size()) + 0.5);
  for (std::size_t i = 0; i < keep && i < extra.size(); ++i) {
    add_edge(extra[i].first, extra[i].second);
  }
  t.pcie = make_dgx1_pcie(n);
  return t;
}

void check_random_topology_params(const RandomTopologyParams& params) {
  require(params.num_gpus >= 1, "num_gpus must be positive, got " +
                                    std::to_string(params.num_gpus));
  require(params.link_density >= 0.0 && params.link_density <= 1.0,
          "link_density must be in [0, 1], got " +
              fmt("%g", params.link_density));
  require(params.max_lanes >= 1,
          "max_lanes must be positive, got " + std::to_string(params.max_lanes));
  require(params.lane_bw > 0.0,
          "lane_bw must be positive, got " + fmt("%g", params.lane_bw));
  check_probability(params.nvswitch_probability, "nvswitch_probability");
  check_probability(params.pcie_only_probability, "pcie_only_probability");
  require(params.nvswitch_probability + params.pcie_only_probability <= 1.0,
          "nvswitch_probability + pcie_only_probability must not exceed 1");
}

void check_random_fabric_params(const RandomFabricParams& p) {
  require(p.min_servers >= 1, "min_servers must be positive, got " +
                                  std::to_string(p.min_servers));
  require(p.max_servers >= p.min_servers, "max_servers < min_servers");
  require(p.min_gpus >= 1,
          "min_gpus must be positive, got " + std::to_string(p.min_gpus));
  require(p.max_gpus >= p.min_gpus, "max_gpus < min_gpus");
  require(p.max_lanes >= 1,
          "max_lanes must be positive, got " + std::to_string(p.max_lanes));
  require(p.min_lane_bw > 0.0,
          "min_lane_bw must be positive, got " + fmt("%g", p.min_lane_bw));
  require(p.max_lane_bw >= p.min_lane_bw, "max_lane_bw < min_lane_bw");
  require(p.min_nic_bw > 0.0,
          "min_nic_bw must be positive, got " + fmt("%g", p.min_nic_bw));
  require(p.max_nic_bw >= p.min_nic_bw, "max_nic_bw < min_nic_bw");
  check_probability(p.nvswitch_probability, "nvswitch_probability");
  check_probability(p.pcie_only_probability, "pcie_only_probability");
  require(p.nvswitch_probability + p.pcie_only_probability <= 1.0,
          "nvswitch_probability + pcie_only_probability must not exceed 1");
}

}  // namespace

Topology make_nvswitch_box(int num_gpus, double gpu_bw) {
  require(num_gpus >= 1,
          "num_gpus must be positive, got " + std::to_string(num_gpus));
  require(gpu_bw > 0.0, "gpu_bw must be positive, got " + fmt("%g", gpu_bw));
  Topology t;
  t.kind = ServerKind::kCustom;
  t.name = "nvswitch" + std::to_string(num_gpus);
  t.num_gpus = num_gpus;
  t.has_nvswitch = true;
  t.nvswitch_gpu_bw = gpu_bw;
  t.pcie = make_dgx1_pcie(num_gpus);
  return t;
}

Topology make_pcie_only_host(int num_gpus) {
  require(num_gpus >= 1,
          "num_gpus must be positive, got " + std::to_string(num_gpus));
  Topology t;
  t.kind = ServerKind::kCustom;
  t.name = "pcie" + std::to_string(num_gpus);
  t.num_gpus = num_gpus;
  t.pcie = make_dgx1_pcie(num_gpus);
  return t;
}

Topology make_random_topology(const RandomTopologyParams& params, Rng& rng) {
  check_random_topology_params(params);
  const double u = rng.next_double();
  if (u < params.nvswitch_probability) {
    // NVSwitch pipe rate scales with the drawn lane rate (6 lanes per GPU,
    // the DGX-2 aggregation), so switch boxes share the bandwidth spread.
    return make_nvswitch_box(params.num_gpus, 6.0 * params.lane_bw);
  }
  if (u < params.nvswitch_probability + params.pcie_only_probability) {
    return make_pcie_only_host(params.num_gpus);
  }
  return make_random_mesh(params, rng);
}

ZooCluster make_fat_tree_cluster(int racks, int servers_per_rack,
                                 int gpus_per_server, double nic_bw,
                                 double oversubscription) {
  require(racks >= 1, "racks must be positive, got " + std::to_string(racks));
  require(servers_per_rack >= 1, "servers_per_rack must be positive, got " +
                                     std::to_string(servers_per_rack));
  require(gpus_per_server >= 1, "gpus_per_server must be positive, got " +
                                    std::to_string(gpus_per_server));
  require(nic_bw > 0.0, "nic_bw must be positive, got " + fmt("%g", nic_bw));
  require(oversubscription >= 1.0,
          "oversubscription must be >= 1, got " + fmt("%g", oversubscription));
  ZooCluster c;
  c.name = "fattree-" + std::to_string(racks) + "x" +
           std::to_string(servers_per_rack) + "x" +
           std::to_string(gpus_per_server);
  const int num_servers = racks * servers_per_rack;
  const double rate = racks > 1 ? nic_bw / oversubscription : nic_bw;
  for (int s = 0; s < num_servers; ++s) {
    Topology t = make_nvswitch_box(gpus_per_server);
    t.name = "rack" + std::to_string(s / servers_per_rack) + "-" + t.name;
    c.servers.push_back(std::move(t));
    c.fabric.nic_bw_per_server.push_back(rate);
  }
  c.fabric.nic_bw = nic_bw;
  return c;
}

ZooCluster make_mixed_fleet(const std::vector<ServerKind>& generations,
                            double nic_bw, int gpus_per_server) {
  require(!generations.empty(), "generations must not be empty");
  require(nic_bw > 0.0, "nic_bw must be positive, got " + fmt("%g", nic_bw));
  require(gpus_per_server >= 0, "gpus_per_server must be non-negative, got " +
                                    std::to_string(gpus_per_server));
  ZooCluster c;
  c.name = "fleet" + std::to_string(generations.size());
  c.fabric.nic_bw = nic_bw;
  for (const ServerKind kind : generations) {
    Topology t;
    double nic = nic_bw;
    switch (kind) {
      case ServerKind::kDGX1P:
        t = make_dgx1p();
        nic = nic_bw / 2.0;
        break;
      case ServerKind::kDGX1V:
        t = make_dgx1v();
        break;
      case ServerKind::kDGX2:
        t = make_dgx2();
        nic = nic_bw * 2.0;
        break;
      case ServerKind::kCustom:
        require(false, "mixed fleets are built from paper machines; "
                       "kCustom has no generation");
        break;
    }
    if (gpus_per_server > 0) {
      require(gpus_per_server <= t.num_gpus,
              "gpus_per_server " + std::to_string(gpus_per_server) +
                  " exceeds " + t.name + "'s " + std::to_string(t.num_gpus));
      std::vector<int> alloc(static_cast<std::size_t>(gpus_per_server));
      for (int g = 0; g < gpus_per_server; ++g) {
        alloc[static_cast<std::size_t>(g)] = g;
      }
      t = induced_topology(t, alloc);
    }
    c.servers.push_back(std::move(t));
    c.fabric.nic_bw_per_server.push_back(nic);
  }
  return c;
}

int RandomFabric::total_gpus() const {
  int total = 0;
  for (const auto& s : servers) total += s.num_gpus;
  return total;
}

std::string RandomFabric::describe() const {
  std::string out = "servers=" + std::to_string(servers.size()) + " [";
  for (std::size_t s = 0; s < servers.size(); ++s) {
    if (s) out += ", ";
    out += servers[s].name;
    if (!servers[s].has_nvswitch && !servers[s].nvlinks.empty()) {
      out += fmt("@%.3ge9", servers[s].nvlink_lane_bw / 1e9);
    }
  }
  out += "]";
  if (servers.size() > 1) {
    out += " nic=[";
    for (std::size_t s = 0; s < fabric.nic_bw_per_server.size(); ++s) {
      if (s) out += ",";
      out += fmt("%.3ge9", fabric.nic_bw_per_server[s] / 1e9);
    }
    out += "]";
  }
  return out;
}

RandomFabric make_random_fabric(std::uint64_t seed,
                                const RandomFabricParams& params) {
  check_random_fabric_params(params);
  Rng rng(seed);
  RandomFabric rf;
  rf.seed = seed;
  const int num_servers = rng.next_int(params.min_servers, params.max_servers);
  for (int s = 0; s < num_servers; ++s) {
    RandomTopologyParams tp;
    tp.num_gpus = rng.next_int(params.min_gpus, params.max_gpus);
    tp.link_density = rng.next_double();
    tp.max_lanes = params.max_lanes;
    tp.lane_bw = params.min_lane_bw +
                 rng.next_double() * (params.max_lane_bw - params.min_lane_bw);
    tp.nvswitch_probability = params.nvswitch_probability;
    tp.pcie_only_probability = params.pcie_only_probability;
    rf.servers.push_back(make_random_topology(tp, rng));
  }
  if (num_servers > 1) {
    for (int s = 0; s < num_servers; ++s) {
      rf.fabric.nic_bw_per_server.push_back(
          params.min_nic_bw +
          rng.next_double() * (params.max_nic_bw - params.min_nic_bw));
    }
  }
  return rf;
}

}  // namespace blink::topo::zoo
