#include "blink/topology/parser.h"

#include <fstream>
#include <sstream>

namespace blink::topo {
namespace {

struct LineError {
  int line;
  std::string message;
};

ParseResult fail(int line, const std::string& message) {
  ParseResult r;
  r.error = "line " + std::to_string(line) + ": " + message;
  return r;
}

}  // namespace

ParseResult parse_topology(const std::string& text) {
  Topology t;
  t.kind = ServerKind::kCustom;

  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream line(raw);
    std::string directive;
    if (!(line >> directive)) continue;  // blank / comment line

    if (directive == "name") {
      line >> t.name;
    } else if (directive == "gpus") {
      if (!(line >> t.num_gpus) || t.num_gpus <= 0) {
        return fail(line_no, "gpus needs a positive count");
      }
    } else if (directive == "nvlink") {
      double gbps = 0.0;
      if (!(line >> gbps) || gbps <= 0.0) {
        return fail(line_no, "nvlink needs a positive GB/s value");
      }
      t.nvlink_lane_bw = gbps * 1e9;
    } else if (directive == "link") {
      NvlinkEdge e;
      if (!(line >> e.a >> e.b)) {
        return fail(line_no, "link needs two GPU ids");
      }
      if (!(line >> e.lanes)) e.lanes = 1;
      if (e.lanes <= 0) return fail(line_no, "lanes must be positive");
      t.nvlinks.push_back(e);
    } else if (directive == "nvswitch") {
      double gbps = 0.0;
      if (!(line >> gbps) || gbps <= 0.0) {
        return fail(line_no, "nvswitch needs a positive GB/s value");
      }
      t.has_nvswitch = true;
      t.nvswitch_gpu_bw = gbps * 1e9;
    } else if (directive == "pcie") {
      double gpu = 0.0;
      double plx = 0.0;
      double qpi = 0.0;
      if (!(line >> gpu >> plx >> qpi) || gpu <= 0 || plx <= 0 || qpi <= 0) {
        return fail(line_no, "pcie needs three positive GB/s values");
      }
      t.pcie.gpu_bw = gpu * 1e9;
      t.pcie.plx_bw = plx * 1e9;
      t.pcie.qpi_bw = qpi * 1e9;
    } else if (directive == "plx") {
      t.pcie.plx_of_gpu.clear();
      int id = 0;
      while (line >> id) t.pcie.plx_of_gpu.push_back(id);
    } else if (directive == "cpu") {
      t.pcie.cpu_of_plx.clear();
      int id = 0;
      while (line >> id) t.pcie.cpu_of_plx.push_back(id);
    } else {
      return fail(line_no, "unknown directive '" + directive + "'");
    }
  }

  if (t.num_gpus == 0) return fail(line_no, "missing 'gpus' directive");
  if (!t.nvlinks.empty() && t.nvlink_lane_bw <= 0.0) {
    return fail(line_no, "links given but no 'nvlink' lane bandwidth");
  }
  std::string err;
  if (!t.validate(&err)) return fail(line_no, err);

  ParseResult r;
  r.topology = std::move(t);
  return r;
}

ParseResult load_topology(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParseResult r;
    r.error = "cannot open '" + path + "'";
    return r;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_topology(buffer.str());
}

std::string format_topology(const Topology& topo) {
  std::ostringstream os;
  if (!topo.name.empty()) os << "name " << topo.name << "\n";
  os << "gpus " << topo.num_gpus << "\n";
  if (topo.has_nvswitch) {
    os << "nvswitch " << topo.nvswitch_gpu_bw / 1e9 << "\n";
  }
  if (!topo.nvlinks.empty()) {
    os << "nvlink " << topo.nvlink_lane_bw / 1e9 << "\n";
    for (const auto& e : topo.nvlinks) {
      os << "link " << e.a << " " << e.b << " " << e.lanes << "\n";
    }
  }
  if (!topo.pcie.plx_of_gpu.empty()) {
    os << "pcie " << topo.pcie.gpu_bw / 1e9 << " " << topo.pcie.plx_bw / 1e9
       << " " << topo.pcie.qpi_bw / 1e9 << "\n";
    os << "plx";
    for (const int p : topo.pcie.plx_of_gpu) os << " " << p;
    os << "\ncpu";
    for (const int c : topo.pcie.cpu_of_plx) os << " " << c;
    os << "\n";
  }
  return os.str();
}

}  // namespace blink::topo
