#include "blink/topology/topology.h"

#include <algorithm>
#include <sstream>

namespace blink::topo {

const char* to_string(LinkType type) {
  switch (type) {
    case LinkType::kNVLink:
      return "NVLink";
    case LinkType::kPCIe:
      return "PCIe";
    case LinkType::kQPI:
      return "QPI";
    case LinkType::kNVSwitch:
      return "NVSwitch";
    case LinkType::kNIC:
      return "NIC";
  }
  return "?";
}

const char* to_string(ServerKind kind) {
  switch (kind) {
    case ServerKind::kDGX1P:
      return "DGX-1P";
    case ServerKind::kDGX1V:
      return "DGX-1V";
    case ServerKind::kDGX2:
      return "DGX-2";
    case ServerKind::kCustom:
      return "custom";
  }
  return "?";
}

int PcieConfig::num_plx() const {
  if (plx_of_gpu.empty()) return 0;
  return 1 + *std::max_element(plx_of_gpu.begin(), plx_of_gpu.end());
}

int PcieConfig::num_cpus() const {
  if (cpu_of_plx.empty()) return 0;
  return 1 + *std::max_element(cpu_of_plx.begin(), cpu_of_plx.end());
}

bool PcieConfig::valid_for(int num_gpus) const {
  if (plx_of_gpu.empty()) return true;  // no PCIe modelled
  if (static_cast<int>(plx_of_gpu.size()) != num_gpus) return false;
  // cpu_of_plx may describe more switches than the allocation touches
  // (induced topologies keep the machine's switch ids).
  if (static_cast<int>(cpu_of_plx.size()) < num_plx()) return false;
  for (int p : plx_of_gpu) {
    if (p < 0 || p >= static_cast<int>(cpu_of_plx.size())) return false;
  }
  const int cpus = num_cpus();
  for (int c : cpu_of_plx) {
    if (c < 0 || c >= cpus) return false;
  }
  return gpu_bw > 0.0 && plx_bw > 0.0 && (cpus < 2 || qpi_bw > 0.0);
}

int Topology::lanes_between(int a, int b) const {
  int lanes = 0;
  for (const auto& e : nvlinks) {
    if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) lanes += e.lanes;
  }
  return lanes;
}

int Topology::nvlink_degree(int gpu) const {
  int lanes = 0;
  for (const auto& e : nvlinks) {
    if (e.a == gpu || e.b == gpu) lanes += e.lanes;
  }
  return lanes;
}

double Topology::nvlink_capacity(int a, int b) const {
  return lanes_between(a, b) * nvlink_lane_bw;
}

bool Topology::nvlink_connected() const {
  if (num_gpus <= 1) return true;
  if (has_nvswitch) return true;
  std::vector<int> stack{0};
  std::vector<bool> seen(static_cast<std::size_t>(num_gpus), false);
  seen[0] = true;
  int reached = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (const auto& e : nvlinks) {
      const int v = e.a == u ? e.b : (e.b == u ? e.a : -1);
      if (v >= 0 && !seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        ++reached;
        stack.push_back(v);
      }
    }
  }
  return reached == num_gpus;
}

int Topology::global_id(int gpu) const {
  if (global_ids.empty()) return gpu;
  return global_ids[static_cast<std::size_t>(gpu)];
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << to_string(kind) << " '" << name << "' gpus=" << num_gpus;
  if (has_nvswitch) {
    os << " nvswitch(" << nvswitch_gpu_bw / 1e9 << "GB/s per GPU)";
  }
  for (const auto& e : nvlinks) {
    os << " " << e.a << "-" << e.b << "x" << e.lanes;
  }
  return os.str();
}

bool Topology::validate(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (num_gpus <= 0) return fail("num_gpus must be positive");
  for (const auto& e : nvlinks) {
    if (e.a < 0 || e.a >= num_gpus || e.b < 0 || e.b >= num_gpus) {
      return fail("nvlink edge endpoint out of range");
    }
    if (e.a == e.b) return fail("nvlink self-loop");
    if (e.lanes <= 0) return fail("nvlink edge with no lanes");
  }
  if (!nvlinks.empty() && nvlink_lane_bw <= 0.0) {
    return fail("nvlink lane bandwidth must be positive");
  }
  if (has_nvswitch && nvswitch_gpu_bw <= 0.0) {
    return fail("nvswitch bandwidth must be positive");
  }
  if (!pcie.valid_for(num_gpus)) return fail("inconsistent PCIe config");
  if (!global_ids.empty() &&
      static_cast<int>(global_ids.size()) != num_gpus) {
    return fail("global_ids size mismatch");
  }
  return true;
}

}  // namespace blink::topo
