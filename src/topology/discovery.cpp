#include "blink/topology/discovery.h"

#include <algorithm>
#include <cassert>

namespace blink::topo {

Topology induced_topology(const Topology& machine, std::span<const int> gpus) {
  assert(!gpus.empty());
  std::vector<int> local_of_global(static_cast<std::size_t>(machine.num_gpus),
                                   -1);
  for (std::size_t i = 0; i < gpus.size(); ++i) {
    const int g = gpus[i];
    assert(g >= 0 && g < machine.num_gpus);
    assert(local_of_global[static_cast<std::size_t>(g)] == -1 &&
           "duplicate GPU in allocation");
    local_of_global[static_cast<std::size_t>(g)] = static_cast<int>(i);
  }

  Topology t;
  t.kind = machine.kind;
  t.name = machine.name + "/alloc" + std::to_string(gpus.size());
  t.num_gpus = static_cast<int>(gpus.size());
  t.nvlink_lane_bw = machine.nvlink_lane_bw;
  t.has_nvswitch = machine.has_nvswitch;
  t.nvswitch_gpu_bw = machine.nvswitch_gpu_bw;

  for (const auto& e : machine.nvlinks) {
    const int la = local_of_global[static_cast<std::size_t>(e.a)];
    const int lb = local_of_global[static_cast<std::size_t>(e.b)];
    if (la >= 0 && lb >= 0) t.nvlinks.push_back({la, lb, e.lanes});
  }

  if (!machine.pcie.plx_of_gpu.empty()) {
    // Keep the machine's PLX/CPU indices: unallocated siblings simply do not
    // generate traffic, so sparse switch ids are harmless and keep placement
    // (same-PLX vs cross-QPI) faithful.
    t.pcie = machine.pcie;
    t.pcie.plx_of_gpu.clear();
    for (const int g : gpus) {
      t.pcie.plx_of_gpu.push_back(
          machine.pcie.plx_of_gpu[static_cast<std::size_t>(g)]);
    }
  }

  for (const int g : gpus) t.global_ids.push_back(machine.global_id(g));
  return t;
}

std::vector<std::vector<int>> enumerate_allocations(const Topology& machine,
                                                    int k) {
  assert(k >= 1 && k <= machine.num_gpus);
  std::vector<std::vector<int>> result;
  std::vector<int> current;
  // Iterative combination enumeration in lexicographic order.
  current.resize(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) current[static_cast<std::size_t>(i)] = i;
  while (true) {
    result.push_back(current);
    int i = k - 1;
    while (i >= 0 &&
           current[static_cast<std::size_t>(i)] == machine.num_gpus - k + i) {
      --i;
    }
    if (i < 0) break;
    ++current[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      current[static_cast<std::size_t>(j)] =
          current[static_cast<std::size_t>(j - 1)] + 1;
    }
  }
  return result;
}

}  // namespace blink::topo
