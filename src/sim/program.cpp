#include "blink/sim/program.h"

#include <cassert>

namespace blink::sim {

int Program::add(Op op) {
  assert(op.stream >= 0 && op.stream < num_streams_ &&
         "allocate streams via new_stream()");
  const int id = static_cast<int>(ops_.size());
  for ([[maybe_unused]] const int d : op.deps) {
    assert(d >= 0 && d < id && "deps must reference earlier ops");
  }
  ops_.push_back(std::move(op));
  return id;
}

int Program::append(const Program& other) {
  const int op_base = static_cast<int>(ops_.size());
  const int stream_base = num_streams_;
  num_streams_ += other.num_streams_;
  ops_.reserve(ops_.size() + other.ops_.size());
  for (const Op& src : other.ops_) {
    Op op = src;
    op.stream += stream_base;
    for (int& d : op.deps) d += op_base;
    ops_.push_back(std::move(op));
  }
  return op_base;
}

double Program::total_copy_bytes() const {
  double total = 0.0;
  for (const auto& op : ops_) {
    if (op.kind == OpKind::kCopy) total += op.bytes;
  }
  return total;
}

bool Program::validate(std::string* error) const {
  auto fail = [&](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const auto& op = ops_[i];
    if (op.stream < 0 || op.stream >= num_streams_) {
      return fail("op with unallocated stream");
    }
    if (op.kind == OpKind::kDelay && !op.route.empty()) {
      return fail("delay ops must not use channels");
    }
    if (op.kind != OpKind::kDelay && op.route.empty() && op.bytes > 0.0) {
      return fail("transfer op without a route");
    }
    if (op.bytes < 0.0 || op.latency < 0.0) {
      return fail("negative bytes or latency");
    }
    for (const int d : op.deps) {
      if (d < 0 || static_cast<std::size_t>(d) >= i) {
        return fail("dependency on a later or invalid op");
      }
    }
  }
  return true;
}

}  // namespace blink::sim
