#include "blink/sim/executor.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <stdexcept>

#include "blink/sim/engine.h"

namespace blink::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kByteEps = 1e-6;

struct Timer {
  double time;
  int op;
  // Timers either move an op from its latency phase into its flow phase, or
  // release a delayed dependency edge (CUDA event sync) toward |op|.
  enum class Kind { kBeginTransfer, kReleaseDep } kind = Kind::kBeginTransfer;
  bool operator>(const Timer& other) const { return time > other.time; }
};

class Execution {
 public:
  Execution(const Fabric& fabric, const Program& program)
      : fabric_(fabric), program_(program) {
    const auto n = static_cast<std::size_t>(program.ops().size());
    remaining_deps_.resize(n, 0);
    dependents_.resize(n);
    stream_pos_.resize(n, 0);
    stream_ops_.resize(static_cast<std::size_t>(program.num_streams()));
    stream_completed_.resize(static_cast<std::size_t>(program.num_streams()),
                             0);
    result_.op_start.assign(n, -1.0);
    result_.op_finish.assign(n, -1.0);
    result_.channel_bytes.assign(
        static_cast<std::size_t>(fabric.num_channels()), 0.0);

    for (std::size_t i = 0; i < n; ++i) {
      const auto& op = program.op(static_cast<int>(i));
      remaining_deps_[i] = static_cast<int>(op.deps.size());
      for (const int d : op.deps) {
        dependents_[static_cast<std::size_t>(d)].push_back(
            static_cast<int>(i));
      }
      auto& sops = stream_ops_[static_cast<std::size_t>(op.stream)];
      stream_pos_[i] = static_cast<int>(sops.size());
      sops.push_back(static_cast<int>(i));
    }
  }

  RunResult run() {
    // Seed: front ops of each stream with no deps.
    for (const auto& sops : stream_ops_) {
      if (!sops.empty()) try_start(sops.front());
    }
    drain_start_queue();

    while (!flows_.empty() || !timers_.empty()) {
      recompute_rates();

      double next_flow_done = kInf;
      std::size_t first_done = flows_.size();
      for (std::size_t i = 0; i < flows_.size(); ++i) {
        const double t = now_ + flows_[i].remaining / flows_[i].rate;
        if (t < next_flow_done) {
          next_flow_done = t;
          first_done = i;
        }
      }
      double next_time = next_flow_done;
      if (!timers_.empty()) next_time = std::min(next_time, timers_.top().time);
      assert(next_time < kInf);
      advance_to(next_time);
      // Guarantee progress even when remaining/rate underflows the clock's
      // resolution: the flow that determined next_time is done by definition.
      if (first_done < flows_.size() && next_time == next_flow_done) {
        flows_[first_done].remaining = 0.0;
      }

      // Complete flows that ran dry.
      for (std::size_t i = 0; i < flows_.size();) {
        if (flows_[i].remaining <= kByteEps) {
          const int op = flows_[i].op;
          flows_[i] = flows_.back();
          flows_.pop_back();
          complete(op);
        } else {
          ++i;
        }
      }
      // Fire timers.
      while (!timers_.empty() && timers_.top().time <= now_ + 1e-15) {
        const Timer timer = timers_.top();
        timers_.pop();
        if (timer.kind == Timer::Kind::kBeginTransfer) {
          begin_transfer(timer.op);
        } else {
          release_dep(timer.op);
        }
      }
      drain_start_queue();
    }

    for (const double t : result_.op_finish) {
      if (t < 0.0) {
        throw std::logic_error(
            "simulator deadlock: unsatisfied op dependencies");
      }
    }
    result_.makespan = now_;
    return std::move(result_);
  }

 private:
  struct Flow {
    int op;
    double remaining;
    double rate = 0.0;
  };

  void try_start(int op_id) {
    const auto& op = program_.op(op_id);
    const auto i = static_cast<std::size_t>(op_id);
    if (remaining_deps_[i] > 0) return;
    if (stream_completed_[static_cast<std::size_t>(op.stream)] !=
        stream_pos_[i]) {
      return;  // an earlier op in this stream is still running
    }
    start_queue_.push_back(op_id);
  }

  void drain_start_queue() {
    while (!start_queue_.empty()) {
      const int op_id = start_queue_.back();
      start_queue_.pop_back();
      result_.op_start[static_cast<std::size_t>(op_id)] = now_;
      const auto& op = program_.op(op_id);
      if (op.latency > 0.0) {
        timers_.push({now_ + op.latency, op_id, Timer::Kind::kBeginTransfer});
      } else {
        begin_transfer(op_id);
      }
    }
  }

  // Latency paid; move the op into its flow phase (or complete it).
  void begin_transfer(int op_id) {
    const auto& op = program_.op(op_id);
    if (op.bytes <= 0.0 || op.route.empty()) {
      complete(op_id);
      return;
    }
    flows_.push_back({op_id, op.bytes});
    rates_dirty_ = true;
  }

  void complete(int op_id) {
    const auto i = static_cast<std::size_t>(op_id);
    assert(result_.op_finish[i] < 0.0);
    result_.op_finish[i] = now_;
    rates_dirty_ = true;

    const auto& op = program_.op(op_id);
    for (const int c : op.route) {
      result_.channel_bytes[static_cast<std::size_t>(c)] += op.bytes;
    }

    auto& done = stream_completed_[static_cast<std::size_t>(op.stream)];
    assert(done == stream_pos_[i]);
    ++done;
    const auto& sops = stream_ops_[static_cast<std::size_t>(op.stream)];
    if (static_cast<std::size_t>(done) < sops.size()) {
      try_start(sops[static_cast<std::size_t>(done)]);
    }
    // Dependents in other streams learn of the completion after the event
    // synchronization latency.
    const double sync = fabric_.params().event_sync_latency;
    for (const int dep : dependents_[i]) {
      if (sync > 0.0 &&
          program_.op(dep).stream != op.stream) {
        timers_.push({now_ + sync, dep, Timer::Kind::kReleaseDep});
      } else {
        release_dep(dep);
      }
    }
  }

  void release_dep(int op_id) {
    if (--remaining_deps_[static_cast<std::size_t>(op_id)] == 0) {
      try_start(op_id);
    }
  }

  void recompute_rates() {
    if (!rates_dirty_) return;
    rates_dirty_ = false;
    std::vector<FlowSpec> specs;
    specs.reserve(flows_.size());
    for (const auto& f : flows_) {
      specs.push_back({program_.op(f.op).route});
    }
    const auto rates = max_min_rates(fabric_.capacities(), specs);
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      flows_[i].rate = rates[i];
      assert(flows_[i].rate > 0.0);
    }
  }

  void advance_to(double t) {
    assert(t >= now_);
    const double dt = t - now_;
    for (auto& f : flows_) {
      f.remaining -= f.rate * dt;
      if (f.remaining < 0.0) f.remaining = 0.0;
    }
    now_ = t;
  }

  const Fabric& fabric_;
  const Program& program_;

  double now_ = 0.0;
  bool rates_dirty_ = true;
  std::vector<Flow> flows_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  std::vector<int> start_queue_;

  std::vector<int> remaining_deps_;
  std::vector<std::vector<int>> dependents_;
  std::vector<int> stream_pos_;
  std::vector<std::vector<int>> stream_ops_;
  std::vector<int> stream_completed_;

  RunResult result_;
};

}  // namespace

RunResult execute(const Fabric& fabric, const Program& program) {
  std::string err;
  if (!program.validate(&err)) {
    throw std::logic_error("invalid program: " + err);
  }
  // A failed channel (health 0) has no capacity: a flow over it would never
  // complete. Programs compiled before the failure are stale by definition —
  // refuse them with a typed error instead of deadlocking the fluid model.
  const auto& caps = fabric.capacities();
  for (const auto& op : program.ops()) {
    for (const int c : op.route) {
      if (!(caps[static_cast<std::size_t>(c)] > 0.0)) {
        throw std::runtime_error("stale program: op routes over failed channel " +
                                 fabric.channel_name(c));
      }
    }
  }
  return Execution(fabric, program).run();
}

GroupRunResult execute_group(const Fabric& fabric,
                             std::span<const Program* const> programs) {
  GroupRunResult group;
  Program merged;
  group.ops.reserve(programs.size());
  for (const Program* p : programs) {
    const int begin = merged.append(*p);
    group.ops.emplace_back(begin, static_cast<int>(merged.ops().size()));
  }
  group.run = execute(fabric, merged);
  group.makespan.reserve(programs.size());
  for (const auto& [begin, end] : group.ops) {
    double t = 0.0;
    for (int i = begin; i < end; ++i) {
      t = std::max(t, group.run.op_finish[static_cast<std::size_t>(i)]);
    }
    group.makespan.push_back(t);
  }
  return group;
}

}  // namespace blink::sim
