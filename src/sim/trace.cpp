#include "blink/sim/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace blink::sim {
namespace {

const char* kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kCopy:
      return "copy";
    case OpKind::kReduce:
      return "reduce";
    case OpKind::kDelay:
      return "delay";
  }
  return "?";
}

// Minimal JSON string escaping for op labels.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

}  // namespace

std::string to_chrome_trace(const Fabric& fabric, const Program& program,
                            const RunResult& result,
                            const TraceOptions& options) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ",";
    first = false;
  };

  // One slice per op; pid 0, tid = stream id.
  for (std::size_t i = 0; i < program.ops().size(); ++i) {
    const auto& op = program.op(static_cast<int>(i));
    const double start = result.op_start[i];
    const double finish = result.op_finish[i];
    if (start < 0.0 || finish < start) continue;
    if (finish - start < options.min_slice_seconds) continue;
    comma();
    os << "{\"name\":\"" << escape(op.label.empty() ? kind_name(op.kind)
                                                    : op.label)
       << "\",\"cat\":\"" << kind_name(op.kind)
       << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << op.stream
       << ",\"ts\":" << start * 1e6 << ",\"dur\":" << (finish - start) * 1e6
       << ",\"args\":{\"bytes\":" << op.bytes << "}}";
  }

  if (options.include_channel_counters) {
    for (int c = 0; c < fabric.num_channels(); ++c) {
      const double bytes = result.channel_bytes[static_cast<std::size_t>(c)];
      if (bytes <= 0.0) continue;
      comma();
      const double util =
          result.makespan > 0.0
              ? bytes / (fabric.capacities()[static_cast<std::size_t>(c)] *
                         result.makespan)
              : 0.0;
      os << "{\"name\":\"" << escape(fabric.channel_name(c))
         << "\",\"ph\":\"C\",\"pid\":1,\"ts\":0,\"args\":{\"utilization\":"
         << util << "}}";
    }
  }
  os << "]}";
  return os.str();
}

bool write_chrome_trace(const std::string& path, const Fabric& fabric,
                        const Program& program, const RunResult& result,
                        const TraceOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_chrome_trace(fabric, program, result, options);
  return static_cast<bool>(out);
}

std::vector<std::vector<int>> op_channel_routes(const Program& program) {
  std::vector<std::vector<int>> routes;
  routes.reserve(program.ops().size());
  for (const auto& op : program.ops()) routes.push_back(op.route);
  return routes;
}

std::vector<int> program_channels(const Program& program) {
  std::vector<int> channels;
  for (const auto& op : program.ops()) {
    channels.insert(channels.end(), op.route.begin(), op.route.end());
  }
  std::sort(channels.begin(), channels.end());
  channels.erase(std::unique(channels.begin(), channels.end()),
                 channels.end());
  return channels;
}

std::vector<CapacityViolation> capacity_violations(const Fabric& fabric,
                                                   const RunResult& result,
                                                   double slack_bytes) {
  std::vector<CapacityViolation> violations;
  const auto& caps = fabric.capacities();
  for (std::size_t c = 0; c < result.channel_bytes.size(); ++c) {
    const double cap = c < caps.size() ? caps[c] : 0.0;
    const double bound = cap * result.makespan + slack_bytes;
    if (result.channel_bytes[c] > bound) {
      violations.push_back(
          {static_cast<int>(c), result.channel_bytes[c], bound});
    }
  }
  return violations;
}

}  // namespace blink::sim
