#include "blink/sim/engine.h"

#include <cassert>
#include <limits>

namespace blink::sim {

std::vector<double> max_min_rates(std::span<const double> channel_capacity,
                                  std::span<const FlowSpec> flows) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t num_channels = channel_capacity.size();
  const std::size_t num_flows = flows.size();

  std::vector<double> rate(num_flows, -1.0);
  std::vector<double> remaining(channel_capacity.begin(),
                                channel_capacity.end());
  std::vector<int> unset_on(num_channels, 0);
  for (const auto& f : flows) {
    for (const int c : f.route) {
      assert(c >= 0 && static_cast<std::size_t>(c) < num_channels);
      ++unset_on[static_cast<std::size_t>(c)];
    }
  }

  std::size_t flows_left = 0;
  for (std::size_t i = 0; i < num_flows; ++i) {
    if (flows[i].route.empty()) {
      rate[i] = kInf;
    } else {
      ++flows_left;
    }
  }

  // Progressive filling: repeatedly saturate the channel offering the
  // smallest fair share and freeze the flows crossing it.
  while (flows_left > 0) {
    double fill = kInf;
    for (std::size_t c = 0; c < num_channels; ++c) {
      if (unset_on[c] > 0) {
        fill = std::min(fill, remaining[c] / unset_on[c]);
      }
    }
    assert(fill < kInf && "unset flows must cross some channel");
    fill = std::max(fill, 0.0);

    bool froze_any = false;
    for (std::size_t i = 0; i < num_flows; ++i) {
      if (rate[i] >= 0.0) continue;
      bool bottlenecked = false;
      for (const int c : flows[i].route) {
        const auto cu = static_cast<std::size_t>(c);
        // Channels whose fair share equals the fill level saturate now.
        if (remaining[cu] - fill * unset_on[cu] <= 1e-9 * remaining[cu] + 1e-6) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      rate[i] = fill;
      froze_any = true;
      --flows_left;
      for (const int c : flows[i].route) {
        const auto cu = static_cast<std::size_t>(c);
        remaining[cu] -= fill;
        if (remaining[cu] < 0.0) remaining[cu] = 0.0;
        --unset_on[cu];
      }
    }
    assert(froze_any && "progressive filling must make progress");
    if (!froze_any) break;  // defensive: avoid infinite loop in release builds
  }
  return rate;
}

}  // namespace blink::sim
