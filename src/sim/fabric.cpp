#include "blink/sim/fabric.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace blink::sim {

namespace {

// Local FNV-1a so the sim layer does not depend on the planner's hasher
// (blink::FingerprintHasher uses the same constants; the values need not
// match it, only be stable and sensitive to every hashed field).
struct ComponentHasher {
  std::uint64_t h = 1469598103934665603ULL;
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ULL;
    }
  }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
};

}  // namespace

const char* to_string(HealthEventKind kind) {
  switch (kind) {
    case HealthEventKind::kDegradeLink:
      return "degrade_link";
    case HealthEventKind::kFailLink:
      return "fail_link";
    case HealthEventKind::kFailGpu:
      return "fail_gpu";
    case HealthEventKind::kRestoreAll:
      return "restore";
  }
  return "?";
}

Fabric::Fabric(const topo::Topology& topo, const FabricParams& params)
    : Fabric(std::vector<topo::Topology>{topo}, params) {}

Fabric::Fabric(const std::vector<topo::Topology>& servers,
               const FabricParams& params)
    : params_(params), servers_(servers) {
  if (servers_.empty()) {
    throw std::invalid_argument("fabric needs at least one server");
  }
  if (!params_.nic_bw_per_server.empty()) {
    if (params_.nic_bw_per_server.size() != servers_.size()) {
      throw std::invalid_argument(
          "nic_bw_per_server must have one entry per server");
    }
    for (const double bw : params_.nic_bw_per_server) {
      if (!(bw > 0.0)) {
        throw std::invalid_argument("nic_bw_per_server entries must be > 0");
      }
    }
  }
  ch_.resize(servers_.size());
  for (int s = 0; s < num_servers(); ++s) {
    std::string err;
    if (!servers_[static_cast<std::size_t>(s)].validate(&err)) {
      throw std::invalid_argument("invalid topology: " + err);
    }
    build_server(s);
  }
  building_server_ = -1;
}

int Fabric::add_channel(std::string name, double capacity) {
  assert(capacity > 0.0);
  const int id = static_cast<int>(capacity_.size());
  capacity_.push_back(capacity);
  name_.push_back(std::move(name));
  base_capacity_.push_back(capacity);
  health_.push_back(1.0);
  channel_server_.push_back(building_server_);
  nic_channel_.push_back(building_nic_ ? 1 : 0);
  reverse_of_.push_back(-1);
  return id;
}

void Fabric::build_server(int s) {
  const auto& t = servers_[static_cast<std::size_t>(s)];
  auto& ch = ch_[static_cast<std::size_t>(s)];
  const auto prefix = "s" + std::to_string(s) + ".";
  const auto n = static_cast<std::size_t>(t.num_gpus);
  building_server_ = s;
  building_nic_ = false;

  const auto pair_up = [&](int a, int b) {
    reverse_of_[static_cast<std::size_t>(a)] = b;
    reverse_of_[static_cast<std::size_t>(b)] = a;
  };

  ch.nvlink_dir.assign(n, std::vector<int>(n, -1));
  for (const auto& e : t.nvlinks) {
    const double cap = e.lanes * t.nvlink_lane_bw;
    const auto a = static_cast<std::size_t>(e.a);
    const auto b = static_cast<std::size_t>(e.b);
    // Bundles between a pair are unique per builder convention; sum lanes if
    // a custom topology lists duplicates.
    if (ch.nvlink_dir[a][b] == -1) {
      ch.nvlink_dir[a][b] = add_channel(
          prefix + "nvl." + std::to_string(e.a) + ">" + std::to_string(e.b),
          cap);
      ch.nvlink_dir[b][a] = add_channel(
          prefix + "nvl." + std::to_string(e.b) + ">" + std::to_string(e.a),
          cap);
      pair_up(ch.nvlink_dir[a][b], ch.nvlink_dir[b][a]);
    } else {
      capacity_[static_cast<std::size_t>(ch.nvlink_dir[a][b])] += cap;
      capacity_[static_cast<std::size_t>(ch.nvlink_dir[b][a])] += cap;
      base_capacity_[static_cast<std::size_t>(ch.nvlink_dir[a][b])] += cap;
      base_capacity_[static_cast<std::size_t>(ch.nvlink_dir[b][a])] += cap;
    }
  }

  if (t.has_nvswitch) {
    for (std::size_t g = 0; g < n; ++g) {
      ch.nvswitch_out.push_back(add_channel(
          prefix + "nvsw.out" + std::to_string(g), t.nvswitch_gpu_bw));
      ch.nvswitch_in.push_back(add_channel(
          prefix + "nvsw.in" + std::to_string(g), t.nvswitch_gpu_bw));
      pair_up(ch.nvswitch_out.back(), ch.nvswitch_in.back());
    }
  }

  if (!t.pcie.plx_of_gpu.empty()) {
    for (std::size_t g = 0; g < n; ++g) {
      ch.gpu_up.push_back(
          add_channel(prefix + "pcie.up" + std::to_string(g), t.pcie.gpu_bw));
      ch.gpu_down.push_back(add_channel(
          prefix + "pcie.down" + std::to_string(g), t.pcie.gpu_bw));
      pair_up(ch.gpu_up.back(), ch.gpu_down.back());
    }
    const auto num_plx = static_cast<std::size_t>(t.pcie.cpu_of_plx.size());
    for (std::size_t p = 0; p < num_plx; ++p) {
      ch.plx_up.push_back(
          add_channel(prefix + "plx.up" + std::to_string(p), t.pcie.plx_bw));
      ch.plx_down.push_back(add_channel(
          prefix + "plx.down" + std::to_string(p), t.pcie.plx_bw));
      pair_up(ch.plx_up.back(), ch.plx_down.back());
    }
    const int cpus = t.pcie.num_cpus();
    ch.qpi.assign(static_cast<std::size_t>(cpus),
                  std::vector<int>(static_cast<std::size_t>(cpus), -1));
    for (int a = 0; a < cpus; ++a) {
      for (int b = 0; b < cpus; ++b) {
        if (a != b) {
          ch.qpi[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
              add_channel(prefix + "qpi." + std::to_string(a) + ">" +
                              std::to_string(b),
                          t.pcie.qpi_bw);
        }
      }
    }
    for (int a = 0; a < cpus; ++a) {
      for (int b = a + 1; b < cpus; ++b) {
        const int ab =
            ch.qpi[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
        const int ba =
            ch.qpi[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)];
        if (ab != -1 && ba != -1) pair_up(ab, ba);
      }
    }
    for (int c = 0; c < cpus; ++c) {
      ch.sysmem.push_back(
          add_channel(prefix + "sysmem" + std::to_string(c),
                      params_.sysmem_bw));
    }
  }

  for (std::size_t g = 0; g < n; ++g) {
    ch.reduce.push_back(
        add_channel(prefix + "reduce" + std::to_string(g), params_.reduce_bw));
  }

  if (num_servers() > 1) {
    const double bw = nic_rate(s);
    building_nic_ = true;
    ch.nic_out = add_channel(prefix + "nic.out", bw);
    ch.nic_in = add_channel(prefix + "nic.in", bw);
    pair_up(ch.nic_out, ch.nic_in);
    building_nic_ = false;
  }
}

// --- health layer -----------------------------------------------------------

bool Fabric::gpu_failed(int server, int gpu) const {
  const int c = reduce_channel(server, gpu);
  return channel_failed(c);
}

void Fabric::fail_channel(int c, std::vector<int>* affected) {
  const auto i = static_cast<std::size_t>(c);
  if (health_[i] == 0.0) return;
  health_[i] = 0.0;
  capacity_[i] = 0.0;
  affected->push_back(c);
}

std::vector<int> Fabric::degrade_link(int channel, double factor) {
  if (channel < 0 || channel >= num_channels()) {
    throw std::invalid_argument("degrade_link: channel out of range");
  }
  if (!(factor > 0.0) || factor > 1.0) {
    throw std::invalid_argument("degrade_link: factor must be in (0, 1]");
  }
  if (channel_failed(channel)) {
    throw std::invalid_argument(
        "degrade_link: channel is failed (structural); use restore()");
  }
  const auto i = static_cast<std::size_t>(channel);
  health_[i] = factor;
  capacity_[i] = base_capacity_[i] * factor;
  ++epoch_;
  return {channel};
}

std::vector<int> Fabric::fail_link(int channel) {
  if (channel < 0 || channel >= num_channels()) {
    throw std::invalid_argument("fail_link: channel out of range");
  }
  std::vector<int> affected;
  fail_channel(channel, &affected);
  const int rev = reverse_of_[static_cast<std::size_t>(channel)];
  if (rev != -1) fail_channel(rev, &affected);
  ++epoch_;
  return affected;
}

std::vector<int> Fabric::fail_gpu(int server, int gpu) {
  if (server < 0 || server >= num_servers()) {
    throw std::invalid_argument("fail_gpu: server out of range");
  }
  const auto& t = servers_[static_cast<std::size_t>(server)];
  if (gpu < 0 || gpu >= t.num_gpus) {
    throw std::invalid_argument("fail_gpu: gpu out of range");
  }
  const auto& ch = ch_[static_cast<std::size_t>(server)];
  const auto g = static_cast<std::size_t>(gpu);
  std::vector<int> affected;
  const auto n = static_cast<std::size_t>(t.num_gpus);
  for (std::size_t other = 0; other < n; ++other) {
    if (ch.nvlink_dir[g][other] != -1) {
      fail_channel(ch.nvlink_dir[g][other], &affected);
    }
    if (ch.nvlink_dir[other][g] != -1) {
      fail_channel(ch.nvlink_dir[other][g], &affected);
    }
  }
  if (!ch.nvswitch_out.empty()) {
    fail_channel(ch.nvswitch_out[g], &affected);
    fail_channel(ch.nvswitch_in[g], &affected);
  }
  if (!ch.gpu_up.empty()) {
    fail_channel(ch.gpu_up[g], &affected);
    fail_channel(ch.gpu_down[g], &affected);
  }
  fail_channel(ch.reduce[g], &affected);
  std::sort(affected.begin(), affected.end());
  ++epoch_;
  return affected;
}

std::vector<int> Fabric::restore() {
  std::vector<int> affected;
  for (int c = 0; c < num_channels(); ++c) {
    const auto i = static_cast<std::size_t>(c);
    if (health_[i] != 1.0) {
      health_[i] = 1.0;
      capacity_[i] = base_capacity_[i];
      affected.push_back(c);
    }
  }
  ++epoch_;
  return affected;
}

std::vector<int> Fabric::apply(const HealthEvent& event) {
  switch (event.kind) {
    case HealthEventKind::kDegradeLink:
      return degrade_link(event.channel, event.factor);
    case HealthEventKind::kFailLink:
      return fail_link(event.channel);
    case HealthEventKind::kFailGpu:
      return fail_gpu(event.server, event.gpu);
    case HealthEventKind::kRestoreAll:
      return restore();
  }
  throw std::invalid_argument("apply: unknown health event kind");
}

std::uint64_t Fabric::component_fingerprint(int component) const {
  if (component < 0 || component >= num_components()) {
    throw std::invalid_argument("component_fingerprint: out of range");
  }
  const bool nic_tier = component == num_servers();
  ComponentHasher fp;
  fp.u64(static_cast<std::uint64_t>(component));
  for (int c = 0; c < num_channels(); ++c) {
    const auto i = static_cast<std::size_t>(c);
    const bool member = nic_tier ? nic_channel_[i] != 0
                                 : (channel_server_[i] == component &&
                                    nic_channel_[i] == 0);
    if (!member) continue;
    fp.u64(static_cast<std::uint64_t>(c));
    fp.f64(base_capacity_[i]);
    fp.f64(health_[i]);
  }
  return fp.h;
}

std::vector<std::uint64_t> Fabric::component_fingerprints() const {
  std::vector<std::uint64_t> fps;
  fps.reserve(static_cast<std::size_t>(num_components()));
  for (int comp = 0; comp < num_components(); ++comp) {
    fps.push_back(component_fingerprint(comp));
  }
  return fps;
}

topo::Topology Fabric::healthy_topology(int server) const {
  const auto s = static_cast<std::size_t>(server);
  topo::Topology t = servers_[s];
  const auto& ch = ch_[s];
  const auto dead = [&](const topo::NvlinkEdge& e) {
    const auto a = static_cast<std::size_t>(e.a);
    const auto b = static_cast<std::size_t>(e.b);
    if (gpu_failed(server, e.a) || gpu_failed(server, e.b)) return true;
    const int ab = ch.nvlink_dir[a][b];
    const int ba = ch.nvlink_dir[b][a];
    return (ab != -1 && channel_failed(ab)) || (ba != -1 && channel_failed(ba));
  };
  t.nvlinks.erase(std::remove_if(t.nvlinks.begin(), t.nvlinks.end(), dead),
                  t.nvlinks.end());
  return t;
}

// --- routes -----------------------------------------------------------------

double Fabric::nic_rate(int server) const {
  double base = params_.nic_bw;
  if (!params_.nic_bw_per_server.empty()) {
    base = params_.nic_bw_per_server[static_cast<std::size_t>(server)];
  }
  const int egress = ch_[static_cast<std::size_t>(server)].nic_out;
  if (egress == -1) return base;  // single-server fabric: no NIC channels
  return base * health_[static_cast<std::size_t>(egress)];
}

bool Fabric::heterogeneous_nics() const {
  for (const double bw : params_.nic_bw_per_server) {
    if (bw != params_.nic_bw) return true;
  }
  // A degraded or failed NIC breaks rate uniformity just like an override.
  for (const auto& ch : ch_) {
    if (ch.nic_out != -1 &&
        health_[static_cast<std::size_t>(ch.nic_out)] != 1.0) {
      return true;
    }
    if (ch.nic_in != -1 &&
        health_[static_cast<std::size_t>(ch.nic_in)] != 1.0) {
      return true;
    }
  }
  return false;
}

bool Fabric::nvlink_adjacent(int server, int src, int dst) const {
  const auto& t = servers_[static_cast<std::size_t>(server)];
  const auto& ch = ch_[static_cast<std::size_t>(server)];
  if (t.has_nvswitch) {
    return !channel_failed(ch.nvswitch_out[static_cast<std::size_t>(src)]) &&
           !channel_failed(ch.nvswitch_in[static_cast<std::size_t>(dst)]);
  }
  const int c = ch.nvlink_dir[static_cast<std::size_t>(src)]
                             [static_cast<std::size_t>(dst)];
  return c != -1 && !channel_failed(c);
}

std::vector<int> Fabric::nvlink_route(int server, int src, int dst) const {
  assert(src != dst);
  const auto& t = servers_[static_cast<std::size_t>(server)];
  const auto& ch = ch_[static_cast<std::size_t>(server)];
  if (t.has_nvswitch) {
    return {ch.nvswitch_out[static_cast<std::size_t>(src)],
            ch.nvswitch_in[static_cast<std::size_t>(dst)]};
  }
  const int c = ch.nvlink_dir[static_cast<std::size_t>(src)]
                             [static_cast<std::size_t>(dst)];
  assert(c != -1 && "nvlink_route requires NVLink adjacency");
  return {c};
}

std::vector<int> Fabric::pcie_route(int server, int src, int dst) const {
  assert(src != dst);
  const auto& t = servers_[static_cast<std::size_t>(server)];
  const auto& ch = ch_[static_cast<std::size_t>(server)];
  assert(!t.pcie.plx_of_gpu.empty() && "no PCIe modelled for this topology");

  std::vector<int> route{ch.gpu_up[static_cast<std::size_t>(src)]};
  const int plx_src = t.pcie.plx_of_gpu[static_cast<std::size_t>(src)];
  const int plx_dst = t.pcie.plx_of_gpu[static_cast<std::size_t>(dst)];
  if (plx_src != plx_dst) {
    route.push_back(ch.plx_up[static_cast<std::size_t>(plx_src)]);
    const int cpu_src = t.pcie.cpu_of_plx[static_cast<std::size_t>(plx_src)];
    const int cpu_dst = t.pcie.cpu_of_plx[static_cast<std::size_t>(plx_dst)];
    // Cross-PLX P2P is staged through a host buffer on the source socket.
    route.push_back(ch.sysmem[static_cast<std::size_t>(cpu_src)]);
    if (cpu_src != cpu_dst) {
      route.push_back(ch.qpi[static_cast<std::size_t>(cpu_src)]
                            [static_cast<std::size_t>(cpu_dst)]);
    }
    route.push_back(ch.plx_down[static_cast<std::size_t>(plx_dst)]);
  }
  route.push_back(ch.gpu_down[static_cast<std::size_t>(dst)]);
  return route;
}

int Fabric::reduce_channel(int server, int gpu) const {
  return ch_[static_cast<std::size_t>(server)]
      .reduce[static_cast<std::size_t>(gpu)];
}

std::vector<int> Fabric::pcie_to_host_route(int server, int gpu) const {
  const auto& t = servers_[static_cast<std::size_t>(server)];
  const auto& ch = ch_[static_cast<std::size_t>(server)];
  assert(!t.pcie.plx_of_gpu.empty());
  const int plx = t.pcie.plx_of_gpu[static_cast<std::size_t>(gpu)];
  const int cpu = t.pcie.cpu_of_plx[static_cast<std::size_t>(plx)];
  return {ch.gpu_up[static_cast<std::size_t>(gpu)],
          ch.plx_up[static_cast<std::size_t>(plx)],
          ch.sysmem[static_cast<std::size_t>(cpu)]};
}

std::vector<int> Fabric::pcie_from_host_route(int server, int gpu) const {
  const auto& t = servers_[static_cast<std::size_t>(server)];
  const auto& ch = ch_[static_cast<std::size_t>(server)];
  assert(!t.pcie.plx_of_gpu.empty());
  const int plx = t.pcie.plx_of_gpu[static_cast<std::size_t>(gpu)];
  const int cpu = t.pcie.cpu_of_plx[static_cast<std::size_t>(plx)];
  return {ch.sysmem[static_cast<std::size_t>(cpu)],
          ch.plx_down[static_cast<std::size_t>(plx)],
          ch.gpu_down[static_cast<std::size_t>(gpu)]};
}

std::vector<int> Fabric::nic_route(int src_server, int dst_server) const {
  assert(src_server != dst_server && num_servers() > 1);
  return {ch_[static_cast<std::size_t>(src_server)].nic_out,
          ch_[static_cast<std::size_t>(dst_server)].nic_in};
}

}  // namespace blink::sim
