#include "blink/sim/fabric.h"

#include <cassert>
#include <stdexcept>

namespace blink::sim {

Fabric::Fabric(const topo::Topology& topo, const FabricParams& params)
    : Fabric(std::vector<topo::Topology>{topo}, params) {}

Fabric::Fabric(const std::vector<topo::Topology>& servers,
               const FabricParams& params)
    : params_(params), servers_(servers) {
  if (servers_.empty()) {
    throw std::invalid_argument("fabric needs at least one server");
  }
  if (!params_.nic_bw_per_server.empty()) {
    if (params_.nic_bw_per_server.size() != servers_.size()) {
      throw std::invalid_argument(
          "nic_bw_per_server must have one entry per server");
    }
    for (const double bw : params_.nic_bw_per_server) {
      if (!(bw > 0.0)) {
        throw std::invalid_argument("nic_bw_per_server entries must be > 0");
      }
    }
  }
  ch_.resize(servers_.size());
  for (int s = 0; s < num_servers(); ++s) {
    std::string err;
    if (!servers_[static_cast<std::size_t>(s)].validate(&err)) {
      throw std::invalid_argument("invalid topology: " + err);
    }
    build_server(s);
  }
}

int Fabric::add_channel(std::string name, double capacity) {
  assert(capacity > 0.0);
  const int id = static_cast<int>(capacity_.size());
  capacity_.push_back(capacity);
  name_.push_back(std::move(name));
  return id;
}

void Fabric::build_server(int s) {
  const auto& t = servers_[static_cast<std::size_t>(s)];
  auto& ch = ch_[static_cast<std::size_t>(s)];
  const auto prefix = "s" + std::to_string(s) + ".";
  const auto n = static_cast<std::size_t>(t.num_gpus);

  ch.nvlink_dir.assign(n, std::vector<int>(n, -1));
  for (const auto& e : t.nvlinks) {
    const double cap = e.lanes * t.nvlink_lane_bw;
    const auto a = static_cast<std::size_t>(e.a);
    const auto b = static_cast<std::size_t>(e.b);
    // Bundles between a pair are unique per builder convention; sum lanes if
    // a custom topology lists duplicates.
    if (ch.nvlink_dir[a][b] == -1) {
      ch.nvlink_dir[a][b] = add_channel(
          prefix + "nvl." + std::to_string(e.a) + ">" + std::to_string(e.b),
          cap);
      ch.nvlink_dir[b][a] = add_channel(
          prefix + "nvl." + std::to_string(e.b) + ">" + std::to_string(e.a),
          cap);
    } else {
      capacity_[static_cast<std::size_t>(ch.nvlink_dir[a][b])] += cap;
      capacity_[static_cast<std::size_t>(ch.nvlink_dir[b][a])] += cap;
    }
  }

  if (t.has_nvswitch) {
    for (std::size_t g = 0; g < n; ++g) {
      ch.nvswitch_out.push_back(add_channel(
          prefix + "nvsw.out" + std::to_string(g), t.nvswitch_gpu_bw));
      ch.nvswitch_in.push_back(add_channel(
          prefix + "nvsw.in" + std::to_string(g), t.nvswitch_gpu_bw));
    }
  }

  if (!t.pcie.plx_of_gpu.empty()) {
    for (std::size_t g = 0; g < n; ++g) {
      ch.gpu_up.push_back(
          add_channel(prefix + "pcie.up" + std::to_string(g), t.pcie.gpu_bw));
      ch.gpu_down.push_back(add_channel(
          prefix + "pcie.down" + std::to_string(g), t.pcie.gpu_bw));
    }
    const auto num_plx = static_cast<std::size_t>(t.pcie.cpu_of_plx.size());
    for (std::size_t p = 0; p < num_plx; ++p) {
      ch.plx_up.push_back(
          add_channel(prefix + "plx.up" + std::to_string(p), t.pcie.plx_bw));
      ch.plx_down.push_back(add_channel(
          prefix + "plx.down" + std::to_string(p), t.pcie.plx_bw));
    }
    const int cpus = t.pcie.num_cpus();
    ch.qpi.assign(static_cast<std::size_t>(cpus),
                  std::vector<int>(static_cast<std::size_t>(cpus), -1));
    for (int a = 0; a < cpus; ++a) {
      for (int b = 0; b < cpus; ++b) {
        if (a != b) {
          ch.qpi[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
              add_channel(prefix + "qpi." + std::to_string(a) + ">" +
                              std::to_string(b),
                          t.pcie.qpi_bw);
        }
      }
    }
    for (int c = 0; c < cpus; ++c) {
      ch.sysmem.push_back(
          add_channel(prefix + "sysmem" + std::to_string(c),
                      params_.sysmem_bw));
    }
  }

  for (std::size_t g = 0; g < n; ++g) {
    ch.reduce.push_back(
        add_channel(prefix + "reduce" + std::to_string(g), params_.reduce_bw));
  }

  if (num_servers() > 1) {
    const double bw = nic_rate(s);
    ch.nic_out = add_channel(prefix + "nic.out", bw);
    ch.nic_in = add_channel(prefix + "nic.in", bw);
  }
}

double Fabric::nic_rate(int server) const {
  if (!params_.nic_bw_per_server.empty()) {
    return params_.nic_bw_per_server[static_cast<std::size_t>(server)];
  }
  return params_.nic_bw;
}

bool Fabric::heterogeneous_nics() const {
  for (const double bw : params_.nic_bw_per_server) {
    if (bw != params_.nic_bw) return true;
  }
  return false;
}

bool Fabric::nvlink_adjacent(int server, int src, int dst) const {
  const auto& t = servers_[static_cast<std::size_t>(server)];
  if (t.has_nvswitch) return true;
  const auto& ch = ch_[static_cast<std::size_t>(server)];
  return ch.nvlink_dir[static_cast<std::size_t>(src)]
                      [static_cast<std::size_t>(dst)] != -1;
}

std::vector<int> Fabric::nvlink_route(int server, int src, int dst) const {
  assert(src != dst);
  const auto& t = servers_[static_cast<std::size_t>(server)];
  const auto& ch = ch_[static_cast<std::size_t>(server)];
  if (t.has_nvswitch) {
    return {ch.nvswitch_out[static_cast<std::size_t>(src)],
            ch.nvswitch_in[static_cast<std::size_t>(dst)]};
  }
  const int c = ch.nvlink_dir[static_cast<std::size_t>(src)]
                             [static_cast<std::size_t>(dst)];
  assert(c != -1 && "nvlink_route requires NVLink adjacency");
  return {c};
}

std::vector<int> Fabric::pcie_route(int server, int src, int dst) const {
  assert(src != dst);
  const auto& t = servers_[static_cast<std::size_t>(server)];
  const auto& ch = ch_[static_cast<std::size_t>(server)];
  assert(!t.pcie.plx_of_gpu.empty() && "no PCIe modelled for this topology");

  std::vector<int> route{ch.gpu_up[static_cast<std::size_t>(src)]};
  const int plx_src = t.pcie.plx_of_gpu[static_cast<std::size_t>(src)];
  const int plx_dst = t.pcie.plx_of_gpu[static_cast<std::size_t>(dst)];
  if (plx_src != plx_dst) {
    route.push_back(ch.plx_up[static_cast<std::size_t>(plx_src)]);
    const int cpu_src = t.pcie.cpu_of_plx[static_cast<std::size_t>(plx_src)];
    const int cpu_dst = t.pcie.cpu_of_plx[static_cast<std::size_t>(plx_dst)];
    // Cross-PLX P2P is staged through a host buffer on the source socket.
    route.push_back(ch.sysmem[static_cast<std::size_t>(cpu_src)]);
    if (cpu_src != cpu_dst) {
      route.push_back(ch.qpi[static_cast<std::size_t>(cpu_src)]
                            [static_cast<std::size_t>(cpu_dst)]);
    }
    route.push_back(ch.plx_down[static_cast<std::size_t>(plx_dst)]);
  }
  route.push_back(ch.gpu_down[static_cast<std::size_t>(dst)]);
  return route;
}

int Fabric::reduce_channel(int server, int gpu) const {
  return ch_[static_cast<std::size_t>(server)]
      .reduce[static_cast<std::size_t>(gpu)];
}

std::vector<int> Fabric::pcie_to_host_route(int server, int gpu) const {
  const auto& t = servers_[static_cast<std::size_t>(server)];
  const auto& ch = ch_[static_cast<std::size_t>(server)];
  assert(!t.pcie.plx_of_gpu.empty());
  const int plx = t.pcie.plx_of_gpu[static_cast<std::size_t>(gpu)];
  const int cpu = t.pcie.cpu_of_plx[static_cast<std::size_t>(plx)];
  return {ch.gpu_up[static_cast<std::size_t>(gpu)],
          ch.plx_up[static_cast<std::size_t>(plx)],
          ch.sysmem[static_cast<std::size_t>(cpu)]};
}

std::vector<int> Fabric::pcie_from_host_route(int server, int gpu) const {
  const auto& t = servers_[static_cast<std::size_t>(server)];
  const auto& ch = ch_[static_cast<std::size_t>(server)];
  assert(!t.pcie.plx_of_gpu.empty());
  const int plx = t.pcie.plx_of_gpu[static_cast<std::size_t>(gpu)];
  const int cpu = t.pcie.cpu_of_plx[static_cast<std::size_t>(plx)];
  return {ch.sysmem[static_cast<std::size_t>(cpu)],
          ch.plx_down[static_cast<std::size_t>(plx)],
          ch.gpu_down[static_cast<std::size_t>(gpu)]};
}

std::vector<int> Fabric::nic_route(int src_server, int dst_server) const {
  assert(src_server != dst_server && num_servers() > 1);
  return {ch_[static_cast<std::size_t>(src_server)].nic_out,
          ch_[static_cast<std::size_t>(dst_server)].nic_in};
}

}  // namespace blink::sim
