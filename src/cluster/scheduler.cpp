#include "blink/cluster/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

namespace blink::cluster {

double AllocationStats::percent(int k) const {
  if (multi_gpu_jobs == 0) return 0.0;
  long placements = 0;
  for (const long count : histogram) placements += count;
  if (placements == 0) return 0.0;
  return 100.0 * static_cast<double>(histogram[static_cast<std::size_t>(k)]) /
         static_cast<double>(placements);
}

AllocationStats simulate_cluster(const SchedulerConfig& config, Rng& rng) {
  assert(config.num_servers > 0 && config.gpus_per_server > 0);
  AllocationStats stats;
  stats.histogram.assign(static_cast<std::size_t>(config.gpus_per_server) + 1,
                         0);

  std::vector<int> free_gpus(static_cast<std::size_t>(config.num_servers),
                             config.gpus_per_server);

  struct Departure {
    double time;
    std::vector<std::pair<int, int>> placement;  // (server, gpus)
    bool operator>(const Departure& other) const { return time > other.time; }
  };
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>> queue;

  const std::vector<double> weights{config.p_request_1, config.p_request_2,
                                    config.p_request_4, config.p_request_8,
                                    config.p_request_16};
  const std::array<int, 5> sizes{1, 2, 4, 8, 16};

  double now = 0.0;
  for (int j = 0; j < config.num_jobs; ++j) {
    now += -config.mean_interarrival * std::log(1.0 - rng.next_double());
    while (!queue.empty() && queue.top().time <= now) {
      for (const auto& [server, gpus] : queue.top().placement) {
        free_gpus[static_cast<std::size_t>(server)] += gpus;
      }
      queue.pop();
    }

    const int request = sizes[rng.next_weighted(weights)];
    int total_free = 0;
    for (const int f : free_gpus) total_free += f;
    if (total_free < request) continue;  // job queues; skip for the census

    // First fit: prefer one server that can host the whole job, else pack
    // fragments across the servers with the most free GPUs.
    std::vector<std::pair<int, int>> placement;
    int best = -1;
    for (int s = 0; s < config.num_servers; ++s) {
      const int f = free_gpus[static_cast<std::size_t>(s)];
      if (f >= request && (best == -1 ||
                           f < free_gpus[static_cast<std::size_t>(best)])) {
        best = s;  // tightest fit limits future fragmentation
      }
    }
    if (best != -1 && request <= config.gpus_per_server) {
      placement.push_back({best, request});
      free_gpus[static_cast<std::size_t>(best)] -= request;
    } else {
      int remaining = request;
      std::vector<int> order(static_cast<std::size_t>(config.num_servers));
      for (int s = 0; s < config.num_servers; ++s) {
        order[static_cast<std::size_t>(s)] = s;
      }
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return free_gpus[static_cast<std::size_t>(a)] >
               free_gpus[static_cast<std::size_t>(b)];
      });
      for (const int s : order) {
        if (remaining == 0) break;
        const int take =
            std::min(remaining, free_gpus[static_cast<std::size_t>(s)]);
        if (take > 0) {
          placement.push_back({s, take});
          free_gpus[static_cast<std::size_t>(s)] -= take;
          remaining -= take;
        }
      }
      assert(remaining == 0);
    }

    if (request > 1) {
      ++stats.multi_gpu_jobs;
      if (placement.size() > 1) ++stats.fragmented_jobs;
      for (const auto& [server, gpus] : placement) {
        ++stats.histogram[static_cast<std::size_t>(gpus)];
      }
    }

    const double duration =
        -config.mean_duration * std::log(1.0 - rng.next_double());
    queue.push({now + duration, std::move(placement)});
  }
  return stats;
}

}  // namespace blink::cluster
