#include "blink/solver/ilp.h"

#include <cassert>
#include <cmath>

namespace blink::solver {
namespace {

constexpr double kIntEps = 1e-6;

class BranchAndBound {
 public:
  BranchAndBound(const LpProblem& lp, const IlpOptions& options)
      : lp_(lp), options_(options) {
    const std::size_t n = lp.num_vars();
    fixed_.assign(n, -1);
    best_.feasible = true;  // x = 0 is feasible
    best_.objective = 0.0;
    best_.x.assign(n, 0.0);
  }

  IlpSolution run() {
    explore();
    return best_;
  }

 private:
  void explore() {
    if (++nodes_ > options_.max_nodes) return;

    // Substitute fixed variables into the RHS.
    const std::size_t n = lp_.num_vars();
    const std::size_t m = lp_.num_rows();
    std::vector<double> rhs = lp_.b;
    double base = 0.0;
    std::vector<std::size_t> free_vars;
    for (std::size_t j = 0; j < n; ++j) {
      if (fixed_[j] == 1) {
        base += lp_.c[j];
        for (std::size_t i = 0; i < m; ++i) rhs[i] -= lp_.a[i][j];
      } else if (fixed_[j] == -1) {
        free_vars.push_back(j);
      }
    }
    for (const double r : rhs) {
      if (r < -kIntEps) return;  // A >= 0: no completion can recover
    }

    // LP relaxation over the free variables with x <= 1 bounds.
    LpProblem relax;
    relax.c.reserve(free_vars.size());
    for (const std::size_t j : free_vars) relax.c.push_back(lp_.c[j]);
    relax.a.assign(m, {});
    for (std::size_t i = 0; i < m; ++i) {
      relax.a[i].reserve(free_vars.size());
      for (const std::size_t j : free_vars) relax.a[i].push_back(lp_.a[i][j]);
      relax.b.push_back(std::max(rhs[i], 0.0));
    }
    for (std::size_t k = 0; k < free_vars.size(); ++k) {
      std::vector<double> bound_row(free_vars.size(), 0.0);
      bound_row[k] = 1.0;
      relax.a.push_back(std::move(bound_row));
      relax.b.push_back(1.0);
    }
    const LpSolution sol = solve_lp(relax);
    assert(sol.status == LpStatus::kOptimal);  // bounded by x <= 1

    const double upper = base + sol.objective;
    if (upper <= best_.objective + kIntEps) return;

    // Most-fractional branching variable.
    std::size_t branch = free_vars.size();
    double most_fractional = kIntEps;
    for (std::size_t k = 0; k < free_vars.size(); ++k) {
      const double f = std::fabs(sol.x[k] - std::round(sol.x[k]));
      if (f > most_fractional) {
        most_fractional = f;
        branch = k;
      }
    }

    if (branch == free_vars.size()) {
      // Integral: new incumbent (bound check above guarantees improvement).
      best_.objective = upper;
      for (std::size_t j = 0; j < n; ++j) {
        best_.x[j] = fixed_[j] == 1 ? 1.0 : 0.0;
      }
      for (std::size_t k = 0; k < free_vars.size(); ++k) {
        best_.x[free_vars[k]] = std::round(sol.x[k]);
      }
      return;
    }

    const std::size_t j = free_vars[branch];
    fixed_[j] = 1;  // packing: try including the tree first
    explore();
    fixed_[j] = 0;
    explore();
    fixed_[j] = -1;
  }

  const LpProblem& lp_;
  const IlpOptions& options_;
  std::vector<int> fixed_;
  IlpSolution best_;
  int nodes_ = 0;
};

}  // namespace

IlpSolution solve_01(const LpProblem& lp, const IlpOptions& options) {
  assert(lp.well_formed());
#ifndef NDEBUG
  for (const auto& row : lp.a) {
    for (const double v : row) assert(v >= 0.0);
  }
  for (const double v : lp.c) assert(v >= 0.0);
#endif
  return BranchAndBound(lp, options).run();
}

}  // namespace blink::solver
