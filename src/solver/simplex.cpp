#include "blink/solver/simplex.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace blink::solver {
namespace {

constexpr double kEps = 1e-9;

}  // namespace

bool LpProblem::well_formed() const {
  if (a.size() != b.size()) return false;
  for (const auto& row : a) {
    if (row.size() != c.size()) return false;
  }
  for (const double rhs : b) {
    if (rhs < 0.0 || !std::isfinite(rhs)) return false;
  }
  return true;
}

LpSolution solve_lp(const LpProblem& lp) {
  assert(lp.well_formed());
  const std::size_t n = lp.num_vars();
  const std::size_t m = lp.num_rows();

  // Tableau with slack columns: rows 0..m-1 are constraints, row m is the
  // objective (stored negated so that a positive entry means "improving").
  const std::size_t width = n + m + 1;
  std::vector<std::vector<double>> t(m + 1, std::vector<double>(width, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t[i][j] = lp.a[i][j];
    t[i][n + i] = 1.0;
    t[i][width - 1] = lp.b[i];
  }
  for (std::size_t j = 0; j < n; ++j) t[m][j] = lp.c[j];

  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) basis[i] = n + i;

  while (true) {
    // Bland's rule: smallest-index column with positive reduced objective.
    std::size_t pivot_col = width;
    for (std::size_t j = 0; j + 1 < width; ++j) {
      if (t[m][j] > kEps) {
        pivot_col = j;
        break;
      }
    }
    if (pivot_col == width) break;  // optimal

    // Ratio test, ties broken by smallest basis index (Bland).
    std::size_t pivot_row = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      if (t[i][pivot_col] > kEps) {
        const double ratio = t[i][width - 1] / t[i][pivot_col];
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps &&
             (pivot_row == m || basis[i] < basis[pivot_row]))) {
          best_ratio = ratio;
          pivot_row = i;
        }
      }
    }
    if (pivot_row == m) {
      return {LpStatus::kUnbounded, std::numeric_limits<double>::infinity(),
              {}};
    }

    // Pivot.
    const double pv = t[pivot_row][pivot_col];
    for (std::size_t j = 0; j < width; ++j) t[pivot_row][j] /= pv;
    for (std::size_t i = 0; i <= m; ++i) {
      if (i == pivot_row) continue;
      const double factor = t[i][pivot_col];
      if (std::fabs(factor) < kEps) continue;
      for (std::size_t j = 0; j < width; ++j) {
        t[i][j] -= factor * t[pivot_row][j];
      }
    }
    basis[pivot_row] = pivot_col;
  }

  LpSolution sol;
  sol.status = LpStatus::kOptimal;
  sol.x.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < n) sol.x[basis[i]] = t[i][width - 1];
  }
  sol.objective = 0.0;
  for (std::size_t j = 0; j < n; ++j) sol.objective += lp.c[j] * sol.x[j];
  return sol;
}

}  // namespace blink::solver
