#include "blink/baselines/ring.h"

#include <cassert>
#include <numeric>

namespace blink::baselines {

RingPlan build_ring_plan(const topo::Topology& topo) {
  RingPlan plan;
  if (topo.has_nvswitch) {
    // Non-blocking crossbar: NCCL builds one ring per NVLink lane (6 on the
    // DGX-2), all in id order.
    graph::Ring ring;
    ring.order.resize(static_cast<std::size_t>(topo.num_gpus));
    std::iota(ring.order.begin(), ring.order.end(), 0);
    plan.rings.assign(6, ring);
    plan.link = topo::LinkType::kNVLink;
    return plan;
  }
  plan.rings = graph::max_disjoint_rings(topo);
  if (!plan.rings.empty()) {
    plan.link = topo::LinkType::kNVLink;
    return plan;
  }
  // No NVLink-only ring covers the allocation: fall back to one PCIe ring
  // (the Figure 2b situation).
  graph::Ring ring;
  ring.order.resize(static_cast<std::size_t>(topo.num_gpus));
  std::iota(ring.order.begin(), ring.order.end(), 0);
  plan.rings.push_back(std::move(ring));
  plan.link = topo::LinkType::kPCIe;
  return plan;
}

namespace {

std::vector<int> route_between(const sim::Fabric& fabric, int server, int src,
                               int dst, topo::LinkType link) {
  return link == topo::LinkType::kPCIe ? fabric.pcie_route(server, src, dst)
                                       : fabric.nvlink_route(server, src, dst);
}

}  // namespace

RoutedTree ring_chain_tree(const sim::Fabric& fabric, int server,
                           const graph::Ring& ring, int root, bool forward,
                           topo::LinkType link) {
  const int n = static_cast<int>(ring.order.size());
  int pos = 0;
  while (ring.order[static_cast<std::size_t>(pos)] != root) ++pos;

  RoutedTree tree;
  tree.server = server;
  tree.root = root;
  tree.weight = 1.0;
  int prev = root;
  for (int i = 1; i < n; ++i) {
    const int idx = forward ? (pos + i) % n : (pos - i % n + n) % n;
    const int gpu = ring.order[static_cast<std::size_t>(idx)];
    RoutedTree::Hop hop;
    hop.child = gpu;
    hop.parent = prev;
    hop.depth = i;
    hop.down_route = route_between(fabric, server, prev, gpu, link);
    hop.up_route = route_between(fabric, server, gpu, prev, link);
    tree.hops.push_back(std::move(hop));
    prev = gpu;
  }
  return tree;
}

void append_ring_broadcast(ProgramBuilder& builder, const sim::Fabric& fabric,
                           int server, const RingPlan& plan, double bytes,
                           int root) {
  assert(!plan.rings.empty());
  std::vector<RoutedTree> chains;
  for (const auto& ring : plan.rings) {
    chains.push_back(
        ring_chain_tree(fabric, server, ring, root, /*forward=*/true,
                        plan.link));
    chains.push_back(
        ring_chain_tree(fabric, server, ring, root, /*forward=*/false,
                        plan.link));
  }
  builder.broadcast(chains, bytes);
}

void append_ring_all_reduce(ProgramBuilder& builder, const sim::Fabric& fabric,
                            int server, const RingPlan& plan, double bytes) {
  assert(!plan.rings.empty());
  const int num_directed = plan.num_directed();
  int ring_tag = 0;
  for (const auto& ring : plan.rings) {
    for (const bool forward : {true, false}) {
      const int n = static_cast<int>(ring.order.size());
      const double ring_bytes = bytes / num_directed;
      const double block = ring_bytes / n;
      auto gpu_at = [&](int idx) {
        const int wrapped = ((idx % n) + n) % n;
        const int pos = forward ? wrapped : n - 1 - wrapped;
        return ring.order[static_cast<std::size_t>(pos)];
      };
      // Blocks circulate 2(n-1) steps: n-1 reduce-scatter (with kernels),
      // n-1 all-gather (copy only). Each directed ring edge gets one stream
      // (via the stream tag). Emission is *step-major* so each link stream
      // sees ops in wall-clock order; block-major order would make a
      // block's second lap head-of-line-block other blocks' first laps.
      std::vector<int> prev_op(static_cast<std::size_t>(n), -1);
      for (int s = 0; s < 2 * (n - 1); ++s) {
        for (int b = 0; b < n; ++b) {
          const int from_idx = b + s;
          const int from = gpu_at(from_idx);
          const int to = gpu_at(from_idx + 1);
          std::vector<int> gates;
          if (prev_op[static_cast<std::size_t>(b)] >= 0) {
            gates.push_back(prev_op[static_cast<std::size_t>(b)]);
          }
          auto done = builder.copy_chunks(
              route_between(fabric, server, from, to, plan.link), block, 1,
              /*stream_tag=*/(ring_tag << 8) | (((from_idx % n) + n) % n),
              gates);
          int op = done.back();
          if (s < n - 1) {
            // Reduce-scatter phase: combine with the local block at |to|.
            op = builder.reduce_kernel(server, to, 2.0 * block, {op});
          }
          prev_op[static_cast<std::size_t>(b)] = op;
        }
      }
      ++ring_tag;
    }
  }
}

}  // namespace blink::baselines
