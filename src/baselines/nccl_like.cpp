#include "blink/baselines/nccl_like.h"

#include <cassert>
#include <utility>

#include "blink/baselines/backends.h"
#include "blink/sim/executor.h"

namespace blink::baselines {

sim::FabricParams apply_persistent_kernel_model(sim::FabricParams params) {
  params.copy_launch_latency = 1e-6;
  params.reduce_launch_latency = 1e-6;
  params.event_sync_latency = 2e-6;
  return params;
}

NcclCommunicator::NcclCommunicator(topo::Topology topo, NcclOptions options)
    : CollectiveEngine(
          std::move(topo),
          options.persistent_kernel_model
              ? apply_persistent_kernel_model(options.fabric)
              : options.fabric,
          EngineOptions{options.memoize, options.plan_cache_capacity,
                        options.plan_store_dir, options.planner_threads}) {
  auto backend = std::make_unique<NcclRingBackend>(topology(), fabric(),
                                                   std::move(options));
  backend_ = backend.get();
  register_backend(std::move(backend));
}

const RingPlan& NcclCommunicator::ring_plan() const {
  return backend_->ring_plan();
}

CollectiveResult multi_server_ring_all_reduce(
    const std::vector<topo::Topology>& servers, double bytes,
    const NcclOptions& options) {
  assert(servers.size() >= 2);
  const sim::Fabric fabric(servers,
                           options.persistent_kernel_model
                               ? apply_persistent_kernel_model(options.fabric)
                               : options.fabric);

  // Global ring: (server, gpu) in id order.
  struct Stop {
    int server;
    int gpu;
  };
  std::vector<Stop> ring;
  for (int s = 0; s < fabric.num_servers(); ++s) {
    for (int g = 0; g < fabric.server(s).num_gpus; ++g) {
      ring.push_back({s, g});
    }
  }
  const int n = static_cast<int>(ring.size());
  assert(n >= 2);

  auto hop_route = [&](const Stop& from, const Stop& to) {
    std::vector<int> route;
    if (from.server == to.server) {
      if (fabric.nvlink_adjacent(from.server, from.gpu, to.gpu) &&
          !fabric.server(from.server).nvlinks.empty()) {
        return fabric.nvlink_route(from.server, from.gpu, to.gpu);
      }
      if (fabric.server(from.server).has_nvswitch) {
        return fabric.nvlink_route(from.server, from.gpu, to.gpu);
      }
      return fabric.pcie_route(from.server, from.gpu, to.gpu);
    }
    // Cross-machine: PCIe up to the host, NIC, PCIe back down.
    route = fabric.pcie_to_host_route(from.server, from.gpu);
    const auto nic = fabric.nic_route(from.server, to.server);
    route.insert(route.end(), nic.begin(), nic.end());
    const auto down = fabric.pcie_from_host_route(to.server, to.gpu);
    route.insert(route.end(), down.begin(), down.end());
    return route;
  };

  ProgramBuilder builder(fabric, options.codegen);
  // Bi-directional ring pair, reduce-scatter + all-gather blocks as in the
  // single-server case.
  const int num_directed = 2;
  for (const bool forward : {true, false}) {
    const double ring_bytes = bytes / num_directed;
    const double block = ring_bytes / n;
    auto stop_at = [&](int idx) {
      const int wrapped = ((idx % n) + n) % n;
      return ring[static_cast<std::size_t>(forward ? wrapped
                                                   : n - 1 - wrapped)];
    };
    // Step-major emission (see ring.cpp): link streams must observe ops in
    // wall-clock order.
    std::vector<int> prev_op(static_cast<std::size_t>(n), -1);
    for (int s = 0; s < 2 * (n - 1); ++s) {
      for (int b = 0; b < n; ++b) {
        const Stop from = stop_at(b + s);
        const Stop to = stop_at(b + s + 1);
        std::vector<int> gates;
        if (prev_op[static_cast<std::size_t>(b)] >= 0) {
          gates.push_back(prev_op[static_cast<std::size_t>(b)]);
        }
        const auto done = builder.copy_chunks(
            hop_route(from, to), block, 1,
            /*stream_tag=*/(forward ? 0 : 1) << 16 | (((b + s) % n + n) % n),
            gates);
        int op = done.back();
        if (s < n - 1) {
          op = builder.reduce_kernel(to.server, to.gpu, 2.0 * block, {op});
        }
        prev_op[static_cast<std::size_t>(b)] = op;
      }
    }
  }

  const sim::Program program = builder.take();
  CollectiveResult result;
  result.bytes = bytes;
  result.num_trees = num_directed;
  result.num_ops = static_cast<int>(program.ops().size());
  const auto run_result = sim::execute(fabric, program);
  result.seconds = run_result.makespan;
  result.algorithm_bw = run_result.throughput(bytes);
  return result;
}

}  // namespace blink::baselines
