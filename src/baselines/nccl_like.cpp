#include "blink/baselines/nccl_like.h"

#include <cassert>
#include <stdexcept>

#include "blink/baselines/double_binary_tree.h"

namespace blink::baselines {

sim::FabricParams apply_persistent_kernel_model(sim::FabricParams params) {
  params.copy_launch_latency = 1e-6;
  params.reduce_launch_latency = 1e-6;
  params.event_sync_latency = 2e-6;
  return params;
}

NcclCommunicator::NcclCommunicator(topo::Topology topo, NcclOptions options)
    : topo_(std::move(topo)),
      options_(std::move(options)),
      fabric_(topo_, options_.persistent_kernel_model
                         ? apply_persistent_kernel_model(options_.fabric)
                         : options_.fabric),
      plan_(build_ring_plan(topo_)) {
  std::string err;
  if (!topo_.validate(&err)) {
    throw std::invalid_argument("invalid topology: " + err);
  }
}

CollectiveResult NcclCommunicator::run(int kind, double bytes, int root) {
  const auto key = std::make_tuple(kind, root,
                                   static_cast<std::uint64_t>(bytes));
  if (options_.memoize) {
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
  }

  ProgramBuilder builder(fabric_, options_.codegen);
  CollectiveResult result;
  result.bytes = bytes;
  // Directed rings are chain trees from the root's perspective, so the ring
  // variants of gather/reduce/allgather reuse the tree emitters directly.
  auto ring_chains = [&](int chain_root) {
    std::vector<RoutedTree> chains;
    for (const auto& ring : plan_.rings) {
      chains.push_back(ring_chain_tree(fabric_, 0, ring, chain_root,
                                       /*forward=*/true, plan_.link));
      chains.push_back(ring_chain_tree(fabric_, 0, ring, chain_root,
                                       /*forward=*/false, plan_.link));
    }
    return chains;
  };
  switch (kind) {
    case 0:
      append_ring_broadcast(builder, fabric_, 0, plan_, bytes, root);
      result.num_trees = plan_.num_directed();
      break;
    case 1:
      if (topo_.has_nvswitch && bytes < options_.tree_threshold_bytes &&
          topo_.num_gpus >= 4) {
        append_double_binary_all_reduce(builder, fabric_, 0, bytes);
        result.num_trees = 2;
      } else {
        append_ring_all_reduce(builder, fabric_, 0, plan_, bytes);
        result.num_trees = plan_.num_directed();
      }
      break;
    case 2:
      builder.gather(ring_chains(root), bytes);
      result.num_trees = plan_.num_directed();
      break;
    case 3:
      builder.reduce(ring_chains(root), bytes);
      result.num_trees = plan_.num_directed();
      break;
    case 4:
      builder.all_gather(ring_chains(root), bytes);
      result.num_trees = plan_.num_directed();
      break;
    default:
      break;
  }
  const sim::Program program = builder.take();
  result.num_ops = static_cast<int>(program.ops().size());
  result.num_chunks = builder.chunks_for(bytes / plan_.num_directed());
  const auto run_result = sim::execute(fabric_, program);
  result.seconds = run_result.makespan;
  result.algorithm_bw = run_result.throughput(bytes);
  if (options_.memoize) memo_[key] = result;
  return result;
}

CollectiveResult NcclCommunicator::broadcast(double bytes, int root) {
  return run(0, bytes, root);
}

CollectiveResult NcclCommunicator::all_reduce(double bytes) {
  return run(1, bytes, 0);
}

CollectiveResult NcclCommunicator::gather(double bytes, int root) {
  return run(2, bytes, root);
}

CollectiveResult NcclCommunicator::reduce(double bytes, int root) {
  return run(3, bytes, root);
}

CollectiveResult NcclCommunicator::all_gather(double bytes) {
  return run(4, bytes, 0);
}

CollectiveResult multi_server_ring_all_reduce(
    const std::vector<topo::Topology>& servers, double bytes,
    const NcclOptions& options) {
  assert(servers.size() >= 2);
  const sim::Fabric fabric(servers,
                           options.persistent_kernel_model
                               ? apply_persistent_kernel_model(options.fabric)
                               : options.fabric);

  // Global ring: (server, gpu) in id order.
  struct Stop {
    int server;
    int gpu;
  };
  std::vector<Stop> ring;
  for (int s = 0; s < fabric.num_servers(); ++s) {
    for (int g = 0; g < fabric.server(s).num_gpus; ++g) {
      ring.push_back({s, g});
    }
  }
  const int n = static_cast<int>(ring.size());
  assert(n >= 2);

  auto hop_route = [&](const Stop& from, const Stop& to) {
    std::vector<int> route;
    if (from.server == to.server) {
      if (fabric.nvlink_adjacent(from.server, from.gpu, to.gpu) &&
          !fabric.server(from.server).nvlinks.empty()) {
        return fabric.nvlink_route(from.server, from.gpu, to.gpu);
      }
      if (fabric.server(from.server).has_nvswitch) {
        return fabric.nvlink_route(from.server, from.gpu, to.gpu);
      }
      return fabric.pcie_route(from.server, from.gpu, to.gpu);
    }
    // Cross-machine: PCIe up to the host, NIC, PCIe back down.
    route = fabric.pcie_to_host_route(from.server, from.gpu);
    const auto nic = fabric.nic_route(from.server, to.server);
    route.insert(route.end(), nic.begin(), nic.end());
    const auto down = fabric.pcie_from_host_route(to.server, to.gpu);
    route.insert(route.end(), down.begin(), down.end());
    return route;
  };

  ProgramBuilder builder(fabric, options.codegen);
  // Bi-directional ring pair, reduce-scatter + all-gather blocks as in the
  // single-server case.
  const int num_directed = 2;
  for (const bool forward : {true, false}) {
    const double ring_bytes = bytes / num_directed;
    const double block = ring_bytes / n;
    auto stop_at = [&](int idx) {
      const int wrapped = ((idx % n) + n) % n;
      return ring[static_cast<std::size_t>(forward ? wrapped
                                                   : n - 1 - wrapped)];
    };
    // Step-major emission (see ring.cpp): link streams must observe ops in
    // wall-clock order.
    std::vector<int> prev_op(static_cast<std::size_t>(n), -1);
    for (int s = 0; s < 2 * (n - 1); ++s) {
      for (int b = 0; b < n; ++b) {
        const Stop from = stop_at(b + s);
        const Stop to = stop_at(b + s + 1);
        std::vector<int> gates;
        if (prev_op[static_cast<std::size_t>(b)] >= 0) {
          gates.push_back(prev_op[static_cast<std::size_t>(b)]);
        }
        const auto done = builder.copy_chunks(
            hop_route(from, to), block, 1,
            /*stream_tag=*/(forward ? 0 : 1) << 16 | (((b + s) % n + n) % n),
            gates);
        int op = done.back();
        if (s < n - 1) {
          op = builder.reduce_kernel(to.server, to.gpu, 2.0 * block, {op});
        }
        prev_op[static_cast<std::size_t>(b)] = op;
      }
    }
  }

  const sim::Program program = builder.take();
  CollectiveResult result;
  result.bytes = bytes;
  result.num_trees = num_directed;
  result.num_ops = static_cast<int>(program.ops().size());
  const auto run_result = sim::execute(fabric, program);
  result.seconds = run_result.makespan;
  result.algorithm_bw = run_result.throughput(bytes);
  return result;
}

}  // namespace blink::baselines
