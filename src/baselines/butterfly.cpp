#include "blink/baselines/butterfly.h"

#include <cassert>

namespace blink::baselines {

bool butterfly_supported(const sim::Fabric& fabric, int server) {
  const auto& t = fabric.server(server);
  const int n = t.num_gpus;
  if (n < 2 || (n & (n - 1)) != 0) return false;
  if (t.has_nvswitch) return true;
  // Clique check: every exchange partner pair must be NVLink-adjacent.
  for (int round = 1; round < n; round <<= 1) {
    for (int g = 0; g < n; ++g) {
      if (!fabric.nvlink_adjacent(server, g, g ^ round)) return false;
    }
  }
  return true;
}

void append_butterfly_all_reduce(ProgramBuilder& builder,
                                 const sim::Fabric& fabric, int server,
                                 double bytes) {
  assert(butterfly_supported(fabric, server));
  const int n = fabric.server(server).num_gpus;

  // Per-GPU op that must finish before its next round (the reduction of the
  // previous exchange).
  std::vector<int> ready(static_cast<std::size_t>(n), -1);

  // Reduce-scatter by recursive halving: round k exchanges bytes / 2^(k+1).
  int tag = 0;
  double volume = bytes / 2.0;
  for (int dist = 1; dist < n; dist <<= 1) {
    std::vector<int> next(static_cast<std::size_t>(n), -1);
    for (int g = 0; g < n; ++g) {
      const int partner = g ^ dist;
      std::vector<int> gates;
      if (ready[static_cast<std::size_t>(g)] >= 0) {
        gates.push_back(ready[static_cast<std::size_t>(g)]);
      }
      const auto done =
          builder.copy_chunks(fabric.nvlink_route(server, g, partner), volume,
                              1, /*stream_tag=*/(tag << 8) | g, gates);
      // Partner reduces what it received with its own half.
      std::vector<int> deps{done.back()};
      if (ready[static_cast<std::size_t>(partner)] >= 0) {
        deps.push_back(ready[static_cast<std::size_t>(partner)]);
      }
      next[static_cast<std::size_t>(partner)] =
          builder.reduce_kernel(server, partner, 2.0 * volume, std::move(deps));
    }
    ready = std::move(next);
    volume /= 2.0;
    ++tag;
  }

  // All-gather by recursive doubling: volumes grow back.
  volume = bytes / n;
  for (int dist = n >> 1; dist >= 1; dist >>= 1) {
    std::vector<int> next(static_cast<std::size_t>(n), -1);
    for (int g = 0; g < n; ++g) {
      const int partner = g ^ dist;
      std::vector<int> gates;
      if (ready[static_cast<std::size_t>(g)] >= 0) {
        gates.push_back(ready[static_cast<std::size_t>(g)]);
      }
      const auto done =
          builder.copy_chunks(fabric.nvlink_route(server, g, partner), volume,
                              1, /*stream_tag=*/(tag << 8) | g, gates);
      next[static_cast<std::size_t>(partner)] = done.back();
    }
    ready = std::move(next);
    volume *= 2.0;
    ++tag;
  }
}

}  // namespace blink::baselines
