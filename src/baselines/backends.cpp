#include "blink/baselines/backends.h"

#include <cmath>
#include <utility>

#include "blink/baselines/butterfly.h"
#include "blink/baselines/double_binary_tree.h"
#include "blink/blink/plan_io.h"
#include "blink/sim/executor.h"

namespace blink::baselines {

namespace {

// The NcclOptions knobs that change what the baseline backends emit, for
// planning_fingerprint(). Fabric calibration is hashed by the engine.
std::uint64_t nccl_options_fingerprint(const NcclOptions& options) {
  FingerprintHasher fp;
  fp.f64(options.tree_threshold_bytes);
  fp.i32(options.persistent_kernel_model);
  hash_options(options.codegen, &fp);
  return fp.value();
}

}  // namespace

// --- NcclRingBackend --------------------------------------------------------

NcclRingBackend::NcclRingBackend(const topo::Topology& topo,
                                 const sim::Fabric& fabric,
                                 NcclOptions options)
    : topo_(topo),
      fabric_(fabric),
      options_(std::move(options)),
      plan_(build_ring_plan(topo_)) {}

bool NcclRingBackend::supports(CollectiveKind kind) const {
  // NCCL has no tree/ring ReduceScatter emitter here; everything else rides
  // the ring (or the DBT switch for small AllReduce).
  return kind != CollectiveKind::kReduceScatter;
}

std::uint64_t NcclRingBackend::planning_fingerprint() const {
  return nccl_options_fingerprint(options_);
}

bool NcclRingBackend::use_double_binary(double bytes) const {
  return topo_.has_nvswitch && bytes < options_.tree_threshold_bytes &&
         topo_.num_gpus >= 4;
}

LoweredCollective NcclRingBackend::lower(CollectiveKind kind, double bytes,
                                         int root) {
  ProgramBuilder builder(fabric_, options_.codegen);
  LoweredCollective lowered;
  lowered.chunk_bytes = options_.codegen.chunk_bytes;
  CollectiveResult& result = lowered.meta;
  result.bytes = bytes;
  // Directed rings are chain trees from the root's perspective, so the ring
  // variants of gather/reduce/allgather reuse the tree emitters directly.
  auto ring_chains = [&](int chain_root) {
    std::vector<RoutedTree> chains;
    for (const auto& ring : plan_.rings) {
      chains.push_back(ring_chain_tree(fabric_, 0, ring, chain_root,
                                       /*forward=*/true, plan_.link));
      chains.push_back(ring_chain_tree(fabric_, 0, ring, chain_root,
                                       /*forward=*/false, plan_.link));
    }
    return chains;
  };
  switch (kind) {
    case CollectiveKind::kBroadcast:
      append_ring_broadcast(builder, fabric_, 0, plan_, bytes, root);
      result.num_trees = plan_.num_directed();
      break;
    case CollectiveKind::kAllReduce:
      if (use_double_binary(bytes)) {
        append_double_binary_all_reduce(builder, fabric_, 0, bytes);
        result.num_trees = 2;
      } else {
        append_ring_all_reduce(builder, fabric_, 0, plan_, bytes);
        result.num_trees = plan_.num_directed();
      }
      break;
    case CollectiveKind::kGather:
      builder.gather(ring_chains(root), bytes);
      result.num_trees = plan_.num_directed();
      break;
    case CollectiveKind::kReduce:
      builder.reduce(ring_chains(root), bytes);
      result.num_trees = plan_.num_directed();
      break;
    case CollectiveKind::kAllGather:
      builder.all_gather(ring_chains(root), bytes);
      result.num_trees = plan_.num_directed();
      break;
    case CollectiveKind::kReduceScatter:
      break;  // rejected by supports()
  }
  result.num_chunks = builder.chunks_for(bytes / plan_.num_directed());
  lowered.program = builder.take();
  result.num_ops = static_cast<int>(lowered.program.ops().size());
  return lowered;
}

bool RingBackend::use_double_binary(double bytes) const {
  (void)bytes;
  return false;
}

// --- DoubleBinaryBackend ----------------------------------------------------

DoubleBinaryBackend::DoubleBinaryBackend(const topo::Topology& topo,
                                         const sim::Fabric& fabric,
                                         NcclOptions options)
    : topo_(topo), fabric_(fabric), options_(std::move(options)) {
  routable_ = topo_.num_gpus >= 2;
  if (routable_ && !topo_.has_nvswitch) {
    // Without a switch every parent-child hop of both trees must be a
    // direct NVLink; checking up front keeps supports() cheap and lower()
    // total.
    const auto [t1, t2] = graph::double_binary_trees(topo_.num_gpus);
    for (const auto& tree : {t1, t2}) {
      for (int gpu = 0; gpu < topo_.num_gpus; ++gpu) {
        const int parent = tree.parent[static_cast<std::size_t>(gpu)];
        if (parent >= 0 && !fabric_.nvlink_adjacent(0, parent, gpu)) {
          routable_ = false;
        }
      }
    }
  }
}

std::uint64_t DoubleBinaryBackend::planning_fingerprint() const {
  return nccl_options_fingerprint(options_);
}

bool DoubleBinaryBackend::supports(CollectiveKind kind) const {
  return kind == CollectiveKind::kAllReduce && routable_;
}

LoweredCollective DoubleBinaryBackend::lower(CollectiveKind kind, double bytes,
                                             int root) {
  (void)kind;
  (void)root;
  ProgramBuilder builder(fabric_, options_.codegen);
  append_double_binary_all_reduce(builder, fabric_, 0, bytes);
  LoweredCollective lowered;
  lowered.chunk_bytes = options_.codegen.chunk_bytes;
  lowered.meta.bytes = bytes;
  lowered.meta.num_trees = 2;
  lowered.meta.num_chunks = builder.chunks_for(bytes / 2.0);
  lowered.program = builder.take();
  lowered.meta.num_ops = static_cast<int>(lowered.program.ops().size());
  return lowered;
}

// --- ButterflyBackend -------------------------------------------------------

ButterflyBackend::ButterflyBackend(const topo::Topology& topo,
                                   const sim::Fabric& fabric,
                                   NcclOptions options)
    : topo_(topo),
      fabric_(fabric),
      options_(std::move(options)),
      supported_(butterfly_supported(fabric_, 0)) {}

std::uint64_t ButterflyBackend::planning_fingerprint() const {
  return nccl_options_fingerprint(options_);
}

bool ButterflyBackend::supports(CollectiveKind kind) const {
  return kind == CollectiveKind::kAllReduce && supported_;
}

LoweredCollective ButterflyBackend::lower(CollectiveKind kind, double bytes,
                                          int root) {
  (void)kind;
  (void)root;
  ProgramBuilder builder(fabric_, options_.codegen);
  append_butterfly_all_reduce(builder, fabric_, 0, bytes);
  LoweredCollective lowered;
  lowered.chunk_bytes = options_.codegen.chunk_bytes;
  lowered.meta.bytes = bytes;
  // The butterfly has no spanning trees; report the number of exchange
  // rounds (reduce-scatter + all-gather) instead.
  lowered.meta.num_trees =
      2 * static_cast<int>(std::lround(std::log2(topo_.num_gpus)));
  lowered.meta.num_chunks = 1;
  lowered.program = builder.take();
  lowered.meta.num_ops = static_cast<int>(lowered.program.ops().size());
  return lowered;
}

// --- factory ----------------------------------------------------------------

std::unique_ptr<CollectiveBackend> make_baseline_backend(
    std::string_view name, const topo::Topology& topo,
    const sim::Fabric& fabric, const NcclOptions& options) {
  if (name == "nccl") {
    return std::make_unique<NcclRingBackend>(topo, fabric, options);
  }
  if (name == "ring") {
    return std::make_unique<RingBackend>(topo, fabric, options);
  }
  if (name == "double_binary") {
    return std::make_unique<DoubleBinaryBackend>(topo, fabric, options);
  }
  if (name == "butterfly") {
    return std::make_unique<ButterflyBackend>(topo, fabric, options);
  }
  return nullptr;
}

}  // namespace blink::baselines
