#include "blink/baselines/double_binary_tree.h"

#include <cassert>

namespace blink::baselines {
namespace {

RoutedTree routed_from_binary(const sim::Fabric& fabric, int server,
                              const graph::BinaryTree& bt) {
  RoutedTree tree;
  tree.server = server;
  tree.root = bt.root;
  tree.weight = 1.0;

  // BFS so parents precede children.
  const auto children = bt.children();
  std::vector<std::pair<int, int>> frontier{{bt.root, 0}};
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const auto [gpu, depth] = frontier[i];
    for (const int child : children[static_cast<std::size_t>(gpu)]) {
      RoutedTree::Hop hop;
      hop.child = child;
      hop.parent = gpu;
      hop.depth = depth + 1;
      hop.down_route = fabric.nvlink_route(server, gpu, child);
      hop.up_route = fabric.nvlink_route(server, child, gpu);
      tree.hops.push_back(std::move(hop));
      frontier.push_back({child, depth + 1});
    }
  }
  assert(tree.hops.size() + 1 == bt.parent.size());
  return tree;
}

}  // namespace

std::vector<RoutedTree> double_binary_routed_trees(const sim::Fabric& fabric,
                                                   int server) {
  const int n = fabric.server(server).num_gpus;
  const auto [t1, t2] = graph::double_binary_trees(n);
  return {routed_from_binary(fabric, server, t1),
          routed_from_binary(fabric, server, t2)};
}

void append_double_binary_all_reduce(ProgramBuilder& builder,
                                     const sim::Fabric& fabric, int server,
                                     double bytes) {
  const auto trees = double_binary_routed_trees(fabric, server);
  builder.all_reduce(trees, bytes);
}

}  // namespace blink::baselines
