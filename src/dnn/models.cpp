#include "blink/dnn/models.h"

namespace blink::dnn {

double ModelSpec::fwd_seconds(GpuGeneration gen) const {
  return gen == GpuGeneration::kV100 ? fwd_seconds_v100 : fwd_seconds_p100;
}

double ModelSpec::bwd_seconds(GpuGeneration gen) const {
  return gen == GpuGeneration::kV100 ? bwd_seconds_v100 : bwd_seconds_p100;
}

// Bucket fractions are ordered by backward completion: output-side layers
// (large FC blocks in AlexNet/VGG) produce gradients first.

ModelSpec alexnet() {
  ModelSpec m;
  m.name = "AlexNet";
  m.param_bytes = 61.1e6 * 4;  // 61.1M params
  m.per_gpu_batch = 256;
  m.fwd_seconds_v100 = 18e-3;
  m.bwd_seconds_v100 = 36e-3;
  m.fwd_seconds_p100 = 30e-3;
  m.bwd_seconds_p100 = 60e-3;
  // FC6/FC7 dominate (~87% of parameters) and complete early in backward.
  m.bucket_fractions = {0.55, 0.32, 0.08, 0.05};
  return m;
}

ModelSpec resnet18() {
  ModelSpec m;
  m.name = "ResNet18";
  m.param_bytes = 11.69e6 * 4;
  m.per_gpu_batch = 128;
  m.fwd_seconds_v100 = 15e-3;
  m.bwd_seconds_v100 = 30e-3;
  m.fwd_seconds_p100 = 25e-3;
  m.bwd_seconds_p100 = 50e-3;
  m.bucket_fractions = {0.35, 0.30, 0.20, 0.15};
  return m;
}

ModelSpec resnet50() {
  ModelSpec m;
  m.name = "ResNet50";
  m.param_bytes = 25.56e6 * 4;
  m.per_gpu_batch = 64;
  m.fwd_seconds_v100 = 30e-3;
  m.bwd_seconds_v100 = 60e-3;
  m.fwd_seconds_p100 = 50e-3;
  m.bwd_seconds_p100 = 100e-3;
  m.bucket_fractions = {0.30, 0.30, 0.25, 0.15};
  return m;
}

ModelSpec vgg16() {
  ModelSpec m;
  m.name = "VGG16";
  m.param_bytes = 138.36e6 * 4;
  m.per_gpu_batch = 64;
  m.fwd_seconds_v100 = 45e-3;
  m.bwd_seconds_v100 = 90e-3;
  m.fwd_seconds_p100 = 75e-3;
  m.bwd_seconds_p100 = 150e-3;
  // FC6 alone holds ~74% of VGG16's parameters.
  m.bucket_fractions = {0.74, 0.15, 0.07, 0.04};
  return m;
}

std::vector<ModelSpec> model_zoo() {
  return {alexnet(), resnet18(), resnet50(), vgg16()};
}

}  // namespace blink::dnn
