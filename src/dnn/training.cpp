#include "blink/dnn/training.h"

#include <algorithm>
#include <cassert>

namespace blink::dnn {

IterationBreakdown simulate_iteration(const ModelSpec& model,
                                      GpuGeneration gen,
                                      const AllReduceFn& all_reduce,
                                      const TrainingOptions& options) {
  assert(!model.bucket_fractions.empty());
  const double fwd = model.fwd_seconds(gen);
  const double bwd = model.bwd_seconds(gen);

  IterationBreakdown out;
  out.compute_seconds = fwd + bwd;

  if (!options.wait_free_backprop) {
    // Sequential: one AllReduce of the full gradient after backward.
    out.comm_seconds = all_reduce(model.param_bytes);
    out.exposed_comm_seconds = out.comm_seconds;
    out.iteration_seconds = out.compute_seconds + out.comm_seconds;
  } else {
    // Bucket i is ready once the backward slice producing it has run;
    // AllReduces are issued in ready order and serialize on the fabric.
    double cumulative = 0.0;
    double comm_free_at = 0.0;  // when the communication backend is free
    double comm_busy = 0.0;
    for (const double fraction : model.bucket_fractions) {
      cumulative += fraction;
      const double ready_at = fwd + bwd * cumulative;
      const double duration = all_reduce(model.param_bytes * fraction);
      comm_busy += duration;
      comm_free_at = std::max(comm_free_at, ready_at) + duration;
    }
    out.comm_seconds = comm_busy;
    out.iteration_seconds = std::max(fwd + bwd, comm_free_at);
    out.exposed_comm_seconds = out.iteration_seconds - out.compute_seconds;
  }
  out.comm_fraction = out.iteration_seconds > 0.0
                          ? out.exposed_comm_seconds / out.iteration_seconds
                          : 0.0;
  out.images_per_second =
      model.per_gpu_batch * options.num_gpus / out.iteration_seconds;
  return out;
}

}  // namespace blink::dnn
