#include "blink/fuzz/fuzz.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "blink/baselines/backends.h"
#include "blink/blink/codegen.h"
#include "blink/blink/communicator.h"
#include "blink/blink/multiserver.h"
#include "blink/blink/plan_io.h"
#include "blink/common/rng.h"
#include "blink/common/thread_pool.h"
#include "blink/packing/packing.h"
#include "blink/sim/executor.h"
#include "blink/sim/trace.h"

namespace blink::fuzz {
namespace {

constexpr CollectiveKind kAllKinds[] = {
    CollectiveKind::kBroadcast,    CollectiveKind::kGather,
    CollectiveKind::kReduce,       CollectiveKind::kAllReduce,
    CollectiveKind::kAllGather,    CollectiveKind::kReduceScatter,
};

bool is_rooted(CollectiveKind kind) {
  return kind == CollectiveKind::kBroadcast || kind == CollectiveKind::kGather ||
         kind == CollectiveKind::kReduce;
}

std::string fmt(const char* format, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

// One case's shared state: the seed, the generated fabric's description, and
// the report the checks record into.
struct CaseContext {
  std::uint64_t seed = 0;
  const FuzzOptions* options = nullptr;
  FuzzReport* report = nullptr;
  std::string fabric_desc;

  bool inject(const char* invariant) const {
    return options->inject == invariant;
  }

  void fail(const std::string& invariant, std::string detail) {
    FuzzFailure f;
    f.case_seed = seed;
    f.invariant = invariant;
    f.detail = std::move(detail);
    f.fabric = fabric_desc;
    char buf[48];
    std::snprintf(buf, sizeof buf, "blink_fuzz --case 0x%llx",
                  static_cast<unsigned long long>(seed));
    f.repro = buf;
    report->failures.push_back(std::move(f));
  }
};

// One compiled collective under test.
struct Shape {
  CollectiveKind kind = CollectiveKind::kBroadcast;
  double bytes = 0.0;
  int root = -1;  // -1 = backend default, like the one-shot methods
  int backend = 0;
};

std::string shape_label(const CollectiveEngine& engine, const Shape& s) {
  std::string label = to_string(s.kind);
  label += "/";
  label += engine.backend(s.backend).name();
  label += " bytes=" + fmt("%.6g", s.bytes) + " root=" + std::to_string(s.root);
  return label;
}

// Every supported (kind, backend) shape at |bytes|, rooted kinds at |root|.
std::vector<Shape> enumerate_shapes(const CollectiveEngine& engine,
                                    double bytes, int root) {
  std::vector<Shape> shapes;
  for (int b = 0; b < engine.num_backends(); ++b) {
    for (const CollectiveKind kind : kAllKinds) {
      if (!engine.backend(b).supports(kind)) continue;
      shapes.push_back({kind, bytes, is_rooted(kind) ? root : -1, b});
    }
  }
  return shapes;
}

// --- per-plan invariants -----------------------------------------------------

// Executes |plan| and checks the invariants every compiled plan must hold:
// finite positive metadata, engine/simulator timing agreement, channel bytes
// bounded by capacity * makespan, every tree set within link capacities and
// the Edmonds bound, and plan-record serialization round-tripping
// bit-identically. Returns the executed result for kind-specific checks.
CollectiveResult check_plan(CaseContext& ctx, CollectiveEngine& engine,
                            const CollectivePlan& plan) {
  ++ctx.report->plans;
  const Shape shape{plan.kind(), plan.bytes(), plan.root(), plan.backend()};
  const std::string label = shape_label(engine, shape);

  const CollectiveResult r = engine.execute(plan);
  const sim::RunResult run = sim::execute(engine.fabric(), plan.program());
  ctx.report->executions += 2;

  if (!(r.seconds > 0.0) || !std::isfinite(r.seconds) ||
      !(r.algorithm_bw > 0.0) || r.num_ops <= 0) {
    ctx.fail("meta", label + ": degenerate result (seconds=" +
                         fmt("%g", r.seconds) + ", bw=" +
                         fmt("%g", r.algorithm_bw) + ")");
  }
  if (r.seconds != run.makespan) {
    ctx.fail("engine-exec",
             label + ": engine seconds " + fmt("%.17g", r.seconds) +
                 " != simulated makespan " + fmt("%.17g", run.makespan));
  }

  sim::RunResult accounted = run;
  if (ctx.inject("capacity")) {
    // Injection: pretend every channel carried twice its bytes, as if the
    // executor had oversubscribed links by 2x.
    for (double& b : accounted.channel_bytes) b *= 2.0;
  }
  for (const auto& v :
       sim::capacity_violations(engine.fabric(), accounted, 1.0)) {
    ctx.fail("capacity",
             label + ": channel " + engine.fabric().channel_name(v.channel) +
                 " carried " + fmt("%.6g", v.bytes) + " bytes > bound " +
                 fmt("%.6g", v.bound));
  }

  const double tree_tol = ctx.inject("tree-capacity") ? -0.5 : 1e-6;
  for (const auto& set : plan.tree_sets()) {
    if (!set || set->empty()) continue;
    if (!packing::respects_capacities(set->graph, set->trees, tree_tol)) {
      ctx.fail("tree-capacity",
               label + ": packed trees exceed link capacities (root " +
                   std::to_string(set->root) + ")");
    }
    if (set->rate > set->optimal_rate * (1.0 + 1e-6)) {
      ctx.fail("tree-capacity",
               label + ": packed rate " + fmt("%.6g", set->rate) +
                   " exceeds Edmonds bound " + fmt("%.6g", set->optimal_rate));
    }
  }

  PlanRecord rec;
  rec.backend_name = engine.backend(plan.backend()).name();
  rec.kind = static_cast<int>(plan.kind());
  rec.root = plan.root();
  rec.bytes = plan.bytes();
  rec.chunk_bytes = plan.chunk_bytes();
  rec.phase2 = static_cast<int>(plan.phase2_strategy());
  rec.meta = plan.meta();
  rec.program = plan.program();
  rec.footprint = plan.channel_footprint();
  std::string first;
  serialize_plan_record(rec, &first);
  try {
    std::size_t pos = 0;
    const PlanRecord back = deserialize_plan_record(first, &pos);
    std::string second;
    serialize_plan_record(back, &second);
    if (ctx.inject("round-trip") && !second.empty()) {
      second[second.size() / 2] ^= 0x20;
    }
    if (second != first || pos != first.size()) {
      ctx.fail("round-trip", label + ": reserialized record differs (" +
                                 std::to_string(first.size()) + " vs " +
                                 std::to_string(second.size()) + " bytes)");
    }
  } catch (const std::exception& e) {
    ctx.fail("round-trip",
             label + ": deserialize rejected a fresh record: " + e.what());
  }
  return r;
}

// --- cluster NIC volume lower bounds ----------------------------------------

// Information-theoretic per-server NIC volume bounds, safe for any correct
// schedule (unlike per-implementation bounds, which hierarchical exchanges
// can beat): reductions never shrink a buffer below |bytes| and every
// server's data must cross its NIC at least once. The bound on the makespan
// is the slowest server's max(ingress, egress) volume over its NIC rate.
double nic_bound_seconds(const sim::Fabric& fabric,
                         const std::vector<topo::Topology>& servers,
                         CollectiveKind kind, double bytes, int root_server) {
  const int n_srv = static_cast<int>(servers.size());
  if (n_srv < 2) return 0.0;
  double total_gpus = 0.0;
  for (const auto& s : servers) total_gpus += s.num_gpus;
  double bound = 0.0;
  for (int s = 0; s < n_srv; ++s) {
    const double gpus =
        static_cast<double>(servers[static_cast<std::size_t>(s)].num_gpus);
    double ingress = 0.0;
    double egress = 0.0;
    switch (kind) {
      case CollectiveKind::kBroadcast:
        ingress = s == root_server ? 0.0 : bytes;
        egress = s == root_server ? bytes : 0.0;
        break;
      case CollectiveKind::kGather:
        ingress = s == root_server ? (total_gpus - gpus) * bytes : 0.0;
        egress = s == root_server ? 0.0 : gpus * bytes;
        break;
      case CollectiveKind::kReduce:
        ingress = s == root_server ? bytes : 0.0;
        egress = s == root_server ? 0.0 : bytes;
        break;
      case CollectiveKind::kAllReduce:
        ingress = bytes;
        egress = bytes;
        break;
      case CollectiveKind::kAllGather:
        ingress = (total_gpus - gpus) * bytes;
        egress = gpus * bytes;
        break;
      case CollectiveKind::kReduceScatter:
        ingress = gpus * bytes / total_gpus;
        egress = (total_gpus - gpus) * bytes / total_gpus;
        break;
    }
    const double rate = fabric.nic_rate(s);
    if (rate <= 0.0) continue;
    bound = std::max(bound, std::max(ingress, egress) / rate);
  }
  return bound;
}

int server_of_global_gpu(const std::vector<topo::Topology>& servers,
                         int global) {
  for (std::size_t s = 0; s < servers.size(); ++s) {
    if (global < servers[s].num_gpus) return static_cast<int>(s);
    global -= servers[s].num_gpus;
  }
  return static_cast<int>(servers.size()) - 1;
}

// --- determinism + plan-store round trip (rotation 0) ------------------------

std::string serialized_program(const CollectivePlan& plan) {
  std::string buf;
  serialize_program(plan.program(), &buf);
  return buf;
}

// Compiles |shapes| on |fresh| (an identically configured engine) and
// bit-compares every program against |reference|'s; then exports
// |reference|'s cache to a temp store, imports it into |imported| (also
// identically configured), and checks the warm compiles are hits with
// bit-identical programs.
void check_determinism(CaseContext& ctx, CollectiveEngine& reference,
                       CollectiveEngine& fresh, CollectiveEngine& imported,
                       const std::vector<Shape>& shapes) {
  for (const Shape& s : shapes) {
    const auto a = reference.compile(s.kind, s.bytes, s.root, s.backend);
    const auto b = fresh.compile(s.kind, s.bytes, s.root, s.backend);
    ++ctx.report->plans;
    if (serialized_program(*a) != serialized_program(*b)) {
      ctx.fail("determinism",
               shape_label(reference, s) +
                   ": identical engines compiled different programs");
    }
  }

  namespace fs = std::filesystem;
  char name[64];
  std::snprintf(name, sizeof name, "blink_fuzz_%016llx.bpc",
                static_cast<unsigned long long>(ctx.seed));
  const fs::path path = fs::temp_directory_path() / name;
  std::error_code ec;
  try {
    const std::size_t exported = reference.export_plans(path.string());
    const std::size_t loaded = imported.import_plans(path.string());
    if (loaded != exported) {
      ctx.fail("store-round-trip", "exported " + std::to_string(exported) +
                                       " plans but imported " +
                                       std::to_string(loaded));
    }
    const std::uint64_t misses_before = imported.plan_cache().misses();
    for (const Shape& s : shapes) {
      const auto a = reference.compile(s.kind, s.bytes, s.root, s.backend);
      const auto c = imported.compile(s.kind, s.bytes, s.root, s.backend);
      if (serialized_program(*a) != serialized_program(*c)) {
        ctx.fail("store-round-trip",
                 shape_label(reference, s) +
                     ": warm-loaded program differs from the saved one");
      }
    }
    if (imported.plan_cache().misses() != misses_before) {
      ctx.fail("store-round-trip",
               "warm-loaded engine recompiled " +
                   std::to_string(imported.plan_cache().misses() -
                                  misses_before) +
                   " shapes that were in the store");
    }
  } catch (const std::exception& e) {
    ctx.fail("store-round-trip",
             std::string("export/import round trip threw: ") + e.what());
  }
  fs::remove(path, ec);
}

// --- repair equals recompile (rotation 2) ------------------------------------

// A random health event that keeps global GPU numbering intact: degrade or
// fail a random channel, or fail a GPU on a server that has more than one.
sim::HealthEvent random_health_event(Rng& rng, const sim::Fabric& fabric) {
  sim::HealthEvent ev;
  const int kind = static_cast<int>(rng.next_below(3));
  if (kind == 2) {
    std::vector<std::pair<int, int>> candidates;
    for (int s = 0; s < fabric.num_servers(); ++s) {
      for (int g = 0; g < fabric.server(s).num_gpus; ++g) {
        if (fabric.server(s).num_gpus >= 2) candidates.push_back({s, g});
      }
    }
    if (!candidates.empty()) {
      const auto [s, g] =
          candidates[static_cast<std::size_t>(rng.next_below(candidates.size()))];
      ev.kind = sim::HealthEventKind::kFailGpu;
      ev.server = s;
      ev.gpu = g;
      return ev;
    }
  }
  ev.channel = rng.next_int(0, fabric.num_channels() - 1);
  if (kind == 1) {
    ev.kind = sim::HealthEventKind::kFailLink;
  } else {
    ev.kind = sim::HealthEventKind::kDegradeLink;
    ev.factor = 0.1 + 0.8 * rng.next_double();
  }
  return ev;
}

std::string describe_event(const sim::HealthEvent& ev,
                           const sim::Fabric& fabric) {
  std::string out = to_string(ev.kind);
  if (ev.kind == sim::HealthEventKind::kFailGpu) {
    out += " server=" + std::to_string(ev.server) +
           " gpu=" + std::to_string(ev.gpu);
  } else if (ev.channel >= 0) {
    out += " channel=" + fabric.channel_name(ev.channel);
    if (ev.kind == sim::HealthEventKind::kDegradeLink) {
      out += " factor=" + fmt("%.3f", ev.factor);
    }
  }
  return out;
}

// The outcome of compile+execute for one shape on a degraded fabric: either
// a serialized program or "cannot be lowered/executed". Repair and a
// from-scratch engine must agree on which, and byte-for-byte on the program.
struct DegradedOutcome {
  bool ok = false;
  std::string program;
};

DegradedOutcome try_shape(CollectiveEngine& engine, const Shape& s) {
  DegradedOutcome out;
  try {
    const auto plan = engine.compile(s.kind, s.bytes, s.root, s.backend);
    engine.execute(*plan);
    out.ok = true;
    out.program = serialized_program(*plan);
  } catch (const std::exception&) {
    out.ok = false;
  }
  return out;
}

// |repaired| compiled |shapes| before the event and went through
// repair_plans(event); |scratch| is an identically configured engine that
// sees the event with an empty cache (a from-scratch compile on the degraded
// fabric). Every shape must come out identically on both.
void check_repair(CaseContext& ctx, Rng& rng, CollectiveEngine& repaired,
                  CollectiveEngine& scratch, const std::vector<Shape>& shapes) {
  const sim::HealthEvent event = random_health_event(rng, repaired.fabric());
  const std::string event_desc = describe_event(event, repaired.fabric());
  try {
    repaired.repair_plans(event);
    scratch.repair_plans(event);  // empty cache: just applies the event
  } catch (const std::exception& e) {
    ctx.fail("repair", event_desc + ": repair_plans threw: " + e.what());
    return;
  }
  for (const Shape& s : shapes) {
    Shape fresh_shape = s;
    if (ctx.inject("repair")) {
      // Injection: the from-scratch engine compiles a different payload, so
      // the bit-compare sees a genuinely different program.
      fresh_shape.bytes = s.bytes * 1.5;
    }
    const DegradedOutcome a = try_shape(repaired, s);
    const DegradedOutcome b = try_shape(scratch, fresh_shape);
    ++ctx.report->plans;
    if (a.ok != b.ok) {
      ctx.fail("repair", shape_label(repaired, s) + " after " + event_desc +
                             ": repaired engine " +
                             (a.ok ? "lowered" : "failed") +
                             " but from-scratch compile " +
                             (b.ok ? "lowered" : "failed"));
    } else if (a.ok && a.program != b.program) {
      ctx.fail("repair", shape_label(repaired, s) + " after " + event_desc +
                             ": repaired program differs from a from-scratch "
                             "compile on the degraded fabric");
    }
  }
}

// --- flat single-tree references (cluster rotation 3) ------------------------

// The heaviest packed tree of one server rooted at its GPU 0, over NVLink or
// the PCIe fallback; nullopt when the server cannot be spanned (single GPU).
std::optional<RoutedTree> heaviest_tree(const sim::Fabric& fabric,
                                        const std::vector<topo::Topology>& servers,
                                        int s, const ClusterOptions& opts) {
  TreeGenOptions tg = opts.treegen;
  tg.link = topo::LinkType::kNVLink;
  TreeSet set = generate_trees(servers[static_cast<std::size_t>(s)], 0, tg);
  if (set.empty()) {
    tg.link = topo::LinkType::kPCIe;
    set = generate_trees(servers[static_cast<std::size_t>(s)], 0, tg);
  }
  if (set.empty()) return std::nullopt;
  auto trees = route_trees(fabric, s, set);
  if (trees.empty()) return std::nullopt;
  std::sort(trees.begin(), trees.end(),
            [](const RoutedTree& a, const RoutedTree& b) {
              return a.weight > b.weight;
            });
  return trees.front();
}

// Whole-buffer broadcast from global GPU 0 over one tree per server — the
// naive reference the three-phase protocol must never lose to.
std::optional<double> flat_broadcast_seconds(
    const std::vector<topo::Topology>& servers, double bytes,
    const ClusterOptions& opts) {
  const sim::Fabric fabric(servers, opts.fabric);
  ProgramBuilder builder(fabric, opts.codegen);
  const int chunks = builder.chunks_for(bytes);
  const auto root_tree = heaviest_tree(fabric, servers, 0, opts);
  if (!root_tree) return std::nullopt;
  builder.tree_broadcast_chunks(*root_tree, bytes, chunks);
  for (int s = 1; s < fabric.num_servers(); ++s) {
    const auto tree = heaviest_tree(fabric, servers, s, opts);
    if (!tree) return std::nullopt;
    const auto arrived =
        builder.copy_chunks(fabric.nic_route(0, s), bytes, chunks, s);
    const std::vector<int> gates(static_cast<std::size_t>(chunks),
                                 arrived.back());
    builder.tree_broadcast_chunks(*tree, bytes, chunks, gates);
  }
  return sim::execute(fabric, builder.take()).makespan;
}

// Whole-buffer all-reduce: per-server tree reduce, full pairwise NIC
// exchange, root-side reduce kernels, tree broadcast.
std::optional<double> flat_all_reduce_seconds(
    const std::vector<topo::Topology>& servers, double bytes,
    const ClusterOptions& opts) {
  const sim::Fabric fabric(servers, opts.fabric);
  ProgramBuilder builder(fabric, opts.codegen);
  const int n_srv = fabric.num_servers();
  const int chunks = builder.chunks_for(bytes);
  std::vector<RoutedTree> tree;
  std::vector<int> reduced;
  for (int s = 0; s < n_srv; ++s) {
    const auto t = heaviest_tree(fabric, servers, s, opts);
    if (!t) return std::nullopt;
    tree.push_back(*t);
    const auto done = builder.tree_reduce_chunks(tree.back(), bytes, chunks,
                                                 /*with_kernels=*/true);
    reduced.push_back(done.back());
  }
  for (int s = 0; s < n_srv; ++s) {
    std::vector<int> deps{reduced[static_cast<std::size_t>(s)]};
    for (int src = 0; src < n_srv; ++src) {
      if (src == s) continue;
      const std::vector<int> gates(static_cast<std::size_t>(chunks),
                                   reduced[static_cast<std::size_t>(src)]);
      deps.push_back(builder
                         .copy_chunks(fabric.nic_route(src, s), bytes, chunks,
                                      n_srv * src + s, gates)
                         .back());
    }
    const int kernel =
        builder.reduce_kernel(s, 0, bytes * n_srv, std::move(deps));
    const std::vector<int> gates(static_cast<std::size_t>(chunks), kernel);
    builder.tree_broadcast_chunks(tree[static_cast<std::size_t>(s)], bytes,
                                  chunks, gates);
  }
  return sim::execute(fabric, builder.take()).makespan;
}

// --- the single-server case --------------------------------------------------

void register_baselines(Communicator& comm) {
  for (const char* name : {"nccl", "ring", "double_binary", "butterfly"}) {
    comm.register_backend(baselines::make_baseline_backend(
        name, comm.topology(), comm.fabric(), {}));
  }
}

void run_single_server_case(CaseContext& ctx, Rng& rng,
                            const topo::Topology& server, double bytes,
                            int rotation) {
  ++ctx.report->single_server_cases;
  CommunicatorOptions copts;
  copts.planner_threads = 1;  // the fuzzer parallelizes across cases
  Communicator comm(server, copts);
  register_baselines(comm);

  const int root = rng.next_int(0, server.num_gpus - 1);
  const std::vector<Shape> shapes = enumerate_shapes(comm, bytes, root);
  for (const Shape& s : shapes) {
    try {
      const auto plan = comm.compile(s.kind, s.bytes, s.root, s.backend);
      check_plan(ctx, comm, *plan);
      // Broadcast moves each payload byte to every receiver exactly once,
      // whatever the route: total copy volume is (n - 1) * bytes. (Ring and
      // tree broadcasts alike; reductions and shard moves have their own
      // volume identities, checked by the unit suites.)
      if (s.kind == CollectiveKind::kBroadcast) {
        const double expected = (server.num_gpus - 1) * s.bytes;
        const double actual = plan->program().total_copy_bytes();
        if (std::abs(actual - expected) > 1e-3 * s.bytes) {
          ctx.fail("conservation",
                   shape_label(comm, s) + ": broadcast copied " +
                       fmt("%.6g", actual) + " bytes, expected " +
                       fmt("%.6g", expected));
        }
      }
    } catch (const std::exception& e) {
      ctx.fail("compile", shape_label(comm, s) +
                              ": unexpectedly failed to lower on a healthy "
                              "fabric: " + e.what());
    }
  }

  if (rotation == 0) {
    Communicator fresh(server, copts);
    register_baselines(fresh);
    Communicator imported(server, copts);
    register_baselines(imported);
    check_determinism(ctx, comm, fresh, imported, shapes);
  } else if (rotation == 2) {
    Communicator scratch(server, copts);
    register_baselines(scratch);
    check_repair(ctx, rng, comm, scratch, shapes);
  } else if (server.nvlink_connected() && !server.has_nvswitch) {
    // Plan-vs-execution bound on the packed broadcast rate: the executed
    // bandwidth can never beat the packed rate, and at pipeline-friendly
    // payloads it must realize a healthy fraction of it. Two exemptions:
    // PCIe-fallback fabrics, whose packed rate deliberately overstates the
    // shared host-staging segments, and NVSwitch boxes, whose all-pairs
    // planning-graph edges are virtual — the crossbar's port-shared capacity
    // in the fabric makes the packed rate neither an upper nor a lower bound
    // for the simulated transfer.
    const double big = std::max(bytes, 32.0e6);
    try {
      const auto plan =
          comm.compile(CollectiveKind::kBroadcast, big, root, /*backend=*/0);
      const CollectiveResult r = comm.execute(*plan);
      ++ctx.report->executions;
      const TreeSet& set = comm.tree_set(root);
      const double ceiling =
          ctx.inject("planning-bound") ? set.rate * 0.5 : set.rate;
      if (r.algorithm_bw > ceiling * (1.0 + 1e-6)) {
        ctx.fail("planning-bound",
                 "broadcast bw " + fmt("%.6g", r.algorithm_bw) +
                     " exceeds the packed rate " + fmt("%.6g", set.rate));
      }
      if (!set.empty() && r.algorithm_bw < 0.25 * set.rate) {
        ctx.fail("planning-bound",
                 "broadcast bw " + fmt("%.6g", r.algorithm_bw) +
                     " realizes under 25% of the packed rate " +
                     fmt("%.6g", set.rate));
      }
    } catch (const std::exception& e) {
      ctx.fail("planning-bound",
               std::string("broadcast at 32 MB failed to lower: ") + e.what());
    }
  }
}

// --- the multi-server case ---------------------------------------------------

ClusterOptions cluster_options(const topo::zoo::RandomFabric& rf,
                               bool pipeline = true) {
  ClusterOptions opts;
  opts.fabric = rf.fabric;
  opts.pipeline = pipeline;
  opts.engine.planner_threads = 1;  // the fuzzer parallelizes across cases
  return opts;
}

void run_cluster_case(CaseContext& ctx, Rng& rng,
                      const topo::zoo::RandomFabric& rf, double bytes,
                      int rotation) {
  ++ctx.report->multi_server_cases;
  ClusterCommunicator comm(rf.servers, cluster_options(rf));
  const int root = rng.next_int(0, comm.num_gpus() - 1);
  const int root_server = server_of_global_gpu(rf.servers, root);
  const std::vector<Shape> shapes = enumerate_shapes(comm, bytes, root);

  for (const Shape& s : shapes) {
    try {
      const auto plan = comm.compile(s.kind, s.bytes, s.root, s.backend);
      const CollectiveResult r = check_plan(ctx, comm, *plan);
      const double scale = ctx.inject("nic-bound") ? 16.0 : 1.0;
      const double bound =
          scale * nic_bound_seconds(comm.fabric(), rf.servers, s.kind, s.bytes,
                                    is_rooted(s.kind) ? root_server : -1);
      if (r.seconds < 0.999 * bound) {
        ctx.fail("nic-bound",
                 shape_label(comm, s) + ": finished in " +
                     fmt("%.6g", r.seconds) + "s, below the NIC volume lower "
                     "bound " + fmt("%.6g", bound) + "s");
      }
    } catch (const std::exception& e) {
      ctx.fail("compile", shape_label(comm, s) +
                              ": unexpectedly failed to lower on a healthy "
                              "fabric: " + e.what());
    }
  }

  if (rotation == 0) {
    ClusterCommunicator fresh(rf.servers, cluster_options(rf));
    ClusterCommunicator imported(rf.servers, cluster_options(rf));
    check_determinism(ctx, comm, fresh, imported, shapes);
  } else if (rotation == 1) {
    // Cross-phase chunk pipelining must never lose to the whole-partition
    // joins it replaces (each side's phase-2 bake-off picks its own best).
    ClusterCommunicator unpipelined(rf.servers,
                                    cluster_options(rf, /*pipeline=*/false));
    for (const Shape& s : shapes) {
      try {
        const CollectiveResult on =
            comm.execute(*comm.compile(s.kind, s.bytes, s.root, s.backend));
        const CollectiveResult off = unpipelined.execute(
            *unpipelined.compile(s.kind, s.bytes, s.root, s.backend));
        ctx.report->executions += 2;
        const double ceiling =
            // 1% relative + 1 ms absolute slack: on millisecond-scale
            // schedules the extra chunk boundaries cost a hair of overhead
            // even when cross-phase overlap wins overall; at the payloads
            // where pipelining matters the absolute term vanishes.
            ctx.inject("pipeline") ? off.seconds * 0.5
                                   : off.seconds * 1.01 + 1.0e-3;
        if (on.seconds > ceiling) {
          ctx.fail("pipeline",
                   shape_label(comm, s) + ": pipelined " +
                       fmt("%.6g", on.seconds) + "s is slower than the "
                       "whole-partition schedule " +
                       fmt("%.6g", off.seconds) + "s");
        }
      } catch (const std::exception& e) {
        ctx.fail("pipeline",
                 shape_label(comm, s) + ": lowering threw: " + e.what());
      }
    }
  } else if (rotation == 2) {
    ClusterCommunicator scratch(rf.servers, cluster_options(rf));
    check_repair(ctx, rng, comm, scratch, shapes);
  } else {
    // The three-phase plans must never lose to the naive flat single-tree
    // schedules (whole buffer, one tree per server, no partitions). Only
    // meaningful when every server can be tree-spanned (>= 2 GPUs, NVLink or
    // NVSwitch — a PCIe-only member can genuinely favour one staged tree
    // over the partitioned protocol) and at a payload large enough that
    // pipeline fill does not dominate.
    bool spannable = true;
    for (const auto& s : rf.servers) {
      spannable = spannable && s.num_gpus >= 2 &&
                  (s.nvlink_connected() || s.has_nvswitch);
    }
    if (spannable) {
      const double big = std::max(bytes, 32.0e6);
      const double slack = ctx.inject("flat-reference") ? 0.5 : 1.001;
      const auto flat_bcast =
          flat_broadcast_seconds(rf.servers, big, comm.options());
      const auto flat_ar =
          flat_all_reduce_seconds(rf.servers, big, comm.options());
      try {
        if (flat_bcast) {
          const auto r =
              comm.execute(*comm.compile(CollectiveKind::kBroadcast, big, 0));
          ctx.report->executions += 1;
          if (r.seconds > *flat_bcast * slack) {
            ctx.fail("flat-reference",
                     "broadcast " + fmt("%.6g", r.seconds) +
                         "s lost to the flat single-tree reference " +
                         fmt("%.6g", *flat_bcast) + "s");
          }
        }
        if (flat_ar) {
          const auto r =
              comm.execute(*comm.compile(CollectiveKind::kAllReduce, big));
          ctx.report->executions += 1;
          if (r.seconds > *flat_ar * slack) {
            ctx.fail("flat-reference",
                     "all_reduce " + fmt("%.6g", r.seconds) +
                         "s lost to the flat single-tree reference " +
                         fmt("%.6g", *flat_ar) + "s");
          }
        }
      } catch (const std::exception& e) {
        ctx.fail("flat-reference",
                 std::string("reference comparison threw: ") + e.what());
      }
    }
  }
}

}  // namespace

std::uint64_t case_seed(std::uint64_t seed, std::uint64_t index) {
  // splitmix64 finalizer over the golden-ratio stream, the same mix Rng's
  // seeding uses: neighbouring indices yield fully decorrelated case seeds.
  std::uint64_t z = seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void run_case(std::uint64_t case_seed, const FuzzOptions& options,
              FuzzReport* report) {
  CaseContext ctx;
  ctx.seed = case_seed;
  ctx.options = &options;
  ctx.report = report;
  ++report->cases;

  Rng rng(case_seed);
  topo::zoo::RandomFabric rf;
  try {
    rf = topo::zoo::make_random_fabric(case_seed, options.fabric);
  } catch (const std::exception& e) {
    ctx.fail("generator", std::string("make_random_fabric threw: ") + e.what());
    return;
  }
  ctx.fabric_desc = rf.describe();
  for (const auto& server : rf.servers) {
    std::string error;
    if (!server.validate(&error)) {
      ctx.fail("generator", server.name + " failed validate(): " + error);
      return;
    }
  }

  const double bytes =
      options.min_bytes +
      rng.next_double() * (options.max_bytes - options.min_bytes);
  const int rotation = static_cast<int>(rng.next_below(4));
  try {
    if (rf.servers.size() == 1) {
      run_single_server_case(ctx, rng, rf.servers.front(), bytes, rotation);
    } else {
      run_cluster_case(ctx, rng, rf, bytes, rotation);
    }
  } catch (const std::exception& e) {
    ctx.fail("harness", std::string("uncaught exception: ") + e.what());
  }
}

FuzzReport run(std::uint64_t seed, std::size_t iters,
               const FuzzOptions& options) {
  std::vector<FuzzReport> partial(iters);
  common::parallel_for(iters,
                       static_cast<std::size_t>(std::max(0, options.workers)),
                       [&](std::size_t i) {
                         run_case(case_seed(seed, i), options, &partial[i]);
                       });
  FuzzReport merged;
  for (const FuzzReport& p : partial) {
    merged.cases += p.cases;
    merged.single_server_cases += p.single_server_cases;
    merged.multi_server_cases += p.multi_server_cases;
    merged.plans += p.plans;
    merged.executions += p.executions;
    merged.failures.insert(merged.failures.end(), p.failures.begin(),
                           p.failures.end());
  }
  std::stable_sort(merged.failures.begin(), merged.failures.end(),
                   [](const FuzzFailure& a, const FuzzFailure& b) {
                     return a.case_seed < b.case_seed;
                   });
  return merged;
}

const std::vector<std::string>& injectable_invariants() {
  static const std::vector<std::string> kNames = {
      "capacity",  "tree-capacity", "round-trip",
      "nic-bound", "pipeline",      "planning-bound",
      "repair",    "flat-reference"};
  return kNames;
}

}  // namespace blink::fuzz
