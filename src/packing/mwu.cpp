#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>

#include "blink/packing/packing.h"

namespace blink::packing {
namespace {

// Merge trees with identical edge sets, summing their weights.
std::vector<WeightedTree> deduplicate(std::vector<WeightedTree> trees) {
  std::map<std::vector<int>, WeightedTree> by_edges;
  for (auto& wt : trees) {
    auto key = wt.tree.edge_ids;  // already sorted by min_cost_arborescence
    auto [it, inserted] = by_edges.try_emplace(std::move(key), wt);
    if (!inserted) it->second.weight += wt.weight;
  }
  std::vector<WeightedTree> out;
  out.reserve(by_edges.size());
  for (auto& [key, wt] : by_edges) out.push_back(std::move(wt));
  // Heaviest first: downstream consumers (chunk splitting) like stable order.
  std::sort(out.begin(), out.end(),
            [](const WeightedTree& a, const WeightedTree& b) {
              return a.weight > b.weight;
            });
  return out;
}

}  // namespace

MwuResult mwu_pack(const graph::DiGraph& g, int root,
                   const MwuOptions& options) {
  MwuResult result;
  if (g.num_vertices() <= 1 || !g.reachable_from(root)) return result;

  // Constraints live on capacity *groups*: for the §3.3 undirected packing
  // both directions of a link share one budget (and one MWU length).
  const auto m = static_cast<double>(g.num_groups());
  const double eps = options.epsilon;
  assert(eps > 0.0 && eps < 1.0);

  const auto caps = g.group_capacities();

  // Garg-Konemann initial lengths: delta / c_g.
  const double delta = (1.0 + eps) * std::pow((1.0 + eps) * m, -1.0 / eps);
  std::vector<double> length(static_cast<std::size_t>(g.num_groups()));
  for (int grp = 0; grp < g.num_groups(); ++grp) {
    length[static_cast<std::size_t>(grp)] =
        delta / caps[static_cast<std::size_t>(grp)];
  }

  std::vector<WeightedTree> raw;
  int iterations = 0;
  std::vector<double> edge_length(static_cast<std::size_t>(g.num_edges()));
  // One workspace across every iteration: the arborescence solver recycles
  // its contraction-level scratch instead of reallocating it per solve (the
  // loop runs up to max_iterations solves over the same graph).
  graph::ArborescenceWorkspace workspace;
  while (iterations < options.max_iterations) {
    for (int e = 0; e < g.num_edges(); ++e) {
      edge_length[static_cast<std::size_t>(e)] =
          length[static_cast<std::size_t>(g.edge(e).group)];
    }
    auto arb = min_cost_arborescence(g, root, edge_length, &workspace);
    assert(arb.has_value());  // reachability checked above
    double tree_length = 0.0;
    double bottleneck = std::numeric_limits<double>::infinity();
    for (const int e : arb->edge_ids) {
      const auto grp = static_cast<std::size_t>(g.edge(e).group);
      tree_length += length[grp];
      bottleneck = std::min(bottleneck, caps[grp]);
    }
    if (tree_length >= 1.0) break;
    ++iterations;
    raw.push_back({*arb, bottleneck});
    for (const int e : arb->edge_ids) {
      const auto grp = static_cast<std::size_t>(g.edge(e).group);
      length[grp] *= 1.0 + eps * bottleneck / caps[grp];
    }
  }
  result.iterations = iterations;

  // Garg-Konemann scaling makes the accumulated weights feasible.
  const double scale = std::log((1.0 + eps) / delta) / std::log(1.0 + eps);
  for (auto& wt : raw) wt.weight /= scale;

  if (options.deduplicate) raw = deduplicate(std::move(raw));
  if (options.tighten && !raw.empty()) {
    const double f = tighten_factor(g, raw);
    for (auto& wt : raw) wt.weight *= f;
  }
  assert(respects_capacities(g, raw));

  result.trees = std::move(raw);
  for (const auto& wt : result.trees) result.total_rate += wt.weight;
  return result;
}

}  // namespace blink::packing
