#include <algorithm>
#include <cmath>
#include <limits>

#include "blink/graph/maxflow.h"
#include "blink/packing/packing.h"

namespace blink::packing {

double optimal_rate(const graph::DiGraph& g, int root) {
  return graph::broadcast_rate_upper_bound(g, root);
}

namespace {

// Load per capacity group (both directions of a shared bundle accumulate
// into one budget).
std::vector<double> group_loads(const graph::DiGraph& g,
                                const std::vector<WeightedTree>& trees) {
  std::vector<double> load(static_cast<std::size_t>(g.num_groups()), 0.0);
  for (const auto& wt : trees) {
    for (const int e : wt.tree.edge_ids) {
      load[static_cast<std::size_t>(g.edge(e).group)] += wt.weight;
    }
  }
  return load;
}

}  // namespace

bool respects_capacities(const graph::DiGraph& g,
                         const std::vector<WeightedTree>& trees,
                         double tolerance) {
  const auto load = group_loads(g, trees);
  const auto caps = g.group_capacities();
  for (int grp = 0; grp < g.num_groups(); ++grp) {
    if (load[static_cast<std::size_t>(grp)] >
        caps[static_cast<std::size_t>(grp)] * (1.0 + tolerance)) {
      return false;
    }
  }
  return true;
}

double tighten_factor(const graph::DiGraph& g,
                      const std::vector<WeightedTree>& trees) {
  const auto load = group_loads(g, trees);
  const auto caps = g.group_capacities();
  double factor = std::numeric_limits<double>::infinity();
  for (int grp = 0; grp < g.num_groups(); ++grp) {
    const double l = load[static_cast<std::size_t>(grp)];
    if (l > 0.0) {
      factor = std::min(factor, caps[static_cast<std::size_t>(grp)] / l);
    }
  }
  return std::isfinite(factor) ? factor : 1.0;
}

}  // namespace blink::packing
