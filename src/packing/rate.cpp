#include <algorithm>
#include <cmath>
#include <limits>

#include "blink/common/thread_pool.h"
#include "blink/graph/maxflow.h"
#include "blink/packing/packing.h"

namespace blink::packing {

double optimal_rate(const graph::DiGraph& g, int root, int max_workers) {
  const int n = g.num_vertices();
  if (n <= 1) return 0.0;
  if (max_workers <= 1 || n <= 4) {
    return graph::broadcast_rate_upper_bound(g, root);
  }
  // Edmonds: the packing optimum is min over v != root of maxflow(root->v).
  // Each max-flow builds its own residual graph, so the destinations are
  // independent; the min of exact doubles is order-free, making the parallel
  // scan bit-identical to the serial one.
  std::vector<double> flows(static_cast<std::size_t>(n),
                            std::numeric_limits<double>::infinity());
  common::parallel_for(static_cast<std::size_t>(n),
                       static_cast<std::size_t>(max_workers),
                       [&](std::size_t v) {
                         const int dst = static_cast<int>(v);
                         if (dst == root) return;
                         flows[v] = graph::max_flow(g, root, dst);
                       });
  double rate = std::numeric_limits<double>::infinity();
  for (const double f : flows) rate = std::min(rate, f);
  return rate;
}

namespace {

// Load per capacity group (both directions of a shared bundle accumulate
// into one budget).
std::vector<double> group_loads(const graph::DiGraph& g,
                                const std::vector<WeightedTree>& trees) {
  std::vector<double> load(static_cast<std::size_t>(g.num_groups()), 0.0);
  for (const auto& wt : trees) {
    for (const int e : wt.tree.edge_ids) {
      load[static_cast<std::size_t>(g.edge(e).group)] += wt.weight;
    }
  }
  return load;
}

}  // namespace

bool respects_capacities(const graph::DiGraph& g,
                         const std::vector<WeightedTree>& trees,
                         double tolerance) {
  const auto load = group_loads(g, trees);
  const auto caps = g.group_capacities();
  for (int grp = 0; grp < g.num_groups(); ++grp) {
    if (load[static_cast<std::size_t>(grp)] >
        caps[static_cast<std::size_t>(grp)] * (1.0 + tolerance)) {
      return false;
    }
  }
  return true;
}

double tighten_factor(const graph::DiGraph& g,
                      const std::vector<WeightedTree>& trees) {
  const auto load = group_loads(g, trees);
  const auto caps = g.group_capacities();
  double factor = std::numeric_limits<double>::infinity();
  for (int grp = 0; grp < g.num_groups(); ++grp) {
    const double l = load[static_cast<std::size_t>(grp)];
    if (l > 0.0) {
      factor = std::min(factor, caps[static_cast<std::size_t>(grp)] / l);
    }
  }
  return std::isfinite(factor) ? factor : 1.0;
}

}  // namespace blink::packing
