#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "blink/common/thread_pool.h"
#include "blink/packing/packing.h"
#include "blink/solver/ilp.h"

namespace blink::packing {
namespace {

// LP: max sum(w) s.t. per-capacity-group budgets, over |candidates|.
solver::LpProblem fractional_lp(const graph::DiGraph& g,
                                const std::vector<WeightedTree>& candidates) {
  solver::LpProblem lp;
  lp.c.assign(candidates.size(), 1.0);
  lp.a.assign(static_cast<std::size_t>(g.num_groups()),
              std::vector<double>(candidates.size(), 0.0));
  const auto caps = g.group_capacities();
  lp.b.assign(caps.begin(), caps.end());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (const int e : candidates[i].tree.edge_ids) {
      lp.a[static_cast<std::size_t>(g.edge(e).group)][i] += 1.0;
    }
  }
  return lp;
}

std::vector<WeightedTree> trees_from_lp(
    const std::vector<WeightedTree>& candidates, const std::vector<double>& w,
    double min_weight) {
  std::vector<WeightedTree> out;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (w[i] > min_weight) out.push_back({candidates[i].tree, w[i]});
  }
  return out;
}

double total_weight(const std::vector<WeightedTree>& trees) {
  double total = 0.0;
  for (const auto& wt : trees) total += wt.weight;
  return total;
}

}  // namespace

MinimizeResult minimize_trees(const graph::DiGraph& g, int root,
                              const std::vector<WeightedTree>& candidates,
                              const MinimizeOptions& options) {
  MinimizeResult result;
  result.optimal = optimal_rate(g, root, options.max_workers);
  if (candidates.empty() || result.optimal <= 0.0) return result;

  // Restrict to the support of the fractional LP optimum first: a basic
  // optimal solution uses at most |groups| trees, which keeps the ILP small
  // while preserving the achievable rate.
  const auto full_lp = fractional_lp(g, candidates);
  auto full_sol = solver::solve_lp(full_lp);
  assert(full_sol.status == solver::LpStatus::kOptimal);
  if (g.has_shared_groups()) {
    // Undirected packing (§3.3): Edmonds' min-cut bound is not tight
    // (Nash-Williams/Tutte governs); measure against the best known packing.
    result.optimal = full_sol.objective;
  }
  const double target = (1.0 - options.threshold) * result.optimal;
  const std::vector<WeightedTree> support =
      trees_from_lp(candidates, full_sol.x, 1e-9);
  if (support.empty()) return result;

  // ---- Stage 1: the §3.2.1 ILP with unit weights ---------------------------
  double unit = options.unit;
  if (unit <= 0.0) {
    unit = std::numeric_limits<double>::infinity();
    for (const auto& wt : support) {
      for (const int e : wt.tree.edge_ids) {
        unit = std::min(unit, g.edge(e).capacity);
      }
    }
  }

  // Each candidate may be selected multiple times if its bottleneck edge has
  // headroom (a tree over doubled NVLink lanes can carry two units); expand
  // copies into separate 0/1 variables.
  std::vector<std::size_t> var_tree;
  for (std::size_t i = 0; i < support.size(); ++i) {
    double bottleneck = std::numeric_limits<double>::infinity();
    for (const int e : support[i].tree.edge_ids) {
      bottleneck = std::min(bottleneck, g.edge(e).capacity);
    }
    const int copies =
        std::max(1, static_cast<int>(std::floor(bottleneck / unit + 1e-9)));
    for (int c = 0; c < copies; ++c) var_tree.push_back(i);
  }

  solver::LpProblem ilp;
  ilp.c.resize(var_tree.size());
  for (std::size_t v = 0; v < var_tree.size(); ++v) {
    const double depth = support[var_tree[v]].tree.depth(g);
    ilp.c[v] = std::max(
        0.0, 1.0 - options.depth_penalty * depth / g.num_vertices());
  }
  ilp.a.assign(static_cast<std::size_t>(g.num_groups()),
               std::vector<double>(var_tree.size(), 0.0));
  const auto group_caps = g.group_capacities();
  ilp.b.resize(static_cast<std::size_t>(g.num_groups()));
  for (int grp = 0; grp < g.num_groups(); ++grp) {
    ilp.b[static_cast<std::size_t>(grp)] =
        group_caps[static_cast<std::size_t>(grp)] / unit;
  }
  for (std::size_t v = 0; v < var_tree.size(); ++v) {
    for (const int e : support[var_tree[v]].tree.edge_ids) {
      ilp.a[static_cast<std::size_t>(g.edge(e).group)][v] += 1.0;
    }
  }
  const auto ilp_sol = solver::solve_01(ilp, {options.ilp_max_nodes});

  double ilp_rate = 0.0;
  for (std::size_t v = 0; v < var_tree.size(); ++v) {
    if (ilp_sol.feasible && ilp_sol.x[v] > 0.5) ilp_rate += unit;
  }
  if (ilp_sol.feasible && ilp_rate >= target) {
    // Merge selected copies back into per-tree weights.
    std::vector<double> weight(support.size(), 0.0);
    for (std::size_t v = 0; v < var_tree.size(); ++v) {
      if (ilp_sol.x[v] > 0.5) weight[var_tree[v]] += unit;
    }
    result.trees = trees_from_lp(support, weight, 0.0);
    result.total_rate = total_weight(result.trees);
    result.stage = MinimizeStage::kIlp;
    assert(respects_capacities(g, result.trees));
    return result;
  }

  // ---- Stage 2: relax to fractional weights (§3.2.1 iterative relaxation) --
  auto trees = support;
  const double lp_objective = full_sol.objective;

  // Prune lightest trees while the remaining support still reaches the
  // target rate (re-solving the LP on the reduced support each time). The
  // serial search accepts the first (lightest-ordered) drop whose reduced
  // LP still reaches the target; the parallel version evaluates drop
  // candidates in blocks of the pool width and accepts the smallest
  // successful index — the same drop the serial scan would have taken, so
  // the prune sequence is identical at any worker count (each candidate's
  // LP solve is deterministic in its input).
  const std::size_t block =
      options.max_workers > 1 ? static_cast<std::size_t>(options.max_workers)
                              : 1;
  bool pruned = true;
  while (pruned && trees.size() > 1) {
    pruned = false;
    std::sort(trees.begin(), trees.end(),
              [](const WeightedTree& a, const WeightedTree& b) {
                return a.weight < b.weight;
              });
    for (std::size_t base = 0; base < trees.size() && !pruned; base += block) {
      const std::size_t count = std::min(block, trees.size() - base);
      std::vector<solver::LpSolution> sols(count);
      std::vector<std::vector<WeightedTree>> reductions(count);
      common::parallel_for(count, block, [&](std::size_t k) {
        const std::size_t drop = base + k;
        auto& reduced = reductions[k];
        reduced.reserve(trees.size() - 1);
        for (std::size_t i = 0; i < trees.size(); ++i) {
          if (i != drop) reduced.push_back(trees[i]);
        }
        sols[k] = solver::solve_lp(fractional_lp(g, reduced));
      });
      for (std::size_t k = 0; k < count; ++k) {
        if (sols[k].objective + 1e-9 >= std::min(target, lp_objective)) {
          trees = trees_from_lp(reductions[k], sols[k].x, 1e-9);
          pruned = true;
          break;
        }
      }
    }
  }

  result.trees = std::move(trees);
  result.total_rate = total_weight(result.trees);
  result.stage = MinimizeStage::kRelaxed;
  assert(respects_capacities(g, result.trees));
  return result;
}

}  // namespace blink::packing
