#include "blink/blink/plan_io.h"

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace blink {

namespace {

// Little-endian fixed-width writes into a growing string. The format is
// declared little-endian; on the LP64 little-endian hosts this project
// targets a memcpy is exactly that.
class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

 private:
  void raw(const void* p, std::size_t n) {
    out_->append(static_cast<const char*>(p), n);
  }
  std::string* out_;
};

[[noreturn]] void corrupt(const char* what) {
  throw std::invalid_argument(std::string("plan store: ") + what);
}

class Reader {
 public:
  Reader(std::string_view buf, std::size_t pos) : buf_(buf), pos_(pos) {
    if (pos_ > buf_.size()) corrupt("truncated file");
  }
  std::uint32_t u32() { return fixed<std::uint32_t>(); }
  std::uint64_t u64() { return fixed<std::uint64_t>(); }
  std::int32_t i32() { return fixed<std::int32_t>(); }
  double f64() { return fixed<double>(); }
  // A double field that must be a real quantity: a bit-flipped exponent
  // yielding NaN/inf passes every sign check downstream (NaN compares false
  // against everything) and would flow through execute() into results.
  double finite_f64() {
    const double v = f64();
    if (!std::isfinite(v)) corrupt("non-finite value");
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(buf_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  // A count of items that each occupy at least |item_bytes| more input;
  // checking up front keeps a corrupt length from triggering a huge
  // allocation before the overrun would be noticed.
  std::uint32_t count(std::size_t item_bytes) {
    const std::uint32_t n = u32();
    if (remaining() / item_bytes < n) corrupt("truncated file");
    return n;
  }
  std::size_t remaining() const { return buf_.size() - pos_; }
  std::size_t pos() const { return pos_; }

 private:
  template <typename T>
  T fixed() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void need(std::size_t n) {
    if (remaining() < n) corrupt("truncated file");
  }

  std::string_view buf_;
  std::size_t pos_;
};

void write_int_vector(Writer* w, const std::vector<int>& v) {
  w->u32(static_cast<std::uint32_t>(v.size()));
  for (int x : v) w->i32(x);
}

std::vector<int> read_int_vector(Reader* r) {
  const std::uint32_t n = r->count(sizeof(std::int32_t));
  std::vector<int> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(r->i32());
  return v;
}

}  // namespace

std::uint64_t fabric_fingerprint(
    const std::vector<topo::Topology>& servers,
    const sim::FabricParams& params,
    const std::vector<std::string>& backend_names) {
  FingerprintHasher fp;
  fp.str("blink-plan-store");
  fp.u64(servers.size());
  for (const topo::Topology& t : servers) {
    fp.i32(static_cast<int>(t.kind));
    fp.str(t.name);
    fp.i32(t.num_gpus);
    fp.f64(t.nvlink_lane_bw);
    fp.u64(t.nvlinks.size());
    for (const topo::NvlinkEdge& e : t.nvlinks) {
      fp.i32(e.a);
      fp.i32(e.b);
      fp.i32(e.lanes);
    }
    fp.i32(t.has_nvswitch ? 1 : 0);
    fp.f64(t.nvswitch_gpu_bw);
    fp.u64(t.pcie.plx_of_gpu.size());
    for (int x : t.pcie.plx_of_gpu) fp.i32(x);
    fp.u64(t.pcie.cpu_of_plx.size());
    for (int x : t.pcie.cpu_of_plx) fp.i32(x);
    fp.f64(t.pcie.gpu_bw);
    fp.f64(t.pcie.plx_bw);
    fp.f64(t.pcie.qpi_bw);
    fp.u64(t.global_ids.size());
    for (int x : t.global_ids) fp.i32(x);
  }
  fp.f64(params.copy_launch_latency);
  fp.f64(params.reduce_launch_latency);
  fp.f64(params.event_sync_latency);
  fp.f64(params.reduce_bw);
  fp.f64(params.nic_bw);
  // Per-server NIC overrides change routed channel capacities (and the
  // NIC-aware planning built on them); an empty vector hashes as size 0, so
  // uniform fabrics keep one stable fingerprint.
  fp.u64(params.nic_bw_per_server.size());
  for (const double bw : params.nic_bw_per_server) fp.f64(bw);
  fp.f64(params.sysmem_bw);
  fp.u64(backend_names.size());
  for (const std::string& name : backend_names) fp.str(name);
  return fp.value();
}

void hash_options(const TreeGenOptions& treegen, FingerprintHasher* fp) {
  fp->f64(treegen.mwu_epsilon);
  fp->f64(treegen.minimize_threshold);
  fp->i32(treegen.minimize);
  fp->i32(static_cast<int>(treegen.link));
  fp->i32(treegen.bidirectional);
}

void hash_options(const CodeGenOptions& codegen, FingerprintHasher* fp) {
  fp->u64(codegen.chunk_bytes);
  fp->i32(codegen.stream_reuse);
  fp->i32(codegen.max_chunks_per_tree);
}

std::string plan_store_file(const std::string& dir, std::uint64_t fingerprint) {
  char name[32];
  std::snprintf(name, sizeof name, "plans-%016llx.bpc",
                static_cast<unsigned long long>(fingerprint));
  return (std::filesystem::path(dir) / name).string();
}

void serialize_program(const sim::Program& program, std::string* out) {
  Writer w(out);
  w.i32(program.num_streams());
  w.u32(static_cast<std::uint32_t>(program.ops().size()));
  for (const sim::Op& op : program.ops()) {
    w.u32(static_cast<std::uint32_t>(op.kind));
    write_int_vector(&w, op.route);
    w.f64(op.bytes);
    w.f64(op.latency);
    w.i32(op.stream);
    write_int_vector(&w, op.deps);
    w.str(op.label);
  }
}

sim::Program deserialize_program(std::string_view buf, std::size_t* pos) {
  Reader r(buf, *pos);
  sim::Program program;
  const int num_streams = r.i32();
  // Like Reader::count, bound the count against the input size so one
  // corrupt field cannot drive a ~2^31-iteration loop: every real stream is
  // accompanied by serialized ops, so a stream count beyond the remaining
  // byte count is garbage.
  if (num_streams < 0 ||
      static_cast<std::size_t>(num_streams) > r.remaining()) {
    corrupt("implausible stream count");
  }
  for (int s = 0; s < num_streams; ++s) program.new_stream();
  // A minimal op: kind, three empty vector/string lengths, two doubles, and
  // the stream id.
  const std::uint32_t num_ops = r.count(4 * sizeof(std::uint32_t) +
                                        2 * sizeof(double) +
                                        sizeof(std::int32_t));
  for (std::uint32_t i = 0; i < num_ops; ++i) {
    sim::Op op;
    const std::uint32_t kind = r.u32();
    if (kind > static_cast<std::uint32_t>(sim::OpKind::kDelay)) {
      corrupt("unknown op kind");
    }
    op.kind = static_cast<sim::OpKind>(kind);
    op.route = read_int_vector(&r);
    op.bytes = r.finite_f64();
    op.latency = r.finite_f64();
    op.stream = r.i32();
    op.deps = read_int_vector(&r);
    op.label = r.str();
    program.add(std::move(op));
  }
  std::string error;
  if (!program.validate(&error)) corrupt("invalid program");
  *pos = r.pos();
  return program;
}

void serialize_plan_record(const PlanRecord& record, std::string* out) {
  Writer w(out);
  w.str(record.backend_name);
  w.i32(record.kind);
  w.i32(record.root);
  w.f64(record.bytes);
  w.u64(record.chunk_bytes);
  w.i32(record.phase2);
  w.f64(record.meta.seconds);
  w.f64(record.meta.bytes);
  w.f64(record.meta.algorithm_bw);
  w.i32(record.meta.num_trees);
  w.i32(record.meta.num_chunks);
  w.i32(record.meta.num_ops);
  w.i32(record.meta.pipeline_depth);
  w.i32(record.meta.phase1_chunks);
  w.i32(record.meta.phase2_chunks);
  w.i32(record.meta.phase3_chunks);
  write_int_vector(&w, record.footprint);
  serialize_program(record.program, out);
}

PlanRecord deserialize_plan_record(std::string_view buf, std::size_t* pos) {
  Reader r(buf, *pos);
  PlanRecord record;
  record.backend_name = r.str();
  record.kind = r.i32();
  if (record.kind < static_cast<int>(CollectiveKind::kBroadcast) ||
      record.kind > static_cast<int>(CollectiveKind::kReduceScatter)) {
    corrupt("unknown collective kind");
  }
  record.root = r.i32();
  record.bytes = r.finite_f64();
  record.chunk_bytes = r.u64();
  record.phase2 = r.i32();
  if (record.phase2 < static_cast<int>(Phase2Strategy::kNone) ||
      record.phase2 > static_cast<int>(Phase2Strategy::kHierarchical)) {
    corrupt("unknown phase-2 strategy");
  }
  record.meta.seconds = r.finite_f64();
  record.meta.bytes = r.finite_f64();
  record.meta.algorithm_bw = r.finite_f64();
  record.meta.num_trees = r.i32();
  record.meta.num_chunks = r.i32();
  record.meta.num_ops = r.i32();
  record.meta.pipeline_depth = r.i32();
  record.meta.phase1_chunks = r.i32();
  record.meta.phase2_chunks = r.i32();
  record.meta.phase3_chunks = r.i32();
  record.footprint = read_int_vector(&r);
  for (const int c : record.footprint) {
    if (c < 0) corrupt("negative channel in footprint");
  }
  std::size_t p = r.pos();
  record.program = deserialize_program(buf, &p);
  *pos = p;
  return record;
}

void write_plan_store(const std::string& path, const PlanStoreFile& file) {
  std::string buf;
  Writer w(&buf);
  w.u32(kPlanStoreMagic);
  w.u32(kPlanStoreVersion);
  w.u64(file.fingerprint);
  // v4 health section: per-component fingerprints at save time. Loaders
  // compare them against the live fabric's to skip exactly the records whose
  // footprints cross a component whose health has since changed.
  w.u32(static_cast<std::uint32_t>(file.component_fingerprints.size()));
  for (const std::uint64_t fp : file.component_fingerprints) w.u64(fp);
  w.u32(static_cast<std::uint32_t>(file.records.size()));
  for (const PlanRecord& record : file.records) {
    serialize_plan_record(record, &buf);
  }

  // Unique temp name per writer: engines of identical fabrics (e.g. the
  // ranks of an LD_PRELOAD job sharing one store dir) flush to the same
  // |path|, and a shared ".tmp" would let one writer truncate another's
  // half-written file before the rename.
  static std::atomic<unsigned> tmp_seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(tmp_seq.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::invalid_argument("plan store: cannot write " + tmp);
    }
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!out) {
      throw std::invalid_argument("plan store: short write to " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::invalid_argument("plan store: cannot replace " + path);
  }
}

void write_plan_store(const std::string& path, std::uint64_t fingerprint,
                      const std::vector<PlanRecord>& records) {
  PlanStoreFile file;
  file.fingerprint = fingerprint;
  file.records = records;
  write_plan_store(path, file);
}

PlanStoreFile read_plan_store_file(const std::string& path,
                                   std::uint64_t expected_fingerprint) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::invalid_argument("plan store: cannot read " + path);
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());

  Reader r(buf, 0);
  if (r.u32() != kPlanStoreMagic) corrupt("not a plan store file");
  const std::uint32_t version = r.u32();
  if (version != kPlanStoreVersion) corrupt("format version mismatch");
  PlanStoreFile file;
  file.fingerprint = r.u64();
  if (file.fingerprint != expected_fingerprint) {
    corrupt("fabric fingerprint mismatch");
  }
  const std::uint32_t num_components = r.count(sizeof(std::uint64_t));
  file.component_fingerprints.reserve(num_components);
  for (std::uint32_t i = 0; i < num_components; ++i) {
    file.component_fingerprints.push_back(r.u64());
  }
  // A minimal record (empty backend name, empty program) is 72 bytes; this
  // conservative bound keeps a corrupt count field from reserving gigabytes
  // of PlanRecords before the first record parse would reject the file.
  const std::uint32_t count = r.count(64);
  file.records.reserve(count);
  std::size_t pos = r.pos();
  for (std::uint32_t i = 0; i < count; ++i) {
    file.records.push_back(deserialize_plan_record(buf, &pos));
  }
  if (pos != buf.size()) corrupt("trailing bytes after last plan");
  return file;
}

std::vector<PlanRecord> read_plan_store(const std::string& path,
                                        std::uint64_t expected_fingerprint) {
  return read_plan_store_file(path, expected_fingerprint).records;
}

}  // namespace blink
