#include "blink/blink/plan_cache.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace blink {

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::shared_ptr<const CollectivePlan> PlanCache::find(const PlanKey& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void PlanCache::insert(const PlanKey& key,
                       std::shared_ptr<const CollectivePlan> plan) {
  const std::lock_guard<std::mutex> lock(mu_);
  dirty_ = true;
  ++generation_;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(plan));
  index_[key] = lru_.begin();
  while (index_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  dirty_ = true;  // content now diverges from any previously synced store
  ++generation_;
}

std::size_t PlanCache::erase_if(
    const std::function<bool(const CollectivePlan&)>& pred,
    std::vector<PlanKey>* removed) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t erased = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (pred(*it->second)) {
      if (removed) removed->push_back(it->first);
      index_.erase(it->first);
      it = lru_.erase(it);
      ++erased;
    } else {
      ++it;
    }
  }
  if (erased > 0) {
    dirty_ = true;
    ++generation_;
  }
  return erased;
}

std::size_t PlanCache::save(
    const std::string& path, std::uint64_t fabric_fingerprint,
    const std::function<std::string(int)>& backend_name, bool mark_clean,
    const std::vector<std::uint64_t>& component_fingerprints) const {
  PlanStoreFile file;
  file.fingerprint = fabric_fingerprint;
  file.component_fingerprints = component_fingerprints;
  std::vector<PlanRecord>& records = file.records;
  std::uint64_t snapshot_generation = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snapshot_generation = generation_;
    records.reserve(lru_.size());
    // Least-recently-used first: a load replays insertions in this order,
    // so the reloaded cache ends up with the same recency ranking.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      const CollectivePlan& plan = *it->second;
      PlanRecord record;
      record.backend_name = backend_name(plan.backend());
      record.kind = static_cast<int>(plan.kind());
      record.root = plan.root();
      record.bytes = plan.bytes();
      record.chunk_bytes = plan.chunk_bytes();
      record.phase2 = static_cast<int>(plan.phase2_strategy());
      record.meta = plan.meta();
      record.program = plan.program();
      record.footprint = plan.channel_footprint();
      records.push_back(std::move(record));
    }
  }
  write_plan_store(path, file);
  if (mark_clean) {
    // Everything cached at snapshot time is now in the canonical store;
    // only mark the cache clean if nothing changed while the file was
    // being written (a racing insert must keep it dirty so its plan
    // reaches the next flush).
    const std::lock_guard<std::mutex> lock(mu_);
    if (generation_ == snapshot_generation) dirty_ = false;
  }
  return records.size();
}

std::size_t PlanCache::load(
    const std::string& path, std::uint64_t fabric_fingerprint,
    const void* owner,
    const std::function<int(std::string_view)>& backend_id,
    const std::function<void(const PlanRecord&)>& validate, bool mark_clean,
    const std::function<bool(const PlanRecord&,
                             const std::vector<std::uint64_t>&)>& adopt,
    std::size_t* skipped_out) {
  const PlanStoreFile file = read_plan_store_file(path, fabric_fingerprint);
  const std::vector<PlanRecord>& records = file.records;
  // Validate every record before adopting any: a store that is rejected
  // must leave the cache untouched. Records the |adopt| filter declines are
  // skipped (health drift is per-record, not a reason to reject the file)
  // but still validated: a corrupt record fails the load outright.
  std::vector<int> backends;
  std::vector<char> adopted;
  backends.reserve(records.size());
  adopted.reserve(records.size());
  std::size_t num_skipped = 0;
  for (const PlanRecord& record : records) {
    const int id = backend_id(record.backend_name);
    if (id < 0) {
      throw std::invalid_argument("plan store: unknown backend \"" +
                                  record.backend_name + "\"");
    }
    if (validate) validate(record);
    backends.push_back(id);
    const bool take = !adopt || adopt(record, file.component_fingerprints);
    adopted.push_back(take ? 1 : 0);
    if (!take) ++num_skipped;
  }
  bool had_unsaved = false;
  std::uint64_t snapshot_generation = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    had_unsaved = dirty_;
    snapshot_generation = generation_;
  }
  std::size_t num_adopted = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!adopted[i]) continue;
    const PlanRecord& record = records[i];
    auto plan = std::make_shared<const CollectivePlan>(
        owner, static_cast<CollectiveKind>(record.kind), record.bytes,
        record.root, backends[i], record.chunk_bytes, record.program,
        record.meta, std::vector<std::shared_ptr<const TreeSet>>{},
        static_cast<Phase2Strategy>(record.phase2), record.footprint);
    const PlanKey key = plan->key();
    insert(key, std::move(plan));
    ++num_adopted;
  }
  if (mark_clean && !had_unsaved && num_skipped == 0) {
    // The cache now mirrors the canonical store it just read (the common
    // case: a warm-load into an empty cache), so a flush with no further
    // compiles can be skipped. Plans cached unsaved before the load are
    // still unsaved, an insert that raced the load bumped the generation
    // past our own inserts, and a load that skipped stale records must stay
    // dirty so the next flush drops them from the file: all keep the flag.
    const std::lock_guard<std::mutex> lock(mu_);
    if (generation_ == snapshot_generation + num_adopted) dirty_ = false;
  }
  if (skipped_out) *skipped_out = num_skipped;
  return num_adopted;
}

}  // namespace blink
