#include "blink/blink/plan_cache.h"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace blink {

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::shared_ptr<const CollectivePlan> PlanCache::find(const PlanKey& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void PlanCache::insert(const PlanKey& key,
                       std::shared_ptr<const CollectivePlan> plan) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(plan));
  index_[key] = lru_.begin();
  while (index_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

std::size_t PlanCache::save(
    const std::string& path, std::uint64_t fabric_fingerprint,
    const std::function<std::string(int)>& backend_name) const {
  std::vector<PlanRecord> records;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    records.reserve(lru_.size());
    // Least-recently-used first: a load replays insertions in this order,
    // so the reloaded cache ends up with the same recency ranking.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      const CollectivePlan& plan = *it->second;
      PlanRecord record;
      record.backend_name = backend_name(plan.backend());
      record.kind = static_cast<int>(plan.kind());
      record.root = plan.root();
      record.bytes = plan.bytes();
      record.chunk_bytes = plan.chunk_bytes();
      record.meta = plan.meta();
      record.program = plan.program();
      records.push_back(std::move(record));
    }
  }
  write_plan_store(path, fabric_fingerprint, records);
  return records.size();
}

std::size_t PlanCache::load(
    const std::string& path, std::uint64_t fabric_fingerprint,
    const void* owner,
    const std::function<int(std::string_view)>& backend_id,
    const std::function<void(const PlanRecord&)>& validate) {
  const std::vector<PlanRecord> records =
      read_plan_store(path, fabric_fingerprint);
  // Validate every record before adopting any: a store that is rejected
  // must leave the cache untouched.
  std::vector<int> backends;
  backends.reserve(records.size());
  for (const PlanRecord& record : records) {
    const int id = backend_id(record.backend_name);
    if (id < 0) {
      throw std::invalid_argument("plan store: unknown backend \"" +
                                  record.backend_name + "\"");
    }
    if (validate) validate(record);
    backends.push_back(id);
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    const PlanRecord& record = records[i];
    auto plan = std::make_shared<const CollectivePlan>(
        owner, static_cast<CollectiveKind>(record.kind), record.bytes,
        record.root, backends[i], record.chunk_bytes, record.program,
        record.meta, std::vector<std::shared_ptr<const TreeSet>>{});
    const PlanKey key = plan->key();
    insert(key, std::move(plan));
  }
  return records.size();
}

}  // namespace blink
