#include "blink/blink/plan_cache.h"

#include <algorithm>
#include <utility>

namespace blink {

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::shared_ptr<const CollectivePlan> PlanCache::find(const PlanKey& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void PlanCache::insert(const PlanKey& key,
                       std::shared_ptr<const CollectivePlan> plan) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(plan));
  index_[key] = lru_.begin();
  while (index_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

}  // namespace blink
