#include "blink/blink/treegen.h"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace blink {
namespace {

// A BFS (shortest-hop) arborescence with the neighbour scan rotated by
// |rotation|: the shallowest spanning trees the graph admits. Added to the
// MWU candidates so the minimizer can prefer low-depth trees (§4.2.1 -- deep
// trees pay more pipeline fill).
std::optional<graph::Arborescence> bfs_tree(const graph::DiGraph& g, int root,
                                            int rotation) {
  const int n = g.num_vertices();
  std::vector<int> in_edge(static_cast<std::size_t>(n), -1);
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<int> frontier{root};
  seen[static_cast<std::size_t>(root)] = true;
  int reached = 1;
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const int u = frontier[i];
    const auto& out = g.out_edges(u);
    for (std::size_t k = 0; k < out.size(); ++k) {
      const int e = out[(k + static_cast<std::size_t>(rotation)) % out.size()];
      const int v = g.edge(e).dst;
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        in_edge[static_cast<std::size_t>(v)] = e;
        frontier.push_back(v);
        ++reached;
      }
    }
  }
  if (reached != n) return std::nullopt;
  graph::Arborescence arb;
  arb.root = root;
  for (int v = 0; v < n; ++v) {
    if (v != root) arb.edge_ids.push_back(in_edge[static_cast<std::size_t>(v)]);
  }
  std::sort(arb.edge_ids.begin(), arb.edge_ids.end());
  return arb;
}

}  // namespace

TreeSet generate_trees(const topo::Topology& topo, int root,
                       const TreeGenOptions& options) {
  assert(root >= 0 && root < topo.num_gpus);
  TreeSet set;
  set.root = root;
  set.link = options.link;
  set.bidirectional = options.bidirectional;
  set.graph = options.link == topo::LinkType::kPCIe
                  ? graph::pcie_digraph(topo)
                  : graph::nvlink_digraph(topo, options.bidirectional);
  if (topo.num_gpus <= 1 || set.graph.num_edges() == 0 ||
      !set.graph.reachable_from(root)) {
    return set;
  }

  packing::MwuOptions mwu;
  mwu.epsilon = options.mwu_epsilon;
  auto packed = packing::mwu_pack(set.graph, root, mwu);
  set.mwu_tree_count = static_cast<int>(packed.trees.size());

  // Seed the candidate pool with shallow BFS trees so the minimizer can
  // trade depth at equal rate (the LP re-derives all weights). Irrelevant
  // when minimization is off (raw MWU ablation).
  for (int rot = 0; options.minimize && rot < set.graph.num_vertices();
       ++rot) {
    if (auto arb = bfs_tree(set.graph, root, rot); arb.has_value()) {
      bool duplicate = false;
      for (const auto& wt : packed.trees) {
        if (wt.tree.edge_ids == arb->edge_ids) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) packed.trees.push_back({*arb, 0.0});
    }
  }
  set.optimal_rate =
      packing::optimal_rate(set.graph, root, options.max_workers);

  if (options.minimize) {
    packing::MinimizeOptions min_opts;
    min_opts.threshold = options.minimize_threshold;
    min_opts.max_workers = options.max_workers;
    auto minimized =
        packing::minimize_trees(set.graph, root, packed.trees, min_opts);
    set.trees = std::move(minimized.trees);
    set.rate = minimized.total_rate;
    set.stage = minimized.stage;
    // For undirected packing the min-cut bound is loose; report the bound
    // the minimizer measured against.
    set.optimal_rate = minimized.optimal;
  } else {
    set.trees = std::move(packed.trees);
    set.rate = packed.total_rate;
    set.stage = packing::MinimizeStage::kRelaxed;
  }
  return set;
}

}  // namespace blink
