#include "blink/blink/nccl_compat.h"

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

struct blinkComm {
  std::unique_ptr<blink::Communicator> impl;
  blink::CollectiveResult last;
};

namespace {

bool build_machine(const char* machine, blink::topo::Topology* out) {
  const std::string m = machine == nullptr ? "" : machine;
  if (m == "dgx1p") {
    *out = blink::topo::make_dgx1p();
  } else if (m == "dgx1v") {
    *out = blink::topo::make_dgx1v();
  } else if (m == "dgx2") {
    *out = blink::topo::make_dgx2();
  } else {
    return false;
  }
  return true;
}

template <typename Fn>
blinkResult_t run(blinkComm_t comm, Fn&& fn) {
  if (comm == nullptr || comm->impl == nullptr) return blinkInvalidArgument;
  try {
    comm->last = fn(*comm->impl);
    return blinkSuccess;
  } catch (const std::exception&) {
    return blinkInternalError;
  }
}

}  // namespace

extern "C" {

size_t blinkTypeSize(blinkDataType_t dtype) {
  switch (dtype) {
    case blinkInt8:
    case blinkUint8:
      return 1;
    case blinkFloat16:
      return 2;
    case blinkInt32:
    case blinkUint32:
    case blinkFloat32:
      return 4;
    case blinkInt64:
    case blinkUint64:
    case blinkFloat64:
      return 8;
  }
  return 0;
}

blinkResult_t blinkCommInitAll(blinkComm_t* comm, const char* machine,
                               int ndev, const int* gpu_ids) {
  if (comm == nullptr || ndev <= 0 || gpu_ids == nullptr) {
    return blinkInvalidArgument;
  }
  blink::topo::Topology full;
  if (!build_machine(machine, &full)) return blinkInvalidArgument;
  for (int i = 0; i < ndev; ++i) {
    if (gpu_ids[i] < 0 || gpu_ids[i] >= full.num_gpus) {
      return blinkInvalidArgument;
    }
  }
  try {
    const std::vector<int> ids(gpu_ids, gpu_ids + ndev);
    auto topo = blink::topo::induced_topology(full, ids);
    auto c = std::make_unique<blinkComm>();
    c->impl = std::make_unique<blink::Communicator>(std::move(topo));
    *comm = c.release();
    return blinkSuccess;
  } catch (const std::exception&) {
    return blinkInternalError;
  }
}

blinkResult_t blinkCommDestroy(blinkComm_t comm) {
  delete comm;
  return blinkSuccess;
}

blinkResult_t blinkCommCount(blinkComm_t comm, int* count) {
  if (comm == nullptr || count == nullptr) return blinkInvalidArgument;
  *count = comm->impl->num_gpus();
  return blinkSuccess;
}

blinkResult_t blinkBroadcast(const void*, void*, size_t count,
                             blinkDataType_t dtype, int root, blinkComm_t comm,
                             void*) {
  if (comm != nullptr &&
      (root < 0 || root >= comm->impl->num_gpus())) {
    return blinkInvalidArgument;
  }
  const double bytes = static_cast<double>(count * blinkTypeSize(dtype));
  return run(comm, [&](blink::Communicator& c) {
    return c.broadcast(bytes, root);
  });
}

blinkResult_t blinkAllReduce(const void*, void*, size_t count,
                             blinkDataType_t dtype, blinkRedOp_t,
                             blinkComm_t comm, void*) {
  const double bytes = static_cast<double>(count * blinkTypeSize(dtype));
  return run(comm,
             [&](blink::Communicator& c) { return c.all_reduce(bytes); });
}

blinkResult_t blinkReduce(const void*, void*, size_t count,
                          blinkDataType_t dtype, blinkRedOp_t, int root,
                          blinkComm_t comm, void*) {
  if (comm != nullptr &&
      (root < 0 || root >= comm->impl->num_gpus())) {
    return blinkInvalidArgument;
  }
  const double bytes = static_cast<double>(count * blinkTypeSize(dtype));
  return run(comm,
             [&](blink::Communicator& c) { return c.reduce(bytes, root); });
}

blinkResult_t blinkAllGather(const void*, void*, size_t sendcount,
                             blinkDataType_t dtype, blinkComm_t comm, void*) {
  const double bytes = static_cast<double>(sendcount * blinkTypeSize(dtype));
  return run(comm,
             [&](blink::Communicator& c) { return c.all_gather(bytes); });
}

blinkResult_t blinkReduceScatter(const void*, void*, size_t recvcount,
                                 blinkDataType_t dtype, blinkRedOp_t,
                                 blinkComm_t comm, void*) {
  const double bytes = static_cast<double>(recvcount * blinkTypeSize(dtype));
  return run(comm, [&](blink::Communicator& c) {
    return c.reduce_scatter(bytes * c.num_gpus());
  });
}

blinkResult_t blinkCommLastResult(blinkComm_t comm,
                                  blink::CollectiveResult* result) {
  if (comm == nullptr || result == nullptr) return blinkInvalidArgument;
  *result = comm->last;
  return blinkSuccess;
}

}  // extern "C"
