#include "blink/blink/nccl_compat.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

struct blinkComm {
  std::unique_ptr<blink::Communicator> impl;
  blink::CollectiveResult last;
  std::vector<blink::CollectiveRequest> pending;      // queued group requests
  std::vector<blink::CollectiveResult> group_results;  // last group's results
};

namespace {

// NCCL group state is per-thread: a depth counter and the comms with queued
// work. Only the outermost blinkGroupEnd launches.
thread_local int g_group_depth = 0;
thread_local std::vector<blinkComm_t> g_group_comms;

bool build_machine(const char* machine, blink::topo::Topology* out) {
  const std::string m = machine == nullptr ? "" : machine;
  if (m == "dgx1p") {
    *out = blink::topo::make_dgx1p();
  } else if (m == "dgx1v") {
    *out = blink::topo::make_dgx1v();
  } else if (m == "dgx2") {
    *out = blink::topo::make_dgx2();
  } else {
    return false;
  }
  return true;
}

// Runs one collective now, or queues it when inside a group.
blinkResult_t submit(blinkComm_t comm, blink::CollectiveKind kind,
                     double bytes, int root) {
  if (comm == nullptr || comm->impl == nullptr) return blinkInvalidArgument;
  if (g_group_depth > 0) {
    if (comm->pending.empty()) g_group_comms.push_back(comm);
    comm->pending.push_back(blink::CollectiveRequest{kind, bytes, root});
    return blinkSuccess;
  }
  try {
    comm->last = comm->impl->execute(*comm->impl->compile(kind, bytes, root));
    return blinkSuccess;
  } catch (const std::exception&) {
    return blinkInternalError;
  }
}

blinkResult_t flush_group(blinkComm_t comm) {
  try {
    comm->group_results = comm->impl->run(comm->pending);
    comm->pending.clear();
  } catch (const std::exception&) {
    comm->pending.clear();
    comm->group_results.clear();  // don't leave a previous group's results
    return blinkInternalError;
  }
  // The group summary: makespan of the batch, total payload.
  blink::CollectiveResult summary;
  for (const auto& r : comm->group_results) {
    summary.seconds = std::max(summary.seconds, r.seconds);
    summary.bytes += r.bytes;
    summary.num_trees += r.num_trees;
    summary.num_ops += r.num_ops;
    summary.num_chunks = std::max(summary.num_chunks, r.num_chunks);
  }
  summary.algorithm_bw =
      summary.seconds > 0.0 ? summary.bytes / summary.seconds : 0.0;
  comm->last = summary;
  return blinkSuccess;
}

}  // namespace

extern "C" {

size_t blinkTypeSize(blinkDataType_t dtype) {
  switch (dtype) {
    case blinkInt8:
    case blinkUint8:
      return 1;
    case blinkFloat16:
      return 2;
    case blinkInt32:
    case blinkUint32:
    case blinkFloat32:
      return 4;
    case blinkInt64:
    case blinkUint64:
    case blinkFloat64:
      return 8;
  }
  return 0;
}

blinkResult_t blinkCommInitAll(blinkComm_t* comm, const char* machine,
                               int ndev, const int* gpu_ids) {
  if (comm == nullptr || ndev <= 0 || gpu_ids == nullptr) {
    return blinkInvalidArgument;
  }
  blink::topo::Topology full;
  if (!build_machine(machine, &full)) return blinkInvalidArgument;
  for (int i = 0; i < ndev; ++i) {
    if (gpu_ids[i] < 0 || gpu_ids[i] >= full.num_gpus) {
      return blinkInvalidArgument;
    }
  }
  try {
    const std::vector<int> ids(gpu_ids, gpu_ids + ndev);
    auto topo = blink::topo::induced_topology(full, ids);
    auto c = std::make_unique<blinkComm>();
    c->impl = std::make_unique<blink::Communicator>(std::move(topo));
    *comm = c.release();
    return blinkSuccess;
  } catch (const std::exception&) {
    return blinkInternalError;
  }
}

blinkResult_t blinkCommDestroy(blinkComm_t comm) {
  if (comm != nullptr) {
    const auto it =
        std::find(g_group_comms.begin(), g_group_comms.end(), comm);
    if (it != g_group_comms.end()) g_group_comms.erase(it);
  }
  delete comm;
  return blinkSuccess;
}

blinkResult_t blinkCommCount(blinkComm_t comm, int* count) {
  if (comm == nullptr || count == nullptr) return blinkInvalidArgument;
  *count = comm->impl->num_gpus();
  return blinkSuccess;
}

blinkResult_t blinkGroupStart(void) {
  ++g_group_depth;
  return blinkSuccess;
}

blinkResult_t blinkGroupEnd(void) {
  if (g_group_depth == 0) return blinkInvalidArgument;
  if (--g_group_depth > 0) return blinkSuccess;
  blinkResult_t status = blinkSuccess;
  std::vector<blinkComm_t> comms;
  comms.swap(g_group_comms);
  for (blinkComm_t comm : comms) {
    const blinkResult_t r = flush_group(comm);
    if (r != blinkSuccess) status = r;
  }
  return status;
}

blinkResult_t blinkCommGroupResultCount(blinkComm_t comm, int* count) {
  if (comm == nullptr || count == nullptr) return blinkInvalidArgument;
  *count = static_cast<int>(comm->group_results.size());
  return blinkSuccess;
}

blinkResult_t blinkCommGroupResult(blinkComm_t comm, int index,
                                   blink::CollectiveResult* result) {
  if (comm == nullptr || result == nullptr || index < 0 ||
      index >= static_cast<int>(comm->group_results.size())) {
    return blinkInvalidArgument;
  }
  *result = comm->group_results[static_cast<std::size_t>(index)];
  return blinkSuccess;
}

blinkResult_t blinkBroadcast(const void*, void*, size_t count,
                             blinkDataType_t dtype, int root, blinkComm_t comm,
                             void*) {
  if (count == 0 || blinkTypeSize(dtype) == 0) return blinkInvalidArgument;
  if (comm != nullptr &&
      (root < 0 || root >= comm->impl->num_gpus())) {
    return blinkInvalidArgument;
  }
  const double bytes = static_cast<double>(count * blinkTypeSize(dtype));
  return submit(comm, blink::CollectiveKind::kBroadcast, bytes, root);
}

blinkResult_t blinkAllReduce(const void*, void*, size_t count,
                             blinkDataType_t dtype, blinkRedOp_t,
                             blinkComm_t comm, void*) {
  if (count == 0 || blinkTypeSize(dtype) == 0) return blinkInvalidArgument;
  const double bytes = static_cast<double>(count * blinkTypeSize(dtype));
  return submit(comm, blink::CollectiveKind::kAllReduce, bytes, -1);
}

blinkResult_t blinkReduce(const void*, void*, size_t count,
                          blinkDataType_t dtype, blinkRedOp_t, int root,
                          blinkComm_t comm, void*) {
  if (count == 0 || blinkTypeSize(dtype) == 0) return blinkInvalidArgument;
  if (comm != nullptr &&
      (root < 0 || root >= comm->impl->num_gpus())) {
    return blinkInvalidArgument;
  }
  const double bytes = static_cast<double>(count * blinkTypeSize(dtype));
  return submit(comm, blink::CollectiveKind::kReduce, bytes, root);
}

blinkResult_t blinkAllGather(const void*, void*, size_t sendcount,
                             blinkDataType_t dtype, blinkComm_t comm, void*) {
  if (sendcount == 0 || blinkTypeSize(dtype) == 0) return blinkInvalidArgument;
  const double bytes = static_cast<double>(sendcount * blinkTypeSize(dtype));
  return submit(comm, blink::CollectiveKind::kAllGather, bytes, -1);
}

blinkResult_t blinkReduceScatter(const void*, void*, size_t recvcount,
                                 blinkDataType_t dtype, blinkRedOp_t,
                                 blinkComm_t comm, void*) {
  if (recvcount == 0 || blinkTypeSize(dtype) == 0) return blinkInvalidArgument;
  if (comm == nullptr || comm->impl == nullptr) return blinkInvalidArgument;
  const double bytes = static_cast<double>(recvcount * blinkTypeSize(dtype)) *
                       comm->impl->num_gpus();
  return submit(comm, blink::CollectiveKind::kReduceScatter, bytes, -1);
}

blinkResult_t blinkCommLastResult(blinkComm_t comm,
                                  blink::CollectiveResult* result) {
  if (comm == nullptr || result == nullptr) return blinkInvalidArgument;
  *result = comm->last;
  return blinkSuccess;
}

}  // extern "C"
