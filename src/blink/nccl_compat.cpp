#include "blink/blink/nccl_compat.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "blink/baselines/backends.h"
#include "blink/baselines/nccl_like.h"
#include "blink/blink/multiserver.h"
#include "blink/topology/builders.h"
#include "blink/topology/discovery.h"

struct blinkComm {
  std::unique_ptr<blink::CollectiveEngine> impl;
  blinkBackend_t backend = blinkBackendBlink;
  // Engine backend id collectives compile on: 0 (the default backend) except
  // for auto communicators, which pass CollectiveEngine::kAutoBackend.
  int engine_backend = 0;
  blink::CollectiveResult last;
  std::vector<blink::CollectiveRequest> pending;      // queued group requests
  std::vector<blink::CollectiveResult> group_results;  // last group's results
};

namespace {

// NCCL group state is per-thread: a depth counter and the comms with queued
// work. Only the outermost blinkGroupEnd launches.
thread_local int g_group_depth = 0;
thread_local std::vector<blinkComm_t> g_group_comms;

bool build_machine(const char* machine, blink::topo::Topology* out) {
  const std::string m = machine == nullptr ? "" : machine;
  if (m == "dgx1p") {
    *out = blink::topo::make_dgx1p();
  } else if (m == "dgx1v") {
    *out = blink::topo::make_dgx1v();
  } else if (m == "dgx2") {
    *out = blink::topo::make_dgx2();
  } else {
    return false;
  }
  return true;
}

// Resolves the backend for a new communicator: explicit config wins, then
// the BLINK_BACKEND environment variable, then the Blink default. Returns
// false on an unknown BLINK_BACKEND value.
bool resolve_backend(const blinkBackendConfig_t* config,
                     blinkBackend_t* backend) {
  if (config != nullptr) {
    *backend = config->backend;
    // The cluster backend comes from blinkClusterCommInitAll, not a config.
    return *backend >= blinkBackendBlink && *backend <= blinkBackendAuto;
  }
  const char* env = std::getenv("BLINK_BACKEND");
  if (env == nullptr || *env == '\0') {
    *backend = blinkBackendBlink;
    return true;
  }
  const std::string name = env;
  if (name == "blink") {
    *backend = blinkBackendBlink;
  } else if (name == "nccl") {
    *backend = blinkBackendNccl;
  } else if (name == "ring") {
    *backend = blinkBackendRing;
  } else if (name == "double_binary") {
    *backend = blinkBackendDoubleBinary;
  } else if (name == "butterfly") {
    *backend = blinkBackendButterfly;
  } else if (name == "auto") {
    *backend = blinkBackendAuto;
  } else {
    return false;
  }
  return true;
}

// The plan-store directory for a new communicator: the config field wins,
// then the BLINK_PLAN_CACHE_DIR environment variable, else disabled.
std::string resolve_plan_store_dir(const blinkBackendConfig_t* config) {
  if (config != nullptr && config->plan_cache_dir != nullptr &&
      *config->plan_cache_dir != '\0') {
    return config->plan_cache_dir;
  }
  const char* env = std::getenv("BLINK_PLAN_CACHE_DIR");
  return env == nullptr ? "" : env;
}

// The planner-thread count for a new communicator: the config field wins
// when positive; 0 (or no config) defers to BLINK_PLANNER_THREADS / the
// hardware default inside the engine.
int resolve_planner_threads(const blinkBackendConfig_t* config) {
  return config != nullptr && config->planner_threads > 0
             ? config->planner_threads
             : 0;
}

std::unique_ptr<blink::CollectiveEngine> make_engine(
    blinkBackend_t backend, blink::topo::Topology topo,
    const std::string& plan_store_dir, int planner_threads) {
  using blink::baselines::NcclOptions;
  switch (backend) {
    case blinkBackendBlink: {
      blink::CommunicatorOptions options;
      options.plan_store_dir = plan_store_dir;
      options.planner_threads = planner_threads;
      return std::make_unique<blink::Communicator>(std::move(topo), options);
    }
    case blinkBackendNccl: {
      NcclOptions options;
      options.plan_store_dir = plan_store_dir;
      options.planner_threads = planner_threads;
      return std::make_unique<blink::baselines::NcclCommunicator>(
          std::move(topo), options);
    }
    case blinkBackendRing:
    case blinkBackendDoubleBinary:
    case blinkBackendButterfly: {
      const char* name = backend == blinkBackendRing ? "ring"
                         : backend == blinkBackendDoubleBinary
                             ? "double_binary"
                             : "butterfly";
      const NcclOptions options;  // persistent-kernel step costs, like NCCL
      auto engine = std::make_unique<blink::CollectiveEngine>(
          std::move(topo),
          blink::baselines::apply_persistent_kernel_model(options.fabric),
          blink::EngineOptions{options.memoize, options.plan_cache_capacity,
                               plan_store_dir, planner_threads});
      engine->register_backend(blink::baselines::make_baseline_backend(
          name, engine->topology(), engine->fabric(), options));
      return engine;
    }
    case blinkBackendAuto: {
      // Blink plus every baseline on one engine and fabric; the engine's
      // kAutoBackend selector measures each per shape and keeps the fastest.
      // The warm-load happens lazily at the first collective, so every
      // backend registered here is part of the store fingerprint.
      blink::CommunicatorOptions options;
      options.plan_store_dir = plan_store_dir;
      options.planner_threads = planner_threads;
      auto engine =
          std::make_unique<blink::Communicator>(std::move(topo), options);
      for (const char* name : {"nccl", "ring", "double_binary", "butterfly"}) {
        engine->register_backend(blink::baselines::make_baseline_backend(
            name, engine->topology(), engine->fabric(), NcclOptions{}));
      }
      return engine;
    }
    case blinkBackendCluster:
      break;  // created by blinkClusterCommInitAll, never via config
  }
  return nullptr;
}

// Runs one collective now, or queues it when inside a group.
blinkResult_t submit(blinkComm_t comm, blink::CollectiveKind kind,
                     double bytes, int root) {
  if (comm == nullptr || comm->impl == nullptr) return blinkInvalidArgument;
  if (g_group_depth > 0) {
    if (comm->pending.empty()) g_group_comms.push_back(comm);
    comm->pending.push_back(
        blink::CollectiveRequest{kind, bytes, root, comm->engine_backend});
    return blinkSuccess;
  }
  try {
    comm->last = comm->impl->execute(
        *comm->impl->compile(kind, bytes, root, comm->engine_backend));
    return blinkSuccess;
  } catch (const std::invalid_argument&) {
    return blinkInvalidArgument;
  } catch (const std::exception&) {
    return blinkInternalError;
  }
}

blinkResult_t flush_group(blinkComm_t comm) {
  try {
    comm->group_results = comm->impl->run(comm->pending);
    comm->pending.clear();
  } catch (const std::invalid_argument&) {
    comm->pending.clear();
    comm->group_results.clear();  // don't leave a previous group's results
    return blinkInvalidArgument;
  } catch (const std::exception&) {
    comm->pending.clear();
    comm->group_results.clear();
    return blinkInternalError;
  }
  // The group summary: makespan of the batch, total payload.
  blink::CollectiveResult summary;
  for (const auto& r : comm->group_results) {
    summary.seconds = std::max(summary.seconds, r.seconds);
    summary.bytes += r.bytes;
    summary.num_trees += r.num_trees;
    summary.num_ops += r.num_ops;
    summary.num_chunks = std::max(summary.num_chunks, r.num_chunks);
  }
  summary.algorithm_bw =
      summary.seconds > 0.0 ? summary.bytes / summary.seconds : 0.0;
  comm->last = summary;
  return blinkSuccess;
}

}  // namespace

extern "C" {

size_t blinkTypeSize(blinkDataType_t dtype) {
  switch (dtype) {
    case blinkInt8:
    case blinkUint8:
      return 1;
    case blinkFloat16:
      return 2;
    case blinkInt32:
    case blinkUint32:
    case blinkFloat32:
      return 4;
    case blinkInt64:
    case blinkUint64:
    case blinkFloat64:
      return 8;
  }
  return 0;
}

blinkResult_t blinkCommInitAllWithConfig(blinkComm_t* comm,
                                         const char* machine, int ndev,
                                         const int* gpu_ids,
                                         const blinkBackendConfig_t* config) {
  if (comm == nullptr || ndev <= 0 || gpu_ids == nullptr) {
    return blinkInvalidArgument;
  }
  blinkBackend_t backend = blinkBackendBlink;
  if (!resolve_backend(config, &backend)) return blinkInvalidArgument;
  blink::topo::Topology full;
  if (!build_machine(machine, &full)) return blinkInvalidArgument;
  for (int i = 0; i < ndev; ++i) {
    if (gpu_ids[i] < 0 || gpu_ids[i] >= full.num_gpus) {
      return blinkInvalidArgument;
    }
  }
  try {
    const std::vector<int> ids(gpu_ids, gpu_ids + ndev);
    auto topo = blink::topo::induced_topology(full, ids);
    auto c = std::make_unique<blinkComm>();
    c->impl = make_engine(backend, std::move(topo),
                          resolve_plan_store_dir(config),
                          resolve_planner_threads(config));
    if (c->impl == nullptr) return blinkInvalidArgument;
    c->backend = backend;
    c->engine_backend = backend == blinkBackendAuto
                            ? blink::CollectiveEngine::kAutoBackend
                            : 0;
    *comm = c.release();
    return blinkSuccess;
  } catch (const std::invalid_argument&) {
    return blinkInvalidArgument;
  } catch (const std::exception&) {
    return blinkInternalError;
  }
}

blinkResult_t blinkCommInitAll(blinkComm_t* comm, const char* machine,
                               int ndev, const int* gpu_ids) {
  return blinkCommInitAllWithConfig(comm, machine, ndev, gpu_ids, nullptr);
}

blinkResult_t blinkClusterCommInitAll(blinkComm_t* comm, const char* machine,
                                      int num_servers,
                                      const int* ndev_per_server,
                                      const int* gpu_ids) {
  if (comm == nullptr || num_servers < 2 || ndev_per_server == nullptr ||
      gpu_ids == nullptr) {
    return blinkInvalidArgument;
  }
  blink::topo::Topology full;
  if (!build_machine(machine, &full)) return blinkInvalidArgument;
  try {
    std::vector<blink::topo::Topology> servers;
    servers.reserve(static_cast<std::size_t>(num_servers));
    const int* next = gpu_ids;
    for (int s = 0; s < num_servers; ++s) {
      const int ndev = ndev_per_server[s];
      if (ndev <= 0) return blinkInvalidArgument;
      for (int i = 0; i < ndev; ++i) {
        if (next[i] < 0 || next[i] >= full.num_gpus) {
          return blinkInvalidArgument;
        }
      }
      servers.push_back(blink::topo::induced_topology(
          full, std::vector<int>(next, next + ndev)));
      next += ndev;
    }
    auto c = std::make_unique<blinkComm>();
    blink::ClusterOptions options;
    options.engine.plan_store_dir = resolve_plan_store_dir(nullptr);
    c->impl = std::make_unique<blink::ClusterCommunicator>(std::move(servers),
                                                           options);
    c->backend = blinkBackendCluster;
    *comm = c.release();
    return blinkSuccess;
  } catch (const std::invalid_argument&) {
    return blinkInvalidArgument;
  } catch (const std::exception&) {
    return blinkInternalError;
  }
}

blinkResult_t blinkCommBackend(blinkComm_t comm, blinkBackend_t* backend) {
  if (comm == nullptr || backend == nullptr) return blinkInvalidArgument;
  *backend = comm->backend;
  return blinkSuccess;
}

blinkResult_t blinkCommCacheStats(blinkComm_t comm, blinkCacheStats_t* stats) {
  if (comm == nullptr || comm->impl == nullptr || stats == nullptr) {
    return blinkInvalidArgument;
  }
  const blink::PlanCache& cache = comm->impl->plan_cache();
  stats->hits = cache.hits();
  stats->misses = cache.misses();
  stats->evictions = cache.evictions();
  stats->size = cache.size();
  stats->capacity = cache.capacity();
  return blinkSuccess;
}

blinkResult_t blinkCommExportPlans(blinkComm_t comm, const char* path) {
  if (comm == nullptr || comm->impl == nullptr || path == nullptr ||
      *path == '\0') {
    return blinkInvalidArgument;
  }
  try {
    comm->impl->export_plans(path);
    return blinkSuccess;
  } catch (const std::invalid_argument&) {
    return blinkInvalidArgument;
  } catch (const std::exception&) {
    return blinkInternalError;
  }
}

blinkResult_t blinkCommImportPlans(blinkComm_t comm, const char* path) {
  if (comm == nullptr || comm->impl == nullptr || path == nullptr ||
      *path == '\0') {
    return blinkInvalidArgument;
  }
  try {
    comm->impl->import_plans(path);
    return blinkSuccess;
  } catch (const std::invalid_argument&) {
    return blinkInvalidArgument;
  } catch (const std::exception&) {
    return blinkInternalError;
  }
}

blinkResult_t blinkCommPrecompile(blinkComm_t comm, size_t count,
                                  blinkDataType_t dtype, int root,
                                  int* compiled) {
  if (comm == nullptr || comm->impl == nullptr) return blinkInvalidArgument;
  const size_t elem = blinkTypeSize(dtype);
  if (count == 0 || elem == 0) return blinkInvalidArgument;
  try {
    const std::size_t cold = comm->impl->precompile(
        static_cast<double>(count) * static_cast<double>(elem), root,
        comm->engine_backend);
    if (compiled != nullptr) *compiled = static_cast<int>(cold);
    return blinkSuccess;
  } catch (const std::invalid_argument&) {
    return blinkInvalidArgument;
  } catch (const std::exception&) {
    return blinkInternalError;
  }
}

blinkResult_t blinkCommRepair(blinkComm_t comm, const char* event,
                              const char* channel, int server, int gpu,
                              double factor, int* dropped, int* retained) {
  if (comm == nullptr || comm->impl == nullptr || event == nullptr) {
    return blinkInvalidArgument;
  }
  blink::sim::HealthEvent health;
  const std::string kind = event;
  if (kind == "degrade_link") {
    health.kind = blink::sim::HealthEventKind::kDegradeLink;
  } else if (kind == "fail_link") {
    health.kind = blink::sim::HealthEventKind::kFailLink;
  } else if (kind == "fail_gpu") {
    health.kind = blink::sim::HealthEventKind::kFailGpu;
  } else if (kind == "restore") {
    health.kind = blink::sim::HealthEventKind::kRestoreAll;
  } else {
    return blinkInvalidArgument;
  }
  health.factor = factor;
  if (health.kind == blink::sim::HealthEventKind::kDegradeLink ||
      health.kind == blink::sim::HealthEventKind::kFailLink) {
    if (channel == nullptr) return blinkInvalidArgument;
    const blink::sim::Fabric& fabric = comm->impl->fabric();
    for (int c = 0; c < fabric.num_channels(); ++c) {
      if (fabric.channel_name(c) == channel) {
        health.channel = c;
        break;
      }
    }
    if (health.channel < 0) return blinkInvalidArgument;
  }
  if (health.kind == blink::sim::HealthEventKind::kFailGpu) {
    health.server = server;
    health.gpu = gpu;
  }
  try {
    const blink::RepairReport report = comm->impl->repair_plans(health);
    if (dropped != nullptr) *dropped = static_cast<int>(report.dropped);
    if (retained != nullptr) *retained = static_cast<int>(report.retained);
    return blinkSuccess;
  } catch (const std::invalid_argument&) {
    return blinkInvalidArgument;
  } catch (const std::exception&) {
    return blinkInternalError;
  }
}

blinkResult_t blinkCommDestroy(blinkComm_t comm) {
  if (comm != nullptr) {
    const auto it =
        std::find(g_group_comms.begin(), g_group_comms.end(), comm);
    if (it != g_group_comms.end()) g_group_comms.erase(it);
  }
  delete comm;
  return blinkSuccess;
}

blinkResult_t blinkCommCount(blinkComm_t comm, int* count) {
  if (comm == nullptr || count == nullptr) return blinkInvalidArgument;
  *count = comm->impl->num_gpus();
  return blinkSuccess;
}

blinkResult_t blinkGroupStart(void) {
  ++g_group_depth;
  return blinkSuccess;
}

blinkResult_t blinkGroupEnd(void) {
  if (g_group_depth == 0) return blinkInvalidArgument;
  if (--g_group_depth > 0) return blinkSuccess;
  blinkResult_t status = blinkSuccess;
  std::vector<blinkComm_t> comms;
  comms.swap(g_group_comms);
  for (blinkComm_t comm : comms) {
    const blinkResult_t r = flush_group(comm);
    if (r != blinkSuccess) status = r;
  }
  return status;
}

blinkResult_t blinkCommGroupResultCount(blinkComm_t comm, int* count) {
  if (comm == nullptr || count == nullptr) return blinkInvalidArgument;
  *count = static_cast<int>(comm->group_results.size());
  return blinkSuccess;
}

blinkResult_t blinkCommGroupResult(blinkComm_t comm, int index,
                                   blink::CollectiveResult* result) {
  if (comm == nullptr || result == nullptr || index < 0 ||
      index >= static_cast<int>(comm->group_results.size())) {
    return blinkInvalidArgument;
  }
  *result = comm->group_results[static_cast<std::size_t>(index)];
  return blinkSuccess;
}

blinkResult_t blinkBroadcast(const void*, void*, size_t count,
                             blinkDataType_t dtype, int root, blinkComm_t comm,
                             void*) {
  if (count == 0 || blinkTypeSize(dtype) == 0) return blinkInvalidArgument;
  if (comm != nullptr &&
      (root < 0 || root >= comm->impl->num_gpus())) {
    return blinkInvalidArgument;
  }
  const double bytes = static_cast<double>(count * blinkTypeSize(dtype));
  return submit(comm, blink::CollectiveKind::kBroadcast, bytes, root);
}

blinkResult_t blinkAllReduce(const void*, void*, size_t count,
                             blinkDataType_t dtype, blinkRedOp_t,
                             blinkComm_t comm, void*) {
  if (count == 0 || blinkTypeSize(dtype) == 0) return blinkInvalidArgument;
  const double bytes = static_cast<double>(count * blinkTypeSize(dtype));
  return submit(comm, blink::CollectiveKind::kAllReduce, bytes, -1);
}

blinkResult_t blinkReduce(const void*, void*, size_t count,
                          blinkDataType_t dtype, blinkRedOp_t, int root,
                          blinkComm_t comm, void*) {
  if (count == 0 || blinkTypeSize(dtype) == 0) return blinkInvalidArgument;
  if (comm != nullptr &&
      (root < 0 || root >= comm->impl->num_gpus())) {
    return blinkInvalidArgument;
  }
  const double bytes = static_cast<double>(count * blinkTypeSize(dtype));
  return submit(comm, blink::CollectiveKind::kReduce, bytes, root);
}

blinkResult_t blinkAllGather(const void*, void*, size_t sendcount,
                             blinkDataType_t dtype, blinkComm_t comm, void*) {
  if (sendcount == 0 || blinkTypeSize(dtype) == 0) return blinkInvalidArgument;
  const double bytes = static_cast<double>(sendcount * blinkTypeSize(dtype));
  return submit(comm, blink::CollectiveKind::kAllGather, bytes, -1);
}

blinkResult_t blinkReduceScatter(const void*, void*, size_t recvcount,
                                 blinkDataType_t dtype, blinkRedOp_t,
                                 blinkComm_t comm, void*) {
  if (recvcount == 0 || blinkTypeSize(dtype) == 0) return blinkInvalidArgument;
  if (comm == nullptr || comm->impl == nullptr) return blinkInvalidArgument;
  const double bytes = static_cast<double>(recvcount * blinkTypeSize(dtype)) *
                       comm->impl->num_gpus();
  return submit(comm, blink::CollectiveKind::kReduceScatter, bytes, -1);
}

blinkResult_t blinkCommLastResult(blinkComm_t comm,
                                  blink::CollectiveResult* result) {
  if (comm == nullptr || result == nullptr) return blinkInvalidArgument;
  *result = comm->last;
  return blinkSuccess;
}

}  // extern "C"
