#include "blink/blink/hybrid.h"

#include <algorithm>
#include <cassert>

namespace blink {

HybridSplit compute_hybrid_split(double total_bytes, double nvlink_rate,
                                 double pcie_rate, double t_dpa) {
  assert(total_bytes >= 0.0 && t_dpa >= 0.0);
  HybridSplit split;
  if (pcie_rate <= 0.0 || nvlink_rate <= 0.0) {
    split.nvlink_bytes = nvlink_rate > 0.0 ? total_bytes : 0.0;
    split.pcie_bytes = nvlink_rate > 0.0 ? 0.0 : total_bytes;
    return split;
  }
  const double denom = pcie_rate + nvlink_rate;
  double pcie = total_bytes * pcie_rate / denom -
                t_dpa * pcie_rate * nvlink_rate / denom;
  pcie = std::clamp(pcie, 0.0, total_bytes);
  split.pcie_bytes = pcie;
  split.nvlink_bytes = total_bytes - pcie;
  return split;
}

}  // namespace blink
