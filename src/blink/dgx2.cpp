#include "blink/blink/dgx2.h"

#include <cassert>

namespace blink {

std::vector<RoutedTree> dgx2_one_hop_trees(const sim::Fabric& fabric,
                                           int server) {
  const auto& t = fabric.server(server);
  assert(t.has_nvswitch);
  std::vector<RoutedTree> trees;
  trees.reserve(static_cast<std::size_t>(t.num_gpus));
  for (int root = 0; root < t.num_gpus; ++root) {
    RoutedTree tree;
    tree.server = server;
    tree.root = root;
    tree.weight = 1.0;
    for (int leaf = 0; leaf < t.num_gpus; ++leaf) {
      if (leaf == root) continue;
      RoutedTree::Hop hop;
      hop.child = leaf;
      hop.parent = root;
      hop.depth = 1;
      hop.down_route = fabric.nvlink_route(server, root, leaf);
      hop.up_route = fabric.nvlink_route(server, leaf, root);
      tree.hops.push_back(std::move(hop));
    }
    trees.push_back(std::move(tree));
  }
  return trees;
}

std::vector<RoutedTree> dgx2_broadcast_trees(const sim::Fabric& fabric,
                                             int server, int root) {
  const auto& t = fabric.server(server);
  assert(t.has_nvswitch);
  assert(root >= 0 && root < t.num_gpus);
  std::vector<RoutedTree> trees;
  for (int relay = 0; relay < t.num_gpus; ++relay) {
    if (relay == root) continue;
    RoutedTree tree;
    tree.server = server;
    tree.root = root;
    tree.weight = 1.0;
    RoutedTree::Hop first;
    first.child = relay;
    first.parent = root;
    first.depth = 1;
    first.down_route = fabric.nvlink_route(server, root, relay);
    first.up_route = fabric.nvlink_route(server, relay, root);
    tree.hops.push_back(std::move(first));
    for (int leaf = 0; leaf < t.num_gpus; ++leaf) {
      if (leaf == root || leaf == relay) continue;
      RoutedTree::Hop hop;
      hop.child = leaf;
      hop.parent = relay;
      hop.depth = 2;
      hop.down_route = fabric.nvlink_route(server, relay, leaf);
      hop.up_route = fabric.nvlink_route(server, leaf, relay);
      tree.hops.push_back(std::move(hop));
    }
    trees.push_back(std::move(tree));
  }
  return trees;
}

}  // namespace blink
