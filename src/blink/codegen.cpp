#include "blink/blink/codegen.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace blink {
namespace {

double total_weight(std::span<const RoutedTree> trees) {
  double total = 0.0;
  for (const auto& t : trees) total += t.weight;
  return total;
}

// Parent pointer per GPU (-1 at root) from a routed tree.
std::vector<int> parent_array(const RoutedTree& tree, int num_gpus) {
  std::vector<int> parent(static_cast<std::size_t>(num_gpus), -1);
  for (const auto& h : tree.hops) {
    parent[static_cast<std::size_t>(h.child)] = h.parent;
  }
  return parent;
}

}  // namespace

int RoutedTree::depth() const {
  int d = 0;
  for (const auto& h : hops) d = std::max(d, h.depth);
  return d;
}

RoutedTree route_tree(const sim::Fabric& fabric, int server,
                      const TreeSet& set, const packing::WeightedTree& tree) {
  RoutedTree rt;
  rt.server = server;
  rt.root = set.root;
  rt.weight = tree.weight;

  const auto& g = set.graph;
  const auto parent = tree.tree.parents(g);
  std::vector<int> depth(static_cast<std::size_t>(g.num_vertices()), 0);

  // BFS order by repeatedly expanding known-depth vertices.
  std::vector<int> order{set.root};
  std::vector<bool> placed(static_cast<std::size_t>(g.num_vertices()), false);
  placed[static_cast<std::size_t>(set.root)] = true;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const int p = order[i];
    for (int v = 0; v < g.num_vertices(); ++v) {
      if (!placed[static_cast<std::size_t>(v)] &&
          parent[static_cast<std::size_t>(v)] == p) {
        placed[static_cast<std::size_t>(v)] = true;
        depth[static_cast<std::size_t>(v)] =
            depth[static_cast<std::size_t>(p)] + 1;
        order.push_back(v);
      }
    }
  }
  assert(order.size() == static_cast<std::size_t>(g.num_vertices()));

  for (std::size_t i = 1; i < order.size(); ++i) {
    const int child = order[i];
    const int par = parent[static_cast<std::size_t>(child)];
    RoutedTree::Hop hop;
    hop.child = child;
    hop.parent = par;
    hop.depth = depth[static_cast<std::size_t>(child)];
    if (set.link == topo::LinkType::kPCIe) {
      hop.down_route = fabric.pcie_route(server, par, child);
      hop.up_route = fabric.pcie_route(server, child, par);
    } else {
      hop.down_route = fabric.nvlink_route(server, par, child);
      hop.up_route = fabric.nvlink_route(server, child, par);
    }
    rt.hops.push_back(std::move(hop));
  }
  return rt;
}

std::vector<RoutedTree> route_trees(const sim::Fabric& fabric, int server,
                                    const TreeSet& set) {
  std::vector<RoutedTree> routed;
  routed.reserve(set.trees.size());
  for (const auto& wt : set.trees) {
    routed.push_back(route_tree(fabric, server, set, wt));
  }
  return routed;
}

ProgramBuilder::ProgramBuilder(const sim::Fabric& fabric,
                               const CodeGenOptions& options)
    : fabric_(fabric), options_(options) {}

sim::Program ProgramBuilder::take() {
  sim::Program p = std::move(program_);
  program_ = sim::Program{};
  stream_table_.clear();
  return p;
}

int ProgramBuilder::chunks_for(double bytes) const {
  if (bytes <= 0.0) return 1;
  const auto chunk = static_cast<double>(options_.chunk_bytes);
  const int n = static_cast<int>(std::ceil(bytes / chunk));
  return std::clamp(n, 1, options_.max_chunks_per_tree);
}

int ProgramBuilder::stream_for(const std::vector<int>& route,
                               int position_key) {
  for (const auto& [key, stream] : stream_table_) {
    if (key.second == position_key && key.first == route) return stream;
  }
  const int stream = program_.new_stream();
  stream_table_.push_back({{route, position_key}, stream});
  return stream;
}

int ProgramBuilder::private_stream() { return program_.new_stream(); }

// ---------------------------------------------------------------------------
// Broadcast
// ---------------------------------------------------------------------------

void ProgramBuilder::emit_broadcast_chunk(const RoutedTree& tree,
                                          double chunk_bytes,
                                          int chunk_ready_op,
                                          BroadcastState& state) {
  const int num_gpus = fabric_.server(tree.server).num_gpus;
  state.arrival.assign(static_cast<std::size_t>(num_gpus), -1);
  state.arrival[static_cast<std::size_t>(tree.root)] = chunk_ready_op;

  for (std::size_t h = 0; h < tree.hops.size(); ++h) {
    const auto& hop = tree.hops[h];
    sim::Op op;
    op.kind = sim::OpKind::kCopy;
    op.route = hop.down_route;
    op.bytes = chunk_bytes;
    op.latency = fabric_.params().copy_launch_latency;
    op.stream = state.streams[h];
    const int parent_arrival =
        state.arrival[static_cast<std::size_t>(hop.parent)];
    if (parent_arrival >= 0) op.deps.push_back(parent_arrival);
    op.label = "bcast " + std::to_string(hop.parent) + ">" +
               std::to_string(hop.child);
    state.arrival[static_cast<std::size_t>(hop.child)] = program_.add(op);
  }
}

std::vector<int> ProgramBuilder::tree_broadcast_chunks(
    const RoutedTree& tree, double bytes, int num_chunks,
    std::span<const int> chunk_ready) {
  assert(num_chunks >= 1);
  const double chunk_bytes = bytes / num_chunks;
  BroadcastState state;
  state.streams.reserve(tree.hops.size());
  for (std::size_t h = 0; h < tree.hops.size(); ++h) {
    const auto& hop = tree.hops[h];
    state.streams.push_back(options_.stream_reuse
                                ? stream_for(hop.down_route, hop.depth)
                                : private_stream());
  }
  std::vector<int> last(static_cast<std::size_t>(num_chunks), -1);
  for (int c = 0; c < num_chunks; ++c) {
    const int gate = chunk_ready.empty()
                         ? -1
                         : chunk_ready[static_cast<std::size_t>(c)];
    emit_broadcast_chunk(tree, chunk_bytes, gate, state);
    // Last emitted hop of this chunk (the deepest hop in BFS order).
    last[static_cast<std::size_t>(c)] =
        static_cast<int>(program_.ops().size()) - 1;
  }
  return last;
}

void ProgramBuilder::broadcast(std::span<const RoutedTree> trees,
                               double bytes) {
  const double total = total_weight(trees);
  assert(total > 0.0);

  // Per-tree chunk plans, then chunk-major interleaved emission so trees
  // sharing a link alternate chunks fairly (Figure 13).
  struct Plan {
    double chunk_bytes;
    int num_chunks;
    BroadcastState state;
  };
  std::vector<Plan> plans;
  plans.reserve(trees.size());
  int max_chunks = 0;
  for (const auto& tree : trees) {
    const double tree_bytes = bytes * tree.weight / total;
    Plan plan;
    plan.num_chunks = chunks_for(tree_bytes);
    plan.chunk_bytes = tree_bytes / plan.num_chunks;
    for (const auto& hop : tree.hops) {
      plan.state.streams.push_back(options_.stream_reuse
                                       ? stream_for(hop.down_route, hop.depth)
                                       : private_stream());
    }
    max_chunks = std::max(max_chunks, plan.num_chunks);
    plans.push_back(std::move(plan));
  }
  for (int c = 0; c < max_chunks; ++c) {
    for (std::size_t t = 0; t < trees.size(); ++t) {
      if (c < plans[t].num_chunks) {
        emit_broadcast_chunk(trees[t], plans[t].chunk_bytes, -1,
                             plans[t].state);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Reduce / AllReduce
// ---------------------------------------------------------------------------

int ProgramBuilder::emit_reduce_chunk(const RoutedTree& tree,
                                      double chunk_bytes, bool with_kernels,
                                      int chunk_ready_op, ReduceState& state) {
  const int num_gpus = fabric_.server(tree.server).num_gpus;
  state.ready.assign(static_cast<std::size_t>(num_gpus), chunk_ready_op);
  std::vector<std::vector<int>> arrivals(static_cast<std::size_t>(num_gpus));

  // Reverse BFS: children are fully processed before their parent's own
  // uplink copy, so the parent's reduction can gate it.
  for (std::size_t i = tree.hops.size(); i-- > 0;) {
    const auto& hop = tree.hops[i];
    const std::size_t h = i;
    auto& child_arrivals = arrivals[static_cast<std::size_t>(hop.child)];
    if (!child_arrivals.empty()) {
      // Interior child: reduce its children's data with its own first.
      if (with_kernels) {
        // The kernel reads every child's chunk plus the local contribution.
        const int r = reduce_kernel(
            tree.server, hop.child,
            chunk_bytes * static_cast<double>(child_arrivals.size() + 1),
            child_arrivals);
        state.ready[static_cast<std::size_t>(hop.child)] = r;
      } else {
        // Forward-only (no reduction function): wait for all inputs.
        sim::Op barrier;
        barrier.kind = sim::OpKind::kDelay;
        barrier.stream = state.kernel_streams.count(hop.child) != 0
                             ? state.kernel_streams[hop.child]
                             : (state.kernel_streams[hop.child] =
                                    private_stream());
        barrier.deps = child_arrivals;
        barrier.label = "join@" + std::to_string(hop.child);
        state.ready[static_cast<std::size_t>(hop.child)] =
            program_.add(barrier);
      }
    }
    sim::Op op;
    op.kind = sim::OpKind::kCopy;
    op.route = hop.up_route;
    op.bytes = chunk_bytes;
    op.latency = fabric_.params().copy_launch_latency;
    op.stream = state.streams[h];
    const int ready = state.ready[static_cast<std::size_t>(hop.child)];
    if (ready >= 0) op.deps.push_back(ready);
    op.label = "reduce " + std::to_string(hop.child) + ">" +
               std::to_string(hop.parent);
    arrivals[static_cast<std::size_t>(hop.parent)].push_back(program_.add(op));
  }

  // Final reduction at the root.
  auto& root_arrivals = arrivals[static_cast<std::size_t>(tree.root)];
  assert(!root_arrivals.empty());
  if (with_kernels) {
    return reduce_kernel(
        tree.server, tree.root,
        chunk_bytes * static_cast<double>(root_arrivals.size() + 1),
        root_arrivals);
  }
  sim::Op barrier;
  barrier.kind = sim::OpKind::kDelay;
  barrier.stream = state.kernel_streams.count(tree.root) != 0
                       ? state.kernel_streams[tree.root]
                       : (state.kernel_streams[tree.root] = private_stream());
  barrier.deps = root_arrivals;
  barrier.label = "join@root";
  return program_.add(barrier);
}

std::vector<int> ProgramBuilder::tree_reduce_chunks(
    const RoutedTree& tree, double bytes, int num_chunks, bool with_kernels,
    std::span<const int> chunk_ready) {
  assert(num_chunks >= 1);
  const double chunk_bytes = bytes / num_chunks;
  ReduceState state;
  for (const auto& hop : tree.hops) {
    state.streams.push_back(options_.stream_reuse
                                ? stream_for(hop.up_route, -hop.depth - 1)
                                : private_stream());
  }
  std::vector<int> root_ready(static_cast<std::size_t>(num_chunks), -1);
  for (int c = 0; c < num_chunks; ++c) {
    const int gate = chunk_ready.empty()
                         ? -1
                         : chunk_ready[static_cast<std::size_t>(c)];
    root_ready[static_cast<std::size_t>(c)] =
        emit_reduce_chunk(tree, chunk_bytes, with_kernels, gate, state);
  }
  return root_ready;
}

void ProgramBuilder::reduce(std::span<const RoutedTree> trees, double bytes) {
  const double total = total_weight(trees);
  assert(total > 0.0);
  // Chunk-major interleave across trees, as in broadcast(), so shared
  // uplinks alternate between trees instead of serializing tree by tree.
  struct Plan {
    double chunk_bytes;
    int num_chunks;
    ReduceState state;
  };
  std::vector<Plan> plans;
  plans.reserve(trees.size());
  int max_chunks = 0;
  for (const auto& tree : trees) {
    const double tree_bytes = bytes * tree.weight / total;
    Plan plan;
    plan.num_chunks = chunks_for(tree_bytes);
    plan.chunk_bytes = tree_bytes / plan.num_chunks;
    for (const auto& hop : tree.hops) {
      plan.state.streams.push_back(
          options_.stream_reuse ? stream_for(hop.up_route, -hop.depth - 1)
                                : private_stream());
    }
    max_chunks = std::max(max_chunks, plan.num_chunks);
    plans.push_back(std::move(plan));
  }
  for (int c = 0; c < max_chunks; ++c) {
    for (std::size_t t = 0; t < trees.size(); ++t) {
      if (c < plans[t].num_chunks) {
        emit_reduce_chunk(trees[t], plans[t].chunk_bytes,
                          /*with_kernels=*/true, -1, plans[t].state);
      }
    }
  }
}

void ProgramBuilder::all_reduce(std::span<const RoutedTree> trees,
                                double bytes) {
  const double total = total_weight(trees);
  assert(total > 0.0);

  // §3.3: reduce toward the root on one direction of the links, broadcast
  // the result back on the other direction of the same tree, pipelined
  // chunk by chunk.
  struct Plan {
    double chunk_bytes;
    int num_chunks;
    ReduceState up;
    BroadcastState down;
  };
  std::vector<Plan> plans;
  plans.reserve(trees.size());
  int max_chunks = 0;
  for (const auto& tree : trees) {
    const double tree_bytes = bytes * tree.weight / total;
    Plan plan;
    plan.num_chunks = chunks_for(tree_bytes);
    plan.chunk_bytes = tree_bytes / plan.num_chunks;
    for (const auto& hop : tree.hops) {
      plan.up.streams.push_back(options_.stream_reuse
                                    ? stream_for(hop.up_route, -hop.depth - 1)
                                    : private_stream());
      plan.down.streams.push_back(options_.stream_reuse
                                      ? stream_for(hop.down_route, hop.depth)
                                      : private_stream());
    }
    max_chunks = std::max(max_chunks, plan.num_chunks);
    plans.push_back(std::move(plan));
  }
  for (int c = 0; c < max_chunks; ++c) {
    for (std::size_t t = 0; t < trees.size(); ++t) {
      auto& plan = plans[t];
      if (c >= plan.num_chunks) continue;
      const int root_ready = emit_reduce_chunk(
          trees[t], plan.chunk_bytes, /*with_kernels=*/true, -1, plan.up);
      emit_broadcast_chunk(trees[t], plan.chunk_bytes, root_ready, plan.down);
    }
  }
}

// ---------------------------------------------------------------------------
// Gather / AllGather
// ---------------------------------------------------------------------------

void ProgramBuilder::gather(std::span<const RoutedTree> trees,
                            double bytes_per_gpu) {
  const double total = total_weight(trees);
  assert(total > 0.0);

  // Each source's buffer travels its root path, split across trees by
  // weight; chunk-major emission interleaves sources on shared links.
  struct SourcePlan {
    const RoutedTree* tree;
    std::vector<std::size_t> path_hops;  // hop indices source -> root
    std::vector<int> path_streams;
    double chunk_bytes;
    int num_chunks;
  };
  std::vector<SourcePlan> plans;
  int max_chunks = 0;
  for (const auto& tree : trees) {
    const int num_gpus = fabric_.server(tree.server).num_gpus;
    const auto parent = parent_array(tree, num_gpus);
    std::vector<int> hop_of_child(static_cast<std::size_t>(num_gpus), -1);
    for (std::size_t h = 0; h < tree.hops.size(); ++h) {
      hop_of_child[static_cast<std::size_t>(tree.hops[h].child)] =
          static_cast<int>(h);
    }
    const double source_bytes = bytes_per_gpu * tree.weight / total;
    for (const auto& hop : tree.hops) {
      SourcePlan plan;
      plan.tree = &tree;
      plan.num_chunks = chunks_for(source_bytes);
      plan.chunk_bytes = source_bytes / plan.num_chunks;
      for (int v = hop.child; v != tree.root;
           v = parent[static_cast<std::size_t>(v)]) {
        const int h = hop_of_child[static_cast<std::size_t>(v)];
        plan.path_hops.push_back(static_cast<std::size_t>(h));
        const auto& path_hop = tree.hops[static_cast<std::size_t>(h)];
        plan.path_streams.push_back(
            options_.stream_reuse
                ? stream_for(path_hop.up_route, -path_hop.depth - 1)
                : private_stream());
      }
      max_chunks = std::max(max_chunks, plan.num_chunks);
      plans.push_back(std::move(plan));
    }
  }
  for (int c = 0; c < max_chunks; ++c) {
    for (auto& plan : plans) {
      if (c >= plan.num_chunks) continue;
      int prev = -1;
      for (std::size_t i = 0; i < plan.path_hops.size(); ++i) {
        const auto& hop = plan.tree->hops[plan.path_hops[i]];
        sim::Op op;
        op.kind = sim::OpKind::kCopy;
        op.route = hop.up_route;
        op.bytes = plan.chunk_bytes;
        op.latency = fabric_.params().copy_launch_latency;
        op.stream = plan.path_streams[i];
        if (prev >= 0) op.deps.push_back(prev);
        op.label = "gather " + std::to_string(hop.child) + ">" +
                   std::to_string(hop.parent);
        prev = program_.add(op);
      }
    }
  }
}

void ProgramBuilder::all_gather(std::span<const RoutedTree> trees,
                                double bytes_per_gpu) {
  // Gather to the root, then broadcast every gathered block back down; the
  // paper treats AllGather as "AllReduce without the reduction" (§4.1), and
  // this realizes the same two-direction flow with gather volumes.
  const double total = total_weight(trees);
  assert(total > 0.0);
  for (const auto& tree : trees) {
    const int num_gpus = fabric_.server(tree.server).num_gpus;
    const auto parent = parent_array(tree, num_gpus);
    std::vector<int> hop_of_child(static_cast<std::size_t>(num_gpus), -1);
    for (std::size_t h = 0; h < tree.hops.size(); ++h) {
      hop_of_child[static_cast<std::size_t>(tree.hops[h].child)] =
          static_cast<int>(h);
    }
    const double source_bytes = bytes_per_gpu * tree.weight / total;
    const int num_chunks = chunks_for(source_bytes);
    const double chunk_bytes = source_bytes / num_chunks;

    BroadcastState down;
    for (const auto& hop : tree.hops) {
      down.streams.push_back(options_.stream_reuse
                                 ? stream_for(hop.down_route, hop.depth)
                                 : private_stream());
    }
    // The root's own buffer is broadcast without an up phase.
    for (int c = 0; c < num_chunks; ++c) {
      emit_broadcast_chunk(tree, chunk_bytes, -1, down);
    }
    for (const auto& src : tree.hops) {
      for (int c = 0; c < num_chunks; ++c) {
        int prev = -1;
        for (int v = src.child; v != tree.root;
             v = parent[static_cast<std::size_t>(v)]) {
          const auto& hop = tree.hops[static_cast<std::size_t>(
              hop_of_child[static_cast<std::size_t>(v)])];
          sim::Op op;
          op.kind = sim::OpKind::kCopy;
          op.route = hop.up_route;
          op.bytes = chunk_bytes;
          op.latency = fabric_.params().copy_launch_latency;
          op.stream = options_.stream_reuse
                          ? stream_for(hop.up_route, -hop.depth - 1)
                          : private_stream();
          if (prev >= 0) op.deps.push_back(prev);
          op.label = "ag-up " + std::to_string(hop.child) + ">" +
                     std::to_string(hop.parent);
          prev = program_.add(op);
        }
        emit_broadcast_chunk(tree, chunk_bytes, prev, down);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Composition primitives
// ---------------------------------------------------------------------------

std::vector<int> ProgramBuilder::copy_chunks(const std::vector<int>& route,
                                             double bytes, int num_chunks,
                                             int stream_tag,
                                             std::span<const int> chunk_ready) {
  assert(num_chunks >= 1);
  if (!(bytes > 0.0)) {
    // A zero-byte op would complete instantly in the executor and silently
    // defeat every gate built on it; degenerate payloads are a caller bug.
    throw std::invalid_argument("copy_chunks needs a positive payload");
  }
  const double chunk_bytes = bytes / num_chunks;
  const int stream = stream_for(route, stream_tag);
  std::vector<int> done(static_cast<std::size_t>(num_chunks));
  for (int c = 0; c < num_chunks; ++c) {
    sim::Op op;
    op.kind = sim::OpKind::kCopy;
    op.route = route;
    op.bytes = chunk_bytes;
    op.latency = fabric_.params().copy_launch_latency;
    op.stream = stream;
    if (!chunk_ready.empty() &&
        chunk_ready[static_cast<std::size_t>(c)] >= 0) {
      op.deps.push_back(chunk_ready[static_cast<std::size_t>(c)]);
    }
    op.label = "copy";
    done[static_cast<std::size_t>(c)] = program_.add(op);
  }
  return done;
}

std::vector<int> ProgramBuilder::copy_chunks(
    const std::vector<int>& route, double bytes, int num_chunks,
    int stream_tag, std::span<const std::vector<int>> chunk_deps) {
  assert(num_chunks >= 1);
  assert(chunk_deps.size() == static_cast<std::size_t>(num_chunks));
  if (!(bytes > 0.0)) {
    throw std::invalid_argument("copy_chunks needs a positive payload");
  }
  const double chunk_bytes = bytes / num_chunks;
  const int stream = stream_for(route, stream_tag);
  std::vector<int> done(static_cast<std::size_t>(num_chunks));
  for (int c = 0; c < num_chunks; ++c) {
    sim::Op op;
    op.kind = sim::OpKind::kCopy;
    op.route = route;
    op.bytes = chunk_bytes;
    op.latency = fabric_.params().copy_launch_latency;
    op.stream = stream;
    op.deps = chunk_deps[static_cast<std::size_t>(c)];
    op.label = "copy";
    done[static_cast<std::size_t>(c)] = program_.add(op);
  }
  return done;
}

int ProgramBuilder::reduce_kernel(int server, int gpu, double bytes,
                                  std::vector<int> deps) {
  sim::Op op;
  op.kind = sim::OpKind::kReduce;
  op.route = {fabric_.reduce_channel(server, gpu)};
  op.bytes = bytes;
  op.latency = fabric_.params().reduce_launch_latency;
  // Each kernel gets its own stream: ordering comes from |deps| alone, and
  // the GPU's reduce-engine channel arbitrates concurrent kernels. A shared
  // per-GPU stream would false-couple independent trees into lockstep.
  op.stream = private_stream();
  op.deps = std::move(deps);
  op.label = "reduce@" + std::to_string(gpu);
  return program_.add(op);
}

int ProgramBuilder::delay(double seconds, const std::string& label,
                          std::vector<int> deps) {
  sim::Op op;
  op.kind = sim::OpKind::kDelay;
  op.latency = seconds;
  op.stream = private_stream();
  op.deps = std::move(deps);
  op.label = label;
  return program_.add(op);
}

// ---------------------------------------------------------------------------
// Pseudo-CUDA emission
// ---------------------------------------------------------------------------

std::string emit_pseudo_cuda(const TreeSet& set,
                             const CodeGenOptions& options) {
  std::ostringstream os;
  os << "// Generated by Blink CodeGen: root=" << set.root
     << " trees=" << set.trees.size() << " rate=" << set.rate / 1e9
     << "GB/s\n";
  os << "extern \"C\" void blinkBroadcast(void* buf, size_t bytes) {\n";
  double total = 0.0;
  for (const auto& wt : set.trees) total += wt.weight;
  for (std::size_t t = 0; t < set.trees.size(); ++t) {
    const auto& wt = set.trees[t];
    const double share = wt.weight / total;
    os << "  // tree " << t << ": weight " << wt.weight / 1e9
       << " GB/s, share " << share << "\n";
    os << "  size_t tree" << t << "_bytes = bytes * " << share << ";\n";
    os << "  size_t chunk = " << options.chunk_bytes << ";\n";
    for (const int e : wt.tree.edge_ids) {
      const auto& edge = set.graph.edge(e);
      os << "  for (size_t off = 0; off < tree" << t
         << "_bytes; off += chunk) {\n"
         << "    cudaMemcpyPeerAsync(buf_d" << edge.dst << " + off, " << edge.dst
         << ", buf_d" << edge.src << " + off, " << edge.src
         << ", chunk, stream_t" << t << "_" << edge.src << "_" << edge.dst
         << ");\n"
         << "    cudaEventRecord(evt_t" << t << "_" << edge.dst
         << ", stream_t" << t << "_" << edge.src << "_" << edge.dst << ");\n"
         << "  }\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace blink
