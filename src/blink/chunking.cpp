#include "blink/blink/chunking.h"

#include <algorithm>
#include <cassert>

namespace blink {

MiadResult tune_chunk_size(
    const std::function<double(std::uint64_t)>& measure,
    const MiadOptions& options) {
  assert(options.initial_chunk >= options.min_chunk &&
         options.initial_chunk <= options.max_chunk);
  assert(options.multiplier > 1.0);

  MiadResult result;
  auto probe = [&](std::uint64_t chunk) {
    const double throughput = measure(chunk);
    result.trace.push_back({chunk, throughput});
    if (throughput > result.selected_throughput) {
      result.selected_throughput = throughput;
      result.selected_chunk = chunk;
    }
    return throughput;
  };

  std::uint64_t chunk = options.initial_chunk;
  double best = probe(chunk);
  int iterations = 1;

  // Multiplicative increase while throughput keeps improving.
  while (iterations < options.max_iterations) {
    const auto next = std::min(
        options.max_chunk,
        static_cast<std::uint64_t>(static_cast<double>(chunk) *
                                   options.multiplier));
    if (next == chunk) break;
    const double t = probe(next);
    ++iterations;
    if (t <= best * (1.0 + options.improvement_tolerance)) break;
    best = t;
    chunk = next;
  }

  // Additive decrease from the overshoot point back toward the knee.
  std::uint64_t cur = result.trace.back().chunk_bytes;
  double prev = result.trace.back().throughput;
  while (iterations < options.max_iterations &&
         cur > options.min_chunk + options.decrement) {
    cur -= options.decrement;
    if (cur == chunk) break;  // already probed the knee itself
    const double t = probe(cur);
    ++iterations;
    if (t <= prev * (1.0 + options.improvement_tolerance)) break;
    prev = t;
  }

  return result;
}

}  // namespace blink
