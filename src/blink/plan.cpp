#include "blink/blink/plan.h"

#include <utility>

namespace blink {

const char* to_string(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kBroadcast:
      return "Broadcast";
    case CollectiveKind::kGather:
      return "Gather";
    case CollectiveKind::kReduce:
      return "Reduce";
    case CollectiveKind::kAllReduce:
      return "AllReduce";
    case CollectiveKind::kAllGather:
      return "AllGather";
    case CollectiveKind::kReduceScatter:
      return "ReduceScatter";
  }
  return "?";
}

const char* to_string(Phase2Strategy strategy) {
  switch (strategy) {
    case Phase2Strategy::kNone:
      return "none";
    case Phase2Strategy::kAllToAll:
      return "all-to-all";
    case Phase2Strategy::kRing:
      return "ring";
    case Phase2Strategy::kHierarchical:
      return "hierarchical";
  }
  return "?";
}

CollectivePlan::CollectivePlan(
    const void* owner, CollectiveKind kind, double bytes, int root,
    int backend, std::uint64_t chunk_bytes, sim::Program program,
    CollectiveResult meta,
    std::vector<std::shared_ptr<const TreeSet>> tree_sets,
    Phase2Strategy phase2, std::vector<int> channel_footprint)
    : owner_(owner),
      kind_(kind),
      bytes_(bytes),
      root_(root),
      backend_(backend),
      chunk_bytes_(chunk_bytes),
      phase2_(phase2),
      program_(std::move(program)),
      meta_(meta),
      tree_sets_(std::move(tree_sets)),
      channel_footprint_(std::move(channel_footprint)) {}

}  // namespace blink
