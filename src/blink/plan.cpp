#include "blink/blink/plan.h"

#include <utility>

namespace blink {

const char* to_string(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kBroadcast:
      return "Broadcast";
    case CollectiveKind::kGather:
      return "Gather";
    case CollectiveKind::kReduce:
      return "Reduce";
    case CollectiveKind::kAllReduce:
      return "AllReduce";
    case CollectiveKind::kAllGather:
      return "AllGather";
    case CollectiveKind::kReduceScatter:
      return "ReduceScatter";
  }
  return "?";
}

CollectivePlan::CollectivePlan(
    const void* owner, CollectiveKind kind, double bytes, int root,
    int backend, std::uint64_t chunk_bytes, sim::Program program,
    CollectiveResult meta,
    std::vector<std::shared_ptr<const TreeSet>> tree_sets)
    : owner_(owner),
      kind_(kind),
      bytes_(bytes),
      root_(root),
      backend_(backend),
      chunk_bytes_(chunk_bytes),
      program_(std::move(program)),
      meta_(meta),
      tree_sets_(std::move(tree_sets)) {}

}  // namespace blink
