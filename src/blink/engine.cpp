#include "blink/blink/engine.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>

#include "blink/blink/plan_io.h"
#include "blink/common/logging.h"
#include "blink/common/thread_pool.h"
#include "blink/sim/executor.h"
#include "blink/sim/trace.h"

namespace blink {

namespace {

// The paper's "throughput" of a collective: payload bytes over completion
// time. The single definition for solo execute() and grouped run() results,
// so both report the same bandwidth for the same plan and timing.
double algorithm_bw(double bytes, double seconds) {
  return seconds > 0.0 ? bytes / seconds : 0.0;
}

}  // namespace

CollectiveEngine::CollectiveEngine(topo::Topology topo,
                                   const sim::FabricParams& fabric_params,
                                   EngineOptions options)
    : CollectiveEngine(std::vector<topo::Topology>{std::move(topo)},
                       fabric_params, options) {}

CollectiveEngine::CollectiveEngine(std::vector<topo::Topology> servers,
                                   const sim::FabricParams& fabric_params,
                                   EngineOptions options)
    : servers_(std::move(servers)),
      engine_options_(options),
      fabric_(servers_, fabric_params),  // validates every server's topology
      plans_(options.plan_cache_capacity) {
  for (const auto& s : servers_) num_gpus_ += s.num_gpus;
  planner_threads_ = options.planner_threads >= 1
                         ? static_cast<std::size_t>(options.planner_threads)
                         : common::ThreadPool::default_threads();
}

CollectiveEngine::~CollectiveEngine() {
  // Flush the plan cache to the persistent store so the next process starts
  // warm. Destructors must not throw; a failed flush costs the next process
  // a recompile, nothing more.
  if (engine_options_.plan_store_dir.empty()) return;
  try {
    const std::lock_guard<std::mutex> lock(compile_mu_);
    if (plans_.size() == 0) return;
    // A warm-started process that compiled nothing new holds exactly what
    // the store already has: rewriting the whole file would only churn
    // mtimes and race sibling ranks, so a clean cache skips the flush.
    if (!plans_.dirty()) return;
    std::filesystem::create_directories(engine_options_.plan_store_dir);
    const std::uint64_t fingerprint = fingerprint_locked();
    plans_.save(
        plan_store_file(engine_options_.plan_store_dir, fingerprint),
        fingerprint,
        [this](int id) {
          return std::string(backends_[static_cast<std::size_t>(id)]->name());
        },
        /*mark_clean=*/true, fabric_.component_fingerprints());
  } catch (const std::exception& e) {
    BLINK_LOG(kWarning) << "plan store flush failed: " << e.what();
  }
}

int CollectiveEngine::register_backend(
    std::unique_ptr<CollectiveBackend> backend) {
  if (backend == nullptr) {
    throw std::invalid_argument("backend must not be null");
  }
  const std::lock_guard<std::mutex> lock(compile_mu_);
  backends_.push_back(std::move(backend));
  // Auto-selection winners were chosen among the backends registered at the
  // time; a stale choice map would leave the new backend unmeasured for
  // every already-seen (kind, bytes, root) forever.
  auto_choices_.clear();
  return static_cast<int>(backends_.size()) - 1;
}

const CollectiveBackend& CollectiveEngine::backend(int id) const {
  const std::lock_guard<std::mutex> lock(compile_mu_);
  if (id < 0 || id >= static_cast<int>(backends_.size())) {
    throw std::invalid_argument("backend id out of range");
  }
  return *backends_[static_cast<std::size_t>(id)];
}

int CollectiveEngine::backend_id(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(compile_mu_);
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (name == backends_[i]->name()) return static_cast<int>(i);
  }
  return -1;
}

std::shared_ptr<const CollectivePlan> CollectiveEngine::adopt_plan(
    CollectiveKind kind, double bytes, int root, int backend,
    LoweredCollective lowered) {
  // The plan's channel footprint: every channel its program routes over,
  // unioned with the decision channels the backend reports (a bake-off
  // winner depends on its losers' timings too — see LoweredCollective::
  // footprint). This is what repair_plans() intersects against.
  std::vector<int> footprint = sim::program_channels(lowered.program);
  if (!lowered.footprint.empty()) {
    footprint.insert(footprint.end(), lowered.footprint.begin(),
                     lowered.footprint.end());
    std::sort(footprint.begin(), footprint.end());
    footprint.erase(std::unique(footprint.begin(), footprint.end()),
                    footprint.end());
  }
  auto plan = std::make_shared<const CollectivePlan>(
      this, kind, bytes, root, backend, lowered.chunk_bytes,
      std::move(lowered.program), lowered.meta, std::move(lowered.tree_sets),
      lowered.phase2, std::move(footprint));
  plans_.insert(plan->key(), plan);
  return plan;
}

std::shared_ptr<const CollectivePlan> CollectiveEngine::compile(
    CollectiveKind kind, double bytes, int root, int backend) {
  if (!(bytes > 0.0)) {
    throw std::invalid_argument("collective size must be positive");
  }
  if (root < -1 || root >= num_gpus_) {
    throw std::invalid_argument("root out of range");
  }
  {
    const std::lock_guard<std::mutex> lock(compile_mu_);
    maybe_warm_load_locked();
    if (backends_.empty()) {
      throw std::logic_error("engine has no registered backend");
    }
  }
  if (backend == kAutoBackend) {
    // Resolve root == -1 once, before the bake-off: candidates resolving it
    // each to their own default would be timed at different roots, and the
    // winner cached under a key no concrete-root request ever maps to.
    if (root == -1) root = default_root(kind);
    backend = select_backend(kind, bytes, root);
  }
  return compile_concrete(kind, bytes, root, backend);
}

std::shared_ptr<const CollectivePlan> CollectiveEngine::compile_concrete(
    CollectiveKind kind, double bytes, int root, int backend) {
  CollectiveBackend* be = nullptr;
  {
    const std::lock_guard<std::mutex> lock(compile_mu_);
    if (backend < 0 || backend >= static_cast<int>(backends_.size())) {
      throw std::invalid_argument("backend id out of range");
    }
    // The unique_ptr target is stable even if register_backend reallocates
    // the vector while this compile is in flight.
    be = backends_[static_cast<std::size_t>(backend)].get();
  }
  if (!be->supports(kind)) {
    throw std::invalid_argument(std::string(be->name()) +
                                " backend does not support " +
                                to_string(kind));
  }
  // A backend covering a subset of the fabric (a single server of a cluster
  // engine) cannot address roots beyond its own ranks.
  if (be->num_ranks() >= 0 && root >= be->num_ranks()) {
    throw std::invalid_argument(std::string("root out of range for the ") +
                                be->name() + " backend");
  }
  if (root == -1) {
    // default_root may lazily build planning state (Blink's best-root scan),
    // which repair_plans() resets under the unique lock.
    const std::shared_lock<std::shared_mutex> exec_lock(exec_mu_);
    root = be->default_root(kind);
  }
  const PlanKey key = PlanKey::make(kind, bytes, root, backend);
  bool leader = false;
  auto plan = compile_flight_.run(
      key,
      [&]() -> std::shared_ptr<const CollectivePlan> {
        // Shared quiesce lock across lookup, lowering, AND the cache insert:
        // a repair either sees this plan in the cache (and can drop it) or
        // the lowering runs entirely against the post-event fabric — never a
        // pre-event plan slipping into a freshly repaired cache.
        const std::shared_lock<std::shared_mutex> exec_lock(exec_mu_);
        if (auto cached = plans_.find(key)) return cached;
        return adopt_plan(kind, bytes, root, backend,
                          be->lower(kind, bytes, root));
      },
      &leader);
  if (!leader) {
    // A coalesced request is logically a cache hit on the leader's plan:
    // count it and bump recency exactly as the serial path would have —
    // N racers on one cold key score 1 miss + N-1 hits. Fall back to the
    // flight's plan if the cache already evicted it.
    if (auto cached = plans_.find(key)) return cached;
  }
  return plan;
}

int CollectiveEngine::default_root(CollectiveKind kind) {
  CollectiveBackend* be = nullptr;
  {
    const std::lock_guard<std::mutex> lock(compile_mu_);
    for (const auto& b : backends_) {
      if (b->supports(kind)) {
        be = b.get();
        break;
      }
    }
  }
  if (be == nullptr) {
    throw std::invalid_argument(
        std::string("no registered backend supports ") + to_string(kind));
  }
  const std::shared_lock<std::shared_mutex> exec_lock(exec_mu_);
  return be->default_root(kind);
}

int CollectiveEngine::select_backend(CollectiveKind kind, double bytes,
                                     int root) {
  const PlanKey key = PlanKey::make(kind, bytes, root, 0);
  {
    const std::lock_guard<std::mutex> lock(compile_mu_);
    const auto it = auto_choices_.find(key);
    if (it != auto_choices_.end()) return it->second;
  }
  // One bake-off per shape however many requests race it.
  return auto_flight_.run(key, [&]() -> int {
    {
      // A flight that finished between the peek above and joining this one
      // already recorded the choice.
      const std::lock_guard<std::mutex> lock(compile_mu_);
      const auto it = auto_choices_.find(key);
      if (it != auto_choices_.end()) return it->second;
    }
    std::vector<int> candidates;
    {
      const std::lock_guard<std::mutex> lock(compile_mu_);
      for (int id = 0; id < static_cast<int>(backends_.size()); ++id) {
        const CollectiveBackend& be =
            *backends_[static_cast<std::size_t>(id)];
        if (!be.supports(kind)) continue;
        if (be.num_ranks() >= 0 && root >= be.num_ranks()) continue;
        candidates.push_back(id);
      }
    }
    if (candidates.empty()) {
      throw std::invalid_argument(
          std::string("no registered backend supports ") + to_string(kind));
    }
    // Measure every candidate concurrently. The candidate plans land in the
    // shared cache either way, so the winner's later compile is a hit and
    // the losers stay reusable. The winner is the first minimum in
    // candidate (registration) order — the same tie-break as the serial
    // loop, so parallelism never changes the choice.
    std::vector<double> seconds(candidates.size(), 0.0);
    std::vector<std::exception_ptr> errors(candidates.size());
    common::parallel_for(
        candidates.size(), planner_threads_, [&](std::size_t i) {
          try {
            const auto plan =
                compile_concrete(kind, bytes, root, candidates[i]);
            seconds[i] = execute(*plan).seconds;
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
    for (const auto& error : errors) {
      if (error) std::rethrow_exception(error);
    }
    int best = candidates.front();
    double best_seconds = seconds.front();
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      if (seconds[i] < best_seconds) {
        best = candidates[i];
        best_seconds = seconds[i];
      }
    }
    {
      const std::lock_guard<std::mutex> lock(compile_mu_);
      // Keep the choice map bounded like the plan cache beside it; past the
      // cap the stalest thing to do is re-measure, so start over.
      if (auto_choices_.size() >= engine_options_.plan_cache_capacity) {
        auto_choices_.clear();
      }
      auto_choices_.emplace(key, best);
    }
    return best;
  });
}

bool CollectiveEngine::has_cached_plan(CollectiveKind kind, double bytes,
                                       int root, int backend) {
  if (!(bytes > 0.0) || root < -1 || root >= num_gpus_) return false;
  {
    const std::lock_guard<std::mutex> lock(compile_mu_);
    maybe_warm_load_locked();  // warm-loaded store plans count as cached
    if (backends_.empty()) return false;
  }
  try {
    if (backend == kAutoBackend) {
      if (root == -1) root = default_root(kind);
      const std::lock_guard<std::mutex> lock(compile_mu_);
      const auto it = auto_choices_.find(PlanKey::make(kind, bytes, root, 0));
      if (it == auto_choices_.end()) return false;  // bake-off still pending
      backend = it->second;
    }
    CollectiveBackend* be = nullptr;
    {
      const std::lock_guard<std::mutex> lock(compile_mu_);
      if (backend < 0 || backend >= static_cast<int>(backends_.size())) {
        return false;
      }
      be = backends_[static_cast<std::size_t>(backend)].get();
    }
    if (!be->supports(kind)) return false;
    if (be->num_ranks() >= 0 && root >= be->num_ranks()) return false;
    if (root == -1) {
      const std::shared_lock<std::shared_mutex> exec_lock(exec_mu_);
      root = be->default_root(kind);
    }
    return plans_.contains(PlanKey::make(kind, bytes, root, backend));
  } catch (const std::exception&) {
    return false;  // compile() would throw; either way, not a cached plan
  }
}

std::size_t CollectiveEngine::flush_plans() {
  if (engine_options_.plan_store_dir.empty()) return 0;
  const std::lock_guard<std::mutex> lock(compile_mu_);
  if (plans_.size() == 0 || !plans_.dirty()) return 0;
  std::filesystem::create_directories(engine_options_.plan_store_dir);
  const std::uint64_t fingerprint = fingerprint_locked();
  return plans_.save(
      plan_store_file(engine_options_.plan_store_dir, fingerprint), fingerprint,
      [this](int id) {
        return std::string(backends_[static_cast<std::size_t>(id)]->name());
      },
      /*mark_clean=*/true, fabric_.component_fingerprints());
}

InvalidateReport CollectiveEngine::invalidate_plans() {
  const std::lock_guard<std::mutex> lock(compile_mu_);
  InvalidateReport report;
  report.dropped = plans_.size();
  plans_.clear();
  auto_choices_.clear();
  return report;
}

RepairReport CollectiveEngine::repair_plans(const sim::HealthEvent& event) {
  RepairReport report;
  // Shapes to recompile, reconstructed from the dropped keys (bytes_bits is
  // the exact double bit pattern, so the recompile lands on the same key).
  std::vector<PlanKey> dropped_keys;
  {
    // Unique quiesce: no lowering or simulation observes the fabric while
    // its health, the backends' planning caches, and the plan cache change.
    const std::unique_lock<std::shared_mutex> exec_lock(exec_mu_);
    report.affected_channels = fabric_.apply(event);
    report.epoch = fabric_.epoch();
    std::vector<CollectiveBackend*> backends;
    {
      const std::lock_guard<std::mutex> lock(compile_mu_);
      backends.reserve(backends_.size());
      for (const auto& be : backends_) backends.push_back(be.get());
      // Bake-off winners were timed under the old capacities; re-measure.
      auto_choices_.clear();
    }
    bool all_stale = false;
    std::vector<std::shared_ptr<const TreeSet>> stale_sets;
    for (CollectiveBackend* be : backends) {
      HealthNotice notice = be->on_health_event(event, report.affected_channels);
      all_stale |= notice.all_stale;
      for (auto& set : notice.stale_tree_sets) {
        stale_sets.push_back(std::move(set));
      }
    }
    // A restore is never surgical at the engine level either: a plan that
    // detoured around a failure keeps a footprint disjoint from the restored
    // channels, yet a from-scratch compile would now route through them.
    if (event.kind == sim::HealthEventKind::kRestoreAll) all_stale = true;
    report.full = all_stale;
    std::vector<int> affected = report.affected_channels;
    std::sort(affected.begin(), affected.end());
    const auto hit = [&](const CollectivePlan& plan) {
      if (all_stale) return true;
      const std::vector<int>& footprint = plan.channel_footprint();
      if (footprint.empty()) {
        // Only plans built outside the engine lack a footprint; without one
        // the only safe answer for a non-trivial schedule is "stale".
        return !plan.program().empty();
      }
      for (const int c : footprint) {
        if (std::binary_search(affected.begin(), affected.end(), c)) {
          return true;
        }
      }
      for (const auto& set : plan.tree_sets()) {
        for (const auto& stale : stale_sets) {
          if (set == stale) return true;
        }
      }
      return false;
    };
    report.dropped = plans_.erase_if(hit, &dropped_keys);
    report.retained = plans_.size();
  }
  // Recompile outside the quiesce: execution of retained plans resumes while
  // the dropped shapes re-lower in parallel against the degraded fabric.
  std::atomic<std::size_t> recompiled{0};
  std::atomic<std::size_t> failed{0};
  common::parallel_for(
      dropped_keys.size(), planner_threads_, [&](std::size_t i) {
        const PlanKey& key = dropped_keys[i];
        try {
          compile_concrete(static_cast<CollectiveKind>(key.kind),
                           std::bit_cast<double>(key.bytes_bits), key.root,
                           key.backend);
          recompiled.fetch_add(1);
        } catch (const std::exception&) {
          // The shape no longer lowers on this fabric (a failed GPU can make
          // it unspannable). Typed, not thrown: the next compile of the
          // shape surfaces the error to its caller.
          failed.fetch_add(1);
        }
      });
  // Post-check: a health-blind backend may have re-emitted a schedule over a
  // channel that is still failed. Such a plan would throw at execute(); drop
  // it now and book the shape as failed instead of repaired.
  std::vector<int> still_failed;
  for (int c = 0; c < fabric_.num_channels(); ++c) {
    if (fabric_.channel_failed(c)) still_failed.push_back(c);
  }
  if (!still_failed.empty()) {
    const std::size_t bad = plans_.erase_if([&](const CollectivePlan& plan) {
      for (const int c : plan.channel_footprint()) {
        if (std::binary_search(still_failed.begin(), still_failed.end(), c)) {
          return true;
        }
      }
      return false;
    });
    failed.fetch_add(bad);
    const std::size_t r = recompiled.load();
    recompiled.store(r - std::min(bad, r));
  }
  report.recompiled = recompiled.load();
  report.failed = failed.load();
  return report;
}

CollectiveResult CollectiveEngine::execute(const CollectivePlan& plan) {
  if (plan.owner() != this) {
    throw std::invalid_argument("plan was compiled by a different engine");
  }
  if (engine_options_.memoize) {
    if (const auto cached = plan.cached_result()) return *cached;
  }
  CollectiveResult result = plan.meta();
  sim::RunResult run;
  {
    // Shared quiesce: the simulation reads every channel's effective
    // capacity, which repair_plans() mutates under the unique lock.
    const std::shared_lock<std::shared_mutex> exec_lock(exec_mu_);
    run = sim::execute(fabric_, plan.program());
  }
  result.seconds = run.makespan;
  result.algorithm_bw = algorithm_bw(result.bytes, result.seconds);
  if (engine_options_.memoize) plan.memoize_result(result);
  return result;
}

std::vector<CollectiveResult> CollectiveEngine::run(
    std::span<const CollectiveRequest> reqs) {
  std::vector<std::shared_ptr<const CollectivePlan>> plans =
      compile_batch(reqs);
  std::vector<const sim::Program*> programs;
  programs.reserve(plans.size());
  for (const auto& plan : plans) programs.push_back(&plan->program());
  sim::GroupRunResult group;
  {
    const std::shared_lock<std::shared_mutex> exec_lock(exec_mu_);
    group = sim::execute_group(fabric_, programs);
  }
  std::vector<CollectiveResult> results;
  results.reserve(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    CollectiveResult r = plans[i]->meta();
    r.seconds = group.makespan[i];
    r.algorithm_bw = algorithm_bw(r.bytes, r.seconds);
    results.push_back(r);
  }
  return results;
}

std::vector<std::shared_ptr<const CollectivePlan>>
CollectiveEngine::compile_batch(std::span<const CollectiveRequest> reqs) {
  std::vector<std::shared_ptr<const CollectivePlan>> plans(reqs.size());
  // Compile positionally; requests sharing a key coalesce on the
  // single-flight path, so duplicates cost one lowering, not a race.
  common::parallel_for(reqs.size(), planner_threads_, [&](std::size_t i) {
    const CollectiveRequest& req = reqs[i];
    plans[i] = compile(req.kind, req.bytes, req.root, req.backend);
  });
  return plans;
}

std::size_t CollectiveEngine::precompile(double bytes, int root, int backend) {
  if (!(bytes > 0.0)) {
    throw std::invalid_argument("collective size must be positive");
  }
  if (root < -1 || root >= num_gpus_) {
    throw std::invalid_argument("root out of range");
  }
  static constexpr CollectiveKind kKinds[] = {
      CollectiveKind::kBroadcast,    CollectiveKind::kGather,
      CollectiveKind::kReduce,       CollectiveKind::kAllReduce,
      CollectiveKind::kAllGather,    CollectiveKind::kReduceScatter};
  std::atomic<std::size_t> cold{0};
  common::parallel_for(std::size(kKinds), planner_threads_,
                       [&](std::size_t i) {
                         const CollectiveKind kind = kKinds[i];
                         try {
                           const bool warm =
                               has_cached_plan(kind, bytes, root, backend);
                           compile(kind, bytes, root, backend);
                           if (!warm) cold.fetch_add(1);
                         } catch (const std::invalid_argument&) {
                           // A kind this backend cannot lower at this shape
                           // is skipped: precompile warms what it can.
                         }
                       });
  return cold.load();
}

std::uint64_t CollectiveEngine::fingerprint_locked() const {
  std::vector<std::string> names;
  names.reserve(backends_.size());
  for (const auto& be : backends_) names.emplace_back(be->name());
  FingerprintHasher fp;
  fp.u64(blink::fabric_fingerprint(servers_, fabric_.params(), names));
  // Planning configuration separates stores too: plans compiled under a
  // different chunk policy or tree-generation knobs must not warm-load.
  for (const auto& be : backends_) fp.u64(be->planning_fingerprint());
  return fp.value();
}

int CollectiveEngine::backend_id_locked(std::string_view name) const {
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (name == backends_[i]->name()) return static_cast<int>(i);
  }
  return -1;
}

std::uint64_t CollectiveEngine::fabric_fingerprint() const {
  const std::lock_guard<std::mutex> lock(compile_mu_);
  return fingerprint_locked();
}

std::string CollectiveEngine::plan_store_path() const {
  if (engine_options_.plan_store_dir.empty()) return "";
  const std::lock_guard<std::mutex> lock(compile_mu_);
  return plan_store_file(engine_options_.plan_store_dir, fingerprint_locked());
}

bool CollectiveEngine::is_canonical_store_locked(
    const std::string& path) const {
  // The dirty flag tracks divergence from the configured plan store only:
  // exports to (or imports from) side paths must leave the
  // flush-on-destruction armed, or a backup export would silently cost the
  // next process its warm start.
  if (engine_options_.plan_store_dir.empty()) return false;
  return path ==
         plan_store_file(engine_options_.plan_store_dir, fingerprint_locked());
}

std::size_t CollectiveEngine::export_plans(const std::string& path) const {
  const std::lock_guard<std::mutex> lock(compile_mu_);
  return plans_.save(
      path, fingerprint_locked(),
      [this](int id) {
        return std::string(backends_[static_cast<std::size_t>(id)]->name());
      },
      /*mark_clean=*/is_canonical_store_locked(path),
      fabric_.component_fingerprints());
}

std::size_t CollectiveEngine::import_plans(const std::string& path) {
  const std::lock_guard<std::mutex> lock(compile_mu_);
  const std::size_t n = import_plans_locked(path);
  // A successful explicit import supersedes the lazy warm-load; a failed
  // one (the throw above) must leave it armed — a bad path passed here is
  // no reason to ignore a valid store in plan_store_dir.
  plan_store_checked_ = true;
  return n;
}

bool CollectiveEngine::record_components_clean_locked(
    const PlanRecord& record,
    const std::vector<std::uint64_t>& saved_components) const {
  for (const int channel : record.footprint) {
    const int component = fabric_.is_nic_channel(channel)
                              ? num_servers()
                              : fabric_.channel_server(channel);
    if (saved_components.empty()) {
      // Pre-health tooling wrote no component section: "saved healthy". The
      // record is adoptable exactly while its channels are still healthy.
      if (fabric_.channel_health(channel) != 1.0) return false;
    } else {
      if (component < 0 ||
          component >= static_cast<int>(saved_components.size())) {
        return false;
      }
      if (saved_components[static_cast<std::size_t>(component)] !=
          fabric_.component_fingerprint(component)) {
        return false;
      }
    }
  }
  return true;
}

std::size_t CollectiveEngine::import_plans_locked(const std::string& path) {
  std::size_t skipped = 0;
  const std::size_t n = plans_.load(
      path, fingerprint_locked(), this,
      [this](std::string_view name) { return backend_id_locked(name); },
      [this](const PlanRecord& record) {
        // The fingerprint already ties the store to this fabric and backend
        // registry; these checks keep a hand-edited or bit-flipped record
        // that happens to pass the header from ever reaching execute().
        if (!(record.bytes > 0.0)) {
          throw std::invalid_argument("plan store: non-positive size");
        }
        if (record.root < 0 || record.root >= num_gpus_) {
          throw std::invalid_argument("plan store: root out of range");
        }
        for (const sim::Op& op : record.program.ops()) {
          for (const int channel : op.route) {
            if (channel < 0 || channel >= fabric_.num_channels()) {
              throw std::invalid_argument(
                  "plan store: route channel out of range for this fabric");
            }
          }
        }
        for (const int channel : record.footprint) {
          if (channel < 0 || channel >= fabric_.num_channels()) {
            throw std::invalid_argument(
                "plan store: footprint channel out of range for this fabric");
          }
        }
      },
      /*mark_clean=*/is_canonical_store_locked(path),
      [this](const PlanRecord& record,
             const std::vector<std::uint64_t>& saved_components) {
        return record_components_clean_locked(record, saved_components);
      },
      &skipped);
  if (skipped > 0) {
    BLINK_LOG(kWarning) << "plan store: skipped " << skipped << " of "
                        << (n + skipped)
                        << " plans crossing components whose health changed "
                           "since the save";
  }
  return n;
}

void CollectiveEngine::maybe_warm_load_locked() {
  if (plan_store_checked_ || engine_options_.plan_store_dir.empty()) return;
  plan_store_checked_ = true;
  const std::string path =
      plan_store_file(engine_options_.plan_store_dir, fingerprint_locked());
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return;  // cold start
  try {
    const std::size_t n = import_plans_locked(path);
    BLINK_LOG(kInfo) << "plan store: warm-loaded " << n << " plans from "
                     << path;
  } catch (const std::exception& e) {
    // A stale or corrupt store is rejected, never executed; recompiling is
    // always safe, so a warm-start failure must not fail the job.
    BLINK_LOG(kWarning) << "plan store: ignoring " << path << ": " << e.what();
  }
}

CollectiveResult CollectiveEngine::broadcast(double bytes, int root) {
  return execute(*compile(CollectiveKind::kBroadcast, bytes, root));
}
CollectiveResult CollectiveEngine::gather(double bytes, int root) {
  return execute(*compile(CollectiveKind::kGather, bytes, root));
}
CollectiveResult CollectiveEngine::reduce(double bytes, int root) {
  return execute(*compile(CollectiveKind::kReduce, bytes, root));
}
CollectiveResult CollectiveEngine::all_reduce(double bytes) {
  return execute(*compile(CollectiveKind::kAllReduce, bytes));
}
CollectiveResult CollectiveEngine::all_gather(double bytes) {
  return execute(*compile(CollectiveKind::kAllGather, bytes));
}
CollectiveResult CollectiveEngine::reduce_scatter(double bytes) {
  return execute(*compile(CollectiveKind::kReduceScatter, bytes));
}

}  // namespace blink
