#include "blink/blink/engine.h"

#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "blink/sim/executor.h"

namespace blink {

CollectiveEngine::CollectiveEngine(topo::Topology topo,
                                   const sim::FabricParams& fabric_params,
                                   EngineOptions options)
    : CollectiveEngine(std::vector<topo::Topology>{std::move(topo)},
                       fabric_params, options) {}

CollectiveEngine::CollectiveEngine(std::vector<topo::Topology> servers,
                                   const sim::FabricParams& fabric_params,
                                   EngineOptions options)
    : servers_(std::move(servers)),
      engine_options_(options),
      fabric_(servers_, fabric_params),  // validates every server's topology
      plans_(options.plan_cache_capacity) {
  for (const auto& s : servers_) num_gpus_ += s.num_gpus;
}

CollectiveEngine::~CollectiveEngine() = default;

int CollectiveEngine::register_backend(
    std::unique_ptr<CollectiveBackend> backend) {
  if (backend == nullptr) {
    throw std::invalid_argument("backend must not be null");
  }
  const std::lock_guard<std::mutex> lock(compile_mu_);
  backends_.push_back(std::move(backend));
  return static_cast<int>(backends_.size()) - 1;
}

const CollectiveBackend& CollectiveEngine::backend(int id) const {
  const std::lock_guard<std::mutex> lock(compile_mu_);
  if (id < 0 || id >= static_cast<int>(backends_.size())) {
    throw std::invalid_argument("backend id out of range");
  }
  return *backends_[static_cast<std::size_t>(id)];
}

int CollectiveEngine::backend_id(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(compile_mu_);
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (name == backends_[i]->name()) return static_cast<int>(i);
  }
  return -1;
}

std::shared_ptr<const CollectivePlan> CollectiveEngine::adopt_plan(
    CollectiveKind kind, double bytes, int root, int backend,
    LoweredCollective lowered) {
  auto plan = std::make_shared<const CollectivePlan>(
      this, kind, bytes, root, backend, lowered.chunk_bytes,
      std::move(lowered.program), lowered.meta, std::move(lowered.tree_sets));
  plans_.insert(plan->key(), plan);
  return plan;
}

std::shared_ptr<const CollectivePlan> CollectiveEngine::compile(
    CollectiveKind kind, double bytes, int root, int backend) {
  if (!(bytes > 0.0)) {
    throw std::invalid_argument("collective size must be positive");
  }
  if (root < -1 || root >= num_gpus_) {
    throw std::invalid_argument("root out of range");
  }
  const std::lock_guard<std::mutex> lock(compile_mu_);
  return compile_locked(kind, bytes, root, backend);
}

std::shared_ptr<const CollectivePlan> CollectiveEngine::compile_locked(
    CollectiveKind kind, double bytes, int root, int backend) {
  if (backends_.empty()) {
    throw std::logic_error("engine has no registered backend");
  }
  if (backend == kAutoBackend) {
    backend = select_backend_locked(kind, bytes, root);
  }
  if (backend < 0 || backend >= static_cast<int>(backends_.size())) {
    throw std::invalid_argument("backend id out of range");
  }
  CollectiveBackend& be = *backends_[static_cast<std::size_t>(backend)];
  if (!be.supports(kind)) {
    throw std::invalid_argument(std::string(be.name()) +
                                " backend does not support " +
                                to_string(kind));
  }
  // A backend covering a subset of the fabric (a single server of a cluster
  // engine) cannot address roots beyond its own ranks.
  if (be.num_ranks() >= 0 && root >= be.num_ranks()) {
    throw std::invalid_argument(std::string("root out of range for the ") +
                                be.name() + " backend");
  }
  if (root == -1) root = be.default_root(kind);
  const PlanKey key{static_cast<int>(kind), root,
                    static_cast<std::uint64_t>(bytes), backend};
  if (auto plan = plans_.find(key)) return plan;
  return adopt_plan(kind, bytes, root, backend, be.lower(kind, bytes, root));
}

int CollectiveEngine::select_backend_locked(CollectiveKind kind, double bytes,
                                            int root) {
  const PlanKey key{static_cast<int>(kind), root,
                    static_cast<std::uint64_t>(bytes), 0};
  const auto it = auto_choices_.find(key);
  if (it != auto_choices_.end()) return it->second;
  int best = -1;
  double best_seconds = 0.0;
  for (int id = 0; id < static_cast<int>(backends_.size()); ++id) {
    const CollectiveBackend& be = *backends_[static_cast<std::size_t>(id)];
    if (!be.supports(kind)) continue;
    if (be.num_ranks() >= 0 && root >= be.num_ranks()) continue;
    // The candidate plan lands in the shared cache either way, so the
    // winner's later compile is a hit and the losers stay reusable.
    const auto plan = compile_locked(kind, bytes, root, id);
    const double seconds = execute(*plan).seconds;
    if (best == -1 || seconds < best_seconds) {
      best = id;
      best_seconds = seconds;
    }
  }
  if (best == -1) {
    throw std::invalid_argument(std::string("no registered backend supports ") +
                                to_string(kind));
  }
  // Keep the choice map bounded like the plan cache beside it; past the cap
  // the stalest thing to do is re-measure, so start over.
  if (auto_choices_.size() >= engine_options_.plan_cache_capacity) {
    auto_choices_.clear();
  }
  auto_choices_.emplace(key, best);
  return best;
}

CollectiveResult CollectiveEngine::execute(const CollectivePlan& plan) {
  if (plan.owner() != this) {
    throw std::invalid_argument("plan was compiled by a different engine");
  }
  if (engine_options_.memoize) {
    if (const auto cached = plan.cached_result()) return *cached;
  }
  CollectiveResult result = plan.meta();
  const sim::RunResult run = sim::execute(fabric_, plan.program());
  result.seconds = run.makespan;
  result.algorithm_bw = run.throughput(result.bytes);
  if (engine_options_.memoize) plan.memoize_result(result);
  return result;
}

std::vector<CollectiveResult> CollectiveEngine::run(
    std::span<const CollectiveRequest> reqs) {
  std::vector<std::shared_ptr<const CollectivePlan>> plans;
  plans.reserve(reqs.size());
  for (const CollectiveRequest& req : reqs) {
    plans.push_back(compile(req.kind, req.bytes, req.root, req.backend));
  }
  std::vector<const sim::Program*> programs;
  programs.reserve(plans.size());
  for (const auto& plan : plans) programs.push_back(&plan->program());
  const sim::GroupRunResult group = sim::execute_group(fabric_, programs);
  std::vector<CollectiveResult> results;
  results.reserve(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    CollectiveResult r = plans[i]->meta();
    r.seconds = group.makespan[i];
    r.algorithm_bw = r.seconds > 0.0 ? r.bytes / r.seconds : 0.0;
    results.push_back(r);
  }
  return results;
}

CollectiveResult CollectiveEngine::broadcast(double bytes, int root) {
  return execute(*compile(CollectiveKind::kBroadcast, bytes, root));
}
CollectiveResult CollectiveEngine::gather(double bytes, int root) {
  return execute(*compile(CollectiveKind::kGather, bytes, root));
}
CollectiveResult CollectiveEngine::reduce(double bytes, int root) {
  return execute(*compile(CollectiveKind::kReduce, bytes, root));
}
CollectiveResult CollectiveEngine::all_reduce(double bytes) {
  return execute(*compile(CollectiveKind::kAllReduce, bytes));
}
CollectiveResult CollectiveEngine::all_gather(double bytes) {
  return execute(*compile(CollectiveKind::kAllGather, bytes));
}
CollectiveResult CollectiveEngine::reduce_scatter(double bytes) {
  return execute(*compile(CollectiveKind::kReduceScatter, bytes));
}

}  // namespace blink
